#!/usr/bin/env python3
"""Validate the bench harness's JSON-line output.

The benches interleave human-readable tables with machine-readable JSON
lines (every line starting with '{' must parse as a standalone JSON
document — see bench/bench_util.h). This checker is the CI gate for
that contract: pipe a bench's stdout through it and it fails on the
first malformed line.

Usage:
  ./build/bench/bb_hw_profile --smoke --json | scripts/check_bench_json.py
  ... | scripts/check_bench_json.py --require-hw-null

--require-hw-null additionally asserts that at least one line carries
"hw": null — the marker a bench emits when hardware counters are
unavailable (perf_event_open denied, or SIMDTREE_DISABLE_PERF=1). CI
runs the benches with the override set, so the marker must be present;
its absence means the fallback path silently stopped reporting.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--require-hw-null",
        action="store_true",
        help='fail unless at least one JSON line has "hw": null',
    )
    parser.add_argument(
        "--min-lines",
        type=int,
        default=1,
        help="minimum number of JSON lines expected (default 1)",
    )
    args = parser.parse_args()

    json_lines = 0
    hw_null_lines = 0
    for lineno, line in enumerate(sys.stdin, start=1):
        stripped = line.strip()
        if not stripped.startswith("{"):
            continue
        try:
            doc = json.loads(stripped)
        except json.JSONDecodeError as err:
            print(f"line {lineno}: invalid JSON ({err}): {stripped[:200]}",
                  file=sys.stderr)
            return 1
        if not isinstance(doc, dict):
            print(f"line {lineno}: JSON line is not an object: "
                  f"{stripped[:200]}", file=sys.stderr)
            return 1
        json_lines += 1
        if "hw" in doc and doc["hw"] is None:
            hw_null_lines += 1

    if json_lines < args.min_lines:
        print(f"expected at least {args.min_lines} JSON line(s), "
              f"got {json_lines}", file=sys.stderr)
        return 1
    if args.require_hw_null and hw_null_lines == 0:
        print('no line with "hw": null — the perf-counter fallback marker '
              "is missing", file=sys.stderr)
        return 1

    print(f"ok: {json_lines} JSON lines"
          + (f", {hw_null_lines} hw-null markers" if hw_null_lines else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
