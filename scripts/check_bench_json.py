#!/usr/bin/env python3
"""Validate the bench harness's JSON-line output.

The benches interleave human-readable tables with machine-readable JSON
lines (every line starting with '{' must parse as a standalone JSON
document — see bench/bench_util.h). This checker is the CI gate for
that contract: pipe a bench's stdout through it and it fails on the
first malformed line.

Usage:
  ./build/bench/bb_hw_profile --smoke --json | scripts/check_bench_json.py
  ... | scripts/check_bench_json.py --require-hw-null
  ./build/bench/mem_footprint --smoke --json | \
      scripts/check_bench_json.py --require-mem

--require-hw-null additionally asserts that at least one line carries
"hw": null — the marker a bench emits when hardware counters are
unavailable (perf_event_open denied, or SIMDTREE_DISABLE_PERF=1). CI
runs the benches with the override set, so the marker must be present;
its absence means the fallback path silently stopped reporting.

--require-mem asserts that at least one line carries a well-formed
"mem" section (bench_util.h EmitMemJson): an object with numeric
arena_bytes, utilization in [0, 1], and slab_count. Every "mem" section
present is validated regardless of the flag.

--require-metrics-names asserts that at least one line carries a
metrics-registry dump (a "registry" key — simdtree_cli profile/serve —
or a "metrics" key — bb_concurrent) and that every metric name in it
maps onto the OpenMetrics grammar the /metrics exporter uses
(src/obs/export.cc SanitizeMetricName): non-empty, no control
characters, and valid after sanitization. Present sections are
validated regardless of the flag.

--require-group-descent asserts the grouped-descent A/B section of
bb_batch_lookup is present: at least one "node_visits_per_query"
metric line each for a "/grouped" and a "/pipelined" config, plus a
"visit_reduction" line. Its absence means the level-wise shared
traversal stopped reporting its sharing factor.

--require-olc-scaling asserts the read-mostly sweep of bb_concurrent is
present: at least one "/rm" config line with a positive reads_per_sec
and at least one with a positive scaling_efficiency. Its absence means
the lock-free read path's scaling report silently stopped being
emitted.

--require-slo asserts that at least one line carries a well-formed
"slo" section (bb_serve, the open-loop serving load generator): numeric
target_qps/achieved_qps/requests/replies/errors and latency percentiles
with achieved_qps > 0, replies > 0, and p50_ns <= p99_ns <= p999_ns <=
max_ns. Every "slo" section present is validated regardless of the
flag; its absence under the flag means the serving smoke produced no
SLO report. When the line also carries an "ops" object (the per-opcode
latency breakdown bb_serve emits next to "slo"), each entry must be an
object with numeric replies/p50_ns/p99_ns/p999_ns, monotone
percentiles, and the op replies must not exceed the total.

--require-dispatch asserts that a bench_header line is present and
carries a well-formed runtime "dispatch" object (bench_util.h
EmitJsonHeader): backend in {scalar, sse, avx2, avx512}, register_bits
in {128, 256, 512}, forced and the native_* kernel-availability flags
0/1. Every bench_header present is validated regardless of the flag;
the flag additionally makes its absence an error — a sweep without the
dispatch decision cannot say which kernels produced its numbers.
"""

import argparse
import json
import re
import sys

# OpenMetrics name grammar (and the sanitizer's target).
_VALID_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")


def sanitize_metric_name(name: str) -> str:
    """Python twin of obs::SanitizeMetricName (src/obs/export.cc)."""
    if not name:
        return "_"
    out = [] if re.match(r"[a-zA-Z_:]", name[0]) else ["_"]
    for c in name:
        out.append(c if re.match(r"[a-zA-Z0-9_:]", c) else "_")
    return "".join(out)


def check_metrics_names(doc: dict, lineno: int) -> bool:
    """Validates a "registry"/"metrics" dump; returns False on error."""
    section = doc.get("registry", doc.get("metrics"))
    if not isinstance(section, dict):
        print(f'line {lineno}: metrics section is not an object',
              file=sys.stderr)
        return False
    for group in ("counters", "gauges", "histograms"):
        entries = section.get(group, {})
        if not isinstance(entries, dict):
            print(f'line {lineno}: "{group}" is not an object',
                  file=sys.stderr)
            return False
        for name in entries:
            if not name or any(ord(c) < 0x20 for c in name):
                print(f'line {lineno}: {group} name {name!r} is empty or '
                      "has control characters", file=sys.stderr)
                return False
            sanitized = sanitize_metric_name(name)
            if not _VALID_NAME.match(sanitized):
                print(f'line {lineno}: {group} name {name!r} sanitizes to '
                      f'{sanitized!r}, not a valid OpenMetrics name',
                      file=sys.stderr)
                return False
    return True


def check_mem_section(doc: dict, lineno: int) -> bool:
    """Validates one {"mem": {...}} line; prints and returns False on error."""
    mem = doc["mem"]
    if not isinstance(mem, dict):
        print(f'line {lineno}: "mem" is not an object', file=sys.stderr)
        return False
    for field in ("arena_bytes", "utilization", "slab_count"):
        if field not in mem:
            print(f'line {lineno}: "mem" missing "{field}"', file=sys.stderr)
            return False
        if not isinstance(mem[field], (int, float)) or isinstance(
                mem[field], bool):
            print(f'line {lineno}: "mem".{field} is not numeric',
                  file=sys.stderr)
            return False
        if mem[field] < 0:
            print(f'line {lineno}: "mem".{field} is negative',
                  file=sys.stderr)
            return False
    if not 0.0 <= mem["utilization"] <= 1.0:
        print(f'line {lineno}: "mem".utilization out of [0, 1]: '
              f'{mem["utilization"]}', file=sys.stderr)
        return False
    return True


def check_slo_section(doc: dict, lineno: int) -> bool:
    """Validates one {"slo": {...}} line; prints and returns False on error."""
    slo = doc["slo"]
    if not isinstance(slo, dict):
        print(f'line {lineno}: "slo" is not an object', file=sys.stderr)
        return False
    fields = ("target_qps", "achieved_qps", "requests", "replies",
              "errors", "p50_ns", "p99_ns", "p999_ns", "max_ns")
    for field in fields:
        if field not in slo:
            print(f'line {lineno}: "slo" missing "{field}"', file=sys.stderr)
            return False
        if not isinstance(slo[field], (int, float)) or isinstance(
                slo[field], bool):
            print(f'line {lineno}: "slo".{field} is not numeric',
                  file=sys.stderr)
            return False
        if slo[field] < 0:
            print(f'line {lineno}: "slo".{field} is negative',
                  file=sys.stderr)
            return False
    if slo["achieved_qps"] <= 0 or slo["replies"] <= 0:
        print(f'line {lineno}: "slo" reports no served traffic '
              f'(achieved_qps={slo["achieved_qps"]}, '
              f'replies={slo["replies"]})', file=sys.stderr)
        return False
    if not slo["p50_ns"] <= slo["p99_ns"] <= slo["p999_ns"] <= slo["max_ns"]:
        print(f'line {lineno}: "slo" percentiles not monotone: '
              f'p50={slo["p50_ns"]} p99={slo["p99_ns"]} '
              f'p999={slo["p999_ns"]} max={slo["max_ns"]}', file=sys.stderr)
        return False
    if "ops" in doc and not check_ops_section(doc, slo, lineno):
        return False
    return True


def check_ops_section(doc: dict, slo: dict, lineno: int) -> bool:
    """Validates the per-opcode "ops" breakdown bb_serve emits."""
    ops = doc["ops"]
    if not isinstance(ops, dict):
        print(f'line {lineno}: "ops" is not an object', file=sys.stderr)
        return False
    known = {"get", "mget", "put", "del", "lower_bound"}
    total_replies = 0
    for op, stats in ops.items():
        if op not in known:
            print(f'line {lineno}: "ops" has unknown opcode {op!r}',
                  file=sys.stderr)
            return False
        if not isinstance(stats, dict):
            print(f'line {lineno}: "ops".{op} is not an object',
                  file=sys.stderr)
            return False
        for field in ("replies", "p50_ns", "p99_ns", "p999_ns"):
            value = stats.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                print(f'line {lineno}: "ops".{op}.{field} is not numeric',
                      file=sys.stderr)
                return False
            if value < 0:
                print(f'line {lineno}: "ops".{op}.{field} is negative',
                      file=sys.stderr)
                return False
        if not stats["p50_ns"] <= stats["p99_ns"] <= stats["p999_ns"]:
            print(f'line {lineno}: "ops".{op} percentiles not monotone: '
                  f'p50={stats["p50_ns"]} p99={stats["p99_ns"]} '
                  f'p999={stats["p999_ns"]}', file=sys.stderr)
            return False
        total_replies += stats["replies"]
    if total_replies > slo["replies"]:
        print(f'line {lineno}: "ops" replies sum to {total_replies}, more '
              f'than the slo total {slo["replies"]}', file=sys.stderr)
        return False
    return True


def check_dispatch_header(doc: dict, lineno: int) -> bool:
    """Validates a bench_header's "dispatch" object; False on error."""
    header = doc["bench_header"]
    if not isinstance(header, dict):
        print(f'line {lineno}: "bench_header" is not an object',
              file=sys.stderr)
        return False
    dispatch = header.get("dispatch")
    if not isinstance(dispatch, dict):
        print(f'line {lineno}: bench_header has no "dispatch" object',
              file=sys.stderr)
        return False
    if dispatch.get("backend") not in ("scalar", "sse", "avx2", "avx512"):
        print(f'line {lineno}: dispatch.backend '
              f'{dispatch.get("backend")!r} not in scalar/sse/avx2/avx512',
              file=sys.stderr)
        return False
    if dispatch.get("register_bits") not in (128, 256, 512):
        print(f'line {lineno}: dispatch.register_bits '
              f'{dispatch.get("register_bits")!r} not in 128/256/512',
              file=sys.stderr)
        return False
    for field in ("forced", "native_128", "native_256", "native_512"):
        if dispatch.get(field) not in (0, 1):
            print(f'line {lineno}: dispatch.{field} '
                  f'{dispatch.get(field)!r} is not 0/1', file=sys.stderr)
            return False
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--require-hw-null",
        action="store_true",
        help='fail unless at least one JSON line has "hw": null',
    )
    parser.add_argument(
        "--require-mem",
        action="store_true",
        help='fail unless at least one JSON line has a valid "mem" section',
    )
    parser.add_argument(
        "--require-metrics-names",
        action="store_true",
        help="fail unless at least one JSON line has a metrics-registry "
             "dump with OpenMetrics-compatible names",
    )
    parser.add_argument(
        "--require-group-descent",
        action="store_true",
        help='fail unless grouped and pipelined "node_visits_per_query" '
             'lines and a "visit_reduction" line are present',
    )
    parser.add_argument(
        "--require-olc-scaling",
        action="store_true",
        help='fail unless the read-mostly sweep ("/rm" configs) reports '
             "positive reads_per_sec and scaling_efficiency lines",
    )
    parser.add_argument(
        "--require-slo",
        action="store_true",
        help='fail unless at least one JSON line has a valid "slo" section',
    )
    parser.add_argument(
        "--require-dispatch",
        action="store_true",
        help="fail unless a bench_header line carries a well-formed "
             'runtime "dispatch" object',
    )
    parser.add_argument(
        "--min-lines",
        type=int,
        default=1,
        help="minimum number of JSON lines expected (default 1)",
    )
    args = parser.parse_args()

    json_lines = 0
    hw_null_lines = 0
    slo_lines = 0
    mem_lines = 0
    metrics_lines = 0
    dispatch_lines = 0
    grouped_visit_lines = 0
    pipelined_visit_lines = 0
    reduction_lines = 0
    olc_read_lines = 0
    olc_scaling_lines = 0
    for lineno, line in enumerate(sys.stdin, start=1):
        stripped = line.strip()
        if not stripped.startswith("{"):
            continue
        try:
            doc = json.loads(stripped)
        except json.JSONDecodeError as err:
            print(f"line {lineno}: invalid JSON ({err}): {stripped[:200]}",
                  file=sys.stderr)
            return 1
        if not isinstance(doc, dict):
            print(f"line {lineno}: JSON line is not an object: "
                  f"{stripped[:200]}", file=sys.stderr)
            return 1
        json_lines += 1
        if "hw" in doc and doc["hw"] is None:
            hw_null_lines += 1
        if "mem" in doc:
            if not check_mem_section(doc, lineno):
                return 1
            mem_lines += 1
        if "slo" in doc:
            if not check_slo_section(doc, lineno):
                return 1
            slo_lines += 1
        if "registry" in doc or "metrics" in doc:
            if not check_metrics_names(doc, lineno):
                return 1
            metrics_lines += 1
        if "bench_header" in doc:
            if not check_dispatch_header(doc, lineno):
                return 1
            dispatch_lines += 1
        config = doc.get("config", "")
        if doc.get("metric") == "node_visits_per_query":
            if config.endswith("/grouped"):
                grouped_visit_lines += 1
            elif config.endswith("/pipelined"):
                pipelined_visit_lines += 1
        if doc.get("metric") == "visit_reduction":
            reduction_lines += 1
        if "/rm" in config:
            value = doc.get("value")
            positive = (isinstance(value, (int, float))
                        and not isinstance(value, bool) and value > 0)
            if doc.get("metric") == "reads_per_sec" and positive:
                olc_read_lines += 1
            if doc.get("metric") == "scaling_efficiency" and positive:
                olc_scaling_lines += 1

    if json_lines < args.min_lines:
        print(f"expected at least {args.min_lines} JSON line(s), "
              f"got {json_lines}", file=sys.stderr)
        return 1
    if args.require_hw_null and hw_null_lines == 0:
        print('no line with "hw": null — the perf-counter fallback marker '
              "is missing", file=sys.stderr)
        return 1
    if args.require_slo and slo_lines == 0:
        print('no line with an "slo" section — the serving SLO report is '
              "missing", file=sys.stderr)
        return 1
    if args.require_mem and mem_lines == 0:
        print('no line with a "mem" section — the arena occupancy report '
              "is missing", file=sys.stderr)
        return 1
    if args.require_metrics_names and metrics_lines == 0:
        print('no line with a "registry"/"metrics" dump — the metrics '
              "export is missing", file=sys.stderr)
        return 1
    if args.require_dispatch and dispatch_lines == 0:
        print('no bench_header line with a "dispatch" object — the runtime '
              "dispatch decision is missing", file=sys.stderr)
        return 1
    if args.require_olc_scaling and (olc_read_lines == 0
                                     or olc_scaling_lines == 0):
        print("read-mostly sweep incomplete: "
              f"{olc_read_lines} positive reads_per_sec and "
              f"{olc_scaling_lines} positive scaling_efficiency lines "
              'under "/rm" configs', file=sys.stderr)
        return 1
    if args.require_group_descent and (
            grouped_visit_lines == 0 or pipelined_visit_lines == 0
            or reduction_lines == 0):
        print("grouped-descent section incomplete: "
              f"{grouped_visit_lines} grouped / {pipelined_visit_lines} "
              f"pipelined node_visits_per_query lines, "
              f"{reduction_lines} visit_reduction lines", file=sys.stderr)
        return 1

    parts = [f"ok: {json_lines} JSON lines"]
    if hw_null_lines:
        parts.append(f"{hw_null_lines} hw-null markers")
    if mem_lines:
        parts.append(f"{mem_lines} mem sections")
    if slo_lines:
        parts.append(f"{slo_lines} slo sections")
    if metrics_lines:
        parts.append(f"{metrics_lines} metrics dumps")
    if dispatch_lines:
        parts.append(f"{dispatch_lines} dispatch headers")
    if olc_read_lines or olc_scaling_lines:
        parts.append(f"{olc_read_lines}+{olc_scaling_lines} "
                     "read-mostly reads/scaling lines")
    if grouped_visit_lines or pipelined_visit_lines:
        parts.append(f"{grouped_visit_lines}+{pipelined_visit_lines} "
                     "grouped/pipelined visit lines")
    print(", ".join(parts))
    return 0


if __name__ == "__main__":
    sys.exit(main())
