#!/usr/bin/env python3
"""Validate the bench harness's JSON-line output.

The benches interleave human-readable tables with machine-readable JSON
lines (every line starting with '{' must parse as a standalone JSON
document — see bench/bench_util.h). This checker is the CI gate for
that contract: pipe a bench's stdout through it and it fails on the
first malformed line.

Usage:
  ./build/bench/bb_hw_profile --smoke --json | scripts/check_bench_json.py
  ... | scripts/check_bench_json.py --require-hw-null
  ./build/bench/mem_footprint --smoke --json | \
      scripts/check_bench_json.py --require-mem

--require-hw-null additionally asserts that at least one line carries
"hw": null — the marker a bench emits when hardware counters are
unavailable (perf_event_open denied, or SIMDTREE_DISABLE_PERF=1). CI
runs the benches with the override set, so the marker must be present;
its absence means the fallback path silently stopped reporting.

--require-mem asserts that at least one line carries a well-formed
"mem" section (bench_util.h EmitMemJson): an object with numeric
arena_bytes, utilization in [0, 1], and slab_count. Every "mem" section
present is validated regardless of the flag.
"""

import argparse
import json
import sys


def check_mem_section(doc: dict, lineno: int) -> bool:
    """Validates one {"mem": {...}} line; prints and returns False on error."""
    mem = doc["mem"]
    if not isinstance(mem, dict):
        print(f'line {lineno}: "mem" is not an object', file=sys.stderr)
        return False
    for field in ("arena_bytes", "utilization", "slab_count"):
        if field not in mem:
            print(f'line {lineno}: "mem" missing "{field}"', file=sys.stderr)
            return False
        if not isinstance(mem[field], (int, float)) or isinstance(
                mem[field], bool):
            print(f'line {lineno}: "mem".{field} is not numeric',
                  file=sys.stderr)
            return False
        if mem[field] < 0:
            print(f'line {lineno}: "mem".{field} is negative',
                  file=sys.stderr)
            return False
    if not 0.0 <= mem["utilization"] <= 1.0:
        print(f'line {lineno}: "mem".utilization out of [0, 1]: '
              f'{mem["utilization"]}', file=sys.stderr)
        return False
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--require-hw-null",
        action="store_true",
        help='fail unless at least one JSON line has "hw": null',
    )
    parser.add_argument(
        "--require-mem",
        action="store_true",
        help='fail unless at least one JSON line has a valid "mem" section',
    )
    parser.add_argument(
        "--min-lines",
        type=int,
        default=1,
        help="minimum number of JSON lines expected (default 1)",
    )
    args = parser.parse_args()

    json_lines = 0
    hw_null_lines = 0
    mem_lines = 0
    for lineno, line in enumerate(sys.stdin, start=1):
        stripped = line.strip()
        if not stripped.startswith("{"):
            continue
        try:
            doc = json.loads(stripped)
        except json.JSONDecodeError as err:
            print(f"line {lineno}: invalid JSON ({err}): {stripped[:200]}",
                  file=sys.stderr)
            return 1
        if not isinstance(doc, dict):
            print(f"line {lineno}: JSON line is not an object: "
                  f"{stripped[:200]}", file=sys.stderr)
            return 1
        json_lines += 1
        if "hw" in doc and doc["hw"] is None:
            hw_null_lines += 1
        if "mem" in doc:
            if not check_mem_section(doc, lineno):
                return 1
            mem_lines += 1

    if json_lines < args.min_lines:
        print(f"expected at least {args.min_lines} JSON line(s), "
              f"got {json_lines}", file=sys.stderr)
        return 1
    if args.require_hw_null and hw_null_lines == 0:
        print('no line with "hw": null — the perf-counter fallback marker '
              "is missing", file=sys.stderr)
        return 1
    if args.require_mem and mem_lines == 0:
        print('no line with a "mem" section — the arena occupancy report '
              "is missing", file=sys.stderr)
        return 1

    parts = [f"ok: {json_lines} JSON lines"]
    if hw_null_lines:
        parts.append(f"{hw_null_lines} hw-null markers")
    if mem_lines:
        parts.append(f"{mem_lines} mem sections")
    print(", ".join(parts))
    return 0


if __name__ == "__main__":
    sys.exit(main())
