#!/usr/bin/env python3
"""Lint an OpenMetrics text exposition (the /metrics endpoint's output).

CI curls the stats server (src/obs/stats_server.cc) and pipes the body
through this linter, which enforces the subset of the OpenMetrics spec
the exporter (src/obs/export.cc RenderOpenMetrics) promises:

  * every sample's metric name matches [a-zA-Z_:][a-zA-Z0-9_:]*
  * every family is declared by a `# TYPE` line before its samples,
    and declared at most once
  * counter samples carry the `_total` suffix
  * gauge samples may carry a label set (the simdtree_build_info
    pattern: constant 1 with provenance labels); every label name must
    be a valid metric name and values must be well-quoted
  * histogram families expose `_bucket{le="..."}` samples with
    monotonically non-decreasing upper bounds and cumulative counts,
    close with a le="+Inf" bucket, and expose `_count` == the +Inf
    bucket's value plus a `_sum`
  * exemplars (` # {trace_id="..."} value`) are accepted ONLY on
    `_bucket` lines with a finite le, must parse, and must satisfy the
    in-range rule value <= le
  * the exposition ends with exactly one `# EOF` line, with nothing
    after it

Usage:
  curl -s http://127.0.0.1:9100/metrics | scripts/lint_openmetrics.py
  scripts/lint_openmetrics.py --self-test
"""

import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
TYPE_RE = re.compile(r"# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
                     r"(counter|gauge|histogram)\Z")
# name{labels} value [# {exemplar-labels} exemplar-value]
SAMPLE_RE = re.compile(r"([a-zA-Z_:][a-zA-Z0-9_:]*)"
                       r"(?:\{([^{}]*)\})?"
                       r" (\S+)"
                       r"(?: # \{([^{}]*)\} (\S+))?\Z")
LABEL_RE = re.compile(r'([a-zA-Z_:][a-zA-Z0-9_:]*)="((?:[^"\\]|\\.)*)"\Z')


class LintError(Exception):
    pass


def fail(lineno: int, message: str) -> None:
    raise LintError(f"line {lineno}: {message}")


def parse_le(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    try:
        return float(raw)
    except ValueError:
        return float("nan")


def parse_labels(raw: str, lineno: int) -> dict:
    """'k="v",k2="v2"' -> dict, failing on malformed pairs."""
    labels = {}
    if raw == "":
        return labels
    for pair in split_label_pairs(raw, lineno):
        m = LABEL_RE.match(pair)
        if not m:
            fail(lineno, f"malformed label pair {pair[:60]!r}")
        name = m.group(1)
        if name in labels:
            fail(lineno, f"duplicate label {name!r}")
        labels[name] = m.group(2)
    return labels


def split_label_pairs(raw: str, lineno: int) -> list:
    """Splits on commas outside quoted values."""
    pairs, depth_quote, start = [], False, 0
    i = 0
    while i < len(raw):
        c = raw[i]
        if c == "\\" and depth_quote:
            i += 2
            continue
        if c == '"':
            depth_quote = not depth_quote
        elif c == "," and not depth_quote:
            pairs.append(raw[start:i])
            start = i + 1
        i += 1
    if depth_quote:
        fail(lineno, "unterminated quoted label value")
    pairs.append(raw[start:])
    return pairs


def family_of(name: str, families: dict) -> str:
    """Sample name -> declared family (histogram samples are suffixed)."""
    for suffix in ("_bucket", "_count", "_sum", "_total", ""):
        if suffix and not name.endswith(suffix):
            continue
        base = name[: len(name) - len(suffix)] if suffix else name
        if base in families:
            return base
    return ""


def lint(stream) -> str:
    families = {}      # family name -> type
    buckets = {}       # histogram family -> [(le, count)]
    samples = {}       # family -> {suffix: value}
    exemplars = 0
    labeled_gauges = 0
    saw_eof = False
    lines = 0

    for lineno, line in enumerate(stream, start=1):
        line = line.rstrip("\n")
        lines += 1
        if saw_eof:
            fail(lineno, f"content after # EOF: {line[:100]!r}")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if not m:
                fail(lineno, f"malformed comment line: {line[:100]!r}")
            name, mtype = m.group(1), m.group(2)
            if name in families:
                fail(lineno, f"family {name!r} declared twice")
            families[name] = mtype
            buckets[name] = []
            samples[name] = {}
            continue
        if not line:
            fail(lineno, "blank line in exposition")

        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, f"malformed sample line: {line[:100]!r}")
        name, labels_raw, value_raw = m.group(1), m.group(2), m.group(3)
        ex_labels_raw, ex_value_raw = m.group(4), m.group(5)
        if not NAME_RE.match(name):
            fail(lineno, f"invalid metric name {name!r}")
        try:
            value = float(value_raw)
        except ValueError:
            fail(lineno, f"non-numeric sample value {value_raw!r}")
        labels = (parse_labels(labels_raw, lineno)
                  if labels_raw is not None else {})

        family = family_of(name, families)
        if not family:
            fail(lineno, f"sample {name!r} has no preceding # TYPE")
        mtype = families[family]
        suffix = name[len(family):]

        if ex_labels_raw is not None and not (
                mtype == "histogram" and suffix == "_bucket"):
            fail(lineno, f"exemplar on non-bucket sample {name!r}")

        if mtype == "counter":
            if suffix != "_total":
                fail(lineno, f"counter sample {name!r} must end in _total")
            if labels:
                fail(lineno, f"unexpected labels on counter {name!r}")
            if value < 0:
                fail(lineno, f"negative counter value {value}")
        elif mtype == "gauge":
            if suffix != "":
                fail(lineno, f"gauge sample {name!r} has a suffix")
            if labels:
                labeled_gauges += 1  # info-style gauge: labels validated
        else:  # histogram
            if suffix == "_bucket":
                if "le" not in labels:
                    fail(lineno, f"histogram bucket {name!r} missing le")
                le = parse_le(labels["le"])
                if le != le:  # NaN
                    fail(lineno, f"unparseable le {labels['le']!r}")
                fam_buckets = buckets[family]
                if fam_buckets:
                    prev_le, prev_count = fam_buckets[-1]
                    if le <= prev_le:
                        fail(lineno, f"{family}: le {labels['le']!r} not "
                                     "increasing")
                    if value < prev_count:
                        fail(lineno, f"{family}: bucket counts not "
                                     f"cumulative ({value} < {prev_count})")
                fam_buckets.append((le, value))
                if ex_labels_raw is not None:
                    if le == float("inf"):
                        fail(lineno, f"{family}: exemplar on +Inf bucket")
                    parse_labels(ex_labels_raw, lineno)
                    try:
                        ex_value = float(ex_value_raw)
                    except ValueError:
                        fail(lineno, "non-numeric exemplar value "
                                     f"{ex_value_raw!r}")
                    if ex_value > le:
                        fail(lineno, f"{family}: exemplar value "
                                     f"{ex_value} > le {le} (in-range "
                                     "rule)")
                    exemplars += 1
            elif suffix in ("_count", "_sum"):
                if labels:
                    fail(lineno, f"unexpected labels on {name!r}")
                samples[family][suffix] = value
            else:
                fail(lineno, f"unexpected histogram sample {name!r}")

    if not saw_eof:
        fail(lines, "missing terminating # EOF line")

    histograms = 0
    for family, mtype in families.items():
        if mtype != "histogram":
            continue
        histograms += 1
        fam_buckets = buckets[family]
        if not fam_buckets or fam_buckets[-1][0] != float("inf"):
            fail(lines, f"{family}: missing le=\"+Inf\" bucket")
        if "_count" not in samples[family] or "_sum" not in samples[family]:
            fail(lines, f"{family}: missing _count or _sum")
        if samples[family]["_count"] != fam_buckets[-1][1]:
            fail(lines, f"{family}: _count {samples[family]['_count']} != "
                        f"+Inf bucket {fam_buckets[-1][1]}")

    parts = [f"ok: {len(families)} families ({histograms} histograms)",
             f"{lines} lines"]
    if exemplars:
        parts.append(f"{exemplars} exemplars")
    if labeled_gauges:
        parts.append(f"{labeled_gauges} labeled gauges")
    return ", ".join(parts)


GOOD_FIXTURE = """\
# TYPE net_requests counter
net_requests_total 42
# TYPE simdtree_build_info gauge
simdtree_build_info{git_sha="abc123",backend="avx2",hugepages="0"} 1
# TYPE process_uptime_seconds gauge
process_uptime_seconds 12.5
# TYPE net_op_get_ns histogram
net_op_get_ns_bucket{le="1024"} 3 # {trace_id="00000000000000ab"} 900
net_op_get_ns_bucket{le="2048"} 7
net_op_get_ns_bucket{le="+Inf"} 9
net_op_get_ns_count 9
net_op_get_ns_sum 12345
# EOF
"""

BAD_FIXTURES = {
    "exemplar breaks in-range rule": GOOD_FIXTURE.replace(
        '} 900', '} 2000'),
    "exemplar on +Inf bucket": GOOD_FIXTURE.replace(
        'le="+Inf"} 9', 'le="+Inf"} 9 # {trace_id="ab"} 1'),
    "exemplar on a gauge": GOOD_FIXTURE.replace(
        "process_uptime_seconds 12.5",
        'process_uptime_seconds 12.5 # {trace_id="ab"} 1'),
    "malformed label pair": GOOD_FIXTURE.replace(
        'git_sha="abc123"', "git_sha=abc123"),
    "count mismatch": GOOD_FIXTURE.replace(
        "net_op_get_ns_count 9", "net_op_get_ns_count 8"),
}


def self_test() -> int:
    try:
        summary = lint(GOOD_FIXTURE.splitlines(True))
    except LintError as err:
        print(f"self-test FAILED: good fixture rejected: {err}",
              file=sys.stderr)
        return 1
    if "1 exemplars" not in summary or "1 labeled gauges" not in summary:
        print(f"self-test FAILED: good fixture summary {summary!r} "
              "missed the exemplar/labeled-gauge counts", file=sys.stderr)
        return 1
    for name, fixture in BAD_FIXTURES.items():
        try:
            lint(fixture.splitlines(True))
        except LintError:
            continue
        print(f"self-test FAILED: bad fixture {name!r} passed",
              file=sys.stderr)
        return 1
    print("self-test ok")
    return 0


def main() -> int:
    if "--self-test" in sys.argv[1:]:
        return self_test()
    try:
        print(lint(sys.stdin))
    except LintError as err:
        print(err, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
