#!/usr/bin/env python3
"""Lint an OpenMetrics text exposition (the /metrics endpoint's output).

CI curls the stats server (src/obs/stats_server.cc) and pipes the body
through this linter, which enforces the subset of the OpenMetrics spec
the exporter (src/obs/export.cc RenderOpenMetrics) promises:

  * every sample's metric name matches [a-zA-Z_:][a-zA-Z0-9_:]*
  * every family is declared by a `# TYPE` line before its samples,
    and declared at most once
  * counter samples carry the `_total` suffix
  * histogram families expose `_bucket{le="..."}` samples with
    monotonically non-decreasing upper bounds and cumulative counts,
    close with a le="+Inf" bucket, and expose `_count` == the +Inf
    bucket's value plus a `_sum`
  * the exposition ends with exactly one `# EOF` line, with nothing
    after it

Usage:
  curl -s http://127.0.0.1:9100/metrics | scripts/lint_openmetrics.py
"""

import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
TYPE_RE = re.compile(r"# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
                     r"(counter|gauge|histogram)\Z")
SAMPLE_RE = re.compile(r"([a-zA-Z_:][a-zA-Z0-9_:]*)"
                       r'(?:\{le="([^"]*)"\})? (\S+)\Z')


def fail(lineno: int, message: str) -> None:
    print(f"line {lineno}: {message}", file=sys.stderr)
    sys.exit(1)


def parse_le(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    try:
        return float(raw)
    except ValueError:
        return float("nan")


def family_of(name: str, families: dict) -> str:
    """Sample name -> declared family (histogram samples are suffixed)."""
    for suffix in ("_bucket", "_count", "_sum", "_total", ""):
        if suffix and not name.endswith(suffix):
            continue
        base = name[: len(name) - len(suffix)] if suffix else name
        if base in families:
            return base
    return ""


def main() -> int:
    families = {}      # family name -> type
    buckets = {}       # histogram family -> [(le, count)]
    samples = {}       # family -> {suffix: value}
    saw_eof = False
    lines = 0

    for lineno, line in enumerate(sys.stdin, start=1):
        line = line.rstrip("\n")
        lines += 1
        if saw_eof:
            fail(lineno, f"content after # EOF: {line[:100]!r}")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if not m:
                fail(lineno, f"malformed comment line: {line[:100]!r}")
            name, mtype = m.group(1), m.group(2)
            if name in families:
                fail(lineno, f"family {name!r} declared twice")
            families[name] = mtype
            buckets[name] = []
            samples[name] = {}
            continue
        if not line:
            fail(lineno, "blank line in exposition")

        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, f"malformed sample line: {line[:100]!r}")
        name, le_raw, value_raw = m.group(1), m.group(2), m.group(3)
        if not NAME_RE.match(name):
            fail(lineno, f"invalid metric name {name!r}")
        try:
            value = float(value_raw)
        except ValueError:
            fail(lineno, f"non-numeric sample value {value_raw!r}")

        family = family_of(name, families)
        if not family:
            fail(lineno, f"sample {name!r} has no preceding # TYPE")
        mtype = families[family]
        suffix = name[len(family):]

        if mtype == "counter":
            if suffix != "_total":
                fail(lineno, f"counter sample {name!r} must end in _total")
            if value < 0:
                fail(lineno, f"negative counter value {value}")
        elif mtype == "gauge":
            if suffix != "":
                fail(lineno, f"gauge sample {name!r} has a suffix")
        else:  # histogram
            if suffix == "_bucket":
                if le_raw is None:
                    fail(lineno, f"histogram bucket {name!r} missing le")
                le = parse_le(le_raw)
                if le != le:  # NaN
                    fail(lineno, f"unparseable le {le_raw!r}")
                fam_buckets = buckets[family]
                if fam_buckets:
                    prev_le, prev_count = fam_buckets[-1]
                    if le <= prev_le:
                        fail(lineno, f"{family}: le {le_raw!r} not "
                                     "increasing")
                    if value < prev_count:
                        fail(lineno, f"{family}: bucket counts not "
                                     f"cumulative ({value} < {prev_count})")
                fam_buckets.append((le, value))
            elif suffix in ("_count", "_sum"):
                samples[family][suffix] = value
            else:
                fail(lineno, f"unexpected histogram sample {name!r}")

    if not saw_eof:
        fail(lines, "missing terminating # EOF line")

    histograms = 0
    for family, mtype in families.items():
        if mtype != "histogram":
            continue
        histograms += 1
        fam_buckets = buckets[family]
        if not fam_buckets or fam_buckets[-1][0] != float("inf"):
            fail(lines, f"{family}: missing le=\"+Inf\" bucket")
        if "_count" not in samples[family] or "_sum" not in samples[family]:
            fail(lines, f"{family}: missing _count or _sum")
        if samples[family]["_count"] != fam_buckets[-1][1]:
            fail(lines, f"{family}: _count {samples[family]['_count']} != "
                        f"+Inf bucket {fam_buckets[-1][1]}")

    print(f"ok: {len(families)} families ({histograms} histograms), "
          f"{lines} lines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
