#!/usr/bin/env bash
# Builds everything, runs the full test suite and every bench binary, and
# records the outputs at the repository root (test_output.txt,
# bench_output.txt) — the reproduction record referenced by EXPERIMENTS.md.
#
# Usage: scripts/run_all.sh [--smoke]
#   --smoke  CI-sized pass: skips the `stress` ctest label and forwards
#            --smoke to every bench that understands it (the others run
#            their normal workload), so the whole sweep finishes in
#            minutes instead of hours.
set -u
cd "$(dirname "$0")/.."

SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    *) echo "usage: $0 [--smoke]" >&2; exit 2 ;;
  esac
done

cmake -B build -G Ninja
cmake --build build

if [ "$SMOKE" = 1 ]; then
  ctest --test-dir build -LE stress 2>&1 | tee test_output.txt
else
  ctest --test-dir build 2>&1 | tee test_output.txt
fi

# Benches that accept --smoke (kept in sync with bench/*.cc by grep at
# run time, so a new bench that adds the flag is picked up for free).
supports_smoke() {
  grep -q -- '--smoke' "bench/$(basename "$1").cc" 2>/dev/null
}

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    args=()
    if [ "$SMOKE" = 1 ] && supports_smoke "$b"; then
      args+=(--smoke)
    fi
    echo "===== $b ${args[*]:-} =====" | tee -a bench_output.txt
    "$b" ${args[@]+"${args[@]}"} 2>&1 | tee -a bench_output.txt
    echo | tee -a bench_output.txt
  fi
done

echo "done: test_output.txt, bench_output.txt"
