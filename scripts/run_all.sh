#!/usr/bin/env bash
# Builds everything, runs the full test suite and every bench binary, and
# records the outputs at the repository root (test_output.txt,
# bench_output.txt) — the reproduction record referenced by EXPERIMENTS.md.
set -u
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $b =====" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
    echo | tee -a bench_output.txt
  fi
done

echo "done: test_output.txt, bench_output.txt"
