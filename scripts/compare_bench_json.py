#!/usr/bin/env python3
"""Noise-aware bench-regression gate over JSON-line bench output.

Compares a candidate bench run against a committed baseline (both in
the repo's JSON-line format, bench/bench_util.h EmitJson: one
{"bench":..,"config":..,"metric":..,"value":..} object per line) and
exits non-zero when a gated metric regressed beyond its class
tolerance. CI runs it against bench/baselines/*.json after the smoke
benches (see .github/workflows/ci.yml).

Metric classes — the whole point of this gate being trustworthy on
shared CI runners is that not every number deserves the same leash:

  deterministic  counts the machine cannot change run-to-run at fixed
                 workload (node visits per query, visit reduction,
                 batch shares): tolerance --det-tol (default 2%).
  timing         throughput and central-tendency latency (qps,
                 mlookups_per_s, cycles_per_lookup, p50_ns): direction
                 aware, tolerance --timing-tol (default 35% — CI
                 neighbors are loud; a real 2x regression still trips).
  tail           extreme percentiles and maxima (p99_ns, p999_ns,
                 max_ns, *burn_rate): reported, never gated — one
                 scheduler hiccup in a 2 s smoke moves them 10x.
  unknown        anything else: reported, never gated.

Direction is inferred from the metric name (qps/…_per_s up is good;
…_ns/cycles/…_pct down is good). A metric present in the baseline but
missing from the candidate fails the gate — silent coverage loss is a
regression too. New candidate metrics are listed and pass.

Usage:
  ./build/bench/bb_batch_lookup --smoke --json > candidate.json
  scripts/compare_bench_json.py bench/baselines/bb_batch_lookup.json \
      candidate.json
  scripts/compare_bench_json.py --self-test
"""

import argparse
import json
import sys

TAIL_SUFFIXES = ("p99_ns", "p999_ns", "max_ns", "burn_rate")
DETERMINISTIC_METRICS = {
    "node_visits_per_query",
    "visit_reduction",
    "keys_per_batch",
    "span_overhead_pct",  # min-of-rounds A/B: stable, but see timing
}
HIGHER_BETTER_HINTS = ("qps", "per_s", "per_sec", "_rate_ok",
                       "efficiency", "utilization", "reduction")
LOWER_BETTER_HINTS = ("_ns", "cycles", "_pct", "_bytes", "visits")


def classify(metric: str) -> str:
    if any(metric.endswith(s) for s in TAIL_SUFFIXES):
        return "tail"
    if metric in DETERMINISTIC_METRICS:
        # span_overhead_pct is min-of-rounds but still a ratio of two
        # timed runs; treat it as timing, not deterministic.
        return "timing" if metric == "span_overhead_pct" else "deterministic"
    if any(h in metric for h in HIGHER_BETTER_HINTS + LOWER_BETTER_HINTS):
        return "timing"
    return "unknown"


def direction(metric: str) -> int:
    """+1 when larger is better, -1 when smaller is better, 0 unknown."""
    if any(h in metric for h in HIGHER_BETTER_HINTS):
        return 1
    if any(h in metric for h in LOWER_BETTER_HINTS):
        return -1
    return 0


def load_metrics(lines) -> dict:
    """(bench, config, metric) -> value; last occurrence wins."""
    out = {}
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped.startswith("{"):
            continue
        try:
            doc = json.loads(stripped)
        except json.JSONDecodeError as err:
            raise ValueError(f"line {lineno}: invalid JSON ({err})")
        if not isinstance(doc, dict):
            continue
        if not all(k in doc for k in ("bench", "config", "metric", "value")):
            continue  # headers, slo objects, registry dumps
        value = doc["value"]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        out[(doc["bench"], doc["config"], doc["metric"])] = float(value)
    return out


def compare(baseline: dict, candidate: dict, timing_tol: float,
            det_tol: float, out=sys.stdout) -> int:
    """Prints the comparison; returns the number of gate failures."""
    failures = 0
    rows = []
    for key in sorted(baseline):
        bench, config, metric = key
        base = baseline[key]
        if key not in candidate:
            rows.append((bench, config, metric, base, None, "MISSING", True))
            failures += 1
            continue
        cand = candidate[key]
        cls = classify(metric)
        sign = direction(metric)
        if base != 0:
            rel = (cand - base) / abs(base)
        else:
            rel = 0.0 if cand == 0 else float("inf") * (1 if cand > 0 else -1)
        if cls == "deterministic":
            bad = abs(rel) > det_tol
            verdict = "FAIL(det)" if bad else "ok"
        elif cls == "timing" and sign != 0:
            # A regression is movement AGAINST the good direction
            # beyond tolerance; improvements never fail.
            bad = (-sign * rel) > timing_tol
            verdict = "FAIL" if bad else "ok"
        else:
            bad = False
            verdict = "info"
        rows.append((bench, config, metric, base, cand, verdict, bad))
        if bad:
            failures += 1
    new_keys = sorted(set(candidate) - set(baseline))

    print(f"{'bench':<18} {'config':<34} {'metric':<24} "
          f"{'baseline':>14} {'candidate':>14} {'delta':>9} verdict",
          file=out)
    for bench, config, metric, base, cand, verdict, bad in rows:
        if cand is None:
            print(f"{bench:<18} {config:<34} {metric:<24} "
                  f"{base:>14.4g} {'—':>14} {'—':>9} {verdict}", file=out)
            continue
        rel = (cand - base) / abs(base) if base != 0 else 0.0
        print(f"{bench:<18} {config:<34} {metric:<24} "
              f"{base:>14.4g} {cand:>14.4g} {rel:>+8.1%} {verdict}",
              file=out)
    for bench, config, metric in new_keys:
        print(f"{bench:<18} {config:<34} {metric:<24} "
              f"{'—':>14} {candidate[(bench, config, metric)]:>14.4g} "
              f"{'—':>9} new", file=out)
    print(f"\n{len(rows)} compared, {len(new_keys)} new, "
          f"{failures} failure(s)", file=out)
    return failures


def self_test() -> int:
    """Synthetic fixtures: a clean pair must pass, a 2x qps regression
    and a deterministic drift must fail, a noisy tail must NOT fail."""

    def line(bench, config, metric, value):
        return json.dumps({"bench": bench, "config": config,
                           "metric": metric, "value": value})

    baseline = [
        line("bb_batch_lookup", "b64", "mlookups_per_s", 100.0),
        line("bb_batch_lookup", "b64", "node_visits_per_query", 4.0),
        line("bb_serve", "smoke", "achieved_qps", 2000.0),
        line("bb_serve", "smoke", "p50_ns", 120000.0),
        line("bb_serve", "smoke", "p999_ns", 2e6),
    ]
    clean = [
        line("bb_batch_lookup", "b64", "mlookups_per_s", 95.0),
        line("bb_batch_lookup", "b64", "node_visits_per_query", 4.0),
        line("bb_serve", "smoke", "achieved_qps", 1980.0),
        line("bb_serve", "smoke", "p50_ns", 131000.0),
        line("bb_serve", "smoke", "p999_ns", 1.9e7),  # 10x tail: not gated
    ]
    # The synthetic 2x regression the acceptance criteria demand, plus
    # a deterministic drift (extra node visit) that must also trip.
    regressed = [
        line("bb_batch_lookup", "b64", "mlookups_per_s", 50.0),
        line("bb_batch_lookup", "b64", "node_visits_per_query", 5.0),
        line("bb_serve", "smoke", "achieved_qps", 1000.0),
        line("bb_serve", "smoke", "p50_ns", 240000.0),
        line("bb_serve", "smoke", "p999_ns", 2e6),
    ]

    import io
    sink = io.StringIO()
    base = load_metrics(baseline)
    if compare(base, load_metrics(clean), 0.35, 0.02, out=sink) != 0:
        print("self-test FAILED: clean candidate was gated", file=sys.stderr)
        print(sink.getvalue(), file=sys.stderr)
        return 1
    sink = io.StringIO()
    failures = compare(base, load_metrics(regressed), 0.35, 0.02, out=sink)
    # 2x qps (x2), 2x p50, and the visit drift must all trip.
    if failures < 4:
        print(f"self-test FAILED: 2x regression produced only "
              f"{failures} failures", file=sys.stderr)
        print(sink.getvalue(), file=sys.stderr)
        return 1
    sink = io.StringIO()
    missing = [line("bb_batch_lookup", "b64", "mlookups_per_s", 95.0)]
    if compare(base, load_metrics(missing), 0.35, 0.02, out=sink) == 0:
        print("self-test FAILED: missing metrics were not gated",
              file=sys.stderr)
        return 1
    print("self-test ok")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?",
                        help="baseline JSON-lines file")
    parser.add_argument("candidate", nargs="?",
                        help="candidate JSON-lines file")
    parser.add_argument("--timing-tol", type=float, default=0.35,
                        help="relative tolerance for timing metrics "
                             "(default 0.35)")
    parser.add_argument("--det-tol", type=float, default=0.02,
                        help="relative tolerance for deterministic "
                             "metrics (default 0.02)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the synthetic-fixture self-test")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate files are required "
                     "(or --self-test)")
    try:
        with open(args.baseline) as f:
            baseline = load_metrics(f)
        with open(args.candidate) as f:
            candidate = load_metrics(f)
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"error: no metric lines in baseline {args.baseline}",
              file=sys.stderr)
        return 2
    failures = compare(baseline, candidate, args.timing_tol, args.det_tol)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
