// simdtree_cli — build, persist, inspect, and query indexes from the
// command line.
//
// Usage:
//   simdtree_cli build <keys.txt> <index.stix> [--structure=segtree|btree|segtrie|opttrie]
//       Builds an index from a text file (one "key[,value]" pair of
//       unsigned 64-bit integers per line; value defaults to the line
//       number) and writes it as a serialized blob.
//   simdtree_cli query <index.stix> <key> [key...]
//       Point lookups against a persisted index (loaded as a Seg-Tree).
//   simdtree_cli lookup-batch <index.stix> <keys.txt> [--group=N]
//       [--grouped] [--shards=N]
//       Batched point lookups with the group software-pipelined descent:
//       all keys from the file (one per line) are resolved with one
//       FindBatch call and printed as "key -> value" lines plus a
//       hit/miss summary. --group sets the pipeline width (default 12).
//       --grouped switches to the grouped (level-wise) descent instead:
//       the batch is sorted once and every visited tree node is loaded
//       once, the fast path for large batches (DESIGN.md "Batched
//       traversal"). --shards=N rebuilds the loaded index as a
//       range-partitioned ShardedIndex (splitters at the loaded keys'
//       quantiles) and runs the shard-aware FindBatch — one lock
//       acquisition per shard —
//       e.g.: simdtree_cli lookup-batch idx.stix probes.txt --shards=8
//   simdtree_cli scan <index.stix> <lo> <hi>
//       Range scan [lo, hi).
//   simdtree_cli stats <index.stix>
//       Blob header + rebuilt-structure statistics.
//   simdtree_cli profile <index.stix> <keys.txt> [--passes=N] [--json]
//       [--continuous] [--hz=N]
//       Profiles point lookups of all keys in the file against the
//       loaded index: per-lookup latency percentiles (lock-free
//       LogHistogram), hardware counters per lookup (perf_event_open;
//       reported as "hw": null when the syscall is denied), and the
//       instrumented wrapper's metrics registry. --json replaces the
//       human summary with one JSON document on stdout. --continuous
//       additionally arms the sampling profiler (obs/profiler.h,
//       perf_event_open CPU-clock at --hz, default 997) over the run
//       and prints the folded on-CPU stacks after the summary — the
//       offline twin of the /profilez endpoint; degrades to a comment
//       line when the PMU is denied.
//   simdtree_cli serve <index.stix> [--port=N] [--bind=ADDR]
//       [--trace-sample=N] [--slow-us=N] [--probes=keys.txt]
//       [--duration-s=N]
//       Loads the index and serves its observability surface over HTTP:
//       /metrics (OpenMetrics), /metrics.json, /tracez (recent + slow
//       query traces as JSON), /healthz. --bind widens the listen
//       address beyond the 127.0.0.1 default (e.g. --bind=0.0.0.0 for a
//       containerized Prometheus). Query tracing is sampled 1-in-N
//       (--trace-sample, default 64; 0 disables); --slow-us promotes
//       descents slower than N microseconds into the slow-query log.
//       With --probes, a foreground loop replays the keys against the
//       index so the endpoints have live data; with --duration-s the
//       process exits after N seconds (default: serve until killed).
//       --port=0 picks an ephemeral port (printed).
//   simdtree_cli serve-kv <index.stix> [--port=N] [--threads=N]
//       [--shards=N] [--bind=ADDR] [--stats-port=N] [--stats-bind=ADDR]
//       [--trace-sample=N] [--slow-us=N] [--duration-s=N]
//       [--request-sample=N] [--request-slow-us=N] [--profile-hz=N]
//       [--slo-window-s=N] [--slo-availability=F] [--slo-latency-ms=F]
//       [--slo-latency-target=F]
//       The end-to-end query service: loads the index, redistributes it
//       into a range-partitioned ShardedIndex (splitters at the stored
//       keys' quantiles, --shards, default 8), and serves the pipelined
//       binary KV protocol (net/protocol.h: GET / MGET / LOWER_BOUND /
//       PUT / DEL / STATS) with --threads epoll workers (default 2),
//       coalescing each connection's in-flight pipeline into grouped
//       FindBatch descents. The observability HTTP surface (/metrics,
//       /tracez, /requestz, /profilez, /slo, ...) runs alongside on
//       --stats-port (default 9100; --stats-port=-1 disables).
//       Request-level spans with tail sampling: --request-sample=N
//       keeps 1-in-N completed requests (0 disables, default 64) and
//       --request-slow-us promotes every request slower than N
//       microseconds regardless of the sample (default 10000); both
//       feed /requestz and histogram exemplars. --profile-hz=N arms
//       the continuous on-CPU profiler at N samples/s/thread (0
//       disables; /profilez shows the folded stacks). The /slo window
//       is shaped by --slo-window-s (default 60), --slo-availability
//       (default 0.999), --slo-latency-ms (default 5), and
//       --slo-latency-target (default 0.99). --port=0 picks an
//       ephemeral KV port (printed as "kv port: N"). SIGINT/SIGTERM
//       (or --duration-s) drains gracefully: /healthz flips to 503
//       "draining", in-flight pipelines finish and replies flush
//       before the sockets close. Drive it with bench/bb_serve.
//   simdtree_cli tracez <index.stix> <keys.txt> [--trace-sample=N]
//       [--slow-us=N] [--max=N]
//       Runs the keys against the index with tracing on (default: every
//       query) and dumps the flight recorder as one JSON document — the
//       offline twin of the /tracez endpoint.
//   simdtree_cli dispatch [--json]
//       Prints the runtime SIMD dispatch decision: detected CPU
//       features, the selected backend (after the
//       SIMDTREE_FORCE_BACKEND override, which this command validates
//       the same way every search does — an impossible force exits 2),
//       its register width, and which widths this binary carries native
//       kernels for. CI probes this before deciding which forced
//       backends a runner can exercise.
//   simdtree_cli selftest
//       Runs a quick build/query/scan round trip on synthetic data.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/serialize.h"
#include "core/simdtree.h"
#include "net/backend.h"
#include "net/server.h"
#include "obs/export.h"
#include "obs/profiler.h"
#include "obs/request_trace.h"
#include "obs/slo.h"
#include "obs/stats_server.h"
#include "obs/trace.h"
#include "simd/dispatch.h"
#include "util/rng.h"

namespace {

using simdtree::io::LoadTree;
using simdtree::io::ReadBlobFromFile;
using simdtree::io::Serialize;
using simdtree::io::WriteBlobToFile;
using Tree = simdtree::segtree::SegTree<uint64_t, uint64_t>;
using BTree = simdtree::btree::BPlusTree<uint64_t, uint64_t>;
using Trie = simdtree::segtrie::SegTrie<uint64_t, uint64_t>;

int Usage() {
  std::fprintf(stderr,
               "usage: simdtree_cli build <keys.txt> <index.stix> "
               "[--structure=segtree|btree|segtrie|opttrie]\n"
               "       simdtree_cli query <index.stix> <key> [key...]\n"
               "       simdtree_cli lookup-batch <index.stix> <keys.txt> "
               "[--group=N] [--grouped] [--shards=N]\n"
               "         (--grouped: level-wise grouped descent — sort the\n"
               "          batch once, load every visited node once)\n"
               "         (--shards=N: shard-aware batched lookup through a\n"
               "          range-partitioned ShardedIndex, e.g. --shards=8)\n"
               "       simdtree_cli scan <index.stix> <lo> <hi>\n"
               "       simdtree_cli stats <index.stix>\n"
               "       simdtree_cli profile <index.stix> <keys.txt> "
               "[--passes=N] [--json]\n"
               "         [--continuous] [--hz=N]\n"
               "         (--continuous: folded on-CPU stacks from the\n"
               "          sampling profiler, default 997 Hz)\n"
               "       simdtree_cli serve <index.stix> [--port=N] "
               "[--bind=ADDR] [--trace-sample=N]\n"
               "         [--slow-us=N] [--probes=keys.txt] [--duration-s=N]\n"
               "       simdtree_cli serve-kv <index.stix> [--port=N] "
               "[--threads=N] [--shards=N]\n"
               "         [--bind=ADDR] [--stats-port=N] [--stats-bind=ADDR]\n"
               "         [--trace-sample=N] [--slow-us=N] [--duration-s=N]\n"
               "         [--request-sample=N] [--request-slow-us=N] "
               "[--profile-hz=N]\n"
               "         [--slo-window-s=N] [--slo-availability=F]\n"
               "         [--slo-latency-ms=F] [--slo-latency-target=F]\n"
               "         (pipelined binary KV protocol over a sharded "
               "index;\n"
               "          --stats-port=-1 disables the HTTP /metrics "
               "surface;\n"
               "          --request-sample/--request-slow-us arm tail-"
               "sampled\n"
               "          request spans for /requestz + exemplars;\n"
               "          --profile-hz arms the continuous profiler for "
               "/profilez)\n"
               "       simdtree_cli tracez <index.stix> <keys.txt> "
               "[--trace-sample=N] [--slow-us=N] [--max=N]\n"
               "       simdtree_cli dispatch [--json]\n"
               "       simdtree_cli selftest\n");
  return 2;
}

bool ReadPairsFile(const char* path, std::vector<uint64_t>* keys,
                   std::vector<uint64_t>* values) {
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  char line[256];
  uint64_t line_no = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    char* end = nullptr;
    const uint64_t key = std::strtoull(line, &end, 0);
    if (end == line) continue;  // blank / comment line
    uint64_t value = line_no - 1;
    if (*end == ',') value = std::strtoull(end + 1, nullptr, 0);
    keys->push_back(key);
    values->push_back(value);
  }
  std::fclose(f);
  return true;
}

template <typename Index>
int BuildAndSave(std::vector<uint64_t> keys, std::vector<uint64_t> values,
                 const char* out_path, uint64_t capacity) {
  // Sort pairs by key (stable for duplicates) before bulk loading.
  std::vector<size_t> order(keys.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return keys[a] < keys[b];
  });
  std::vector<uint64_t> sorted_keys(keys.size());
  std::vector<uint64_t> sorted_values(values.size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_keys[i] = keys[order[i]];
    sorted_values[i] = values[order[i]];
  }

  Index index;
  for (size_t i = 0; i < sorted_keys.size(); ++i) {
    index.Insert(sorted_keys[i], sorted_values[i]);
  }
  const auto blob = Serialize<uint64_t, uint64_t>(index, capacity);
  if (!WriteBlobToFile(blob, out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("indexed %zu pairs (%zu stored), %.1f KB -> %s\n", keys.size(),
              index.size(), static_cast<double>(blob.size()) / 1024.0,
              out_path);
  return 0;
}

int CmdBuild(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string structure = "segtree";
  for (int i = 4; i < argc; ++i) {
    if (std::strncmp(argv[i], "--structure=", 12) == 0) {
      structure = argv[i] + 12;
    }
  }
  std::vector<uint64_t> keys, values;
  if (!ReadPairsFile(argv[2], &keys, &values)) return 1;
  if (structure == "segtree") {
    return BuildAndSave<Tree>(std::move(keys), std::move(values), argv[3],
                              simdtree::btree::PaperNodeCapacity(8));
  }
  if (structure == "btree") {
    return BuildAndSave<BTree>(std::move(keys), std::move(values), argv[3],
                               simdtree::btree::PaperNodeCapacity(8));
  }
  if (structure == "segtrie" || structure == "opttrie") {
    // Tries deduplicate; last value per key wins, like repeated Insert.
    Trie::Options opts{.lazy_expansion = structure == "opttrie"};
    Trie trie(opts);
    for (size_t i = 0; i < keys.size(); ++i) trie.Insert(keys[i], values[i]);
    const auto blob = Serialize<uint64_t, uint64_t>(trie, 0);
    if (!WriteBlobToFile(blob, argv[3])) return 1;
    std::printf("indexed %zu pairs (%zu distinct), %d/%d levels -> %s\n",
                keys.size(), trie.size(), trie.active_levels(),
                Trie::max_levels(), argv[3]);
    return 0;
  }
  return Usage();
}

std::optional<Tree> LoadIndex(const char* path) {
  const auto blob = ReadBlobFromFile(path);
  if (!blob.has_value()) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return std::nullopt;
  }
  auto tree = LoadTree<Tree>(blob->data(), blob->size());
  if (!tree.has_value()) {
    std::fprintf(stderr, "malformed index blob %s\n", path);
  }
  return tree;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto tree = LoadIndex(argv[2]);
  if (!tree.has_value()) return 1;
  for (int i = 3; i < argc; ++i) {
    const uint64_t key = std::strtoull(argv[i], nullptr, 0);
    if (auto v = tree->Find(key)) {
      std::printf("%llu -> %llu\n", static_cast<unsigned long long>(key),
                  static_cast<unsigned long long>(*v));
    } else {
      std::printf("%llu -> (absent)\n", static_cast<unsigned long long>(key));
    }
  }
  return 0;
}

int CmdLookupBatch(int argc, char** argv) {
  if (argc < 4) return Usage();
  int group = simdtree::kDefaultBatchGroup;
  int shards = 0;
  bool grouped = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strncmp(argv[i], "--group=", 8) == 0) {
      group = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--grouped") == 0) {
      grouped = true;
    }
  }
  auto tree = LoadIndex(argv[2]);
  if (!tree.has_value()) return 1;
  std::vector<uint64_t> keys, unused;
  if (!ReadPairsFile(argv[3], &keys, &unused)) return 1;
  size_t hits = 0;
  if (shards > 0) {
    // Redistribute the loaded pairs into a range-partitioned
    // ShardedIndex (splitters at the stored keys' quantiles) and
    // resolve the batch with the shard-aware FindBatch.
    std::vector<uint64_t> stored_keys;
    stored_keys.reserve(tree->size());
    tree->ScanRange(0, ~0ULL,
                    [&stored_keys](uint64_t k, const uint64_t&) {
                      stored_keys.push_back(k);
                    },
                    /*hi_inclusive=*/true);
    simdtree::ShardedIndex<Tree> sharded(
        static_cast<size_t>(shards),
        simdtree::ShardedIndex<Tree>::SplittersFromSample(
            stored_keys.data(), stored_keys.size(),
            static_cast<size_t>(shards)));
    tree->ScanRange(0, ~0ULL,
                    [&sharded](uint64_t k, const uint64_t& v) {
                      sharded.Insert(k, v);
                    },
                    /*hi_inclusive=*/true);
    std::vector<std::optional<uint64_t>> results(keys.size());
    sharded.FindBatch(keys.data(), keys.size(), results.data());
    for (size_t i = 0; i < keys.size(); ++i) {
      if (results[i].has_value()) {
        ++hits;
        std::printf("%llu -> %llu\n",
                    static_cast<unsigned long long>(keys[i]),
                    static_cast<unsigned long long>(*results[i]));
      } else {
        std::printf("%llu -> (absent)\n",
                    static_cast<unsigned long long>(keys[i]));
      }
    }
    std::printf("(%zu keys, %zu hits, %zu misses, group %d, %zu shards)\n",
                keys.size(), hits, keys.size() - hits, group,
                sharded.num_shards());
    return 0;
  }
  std::vector<const uint64_t*> results(keys.size());
  if (grouped) {
    // Grouped (level-wise) descent: the batch is sorted once and each
    // visited node is loaded once (btree/batch_descent.h).
    tree->FindBatchGrouped(keys.data(), keys.size(), results.data());
  } else {
    tree->FindBatch(keys.data(), keys.size(), results.data(), group);
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    if (results[i] != nullptr) {
      ++hits;
      std::printf("%llu -> %llu\n",
                  static_cast<unsigned long long>(keys[i]),
                  static_cast<unsigned long long>(*results[i]));
    } else {
      std::printf("%llu -> (absent)\n",
                  static_cast<unsigned long long>(keys[i]));
    }
  }
  const std::string mode =
      grouped ? "grouped descent" : "group " + std::to_string(group);
  std::printf("(%zu keys, %zu hits, %zu misses, %s)\n", keys.size(),
              hits, keys.size() - hits, mode.c_str());
  return 0;
}

int CmdScan(int argc, char** argv) {
  if (argc != 5) return Usage();
  auto tree = LoadIndex(argv[2]);
  if (!tree.has_value()) return 1;
  const uint64_t lo = std::strtoull(argv[3], nullptr, 0);
  const uint64_t hi = std::strtoull(argv[4], nullptr, 0);
  size_t count = 0;
  tree->ScanRange(lo, hi, [&count](uint64_t k, const uint64_t& v) {
    std::printf("%llu -> %llu\n", static_cast<unsigned long long>(k),
                static_cast<unsigned long long>(v));
    ++count;
  });
  std::printf("(%zu pairs in [%llu, %llu))\n", count,
              static_cast<unsigned long long>(lo),
              static_cast<unsigned long long>(hi));
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc != 3) return Usage();
  const auto blob = ReadBlobFromFile(argv[2]);
  if (!blob.has_value()) return 1;
  const auto header = simdtree::io::ParseHeader<uint64_t, uint64_t>(
      blob->data(), blob->size());
  if (!header.has_value()) {
    std::fprintf(stderr, "malformed header\n");
    return 1;
  }
  std::printf("blob: %zu bytes, %llu pairs, key/value %u/%u bytes, "
              "capacity %llu\n",
              blob->size(), static_cast<unsigned long long>(header->count),
              header->key_bytes, header->value_bytes,
              static_cast<unsigned long long>(header->capacity));
  auto tree = LoadTree<Tree>(blob->data(), blob->size());
  if (!tree.has_value()) return 1;
  const auto stats = tree->Stats();
  std::printf("rebuilt Seg-Tree: height %d, %zu inner + %zu leaf nodes, "
              "%.1f KB, avg leaf fill %.0f%%\n",
              stats.height, stats.inner_nodes, stats.leaf_nodes,
              static_cast<double>(stats.memory_bytes) / 1024.0,
              stats.avg_leaf_fill * 100.0);
  return 0;
}

// Profiles the workload in argv[3] against the index in argv[2]: every
// lookup is timed into an obs::LogHistogram, the whole run is measured
// under an obs::PerfCounterGroup, and the index runs through the
// instrumented SynchronizedIndex so its registry metrics populate too.
int CmdProfile(int argc, char** argv) {
  if (argc < 4) return Usage();
  int passes = 3;
  bool json = false;
  bool continuous = false;
  int hz = 997;  // prime frequency, avoids lockstep with periodic work
  for (int i = 4; i < argc; ++i) {
    if (std::strncmp(argv[i], "--passes=", 9) == 0) {
      passes = std::atoi(argv[i] + 9);
      if (passes < 1) passes = 1;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--continuous") == 0) {
      continuous = true;
    } else if (std::strncmp(argv[i], "--hz=", 5) == 0) {
      hz = std::atoi(argv[i] + 5);
      if (hz < 1) hz = 1;
    }
  }
  auto tree = LoadIndex(argv[2]);
  if (!tree.has_value()) return 1;
  std::vector<uint64_t> probes, unused;
  if (!ReadPairsFile(argv[3], &probes, &unused)) return 1;
  if (probes.empty()) {
    std::fprintf(stderr, "no probe keys in %s\n", argv[3]);
    return 1;
  }

  simdtree::SynchronizedIndex<Tree> index(std::move(*tree));
  index.EnableMetrics("cli.profile");

  simdtree::obs::LogHistogram latency;
  const bool hw_available = simdtree::obs::PerfCounterGroup::Available();
  simdtree::obs::PerfCounterGroup group;  // degrades to no-ops when denied
  size_t hits = 0;

  auto& profiler = simdtree::obs::ContinuousProfiler::Global();
  if (continuous) {
    // Arm the sampling profiler over the measurement loop; a denied
    // PMU degrades to a comment line in the folded output, not a
    // failure.
    if (profiler.Start(hz)) profiler.RegisterCurrentThread();
  }

  group.Start();
  for (int pass = 0; pass < passes; ++pass) {
    for (const uint64_t key : probes) {
      const uint64_t start = simdtree::CycleTimer::Now();
      const auto v = index.Find(key);
      latency.Record(
          static_cast<uint64_t>(simdtree::CycleTimer::ToNanoseconds(
              simdtree::CycleTimer::Now() - start)));
      if (pass == 0 && v.has_value()) ++hits;
    }
  }
  const simdtree::obs::HwCounts hw = group.Stop();
  const double ops = static_cast<double>(probes.size()) *
                     static_cast<double>(passes);

  // Folded on-CPU stacks, drained after the loop so the whole run is
  // covered. Printed after the summary (or the JSON document — the
  // document stays line 1; folded lines never start with '{').
  std::string folded;
  if (continuous) {
    folded = profiler.Collect();
    const auto pstats = profiler.stats();
    profiler.Stop();
    std::fprintf(stderr, "continuous profile: %llu samples at %d Hz "
                 "(%llu lost, %llu threads)\n",
                 static_cast<unsigned long long>(pstats.samples), hz,
                 static_cast<unsigned long long>(pstats.lost),
                 static_cast<unsigned long long>(pstats.threads));
  }

  if (json) {
    std::printf("{\"index\":\"%s\",\"probes\":%zu,\"passes\":%d,"
                "\"hits\":%zu,",
                argv[2], probes.size(), passes, hits);
    std::printf("\"latency_ns\":{\"count\":%llu,\"mean\":%.17g,"
                "\"p50\":%llu,\"p95\":%llu,\"p99\":%llu,\"p999\":%llu,"
                "\"max\":%llu},",
                static_cast<unsigned long long>(latency.Count()),
                latency.Mean(),
                static_cast<unsigned long long>(latency.Percentile(0.50)),
                static_cast<unsigned long long>(latency.Percentile(0.95)),
                static_cast<unsigned long long>(latency.Percentile(0.99)),
                static_cast<unsigned long long>(latency.Percentile(0.999)),
                static_cast<unsigned long long>(latency.Max()));
    if (hw.valid) {
      std::printf("\"hw\":{\"instructions_per_op\":%.17g,"
                  "\"cycles_per_op\":%.17g,\"ipc\":%.17g,"
                  "\"llc_misses_per_op\":%.17g,"
                  "\"branch_misses_per_op\":%.17g,\"scale\":%.17g},",
                  hw.instructions / ops, hw.cycles / ops, hw.ipc(),
                  hw.llc_misses / ops, hw.branch_misses / ops, hw.scale);
    } else {
      std::printf("\"hw\":null,");
    }
    std::printf("\"registry\":%s}\n",
                simdtree::obs::MetricsRegistry::Global().ToJson().c_str());
    if (continuous) std::printf("%s", folded.c_str());
    return 0;
  }

  std::printf("profiled %zu probes x %d passes against %s "
              "(%zu hits, %zu misses)\n",
              probes.size(), passes, argv[2], hits, probes.size() - hits);
  std::printf("latency: p50 %llu ns  p95 %llu ns  p99 %llu ns  "
              "p99.9 %llu ns  mean %.0f ns  max %llu ns\n",
              static_cast<unsigned long long>(latency.Percentile(0.50)),
              static_cast<unsigned long long>(latency.Percentile(0.95)),
              static_cast<unsigned long long>(latency.Percentile(0.99)),
              static_cast<unsigned long long>(latency.Percentile(0.999)),
              latency.Mean(),
              static_cast<unsigned long long>(latency.Max()));
  if (hw.valid) {
    std::printf("hw: %.1f instr/op  %.1f cycles/op  IPC %.2f  "
                "%.3f LLC-miss/op  %.3f br-miss/op  (scale %.2f)\n",
                hw.instructions / ops, hw.cycles / ops, hw.ipc(),
                hw.llc_misses / ops, hw.branch_misses / ops, hw.scale);
  } else if (hw_available) {
    std::printf("hw: counter read failed\n");
  } else {
    std::printf("hw: unavailable (perf_event_open denied or "
                "SIMDTREE_DISABLE_PERF set)\n");
  }
  if (continuous) std::printf("%s", folded.c_str());
  return 0;
}

// Serves /metrics, /metrics.json, /tracez, and /healthz for a loaded
// index, optionally replaying a probe workload in the foreground so the
// endpoints show live traffic.
int CmdServe(int argc, char** argv) {
  if (argc < 3) return Usage();
  long port = 9100;
  long sample = 64;
  long slow_us = -1;
  long duration_s = 0;
  std::string bind_addr = "127.0.0.1";
  const char* probes_path = nullptr;
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = std::atol(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--bind=", 7) == 0) {
      bind_addr = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--trace-sample=", 15) == 0) {
      sample = std::atol(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--slow-us=", 10) == 0) {
      slow_us = std::atol(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--probes=", 9) == 0) {
      probes_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--duration-s=", 13) == 0) {
      duration_s = std::atol(argv[i] + 13);
    } else {
      return Usage();
    }
  }
  if (port < 0 || port > 65535 || sample < 0) return Usage();
  auto tree = LoadIndex(argv[2]);
  if (!tree.has_value()) return 1;
  std::vector<uint64_t> probes, unused;
  if (probes_path != nullptr && !ReadPairsFile(probes_path, &probes, &unused))
    return 1;

  simdtree::SynchronizedIndex<Tree> index(std::move(*tree));
  index.EnableMetrics("cli.serve");
  simdtree::obs::EnableTracing(static_cast<uint32_t>(sample));
  if (slow_us >= 0) {
    simdtree::obs::Tracer::Global().SetSlowThresholdNs(
        static_cast<uint64_t>(slow_us) * 1000);
  }

  simdtree::obs::StatsServer server;
  if (!server.Start(static_cast<uint16_t>(port), bind_addr)) {
    std::fprintf(stderr, "cannot start stats server: %s\n",
                 server.error().c_str());
    return 1;
  }
  std::printf("serving %s on http://%s:%u "
              "(/metrics /metrics.json /tracez /healthz), "
              "trace sample 1-in-%ld, %zu probe keys\n",
              argv[2], bind_addr.c_str(), server.port(), sample,
              probes.size());
  std::fflush(stdout);

  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::seconds(duration_s);
  size_t lookups = 0;
  while (duration_s == 0 || std::chrono::steady_clock::now() < until) {
    if (!probes.empty()) {
      index.Find(probes[lookups % probes.size()]);
      ++lookups;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  server.Stop();
  std::printf("served %ld s, %zu probe lookups, %llu traces recorded "
              "(%llu slow)\n",
              duration_s, lookups,
              static_cast<unsigned long long>(
                  simdtree::obs::Tracer::Global().recorded()),
              static_cast<unsigned long long>(
                  simdtree::obs::Tracer::Global().slow_recorded()));
  return 0;
}

std::atomic<bool> g_serve_kv_stop{false};

void ServeKvSignalHandler(int /*signum*/) {
  g_serve_kv_stop.store(true, std::memory_order_relaxed);
}

// The end-to-end query service: the loaded index redistributed into a
// range-partitioned ShardedIndex, served over the pipelined binary KV
// protocol (net/server.h), with the observability HTTP surface running
// alongside. SIGINT/SIGTERM (or --duration-s) drains gracefully.
int CmdServeKv(int argc, char** argv) {
  if (argc < 3) return Usage();
  long port = 0;
  long threads = 2;
  long shards = 8;
  long stats_port = 9100;
  long sample = 64;
  long slow_us = -1;
  long duration_s = 0;
  long request_sample = 64;
  long request_slow_us = 10'000;
  long profile_hz = 0;
  double slo_window_s = 60.0;
  double slo_availability = 0.999;
  double slo_latency_ms = 5.0;
  double slo_latency_target = 0.99;
  std::string bind_addr = "127.0.0.1";
  std::string stats_bind = "127.0.0.1";
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = std::atol(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atol(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atol(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--bind=", 7) == 0) {
      bind_addr = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--stats-port=", 13) == 0) {
      stats_port = std::atol(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--stats-bind=", 13) == 0) {
      stats_bind = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--trace-sample=", 15) == 0) {
      sample = std::atol(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--slow-us=", 10) == 0) {
      slow_us = std::atol(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--duration-s=", 13) == 0) {
      duration_s = std::atol(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--request-sample=", 17) == 0) {
      request_sample = std::atol(argv[i] + 17);
    } else if (std::strncmp(argv[i], "--request-slow-us=", 18) == 0) {
      request_slow_us = std::atol(argv[i] + 18);
    } else if (std::strncmp(argv[i], "--profile-hz=", 13) == 0) {
      profile_hz = std::atol(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--slo-window-s=", 15) == 0) {
      slo_window_s = std::atof(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--slo-availability=", 19) == 0) {
      slo_availability = std::atof(argv[i] + 19);
    } else if (std::strncmp(argv[i], "--slo-latency-ms=", 17) == 0) {
      slo_latency_ms = std::atof(argv[i] + 17);
    } else if (std::strncmp(argv[i], "--slo-latency-target=", 21) == 0) {
      slo_latency_target = std::atof(argv[i] + 21);
    } else {
      return Usage();
    }
  }
  if (port < 0 || port > 65535 || threads < 1 || shards < 1 ||
      stats_port > 65535 || sample < 0 || request_sample < 0 ||
      request_slow_us < 0 || profile_hz < 0 || slo_window_s <= 0) {
    return Usage();
  }
  auto tree = LoadIndex(argv[2]);
  if (!tree.has_value()) return 1;

  // Redistribute into a ShardedIndex with splitters at the stored keys'
  // quantiles, the same idiom as lookup-batch --shards.
  std::vector<uint64_t> stored_keys;
  stored_keys.reserve(tree->size());
  tree->ScanRange(0, ~0ULL,
                  [&stored_keys](uint64_t k, const uint64_t&) {
                    stored_keys.push_back(k);
                  },
                  /*hi_inclusive=*/true);
  simdtree::ShardedIndex<Tree> sharded(
      static_cast<size_t>(shards),
      simdtree::ShardedIndex<Tree>::SplittersFromSample(
          stored_keys.data(), stored_keys.size(),
          static_cast<size_t>(shards)));
  tree->ScanRange(0, ~0ULL,
                  [&sharded](uint64_t k, const uint64_t& v) {
                    sharded.Insert(k, v);
                  },
                  /*hi_inclusive=*/true);
  sharded.EnableMetrics("kv.index");

  simdtree::obs::EnableTracing(static_cast<uint32_t>(sample));
  if (slow_us >= 0) {
    simdtree::obs::Tracer::Global().SetSlowThresholdNs(
        static_cast<uint64_t>(slow_us) * 1000);
  }

  simdtree::net::ShardedKvBackend<Tree> backend(&sharded);
  simdtree::net::KvServer server(&backend);
  simdtree::net::KvServerOptions opts;
  opts.port = static_cast<uint16_t>(port);
  opts.bind_addr = bind_addr;
  opts.num_workers = static_cast<int>(threads);
  opts.request_sample = static_cast<uint32_t>(request_sample);
  opts.request_slow_ns = static_cast<uint64_t>(request_slow_us) * 1000;
  if (!server.Start(opts)) {
    std::fprintf(stderr, "cannot start kv server: %s\n",
                 server.error().c_str());
    return 1;
  }

  // The /slo window over the net.* serving metrics; scrapes of /slo
  // drive the ticks (no background thread needed for a CLI server).
  simdtree::obs::SloConfig slo_config;
  slo_config.availability_target = slo_availability;
  slo_config.latency_threshold_ns =
      static_cast<uint64_t>(slo_latency_ms * 1e6);
  slo_config.latency_target = slo_latency_target;
  slo_config.window_s = slo_window_s;
  simdtree::obs::SloMonitor::Global().Configure(slo_config);

  if (profile_hz > 0) {
    auto& profiler = simdtree::obs::ContinuousProfiler::Global();
    if (profiler.Start(static_cast<int>(profile_hz))) {
      // Workers self-register on their next epoll iteration.
      std::printf("continuous profiler armed at %ld Hz (/profilez)\n",
                  profile_hz);
    } else {
      std::fprintf(stderr, "continuous profiler unavailable: %s\n",
                   profiler.error().c_str());
    }
  }

  simdtree::obs::StatsServer stats;
  if (stats_port >= 0) {
    if (!stats.Start(static_cast<uint16_t>(stats_port), stats_bind)) {
      std::fprintf(stderr, "cannot start stats server: %s\n",
                   stats.error().c_str());
      server.Stop();
      return 1;
    }
  }

  std::printf("kv port: %u\n", server.port());
  std::printf("serving %s (%zu keys, %zu shards) on %s:%u with %ld "
              "worker threads",
              argv[2], stored_keys.size(), sharded.num_shards(),
              bind_addr.c_str(), server.port(), threads);
  if (stats_port >= 0) {
    std::printf("; metrics on http://%s:%u/metrics", stats_bind.c_str(),
                stats.port());
  }
  std::printf("\n");
  std::fflush(stdout);

  std::signal(SIGINT, ServeKvSignalHandler);
  std::signal(SIGTERM, ServeKvSignalHandler);
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::seconds(duration_s);
  while (!g_serve_kv_stop.load(std::memory_order_relaxed) &&
         (duration_s == 0 || std::chrono::steady_clock::now() < until)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  server.Stop();  // graceful drain: pipelines finish, replies flush
  stats.Stop();
  simdtree::obs::ContinuousProfiler::Global().Stop();
  auto& reg = simdtree::obs::MetricsRegistry::Global();
  auto& tracer = simdtree::obs::RequestTracer::Global();
  std::printf("drained: %llu connections accepted, %llu requests "
              "served, %llu request traces retained (%llu slow)\n",
              static_cast<unsigned long long>(
                  reg.GetCounter("net.accepted")->Get()),
              static_cast<unsigned long long>(
                  reg.GetCounter("net.requests")->Get()),
              static_cast<unsigned long long>(tracer.retained()),
              static_cast<unsigned long long>(tracer.slow_retained()));
  return 0;
}

// Offline twin of the /tracez endpoint: replay a key file with tracing
// on and dump the flight recorder as JSON.
int CmdTracez(int argc, char** argv) {
  if (argc < 4) return Usage();
  long sample = 1;
  long slow_us = -1;
  long max_traces = 32;
  for (int i = 4; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-sample=", 15) == 0) {
      sample = std::atol(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--slow-us=", 10) == 0) {
      slow_us = std::atol(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--max=", 6) == 0) {
      max_traces = std::atol(argv[i] + 6);
    } else {
      return Usage();
    }
  }
  if (sample < 1 || max_traces < 0) return Usage();
  auto tree = LoadIndex(argv[2]);
  if (!tree.has_value()) return 1;
  std::vector<uint64_t> probes, unused;
  if (!ReadPairsFile(argv[3], &probes, &unused)) return 1;

  simdtree::SynchronizedIndex<Tree> index(std::move(*tree));
  simdtree::obs::Tracer::Global().Reset();
  simdtree::obs::EnableTracing(static_cast<uint32_t>(sample));
  if (slow_us >= 0) {
    simdtree::obs::Tracer::Global().SetSlowThresholdNs(
        static_cast<uint64_t>(slow_us) * 1000);
  }
  for (const uint64_t key : probes) index.Find(key);
  simdtree::obs::EnableTracing(0);
  std::printf("%s\n",
              simdtree::obs::RenderTracezJson(
                  simdtree::obs::Tracer::Global(),
                  static_cast<size_t>(max_traces))
                  .c_str());
  return 0;
}

int CmdDispatch(int argc, char** argv) {
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  namespace simd = simdtree::simd;
  // ActiveDispatch() itself validates SIMDTREE_FORCE_BACKEND and exits 2
  // on an impossible override, so this command doubles as the probe.
  const simd::DispatchDecision& d = simd::ActiveDispatch();
  if (json) {
    std::printf(
        "{\"cpu_features\":\"%s\",\"backend\":\"%s\",\"register_bits\":%d,"
        "\"forced\":%s,\"native_128\":%s,\"native_256\":%s,"
        "\"native_512\":%s}\n",
        simd::CpuFeatureString().c_str(), simd::DispatchLevelName(d.level),
        d.register_bits, d.forced ? "true" : "false",
        simd::NativeKernelsCompiled(128) ? "true" : "false",
        simd::NativeKernelsCompiled(256) ? "true" : "false",
        simd::NativeKernelsCompiled(512) ? "true" : "false");
  } else {
    std::printf("cpu features:   %s\n", simd::CpuFeatureString().c_str());
    std::printf("backend:        %s%s\n", simd::DispatchLevelName(d.level),
                d.forced ? " (forced via SIMDTREE_FORCE_BACKEND)" : "");
    std::printf("register bits:  %d\n", d.register_bits);
    std::printf("native kernels: 128=%s 256=%s 512=%s\n",
                simd::NativeKernelsCompiled(128) ? "yes" : "no",
                simd::NativeKernelsCompiled(256) ? "yes" : "no",
                simd::NativeKernelsCompiled(512) ? "yes" : "no");
    std::printf("effective:      128-bit=%s 256-bit=%s 512-bit=%s\n",
                simd::EffectiveBackendName(128),
                simd::EffectiveBackendName(256),
                simd::EffectiveBackendName(512));
  }
  return 0;
}

int CmdSelfTest() {
  simdtree::Rng rng(1);
  Tree tree;
  for (int i = 0; i < 100000; ++i) {
    tree.Insert(rng.NextBounded(1u << 20), static_cast<uint64_t>(i));
  }
  const auto blob = Serialize<uint64_t, uint64_t>(tree, 242);
  auto loaded = LoadTree<Tree>(blob.data(), blob.size());
  if (!loaded.has_value() || !loaded->Validate() ||
      loaded->size() != tree.size()) {
    std::fprintf(stderr, "selftest FAILED\n");
    return 1;
  }
  size_t scanned = 0;
  loaded->ScanRange(0, 1u << 20,
                    [&scanned](uint64_t, const uint64_t&) { ++scanned; });
  if (scanned != loaded->size()) {
    std::fprintf(stderr, "selftest FAILED (scan %zu != %zu)\n", scanned,
                 loaded->size());
    return 1;
  }
  std::printf("selftest OK (%zu pairs, %zu-byte blob, cpu: %s)\n",
              tree.size(), blob.size(),
              simdtree::simd::CpuFeatureString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "build") return CmdBuild(argc, argv);
  if (cmd == "query") return CmdQuery(argc, argv);
  if (cmd == "lookup-batch") return CmdLookupBatch(argc, argv);
  if (cmd == "scan") return CmdScan(argc, argv);
  if (cmd == "stats") return CmdStats(argc, argv);
  if (cmd == "profile") return CmdProfile(argc, argv);
  if (cmd == "serve") return CmdServe(argc, argv);
  if (cmd == "serve-kv") return CmdServeKv(argc, argv);
  if (cmd == "tracez") return CmdTracez(argc, argv);
  if (cmd == "dispatch") return CmdDispatch(argc, argv);
  if (cmd == "selftest") return CmdSelfTest();
  return Usage();
}
