// Function-pointer registries for natively-compiled k-ary search
// kernels of widths the baseline build does not carry inline.
//
// One binary, many instruction sets: the search entry points in
// kary_search.h / batch_search.h are templates, so their AVX2/AVX-512
// instantiations must be *compiled* somewhere with the matching target
// flags. That somewhere is kernels_avx2.cc and kernels_avx512.cc —
// ordinary translation units built with per-source -mavx2 /
// -mavx512f -mavx512bw flags — whose static initializers fill these
// per-(key type, eval policy, width) tables with the addresses of their
// concrete-backend instantiations. A Backend::kDispatch search at width
// 256/512 looks its table up at runtime and falls back to the scalar
// image when a slot is empty (binary built without that ISA's TU).
//
// The tables deliberately hold only *vector-leaf* kernels — functions
// whose bodies are fixed-size arrays and intrinsics. The grouped
// (frontier) engines allocate with std::vector; instantiating them in a
// TU compiled with wider target flags would emit vague-linkage copies
// of shared std:: code carrying that ISA, and the linker may prefer
// those copies binary-wide — a wrong-ISA hazard on narrower CPUs. The
// grouped engines therefore stay in baseline TUs and reach native code
// through the one-probe `compare_step` leaf.
//
// Slots are null until the owning TU's initializer runs; readers must
// treat null as "not available" and fall back. The `instance` member is
// constant-initialized (all null), so there is no initialization-order
// hazard in reading it early — only a benign scalar fallback.

#ifndef SIMDTREE_KARY_DISPATCH_KERNELS_H_
#define SIMDTREE_KARY_DISPATCH_KERNELS_H_

#include <cstdint>

#include "util/counters.h"

namespace simdtree::kary {

template <typename T, typename Eval, int kBits>
struct NativeKernels {
  // Single-query upper bounds (kary_search.h Algorithms 5 / 4).
  int64_t (*upper_bound_bf)(const T* lin, int64_t stored_slots, int64_t n,
                            T v) = nullptr;
  int64_t (*upper_bound_df)(const T* lin, int64_t perfect_slots, int64_t n,
                            T v) = nullptr;
  int64_t (*upper_bound_bf_counted)(const T* lin, int64_t stored_slots,
                                    int64_t n, T v,
                                    SearchCounters* counters) = nullptr;
  int64_t (*upper_bound_df_counted)(const T* lin, int64_t perfect_slots,
                                    int64_t n, T v,
                                    SearchCounters* counters) = nullptr;

  // Pipelined batch groups (batch_search.h).
  void (*upper_bound_bf_group)(const T* lin, int64_t stored_slots, int64_t n,
                               const T* vals, int g, int64_t* out,
                               SearchCounters* counters) = nullptr;
  void (*upper_bound_df_group)(const T* lin, int64_t perfect_slots, int64_t n,
                               const T* vals, int g, int64_t* out,
                               SearchCounters* counters) = nullptr;

  // One SIMD comparison step against a node's keys: load, broadcast,
  // compare, evaluate (paper steps 1-5). The baseline-compiled grouped
  // engines call this per probe on short runs.
  int (*compare_step)(const T* node_keys, T v) = nullptr;

  // Raw mask probes for differential tests: the backend's CmpGt/CmpEq
  // mask image over one register load of keys at `keys`, widened to 64
  // bits. Bit-identical to the scalar image of the same width.
  uint64_t (*cmp_gt_mask)(const T* keys, T v) = nullptr;
  uint64_t (*cmp_eq_mask)(const T* keys, T v) = nullptr;

  static NativeKernels instance;
};

// Zero (constant) initialization: safe to read before any registration.
template <typename T, typename Eval, int kBits>
NativeKernels<T, Eval, kBits> NativeKernels<T, Eval, kBits>::instance{};

}  // namespace simdtree::kary

#endif  // SIMDTREE_KARY_DISPATCH_KERNELS_H_
