// Shared registration body for the per-ISA kernel translation units
// (kernels_avx2.cc, kernels_avx512.cc). Included ONLY by those TUs —
// each is compiled with its own target flags, so every template
// instantiated here is emitted with that TU's instruction set.
//
// RegisterNativeKernels<B, kBits>() fills the NativeKernels tables
// (kary/dispatch_kernels.h) for all eight integer key types and all
// three bitmask-evaluation policies. The registered functions are
// wrapper specializations whose (Backend, width) template arguments are
// instantiated by no other TU in the build, so the addresses stored in
// the tables always resolve to code compiled in the registering TU.
//
// Keep this header free of std::vector and other allocating std::
// templates: see dispatch_kernels.h on the wrong-ISA vague-linkage
// hazard. Everything below bottoms out in fixed-size arrays and
// intrinsics.

#ifndef SIMDTREE_KARY_KERNELS_REGISTRAR_H_
#define SIMDTREE_KARY_KERNELS_REGISTRAR_H_

#include <cstdint>

#include "kary/batch_search.h"
#include "kary/dispatch_kernels.h"
#include "kary/kary_search.h"
#include "simd/bitmask_eval.h"

namespace simdtree::kary::registrar {

template <typename T, typename Eval, simd::Backend B, int kBits>
struct Wrappers {
  static int64_t Bf(const T* lin, int64_t stored_slots, int64_t n, T v) {
    return UpperBoundBf<T, Eval, B, kBits>(lin, stored_slots, n, v);
  }
  static int64_t Df(const T* lin, int64_t perfect_slots, int64_t n, T v) {
    return UpperBoundDf<T, Eval, B, kBits>(lin, perfect_slots, n, v);
  }
  static int64_t BfCounted(const T* lin, int64_t stored_slots, int64_t n, T v,
                           SearchCounters* counters) {
    return UpperBoundBfCounted<T, Eval, B, kBits>(lin, stored_slots, n, v,
                                                  counters);
  }
  static int64_t DfCounted(const T* lin, int64_t perfect_slots, int64_t n, T v,
                           SearchCounters* counters) {
    return UpperBoundDfCounted<T, Eval, B, kBits>(lin, perfect_slots, n, v,
                                                  counters);
  }
  static void BfGroup(const T* lin, int64_t stored_slots, int64_t n,
                      const T* vals, int g, int64_t* out,
                      SearchCounters* counters) {
    UpperBoundBfGroup<T, Eval, B, kBits>(lin, stored_slots, n, vals, g, out,
                                         counters);
  }
  static void DfGroup(const T* lin, int64_t perfect_slots, int64_t n,
                      const T* vals, int g, int64_t* out,
                      SearchCounters* counters) {
    UpperBoundDfGroup<T, Eval, B, kBits>(lin, perfect_slots, n, vals, g, out,
                                         counters);
  }
  static int Step(const T* node_keys, T v) {
    return CompareStep<T, Eval, B, kBits>(node_keys, v);
  }
  static uint64_t GtMask(const T* keys, T v) {
    using Ops = simd::Ops<T, B, kBits>;
    return static_cast<uint64_t>(
        Ops::MoveMask(Ops::CmpGt(Ops::LoadUnaligned(keys), Ops::Set1(v))));
  }
  static uint64_t EqMask(const T* keys, T v) {
    using Ops = simd::Ops<T, B, kBits>;
    return static_cast<uint64_t>(
        Ops::MoveMask(Ops::CmpEq(Ops::LoadUnaligned(keys), Ops::Set1(v))));
  }
};

template <typename T, typename Eval, simd::Backend B, int kBits>
void RegisterOne() {
  using W = Wrappers<T, Eval, B, kBits>;
  auto& table = NativeKernels<T, Eval, kBits>::instance;
  table.upper_bound_bf = &W::Bf;
  table.upper_bound_df = &W::Df;
  table.upper_bound_bf_counted = &W::BfCounted;
  table.upper_bound_df_counted = &W::DfCounted;
  table.upper_bound_bf_group = &W::BfGroup;
  table.upper_bound_df_group = &W::DfGroup;
  table.compare_step = &W::Step;
  table.cmp_gt_mask = &W::GtMask;
  table.cmp_eq_mask = &W::EqMask;
}

template <typename T, simd::Backend B, int kBits>
void RegisterEvals() {
  RegisterOne<T, simd::BitShiftEval, B, kBits>();
  RegisterOne<T, simd::SwitchCaseEval, B, kBits>();
  RegisterOne<T, simd::PopcountEval, B, kBits>();
}

template <simd::Backend B, int kBits>
void RegisterNativeKernels() {
  RegisterEvals<int8_t, B, kBits>();
  RegisterEvals<uint8_t, B, kBits>();
  RegisterEvals<int16_t, B, kBits>();
  RegisterEvals<uint16_t, B, kBits>();
  RegisterEvals<int32_t, B, kBits>();
  RegisterEvals<uint32_t, B, kBits>();
  RegisterEvals<int64_t, B, kBits>();
  RegisterEvals<uint64_t, B, kBits>();
}

}  // namespace simdtree::kary::registrar

#endif  // SIMDTREE_KARY_KERNELS_REGISTRAR_H_
