// AVX2 (256-bit) kernel registration TU.
//
// Compiled with per-source -mavx2 (src/CMakeLists.txt) regardless of
// the global SIMDTREE_AVX2 option, so a baseline-SSE binary still
// carries 256-bit kernels and selects them at runtime on AVX2 hardware.
// See kary/dispatch_kernels.h for the registry contract and
// simd/dispatch.h for the decision that routes calls here.

#include "simd/dispatch.h"

#if defined(__AVX2__)

#include "kary/kernels_registrar.h"

namespace simdtree::simd::internal {

namespace {

struct RegisterAvx2Kernels {
  RegisterAvx2Kernels() {
    kary::registrar::RegisterNativeKernels<Backend::kSse, 256>();
    g_native_kernels_256 = true;
  }
};

RegisterAvx2Kernels g_register_avx2_kernels;

}  // namespace

// Link anchor referenced from dispatch.cc: pulls this archive member
// (and with it the registrar above) into any binary that resolves the
// dispatch decision. Also registers idempotently itself, covering the
// corner where ActiveDispatch() runs during another TU's static
// initialization before g_register_avx2_kernels is constructed.
void LinkKernels256() {
  static const bool registered = [] {
    kary::registrar::RegisterNativeKernels<Backend::kSse, 256>();
    g_native_kernels_256 = true;
    return true;
  }();
  (void)registered;
}

}  // namespace simdtree::simd::internal

#else  // !__AVX2__

namespace simdtree::simd::internal {

// Toolchain cannot target AVX2: the anchor exists but registers
// nothing, and g_native_kernels_256 stays false.
void LinkKernels256() {}

}  // namespace simdtree::simd::internal

#endif  // __AVX2__
