// Scalar in-node search baselines: binary search (the paper's baseline for
// every experiment) and sequential search (the classic low-fanout
// alternative, Comer '79), both with upper-bound semantics on a plain
// sorted array.

#ifndef SIMDTREE_KARY_SCALAR_SEARCH_H_
#define SIMDTREE_KARY_SCALAR_SEARCH_H_

#include <cstdint>

#include "util/counters.h"

namespace simdtree::kary {

// Index of the first key > v in sorted[0..n). Classic iterative binary
// search with a conditional branch per iteration, matching the B+-Tree
// baseline the paper measures against.
template <typename T>
int64_t BinaryUpperBound(const T* sorted, int64_t n, T v) {
  int64_t lo = 0;
  int64_t hi = n;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (sorted[mid] > v) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

// Index of the first key > v in sorted[0..n) by linear scan.
template <typename T>
int64_t SequentialUpperBound(const T* sorted, int64_t n, T v) {
  int64_t i = 0;
  while (i < n && sorted[i] <= v) ++i;
  return i;
}

// Counted variants (trace instrumentation, obs/trace.h): identical
// results, one scalar_comparisons tick per key compare.

template <typename T>
int64_t BinaryUpperBoundCounted(const T* sorted, int64_t n, T v,
                                SearchCounters* counters) {
  int64_t lo = 0;
  int64_t hi = n;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    ++counters->scalar_comparisons;
    if (sorted[mid] > v) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

template <typename T>
int64_t SequentialUpperBoundCounted(const T* sorted, int64_t n, T v,
                                    SearchCounters* counters) {
  int64_t i = 0;
  while (i < n) {
    ++counters->scalar_comparisons;
    if (sorted[i] > v) break;
    ++i;
  }
  return i;
}

}  // namespace simdtree::kary

#endif  // SIMDTREE_KARY_SCALAR_SEARCH_H_
