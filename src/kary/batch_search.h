// Batched k-ary SIMD search with group software pipelining.
//
// A single k-ary descent is latency-bound once the linearized array
// outgrows the caches: every level is one dependent cache (and possibly
// TLB) miss, and the SIMD work per node is too small to hide it (the
// paper's Section 5.4 LLC-miss-bound regime). Batched lookups exploit
// *inter-query* parallelism instead: a group of G independent probes
// descends in lockstep, one level at a time, and each probe's next node
// is prefetched before any of them is touched — so the G misses of a
// level overlap in the memory system instead of serializing.
//
// G trades memory-level parallelism against register pressure and
// line-fill-buffer occupancy: modern x86 cores sustain 10-16 outstanding
// L1 misses, so G in the 8-16 range captures most of the available
// overlap (kDefaultBatchGroup). Group state lives in fixed arrays sized
// kMaxBatchGroup so the compiler can keep the G broadcast probe
// registers and positions live across the level loop.
//
// The per-level comparison is CompareNodeBatch: G independent
// load/compare/movemask chains issued back to back (no dependencies
// between probes), then G bitmask evaluations, reusing the existing
// Eval policies (bitmask_eval.h) unchanged.
//
// Results are bit-identical to the single-query UpperBoundBf/Df loops in
// kary_search.h for every layout, eval policy, and backend — the batch
// layer changes the schedule, never the answer.

#ifndef SIMDTREE_KARY_BATCH_SEARCH_H_
#define SIMDTREE_KARY_BATCH_SEARCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/batch.h"
#include "core/batch_sort.h"
#include "kary/kary_search.h"
#include "kary/layout.h"
#include "simd/bitmask_eval.h"
#include "simd/simd128.h"
#include "simd/simd256.h"

namespace simdtree::kary {

// Multi-probe comparison step: g simultaneous node probes, each against
// its own live broadcast register. The g load/compare/movemask chains are
// mutually independent, so the out-of-order core overlaps their cache
// misses; the mask evaluations run after all loads are issued.
template <typename T, typename Eval, simd::Backend B, int kBits>
inline void CompareNodeBatch(
    const T* const* key_ptrs,
    const typename simd::Ops<T, B, kBits>::Reg* probes, int g, int* out) {
  using Ops = simd::Ops<T, B, kBits>;
  typename simd::LaneTraits<T, kBits>::Mask masks[kMaxBatchGroup];
  for (int i = 0; i < g; ++i) {
    const auto node = Ops::LoadUnaligned(key_ptrs[i]);
    masks[i] = Ops::MoveMask(Ops::CmpGt(node, probes[i]));
  }
  for (int i = 0; i < g; ++i) {
    out[i] = Eval::template Position<T, kBits>(masks[i]);
  }
}

// Group-pipelined Algorithm 5 (breadth-first): g probes descend one
// level per iteration; after each probe's position is known, its node on
// the *next* level is prefetched, so the next iteration's g loads hit
// lines that are already in flight.
//
// Identical results to UpperBoundBf per probe (g <= kMaxBatchGroup).
template <typename T, typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
void UpperBoundBfGroup(const T* lin, int64_t stored_slots, int64_t n,
                       const T* vals, int g, int64_t* out,
                       SearchCounters* counters = nullptr) {
  if constexpr (B == simd::Backend::kDispatch) {
    if (simd::DispatchWantsNative(kBits)) {
      if constexpr (kBits == 128) {
        if constexpr (simd::kHaveSse) {
          return UpperBoundBfGroup<T, Eval, simd::Backend::kSse, 128>(
              lin, stored_slots, n, vals, g, out, counters);
        }
      } else if constexpr (kBits == 256 && simd::kHaveAvx2) {
        return UpperBoundBfGroup<T, Eval, simd::Backend::kSse, 256>(
            lin, stored_slots, n, vals, g, out, counters);
      } else {
        const auto fn =
            NativeKernels<T, Eval, kBits>::instance.upper_bound_bf_group;
        if (fn != nullptr) return fn(lin, stored_slots, n, vals, g, out,
                                     counters);
      }
    }
    return UpperBoundBfGroup<T, Eval, simd::Backend::kScalar, kBits>(
        lin, stored_slots, n, vals, g, out, counters);
  } else {
    using Ops = simd::Ops<T, B, kBits>;
    constexpr int64_t kLanes = simd::LaneTraits<T, kBits>::kLanes;  // k - 1
    constexpr int64_t kArity = simd::LaneTraits<T, kBits>::kArity;  // k
    if (n == 0) {
      for (int i = 0; i < g; ++i) out[i] = 0;
      return;
    }

    typename Ops::Reg probe[kMaxBatchGroup];
    int64_t position[kMaxBatchGroup];
    bool pruned[kMaxBatchGroup];
    const T* ptr[kMaxBatchGroup];
    int step[kMaxBatchGroup];
    for (int i = 0; i < g; ++i) {
      probe[i] = Ops::Set1(vals[i]);
      position[i] = 0;
      pruned[i] = false;
    }

    int64_t level_base = 0;   // first slot of the current level
    int64_t level_nodes = 1;  // node count on the current level
    while (level_base < stored_slots) {
      for (int i = 0; i < g; ++i) {
        const int64_t key_off = level_base + position[i] * kLanes;
        position[i] *= kArity;
        if (pruned[i] || key_off >= stored_slots) {
          // Descent into an unmaterialized all-padding subtree: the answer
          // is already n (see UpperBoundBf). Probe slot 0 as a harmless
          // stand-in so the batch compare stays branch-free.
          pruned[i] = true;
          ptr[i] = lin;
        } else {
          ptr[i] = lin + key_off;
        }
      }
      if (counters != nullptr) {
        // Logical cost mirrors UpperBoundBfCounted: pruned probes issue a
        // physical stand-in compare but do no logical work.
        for (int i = 0; i < g; ++i) {
          if (!pruned[i]) ++counters->simd_comparisons;
        }
      }
      CompareNodeBatch<T, Eval, B, kBits>(ptr, probe, g, step);
      const int64_t next_base = level_base + level_nodes * kLanes;
      for (int i = 0; i < g; ++i) {
        position[i] += pruned[i] ? 0 : step[i];
        PrefetchRead(lin + next_base + position[i] * kLanes);
      }
      level_base = next_base;
      level_nodes *= kArity;
    }
    for (int i = 0; i < g; ++i) {
      out[i] = pruned[i] ? n : std::min(position[i], n);
    }
  }
}

// Group-pipelined Algorithm 4 (depth-first, perfect storage): the next
// key offset is pure arithmetic on the comparison result, so each
// probe's next subtree start is prefetched as soon as its step is known.
template <typename T, typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
void UpperBoundDfGroup(const T* lin, int64_t perfect_slots, int64_t n,
                       const T* vals, int g, int64_t* out,
                       SearchCounters* counters = nullptr) {
  if constexpr (B == simd::Backend::kDispatch) {
    if (simd::DispatchWantsNative(kBits)) {
      if constexpr (kBits == 128) {
        if constexpr (simd::kHaveSse) {
          return UpperBoundDfGroup<T, Eval, simd::Backend::kSse, 128>(
              lin, perfect_slots, n, vals, g, out, counters);
        }
      } else if constexpr (kBits == 256 && simd::kHaveAvx2) {
        return UpperBoundDfGroup<T, Eval, simd::Backend::kSse, 256>(
            lin, perfect_slots, n, vals, g, out, counters);
      } else {
        const auto fn =
            NativeKernels<T, Eval, kBits>::instance.upper_bound_df_group;
        if (fn != nullptr) return fn(lin, perfect_slots, n, vals, g, out,
                                     counters);
      }
    }
    return UpperBoundDfGroup<T, Eval, simd::Backend::kScalar, kBits>(
        lin, perfect_slots, n, vals, g, out, counters);
  } else {
    using Ops = simd::Ops<T, B, kBits>;
    constexpr int64_t kLanes = simd::LaneTraits<T, kBits>::kLanes;
    constexpr int64_t kArity = simd::LaneTraits<T, kBits>::kArity;
    if (n == 0) {
      for (int i = 0; i < g; ++i) out[i] = 0;
      return;
    }

    typename Ops::Reg probe[kMaxBatchGroup];
    int64_t position[kMaxBatchGroup];
    int64_t key_off[kMaxBatchGroup];
    const T* ptr[kMaxBatchGroup];
    int step[kMaxBatchGroup];
    for (int i = 0; i < g; ++i) {
      probe[i] = Ops::Set1(vals[i]);
      position[i] = 0;
      key_off[i] = 0;
    }

    int64_t sub_size = perfect_slots;  // keys in the current subtree
    while (sub_size > 0) {
      for (int i = 0; i < g; ++i) ptr[i] = lin + key_off[i];
      if (counters != nullptr) counters->simd_comparisons += g;
      CompareNodeBatch<T, Eval, B, kBits>(ptr, probe, g, step);
      sub_size = (sub_size - (kArity - 1)) / kArity;  // child subtree keys
      for (int i = 0; i < g; ++i) {
        key_off[i] += kLanes + sub_size * step[i];
        position[i] = position[i] * kArity + step[i];
        PrefetchRead(lin + key_off[i]);
      }
    }
    for (int i = 0; i < g; ++i) out[i] = std::min(position[i], n);
  }
}

// Batched upper bound over `count` probes: chunks the batch into
// pipelined groups of `group` (clamped to [1, kMaxBatchGroup]).
template <typename T, typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
void UpperBoundBatch(const T* lin, int64_t stored_slots, int64_t n,
                     Layout layout, const T* vals, size_t count, int64_t* out,
                     int group = kDefaultBatchGroup,
                     SearchCounters* counters = nullptr) {
  group = ClampBatchGroup(group);
  for (size_t off = 0; off < count; off += static_cast<size_t>(group)) {
    const int g = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(group), count - off));
    if (layout == Layout::kBreadthFirst) {
      UpperBoundBfGroup<T, Eval, B, kBits>(lin, stored_slots, n, vals + off,
                                           g, out + off, counters);
    } else {
      UpperBoundDfGroup<T, Eval, B, kBits>(lin, stored_slots, n, vals + off,
                                           g, out + off, counters);
    }
  }
}

// Batched lower bound via the integer identity lower_bound(v) ==
// upper_bound(v - 1), with the type-minimum case pinned to 0 (matching
// LowerBoundFromUpperBound). Type-minimum probes are compacted out of
// the pipelined group: they resolve to 0 without descending, so — like
// the single-query identity — they contribute no comparisons.
template <typename T, typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
void LowerBoundBatch(const T* lin, int64_t stored_slots, int64_t n,
                     Layout layout, const T* vals, size_t count, int64_t* out,
                     int group = kDefaultBatchGroup,
                     SearchCounters* counters = nullptr) {
  group = ClampBatchGroup(group);
  T shifted[kMaxBatchGroup];
  int64_t sub_out[kMaxBatchGroup];
  int src[kMaxBatchGroup];
  for (size_t off = 0; off < count; off += static_cast<size_t>(group)) {
    const int g = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(group), count - off));
    int gc = 0;
    for (int i = 0; i < g; ++i) {
      const T v = vals[off + static_cast<size_t>(i)];
      if (v == std::numeric_limits<T>::min()) {
        out[off + static_cast<size_t>(i)] = 0;
        continue;
      }
      shifted[gc] = static_cast<T>(v - 1);
      src[gc] = i;
      ++gc;
    }
    if (gc == 0) continue;
    if (layout == Layout::kBreadthFirst) {
      UpperBoundBfGroup<T, Eval, B, kBits>(lin, stored_slots, n, shifted, gc,
                                           sub_out, counters);
    } else {
      UpperBoundDfGroup<T, Eval, B, kBits>(lin, stored_slots, n, shifted, gc,
                                           sub_out, counters);
    }
    for (int i = 0; i < gc; ++i) {
      out[off + static_cast<size_t>(src[i])] = sub_out[i];
    }
  }
}

// --- grouped (level-wise) batch descent ------------------------------------
//
// The pipelined groups above hide latency but still load every node once
// per query: a 4096-probe batch touches the root 4096 times. The grouped
// descent instead sorts the batch (core/batch_sort.h) and walks the tree
// level by level with a frontier of (node, contiguous query run) pairs:
// each frontier node is loaded once per batch, and its run is partitioned
// across the node's children by binary-splitting the sorted run on the
// node's separator keys (upper-bound semantics: the queries routed to
// child c are exactly those in [sep[c-1], sep[c])). Runs that shrink to a
// few queries switch to the plain SIMD compare step — one compare against
// the already-hot node — which computes the same child by construction.
//
// Results are bit-identical to UpperBoundBatch: the separators within a
// node are ascending (padding sorts last), so `first query >= sep[c]`
// splits the run exactly where the per-query SIMD step changes from c to
// c+1. Logical counters stay parity with the pipelined/counted singles
// (one simd_comparison per query per non-pruned level); the physical
// amortization shows up in SearchCounters::nodes_loaded, which counts
// each frontier node once.

namespace grouped_internal {

// One frontier entry: the queries svals[begin, end) all route to the
// same node of the current level.
struct KaryRun {
  int64_t pos = 0;      // node position within the level (BF) / rank
  int64_t key_off = 0;  // first key slot of the node (DF only)
  uint32_t begin = 0;
  uint32_t end = 0;
};

// Runs at or below this length partition by per-query SIMD steps instead
// of per-separator binary splits (the node is cache-hot either way; a
// short run has fewer queries than separators worth searching).
inline constexpr uint32_t kSplitMinRun = 8;

// The engines below take the per-probe SIMD comparison as a generic
// step callable `step_pos(node_keys, v) -> child index` instead of
// instantiating Ops directly. Concrete backends pass an inline
// CompareStep lambda (compiles to the old hoisted-register loop); the
// Backend::kDispatch route passes the registered native `compare_step`
// function pointer — keeping these std::vector-using engine bodies in
// baseline-compiled translation units only (see dispatch_kernels.h on
// the wrong-ISA vague-linkage hazard).

// Grouped Algorithm 5 engine (breadth-first) over an ascending batch:
// ranks[j] = upper bound of svals[j], for svals sorted ascending.
template <typename T, int kBits, typename StepFn>
void SortedGroupedBfEngine(const T* lin, int64_t stored_slots, int64_t n,
                           const T* svals, size_t count, int64_t* ranks,
                           SearchCounters* counters, StepFn&& step_pos) {
  constexpr int64_t kLanes = simd::LaneTraits<T, kBits>::kLanes;
  constexpr int64_t kArity = simd::LaneTraits<T, kBits>::kArity;
  if (count == 0) return;
  if (n == 0) {
    for (size_t j = 0; j < count; ++j) ranks[j] = 0;
    return;
  }
  std::vector<KaryRun> frontier, next;
  frontier.push_back(
      KaryRun{0, 0, 0, static_cast<uint32_t>(count)});
  int64_t level_base = 0;
  int64_t level_nodes = 1;
  while (level_base < stored_slots && !frontier.empty()) {
    next.clear();
    const int64_t next_base = level_base + level_nodes * kLanes;
    for (size_t r = 0; r < frontier.size(); ++r) {
      if (r + kGroupedRunLookahead < frontier.size()) {
        const int64_t la_off =
            level_base + frontier[r + kGroupedRunLookahead].pos * kLanes;
        if (la_off < stored_slots) PrefetchRead(lin + la_off);
      }
      const KaryRun& run = frontier[r];
      const int64_t key_off = level_base + run.pos * kLanes;
      if (key_off >= stored_slots) {
        // Descent into an unmaterialized all-padding subtree: the answer
        // is already n, and — like UpperBoundBfCounted — the pruned
        // queries stop paying comparisons at this level.
        for (uint32_t j = run.begin; j < run.end; ++j) ranks[j] = n;
        continue;
      }
      const T* node = lin + key_off;
      if (counters != nullptr) {
        counters->simd_comparisons += run.end - run.begin;
        ++counters->nodes_loaded;
      }
      const int64_t child_base = run.pos * kArity;
      const auto emit = [&](int64_t child, uint32_t b, uint32_t e) {
        next.push_back(KaryRun{child, 0, b, e});
        PrefetchRead(lin + next_base + child * kLanes);
      };
      if (run.end - run.begin <= kSplitMinRun) {
        // Short run: per-query SIMD step against the hot node, with
        // adjacent equal children coalesced (steps are non-decreasing
        // over the sorted run).
        uint32_t b = run.begin;
        int prev_step = -1;
        for (uint32_t j = run.begin; j < run.end; ++j) {
          const int step = step_pos(node, svals[j]);
          if (step != prev_step) {
            if (prev_step >= 0) emit(child_base + prev_step, b, j);
            b = j;
            prev_step = step;
          }
        }
        emit(child_base + prev_step, b, run.end);
      } else {
        // Long run: binary split on the separator ranks. Child c keeps
        // the queries below sep[c]; the first query >= sep[c] opens
        // child c+1 (identical to the SIMD step by the ascending-node
        // argument above).
        uint32_t cur = run.begin;
        for (int64_t c = 0; c < kLanes && cur < run.end; ++c) {
          const uint32_t split = static_cast<uint32_t>(
              std::lower_bound(svals + cur, svals + run.end, node[c]) -
              svals);
          if (split > cur) emit(child_base + c, cur, split);
          cur = split;
        }
        if (cur < run.end) emit(child_base + kLanes, cur, run.end);
      }
    }
    frontier.swap(next);
    level_base = next_base;
    level_nodes *= kArity;
  }
  for (const KaryRun& run : frontier) {
    const int64_t rank = std::min(run.pos, n);
    for (uint32_t j = run.begin; j < run.end; ++j) ranks[j] = rank;
  }
}

// Grouped Algorithm 4 engine (depth-first, perfect storage) over an
// ascending batch. No pruning: every query descends all levels, as in
// UpperBoundDfCounted.
template <typename T, int kBits, typename StepFn>
void SortedGroupedDfEngine(const T* lin, int64_t perfect_slots, int64_t n,
                           const T* svals, size_t count, int64_t* ranks,
                           SearchCounters* counters, StepFn&& step_pos) {
  constexpr int64_t kLanes = simd::LaneTraits<T, kBits>::kLanes;
  constexpr int64_t kArity = simd::LaneTraits<T, kBits>::kArity;
  if (count == 0) return;
  if (n == 0) {
    for (size_t j = 0; j < count; ++j) ranks[j] = 0;
    return;
  }
  std::vector<KaryRun> frontier, next;
  frontier.push_back(KaryRun{0, 0, 0, static_cast<uint32_t>(count)});
  int64_t sub_size = perfect_slots;
  while (sub_size > 0) {
    next.clear();
    sub_size = (sub_size - (kArity - 1)) / kArity;  // child subtree keys
    for (size_t r = 0; r < frontier.size(); ++r) {
      if (r + kGroupedRunLookahead < frontier.size()) {
        PrefetchRead(lin + frontier[r + kGroupedRunLookahead].key_off);
      }
      const KaryRun& run = frontier[r];
      const T* node = lin + run.key_off;
      if (counters != nullptr) {
        counters->simd_comparisons += run.end - run.begin;
        ++counters->nodes_loaded;
      }
      const auto emit = [&](int64_t step, uint32_t b, uint32_t e) {
        const int64_t child_off = run.key_off + kLanes + sub_size * step;
        next.push_back(
            KaryRun{run.pos * kArity + step, child_off, b, e});
        PrefetchRead(lin + child_off);
      };
      if (run.end - run.begin <= kSplitMinRun) {
        uint32_t b = run.begin;
        int prev_step = -1;
        for (uint32_t j = run.begin; j < run.end; ++j) {
          const int step = step_pos(node, svals[j]);
          if (step != prev_step) {
            if (prev_step >= 0) emit(prev_step, b, j);
            b = j;
            prev_step = step;
          }
        }
        emit(prev_step, b, run.end);
      } else {
        uint32_t cur = run.begin;
        for (int64_t c = 0; c < kLanes && cur < run.end; ++c) {
          const uint32_t split = static_cast<uint32_t>(
              std::lower_bound(svals + cur, svals + run.end, node[c]) -
              svals);
          if (split > cur) emit(c, cur, split);
          cur = split;
        }
        if (cur < run.end) emit(kLanes, cur, run.end);
      }
    }
    frontier.swap(next);
  }
  for (const KaryRun& run : frontier) {
    const int64_t rank = std::min(run.pos, n);
    for (uint32_t j = run.begin; j < run.end; ++j) ranks[j] = rank;
  }
}

}  // namespace grouped_internal

// Grouped Algorithm 5 (breadth-first) over an ascending batch:
// ranks[j] = upper bound of svals[j], for svals sorted ascending.
template <typename T, typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
void UpperBoundSortedGroupedBf(const T* lin, int64_t stored_slots, int64_t n,
                               const T* svals, size_t count, int64_t* ranks,
                               SearchCounters* counters = nullptr) {
  if constexpr (B == simd::Backend::kDispatch) {
    if (simd::DispatchWantsNative(kBits)) {
      if constexpr (kBits == 128) {
        if constexpr (simd::kHaveSse) {
          return UpperBoundSortedGroupedBf<T, Eval, simd::Backend::kSse, 128>(
              lin, stored_slots, n, svals, count, ranks, counters);
        }
      } else if constexpr (kBits == 256 && simd::kHaveAvx2) {
        return UpperBoundSortedGroupedBf<T, Eval, simd::Backend::kSse, 256>(
            lin, stored_slots, n, svals, count, ranks, counters);
      } else {
        const auto step = NativeKernels<T, Eval, kBits>::instance.compare_step;
        if (step != nullptr) {
          return grouped_internal::SortedGroupedBfEngine<T, kBits>(
              lin, stored_slots, n, svals, count, ranks, counters, step);
        }
      }
    }
    return UpperBoundSortedGroupedBf<T, Eval, simd::Backend::kScalar, kBits>(
        lin, stored_slots, n, svals, count, ranks, counters);
  } else {
    grouped_internal::SortedGroupedBfEngine<T, kBits>(
        lin, stored_slots, n, svals, count, ranks, counters,
        [](const T* node_keys, T v) {
          return CompareStep<T, Eval, B, kBits>(node_keys, v);
        });
  }
}

// Grouped Algorithm 4 (depth-first, perfect storage) over an ascending
// batch.
template <typename T, typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
void UpperBoundSortedGroupedDf(const T* lin, int64_t perfect_slots, int64_t n,
                               const T* svals, size_t count, int64_t* ranks,
                               SearchCounters* counters = nullptr) {
  if constexpr (B == simd::Backend::kDispatch) {
    if (simd::DispatchWantsNative(kBits)) {
      if constexpr (kBits == 128) {
        if constexpr (simd::kHaveSse) {
          return UpperBoundSortedGroupedDf<T, Eval, simd::Backend::kSse, 128>(
              lin, perfect_slots, n, svals, count, ranks, counters);
        }
      } else if constexpr (kBits == 256 && simd::kHaveAvx2) {
        return UpperBoundSortedGroupedDf<T, Eval, simd::Backend::kSse, 256>(
            lin, perfect_slots, n, svals, count, ranks, counters);
      } else {
        const auto step = NativeKernels<T, Eval, kBits>::instance.compare_step;
        if (step != nullptr) {
          return grouped_internal::SortedGroupedDfEngine<T, kBits>(
              lin, perfect_slots, n, svals, count, ranks, counters, step);
        }
      }
    }
    return UpperBoundSortedGroupedDf<T, Eval, simd::Backend::kScalar, kBits>(
        lin, perfect_slots, n, svals, count, ranks, counters);
  } else {
    grouped_internal::SortedGroupedDfEngine<T, kBits>(
        lin, perfect_slots, n, svals, count, ranks, counters,
        [](const T* node_keys, T v) {
          return CompareStep<T, Eval, B, kBits>(node_keys, v);
        });
  }
}

// Grouped batched upper bound: sort once, visit each node once, scatter
// results back to caller order. Same answers and logical counters as
// UpperBoundBatch; nodes_loaded additionally counts distinct node loads.
template <typename T, typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
void UpperBoundBatchGrouped(const T* lin, int64_t stored_slots, int64_t n,
                            Layout layout, const T* vals, size_t count,
                            int64_t* out,
                            SearchCounters* counters = nullptr) {
  if (count == 0) return;
  SortedBatch<T> sorted;
  SortBatchWithPermutation(vals, count, &sorted);
  std::vector<int64_t> ranks(count);
  if (layout == Layout::kBreadthFirst) {
    UpperBoundSortedGroupedBf<T, Eval, B, kBits>(
        lin, stored_slots, n, sorted.keys.data(), count, ranks.data(),
        counters);
  } else {
    UpperBoundSortedGroupedDf<T, Eval, B, kBits>(
        lin, stored_slots, n, sorted.keys.data(), count, ranks.data(),
        counters);
  }
  for (size_t j = 0; j < count; ++j) out[sorted.perm[j]] = ranks[j];
}

// Grouped batched lower bound via upper_bound(v - 1), type-minimum probes
// pinned to 0 at zero cost — the same identity and counter contract as
// the pipelined LowerBoundBatch.
template <typename T, typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
void LowerBoundBatchGrouped(const T* lin, int64_t stored_slots, int64_t n,
                            Layout layout, const T* vals, size_t count,
                            int64_t* out,
                            SearchCounters* counters = nullptr) {
  std::vector<T> shifted;
  std::vector<uint32_t> src;
  shifted.reserve(count);
  src.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (vals[i] == std::numeric_limits<T>::min()) {
      out[i] = 0;
      continue;
    }
    shifted.push_back(static_cast<T>(vals[i] - 1));
    src.push_back(static_cast<uint32_t>(i));
  }
  if (shifted.empty()) return;
  std::vector<int64_t> sub_out(shifted.size());
  UpperBoundBatchGrouped<T, Eval, B, kBits>(lin, stored_slots, n, layout,
                                            shifted.data(), shifted.size(),
                                            sub_out.data(), counters);
  for (size_t j = 0; j < shifted.size(); ++j) out[src[j]] = sub_out[j];
}

}  // namespace simdtree::kary

#endif  // SIMDTREE_KARY_BATCH_SEARCH_H_
