// k-ary SIMD search over linearized key arrays
// (paper Section 3.1, Algorithms 4 and 5).
//
// Both searches return the *upper bound* of the probe in the logical
// sorted order: the number of keys <= v, i.e. the index of the first key
// strictly greater than v (== n when no key is greater). This is exactly
// the position a B+-Tree uses to select the child pointer, and it matches
// std::upper_bound on the original sorted list — the paper's "pLevel is
// equal to the search result of a binary search on the same list of keys".
//
// The k-1 keys of each logical node are adjacent in the linearized array,
// so each level costs one SIMD load + compare + movemask + bitmask
// evaluation. Padding slots hold PadValue<T>() (greater than every real
// key, or equal to it when the maximum key is itself the type maximum —
// the final clamp to n makes both cases correct; see linearize.h).

#ifndef SIMDTREE_KARY_KARY_SEARCH_H_
#define SIMDTREE_KARY_KARY_SEARCH_H_

#include <algorithm>
#include <cstdint>

#include "kary/dispatch_kernels.h"
#include "kary/layout.h"
#include "simd/bitmask_eval.h"
#include "simd/dispatch.h"
#include "simd/simd128.h"
#include "simd/simd256.h"
#include "simd/simd512.h"
#include "util/counters.h"

// Every search entry point below accepts Backend::kDispatch (the
// default backend) and routes it at runtime: width 128 to the inline
// SSE instantiation, width 256 to inline AVX2 when this TU was compiled
// with it or else to the kernels_avx2.cc registry, width 512 to the
// kernels_avx512.cc registry — falling back to the scalar image of the
// same width whenever the CPU lacks the ISA (simd::DispatchWantsNative)
// or the binary lacks the kernels (null registry slot). The routing is
// an if-constexpr prologue so Ops<T, kDispatch, W> — deliberately an
// incomplete type — is never instantiated.

namespace simdtree::kary {

// One SIMD comparison step: loads k-1 keys at `keys`, compares them against
// the broadcast probe register, and evaluates the bitmask to the index of
// the first key greater than the probe (paper Section 2.1, steps 1-5).
template <typename T, typename Eval, simd::Backend B, int kBits = 128>
inline int CompareNode(const T* keys,
                       const typename simd::Ops<T, B, kBits>::Reg& probe) {
  using Ops = simd::Ops<T, B, kBits>;
  const auto node = Ops::LoadUnaligned(keys);
  const auto mask = Ops::MoveMask(Ops::CmpGt(node, probe));
  return Eval::template Position<T, kBits>(mask);
}

// The same step with the broadcast folded in — the shape registered in
// the native-kernel tables (dispatch_kernels.h) so baseline-compiled
// engines can take one wider-ISA comparison per probe through a
// function pointer.
template <typename T, typename Eval, simd::Backend B, int kBits>
int CompareStep(const T* node_keys, T v) {
  using Ops = simd::Ops<T, B, kBits>;
  return CompareNode<T, Eval, B, kBits>(node_keys, Ops::Set1(v));
}

// Algorithm 5: search on a breadth-first linearized array.
//
// `stored_slots` is the number of materialized key slots — either the
// perfect k^r - 1 or the truncated node-granular prefix (StoredSlots).
// A descent into a node beyond the stored prefix can only happen when the
// answer is already >= n (the pruned subtree contains only padding), so it
// returns n directly.
template <typename T, typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
int64_t UpperBoundBf(const T* lin, int64_t stored_slots, int64_t n, T v) {
  if constexpr (B == simd::Backend::kDispatch) {
    if (simd::DispatchWantsNative(kBits)) {
      if constexpr (kBits == 128) {
        if constexpr (simd::kHaveSse) {
          return UpperBoundBf<T, Eval, simd::Backend::kSse, 128>(
              lin, stored_slots, n, v);
        }
      } else if constexpr (kBits == 256 && simd::kHaveAvx2) {
        return UpperBoundBf<T, Eval, simd::Backend::kSse, 256>(
            lin, stored_slots, n, v);
      } else {
        const auto fn = NativeKernels<T, Eval, kBits>::instance.upper_bound_bf;
        if (fn != nullptr) return fn(lin, stored_slots, n, v);
      }
    }
    return UpperBoundBf<T, Eval, simd::Backend::kScalar, kBits>(
        lin, stored_slots, n, v);
  } else {
    if (n == 0) return 0;
    using Ops = simd::Ops<T, B, kBits>;
    constexpr int64_t kLanes = simd::LaneTraits<T, kBits>::kLanes;  // k - 1
    constexpr int64_t kArity = simd::LaneTraits<T, kBits>::kArity;  // k

    const auto probe = Ops::Set1(v);
    int64_t position = 0;        // pLevel: node index, then key position
    int64_t level_base = 0;      // nextBasePtr: first slot of current level
    int64_t level_nodes = 1;     // lvlCnt: node count on current level
    while (level_base < stored_slots) {
      const int64_t key_off = level_base + position * kLanes;
      position *= kArity;
      if (key_off >= stored_slots) return n;  // pruned all-padding subtree
      position += CompareNode<T, Eval, B, kBits>(lin + key_off, probe);
      level_base += level_nodes * kLanes;
      level_nodes *= kArity;
    }
    return std::min(position, n);
  }
}

// Algorithm 4: search on a depth-first linearized array. Requires the
// perfect materialization (`perfect_slots` = k^r - 1): the offset
// arithmetic jumps over `position` complete child subtrees per level.
template <typename T, typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
int64_t UpperBoundDf(const T* lin, int64_t perfect_slots, int64_t n, T v) {
  if constexpr (B == simd::Backend::kDispatch) {
    if (simd::DispatchWantsNative(kBits)) {
      if constexpr (kBits == 128) {
        if constexpr (simd::kHaveSse) {
          return UpperBoundDf<T, Eval, simd::Backend::kSse, 128>(
              lin, perfect_slots, n, v);
        }
      } else if constexpr (kBits == 256 && simd::kHaveAvx2) {
        return UpperBoundDf<T, Eval, simd::Backend::kSse, 256>(
            lin, perfect_slots, n, v);
      } else {
        const auto fn = NativeKernels<T, Eval, kBits>::instance.upper_bound_df;
        if (fn != nullptr) return fn(lin, perfect_slots, n, v);
      }
    }
    return UpperBoundDf<T, Eval, simd::Backend::kScalar, kBits>(
        lin, perfect_slots, n, v);
  } else {
    if (n == 0) return 0;
    using Ops = simd::Ops<T, B, kBits>;
    constexpr int64_t kLanes = simd::LaneTraits<T, kBits>::kLanes;  // k - 1
    constexpr int64_t kArity = simd::LaneTraits<T, kBits>::kArity;  // k

    const auto probe = Ops::Set1(v);
    int64_t position = 0;
    int64_t sub_size = perfect_slots;  // keys in the current subtree
    int64_t key_off = 0;
    while (sub_size > 0) {
      position *= kArity;
      sub_size = (sub_size - (kArity - 1)) / kArity;  // child subtree keys
      const int pos = CompareNode<T, Eval, B, kBits>(lin + key_off, probe);
      key_off += kLanes;             // skip this node's keys
      key_off += sub_size * pos;     // skip `pos` child subtrees
      position += pos;
    }
    return std::min(position, n);
  }
}

// Equality-termination extension (discussed in paper Section 3.1): each
// level additionally compares for equality and stops the descent on a hit.
// Exact for distinct keys; with duplicates it may return a smaller count
// of equal keys than UpperBoundBf (still a valid containment witness).
// The paper expects — and Figure-9-style measurements confirm — no benefit
// on flat trees; provided for the ablation bench.
template <typename T, typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
int64_t UpperBoundBfWithEquality(const T* lin, const KaryShape& shape,
                                 int64_t stored_slots, int64_t n, T v) {
  if constexpr (B == simd::Backend::kDispatch) {
    // Bench-only extension: inline native widths only, no registry slot —
    // a 512-bit dispatch without global AVX-512 flags runs the scalar
    // image (correctness is identical; ablation_equality is 128-bit).
    if (simd::DispatchWantsNative(kBits)) {
      if constexpr (kBits == 128) {
        if constexpr (simd::kHaveSse) {
          return UpperBoundBfWithEquality<T, Eval, simd::Backend::kSse, 128>(
              lin, shape, stored_slots, n, v);
        }
      } else if constexpr (kBits == 256 && simd::kHaveAvx2) {
        return UpperBoundBfWithEquality<T, Eval, simd::Backend::kSse, 256>(
            lin, shape, stored_slots, n, v);
      }
    }
    return UpperBoundBfWithEquality<T, Eval, simd::Backend::kScalar, kBits>(
        lin, shape, stored_slots, n, v);
  } else {
    if (n == 0) return 0;
    using Ops = simd::Ops<T, B, kBits>;
    constexpr int64_t kLanes = simd::LaneTraits<T, kBits>::kLanes;
    constexpr int64_t kArity = simd::LaneTraits<T, kBits>::kArity;

    const auto probe = Ops::Set1(v);
    int64_t position = 0;
    int64_t level_base = 0;
    int64_t level_nodes = 1;
    // Sorted positions spanned by one child subtree on the current level.
    int64_t child_span = (shape.slots + 1) / kArity;  // k^(r-1)
    while (level_base < stored_slots) {
      const int64_t key_off = level_base + position * kLanes;
      const int64_t node_lo = position * child_span * kArity;
      position *= kArity;
      if (key_off >= stored_slots) return n;

      const auto node = Ops::LoadUnaligned(lin + key_off);
      const auto eq_mask = Ops::MoveMask(Ops::CmpEq(node, probe));
      if (eq_mask != 0) {
        // Separator i sits at sorted position node_lo + (i+1)*child_span - 1;
        // upper bound of a matched distinct key is that position + 1.
        const int lane =
            simd::CountTrailingZeros64(static_cast<uint64_t>(eq_mask)) /
            simd::LaneTraits<T, kBits>::kMaskBitsPerLane;
        return std::min(node_lo + (lane + 1) * child_span, n);
      }
      const auto gt_mask = Ops::MoveMask(Ops::CmpGt(node, probe));
      position += Eval::template Position<T, kBits>(gt_mask);
      level_base += level_nodes * kLanes;
      level_nodes *= kArity;
      child_span /= kArity;
    }
    return std::min(position, n);
  }
}

// Instrumented variant of UpperBoundBf: identical result, additionally
// counts the SIMD comparison steps (exactly one per k-ary level touched)
// into `counters`. Used by the complexity tests; the uninstrumented
// function stays branch-free of bookkeeping.
template <typename T, typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
int64_t UpperBoundBfCounted(const T* lin, int64_t stored_slots, int64_t n,
                            T v, SearchCounters* counters) {
  if constexpr (B == simd::Backend::kDispatch) {
    if (simd::DispatchWantsNative(kBits)) {
      if constexpr (kBits == 128) {
        if constexpr (simd::kHaveSse) {
          return UpperBoundBfCounted<T, Eval, simd::Backend::kSse, 128>(
              lin, stored_slots, n, v, counters);
        }
      } else if constexpr (kBits == 256 && simd::kHaveAvx2) {
        return UpperBoundBfCounted<T, Eval, simd::Backend::kSse, 256>(
            lin, stored_slots, n, v, counters);
      } else {
        const auto fn =
            NativeKernels<T, Eval, kBits>::instance.upper_bound_bf_counted;
        if (fn != nullptr) return fn(lin, stored_slots, n, v, counters);
      }
    }
    return UpperBoundBfCounted<T, Eval, simd::Backend::kScalar, kBits>(
        lin, stored_slots, n, v, counters);
  } else {
    if (n == 0) return 0;
    using Ops = simd::Ops<T, B, kBits>;
    constexpr int64_t kLanes = simd::LaneTraits<T, kBits>::kLanes;
    constexpr int64_t kArity = simd::LaneTraits<T, kBits>::kArity;

    const auto probe = Ops::Set1(v);
    int64_t position = 0;
    int64_t level_base = 0;
    int64_t level_nodes = 1;
    while (level_base < stored_slots) {
      const int64_t key_off = level_base + position * kLanes;
      position *= kArity;
      if (key_off >= stored_slots) return n;
      ++counters->simd_comparisons;
      position += CompareNode<T, Eval, B, kBits>(lin + key_off, probe);
      level_base += level_nodes * kLanes;
      level_nodes *= kArity;
    }
    return std::min(position, n);
  }
}

// Instrumented variant of UpperBoundDf: identical result, counting one
// SIMD comparison per level (the depth-first descent always walks the
// full perfect height; there is no pruned-subtree early exit).
template <typename T, typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
int64_t UpperBoundDfCounted(const T* lin, int64_t perfect_slots, int64_t n,
                            T v, SearchCounters* counters) {
  if constexpr (B == simd::Backend::kDispatch) {
    if (simd::DispatchWantsNative(kBits)) {
      if constexpr (kBits == 128) {
        if constexpr (simd::kHaveSse) {
          return UpperBoundDfCounted<T, Eval, simd::Backend::kSse, 128>(
              lin, perfect_slots, n, v, counters);
        }
      } else if constexpr (kBits == 256 && simd::kHaveAvx2) {
        return UpperBoundDfCounted<T, Eval, simd::Backend::kSse, 256>(
            lin, perfect_slots, n, v, counters);
      } else {
        const auto fn =
            NativeKernels<T, Eval, kBits>::instance.upper_bound_df_counted;
        if (fn != nullptr) return fn(lin, perfect_slots, n, v, counters);
      }
    }
    return UpperBoundDfCounted<T, Eval, simd::Backend::kScalar, kBits>(
        lin, perfect_slots, n, v, counters);
  } else {
    if (n == 0) return 0;
    using Ops = simd::Ops<T, B, kBits>;
    constexpr int64_t kLanes = simd::LaneTraits<T, kBits>::kLanes;
    constexpr int64_t kArity = simd::LaneTraits<T, kBits>::kArity;

    const auto probe = Ops::Set1(v);
    int64_t position = 0;
    int64_t sub_size = perfect_slots;
    int64_t key_off = 0;
    while (sub_size > 0) {
      position *= kArity;
      sub_size = (sub_size - (kArity - 1)) / kArity;
      ++counters->simd_comparisons;
      const int pos = CompareNode<T, Eval, B, kBits>(lin + key_off, probe);
      key_off += kLanes;
      key_off += sub_size * pos;
      position += pos;
    }
    return std::min(position, n);
  }
}

// Lower bound on top of the upper-bound primitive: the index of the first
// key >= v. For integers, lower_bound(v) == upper_bound(v - 1) when v has
// a predecessor, and 0 when v is the type minimum.
template <typename T, typename UpperBoundFn>
int64_t LowerBoundFromUpperBound(T v, UpperBoundFn&& upper_bound) {
  if (v == std::numeric_limits<T>::min()) return 0;
  return upper_bound(static_cast<T>(v - 1));
}

}  // namespace simdtree::kary

#endif  // SIMDTREE_KARY_KARY_SEARCH_H_
