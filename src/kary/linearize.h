// Linearization of a sorted key list into k-ary search tree order
// (paper Section 3.2, Formulas 1 and 2).
//
// Two independent implementations are provided and cross-checked in tests:
//
//   * closed-form position transforms P_BF / P_DF exactly as printed in the
//     paper (recursive over tree levels), and
//   * a constructive builder that walks the logical tree once and emits the
//     complete slot <-> sorted-position permutation.
//
// `KaryLayout` wraps the permutation with helpers the tree structures need:
// linearizing a node's sorted keys (with padding / "replenishment", paper
// Section 3.3), truncated storage sizes (Table 3's N_S), and incremental
// slot lookups for the append fast path.

#ifndef SIMDTREE_KARY_LINEARIZE_H_
#define SIMDTREE_KARY_LINEARIZE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "kary/layout.h"

namespace simdtree::kary {

// Closed-form transforms: map the sorted position p (0-based) to its slot
// in the linearized array of the *perfect* tree described by `shape`.
// These follow the paper's Formula 1 (breadth-first) and Formula 2
// (depth-first) literally and exist mainly as an executable specification;
// the trees use the precomputed permutations below.
int64_t BfSlotClosedForm(int64_t p, const KaryShape& shape);
int64_t DfSlotClosedForm(int64_t p, const KaryShape& shape);

// Precomputed bijection between linearized slots and sorted positions of a
// perfect k-ary search tree, plus layout-aware helpers.
class KaryLayout {
 public:
  KaryLayout(const KaryShape& shape, Layout layout);

  const KaryShape& shape() const { return shape_; }
  Layout layout() const { return layout_; }
  int64_t slots() const { return shape_.slots; }

  // Sorted position stored in linearized slot `s`.
  int64_t SlotToSorted(int64_t s) const {
    return slot_to_sorted_[static_cast<size_t>(s)];
  }
  // Linearized slot holding sorted position `p`.
  int64_t SortedToSlot(int64_t p) const {
    return sorted_to_slot_[static_cast<size_t>(p)];
  }

  // Number of slots that must be materialized for n real keys under the
  // given storage policy. Truncated storage keeps the breadth-first prefix
  // of nodes up to the last node containing a real key (node granularity,
  // so the result is a multiple of k-1). Perfect storage is always the
  // full slot count.
  int64_t StoredSlots(int64_t n, Storage storage) const;

  // Writes the linearized form of sorted[0..n) into out[0..out_slots).
  // Slots whose sorted position is >= n receive `pad`. out_slots must be
  // StoredSlots(n, ...) or anything between that and slots().
  template <typename T>
  void Linearize(const T* sorted, int64_t n, T* out, int64_t out_slots,
                 T pad) const {
    assert(n <= shape_.slots);
    assert(out_slots <= shape_.slots);
    for (int64_t s = 0; s < out_slots; ++s) {
      const int64_t p = SlotToSorted(s);
      out[s] = p < n ? sorted[p] : pad;
    }
  }

  // Inverse: recovers the sorted order from a linearized array (pads at
  // positions >= n are ignored).
  template <typename T>
  void Delinearize(const T* lin, int64_t n, T* sorted_out) const {
    assert(n <= shape_.slots);
    for (int64_t p = 0; p < n; ++p) {
      sorted_out[p] = lin[SortedToSlot(p)];
    }
  }

 private:
  KaryShape shape_;
  Layout layout_;
  std::vector<uint32_t> slot_to_sorted_;
  std::vector<uint32_t> sorted_to_slot_;
  // prefix_max_slot_[n] = highest slot used by any of the sorted positions
  // 0..n-1; drives StoredSlots for truncated storage in O(1).
  std::vector<uint32_t> prefix_max_slot_;
};

// The padding key value ("replenishment", paper Section 3.3). The paper
// pads with Smax + 1 (text) or Smax (Figure 7); we pad with the type
// maximum, which is order-equivalent for every probe, never overflows, and
// keeps padding stable under appends. See DESIGN.md.
template <typename T>
constexpr T PadValue() {
  return std::numeric_limits<T>::max();
}

}  // namespace simdtree::kary

#endif  // SIMDTREE_KARY_LINEARIZE_H_
