// Shapes and layouts of linearized k-ary search trees (paper Section 2.2).
//
// A perfect k-ary search tree over N-1 = k^r - 1 keys has r levels; every
// node holds exactly k-1 keys and internal nodes have k children. The tree
// is a *logical* structure: it is stored as a flat array ("linearized") in
// either breadth-first or depth-first node order, so that the k-1 separator
// keys of a node are adjacent in memory and loadable with one SIMD
// instruction.

#ifndef SIMDTREE_KARY_LAYOUT_H_
#define SIMDTREE_KARY_LAYOUT_H_

#include <cstdint>

namespace simdtree::kary {

// Node order of the linearized array (paper Section 3.2).
enum class Layout {
  kBreadthFirst,
  kDepthFirst,
};

inline const char* LayoutName(Layout layout) {
  return layout == Layout::kBreadthFirst ? "breadth_first" : "depth_first";
}

// Storage policy for trees that are not perfectly full (paper Section 3.3).
//
//   kPerfect   — materialize all k^r - 1 slots; missing keys become padding.
//                Required for the depth-first layout, whose offset
//                arithmetic (Algorithm 4) assumes the full tree.
//   kTruncated — store only the breadth-first prefix of nodes up to the
//                last node holding a real key (this reproduces the paper's
//                N_S column in Table 3). Breadth-first layout only.
enum class Storage {
  kPerfect,
  kTruncated,
};

// Geometry of a perfect k-ary search tree.
struct KaryShape {
  int k = 0;        // arity: k-1 keys per node, k children
  int r = 0;        // number of levels
  int64_t slots = 0;  // k^r - 1 key slots in the perfect tree

  // Smallest shape of arity k that can hold n keys (r >= 1 even for n <= 1,
  // so an empty-but-allocated node still has a valid shape).
  static KaryShape For(int k, int64_t n) {
    KaryShape s;
    s.k = k;
    s.r = 1;
    int64_t capacity = k - 1;  // k^1 - 1
    while (capacity < n) {
      ++s.r;
      capacity = capacity * k + (k - 1);  // k^(r) - 1
    }
    s.slots = capacity;
    return s;
  }

  // Shape with exactly r levels.
  static KaryShape Exact(int k, int r) {
    KaryShape s;
    s.k = k;
    s.r = r;
    s.slots = 0;
    int64_t level_keys = k - 1;
    for (int i = 0; i < r; ++i) {
      s.slots += level_keys;
      level_keys *= k;
    }
    return s;
  }
};

}  // namespace simdtree::kary

#endif  // SIMDTREE_KARY_LAYOUT_H_
