// AVX-512 (512-bit) kernel registration TU.
//
// Compiled with per-source -mavx512f -mavx512bw (src/CMakeLists.txt):
// the one binary built with default flags carries native 512-bit
// compare-mask kernels (k = 65/33/17/9 for 8/16/32/64-bit keys) and
// selects them at runtime when CpuFeatures reports AVX-512F+BW. See
// kary/dispatch_kernels.h for the registry contract.

#include "simd/dispatch.h"

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include "kary/kernels_registrar.h"

namespace simdtree::simd::internal {

namespace {

struct RegisterAvx512Kernels {
  RegisterAvx512Kernels() {
    kary::registrar::RegisterNativeKernels<Backend::kAvx512, 512>();
    g_native_kernels_512 = true;
  }
};

RegisterAvx512Kernels g_register_avx512_kernels;

}  // namespace

// Link anchor referenced from dispatch.cc; idempotently registers as
// well, covering static-initialization-order races (see
// kernels_avx2.cc).
void LinkKernels512() {
  static const bool registered = [] {
    kary::registrar::RegisterNativeKernels<Backend::kAvx512, 512>();
    g_native_kernels_512 = true;
    return true;
  }();
  (void)registered;
}

}  // namespace simdtree::simd::internal

#else  // !(__AVX512F__ && __AVX512BW__)

namespace simdtree::simd::internal {

void LinkKernels512() {}

}  // namespace simdtree::simd::internal

#endif  // __AVX512F__ && __AVX512BW__
