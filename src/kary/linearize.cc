#include "kary/linearize.h"

#include <algorithm>

namespace simdtree::kary {

namespace {

int64_t Pow(int64_t base, int exp) {
  int64_t v = 1;
  for (int i = 0; i < exp; ++i) v *= base;
  return v;
}

// S(R) from the paper: the size of a subtree (keys + 1) rooted one level
// below level R; S(R) = floor(N / k^(R+1)) with N = k^r, and S(-1) = N.
int64_t SubtreeSize(const KaryShape& shape, int level) {
  return Pow(shape.k, shape.r) / Pow(shape.k, level + 1);
}

int64_t BfSlotRecursive(int64_t p, int level, const KaryShape& shape) {
  const int64_t k = shape.k;
  const int64_t s_r = SubtreeSize(shape, level);
  const int64_t s_rm1 = SubtreeSize(shape, level - 1);
  if ((p + 1) % s_r == 0) {
    return (p + 1) / s_rm1 * (k - 1) + ((p + 1) % (s_r * k)) / s_r - 1;
  }
  return BfSlotRecursive(p, level + 1, shape) + Pow(k, level) * (k - 1);
}

int64_t DfSlotRecursive(int64_t p, int level, const KaryShape& shape) {
  const int64_t k = shape.k;
  const int64_t s_r = SubtreeSize(shape, level);
  const int64_t s_rm1 = SubtreeSize(shape, level - 1);
  if ((p + 1) % s_r == 0) {
    return ((p + 1) % s_rm1) / s_r - 1;
  }
  return DfSlotRecursive(p, level + 1, shape) + (k - 1) +
         ((p + 1) % s_rm1) / s_r * (s_r - 1);
}

// Constructive breadth-first permutation: level by level, node by node.
// The node with in-level index j on level l covers sorted positions
// [j * k^(r-l), (j+1) * k^(r-l) - 2]; its separators are at
// j * k^(r-l) + (i+1) * k^(r-l-1) - 1 for i = 0..k-2.
void BuildBreadthFirst(const KaryShape& shape,
                       std::vector<uint32_t>* slot_to_sorted) {
  const int64_t k = shape.k;
  int64_t base = 0;
  for (int l = 0; l < shape.r; ++l) {
    const int64_t nodes = Pow(k, l);
    const int64_t span = Pow(k, shape.r - l);       // positions per node
    const int64_t child_span = span / k;            // positions per child
    for (int64_t j = 0; j < nodes; ++j) {
      for (int64_t i = 0; i < k - 1; ++i) {
        (*slot_to_sorted)[static_cast<size_t>(base + j * (k - 1) + i)] =
            static_cast<uint32_t>(j * span + (i + 1) * child_span - 1);
      }
    }
    base += nodes * (k - 1);
  }
}

// Constructive depth-first permutation: a node's k-1 separators first,
// then each child subtree in order.
void BuildDepthFirstSubtree(const KaryShape& shape, int64_t lo,
                            int64_t subtree_keys, int64_t slot_base,
                            std::vector<uint32_t>* slot_to_sorted) {
  if (subtree_keys == 0) return;
  const int64_t k = shape.k;
  const int64_t child_size = (subtree_keys + 1) / k;  // child keys + 1
  for (int64_t i = 0; i < k - 1; ++i) {
    (*slot_to_sorted)[static_cast<size_t>(slot_base + i)] =
        static_cast<uint32_t>(lo + (i + 1) * child_size - 1);
  }
  const int64_t child_base = slot_base + (k - 1);
  for (int64_t i = 0; i < k; ++i) {
    BuildDepthFirstSubtree(shape, lo + i * child_size, child_size - 1,
                           child_base + i * (child_size - 1), slot_to_sorted);
  }
}

}  // namespace

int64_t BfSlotClosedForm(int64_t p, const KaryShape& shape) {
  assert(p >= 0 && p < shape.slots);
  return BfSlotRecursive(p, 0, shape);
}

int64_t DfSlotClosedForm(int64_t p, const KaryShape& shape) {
  assert(p >= 0 && p < shape.slots);
  return DfSlotRecursive(p, 0, shape);
}

KaryLayout::KaryLayout(const KaryShape& shape, Layout layout)
    : shape_(shape), layout_(layout) {
  const size_t slots = static_cast<size_t>(shape_.slots);
  slot_to_sorted_.resize(slots);
  if (layout_ == Layout::kBreadthFirst) {
    BuildBreadthFirst(shape_, &slot_to_sorted_);
  } else {
    BuildDepthFirstSubtree(shape_, 0, shape_.slots, 0, &slot_to_sorted_);
  }

  sorted_to_slot_.resize(slots);
  for (size_t s = 0; s < slots; ++s) {
    sorted_to_slot_[slot_to_sorted_[s]] = static_cast<uint32_t>(s);
  }

  prefix_max_slot_.resize(slots + 1);
  prefix_max_slot_[0] = 0;
  uint32_t running = 0;
  for (size_t p = 0; p < slots; ++p) {
    running = std::max(running, sorted_to_slot_[p]);
    prefix_max_slot_[p + 1] = running;
  }
}

int64_t KaryLayout::StoredSlots(int64_t n, Storage storage) const {
  assert(n >= 0 && n <= shape_.slots);
  if (storage == Storage::kPerfect) return shape_.slots;
  // Truncated storage relies on missing nodes being a breadth-first array
  // suffix, which holds only for the breadth-first layout (see layout.h).
  assert(layout_ == Layout::kBreadthFirst);
  if (n == 0) return 0;
  const int64_t last_slot = prefix_max_slot_[static_cast<size_t>(n)];
  const int64_t keys_per_node = shape_.k - 1;
  const int64_t nodes = last_slot / keys_per_node + 1;
  return nodes * keys_per_node;
}

}  // namespace simdtree::kary
