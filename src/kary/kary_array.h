// KaryArray: an immutable sorted key set stored as a linearized k-ary
// search tree and searched with SIMD — the standalone form of the paper's
// Section 2.2 building block (a single "node" of arbitrary size).
//
// Useful on its own for static in-memory dictionaries, and used by the
// micro benches; the Seg-Tree embeds the same machinery per tree node.

#ifndef SIMDTREE_KARY_KARY_ARRAY_H_
#define SIMDTREE_KARY_KARY_ARRAY_H_

#include <cassert>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "kary/batch_search.h"
#include "kary/kary_search.h"
#include "kary/linearize.h"
#include "obs/trace.h"
#include "simd/simd128.h"
#include "util/cycle_timer.h"

namespace simdtree::kary {

template <typename T, int kBits = 128>
class KaryArray {
 public:
  static constexpr int kArity = simd::LaneTraits<T, kBits>::kArity;

  // `sorted` must be ascending (duplicates allowed). The depth-first
  // layout forces perfect storage (see layout.h).
  KaryArray(std::vector<T> sorted, Layout layout,
            Storage storage = Storage::kTruncated)
      : n_(static_cast<int64_t>(sorted.size())),
        layout_kind_(layout),
        storage_(layout == Layout::kDepthFirst ? Storage::kPerfect : storage),
        layout_(KaryShape::For(kArity, n_ == 0 ? 1 : n_), layout) {
    lin_.resize(static_cast<size_t>(layout_.StoredSlots(n_, storage_)));
    layout_.Linearize(sorted.data(), n_, lin_.data(),
                      static_cast<int64_t>(lin_.size()), PadValue<T>());
  }

  int64_t size() const { return n_; }
  int64_t stored_slots() const { return static_cast<int64_t>(lin_.size()); }
  const KaryLayout& layout() const { return layout_; }

  // Index of the first key > v in the logical sorted order.
  template <typename Eval = simd::PopcountEval,
            simd::Backend B = simd::kDefaultBackend>
  int64_t UpperBound(T v) const {
    if (layout_kind_ == Layout::kBreadthFirst) {
      return UpperBoundBf<T, Eval, B, kBits>(lin_.data(), stored_slots(), n_,
                                             v);
    }
    return UpperBoundDf<T, Eval, B, kBits>(lin_.data(), stored_slots(), n_,
                                           v);
  }

  // Index of the first key >= v in the logical sorted order.
  template <typename Eval = simd::PopcountEval,
            simd::Backend B = simd::kDefaultBackend>
  int64_t LowerBound(T v) const {
    return LowerBoundFromUpperBound<T>(
        v, [this](T u) { return UpperBound<Eval, B>(u); });
  }

  template <typename Eval = simd::PopcountEval,
            simd::Backend B = simd::kDefaultBackend>
  bool Contains(T v) const {
    const int64_t ub = UpperBound<Eval, B>(v);
    return ub > 0 && KeyAtSortedPosition(ub - 1) == v;
  }

  // Traced upper bound (obs/trace.h): same result as UpperBound,
  // recording the whole linearized array as one level span — it is one
  // logical "node" of arbitrary size (paper Section 2.2), so the span's
  // simd_cmps is the full k-ary descent depth.
  template <typename Eval = simd::PopcountEval,
            simd::Backend B = simd::kDefaultBackend>
  int64_t UpperBoundTraced(T v, obs::DescentTrace* t) const {
    t->key = static_cast<uint64_t>(static_cast<std::make_unsigned_t<T>>(v));
    t->backend = static_cast<uint8_t>(obs::TraceBackend::kKaryArray);
    const uint64_t start = CycleTimer::Now();
    SearchCounters cmps;
    int64_t ub;
    if (layout_kind_ == Layout::kBreadthFirst) {
      ub = UpperBoundBfCounted<T, Eval, B, kBits>(lin_.data(),
                                                  stored_slots(), n_, v,
                                                  &cmps);
    } else {
      ub = UpperBoundDfCounted<T, Eval, B, kBits>(lin_.data(),
                                                  stored_slots(), n_, v,
                                                  &cmps);
    }
    obs::AppendTraceLevel(
        t, /*node_ref=*/0,
        layout_kind_ == Layout::kBreadthFirst ? 1 : 2,
        obs::kTraceSlabUnknown, cmps, CycleTimer::Now() - start);
    return ub;
  }

  // Traced membership probe built on UpperBoundTraced; stamps `found`.
  template <typename Eval = simd::PopcountEval,
            simd::Backend B = simd::kDefaultBackend>
  bool ContainsTraced(T v, obs::DescentTrace* t) const {
    const int64_t ub = UpperBoundTraced<Eval, B>(v, t);
    const bool found = ub > 0 && KeyAtSortedPosition(ub - 1) == v;
    t->found = found ? 1 : 0;
    return found;
  }

  // Batched upper bound: out[i] = UpperBound(vals[i]) for all i, computed
  // with group software pipelining (batch_search.h) — groups of `group`
  // probes descend in lockstep with each probe's next node prefetched one
  // level ahead, overlapping the per-level cache misses.
  // With a non-null `counters`, accumulates the batch's logical search
  // cost (one SIMD comparison per level per probe, pruned subtrees
  // excluded) — identical to summing the single-query counted variants.
  template <typename Eval = simd::PopcountEval,
            simd::Backend B = simd::kDefaultBackend>
  void UpperBoundBatch(const T* vals, size_t count, int64_t* out,
                       int group = kDefaultBatchGroup,
                       SearchCounters* counters = nullptr) const {
    kary::UpperBoundBatch<T, Eval, B, kBits>(lin_.data(), stored_slots(), n_,
                                             layout_kind_, vals, count, out,
                                             group, counters);
  }

  // Batched lower bound: out[i] = LowerBound(vals[i]) for all i.
  template <typename Eval = simd::PopcountEval,
            simd::Backend B = simd::kDefaultBackend>
  void LowerBoundBatch(const T* vals, size_t count, int64_t* out,
                       int group = kDefaultBatchGroup,
                       SearchCounters* counters = nullptr) const {
    kary::LowerBoundBatch<T, Eval, B, kBits>(lin_.data(), stored_slots(), n_,
                                             layout_kind_, vals, count, out,
                                             group, counters);
  }

  // Grouped (level-wise) batched upper bound: sorts the batch once and
  // visits each k-ary node once, partitioning the sorted run across the
  // node's children (batch_search.h). Same answers and logical counters
  // as UpperBoundBatch; counters->nodes_loaded additionally counts the
  // distinct node loads, so nodes-loaded/query shows the amortization.
  // Wins over the pipelined path once the batch is large relative to
  // levels() (see UseGroupedDescent in core/batch.h).
  template <typename Eval = simd::PopcountEval,
            simd::Backend B = simd::kDefaultBackend>
  void UpperBoundBatchGrouped(const T* vals, size_t count, int64_t* out,
                              SearchCounters* counters = nullptr) const {
    kary::UpperBoundBatchGrouped<T, Eval, B, kBits>(
        lin_.data(), stored_slots(), n_, layout_kind_, vals, count, out,
        counters);
  }

  // Grouped batched lower bound: out[i] = LowerBound(vals[i]) for all i.
  template <typename Eval = simd::PopcountEval,
            simd::Backend B = simd::kDefaultBackend>
  void LowerBoundBatchGrouped(const T* vals, size_t count, int64_t* out,
                              SearchCounters* counters = nullptr) const {
    kary::LowerBoundBatchGrouped<T, Eval, B, kBits>(
        lin_.data(), stored_slots(), n_, layout_kind_, vals, count, out,
        counters);
  }

  // Descent depth (k-ary levels) — the `levels` input of the
  // pipelined-vs-grouped heuristic.
  int levels() const { return layout_.shape().r; }

  // Key at logical sorted position p (O(1) via the permutation).
  T KeyAtSortedPosition(int64_t p) const {
    assert(p >= 0 && p < n_);
    return lin_[static_cast<size_t>(layout_.SortedToSlot(p))];
  }

  size_t MemoryBytes() const { return lin_.size() * sizeof(T); }

 private:
  int64_t n_;
  Layout layout_kind_;
  Storage storage_;
  KaryLayout layout_;
  std::vector<T> lin_;
};

}  // namespace simdtree::kary

#endif  // SIMDTREE_KARY_KARY_ARRAY_H_
