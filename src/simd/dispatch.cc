#include "simd/dispatch.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "simd/simd128.h"

namespace simdtree::simd {

namespace internal {
bool g_native_kernels_256 = false;
bool g_native_kernels_512 = false;
}  // namespace internal

const char* DispatchLevelName(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return "scalar";
    case DispatchLevel::kSse:
      return "sse";
    case DispatchLevel::kAvx2:
      return "avx2";
    case DispatchLevel::kAvx512:
      return "avx512";
  }
  return "scalar";
}

DispatchLevel MaxSupportedLevel(const CpuFeatures& f) {
  // BW is required for the 8/16-bit lane compares; F alone cannot serve
  // all four key widths, so it does not qualify.
  if (f.avx512f && f.avx512bw) return DispatchLevel::kAvx512;
  if (f.avx2) return DispatchLevel::kAvx2;
  if (f.sse2 && f.sse42 && f.popcnt) return DispatchLevel::kSse;
  return DispatchLevel::kScalar;
}

bool NativeKernelsCompiled(int register_bits) {
  switch (register_bits) {
    case 128:
      return kHaveSse;
    case 256:
#if defined(__AVX2__)
      return true;
#else
      return internal::g_native_kernels_256;
#endif
    case 512:
      return internal::g_native_kernels_512;
    default:
      return false;
  }
}

namespace {

int RegisterBitsForLevel(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kAvx512:
      return 512;
    case DispatchLevel::kAvx2:
      return 256;
    case DispatchLevel::kSse:
    case DispatchLevel::kScalar:
      return 128;
  }
  return 128;
}

// Whether this binary carries the native kernels a forced level needs.
bool LevelCompiledIn(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return true;
    case DispatchLevel::kSse:
      return NativeKernelsCompiled(128);
    case DispatchLevel::kAvx2:
      return NativeKernelsCompiled(256);
    case DispatchLevel::kAvx512:
      return NativeKernelsCompiled(512);
  }
  return false;
}

}  // namespace

bool ResolveDispatchLevel(const CpuFeatures& f, const char* force,
                          DispatchLevel* out, std::string* error) {
  DispatchLevel max = MaxSupportedLevel(f);
  // Auto mode never selects a level whose kernels are absent from this
  // binary — it degrades to the widest level actually present.
  while (!LevelCompiledIn(max) && max != DispatchLevel::kScalar) {
    max = static_cast<DispatchLevel>(static_cast<int>(max) - 1);
  }
  if (force == nullptr || force[0] == '\0') {
    *out = max;
    return true;
  }

  DispatchLevel want;
  if (std::strcmp(force, "scalar") == 0) {
    want = DispatchLevel::kScalar;
  } else if (std::strcmp(force, "sse") == 0) {
    want = DispatchLevel::kSse;
  } else if (std::strcmp(force, "avx2") == 0) {
    want = DispatchLevel::kAvx2;
  } else if (std::strcmp(force, "avx512") == 0) {
    want = DispatchLevel::kAvx512;
  } else {
    if (error != nullptr) {
      *error = std::string("SIMDTREE_FORCE_BACKEND='") + force +
               "' is not a known backend (valid: scalar, sse, avx2, avx512)";
    }
    return false;
  }

  const DispatchLevel cpu_max = MaxSupportedLevel(f);
  if (static_cast<int>(want) > static_cast<int>(cpu_max)) {
    if (error != nullptr) {
      *error = std::string("SIMDTREE_FORCE_BACKEND=") + force +
               " but this CPU only supports " + DispatchLevelName(cpu_max) +
               " (features: " + CpuFeatureString() + ")";
    }
    return false;
  }
  if (!LevelCompiledIn(want)) {
    if (error != nullptr) {
      *error = std::string("SIMDTREE_FORCE_BACKEND=") + force +
               " but this binary was built without " + DispatchLevelName(want) +
               " kernels (rebuild with SIMDTREE_RUNTIME_SIMD=ON)";
    }
    return false;
  }
  *out = want;
  return true;
}

const DispatchDecision& ActiveDispatch() {
  static const DispatchDecision decision = [] {
#if defined(SIMDTREE_RUNTIME_SIMD)
    // No-ops at runtime; the references force the linker to pull the
    // per-ISA registration TUs out of the static archive.
    internal::LinkKernels256();
    internal::LinkKernels512();
#endif
    const char* force = std::getenv("SIMDTREE_FORCE_BACKEND");
    DispatchLevel level = DispatchLevel::kScalar;
    std::string error;
    if (!ResolveDispatchLevel(DetectCpuFeatures(), force, &level, &error)) {
      std::fprintf(stderr, "simdtree: %s\n", error.c_str());
      std::exit(2);
    }
    DispatchDecision d;
    d.level = level;
    d.register_bits = RegisterBitsForLevel(level);
    d.forced = force != nullptr && force[0] != '\0';
    return d;
  }();
  return decision;
}

const char* EffectiveBackendName(int register_bits) {
  if (!DispatchWantsNative(register_bits) ||
      !NativeKernelsCompiled(register_bits)) {
    return "scalar";
  }
  switch (register_bits) {
    case 128:
      return "sse";
    case 256:
      return "avx2";
    case 512:
      return "avx512";
    default:
      return "scalar";
  }
}

}  // namespace simdtree::simd
