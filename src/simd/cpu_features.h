// Runtime CPU feature detection.
//
// The library is compiled for a fixed instruction set (SSE4.2 + popcnt by
// default), but the bench and example binaries report the actually
// available features so results are interpretable.

#ifndef SIMDTREE_SIMD_CPU_FEATURES_H_
#define SIMDTREE_SIMD_CPU_FEATURES_H_

#include <string>

namespace simdtree::simd {

struct CpuFeatures {
  bool sse2 = false;
  bool sse42 = false;
  bool popcnt = false;
  bool avx2 = false;
  // AVX-512 subsets relevant to wider compare kernels: foundation,
  // byte/word compares, and 128/256-bit vector-length encoding.
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512vl = false;
};

// Queries the running CPU (x86 cpuid; all-false elsewhere).
CpuFeatures DetectCpuFeatures();

// Human-readable one-line summary, e.g.
// "sse2 sse4.2 popcnt avx2 avx512f avx512bw avx512vl".
std::string CpuFeatureString();

}  // namespace simdtree::simd

#endif  // SIMDTREE_SIMD_CPU_FEATURES_H_
