// Bitmask-evaluation algorithms (paper Section 2.1, Algorithms 1-3).
//
// A greater-than comparison of a *sorted* lane register against a broadcast
// search key yields a mask with a single switch point: lanes 0..p-1 hold
// keys <= v (bits clear) and lanes p..c-1 hold keys > v (bits set). All
// three algorithms decode the byte-granular movemask into that position p,
// the index of the first key greater than the search key (p == c when no
// key is greater). They differ only in how the decoding is done:
//
//   Algorithm 1 (BitShiftEval)   — loop over segments testing the lane LSB.
//   Algorithm 2 (SwitchCaseEval) — a switch over the c+1 valid masks.
//   Algorithm 3 (PopcountEval)   — popcnt(mask) / bytes-per-lane.
//
// Note: the paper's Algorithm 1 pseudocode shifts the mask by c (the
// segment count); the shift that makes the algorithm correct is by the
// number of mask bits per segment, which is what we implement.
//
// The evaluation policy is a template parameter of the k-ary search so the
// Figure 9 experiment can swap algorithms without touching the search
// code. All three support every register width (128-bit SSE masks are 16
// bits, 256-bit AVX2 masks are 32 bits, 512-bit AVX-512 masks are
// lane-granular: 8-64 bits). The per-segment stride is
// LaneTraits::kMaskBitsPerLane — byte-granular movemasks at 128/256,
// one bit per lane at 512.

#ifndef SIMDTREE_SIMD_BITMASK_EVAL_H_
#define SIMDTREE_SIMD_BITMASK_EVAL_H_

#include <cstdint>

#include "simd/simd128.h"

namespace simdtree::simd {

// Index of the lowest set bit. Masks here always fit uint64_t.
inline int CountTrailingZeros64(uint64_t x) { return __builtin_ctzll(x); }

// Algorithm 1: Bit Shifting. Counts one bit per segment, shifting by the
// per-segment stride, then converts the greater-count into a position.
struct BitShiftEval {
  static constexpr const char* kName = "bit_shift";

  template <typename T, int kRegisterBits = 128>
  static int Position(uint64_t mask) {
    constexpr int c = LaneTraits<T, kRegisterBits>::kLanes;
    constexpr int stride = LaneTraits<T, kRegisterBits>::kMaskBitsPerLane;
    int greater = 0;
    for (int i = 0; i < c; ++i) {
      greater += static_cast<int>(mask & 0x1u);
      mask >>= stride;
    }
    return c - greater;
  }
};

// Algorithm 2: Switch Case. One case per valid bitmask; the paper spells
// out the 32-bit/128-bit variant, we provide all lane widths for both
// register widths. An unexpected mask (impossible for sorted input) falls
// through to the no-key-greater position like the paper's default.
struct SwitchCaseEval {
  static constexpr const char* kName = "switch_case";

  template <typename T, int kRegisterBits = 128>
  static int Position(uint64_t mask) {
    constexpr int width = LaneTraits<T, kRegisterBits>::kBytesPerLane;
    if constexpr (kRegisterBits == 512) {
      // Lane-granular masks: the c + 1 valid values are suffix runs of
      // set bits, so the paper's dense switch degenerates — each case
      // body is "return index of the lowest set bit", which is exactly
      // the jump table a compiler would build for up to 65 cases. We
      // emit the collapsed form directly.
      if (mask == 0) return LaneTraits<T, kRegisterBits>::kLanes;
      return CountTrailingZeros64(mask);
    } else if constexpr (kRegisterBits == 128) {
      if constexpr (width == 8) {
        switch (mask) {
          case 0xFFFFu: return 0;
          case 0xFF00u: return 1;
          default: return 2;  // 0x0000
        }
      } else if constexpr (width == 4) {
        switch (mask) {
          case 0xFFFFu: return 0;
          case 0xFFF0u: return 1;
          case 0xFF00u: return 2;
          case 0xF000u: return 3;
          default: return 4;  // 0x0000
        }
      } else if constexpr (width == 2) {
        switch (mask) {
          case 0xFFFFu: return 0;
          case 0xFFFCu: return 1;
          case 0xFFF0u: return 2;
          case 0xFFC0u: return 3;
          case 0xFF00u: return 4;
          case 0xFC00u: return 5;
          case 0xF000u: return 6;
          case 0xC000u: return 7;
          default: return 8;  // 0x0000
        }
      } else {
        static_assert(width == 1);
        switch (mask) {
          case 0xFFFFu: return 0;
          case 0xFFFEu: return 1;
          case 0xFFFCu: return 2;
          case 0xFFF8u: return 3;
          case 0xFFF0u: return 4;
          case 0xFFE0u: return 5;
          case 0xFFC0u: return 6;
          case 0xFF80u: return 7;
          case 0xFF00u: return 8;
          case 0xFE00u: return 9;
          case 0xFC00u: return 10;
          case 0xF800u: return 11;
          case 0xF000u: return 12;
          case 0xE000u: return 13;
          case 0xC000u: return 14;
          case 0x8000u: return 15;
          default: return 16;  // 0x0000
        }
      }
    } else {
      static_assert(kRegisterBits == 256);
      if constexpr (width == 8) {
        switch (mask) {
          case 0xFFFFFFFFu: return 0;
          case 0xFFFFFF00u: return 1;
          case 0xFFFF0000u: return 2;
          case 0xFF000000u: return 3;
          default: return 4;
        }
      } else if constexpr (width == 4) {
        switch (mask) {
          case 0xFFFFFFFFu: return 0;
          case 0xFFFFFFF0u: return 1;
          case 0xFFFFFF00u: return 2;
          case 0xFFFFF000u: return 3;
          case 0xFFFF0000u: return 4;
          case 0xFFF00000u: return 5;
          case 0xFF000000u: return 6;
          case 0xF0000000u: return 7;
          default: return 8;
        }
      } else if constexpr (width == 2) {
        switch (mask) {
          case 0xFFFFFFFFu: return 0;
          case 0xFFFFFFFCu: return 1;
          case 0xFFFFFFF0u: return 2;
          case 0xFFFFFFC0u: return 3;
          case 0xFFFFFF00u: return 4;
          case 0xFFFFFC00u: return 5;
          case 0xFFFFF000u: return 6;
          case 0xFFFFC000u: return 7;
          case 0xFFFF0000u: return 8;
          case 0xFFFC0000u: return 9;
          case 0xFFF00000u: return 10;
          case 0xFFC00000u: return 11;
          case 0xFF000000u: return 12;
          case 0xFC000000u: return 13;
          case 0xF0000000u: return 14;
          case 0xC0000000u: return 15;
          default: return 16;
        }
      } else {
        static_assert(width == 1);
        switch (mask) {
          case 0xFFFFFFFFu: return 0;
          case 0xFFFFFFFEu: return 1;
          case 0xFFFFFFFCu: return 2;
          case 0xFFFFFFF8u: return 3;
          case 0xFFFFFFF0u: return 4;
          case 0xFFFFFFE0u: return 5;
          case 0xFFFFFFC0u: return 6;
          case 0xFFFFFF80u: return 7;
          case 0xFFFFFF00u: return 8;
          case 0xFFFFFE00u: return 9;
          case 0xFFFFFC00u: return 10;
          case 0xFFFFF800u: return 11;
          case 0xFFFFF000u: return 12;
          case 0xFFFFE000u: return 13;
          case 0xFFFFC000u: return 14;
          case 0xFFFF8000u: return 15;
          case 0xFFFF0000u: return 16;
          case 0xFFFE0000u: return 17;
          case 0xFFFC0000u: return 18;
          case 0xFFF80000u: return 19;
          case 0xFFF00000u: return 20;
          case 0xFFE00000u: return 21;
          case 0xFFC00000u: return 22;
          case 0xFF800000u: return 23;
          case 0xFF000000u: return 24;
          case 0xFE000000u: return 25;
          case 0xFC000000u: return 26;
          case 0xF8000000u: return 27;
          case 0xF0000000u: return 28;
          case 0xE0000000u: return 29;
          case 0xC0000000u: return 30;
          case 0x80000000u: return 31;
          default: return 32;
        }
      }
    }
  }
};

// Algorithm 3: Popcount. The paper's overall winner (Figure 9): no
// conditional branches, so no pipeline flushes.
struct PopcountEval {
  static constexpr const char* kName = "popcount";

  template <typename T, int kRegisterBits = 128>
  static int Position(uint64_t mask) {
    constexpr int c = LaneTraits<T, kRegisterBits>::kLanes;
    constexpr int stride = LaneTraits<T, kRegisterBits>::kMaskBitsPerLane;
    return c - __builtin_popcountll(mask) / stride;
  }
};

}  // namespace simdtree::simd

#endif  // SIMDTREE_SIMD_BITMASK_EVAL_H_
