// 128-bit SIMD comparison primitives (paper Section 2.1, Table 1).
//
// The paper's five-step sequence for comparing a search key against a list
// of keys is:
//   1. load k-1 keys segment-wise into register R1        (_mm_loadu_si128)
//   2. broadcast the search key v into register R2        (_mm_set1_epiXX)
//   3. pairwise greater-than comparison of all segments   (_mm_cmpgt_epiXX)
//   4. extract the comparison result as a 16-bit bitmask  (_mm_movemask_epi8)
//   5. evaluate the bitmask to a position                 (see bitmask_eval.h)
//
// This header provides steps 1-4 for all integer key widths (8/16/32/64
// bit) behind interchangeable backends:
//
//   * Backend::kSse      — SSE2/SSE4.2 intrinsics (pcmpgtq for 64-bit
//                          lanes); the same tag covers the 256-bit AVX2
//                          specialization in simd256.h.
//   * Backend::kAvx512   — 512-bit EVEX kernels (simd512.h), native
//                          k-bit compare masks instead of movemask.
//   * Backend::kScalar   — a portable lane-by-lane implementation
//                          producing bit-identical masks; used for
//                          differential testing and for non-x86 builds.
//   * Backend::kDispatch — not an implementation: a routing tag resolved
//                          at runtime per CpuFeatures (simd/dispatch.h).
//                          Ops<T, kDispatch, W> is intentionally left
//                          undefined; the kary search entry points branch
//                          on it before touching any register type.
//
// The paper's future-work direction "as the SIMD bandwidth will increase
// in the future, index structures using SIMD instructions will further
// benefit" is implemented as a register-width template parameter: the
// scalar backend supports any width, simd256.h adds a native 256-bit
// AVX2 backend (k = 33/17/9/5 instead of 17/9/5/3), and simd512.h a
// native AVX-512 backend (k = 65/33/17/9).
//
// SSE compares signed integers only. For unsigned key types the paper
// realigns values by subtracting the signed maximum; we implement the
// equivalent order-preserving transform — flipping the sign bit with XOR —
// inside CmpGt, so callers never see biased values. (AVX-512 has native
// unsigned compares and skips the bias.)
//
// Mask granularity: the 128/256-bit backends extract comparison results
// with movemask_epi8, one bit per *byte*; AVX-512 compares produce one
// bit per *lane*. LaneTraits::kMaskBitsPerLane captures the stride and
// LaneTraits::Mask the carrier type (uint64_t only for 64 one-bit lanes:
// 8-bit keys at 512 bits), so the bitmask-evaluation algorithms stay
// width-agnostic.

#ifndef SIMDTREE_SIMD_SIMD128_H_
#define SIMDTREE_SIMD_SIMD128_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace simdtree::simd {

enum class Backend {
  kSse,
  kScalar,
  kAvx512,
  kDispatch,
};

#if defined(__SSE2__) && defined(__SSE4_2__)
inline constexpr bool kHaveSse = true;
#else
inline constexpr bool kHaveSse = false;
#endif

// The default backend is the runtime-dispatch tag: search entry points
// templated on it consult simd/dispatch.h (CpuFeatures + the
// SIMDTREE_FORCE_BACKEND override) once per process and route each call
// to the widest native kernel available, falling back to the scalar
// image. Structures pin a concrete backend by passing one explicitly.
inline constexpr Backend kDefaultBackend = Backend::kDispatch;

// Key types supported as SIMD segments.
template <typename T>
inline constexpr bool kIsSimdKey =
    std::is_integral_v<T> && !std::is_same_v<T, bool> &&
    (sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 || sizeof(T) == 8);

// Per-type constants (paper Table 2): a register of kRegisterBits holds
// kLanes segments of type T and supports k = kLanes + 1 partitions per
// iteration.
template <typename T, int kRegisterBits = 128>
struct LaneTraits {
  static_assert(kIsSimdKey<T>, "unsupported SIMD key type");
  static_assert(kRegisterBits == 128 || kRegisterBits == 256 ||
                    kRegisterBits == 512,
                "supported SIMD widths: 128 (SSE), 256 (AVX2), 512 (AVX-512)");
  static constexpr int kRegisterBytes = kRegisterBits / 8;
  static constexpr int kBytesPerLane = static_cast<int>(sizeof(T));
  static constexpr int kLanes = kRegisterBytes / kBytesPerLane;
  static constexpr int kArity = kLanes + 1;  // paper's k value
  // Comparison-mask stride: movemask_epi8 yields one bit per byte at
  // 128/256 bits; AVX-512 compare-to-mask yields one bit per lane (the
  // scalar image mirrors whichever the native backend of that width
  // produces, so masks stay bit-identical across backends).
  static constexpr int kMaskBitsPerLane =
      kRegisterBits == 512 ? 1 : kBytesPerLane;
  static constexpr int kMaskBits = kLanes * kMaskBitsPerLane;
  // Mask carrier. Only 8-bit keys at 512 bits exceed 32 mask bits.
  using Mask = std::conditional_t<(kMaskBits > 32), uint64_t, uint32_t>;
  using Signed = std::make_signed_t<T>;
  using Unsigned = std::make_unsigned_t<T>;
  // XOR with this flips the sign bit: maps unsigned order onto signed order.
  static constexpr Unsigned kSignBias = static_cast<Unsigned>(
      Unsigned{1} << (sizeof(T) * 8 - 1));
};

template <typename T, Backend B, int kRegisterBits = 128>
struct Ops;

// ---------------------------------------------------------------------------
// Scalar backend (any register width). Reg is a lane array; MoveMask
// produces the same mask layout as the native backend of that width —
// byte-granular like _mm_movemask_epi8 / _mm256_movemask_epi8 at
// 128/256 bits, lane-granular like _mm512_cmp*_mask at 512 bits — so
// the bitmask-evaluation algorithms are backend-agnostic and masks are
// differentially comparable bit for bit.
// ---------------------------------------------------------------------------
template <typename T, int kRegisterBits>
struct Ops<T, Backend::kScalar, kRegisterBits> {
  using Traits = LaneTraits<T, kRegisterBits>;
  struct Reg {
    std::array<T, static_cast<size_t>(Traits::kLanes)> lane;
  };
  // Comparison result: one bool per lane (expanded to bytes in MoveMask).
  struct CmpReg {
    std::array<bool, static_cast<size_t>(Traits::kLanes)> gt;
  };

  static Reg LoadUnaligned(const T* p) {
    Reg r;
    std::memcpy(r.lane.data(), p, sizeof(r.lane));
    return r;
  }

  static Reg Set1(T v) {
    Reg r;
    r.lane.fill(v);
    return r;
  }

  // Per-lane a > b using the key type's natural order.
  static CmpReg CmpGt(Reg a, Reg b) {
    CmpReg c;
    for (int i = 0; i < Traits::kLanes; ++i) {
      c.gt[static_cast<size_t>(i)] = a.lane[static_cast<size_t>(i)] >
                                     b.lane[static_cast<size_t>(i)];
    }
    return c;
  }

  static CmpReg CmpEq(Reg a, Reg b) {
    CmpReg c;
    for (int i = 0; i < Traits::kLanes; ++i) {
      c.gt[static_cast<size_t>(i)] = a.lane[static_cast<size_t>(i)] ==
                                     b.lane[static_cast<size_t>(i)];
    }
    return c;
  }

  static typename Traits::Mask MoveMask(CmpReg c) {
    using Mask = typename Traits::Mask;
    Mask mask = 0;
    for (int i = 0; i < Traits::kLanes; ++i) {
      if (c.gt[static_cast<size_t>(i)]) {
        const Mask lane_bits =
            ((Mask{1} << Traits::kMaskBitsPerLane) - Mask{1})
            << (i * Traits::kMaskBitsPerLane);
        mask |= lane_bits;
      }
    }
    return mask;
  }
};

#if defined(__SSE2__) && defined(__SSE4_2__)
// ---------------------------------------------------------------------------
// SSE backend.
// ---------------------------------------------------------------------------
namespace internal {

// Signed greater-than per lane width.
inline __m128i CmpGtSigned(__m128i a, __m128i b, std::integral_constant<int, 1>) {
  return _mm_cmpgt_epi8(a, b);
}
inline __m128i CmpGtSigned(__m128i a, __m128i b, std::integral_constant<int, 2>) {
  return _mm_cmpgt_epi16(a, b);
}
inline __m128i CmpGtSigned(__m128i a, __m128i b, std::integral_constant<int, 4>) {
  return _mm_cmpgt_epi32(a, b);
}
inline __m128i CmpGtSigned(__m128i a, __m128i b, std::integral_constant<int, 8>) {
  return _mm_cmpgt_epi64(a, b);  // SSE4.2
}

inline __m128i CmpEqWidth(__m128i a, __m128i b, std::integral_constant<int, 1>) {
  return _mm_cmpeq_epi8(a, b);
}
inline __m128i CmpEqWidth(__m128i a, __m128i b, std::integral_constant<int, 2>) {
  return _mm_cmpeq_epi16(a, b);
}
inline __m128i CmpEqWidth(__m128i a, __m128i b, std::integral_constant<int, 4>) {
  return _mm_cmpeq_epi32(a, b);
}
inline __m128i CmpEqWidth(__m128i a, __m128i b, std::integral_constant<int, 8>) {
  return _mm_cmpeq_epi64(a, b);  // SSE4.1
}

inline __m128i Set1Width(uint64_t v, std::integral_constant<int, 1>) {
  return _mm_set1_epi8(static_cast<char>(v));
}
inline __m128i Set1Width(uint64_t v, std::integral_constant<int, 2>) {
  return _mm_set1_epi16(static_cast<short>(v));
}
inline __m128i Set1Width(uint64_t v, std::integral_constant<int, 4>) {
  return _mm_set1_epi32(static_cast<int>(v));
}
inline __m128i Set1Width(uint64_t v, std::integral_constant<int, 8>) {
  return _mm_set1_epi64x(static_cast<long long>(v));
}

}  // namespace internal

template <typename T>
struct Ops<T, Backend::kSse, 128> {
  using Traits = LaneTraits<T, 128>;
  using Reg = __m128i;
  using CmpReg = __m128i;
  using Width = std::integral_constant<int, Traits::kBytesPerLane>;

  static Reg LoadUnaligned(const T* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }

  static Reg Set1(T v) {
    return internal::Set1Width(
        static_cast<uint64_t>(static_cast<typename Traits::Unsigned>(v)),
        Width{});
  }

  static CmpReg CmpGt(Reg a, Reg b) {
    if constexpr (std::is_signed_v<T>) {
      return internal::CmpGtSigned(a, b, Width{});
    } else {
      // Unsigned realignment (paper Section 2.1): flip the sign bit of both
      // operands, then compare signed. XOR with the bias is equivalent to
      // the paper's "subtract the maximum value of the signed data type".
      const Reg bias = internal::Set1Width(
          static_cast<uint64_t>(Traits::kSignBias), Width{});
      return internal::CmpGtSigned(_mm_xor_si128(a, bias),
                                   _mm_xor_si128(b, bias), Width{});
    }
  }

  static CmpReg CmpEq(Reg a, Reg b) {
    return internal::CmpEqWidth(a, b, Width{});
  }

  static uint32_t MoveMask(CmpReg c) {
    return static_cast<uint32_t>(_mm_movemask_epi8(c));
  }
};
#endif  // __SSE2__ && __SSE4_2__

}  // namespace simdtree::simd

#endif  // SIMDTREE_SIMD_SIMD128_H_
