#include "simd/cpu_features.h"

namespace simdtree::simd {

CpuFeatures DetectCpuFeatures() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  f.sse2 = __builtin_cpu_supports("sse2");
  f.sse42 = __builtin_cpu_supports("sse4.2");
  f.popcnt = __builtin_cpu_supports("popcnt");
  f.avx2 = __builtin_cpu_supports("avx2");
#endif
  return f;
}

std::string CpuFeatureString() {
  const CpuFeatures f = DetectCpuFeatures();
  std::string s;
  auto add = [&s](bool have, const char* name) {
    if (have) {
      if (!s.empty()) s += ' ';
      s += name;
    }
  };
  add(f.sse2, "sse2");
  add(f.sse42, "sse4.2");
  add(f.popcnt, "popcnt");
  add(f.avx2, "avx2");
  if (s.empty()) s = "none";
  return s;
}

}  // namespace simdtree::simd
