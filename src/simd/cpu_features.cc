#include "simd/cpu_features.h"

namespace simdtree::simd {

CpuFeatures DetectCpuFeatures() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  f.sse2 = __builtin_cpu_supports("sse2");
  f.sse42 = __builtin_cpu_supports("sse4.2");
  f.popcnt = __builtin_cpu_supports("popcnt");
  f.avx2 = __builtin_cpu_supports("avx2");
  f.avx512f = __builtin_cpu_supports("avx512f");
  f.avx512bw = __builtin_cpu_supports("avx512bw");
  f.avx512vl = __builtin_cpu_supports("avx512vl");
#endif
  return f;
}

std::string CpuFeatureString() {
  const CpuFeatures f = DetectCpuFeatures();
  std::string s;
  auto add = [&s](bool have, const char* name) {
    if (have) {
      if (!s.empty()) s += ' ';
      s += name;
    }
  };
  add(f.sse2, "sse2");
  add(f.sse42, "sse4.2");
  add(f.popcnt, "popcnt");
  add(f.avx2, "avx2");
  add(f.avx512f, "avx512f");
  add(f.avx512bw, "avx512bw");
  add(f.avx512vl, "avx512vl");
  if (s.empty()) s = "none";
  return s;
}

}  // namespace simdtree::simd
