// 512-bit SIMD comparison primitives (AVX-512 F + BW) — the second step
// of the paper's future-work width scaling: k = 65/33/17/9 for
// 8/16/32/64-bit keys, twice the fanout of AVX2 and four times the
// paper's SSE setup.
//
// Two contract differences from the 128/256-bit backends, both hidden
// behind the shared LaneTraits:
//
//   * No movemask step. EVEX compares write a k-bit predicate register
//     (__mmask8/16/32/64) directly — one bit per *lane*, not per byte —
//     so MoveMask is a plain integer cast and the paper's step 4
//     disappears. LaneTraits<T, 512>::kMaskBitsPerLane == 1 keeps the
//     bitmask-evaluation algorithms correct, and the scalar image at
//     width 512 emits the same lane-granular layout for differential
//     testing.
//
//   * Native unsigned compares (_mm512_cmpgt_epu*_mask): the sign-bias
//     XOR realignment the narrower backends inherit from the paper is
//     unnecessary here.
//
// This header defines Ops<T, Backend::kAvx512, 512> only when compiled
// with AVX-512 F and BW enabled (BW provides the 8/16-bit lane
// compares). Ordinary translation units compile it to nothing; the
// kernels registered by src/kary/kernels_avx512.cc — a TU built with
// per-source -mavx512f -mavx512bw flags — are the intended way to reach
// these ops from a baseline binary (see simd/dispatch.h).

#ifndef SIMDTREE_SIMD_SIMD512_H_
#define SIMDTREE_SIMD_SIMD512_H_

#include "simd/simd128.h"

#if defined(__AVX512F__) && defined(__AVX512BW__)
#include <immintrin.h>
#endif

namespace simdtree::simd {

#if defined(__AVX512F__) && defined(__AVX512BW__)
inline constexpr bool kHaveAvx512 = true;

namespace internal512 {

template <int kBytesPerLane>
struct MaskFor;
template <>
struct MaskFor<1> {
  using type = __mmask64;
};
template <>
struct MaskFor<2> {
  using type = __mmask32;
};
template <>
struct MaskFor<4> {
  using type = __mmask16;
};
template <>
struct MaskFor<8> {
  using type = __mmask8;
};

inline __mmask64 CmpGtSigned(__m512i a, __m512i b,
                             std::integral_constant<int, 1>) {
  return _mm512_cmpgt_epi8_mask(a, b);
}
inline __mmask32 CmpGtSigned(__m512i a, __m512i b,
                             std::integral_constant<int, 2>) {
  return _mm512_cmpgt_epi16_mask(a, b);
}
inline __mmask16 CmpGtSigned(__m512i a, __m512i b,
                             std::integral_constant<int, 4>) {
  return _mm512_cmpgt_epi32_mask(a, b);
}
inline __mmask8 CmpGtSigned(__m512i a, __m512i b,
                            std::integral_constant<int, 8>) {
  return _mm512_cmpgt_epi64_mask(a, b);
}

inline __mmask64 CmpGtUnsigned(__m512i a, __m512i b,
                               std::integral_constant<int, 1>) {
  return _mm512_cmpgt_epu8_mask(a, b);
}
inline __mmask32 CmpGtUnsigned(__m512i a, __m512i b,
                               std::integral_constant<int, 2>) {
  return _mm512_cmpgt_epu16_mask(a, b);
}
inline __mmask16 CmpGtUnsigned(__m512i a, __m512i b,
                               std::integral_constant<int, 4>) {
  return _mm512_cmpgt_epu32_mask(a, b);
}
inline __mmask8 CmpGtUnsigned(__m512i a, __m512i b,
                              std::integral_constant<int, 8>) {
  return _mm512_cmpgt_epu64_mask(a, b);
}

inline __mmask64 CmpEqWidth(__m512i a, __m512i b,
                            std::integral_constant<int, 1>) {
  return _mm512_cmpeq_epi8_mask(a, b);
}
inline __mmask32 CmpEqWidth(__m512i a, __m512i b,
                            std::integral_constant<int, 2>) {
  return _mm512_cmpeq_epi16_mask(a, b);
}
inline __mmask16 CmpEqWidth(__m512i a, __m512i b,
                            std::integral_constant<int, 4>) {
  return _mm512_cmpeq_epi32_mask(a, b);
}
inline __mmask8 CmpEqWidth(__m512i a, __m512i b,
                           std::integral_constant<int, 8>) {
  return _mm512_cmpeq_epi64_mask(a, b);
}

inline __m512i Set1Width(uint64_t v, std::integral_constant<int, 1>) {
  return _mm512_set1_epi8(static_cast<char>(v));
}
inline __m512i Set1Width(uint64_t v, std::integral_constant<int, 2>) {
  return _mm512_set1_epi16(static_cast<short>(v));
}
inline __m512i Set1Width(uint64_t v, std::integral_constant<int, 4>) {
  return _mm512_set1_epi32(static_cast<int>(v));
}
inline __m512i Set1Width(uint64_t v, std::integral_constant<int, 8>) {
  return _mm512_set1_epi64(static_cast<long long>(v));
}

}  // namespace internal512

template <typename T>
struct Ops<T, Backend::kAvx512, 512> {
  using Traits = LaneTraits<T, 512>;
  using Reg = __m512i;
  using Width = std::integral_constant<int, Traits::kBytesPerLane>;
  // Comparison result: the native k-bit predicate, one bit per lane.
  using CmpReg = typename internal512::MaskFor<Traits::kBytesPerLane>::type;

  static Reg LoadUnaligned(const T* p) {
    return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
  }

  static Reg Set1(T v) {
    return internal512::Set1Width(
        static_cast<uint64_t>(static_cast<typename Traits::Unsigned>(v)),
        Width{});
  }

  static CmpReg CmpGt(Reg a, Reg b) {
    if constexpr (std::is_signed_v<T>) {
      return internal512::CmpGtSigned(a, b, Width{});
    } else {
      return internal512::CmpGtUnsigned(a, b, Width{});
    }
  }

  static CmpReg CmpEq(Reg a, Reg b) {
    return internal512::CmpEqWidth(a, b, Width{});
  }

  static typename Traits::Mask MoveMask(CmpReg c) {
    // The compare already produced the lane-granular mask.
    return static_cast<typename Traits::Mask>(c);
  }
};
#else
inline constexpr bool kHaveAvx512 = false;
#endif  // __AVX512F__ && __AVX512BW__

}  // namespace simdtree::simd

#endif  // SIMDTREE_SIMD_SIMD512_H_
