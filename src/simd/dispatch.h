// Runtime SIMD backend dispatch.
//
// The library is compiled for a baseline instruction set (SSE4.2 by
// default; AVX2 too when SIMDTREE_AVX2=ON), but one binary can carry
// wider kernels than its baseline: src/kary/kernels_avx2.cc and
// kernels_avx512.cc are compiled with per-translation-unit target flags
// and register their entry points in function-pointer tables
// (kary/dispatch_kernels.h). Search functions templated on
// Backend::kDispatch — the default backend — consult the decision here
// once per process and route every call to the widest kernel the
// running CPU supports, falling back to the scalar image when a width's
// native kernels are absent from the binary.
//
// The decision is resolved once, from DetectCpuFeatures() plus the
// SIMDTREE_FORCE_BACKEND environment override
// (scalar | sse | avx2 | avx512). A forced backend the CPU cannot
// execute, or one whose kernels this binary does not carry, is rejected
// with a clear error: silently downgrading a forced backend would make
// "reproduce this measurement" lie.
//
// Register width vs. backend: the k-ary fanout (k = lanes + 1) is baked
// into a structure's linearized layout at construction, so the register
// width is a compile-time parameter of each structure, not part of this
// runtime decision. The decision controls (a) which *implementation*
// serves a given width (native vs. scalar image) and (b) the
// recommended width for new structures (ActiveRegisterBits).

#ifndef SIMDTREE_SIMD_DISPATCH_H_
#define SIMDTREE_SIMD_DISPATCH_H_

#include <string>

#include "simd/cpu_features.h"

namespace simdtree::simd {

// Widest instruction family the dispatch may use, in strictly
// increasing order so levels compare numerically.
enum class DispatchLevel {
  kScalar = 0,
  kSse = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

// "scalar" | "sse" | "avx2" | "avx512" — the SIMDTREE_FORCE_BACKEND
// vocabulary and the bench-header/metrics spelling.
const char* DispatchLevelName(DispatchLevel level);

struct DispatchDecision {
  DispatchLevel level = DispatchLevel::kScalar;
  // Widest register width (bits) the level searches natively; also the
  // recommended width for newly built structures. 128 for kScalar too:
  // the scalar image of the paper's 128-bit layout.
  int register_bits = 128;
  bool forced = false;  // SIMDTREE_FORCE_BACKEND was set (and honored)
};

// Widest level the CPU can execute (independent of what this binary
// carries).
DispatchLevel MaxSupportedLevel(const CpuFeatures& f);

// Whether this binary contains native kernels for the given register
// width (128/256/512): baseline SSE for 128, the global-AVX2 build or
// the kernels_avx2.cc registry for 256, the kernels_avx512.cc registry
// for 512.
bool NativeKernelsCompiled(int register_bits);

// Pure resolution step, testable without process state: applies `force`
// (the SIMDTREE_FORCE_BACKEND value; nullptr/empty = auto) against the
// detected features and the compiled-in kernels. Returns false and
// fills *error when the forced backend cannot run.
bool ResolveDispatchLevel(const CpuFeatures& f, const char* force,
                          DispatchLevel* out, std::string* error);

// The process-wide decision, resolved on first use from
// DetectCpuFeatures() and SIMDTREE_FORCE_BACKEND. An invalid override
// prints the error and exits with status 2 — a forced measurement must
// never silently run on a different backend.
const DispatchDecision& ActiveDispatch();

inline int ActiveRegisterBits() { return ActiveDispatch().register_bits; }

inline const char* ActiveDispatchName() {
  return DispatchLevelName(ActiveDispatch().level);
}

// Whether a kDispatch-routed search at the given structure width should
// take the native path (the caller still falls back to scalar when the
// binary lacks that width's kernels).
inline bool DispatchWantsNative(int register_bits) {
  const int level = static_cast<int>(ActiveDispatch().level);
  switch (register_bits) {
    case 128:
      return level >= static_cast<int>(DispatchLevel::kSse);
    case 256:
      return level >= static_cast<int>(DispatchLevel::kAvx2);
    case 512:
      return level >= static_cast<int>(DispatchLevel::kAvx512);
    default:
      return false;
  }
}

// The effective implementation name for searches over structures of the
// given width under the active decision ("avx512", "avx2", "sse", or
// "scalar") — what benches should label per-width measurements with.
const char* EffectiveBackendName(int register_bits);

namespace internal {

// Set by the per-ISA kernel registration TUs' static initializers
// (kary/kernels_avx2.cc, kary/kernels_avx512.cc).
extern bool g_native_kernels_256;
extern bool g_native_kernels_512;

#if defined(SIMDTREE_RUNTIME_SIMD)
// Defined in the registration TUs; referenced from dispatch.cc so the
// static-archive linker pulls those members in even though nothing
// names their registered symbols directly.
void LinkKernels256();
void LinkKernels512();
#endif

}  // namespace internal

}  // namespace simdtree::simd

#endif  // SIMDTREE_SIMD_DISPATCH_H_
