// 256-bit SIMD comparison primitives (AVX2) — the paper's future-work
// direction realized: doubling the SIMD bandwidth doubles the number of
// parallel comparisons, raising k from 17/9/5/3 to 33/17/9/5 for
// 8/16/32/64-bit keys.
//
// Same contract as the 128-bit backend in simd128.h; MoveMask yields a
// 32-bit byte-granular mask (_mm256_movemask_epi8). The portable scalar
// backend in simd128.h already covers kRegisterBits = 256 for testing
// and non-AVX2 builds.

#ifndef SIMDTREE_SIMD_SIMD256_H_
#define SIMDTREE_SIMD_SIMD256_H_

#include "simd/simd128.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace simdtree::simd {

#if defined(__AVX2__)
inline constexpr bool kHaveAvx2 = true;

namespace internal256 {

inline __m256i CmpGtSigned(__m256i a, __m256i b,
                           std::integral_constant<int, 1>) {
  return _mm256_cmpgt_epi8(a, b);
}
inline __m256i CmpGtSigned(__m256i a, __m256i b,
                           std::integral_constant<int, 2>) {
  return _mm256_cmpgt_epi16(a, b);
}
inline __m256i CmpGtSigned(__m256i a, __m256i b,
                           std::integral_constant<int, 4>) {
  return _mm256_cmpgt_epi32(a, b);
}
inline __m256i CmpGtSigned(__m256i a, __m256i b,
                           std::integral_constant<int, 8>) {
  return _mm256_cmpgt_epi64(a, b);
}

inline __m256i CmpEqWidth(__m256i a, __m256i b,
                          std::integral_constant<int, 1>) {
  return _mm256_cmpeq_epi8(a, b);
}
inline __m256i CmpEqWidth(__m256i a, __m256i b,
                          std::integral_constant<int, 2>) {
  return _mm256_cmpeq_epi16(a, b);
}
inline __m256i CmpEqWidth(__m256i a, __m256i b,
                          std::integral_constant<int, 4>) {
  return _mm256_cmpeq_epi32(a, b);
}
inline __m256i CmpEqWidth(__m256i a, __m256i b,
                          std::integral_constant<int, 8>) {
  return _mm256_cmpeq_epi64(a, b);
}

inline __m256i Set1Width(uint64_t v, std::integral_constant<int, 1>) {
  return _mm256_set1_epi8(static_cast<char>(v));
}
inline __m256i Set1Width(uint64_t v, std::integral_constant<int, 2>) {
  return _mm256_set1_epi16(static_cast<short>(v));
}
inline __m256i Set1Width(uint64_t v, std::integral_constant<int, 4>) {
  return _mm256_set1_epi32(static_cast<int>(v));
}
inline __m256i Set1Width(uint64_t v, std::integral_constant<int, 8>) {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

}  // namespace internal256

template <typename T>
struct Ops<T, Backend::kSse, 256> {
  using Traits = LaneTraits<T, 256>;
  using Reg = __m256i;
  using CmpReg = __m256i;
  using Width = std::integral_constant<int, Traits::kBytesPerLane>;

  static Reg LoadUnaligned(const T* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }

  static Reg Set1(T v) {
    return internal256::Set1Width(
        static_cast<uint64_t>(static_cast<typename Traits::Unsigned>(v)),
        Width{});
  }

  static CmpReg CmpGt(Reg a, Reg b) {
    if constexpr (std::is_signed_v<T>) {
      return internal256::CmpGtSigned(a, b, Width{});
    } else {
      const Reg bias = internal256::Set1Width(
          static_cast<uint64_t>(Traits::kSignBias), Width{});
      return internal256::CmpGtSigned(_mm256_xor_si256(a, bias),
                                      _mm256_xor_si256(b, bias), Width{});
    }
  }

  static CmpReg CmpEq(Reg a, Reg b) {
    return internal256::CmpEqWidth(a, b, Width{});
  }

  static uint32_t MoveMask(CmpReg c) {
    return static_cast<uint32_t>(_mm256_movemask_epi8(c));
  }
};
#else
inline constexpr bool kHaveAvx2 = false;
#endif  // __AVX2__

}  // namespace simdtree::simd

#endif  // SIMDTREE_SIMD_SIMD256_H_
