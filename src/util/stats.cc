#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace simdtree {

double PercentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

SampleSummary Summarize(std::vector<double> samples) {
  SampleSummary s;
  s.count = samples.size();
  if (samples.empty()) return s;

  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());

  double sq = 0.0;
  for (double v : samples) {
    const double d = v - s.mean;
    sq += d * d;
  }
  s.stddev = samples.size() > 1
                 ? std::sqrt(sq / static_cast<double>(samples.size() - 1))
                 : 0.0;
  s.min = samples.front();
  s.max = samples.back();
  s.p50 = PercentileSorted(samples, 0.50);
  s.p95 = PercentileSorted(samples, 0.95);
  s.p99 = PercentileSorted(samples, 0.99);
  s.p999 = PercentileSorted(samples, 0.999);
  return s;
}

}  // namespace simdtree
