// Lightweight search instrumentation.
//
// The paper argues complexity in terms of node accesses and comparisons:
// a B+-Tree search costs one node per level with log2(N_L) scalar
// comparisons inside each node; a Seg-Tree node costs r SIMD comparisons
// (one per k-ary level); a 64-bit Seg-Trie search costs at most
// ceil(log17 2^64) = 16 SIMD comparisons and may terminate above leaf
// level on a missing segment (Section 4). The *Counted search variants
// fill this struct so tests can assert those counts exactly.

#ifndef SIMDTREE_UTIL_COUNTERS_H_
#define SIMDTREE_UTIL_COUNTERS_H_

#include <cstdint>

namespace simdtree {

struct SearchCounters {
  uint64_t nodes_visited = 0;      // tree/trie nodes touched (logical)
  uint64_t simd_comparisons = 0;   // k-ary SIMD compare steps
  uint64_t scalar_comparisons = 0; // binary/sequential compare steps
  // Distinct physical node loads. The pipelined batch paths leave this 0
  // (they load one node per query per level, nodes_visited tells the
  // story); the grouped descent paths count each frontier node once, so
  // nodes_visited / nodes_loaded is the per-level sharing factor.
  uint64_t nodes_loaded = 0;

  void Reset() { *this = SearchCounters{}; }
};

}  // namespace simdtree

#endif  // SIMDTREE_UTIL_COUNTERS_H_
