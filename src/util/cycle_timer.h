// Cycle-accurate timing for the benchmark harness.
//
// The paper measures search runtimes with RDTSC ("Read time-stamp counter",
// Section 5.1). We expose the same measurement primitive plus a calibrated
// conversion to nanoseconds. On non-x86 builds the class falls back to
// std::chrono::steady_clock ticks.

#ifndef SIMDTREE_UTIL_CYCLE_TIMER_H_
#define SIMDTREE_UTIL_CYCLE_TIMER_H_

#include <cstdint>

namespace simdtree {

class CycleTimer {
 public:
  // Serialized timestamp read: earlier instructions retire before the
  // counter is sampled, so short measured regions are not reordered out.
  static uint64_t Now();

  // TSC increments per second, measured once against steady_clock and
  // cached. Used to convert cycle counts into wall time for reporting.
  static double CyclesPerSecond();

  static double ToNanoseconds(uint64_t cycles) {
    return static_cast<double>(cycles) / CyclesPerSecond() * 1e9;
  }
};

// Convenience scope timer accumulating elapsed cycles into a sink.
class ScopedCycleTimer {
 public:
  explicit ScopedCycleTimer(uint64_t* sink)
      : sink_(sink), start_(CycleTimer::Now()) {}
  ~ScopedCycleTimer() { *sink_ += CycleTimer::Now() - start_; }

  ScopedCycleTimer(const ScopedCycleTimer&) = delete;
  ScopedCycleTimer& operator=(const ScopedCycleTimer&) = delete;

 private:
  uint64_t* sink_;
  uint64_t start_;
};

}  // namespace simdtree

#endif  // SIMDTREE_UTIL_CYCLE_TIMER_H_
