#include "util/cycle_timer.h"

#include <chrono>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <x86intrin.h>
#define SIMDTREE_HAVE_RDTSC 1
#endif

namespace simdtree {

uint64_t CycleTimer::Now() {
#ifdef SIMDTREE_HAVE_RDTSC
  // lfence serializes instruction execution around rdtsc without the cost
  // of a full cpuid serialization.
  _mm_lfence();
  uint64_t tsc = __rdtsc();
  _mm_lfence();
  return tsc;
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

namespace {

double MeasureCyclesPerSecond() {
  using Clock = std::chrono::steady_clock;
  const auto wall_start = Clock::now();
  const uint64_t tsc_start = CycleTimer::Now();
  // ~20ms calibration window: long enough for <0.1% error, short enough to
  // be unnoticeable at process start.
  while (Clock::now() - wall_start < std::chrono::milliseconds(20)) {
  }
  const uint64_t tsc_end = CycleTimer::Now();
  const auto wall_end = Clock::now();
  const double seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  return static_cast<double>(tsc_end - tsc_start) / seconds;
}

}  // namespace

double CycleTimer::CyclesPerSecond() {
  static const double cached = MeasureCyclesPerSecond();
  return cached;
}

}  // namespace simdtree
