// Deterministic pseudo-random number generation for workloads and tests.
//
// We use xoshiro256** instead of std::mt19937_64 because it is faster,
// has a tiny state, and gives identical sequences across standard library
// implementations, which keeps benchmark workloads reproducible.

#ifndef SIMDTREE_UTIL_RNG_H_
#define SIMDTREE_UTIL_RNG_H_

#include <cstdint>

namespace simdtree {

// xoshiro256** by Blackman & Vigna (public domain reference implementation,
// reimplemented here). Not cryptographically secure; do not use for secrets.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). bound must be nonzero.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation, without the
    // rejection step: the bias is < 2^-64 * bound, far below anything a
    // benchmark or randomized test could observe.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(Next()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // UniformRandomBitGenerator interface for <algorithm> interop.
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace simdtree

#endif  // SIMDTREE_UTIL_RNG_H_
