// Fixed-width console table output for the paper-reproduction benches.
//
// Every bench binary prints the rows/series of the table or figure it
// regenerates; TablePrinter keeps that output aligned and script-friendly.

#ifndef SIMDTREE_UTIL_TABLE_PRINTER_H_
#define SIMDTREE_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace simdtree {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Adds one row; the number of cells must match the header count.
  void AddRow(std::vector<std::string> cells);

  // Renders the table (header, separator, rows) to `out`.
  void Print(FILE* out = stdout) const;

  // Formatting helpers used by the bench binaries.
  static std::string Fmt(double value, int precision = 1);
  static std::string Fmt(uint64_t value);
  static std::string Fmt(int64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace simdtree

#endif  // SIMDTREE_UTIL_TABLE_PRINTER_H_
