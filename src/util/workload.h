// Workload generators for the evaluation harness (paper Section 5.1).
//
// The paper uses synthetic key sequences: the full domain for 8- and 16-bit
// key types, ascending sequences starting at zero for 32- and 64-bit types,
// and skewed 64-bit keys for the trie-depth experiment (Figure 11). Probes
// are x = 10,000 keys drawn in random order from the data set.

#ifndef SIMDTREE_UTIL_WORKLOAD_H_
#define SIMDTREE_UTIL_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "util/rng.h"

namespace simdtree {

// n keys start, start+1, ... (wraps modulo the type's domain if n exceeds
// it; callers that need distinct keys must keep n within the domain).
template <typename T>
std::vector<T> AscendingKeys(size_t n, T start = 0) {
  std::vector<T> keys(n);
  T v = start;
  for (size_t i = 0; i < n; ++i) {
    keys[i] = v;
    ++v;
  }
  return keys;
}

// Every value of the type's domain once, ascending. Only sensible for 8-
// and 16-bit types (the paper's "entire domain" data sets).
template <typename T>
std::vector<T> FullDomainKeys() {
  static_assert(sizeof(T) <= 2, "full domain only enumerable for <=16 bit");
  using Wide = std::conditional_t<std::is_signed_v<T>, int64_t, uint64_t>;
  std::vector<T> keys;
  const Wide lo = std::numeric_limits<T>::min();
  const Wide hi = std::numeric_limits<T>::max();
  keys.reserve(static_cast<size_t>(hi - lo + 1));
  for (Wide v = lo; v <= hi; ++v) keys.push_back(static_cast<T>(v));
  return keys;
}

// n keys cycling through the full domain, returned sorted (each domain
// value duplicated ~n/domain times). Models the paper's 5 MB / 100 MB data
// sets for small key types, which necessarily contain duplicates.
template <typename T>
std::vector<T> CycledDomainKeys(size_t n) {
  static_assert(sizeof(T) <= 2, "cycled domain only for <=16 bit");
  using Wide = std::conditional_t<std::is_signed_v<T>, int64_t, uint64_t>;
  const Wide lo = std::numeric_limits<T>::min();
  const Wide hi = std::numeric_limits<T>::max();
  const size_t domain = static_cast<size_t>(hi - lo + 1);
  std::vector<T> keys;
  keys.reserve(n);
  const size_t reps = n / domain;
  const size_t extra = n % domain;
  for (Wide v = lo; v <= hi; ++v) {
    size_t count = reps + (static_cast<size_t>(v - lo) < extra ? 1 : 0);
    for (size_t i = 0; i < count; ++i) keys.push_back(static_cast<T>(v));
  }
  return keys;
}

// n distinct keys drawn uniformly from the type's full domain, sorted.
template <typename T>
std::vector<T> UniformDistinctKeys(size_t n, Rng& rng);

// Keys for the Figure 11 trie-depth experiment: cardinality^depth distinct
// 64-bit keys whose `depth` low-order bytes each take `cardinality` distinct
// values (a mixed-radix counter), all higher bytes zero. An 8-bit Seg-Trie
// over these keys fills exactly `depth` levels. Returned sorted.
std::vector<uint64_t> MixedRadixKeys(int depth, int cardinality);

// `count` probes sampled uniformly (with replacement) from `keys`.
template <typename T>
std::vector<T> SamplePresentProbes(const std::vector<T>& keys, size_t count,
                                   Rng& rng) {
  std::vector<T> probes(count);
  for (size_t i = 0; i < count; ++i) {
    probes[i] = keys[rng.NextBounded(keys.size())];
  }
  return probes;
}

// Probes with a given hit fraction: hits are sampled from `keys`, misses
// are uniform random values re-drawn until absent (keys must be sorted).
template <typename T>
std::vector<T> MixedProbes(const std::vector<T>& keys, size_t count,
                           double hit_fraction, Rng& rng);

}  // namespace simdtree

#endif  // SIMDTREE_UTIL_WORKLOAD_H_
