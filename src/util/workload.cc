#include "util/workload.h"

#include <algorithm>
#include <cassert>

namespace simdtree {

namespace {

// Draws n distinct uint64 samples from [0, 2^bits) and returns them sorted.
std::vector<uint64_t> DistinctUniform64(size_t n, int bits, Rng& rng) {
  const uint64_t mask =
      bits >= 64 ? ~0ULL : ((uint64_t{1} << bits) - 1);
  // A domain of 2^bits values holds at most that many distinct samples;
  // without this clamp the collection loop below can never terminate
  // (the assert in the caller is compiled out of release builds).
  if (bits < 64 && n > mask + 1) n = static_cast<size_t>(mask + 1);
  std::vector<uint64_t> out;
  out.reserve(n + n / 8 + 16);
  while (out.size() < n) {
    const size_t need = n - out.size();
    for (size_t i = 0; i < need + need / 8 + 16; ++i) {
      out.push_back(rng.Next() & mask);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  // Drop a uniformly random surplus subset to reach exactly n. Shuffle +
  // resize + re-sort keeps every subset equally likely in O(n log n);
  // erasing surplus elements one at a time is O(surplus * n) and takes
  // hours at tens of millions of keys.
  if (out.size() > n) {
    std::shuffle(out.begin(), out.end(), rng);
    out.resize(n);
    std::sort(out.begin(), out.end());
  }
  return out;
}

}  // namespace

template <typename T>
std::vector<T> UniformDistinctKeys(size_t n, Rng& rng) {
  const int bits = static_cast<int>(sizeof(T) * 8);
  assert(bits >= 64 || n <= (uint64_t{1} << bits));
  std::vector<uint64_t> raw = DistinctUniform64(n, bits, rng);
  std::vector<T> keys(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) keys[i] = static_cast<T>(raw[i]);
  std::sort(keys.begin(), keys.end());
  return keys;
}

template std::vector<int8_t> UniformDistinctKeys(size_t, Rng&);
template std::vector<uint8_t> UniformDistinctKeys(size_t, Rng&);
template std::vector<int16_t> UniformDistinctKeys(size_t, Rng&);
template std::vector<uint16_t> UniformDistinctKeys(size_t, Rng&);
template std::vector<int32_t> UniformDistinctKeys(size_t, Rng&);
template std::vector<uint32_t> UniformDistinctKeys(size_t, Rng&);
template std::vector<int64_t> UniformDistinctKeys(size_t, Rng&);
template std::vector<uint64_t> UniformDistinctKeys(size_t, Rng&);

std::vector<uint64_t> MixedRadixKeys(int depth, int cardinality) {
  assert(depth >= 1 && depth <= 8);
  assert(cardinality >= 1 && cardinality <= 256);
  size_t n = 1;
  for (int i = 0; i < depth; ++i) n *= static_cast<size_t>(cardinality);

  std::vector<uint64_t> keys;
  keys.reserve(n);
  std::vector<int> digits(static_cast<size_t>(depth), 0);
  for (size_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    // digits[0] is the most significant of the low `depth` bytes, so the
    // generated sequence is already ascending.
    for (int d = 0; d < depth; ++d) {
      key = (key << 8) | static_cast<uint64_t>(digits[static_cast<size_t>(d)]);
    }
    keys.push_back(key);
    for (int d = depth - 1; d >= 0; --d) {
      if (++digits[static_cast<size_t>(d)] < cardinality) break;
      digits[static_cast<size_t>(d)] = 0;
    }
  }
  return keys;
}

template <typename T>
std::vector<T> MixedProbes(const std::vector<T>& keys, size_t count,
                           double hit_fraction, Rng& rng) {
  assert(!keys.empty());
  assert(std::is_sorted(keys.begin(), keys.end()));
  std::vector<T> probes;
  probes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (rng.NextDouble() < hit_fraction) {
      probes.push_back(keys[rng.NextBounded(keys.size())]);
    } else {
      // Re-draw until the value is absent. With dense domains (e.g. the
      // full 8-bit domain) this could loop forever, so cap the retries and
      // fall back to a present key.
      T candidate = keys[0];
      bool found_absent = false;
      for (int attempt = 0; attempt < 64; ++attempt) {
        candidate = static_cast<T>(rng.Next());
        if (!std::binary_search(keys.begin(), keys.end(), candidate)) {
          found_absent = true;
          break;
        }
      }
      probes.push_back(found_absent ? candidate
                                    : keys[rng.NextBounded(keys.size())]);
    }
  }
  return probes;
}

template std::vector<int8_t> MixedProbes(const std::vector<int8_t>&, size_t,
                                         double, Rng&);
template std::vector<uint8_t> MixedProbes(const std::vector<uint8_t>&, size_t,
                                          double, Rng&);
template std::vector<int16_t> MixedProbes(const std::vector<int16_t>&, size_t,
                                          double, Rng&);
template std::vector<uint16_t> MixedProbes(const std::vector<uint16_t>&,
                                           size_t, double, Rng&);
template std::vector<int32_t> MixedProbes(const std::vector<int32_t>&, size_t,
                                          double, Rng&);
template std::vector<uint32_t> MixedProbes(const std::vector<uint32_t>&,
                                           size_t, double, Rng&);
template std::vector<int64_t> MixedProbes(const std::vector<int64_t>&, size_t,
                                          double, Rng&);
template std::vector<uint64_t> MixedProbes(const std::vector<uint64_t>&,
                                           size_t, double, Rng&);

}  // namespace simdtree
