// Small descriptive-statistics helpers for the benchmark harness.

#ifndef SIMDTREE_UTIL_STATS_H_
#define SIMDTREE_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace simdtree {

struct SampleSummary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;  // p99.9, the tail the latency histograms report
  double max = 0.0;
};

// Summarizes a sample set. The input vector is copied because percentile
// computation sorts it.
SampleSummary Summarize(std::vector<double> samples);

// Linear-interpolation percentile of a sorted sample, q in [0, 1].
// Safe on empty input (returns 0); q is clamped to [0, 1].
double PercentileSorted(const std::vector<double>& sorted, double q);

}  // namespace simdtree

#endif  // SIMDTREE_UTIL_STATS_H_
