// Baseline in-node key storage: a plain sorted array searched with scalar
// binary search (the paper's baseline) or sequential search (ablation).
//
// This is one of the two interchangeable key-store policies of
// GenericBPlusTree (see generic_btree.h for the policy contract); the
// other is the linearized SIMD store in src/segtree/seg_key_store.h.

#ifndef SIMDTREE_BTREE_PLAIN_KEY_STORE_H_
#define SIMDTREE_BTREE_PLAIN_KEY_STORE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "kary/scalar_search.h"

namespace simdtree::btree {

// In-node scalar search algorithms (paper Section 1: "search strategies
// range from sequential over binary to exploration search").
struct BinarySearchTag {
  static constexpr const char* kName = "binary";
  template <typename Key>
  static int64_t UpperBound(const Key* keys, int64_t n, Key v) {
    return kary::BinaryUpperBound(keys, n, v);
  }
};

struct SequentialSearchTag {
  static constexpr const char* kName = "sequential";
  template <typename Key>
  static int64_t UpperBound(const Key* keys, int64_t n, Key v) {
    return kary::SequentialUpperBound(keys, n, v);
  }
};

template <typename Key, typename SearchTag = BinarySearchTag>
class PlainKeyStore {
 public:
  // Shared per-tree state for one node kind. The plain store only needs
  // the node capacity.
  struct Context {
    explicit Context(int64_t capacity_in) : capacity(capacity_in) {}
    int64_t capacity;
  };

  explicit PlainKeyStore(const Context& ctx) : ctx_(&ctx) {
    keys_.reserve(static_cast<size_t>(ctx.capacity));
  }

  int64_t count() const { return static_cast<int64_t>(keys_.size()); }
  int64_t capacity() const { return ctx_->capacity; }

  Key At(int64_t pos) const {
    assert(pos >= 0 && pos < count());
    return keys_[static_cast<size_t>(pos)];
  }

  // Index of the first key > v.
  int64_t UpperBound(Key v) const {
    return SearchTag::template UpperBound<Key>(keys_.data(), count(), v);
  }

  // Prefetches the key storage ahead of an UpperBound call (batch
  // descent, see btree/batch_descent.h). The key array is a separate
  // allocation from the node, so touching it is the second dependent miss
  // of a node visit; fetch the line a binary search probes first (the
  // middle) plus the array head that a sequential search starts from.
  void PrefetchKeys() const {
    const Key* data = keys_.data();
    __builtin_prefetch(data, 0, 3);
    __builtin_prefetch(data + keys_.size() / 2, 0, 3);
  }

  // Index of the first key >= v.
  int64_t LowerBound(Key v) const {
    if (v == std::numeric_limits<Key>::min()) return 0;
    return UpperBound(static_cast<Key>(v - 1));
  }

  void InsertAt(int64_t pos, Key k) {
    assert(pos >= 0 && pos <= count());
    assert(count() < capacity());
    keys_.insert(keys_.begin() + static_cast<ptrdiff_t>(pos), k);
  }

  void RemoveAt(int64_t pos) {
    assert(pos >= 0 && pos < count());
    keys_.erase(keys_.begin() + static_cast<ptrdiff_t>(pos));
  }

  void AssignSorted(const Key* keys, int64_t n) {
    assert(n <= capacity());
    keys_.assign(keys, keys + n);
  }

  void Clear() { keys_.clear(); }

  // Moves keys [from, count) into the empty store `dst` (node split).
  void MoveSuffixTo(PlainKeyStore& dst, int64_t from) {
    assert(dst.count() == 0);
    dst.keys_.assign(keys_.begin() + static_cast<ptrdiff_t>(from),
                     keys_.end());
    keys_.resize(static_cast<size_t>(from));
  }

  // Appends all keys of `src` (node merge); src is left empty.
  void AppendFrom(PlainKeyStore& src) {
    assert(count() + src.count() <= capacity());
    keys_.insert(keys_.end(), src.keys_.begin(), src.keys_.end());
    src.keys_.clear();
  }

  size_t MemoryBytes() const { return keys_.capacity() * sizeof(Key); }

 private:
  const Context* ctx_;
  std::vector<Key> keys_;
};

}  // namespace simdtree::btree

#endif  // SIMDTREE_BTREE_PLAIN_KEY_STORE_H_
