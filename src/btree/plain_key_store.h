// Baseline in-node key storage: a plain sorted array searched with scalar
// binary search (the paper's baseline) or sequential search (ablation).
//
// This is one of the two interchangeable key-store policies of
// GenericBPlusTree (see generic_btree.h for the policy contract); the
// other is the linearized SIMD store in src/segtree/seg_key_store.h.
//
// Storage: the store is a view over a fixed array of
// Context::key_storage_slots() keys. Inside a tree the array is a slice
// of the node's arena block (keys share the node's cache lines);
// standalone stores (tests, fixtures) own a buffer themselves.

#ifndef SIMDTREE_BTREE_PLAIN_KEY_STORE_H_
#define SIMDTREE_BTREE_PLAIN_KEY_STORE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>
#include <vector>

#include "kary/scalar_search.h"

namespace simdtree::btree {

// In-node scalar search algorithms (paper Section 1: "search strategies
// range from sequential over binary to exploration search").
struct BinarySearchTag {
  static constexpr const char* kName = "binary";
  template <typename Key>
  static int64_t UpperBound(const Key* keys, int64_t n, Key v) {
    return kary::BinaryUpperBound(keys, n, v);
  }
  template <typename Key>
  static int64_t UpperBoundCounted(const Key* keys, int64_t n, Key v,
                                   SearchCounters* counters) {
    return kary::BinaryUpperBoundCounted(keys, n, v, counters);
  }
};

struct SequentialSearchTag {
  static constexpr const char* kName = "sequential";
  template <typename Key>
  static int64_t UpperBound(const Key* keys, int64_t n, Key v) {
    return kary::SequentialUpperBound(keys, n, v);
  }
  template <typename Key>
  static int64_t UpperBoundCounted(const Key* keys, int64_t n, Key v,
                                   SearchCounters* counters) {
    return kary::SequentialUpperBoundCounted(keys, n, v, counters);
  }
};

template <typename Key, typename SearchTag = BinarySearchTag>
class PlainKeyStore {
  static_assert(std::is_trivially_copyable_v<Key>,
                "keys move with memcpy/memmove");

 public:
  // Shared per-tree state for one node kind. The plain store only needs
  // the node capacity.
  struct Context {
    explicit Context(int64_t capacity_in) : capacity(capacity_in) {}
    int64_t capacity;
    // Physical Key slots a node block reserves for this store.
    int64_t key_storage_slots() const { return capacity; }
  };

  // Standalone store owning its key storage (tests, fixtures).
  explicit PlainKeyStore(const Context& ctx)
      : ctx_(&ctx),
        owned_(static_cast<size_t>(ctx.key_storage_slots())),
        keys_(owned_.data()) {}

  // In-node store over external storage of ctx.key_storage_slots() keys
  // (a slice of the node's arena block, see generic_btree.h).
  PlainKeyStore(const Context& ctx, Key* storage)
      : ctx_(&ctx), keys_(storage) {}

  int64_t count() const { return count_; }
  int64_t capacity() const { return ctx_->capacity; }

  Key At(int64_t pos) const {
    assert(pos >= 0 && pos < count());
    return keys_[static_cast<size_t>(pos)];
  }

  // Index of the first key > v.
  int64_t UpperBound(Key v) const {
    return SearchTag::template UpperBound<Key>(keys_, count_, v);
  }

  // Identical result, counting scalar comparisons (trace hooks).
  int64_t UpperBoundCounted(Key v, SearchCounters* counters) const {
    return SearchTag::template UpperBoundCounted<Key>(keys_, count_, v,
                                                      counters);
  }

  // Trace layout id (obs/trace.h kTraceLayoutPlain).
  uint8_t TraceLayoutId() const { return 0; }

  // Prefetches the key storage ahead of an UpperBound call (batch
  // descent, see btree/batch_descent.h); fetch the line a binary search
  // probes first (the middle) plus the array head that a sequential
  // search starts from.
  void PrefetchKeys() const {
    __builtin_prefetch(keys_, 0, 3);
    __builtin_prefetch(keys_ + count_ / 2, 0, 3);
  }

  // Index of the first key >= v.
  int64_t LowerBound(Key v) const {
    if (v == std::numeric_limits<Key>::min()) return 0;
    return UpperBound(static_cast<Key>(v - 1));
  }

  void InsertAt(int64_t pos, Key k) {
    assert(pos >= 0 && pos <= count());
    assert(count() < capacity());
    std::memmove(keys_ + pos + 1, keys_ + pos,
                 static_cast<size_t>(count_ - pos) * sizeof(Key));
    keys_[pos] = k;
    ++count_;
  }

  void RemoveAt(int64_t pos) {
    assert(pos >= 0 && pos < count());
    std::memmove(keys_ + pos, keys_ + pos + 1,
                 static_cast<size_t>(count_ - pos - 1) * sizeof(Key));
    --count_;
  }

  void AssignSorted(const Key* keys, int64_t n) {
    assert(n <= capacity());
    std::memcpy(keys_, keys, static_cast<size_t>(n) * sizeof(Key));
    count_ = n;
  }

  void Clear() { count_ = 0; }

  // Moves keys [from, count) into the empty store `dst` (node split).
  void MoveSuffixTo(PlainKeyStore& dst, int64_t from) {
    assert(dst.count() == 0);
    std::memcpy(dst.keys_, keys_ + from,
                static_cast<size_t>(count_ - from) * sizeof(Key));
    dst.count_ = count_ - from;
    count_ = from;
  }

  // Appends all keys of `src` (node merge); src is left empty.
  void AppendFrom(PlainKeyStore& src) {
    assert(count() + src.count() <= capacity());
    std::memcpy(keys_ + count_, src.keys_,
                static_cast<size_t>(src.count_) * sizeof(Key));
    count_ += src.count_;
    src.count_ = 0;
  }

  size_t MemoryBytes() const {
    return static_cast<size_t>(ctx_->capacity) * sizeof(Key);
  }

 private:
  const Context* ctx_;
  std::vector<Key> owned_;  // standalone mode only; empty when external
  Key* keys_;
  int64_t count_ = 0;
};

}  // namespace simdtree::btree

#endif  // SIMDTREE_BTREE_PLAIN_KEY_STORE_H_
