// Group software-pipelined B+-Tree descent — the batched-lookup engine
// shared by the plain (binary-search) and Seg (SIMD k-ary) key stores.
//
// A single root-to-leaf descent serializes one node miss per level: the
// child pointer is not known until the current node's separators have
// been searched, so an out-of-cache tree spends almost its whole lookup
// stalled (paper Section 5.4: "the processor is mainly waiting for data
// from main memory"). Level-wise batch traversal (after Tzschoppe et al.
// and the BS-tree's data-parallel multi-query processing) converts that
// latency into throughput: G independent queries descend in lockstep,
// one level at a time, and every query's next node is prefetched before
// any of them is searched. The G misses of a level then overlap in the
// line fill buffers instead of arriving one at a time.
//
// Every level runs two passes over the group:
//
//   1. prefetch pass — each query's current node block arrived via the
//      previous level's prefetch; touch it to prefetch the key-slot and
//      child-ref lines of the block (keys and children live inline in
//      the node's arena block, see generic_btree.h, but a wide node
//      spans several cache lines);
//   2. search pass — run the key store's UpperBound (scalar or SIMD; the
//      store decides), decode the 32-bit child reference through the
//      tree's node pool (a load from the small, hot slab table — the
//      address is computable before the child is touched), and
//      immediately prefetch the child's block for the next level.
//
// All leaves of a B+-Tree sit at the same depth, so the lockstep never
// diverges. Results are exactly those of per-key Find / LowerBoundIter.
//
// BatchDescent is a friend of GenericBPlusTree: the pipeline needs the
// node types, which stay private to the tree.

#ifndef SIMDTREE_BTREE_BATCH_DESCENT_H_
#define SIMDTREE_BTREE_BATCH_DESCENT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "core/batch.h"
#include "obs/trace.h"
#include "util/counters.h"

namespace simdtree::btree {

template <typename Tree>
class BatchDescent {
 public:
  using Key = typename Tree::KeyType;
  using Value = typename Tree::ValueType;
  using Iterator = typename Tree::ConstIterator;

  // out[i] = pointer to the stored value of some occurrence of keys[i],
  // or nullptr when absent — the batched form of Tree::Find. Pointers are
  // valid until the next mutation of the tree. A non-null `counters`
  // accumulates nodes_visited exactly as the per-key FindCounted would:
  // one per level of each descent, plus one when a query steps into the
  // previous leaf.
  static void FindBatch(const Tree& tree, const Key* keys, size_t n,
                        const Value** out, int group,
                        SearchCounters* counters = nullptr) {
    group = ClampBatchGroup(group);
    if (tree.root_ == nullptr) {
      for (size_t i = 0; i < n; ++i) out[i] = nullptr;
      return;
    }
    for (size_t off = 0; off < n; off += static_cast<size_t>(group)) {
      const int g = static_cast<int>(
          std::min<size_t>(static_cast<size_t>(group), n - off));
      FindGroup(tree, keys + off, g, out + off, counters);
    }
  }

  // out[i] = iterator at the first pair with key >= keys[i] (invalid when
  // none) — the batched form of Tree::LowerBoundIter. Counter semantics
  // mirror FindBatch: one node per level per query, plus one when a query
  // steps into the next leaf. The logical cost is independent of `group`.
  static void LowerBoundBatch(const Tree& tree, const Key* keys, size_t n,
                              Iterator* out, int group,
                              SearchCounters* counters = nullptr) {
    group = ClampBatchGroup(group);
    if (tree.root_ == nullptr) {
      for (size_t i = 0; i < n; ++i) out[i] = Iterator();
      return;
    }
    for (size_t off = 0; off < n; off += static_cast<size_t>(group)) {
      const int g = static_cast<int>(
          std::min<size_t>(static_cast<size_t>(group), n - off));
      LowerBoundGroup(tree, keys + off, g, out + off, counters);
    }
  }

  // Traced batch lookup: identical results to FindBatch, additionally
  // recording a descent trace (obs/trace.h) for the batch's first key,
  // marked batched=1. The traced key is re-descended through the tree's
  // FindTraced — one extra serial descent per *sampled* batch, so the
  // pipelined group path itself stays free of instrumentation branches.
  static void FindBatchTraced(const Tree& tree, const Key* keys, size_t n,
                              const Value** out, int group,
                              SearchCounters* counters,
                              obs::DescentTrace* t) {
    FindBatch(tree, keys, n, out, group, counters);
    if (n > 0) {
      t->batched = 1;
      tree.FindTraced(keys[0], t);
    }
  }

 private:
  using NodeBase = typename Tree::NodeBase;
  using InnerNode = typename Tree::InnerNode;
  using LeafNode = typename Tree::LeafNode;

  static void Prefetch(const void* p) { PrefetchRead(p); }

  // Descends the whole group to leaf level in lockstep. `upper` selects
  // the in-node search (UpperBound for Find, LowerBound for the
  // lower-bound iterator), applied uniformly at the branching levels.
  template <bool kLower>
  static void DescendGroup(const Tree& tree, const Key* keys, int g,
                           const NodeBase** cur, SearchCounters* counters) {
    for (int i = 0; i < g; ++i) cur[i] = tree.root_;
    // One shared root read; all leaves sit at the same depth, so the
    // group reaches leaf level together.
    while (!cur[0]->is_leaf) {
      if (counters != nullptr) counters->nodes_visited += g;
      for (int i = 0; i < g; ++i) {
        const InnerNode* inner = static_cast<const InnerNode*>(cur[i]);
        inner->keys.PrefetchKeys();
        Prefetch(inner->children.data());
      }
      for (int i = 0; i < g; ++i) {
        const InnerNode* inner = static_cast<const InnerNode*>(cur[i]);
        const int64_t idx = kLower ? inner->keys.LowerBound(keys[i])
                                   : inner->keys.UpperBound(keys[i]);
        const NodeBase* child =
            tree.DecodeRef(inner->children[static_cast<size_t>(idx)]);
        cur[i] = child;
        Prefetch(child);
      }
    }
    for (int i = 0; i < g; ++i) {
      static_cast<const LeafNode*>(cur[i])->keys.PrefetchKeys();
    }
  }

  static void FindGroup(const Tree& tree, const Key* keys, int g,
                        const Value** out, SearchCounters* counters) {
    const NodeBase* cur[kMaxBatchGroup];
    DescendGroup<false>(tree, keys, g, cur, counters);
    if (counters != nullptr) counters->nodes_visited += g;  // leaf level
    // Leaf resolution, identical to Tree::FindLeafPos: the upper-bound
    // descent lands in the leaf holding the key's global upper bound; the
    // occurrence, if any, sits just before it — possibly at the end of
    // the previous leaf.
    for (int i = 0; i < g; ++i) {
      const LeafNode* leaf = static_cast<const LeafNode*>(cur[i]);
      int64_t pos = leaf->keys.UpperBound(keys[i]);
      if (pos == 0) {
        leaf = leaf->prev;
        if (leaf == nullptr) {
          out[i] = nullptr;
          continue;
        }
        if (counters != nullptr) ++counters->nodes_visited;
        pos = leaf->keys.count();
      }
      out[i] = leaf->keys.At(pos - 1) == keys[i]
                   ? &leaf->values[static_cast<size_t>(pos - 1)]
                   : nullptr;
    }
  }

  static void LowerBoundGroup(const Tree& tree, const Key* keys, int g,
                              Iterator* out, SearchCounters* counters) {
    const NodeBase* cur[kMaxBatchGroup];
    DescendGroup<true>(tree, keys, g, cur, counters);
    if (counters != nullptr) counters->nodes_visited += g;  // leaf level
    // Leaf resolution, identical to Tree::LowerBoundIter.
    for (int i = 0; i < g; ++i) {
      const LeafNode* leaf = static_cast<const LeafNode*>(cur[i]);
      int64_t pos = leaf->keys.LowerBound(keys[i]);
      if (pos >= leaf->keys.count()) {  // answer starts in the next leaf
        leaf = leaf->next;
        if (leaf != nullptr && counters != nullptr) {
          ++counters->nodes_visited;
        }
        pos = 0;
      }
      out[i] = leaf != nullptr ? Iterator(leaf, pos) : Iterator();
    }
  }
};

}  // namespace simdtree::btree

#endif  // SIMDTREE_BTREE_BATCH_DESCENT_H_
