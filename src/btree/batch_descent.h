// Group software-pipelined B+-Tree descent — the batched-lookup engine
// shared by the plain (binary-search) and Seg (SIMD k-ary) key stores.
//
// A single root-to-leaf descent serializes one node miss per level: the
// child pointer is not known until the current node's separators have
// been searched, so an out-of-cache tree spends almost its whole lookup
// stalled (paper Section 5.4: "the processor is mainly waiting for data
// from main memory"). Level-wise batch traversal (after Tzschoppe et al.
// and the BS-tree's data-parallel multi-query processing) converts that
// latency into throughput: G independent queries descend in lockstep,
// one level at a time, and every query's next node is prefetched before
// any of them is searched. The G misses of a level then overlap in the
// line fill buffers instead of arriving one at a time.
//
// Every level runs two passes over the group:
//
//   1. prefetch pass — each query's current node block arrived via the
//      previous level's prefetch; touch it to prefetch the key-slot and
//      child-ref lines of the block (keys and children live inline in
//      the node's arena block, see generic_btree.h, but a wide node
//      spans several cache lines);
//   2. search pass — run the key store's UpperBound (scalar or SIMD; the
//      store decides), decode the 32-bit child reference through the
//      tree's node pool (a load from the small, hot slab table — the
//      address is computable before the child is touched), and
//      immediately prefetch the child's block for the next level.
//
// All leaves of a B+-Tree sit at the same depth, so the lockstep never
// diverges. Results are exactly those of per-key Find / LowerBoundIter.
//
// BatchDescent is a friend of GenericBPlusTree: the pipeline needs the
// node types, which stay private to the tree.

#ifndef SIMDTREE_BTREE_BATCH_DESCENT_H_
#define SIMDTREE_BTREE_BATCH_DESCENT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/batch.h"
#include "core/batch_sort.h"
#include "core/olc.h"
#include "obs/trace.h"
#include "util/counters.h"
#include "util/cycle_timer.h"

namespace simdtree::btree {

// Per-level observations of one grouped descent, feeding the trace hook:
// how many distinct nodes the frontier visited at each level and how long
// the level took. nodes[l] == batch size means no sharing; nodes[l] == 1
// means the whole batch shared one node.
struct GroupedLevelStats {
  int levels = 0;
  uint32_t nodes[obs::kMaxTraceLevels] = {};
  uint64_t cycles[obs::kMaxTraceLevels] = {};
};

template <typename Tree>
class BatchDescent {
 public:
  using Key = typename Tree::KeyType;
  using Value = typename Tree::ValueType;
  using Iterator = typename Tree::ConstIterator;

  // out[i] = pointer to the stored value of some occurrence of keys[i],
  // or nullptr when absent — the batched form of Tree::Find. Pointers are
  // valid until the next mutation of the tree. A non-null `counters`
  // accumulates nodes_visited exactly as the per-key FindCounted would:
  // one per level of each descent, plus one when a query steps into the
  // previous leaf.
  static void FindBatch(const Tree& tree, const Key* keys, size_t n,
                        const Value** out, int group,
                        SearchCounters* counters = nullptr) {
    group = ClampBatchGroup(group);
    if (tree.root_ == nullptr) {
      for (size_t i = 0; i < n; ++i) out[i] = nullptr;
      return;
    }
    for (size_t off = 0; off < n; off += static_cast<size_t>(group)) {
      const int g = static_cast<int>(
          std::min<size_t>(static_cast<size_t>(group), n - off));
      FindGroup(tree, keys + off, g, out + off, counters);
    }
  }

  // out[i] = iterator at the first pair with key >= keys[i] (invalid when
  // none) — the batched form of Tree::LowerBoundIter. Counter semantics
  // mirror FindBatch: one node per level per query, plus one when a query
  // steps into the next leaf. The logical cost is independent of `group`.
  static void LowerBoundBatch(const Tree& tree, const Key* keys, size_t n,
                              Iterator* out, int group,
                              SearchCounters* counters = nullptr) {
    group = ClampBatchGroup(group);
    if (tree.root_ == nullptr) {
      for (size_t i = 0; i < n; ++i) out[i] = Iterator();
      return;
    }
    for (size_t off = 0; off < n; off += static_cast<size_t>(group)) {
      const int g = static_cast<int>(
          std::min<size_t>(static_cast<size_t>(group), n - off));
      LowerBoundGroup(tree, keys + off, g, out + off, counters);
    }
  }

  // Traced batch lookup: identical results to FindBatch, additionally
  // recording a descent trace (obs/trace.h) for the batch's first key,
  // marked batched=1. The traced key is re-descended through the tree's
  // FindTraced — one extra serial descent per *sampled* batch, so the
  // pipelined group path itself stays free of instrumentation branches.
  static void FindBatchTraced(const Tree& tree, const Key* keys, size_t n,
                              const Value** out, int group,
                              SearchCounters* counters,
                              obs::DescentTrace* t) {
    FindBatch(tree, keys, n, out, group, counters);
    if (n > 0) {
      t->batched = 1;
      tree.FindTraced(keys[0], t);
    }
  }

  // --- optimistic (lock-free) batch descents ------------------------------
  //
  // Same pipelined / level-wise schedules as FindBatch / FindBatchGrouped,
  // but over optimistic-lock-coupling version validation instead of a
  // shard lock (see generic_btree.h "optimistic reads" and core/olc.h).
  // Both are ONE attempt per query: out[i] is assigned for every query
  // that resolved on a consistent snapshot; queries invalidated by a
  // concurrent writer are appended to *failed (original index) with
  // out[i] untouched, for the caller to retry per-key or under its lock.
  // Values are copied out (not pointed to): a pointer into a node is
  // only valid under a lock. Caller must hold an olc::EpochGuard pin.

  static void FindBatchOptimistic(const Tree& tree, const Key* keys, size_t n,
                                  std::optional<Value>* out,
                                  std::vector<uint32_t>* failed) {
    olc::TsanIgnoreReadsScope tsan;
    for (size_t off = 0; off < n; off += static_cast<size_t>(kMaxBatchGroup)) {
      const int g = static_cast<int>(
          std::min<size_t>(static_cast<size_t>(kMaxBatchGroup), n - off));
      FindGroupOptimistic(tree, keys + off, g, out + off,
                          static_cast<uint32_t>(off), failed);
    }
  }

  // Level-wise variant: sorts the batch once and validates each frontier
  // node once per batch, so the whole sorted run over a node shares one
  // version check. Queries whose answer may end the *previous* leaf
  // (upper-bound position 0 with a non-null prev) — or whose right-edge
  // miss the sibling probe cannot prove (RightEdgeMissProven) — are
  // reported as failed rather than hopping leaves mid-run; the per-key
  // retry resolves them.
  static void FindBatchGroupedOptimistic(const Tree& tree, const Key* keys,
                                         size_t n, std::optional<Value>* out,
                                         std::vector<uint32_t>* failed) {
    if (n == 0) return;
    olc::TsanIgnoreReadsScope tsan;
    SortedBatch<Key> sorted;
    SortBatchWithPermutation(keys, n, &sorted);
    const Key* skeys = sorted.keys.data();
    const auto fail_range = [&](uint32_t b, uint32_t e) {
      for (uint32_t j = b; j < e; ++j) failed->push_back(sorted.perm[j]);
    };
    const uint64_t vt = tree.tree_version_.ReadBegin();
    if (!olc::VersionWord::IsStable(vt)) {
      fail_range(0, static_cast<uint32_t>(n));
      return;
    }
    const NodeBase* root = tree.root_;
    if (!tree.tree_version_.Validate(vt)) {
      fail_range(0, static_cast<uint32_t>(n));
      return;
    }
    if (root == nullptr) {
      for (size_t i = 0; i < n; ++i) out[i] = std::nullopt;
      return;
    }
    const uint64_t vr = root->version.ReadBegin();
    if (!olc::VersionWord::IsStable(vr)) {
      fail_range(0, static_cast<uint32_t>(n));
      return;
    }
    std::vector<OptRun> frontier;
    std::vector<OptRun> next;
    frontier.push_back(OptRun{root, vr, 0, static_cast<uint32_t>(n)});
    const int64_t inner_cap = tree.inner_ctx_->capacity;
    struct Part {
      typename Tree::NodeRef ref;
      uint32_t begin;
      uint32_t end;
    };
    std::vector<Part> parts;
    int depth = 0;
    for (;;) {
      bool any_inner = false;
      for (const OptRun& r : frontier) {
        if (!r.node->is_leaf) {
          any_inner = true;
          break;
        }
      }
      if (!any_inner) break;
      if (++depth > kMaxOptimisticDepth) {  // garbage-ref cycle backstop
        for (const OptRun& r : frontier) fail_range(r.begin, r.end);
        return;
      }
      next.clear();
      for (const OptRun& run : frontier) {
        if (run.node->is_leaf) {
          next.push_back(run);
          continue;
        }
        const InnerNode* inner = static_cast<const InnerNode*>(run.node);
        const int64_t sep_count = inner->keys.count();
        if (sep_count < 0 || sep_count > inner_cap) {
          fail_range(run.begin, run.end);
          continue;
        }
        // Partition the sorted run across the children on the racy
        // snapshot, then validate once for the whole run.
        parts.clear();
        bool bad = false;
        uint32_t cur = run.begin;
        while (cur < run.end) {
          const int64_t idx = inner->keys.UpperBound(skeys[cur]);
          if (idx < 0 || idx > sep_count) {
            bad = true;
            break;
          }
          uint32_t sub_end = run.end;
          if (idx < sep_count) {
            const Key sep = inner->keys.At(idx);
            sub_end = static_cast<uint32_t>(
                std::lower_bound(skeys + cur + 1, skeys + run.end, sep) -
                skeys);
          }
          parts.push_back(
              Part{inner->children[static_cast<size_t>(idx)], cur, sub_end});
          cur = sub_end;
        }
        if (bad || !inner->version.Validate(run.ver)) {
          fail_range(run.begin, run.end);
          continue;
        }
        for (const Part& p : parts) {
          const NodeBase* child = tree.DecodeRefOptimistic(p.ref);
          if (child == nullptr) {
            fail_range(p.begin, p.end);
            continue;
          }
          const uint64_t vc = child->version.ReadBegin();
          if (!olc::VersionWord::IsStable(vc)) {
            fail_range(p.begin, p.end);
            continue;
          }
          Prefetch(child);
          next.push_back(OptRun{child, vc, p.begin, p.end});
        }
      }
      frontier.swap(next);
    }
    // Leaf level: gather each run's answers into scratch on the racy
    // snapshot, validate the leaf once, then commit through the sort
    // permutation.
    const int64_t leaf_cap = tree.leaf_ctx_->capacity;
    std::vector<std::optional<Value>> tmp;
    std::vector<uint8_t> tmp_defer;
    for (const OptRun& run : frontier) {
      const LeafNode* leaf = static_cast<const LeafNode*>(run.node);
      tmp.assign(run.end - run.begin, std::nullopt);
      tmp_defer.assign(run.end - run.begin, 0);
      bool bad = false;
      const int64_t leaf_count = leaf->keys.count();
      if (leaf_count < 0 || leaf_count > leaf_cap) {
        fail_range(run.begin, run.end);
        continue;
      }
      for (uint32_t j = run.begin; j < run.end; ++j) {
        const Key q = skeys[j];
        const int64_t pos = leaf->keys.UpperBound(q);
        if (pos < 0 || pos > leaf_cap) {
          bad = true;
          break;
        }
        if (pos == 0) {
          // Occurrence, if any, ends the previous leaf: defer to the
          // caller's per-key retry instead of hopping mid-run.
          if (leaf->prev != nullptr) tmp_defer[j - run.begin] = 1;
          continue;
        }
        if (leaf->keys.At(pos - 1) == q) {
          tmp[j - run.begin] = leaf->values[static_cast<size_t>(pos - 1)];
        } else if (pos == leaf_count && leaf->next != nullptr &&
                   !RightEdgeMissProven(leaf->next, q, leaf_cap)) {
          tmp_defer[j - run.begin] = 1;
        }
      }
      if (bad || !leaf->version.Validate(run.ver)) {
        fail_range(run.begin, run.end);
        continue;
      }
      for (uint32_t j = run.begin; j < run.end; ++j) {
        if (tmp_defer[j - run.begin] != 0) {
          failed->push_back(sorted.perm[j]);
        } else {
          out[sorted.perm[j]] = tmp[j - run.begin];
        }
      }
    }
  }

  // --- grouped (level-wise) descent ----------------------------------------
  //
  // Sorts the batch once (core/batch_sort.h), then walks the tree level
  // by level with a frontier of (node, contiguous query run) pairs: each
  // node is loaded and searched once per batch, and its run is
  // partitioned across the children by binary-splitting the sorted run
  // on the node's separator keys — the key store's own in-node search
  // finds the first child, std::lower_bound on the separator rank finds
  // where the run leaves it. Answers and logical counters are identical
  // to FindBatch; counters->nodes_loaded additionally counts each
  // frontier node once, so nodes_visited / nodes_loaded is the sharing
  // factor the level-wise traversal buys.
  static void FindBatchGrouped(const Tree& tree, const Key* keys, size_t n,
                               const Value** out,
                               SearchCounters* counters = nullptr,
                               GroupedLevelStats* stats = nullptr) {
    if (tree.root_ == nullptr) {
      for (size_t i = 0; i < n; ++i) out[i] = nullptr;
      return;
    }
    if (n == 0) return;
    SortedBatch<Key> sorted;
    SortBatchWithPermutation(keys, n, &sorted);
    const Key* skeys = sorted.keys.data();
    std::vector<Run> frontier;
    frontier.push_back(Run{tree.root_, 0, static_cast<uint32_t>(n)});
    DescendRuns<false>(tree, skeys, &frontier, counters, stats);
    const uint64_t leaf_start = stats != nullptr ? CycleTimer::Now() : 0;
    for (size_t r = 0; r < frontier.size(); ++r) {
      if (r + 2 * kGroupedRunLookahead < frontier.size()) {
        Prefetch(frontier[r + 2 * kGroupedRunLookahead].node);
      }
      if (r + kGroupedRunLookahead < frontier.size()) {
        static_cast<const LeafNode*>(frontier[r + kGroupedRunLookahead].node)
            ->keys.PrefetchKeys();
      }
      const Run& run = frontier[r];
      const LeafNode* leaf0 = static_cast<const LeafNode*>(run.node);
      if (counters != nullptr) {
        counters->nodes_visited += run.end - run.begin;
        ++counters->nodes_loaded;
      }
      // Leaf resolution per query, identical to FindGroup; duplicate
      // queries (adjacent after the sort) reuse the previous answer.
      bool prev_loaded = false;
      Key last_q{};
      const Value* last_out = nullptr;
      bool last_stepped = false;
      for (uint32_t j = run.begin; j < run.end; ++j) {
        const Key q = skeys[j];
        if (j > run.begin && q == last_q) {
          out[sorted.perm[j]] = last_out;
          if (counters != nullptr && last_stepped) ++counters->nodes_visited;
          continue;
        }
        last_q = q;
        last_stepped = false;
        const LeafNode* leaf = leaf0;
        int64_t pos = leaf->keys.UpperBound(q);
        if (pos == 0) {
          leaf = leaf->prev;
          if (leaf == nullptr) {
            last_out = nullptr;
            out[sorted.perm[j]] = nullptr;
            continue;
          }
          last_stepped = true;
          if (counters != nullptr) {
            ++counters->nodes_visited;
            if (!prev_loaded) {
              ++counters->nodes_loaded;
              prev_loaded = true;
            }
          }
          pos = leaf->keys.count();
        }
        last_out = leaf->keys.At(pos - 1) == q
                       ? &leaf->values[static_cast<size_t>(pos - 1)]
                       : nullptr;
        out[sorted.perm[j]] = last_out;
      }
    }
    RecordLevel(stats, frontier.size(), leaf_start);
  }

  // Grouped lower-bound iterators: the batched form of LowerBoundIter
  // with the level-wise schedule. The descent routes query q to the
  // child holding the first key >= q (LowerBound ranks), so the run
  // boundary at separator s is the first query > s.
  static void LowerBoundBatchGrouped(const Tree& tree, const Key* keys,
                                     size_t n, Iterator* out,
                                     SearchCounters* counters = nullptr) {
    if (tree.root_ == nullptr) {
      for (size_t i = 0; i < n; ++i) out[i] = Iterator();
      return;
    }
    if (n == 0) return;
    SortedBatch<Key> sorted;
    SortBatchWithPermutation(keys, n, &sorted);
    const Key* skeys = sorted.keys.data();
    std::vector<Run> frontier;
    frontier.push_back(Run{tree.root_, 0, static_cast<uint32_t>(n)});
    DescendRuns<true>(tree, skeys, &frontier, counters, nullptr);
    for (size_t r = 0; r < frontier.size(); ++r) {
      if (r + 2 * kGroupedRunLookahead < frontier.size()) {
        Prefetch(frontier[r + 2 * kGroupedRunLookahead].node);
      }
      if (r + kGroupedRunLookahead < frontier.size()) {
        static_cast<const LeafNode*>(frontier[r + kGroupedRunLookahead].node)
            ->keys.PrefetchKeys();
      }
      const Run& run = frontier[r];
      const LeafNode* leaf0 = static_cast<const LeafNode*>(run.node);
      if (counters != nullptr) {
        counters->nodes_visited += run.end - run.begin;
        ++counters->nodes_loaded;
      }
      bool next_loaded = false;
      Key last_q{};
      Iterator last_it;
      bool last_stepped = false;
      for (uint32_t j = run.begin; j < run.end; ++j) {
        const Key q = skeys[j];
        if (j > run.begin && q == last_q) {
          out[sorted.perm[j]] = last_it;
          if (counters != nullptr && last_stepped) ++counters->nodes_visited;
          continue;
        }
        last_q = q;
        last_stepped = false;
        const LeafNode* leaf = leaf0;
        int64_t pos = leaf->keys.LowerBound(q);
        if (pos >= leaf->keys.count()) {  // answer starts in the next leaf
          leaf = leaf->next;
          if (leaf != nullptr) {
            last_stepped = true;
            if (counters != nullptr) {
              ++counters->nodes_visited;
              if (!next_loaded) {
                ++counters->nodes_loaded;
                next_loaded = true;
              }
            }
          }
          pos = 0;
        }
        last_it = leaf != nullptr ? Iterator(leaf, pos) : Iterator();
        out[sorted.perm[j]] = last_it;
      }
    }
  }

  // Traced grouped lookup: identical results to FindBatchGrouped, plus
  // one trace whose per-level spans record the level's distinct
  // node-visit count (node_ref) and the batch size sharing the level
  // (group_size) — the flight-recorder view of the amortization.
  static void FindBatchGroupedTraced(const Tree& tree, const Key* keys,
                                     size_t n, const Value** out,
                                     SearchCounters* counters,
                                     obs::DescentTrace* t) {
    GroupedLevelStats stats;
    FindBatchGrouped(tree, keys, n, out, counters, &stats);
    if (n == 0 || tree.root_ == nullptr) return;
    t->batched = 1;
    t->key = static_cast<uint64_t>(
        static_cast<std::make_unsigned_t<Key>>(keys[0]));
    t->found = out[0] != nullptr ? 1 : 0;
    const uint8_t layout_id = RootLayoutId(tree);
    t->backend = static_cast<uint8_t>(layout_id == 0
                                          ? obs::TraceBackend::kBPlusTree
                                          : obs::TraceBackend::kSegTree);
    const uint16_t group_size =
        n > 0xffff ? uint16_t{0xffff} : static_cast<uint16_t>(n);
    for (int l = 0; l < stats.levels; ++l) {
      obs::AppendTraceLevel(t, stats.nodes[l], layout_id,
                            obs::kTraceSlabUnknown, SearchCounters{},
                            stats.cycles[l], group_size);
    }
  }

 private:
  using NodeBase = typename Tree::NodeBase;
  using InnerNode = typename Tree::InnerNode;
  using LeafNode = typename Tree::LeafNode;

  static void Prefetch(const void* p) { PrefetchRead(p); }

  // One grouped-frontier entry: sorted queries [begin, end) all route to
  // `node` on the current level. Runs on one level are disjoint and
  // cover the batch, and distinct runs hold distinct nodes (children of
  // disjoint subtrees), so one run == one physical node load.
  struct Run {
    const NodeBase* node;
    uint32_t begin;
    uint32_t end;
  };

  // Optimistic frontier entry: Run plus the node's version at first
  // touch, validated before the run's child refs are trusted.
  struct OptRun {
    const NodeBase* node;
    uint64_t ver;
    uint32_t begin;
    uint32_t end;
  };

  // Backstop against following garbage references in a cycle: no real
  // descent is deeper than this (a height-40 tree would be astronomically
  // large), so exceeding it means the snapshot is hopeless — fail the
  // queries and let the caller retry.
  static constexpr int kMaxOptimisticDepth = 40;

  // A miss at the right edge of a leaf (upper-bound == count, live next
  // sibling) is only provable by confirming the key precedes the next
  // leaf's first key: a split racing the descent may have moved the
  // key's range into that sibling. Probes the sibling under its own
  // seqlock; true == miss proven, false == caller must defer to the
  // per-key retry (FindOptimistic right-hops the chain). The caller
  // still validates the current leaf afterwards, which covers the
  // next-pointer read itself.
  static bool RightEdgeMissProven(const LeafNode* next, Key q,
                                  int64_t leaf_cap) {
    const uint64_t vn = next->version.ReadBegin();
    if (!olc::VersionWord::IsStable(vn)) return false;
    const int64_t nc = next->keys.count();
    if (nc <= 0 || nc > leaf_cap) return false;
    const Key first = next->keys.At(0);
    if (!next->version.Validate(vn)) return false;
    return q < first;
  }

  // Pipelined lockstep descent of one group with per-query version
  // coupling; failures are per-query (index base + i appended to
  // *failed), survivors resolve exactly like FindGroup but copy the
  // value out before the final leaf validation.
  static void FindGroupOptimistic(const Tree& tree, const Key* keys, int g,
                                  std::optional<Value>* out, uint32_t base,
                                  std::vector<uint32_t>* failed) {
    const NodeBase* cur[kMaxBatchGroup];
    uint64_t ver[kMaxBatchGroup];
    bool live[kMaxBatchGroup];
    const auto fail_all = [&] {
      for (int i = 0; i < g; ++i) failed->push_back(base + static_cast<uint32_t>(i));
    };
    const uint64_t vt = tree.tree_version_.ReadBegin();
    if (!olc::VersionWord::IsStable(vt)) {
      fail_all();
      return;
    }
    const NodeBase* root = tree.root_;
    if (!tree.tree_version_.Validate(vt)) {
      fail_all();
      return;
    }
    if (root == nullptr) {
      for (int i = 0; i < g; ++i) out[i] = std::nullopt;
      return;
    }
    const uint64_t vr = root->version.ReadBegin();
    if (!olc::VersionWord::IsStable(vr)) {
      fail_all();
      return;
    }
    for (int i = 0; i < g; ++i) {
      cur[i] = root;
      ver[i] = vr;
      live[i] = true;
    }
    const auto fail_one = [&](int i) {
      live[i] = false;
      failed->push_back(base + static_cast<uint32_t>(i));
    };
    const int64_t inner_cap = tree.inner_ctx_->capacity;
    int depth = 0;
    for (;;) {
      bool any_inner = false;
      for (int i = 0; i < g; ++i) {
        if (live[i] && !cur[i]->is_leaf) {
          any_inner = true;
          break;
        }
      }
      if (!any_inner) break;
      if (++depth > kMaxOptimisticDepth) {
        for (int i = 0; i < g; ++i) {
          if (live[i]) fail_one(i);
        }
        return;
      }
      for (int i = 0; i < g; ++i) {
        if (!live[i] || cur[i]->is_leaf) continue;
        const InnerNode* inner = static_cast<const InnerNode*>(cur[i]);
        inner->keys.PrefetchKeys();
        Prefetch(inner->children.data());
      }
      for (int i = 0; i < g; ++i) {
        if (!live[i] || cur[i]->is_leaf) continue;
        const InnerNode* inner = static_cast<const InnerNode*>(cur[i]);
        const int64_t idx = inner->keys.UpperBound(keys[i]);
        if (idx < 0 || idx > inner_cap) {
          fail_one(i);
          continue;
        }
        const typename Tree::NodeRef ref =
            inner->children[static_cast<size_t>(idx)];
        if (!inner->version.Validate(ver[i])) {
          fail_one(i);
          continue;
        }
        const NodeBase* child = tree.DecodeRefOptimistic(ref);
        if (child == nullptr) {
          fail_one(i);
          continue;
        }
        const uint64_t vc = child->version.ReadBegin();
        if (!olc::VersionWord::IsStable(vc)) {
          fail_one(i);
          continue;
        }
        cur[i] = child;
        ver[i] = vc;
        Prefetch(child);
      }
    }
    // Leaf resolution with the FindOptimistic prev-leaf hop protocol.
    const int64_t leaf_cap = tree.leaf_ctx_->capacity;
    for (int i = 0; i < g; ++i) {
      if (!live[i]) continue;
      const LeafNode* leaf = static_cast<const LeafNode*>(cur[i]);
      uint64_t v = ver[i];
      int64_t pos = leaf->keys.UpperBound(keys[i]);
      if (pos < 0 || pos > leaf_cap) {
        fail_one(i);
        continue;
      }
      if (pos == 0) {
        const LeafNode* prev = leaf->prev;
        if (!leaf->version.Validate(v)) {
          fail_one(i);
          continue;
        }
        if (prev == nullptr) {
          out[i] = std::nullopt;
          continue;
        }
        const uint64_t vp = prev->version.ReadBegin();
        if (!olc::VersionWord::IsStable(vp)) {
          fail_one(i);
          continue;
        }
        leaf = prev;
        v = vp;
        pos = leaf->keys.count();
        if (pos <= 0 || pos > leaf_cap) {
          fail_one(i);
          continue;
        }
      }
      const Key found = leaf->keys.At(pos - 1);
      Value value{};
      const bool hit = found == keys[i];
      if (hit) value = leaf->values[static_cast<size_t>(pos - 1)];
      if (!hit) {
        const int64_t count = leaf->keys.count();
        if (count < 0 || count > leaf_cap) {
          fail_one(i);
          continue;
        }
        const LeafNode* next = leaf->next;
        if (pos == count && next != nullptr &&
            !RightEdgeMissProven(next, keys[i], leaf_cap)) {
          fail_one(i);
          continue;
        }
      }
      if (!leaf->version.Validate(v)) {
        fail_one(i);
        continue;
      }
      out[i] = hit ? std::optional<Value>(std::move(value)) : std::nullopt;
    }
  }

  static void RecordLevel(GroupedLevelStats* stats, size_t nodes,
                          uint64_t start) {
    if (stats == nullptr || stats->levels >= obs::kMaxTraceLevels) return;
    stats->nodes[stats->levels] = static_cast<uint32_t>(nodes);
    stats->cycles[stats->levels] = CycleTimer::Now() - start;
    ++stats->levels;
  }

  static uint8_t RootLayoutId(const Tree& tree) {
    return tree.root_->is_leaf
               ? static_cast<const LeafNode*>(tree.root_)
                     ->keys.TraceLayoutId()
               : static_cast<const InnerNode*>(tree.root_)
                     ->keys.TraceLayoutId();
  }

  // Level-wise frontier walk to leaf level. kLower selects lower-bound
  // ranks for the descent (LowerBoundBatchGrouped), upper-bound ranks
  // otherwise; the run boundary under a separator s is therefore the
  // first query > s (lower) or >= s (upper). Each frontier node costs
  // one in-node search per child actually taken plus one binary split
  // per boundary — independent of the run's length.
  template <bool kLower>
  static void DescendRuns(const Tree& tree, const Key* skeys,
                          std::vector<Run>* frontier,
                          SearchCounters* counters,
                          GroupedLevelStats* stats) {
    std::vector<Run> next;
    while (!frontier->empty() && !(*frontier)[0].node->is_leaf) {
      const uint64_t start = stats != nullptr ? CycleTimer::Now() : 0;
      next.clear();
      const std::vector<Run>& runs = *frontier;
      for (size_t r = 0; r < runs.size(); ++r) {
        // Two-stage lookahead: the node struct at distance 2W, its key
        // storage (behind the store's internal pointer — readable once
        // the struct line is hot) at distance W. Matches the per-node
        // prefetch coverage of the pipelined DescendGroup passes.
        if (r + 2 * kGroupedRunLookahead < runs.size()) {
          Prefetch(runs[r + 2 * kGroupedRunLookahead].node);
        }
        if (r + kGroupedRunLookahead < runs.size()) {
          const InnerNode* ahead = static_cast<const InnerNode*>(
              runs[r + kGroupedRunLookahead].node);
          ahead->keys.PrefetchKeys();
          Prefetch(ahead->children.data());
        }
        const Run& run = runs[r];
        const InnerNode* inner = static_cast<const InnerNode*>(run.node);
        if (counters != nullptr) {
          counters->nodes_visited += run.end - run.begin;
          ++counters->nodes_loaded;
        }
        inner->keys.PrefetchKeys();
        const int64_t sep_count = inner->keys.count();
        uint32_t cur = run.begin;
        while (cur < run.end) {
          const int64_t idx = kLower ? inner->keys.LowerBound(skeys[cur])
                                     : inner->keys.UpperBound(skeys[cur]);
          uint32_t sub_end = run.end;
          if (idx < sep_count) {
            const Key sep = inner->keys.At(idx);
            sub_end = static_cast<uint32_t>(
                (kLower ? std::upper_bound(skeys + cur + 1, skeys + run.end,
                                           sep)
                        : std::lower_bound(skeys + cur + 1, skeys + run.end,
                                           sep)) -
                skeys);
          }
          const NodeBase* child =
              tree.DecodeRef(inner->children[static_cast<size_t>(idx)]);
          Prefetch(child);
          next.push_back(Run{child, cur, sub_end});
          cur = sub_end;
        }
      }
      RecordLevel(stats, frontier->size(), start);
      frontier->swap(next);
    }
  }

  // Descends the whole group to leaf level in lockstep. `upper` selects
  // the in-node search (UpperBound for Find, LowerBound for the
  // lower-bound iterator), applied uniformly at the branching levels.
  template <bool kLower>
  static void DescendGroup(const Tree& tree, const Key* keys, int g,
                           const NodeBase** cur, SearchCounters* counters) {
    for (int i = 0; i < g; ++i) cur[i] = tree.root_;
    // One shared root read; all leaves sit at the same depth, so the
    // group reaches leaf level together.
    while (!cur[0]->is_leaf) {
      if (counters != nullptr) counters->nodes_visited += g;
      for (int i = 0; i < g; ++i) {
        const InnerNode* inner = static_cast<const InnerNode*>(cur[i]);
        inner->keys.PrefetchKeys();
        Prefetch(inner->children.data());
      }
      for (int i = 0; i < g; ++i) {
        const InnerNode* inner = static_cast<const InnerNode*>(cur[i]);
        const int64_t idx = kLower ? inner->keys.LowerBound(keys[i])
                                   : inner->keys.UpperBound(keys[i]);
        const NodeBase* child =
            tree.DecodeRef(inner->children[static_cast<size_t>(idx)]);
        cur[i] = child;
        Prefetch(child);
      }
    }
    for (int i = 0; i < g; ++i) {
      static_cast<const LeafNode*>(cur[i])->keys.PrefetchKeys();
    }
  }

  static void FindGroup(const Tree& tree, const Key* keys, int g,
                        const Value** out, SearchCounters* counters) {
    const NodeBase* cur[kMaxBatchGroup];
    DescendGroup<false>(tree, keys, g, cur, counters);
    if (counters != nullptr) counters->nodes_visited += g;  // leaf level
    // Leaf resolution, identical to Tree::FindLeafPos: the upper-bound
    // descent lands in the leaf holding the key's global upper bound; the
    // occurrence, if any, sits just before it — possibly at the end of
    // the previous leaf.
    for (int i = 0; i < g; ++i) {
      const LeafNode* leaf = static_cast<const LeafNode*>(cur[i]);
      int64_t pos = leaf->keys.UpperBound(keys[i]);
      if (pos == 0) {
        leaf = leaf->prev;
        if (leaf == nullptr) {
          out[i] = nullptr;
          continue;
        }
        if (counters != nullptr) ++counters->nodes_visited;
        pos = leaf->keys.count();
      }
      out[i] = leaf->keys.At(pos - 1) == keys[i]
                   ? &leaf->values[static_cast<size_t>(pos - 1)]
                   : nullptr;
    }
  }

  static void LowerBoundGroup(const Tree& tree, const Key* keys, int g,
                              Iterator* out, SearchCounters* counters) {
    const NodeBase* cur[kMaxBatchGroup];
    DescendGroup<true>(tree, keys, g, cur, counters);
    if (counters != nullptr) counters->nodes_visited += g;  // leaf level
    // Leaf resolution, identical to Tree::LowerBoundIter.
    for (int i = 0; i < g; ++i) {
      const LeafNode* leaf = static_cast<const LeafNode*>(cur[i]);
      int64_t pos = leaf->keys.LowerBound(keys[i]);
      if (pos >= leaf->keys.count()) {  // answer starts in the next leaf
        leaf = leaf->next;
        if (leaf != nullptr && counters != nullptr) {
          ++counters->nodes_visited;
        }
        pos = 0;
      }
      out[i] = leaf != nullptr ? Iterator(leaf, pos) : Iterator();
    }
  }
};

}  // namespace simdtree::btree

#endif  // SIMDTREE_BTREE_BATCH_DESCENT_H_
