// Public baseline B+-Tree: GenericBPlusTree with plain sorted-array nodes
// and scalar in-node search. This is the paper's baseline ("the original
// B+-Tree using binary search serves as the baseline for our performance
// measurements", Section 5).

#ifndef SIMDTREE_BTREE_BTREE_H_
#define SIMDTREE_BTREE_BTREE_H_

#include <cstdint>

#include "btree/generic_btree.h"
#include "btree/plain_key_store.h"

namespace simdtree::btree {

// Paper Table 3 node capacities (N_L keys per node), chosen so that one
// node stays under the 4 KB hardware-prefetch boundary. The baseline uses
// the same capacities as the Seg-Tree so that both trees have identical
// fanout and height and only the in-node search differs.
constexpr int64_t PaperNodeCapacity(size_t key_size) {
  switch (key_size) {
    case 1: return 254;
    case 2: return 404;
    case 4: return 338;
    default: return 242;  // 8-byte keys
  }
}

template <typename Key, typename Value, typename SearchTag = BinarySearchTag>
class BPlusTree
    : public GenericBPlusTree<Key, Value, PlainKeyStore<Key, SearchTag>> {
 public:
  using Base = GenericBPlusTree<Key, Value, PlainKeyStore<Key, SearchTag>>;
  using Config = typename Base::Config;

  // Same capacity for branching and leaf nodes, like the paper's setup.
  static Config MakeConfig(int64_t capacity) {
    return Config{
        typename PlainKeyStore<Key, SearchTag>::Context(capacity),
        typename PlainKeyStore<Key, SearchTag>::Context(capacity)};
  }

  static Config DefaultConfig() {
    return MakeConfig(PaperNodeCapacity(sizeof(Key)));
  }

  BPlusTree() : Base(DefaultConfig()) {}
  explicit BPlusTree(int64_t capacity) : Base(MakeConfig(capacity)) {}
  explicit BPlusTree(Config config) : Base(std::move(config)) {}

  // Bulk load with completely filled nodes (paper Section 5.1).
  static BPlusTree BulkLoad(const Key* keys, const Value* values, size_t n,
                            double fill = 1.0,
                            int64_t capacity = PaperNodeCapacity(
                                sizeof(Key))) {
    BPlusTree tree(capacity);
    Base loaded = Base::BulkLoad(MakeConfig(capacity), keys, values, n, fill);
    static_cast<Base&>(tree) = std::move(loaded);
    return tree;
  }
};

}  // namespace simdtree::btree

#endif  // SIMDTREE_BTREE_BTREE_H_
