// Generic main-memory B+-Tree, parameterized on the in-node key store.
//
// The paper's Seg-Tree "changes the search method inside the nodes from
// commonly binary search to k-ary search" while "the traversal across the
// nodes from the root to the leaves keeps unchanged compared to B+-Trees"
// (Section 3.1). This file is that shared, unchanged structure: branching
// nodes hold separator keys and child references, leaves hold keys and
// values and are chained for range scans. The key-store policy decides how
// a node's keys are stored and searched:
//
//   * btree::PlainKeyStore    — sorted array + scalar search (baseline),
//   * segtree::SegKeyStore    — linearized k-ary order + SIMD search.
//
// KeyStore policy contract (duck-typed, see plain_key_store.h):
//   struct Context;                    // shared per-tree, per-node-kind
//     int64_t key_storage_slots();     // physical Key slots per node
//   explicit KeyStore(const Context&); // standalone: owns its storage
//   KeyStore(const Context&, Key*);    // in-node: external storage of
//                                      // key_storage_slots() Keys
//   int64_t count() / capacity();
//   Key At(int64_t logical_pos);       // logical == sorted position
//   int64_t UpperBound(Key) / LowerBound(Key);
//   void InsertAt(pos, Key) / RemoveAt(pos);
//   void AssignSorted(const Key*, n) / Clear();
//   void MoveSuffixTo(KeyStore& dst, from) / AppendFrom(KeyStore& src);
//   size_t MemoryBytes();
//
// Memory layout (PR 4): every node is one fixed-size block from a
// per-tree mem::NodePool — [node header | keys | values/children] — so a
// node's separators and child references share the node's cache lines,
// and the whole tree lives in a few hugepage-backed slabs instead of one
// heap allocation per node. Inner nodes store children as **32-bit
// compressed references** (mem::NodePool slots, top bit = leaf pool):
// half the pointer width of the heap design, decoded with one load from
// the pool's slab table. Leaf chain pointers stay raw (slabs never
// move). Clear()/teardown release slabs in O(slabs) without visiting
// nodes. SIMDTREE_DISABLE_ARENA=1 falls back to one allocation per
// block — same layout, heap placement — as the A/B baseline.
//
// Child references and values stay in logical (sorted) order regardless
// of the key store's physical layout — the paper's locality property
// that keeps updates node-local.
//
// Semantics: a multimap. Insert allows duplicate keys; Find returns some
// occurrence's value; Erase removes one occurrence. Separator invariant is
// the closed interval: every key in subtree i lies in [sep[i-1], sep[i]].
//
// Thread compatibility: concurrent reads are safe with the plain store;
// any mutation requires external synchronization (the paper's evaluation
// is single-threaded; multi-threading is its future work). On top of
// that baseline, EnableConcurrentReads() arms optimistic lock coupling:
// every node carries an olc::VersionWord, writers version-lock exactly
// the nodes they mutate, and the *Optimistic read paths (FindOptimistic,
// ScanRangeOptimistic, the batch engines in batch_descent.h) descend
// without writing any shared state, validating versions before trusting
// a node and reporting kConflict for the caller to retry. Readers must
// hold an olc::EpochGuard pin; freed nodes are marked dead and their
// memory is quarantined by the pools until all pinned readers advance
// (mem/arena.h). Writers still require external mutual exclusion among
// themselves — the concurrency wrappers' per-shard exclusive lock.

#ifndef SIMDTREE_BTREE_GENERIC_BTREE_H_
#define SIMDTREE_BTREE_GENERIC_BTREE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "btree/batch_descent.h"
#include "core/olc.h"
#include "mem/arena.h"
#include "obs/trace.h"
#include "util/counters.h"
#include "util/cycle_timer.h"

namespace simdtree::btree {

// Aggregate statistics for reporting (EXPERIMENTS.md tables).
struct TreeStats {
  int height = 0;  // levels including leaf level; 0 for an empty tree
  size_t inner_nodes = 0;
  size_t leaf_nodes = 0;
  size_t keys = 0;
  size_t memory_bytes = 0;
  double avg_leaf_fill = 0.0;
  mem::ArenaStats arena;  // merged leaf + inner pool occupancy
};

template <typename Key, typename Value, typename KeyStore>
class GenericBPlusTree {
 public:
  using KeyType = Key;
  using ValueType = Value;
  using Context = typename KeyStore::Context;

  // Compressed node reference: a mem::NodePool slot with the top bit
  // distinguishing the leaf pool from the inner pool.
  using NodeRef = uint32_t;
  static constexpr NodeRef kLeafBit = 0x80000000u;

  class ConstIterator;

  struct Config {
    Context leaf_ctx;
    Context inner_ctx;
    mem::ArenaOptions arena{};
  };

  // Contexts are heap-allocated because nodes keep stable pointers to
  // them; moving the tree must not move the contexts. Pool block sizes
  // derive from the contexts: one block holds the node header, the key
  // store's physical slots, and the values / child-ref array.
  explicit GenericBPlusTree(Config config)
      : leaf_ctx_(std::make_unique<Context>(std::move(config.leaf_ctx))),
        inner_ctx_(std::make_unique<Context>(std::move(config.inner_ctx))),
        leaf_keys_off_(
            mem::internal::AlignUp(sizeof(LeafNode), kKeyStorageAlign)),
        leaf_values_off_(mem::internal::AlignUp(
            leaf_keys_off_ +
                static_cast<size_t>(leaf_ctx_->key_storage_slots()) *
                    sizeof(Key),
            alignof(Value))),
        inner_keys_off_(
            mem::internal::AlignUp(sizeof(InnerNode), kKeyStorageAlign)),
        inner_children_off_(mem::internal::AlignUp(
            inner_keys_off_ +
                static_cast<size_t>(inner_ctx_->key_storage_slots()) *
                    sizeof(Key),
            alignof(NodeRef))),
        leaf_pool_(leaf_values_off_ +
                       static_cast<size_t>(leaf_ctx_->capacity) * sizeof(Value),
                   config.arena.slab_bytes, RefPayloadBits(config.arena)),
        inner_pool_(inner_children_off_ +
                        (static_cast<size_t>(inner_ctx_->capacity) + 1) *
                            sizeof(NodeRef),
                    config.arena.slab_bytes, RefPayloadBits(config.arena)) {
    assert(leaf_ctx_->capacity >= 3);
    assert(inner_ctx_->capacity >= 3);
  }

  ~GenericBPlusTree() { Clear(); }

  GenericBPlusTree(GenericBPlusTree&& other) noexcept
      : leaf_ctx_(std::move(other.leaf_ctx_)),
        inner_ctx_(std::move(other.inner_ctx_)),
        leaf_keys_off_(other.leaf_keys_off_),
        leaf_values_off_(other.leaf_values_off_),
        inner_keys_off_(other.inner_keys_off_),
        inner_children_off_(other.inner_children_off_),
        leaf_pool_(std::move(other.leaf_pool_)),
        inner_pool_(std::move(other.inner_pool_)),
        root_(other.root_),
        first_leaf_(other.first_leaf_),
        size_(other.size_) {
    height_hint_.store(other.height_hint_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    concurrent_ = other.concurrent_;
    other.root_ = nullptr;
    other.first_leaf_ = nullptr;
    other.size_ = 0;
    other.height_hint_.store(0, std::memory_order_relaxed);
    other.concurrent_ = false;
  }
  GenericBPlusTree& operator=(GenericBPlusTree&& other) noexcept {
    if (this != &other) {
      Clear();
      leaf_ctx_ = std::move(other.leaf_ctx_);
      inner_ctx_ = std::move(other.inner_ctx_);
      leaf_keys_off_ = other.leaf_keys_off_;
      leaf_values_off_ = other.leaf_values_off_;
      inner_keys_off_ = other.inner_keys_off_;
      inner_children_off_ = other.inner_children_off_;
      leaf_pool_ = std::move(other.leaf_pool_);
      inner_pool_ = std::move(other.inner_pool_);
      root_ = other.root_;
      first_leaf_ = other.first_leaf_;
      size_ = other.size_;
      height_hint_.store(other.height_hint_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      concurrent_ = other.concurrent_;
      other.root_ = nullptr;
      other.first_leaf_ = nullptr;
      other.size_ = 0;
      other.height_hint_.store(0, std::memory_order_relaxed);
      other.concurrent_ = false;
    }
    return *this;
  }
  GenericBPlusTree(const GenericBPlusTree&) = delete;
  GenericBPlusTree& operator=(const GenericBPlusTree&) = delete;

  // --- modification ------------------------------------------------------

  // Inserts a key/value pair; duplicate keys are allowed and keep
  // insertion order among equals. Throws std::bad_alloc if the 32-bit
  // reference space of a pool is exhausted (≈2^31 nodes per kind at the
  // default ArenaOptions).
  void Insert(Key key, Value value) {
    if (root_ == nullptr) {
      LeafNode* leaf = NewLeaf();
      leaf->keys.InsertAt(0, key);
      leaf->values.insert(0, std::move(value));
      {
        TreeGuard tg(this);
        root_ = leaf;
        first_leaf_ = leaf;
      }
      height_hint_.store(1, std::memory_order_relaxed);
      size_ = 1;
      return;
    }
    if (IsFull(root_)) {
      // The old root stays version-locked for the whole grow: a reader
      // that loads root_ just before the swap must conflict rather than
      // validate against the already-split (half-coverage) old root.
      NodeGuard g(this);
      g.Add(root_);
      InnerNode* new_root = NewInner();
      new_root->children.push_back(root_->self);
      SplitChild(new_root, 0, g);
      TreeGuard tg(this);
      root_ = new_root;
      height_hint_.fetch_add(1, std::memory_order_relaxed);
    }
    InsertNonFull(root_, key, std::move(value));
    ++size_;
  }

  // Removes one occurrence of `key`. Returns true if a pair was removed.
  bool Erase(Key key) {
    if (root_ == nullptr) return false;
    if (!EraseRec(root_, key)) return false;
    --size_;
    ShrinkRoot();
    return true;
  }

  // O(slabs), not O(nodes): both pools release their slabs wholesale.
  // Node destructors are skipped (nodes own nothing — keys and children
  // live inside the block); values are destroyed only when Value has a
  // non-trivial destructor.
  void Clear() {
    if constexpr (!std::is_trivially_destructible_v<Value>) {
      for (LeafNode* l = first_leaf_; l != nullptr; l = l->next) {
        l->values.DestroyAll();
      }
    }
    // Unpublish the structure before resetting the pools: with deferred
    // reclamation armed, readers mid-descent keep validating against
    // the intact pre-Clear slabs (quarantined, not released) and their
    // results linearize before the Clear; new readers see the empty
    // tree immediately.
    {
      TreeGuard tg(this);
      root_ = nullptr;
      first_leaf_ = nullptr;
    }
    height_hint_.store(0, std::memory_order_relaxed);
    leaf_pool_.Reset();
    inner_pool_.Reset();
    size_ = 0;
  }

  // --- lookup -------------------------------------------------------------

  // Value of some occurrence of `key`, or nullopt.
  std::optional<Value> Find(Key key) const {
    const LeafPos pos = FindLeafPos(key);
    if (pos.leaf == nullptr) return std::nullopt;
    return pos.leaf->values[static_cast<size_t>(pos.index)];
  }

  bool Contains(Key key) const { return FindLeafPos(key).leaf != nullptr; }

  // Batched point lookup: out[i] = pointer to the stored value of some
  // occurrence of keys[i], or nullptr when absent. Implemented with group
  // software pipelining (batch_descent.h): `group` queries descend in
  // lockstep one level at a time with each query's next node prefetched,
  // overlapping the per-level cache misses that serialize in Find.
  // Pointers stay valid until the next mutation. A non-null `counters`
  // accumulates nodes_visited identically to summing FindCounted over
  // the batch.
  void FindBatch(const Key* keys, size_t n, const Value** out,
                 int group = kDefaultBatchGroup,
                 SearchCounters* counters = nullptr) const {
    BatchDescent<GenericBPlusTree>::FindBatch(*this, keys, n, out, group,
                                              counters);
  }

  // FindBatch plus a descent trace for the batch's first key (see
  // BatchDescent::FindBatchTraced for the exact contract).
  void FindBatchTraced(const Key* keys, size_t n, const Value** out,
                       int group, SearchCounters* counters,
                       obs::DescentTrace* t) const {
    BatchDescent<GenericBPlusTree>::FindBatchTraced(*this, keys, n, out,
                                                    group, counters, t);
  }

  // Batched lower bound: out[i] = iterator at the first pair with
  // key >= keys[i] (invalid iterator when none), equal to
  // LowerBoundIter(keys[i]) for every i, with the same pipelined descent
  // as FindBatch.
  void LowerBoundBatch(const Key* keys, size_t n, ConstIterator* out,
                       int group = kDefaultBatchGroup,
                       SearchCounters* counters = nullptr) const {
    BatchDescent<GenericBPlusTree>::LowerBoundBatch(*this, keys, n, out,
                                                    group, counters);
  }

  // Grouped (level-wise) batched lookup: sorts the batch once and visits
  // each tree node once per batch, partitioning the sorted query run
  // across a node's children instead of re-searching the node per query
  // (BatchDescent::FindBatchGrouped). Same answers and logical counters
  // as FindBatch; counters->nodes_loaded counts each node once, so
  // nodes_visited / nodes_loaded is the per-batch sharing factor.
  // Preferable over FindBatch once n >= height() * levels-worth of
  // queries — see UseGroupedDescent (core/batch.h).
  void FindBatchGrouped(const Key* keys, size_t n, const Value** out,
                        SearchCounters* counters = nullptr) const {
    BatchDescent<GenericBPlusTree>::FindBatchGrouped(*this, keys, n, out,
                                                     counters);
  }

  // FindBatchGrouped plus a grouped-descent trace: one LevelSpan per
  // tree level recording the level's distinct node-visit count and the
  // batch size sharing it.
  void FindBatchGroupedTraced(const Key* keys, size_t n, const Value** out,
                              SearchCounters* counters,
                              obs::DescentTrace* t) const {
    BatchDescent<GenericBPlusTree>::FindBatchGroupedTraced(*this, keys, n,
                                                           out, counters, t);
  }

  // Grouped batched lower bound: out[i] = LowerBoundIter(keys[i]) with
  // the level-wise schedule of FindBatchGrouped.
  void LowerBoundBatchGrouped(const Key* keys, size_t n, ConstIterator* out,
                              SearchCounters* counters = nullptr) const {
    BatchDescent<GenericBPlusTree>::LowerBoundBatchGrouped(*this, keys, n,
                                                           out, counters);
  }

  // Instrumented lookup: same result as Find, additionally counting the
  // nodes visited on the root-to-leaf descent (paper: one node search per
  // tree level).
  std::optional<Value> FindCounted(Key key, SearchCounters* counters) const {
    if (root_ == nullptr) return std::nullopt;
    const NodeBase* node = root_;
    while (!node->is_leaf) {
      ++counters->nodes_visited;
      const InnerNode* inner = static_cast<const InnerNode*>(node);
      node = DecodeRef(
          inner->children[static_cast<size_t>(inner->keys.UpperBound(key))]);
    }
    ++counters->nodes_visited;
    const LeafNode* leaf = static_cast<const LeafNode*>(node);
    int64_t pos = leaf->keys.UpperBound(key);
    if (pos == 0) {
      leaf = leaf->prev;
      if (leaf == nullptr) return std::nullopt;
      ++counters->nodes_visited;
      pos = leaf->keys.count();
    }
    if (leaf->keys.At(pos - 1) != key) return std::nullopt;
    return leaf->values[static_cast<size_t>(pos - 1)];
  }

  // Traced lookup (obs/trace.h): same result as Find, appending one
  // level span per node searched — compressed node ref, key-store
  // layout, arena slab, in-node comparison counts, cycles — and
  // stamping the backend and found flag. The untraced Find stays free
  // of all bookkeeping; the sampling wrappers (core/synchronized.h,
  // core/sharded.h) route 1-in-N queries here.
  std::optional<Value> FindTraced(Key key, obs::DescentTrace* t) const {
    t->key =
        static_cast<uint64_t>(static_cast<std::make_unsigned_t<Key>>(key));
    std::optional<Value> result;
    if (root_ != nullptr) {
      const NodeBase* node = root_;
      while (!node->is_leaf) {
        const uint64_t start = CycleTimer::Now();
        const InnerNode* inner = static_cast<const InnerNode*>(node);
        SearchCounters cmps;
        node = DecodeRef(inner->children[static_cast<size_t>(
            inner->keys.UpperBoundCounted(key, &cmps))]);
        obs::AppendTraceLevel(t, inner->self, inner->keys.TraceLayoutId(),
                              TraceSlab(inner->self), cmps,
                              CycleTimer::Now() - start);
      }
      const uint64_t start = CycleTimer::Now();
      const LeafNode* searched = static_cast<const LeafNode*>(node);
      SearchCounters cmps;
      int64_t pos = searched->keys.UpperBoundCounted(key, &cmps);
      const LeafNode* leaf = searched;
      if (pos == 0) {  // the occurrence, if any, ends the previous leaf
        leaf = leaf->prev;
        if (leaf != nullptr) pos = leaf->keys.count();
      }
      if (leaf != nullptr && leaf->keys.At(pos - 1) == key) {
        result = leaf->values[static_cast<size_t>(pos - 1)];
      }
      obs::AppendTraceLevel(t, searched->self,
                            searched->keys.TraceLayoutId(),
                            TraceSlab(searched->self), cmps,
                            CycleTimer::Now() - start);
      t->backend = static_cast<uint8_t>(
          searched->keys.TraceLayoutId() == 0
              ? obs::TraceBackend::kBPlusTree
              : obs::TraceBackend::kSegTree);
    }
    t->found = result.has_value() ? 1 : 0;
    return result;
  }

  // Number of stored occurrences of `key`.
  size_t Count(Key key) const {
    size_t n = 0;
    ScanRange(key, key, [&n](Key, const Value&) { ++n; },
              /*hi_inclusive=*/true);
    return n;
  }

  // Applies fn(key, value) to every pair with lo <= key < hi (or <= hi if
  // hi_inclusive), in ascending key order.
  template <typename Fn>
  void ScanRange(Key lo, Key hi, Fn fn, bool hi_inclusive = false) const {
    ConstIterator it = LowerBoundIter(lo);
    for (; it.valid(); ++it) {
      const Key k = it.key();
      if (hi_inclusive ? (k > hi) : (k >= hi)) break;
      fn(k, it.value());
    }
  }

  // --- optimistic (lock-free) reads ---------------------------------------
  //
  // Requires EnableConcurrentReads() to have returned true and the
  // calling thread to hold an olc::EpochGuard pin. Every method is one
  // bounded attempt: kConflict means a concurrent writer invalidated a
  // node on the path and the caller decides whether to retry or fall
  // back to its lock. Only trees with trivially copyable Key/Value
  // qualify (values are copied out of the racy window by value).

  static constexpr bool kOptimisticCapable =
      std::is_trivially_copyable_v<Key> && std::is_trivially_copyable_v<Value>;

  // Bound on the FindOptimistic right-hop chain (racing splits can move
  // a key's position a few leaves right mid-read; more than this many
  // hops means the snapshot is hopelessly stale — restart instead).
  static constexpr int kMaxLeafHops = 8;

  // Arms per-node version words for optimistic readers and switches
  // both pools to epoch-deferred reclamation. Returns false (and leaves
  // the tree lock-read-only) in heap mode (SIMDTREE_DISABLE_ARENA=1,
  // which has no stable slab table) or for non-trivially-copyable
  // payloads. Must be called before the first concurrent reader;
  // idempotent.
  bool EnableConcurrentReads() {
    if constexpr (!kOptimisticCapable) {
      return false;
    } else {
      if (concurrent_) return true;
      auto& em = olc::EpochManager::Global();
      if (!leaf_pool_.EnableDeferredReclamation(&em)) return false;
      if (!inner_pool_.EnableDeferredReclamation(&em)) return false;
      concurrent_ = true;
      return true;
    }
  }
  bool concurrent_reads_enabled() const { return concurrent_; }

  // Height maintained by writers as an atomic hint, safe to read
  // without locks (height() walks the tree and is not). Used by the
  // wrappers' grouped-descent heuristic on the optimistic path.
  int height_hint() const {
    return height_hint_.load(std::memory_order_relaxed);
  }

  // One optimistic descent. On kOk, *out holds the value of some
  // occurrence of `key` (nullopt when absent).
  olc::ReadResult FindOptimistic(Key key, std::optional<Value>* out) const {
    olc::TsanIgnoreReadsScope tsan;
    const uint64_t vt = tree_version_.ReadBegin();
    if (!olc::VersionWord::IsStable(vt)) return olc::ReadResult::kConflict;
    const NodeBase* node = root_;
    if (!tree_version_.Validate(vt)) return olc::ReadResult::kConflict;
    if (node == nullptr) {
      *out = std::nullopt;
      return olc::ReadResult::kOk;
    }
    uint64_t v = node->version.ReadBegin();
    if (!olc::VersionWord::IsStable(v)) return olc::ReadResult::kConflict;
    while (!node->is_leaf) {
      const InnerNode* inner = static_cast<const InnerNode*>(node);
      const int64_t idx = inner->keys.UpperBound(key);
      if (idx < 0 || idx > inner_ctx_->capacity) {
        return olc::ReadResult::kConflict;  // torn count, bail out
      }
      const NodeRef ref = inner->children[static_cast<size_t>(idx)];
      // Validate the parent BEFORE decoding: a validated ref is a real
      // child ref from a consistent snapshot, and the epoch pin keeps
      // whatever it points at mapped even if it is freed underneath us.
      if (!node->version.Validate(v)) return olc::ReadResult::kConflict;
      const NodeBase* child = DecodeRefOptimistic(ref);
      if (child == nullptr) return olc::ReadResult::kConflict;
      const uint64_t vc = child->version.ReadBegin();
      if (!olc::VersionWord::IsStable(vc)) return olc::ReadResult::kConflict;
      node = child;
      v = vc;
    }
    const LeafNode* leaf = static_cast<const LeafNode*>(node);
    int64_t pos = leaf->keys.UpperBound(key);
    if (pos < 0 || pos > leaf_ctx_->capacity) {
      return olc::ReadResult::kConflict;
    }
    if (pos == 0) {
      // The occurrence, if any, ends the previous leaf: hop there under
      // its own version after validating this leaf's prev pointer.
      const LeafNode* prev = leaf->prev;
      if (!leaf->version.Validate(v)) return olc::ReadResult::kConflict;
      if (prev == nullptr) {
        *out = std::nullopt;
        return olc::ReadResult::kOk;
      }
      const uint64_t vp = prev->version.ReadBegin();
      if (!olc::VersionWord::IsStable(vp)) return olc::ReadResult::kConflict;
      leaf = prev;
      v = vp;
      pos = leaf->keys.count();
      if (pos <= 0 || pos > leaf_ctx_->capacity) {
        return olc::ReadResult::kConflict;
      }
    }
    // Right-hop loop. The descent's parent validation and this leaf's
    // ReadBegin are separated in time: a split committing in between
    // moves the upper part of the leaf's range into a new right
    // sibling, so "key greater than everything here" does NOT prove
    // absence — only a leaf whose key range provably brackets the key
    // can answer a miss. Chase `next` (bounded) until the key is
    // bracketed; each hop re-validates the leaf it read the pointer
    // from, so the chain step itself is consistent.
    for (int hop = 0; hop <= kMaxLeafHops; ++hop) {
      if (pos > 0) {
        const Key found = leaf->keys.At(pos - 1);
        Value value{};
        const bool hit = found == key;
        if (hit) value = leaf->values[static_cast<size_t>(pos - 1)];
        if (hit) {
          if (!leaf->version.Validate(v)) return olc::ReadResult::kConflict;
          *out = std::optional<Value>(std::move(value));
          return olc::ReadResult::kOk;
        }
      } else {
        // Hopped into a leaf whose keys are all greater: genuine miss.
        if (!leaf->version.Validate(v)) return olc::ReadResult::kConflict;
        *out = std::nullopt;
        return olc::ReadResult::kOk;
      }
      const int64_t count = leaf->keys.count();
      if (count < 0 || count > leaf_ctx_->capacity) {
        return olc::ReadResult::kConflict;
      }
      if (pos < count) {
        // Bracketed: a key strictly greater exists in this same leaf.
        if (!leaf->version.Validate(v)) return olc::ReadResult::kConflict;
        *out = std::nullopt;
        return olc::ReadResult::kOk;
      }
      const LeafNode* next = leaf->next;
      if (!leaf->version.Validate(v)) return olc::ReadResult::kConflict;
      if (next == nullptr) {
        *out = std::nullopt;
        return olc::ReadResult::kOk;
      }
      const uint64_t vn = next->version.ReadBegin();
      if (!olc::VersionWord::IsStable(vn)) return olc::ReadResult::kConflict;
      leaf = next;
      v = vn;
      pos = leaf->keys.UpperBound(key);
      if (pos < 0 || pos > leaf_ctx_->capacity) {
        return olc::ReadResult::kConflict;
      }
    }
    return olc::ReadResult::kConflict;  // hop bound exceeded
  }

  // Optimistic pipelined / grouped batch lookups (batch_descent.h).
  // out[i] is written for every resolved query; conflicted query
  // indices are appended to *failed with out[i] untouched.
  void FindBatchOptimistic(const Key* keys, size_t n,
                           std::optional<Value>* out,
                           std::vector<uint32_t>* failed) const {
    BatchDescent<GenericBPlusTree>::FindBatchOptimistic(*this, keys, n, out,
                                                        failed);
  }
  void FindBatchGroupedOptimistic(const Key* keys, size_t n,
                                  std::optional<Value>* out,
                                  std::vector<uint32_t>* failed) const {
    BatchDescent<GenericBPlusTree>::FindBatchGroupedOptimistic(*this, keys, n,
                                                               out, failed);
  }

  // One optimistic attempt at a range scan, delivering pairs through
  // `sink(key, value)` leaf-by-leaf: each leaf's content is buffered,
  // the leaf version validated, and only then delivered — so the sink
  // never observes torn data, and each leaf's pairs form a consistent
  // snapshot (cross-leaf atomicity is NOT promised under concurrent
  // writers; the locked ScanRange keeps the shard-stable contract).
  //
  // Resume protocol: *resume_key / *resume_skip describe the delivery
  // floor — only keys > *resume_key are delivered, plus occurrences of
  // *resume_key beyond the first *resume_skip. Both are updated as
  // leaves commit, so after kConflict the caller retries (or falls back
  // to the locked scan) with the same pointers and no pair is delivered
  // twice. Initialize with *resume_key = lo, *resume_skip = 0. The
  // floor also enforces monotone (non-decreasing) delivery across the
  // mixed-snapshot leaf hops.
  template <typename Sink>
  olc::ReadResult ScanRangeOptimistic(Key hi, bool hi_inclusive,
                                      Key* resume_key, uint32_t* resume_skip,
                                      Sink sink) const {
    olc::TsanIgnoreReadsScope tsan;
    Key floor = *resume_key;
    uint32_t floor_quota = *resume_skip;
    uint32_t floor_seen = 0;
    // Descend to the leaf holding the lower bound of the floor key.
    const uint64_t vt = tree_version_.ReadBegin();
    if (!olc::VersionWord::IsStable(vt)) return olc::ReadResult::kConflict;
    const NodeBase* node = root_;
    if (!tree_version_.Validate(vt)) return olc::ReadResult::kConflict;
    if (node == nullptr) return olc::ReadResult::kOk;
    uint64_t v = node->version.ReadBegin();
    if (!olc::VersionWord::IsStable(v)) return olc::ReadResult::kConflict;
    while (!node->is_leaf) {
      const InnerNode* inner = static_cast<const InnerNode*>(node);
      const int64_t idx = inner->keys.LowerBound(floor);
      if (idx < 0 || idx > inner_ctx_->capacity) {
        return olc::ReadResult::kConflict;
      }
      const NodeRef ref = inner->children[static_cast<size_t>(idx)];
      if (!node->version.Validate(v)) return olc::ReadResult::kConflict;
      const NodeBase* child = DecodeRefOptimistic(ref);
      if (child == nullptr) return olc::ReadResult::kConflict;
      const uint64_t vc = child->version.ReadBegin();
      if (!olc::VersionWord::IsStable(vc)) return olc::ReadResult::kConflict;
      node = child;
      v = vc;
    }
    const LeafNode* leaf = static_cast<const LeafNode*>(node);
    std::vector<std::pair<Key, Value>> buffered;
    for (;;) {
      buffered.clear();
      const int64_t count = leaf->keys.count();
      if (count < 0 || count > leaf_ctx_->capacity) {
        return olc::ReadResult::kConflict;
      }
      int64_t start = leaf->keys.LowerBound(floor);
      if (start < 0) start = 0;
      if (start > count) start = count;
      bool past_hi = false;
      for (int64_t i = start; i < count; ++i) {
        const Key k = leaf->keys.At(i);
        if (hi_inclusive ? (k > hi) : (k >= hi)) {
          past_hi = true;
          break;
        }
        buffered.emplace_back(k, leaf->values[static_cast<size_t>(i)]);
      }
      const LeafNode* next = leaf->next;
      if (!leaf->version.Validate(v)) return olc::ReadResult::kConflict;
      // Committed: apply the floor filter and deliver.
      for (const auto& [k, val] : buffered) {
        if (k < floor) continue;
        if (k == floor) {
          ++floor_seen;
          if (floor_seen <= floor_quota) continue;
        } else {
          floor = k;
          floor_quota = 0;
          floor_seen = 1;
        }
        sink(k, val);
        *resume_key = floor;
        *resume_skip = floor_seen;
      }
      if (past_hi || next == nullptr) return olc::ReadResult::kOk;
      v = next->version.ReadBegin();
      if (!olc::VersionWord::IsStable(v)) return olc::ReadResult::kConflict;
      leaf = next;
    }
  }

  // --- iteration ----------------------------------------------------------

  class ConstIterator {
   public:
    ConstIterator() = default;
    bool valid() const { return leaf_ != nullptr; }
    Key key() const { return leaf_->keys.At(index_); }
    const Value& value() const {
      return leaf_->values[static_cast<size_t>(index_)];
    }
    ConstIterator& operator++() {
      if (++index_ >= leaf_->keys.count()) {
        leaf_ = leaf_->next;
        index_ = 0;
      }
      return *this;
    }
    bool operator==(const ConstIterator&) const = default;

   private:
    friend class GenericBPlusTree;
    template <typename Tree>
    friend class BatchDescent;
    ConstIterator(const typename GenericBPlusTree::LeafNode* leaf,
                  int64_t index)
        : leaf_(leaf), index_(index) {}
    const typename GenericBPlusTree::LeafNode* leaf_ = nullptr;
    int64_t index_ = 0;
  };

  ConstIterator begin() const {
    return (first_leaf_ != nullptr && first_leaf_->keys.count() > 0)
               ? ConstIterator(first_leaf_, 0)
               : ConstIterator();
  }

  // Iterator at the first pair with key >= lo.
  ConstIterator LowerBoundIter(Key lo) const {
    if (root_ == nullptr) return ConstIterator();
    const NodeBase* node = root_;
    while (!node->is_leaf) {
      const InnerNode* inner = static_cast<const InnerNode*>(node);
      const int64_t idx = inner->keys.LowerBound(lo);
      node = DecodeRef(inner->children[static_cast<size_t>(idx)]);
    }
    const LeafNode* leaf = static_cast<const LeafNode*>(node);
    int64_t pos = leaf->keys.LowerBound(lo);
    if (pos >= leaf->keys.count()) {  // answer starts in the next leaf
      leaf = leaf->next;
      pos = 0;
    }
    return leaf != nullptr ? ConstIterator(leaf, pos) : ConstIterator();
  }

  // --- introspection ------------------------------------------------------

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  int height() const {
    int h = 0;
    for (const NodeBase* n = root_; n != nullptr;
         n = n->is_leaf
                 ? nullptr
                 : DecodeRef(static_cast<const InnerNode*>(n)->children[0])) {
      ++h;
    }
    return h;
  }

  TreeStats Stats() const {
    TreeStats s;
    s.height = height();
    s.keys = size_;
    s.memory_bytes = sizeof(*this);
    double fill_sum = 0.0;
    ForEachNode([&](const NodeBase* node) {
      if (node->is_leaf) {
        const LeafNode* leaf = static_cast<const LeafNode*>(node);
        ++s.leaf_nodes;
        s.memory_bytes += leaf_pool_.block_bytes();
        fill_sum += static_cast<double>(leaf->keys.count()) /
                    static_cast<double>(leaf->keys.capacity());
      } else {
        ++s.inner_nodes;
        s.memory_bytes += inner_pool_.block_bytes();
      }
    });
    s.avg_leaf_fill =
        s.leaf_nodes > 0 ? fill_sum / static_cast<double>(s.leaf_nodes) : 0.0;
    s.arena = MemStats();
    return s;
  }

  size_t MemoryBytes() const { return Stats().memory_bytes; }

  // Merged occupancy of the leaf and inner pools; O(slabs).
  mem::ArenaStats MemStats() const {
    mem::ArenaStats s = leaf_pool_.Stats();
    s.Merge(inner_pool_.Stats());
    return s;
  }

  // Checks every structural invariant; returns false (and stops) on the
  // first violation. Used heavily by the randomized model tests.
  bool Validate() const {
    if (root_ == nullptr) return size_ == 0 && first_leaf_ == nullptr;
    int leaf_depth = -1;
    size_t counted = 0;
    const LeafNode* prev_leaf = nullptr;
    bool ok = ValidateRec(root_, /*depth=*/0, /*is_root=*/true, &leaf_depth,
                          &counted, &prev_leaf, nullptr, nullptr);
    ok = ok && counted == size_;
    ok = ok && (prev_leaf == nullptr || prev_leaf->next == nullptr);
    // The leaf chain must start at first_leaf_ and be globally sorted.
    const LeafNode* leftmost = LeftmostLeaf();
    ok = ok && leftmost == first_leaf_;
    size_t chained = 0;
    bool have_prev_key = false;
    Key prev_key{};
    const LeafNode* expected_prev = nullptr;
    for (const LeafNode* l = first_leaf_; l != nullptr; l = l->next) {
      ok = ok && l->prev == expected_prev;
      expected_prev = l;
      for (int64_t i = 0; i < l->keys.count(); ++i) {
        const Key k = l->keys.At(i);
        if (have_prev_key && prev_key > k) ok = false;
        prev_key = k;
        have_prev_key = true;
        ++chained;
      }
    }
    ok = ok && chained == size_;
    return ok;
  }

  // Writes an indented structural dump (separators and leaf keys) to
  // `out`; intended for debugging and small trees.
  void DumpStructure(FILE* out) const {
    if (root_ == nullptr) {
      std::fprintf(out, "(empty)\n");
      return;
    }
    DumpRec(root_, 0, out);
  }

  // --- bulk load ----------------------------------------------------------

  // Builds a tree from parallel sorted key/value arrays with the given
  // leaf/inner fill fraction (1.0 = completely filled nodes, the paper's
  // evaluation setting). Keys must be ascending (duplicates allowed).
  static GenericBPlusTree BulkLoad(Config config, const Key* keys,
                                   const Value* values, size_t n,
                                   double fill = 1.0) {
    GenericBPlusTree tree(std::move(config));
    tree.BulkLoadInto(keys, values, n, fill);
    return tree;
  }

 private:
  struct NodeBase {
    NodeBase(bool leaf, NodeRef self_ref) : self(self_ref), is_leaf(leaf) {}
    const NodeRef self;  // this node's compressed reference
    const bool is_leaf;
    // Optimistic-lock-coupling version word (core/olc.h). Placement-new
    // re-initializes it to stable on block reuse — safe because deferred
    // reclamation guarantees no reader still holds a ref by then.
    olc::VersionWord version;
  };

  // Fixed-capacity array of child references living inside the node
  // block (storage follows the key slots; capacity+1 entries). Explicit
  // size because the count+1 invariant is checked by Validate.
  class ChildArray {
   public:
    explicit ChildArray(NodeRef* storage) : data_(storage) {}
    size_t size() const { return static_cast<size_t>(size_); }
    const NodeRef* data() const { return data_; }
    NodeRef operator[](size_t i) const { return data_[i]; }
    NodeRef front() const { return data_[0]; }
    NodeRef back() const { return data_[size_ - 1]; }
    void push_back(NodeRef r) { data_[size_++] = r; }
    void pop_back() { --size_; }
    void insert(int64_t pos, NodeRef r) {
      std::memmove(data_ + pos + 1, data_ + pos,
                   static_cast<size_t>(size_ - pos) * sizeof(NodeRef));
      data_[pos] = r;
      ++size_;
    }
    void erase(int64_t pos) {
      std::memmove(data_ + pos, data_ + pos + 1,
                   static_cast<size_t>(size_ - pos - 1) * sizeof(NodeRef));
      --size_;
    }
    // this := src[from..); used by inner-node split.
    void AssignTail(const ChildArray& src, int64_t from) {
      size_ = static_cast<int32_t>(src.size_ - from);
      std::memcpy(data_, src.data_ + from,
                  static_cast<size_t>(size_) * sizeof(NodeRef));
    }
    void AppendAll(const ChildArray& src) {
      std::memcpy(data_ + size_, src.data_,
                  static_cast<size_t>(src.size_) * sizeof(NodeRef));
      size_ += src.size_;
    }
    void truncate(int64_t n) { size_ = static_cast<int32_t>(n); }

   private:
    NodeRef* data_;
    int32_t size_ = 0;
  };

  // Fixed-capacity value array living inside the leaf block (storage
  // follows the key slots). Elements in [0, size) are constructed.
  class ValueArray {
   public:
    explicit ValueArray(Value* storage) : data_(storage) {}
    size_t size() const { return static_cast<size_t>(size_); }
    Value& operator[](size_t i) { return data_[i]; }
    const Value& operator[](size_t i) const { return data_[i]; }
    Value& front() { return data_[0]; }
    Value& back() { return data_[size_ - 1]; }
    void push_back(Value v) { new (data_ + size_++) Value(std::move(v)); }
    void pop_back() { data_[--size_].~Value(); }
    void insert(int64_t pos, Value v) {
      if (pos == size_) {
        new (data_ + size_) Value(std::move(v));
      } else {
        new (data_ + size_) Value(std::move(data_[size_ - 1]));
        for (int64_t i = size_ - 1; i > pos; --i) {
          data_[i] = std::move(data_[i - 1]);
        }
        data_[pos] = std::move(v);
      }
      ++size_;
    }
    void erase(int64_t pos) {
      for (int64_t i = pos; i + 1 < size_; ++i) {
        data_[i] = std::move(data_[i + 1]);
      }
      data_[--size_].~Value();
    }
    // Moves src[from..) onto the end of this array and truncates src;
    // used by leaf split (from = mid) and merge (from = 0).
    void MoveTailFrom(ValueArray& src, int64_t from) {
      for (int64_t i = from; i < src.size_; ++i) {
        new (data_ + size_++) Value(std::move(src.data_[i]));
        src.data_[i].~Value();
      }
      src.size_ = from;
    }
    void AssignCopy(const Value* src, int64_t n) {
      assert(size_ == 0);
      for (int64_t i = 0; i < n; ++i) new (data_ + i) Value(src[i]);
      size_ = n;
    }
    void DestroyAll() {
      for (int64_t i = 0; i < size_; ++i) data_[i].~Value();
      size_ = 0;
    }

   private:
    Value* data_;
    int64_t size_ = 0;
  };

  struct InnerNode : NodeBase {
    InnerNode(const Context& ctx, NodeRef self_ref, Key* key_storage,
              NodeRef* child_storage)
        : NodeBase(false, self_ref),
          keys(ctx, key_storage),
          children(child_storage) {}
    KeyStore keys;
    ChildArray children;  // count() + 1 entries, logical order
  };

  struct LeafNode : NodeBase {
    LeafNode(const Context& ctx, NodeRef self_ref, Key* key_storage,
             Value* value_storage)
        : NodeBase(true, self_ref),
          keys(ctx, key_storage),
          values(value_storage) {}
    KeyStore keys;
    ValueArray values;  // parallel to logical key order
    LeafNode* next = nullptr;
    LeafNode* prev = nullptr;
  };

  friend class ConstIterator;
  template <typename Tree>
  friend class BatchDescent;

  // --- writer-side version locking ---------------------------------------

  // Version-locks the (at most 4: parent, child, one sibling, one leaf
  // chain neighbor) nodes a structural mutation touches, unlocking them
  // all on scope exit. A no-op until EnableConcurrentReads(): the
  // single-threaded paths pay one branch per Add. Add is idempotent so
  // helper layers can re-Add a node their caller already locked.
  class NodeGuard {
   public:
    explicit NodeGuard(const GenericBPlusTree* tree) : on_(tree->concurrent_) {}
    ~NodeGuard() {
      for (int i = 0; i < n_; ++i) nodes_[i]->version.Unlock();
    }
    void Add(NodeBase* node) {
      if (!on_ || node == nullptr) return;
      for (int i = 0; i < n_; ++i) {
        if (nodes_[i] == node) return;
      }
      assert(n_ < kMaxNodes);
      node->version.Lock();
      nodes_[n_++] = node;
    }
    // Forgets a node about to be freed: it must stay odd (MarkDead in
    // FreeLeaf/FreeInner), so the destructor must not flip it back to
    // stable.
    void Dismiss(NodeBase* node) {
      for (int i = 0; i < n_; ++i) {
        if (nodes_[i] == node) {
          nodes_[i] = nodes_[--n_];
          return;
        }
      }
    }
    NodeGuard(const NodeGuard&) = delete;
    NodeGuard& operator=(const NodeGuard&) = delete;

   private:
    static constexpr int kMaxNodes = 4;
    NodeBase* nodes_[kMaxNodes] = {};
    int n_ = 0;
    bool on_;
  };

  // Version-locks the tree-level fields (root_, first_leaf_) for the
  // duration of a root swap / publication. Readers validate
  // tree_version_ around their root_ load.
  class TreeGuard {
   public:
    explicit TreeGuard(GenericBPlusTree* tree)
        : tree_(tree->concurrent_ ? tree : nullptr) {
      if (tree_ != nullptr) tree_->tree_version_.Lock();
    }
    ~TreeGuard() {
      if (tree_ != nullptr) tree_->tree_version_.Unlock();
    }
    TreeGuard(const TreeGuard&) = delete;
    TreeGuard& operator=(const TreeGuard&) = delete;

   private:
    GenericBPlusTree* tree_;
  };

  // --- node helpers -------------------------------------------------------

  // Key slots are 16-byte aligned inside the block so the SIMD key
  // stores keep the load alignment the heap allocator used to provide.
  static constexpr size_t kKeyStorageAlign =
      alignof(Key) > 16 ? alignof(Key) : 16;
  static_assert(alignof(Value) <= mem::kCacheLine);
  static_assert(alignof(Key) <= mem::kCacheLine);

  // Pools get at most 31 payload bits: the 32nd bit of a NodeRef is the
  // leaf/inner tag.
  static uint32_t RefPayloadBits(const mem::ArenaOptions& opts) {
    return std::min<uint32_t>(opts.max_slot_bits, 31);
  }

  // Slab index of a node's block, clamped into the trace schema's byte
  // (0xff stays the "unknown" sentinel).
  uint8_t TraceSlab(NodeRef ref) const {
    const size_t slab = (ref & kLeafBit) != 0
                            ? leaf_pool_.SlabOfSlot(ref & ~kLeafBit)
                            : inner_pool_.SlabOfSlot(ref);
    return slab >= 0xff ? 0xfe : static_cast<uint8_t>(slab);
  }

  NodeBase* DecodeRef(NodeRef ref) const {
    return (ref & kLeafBit) != 0
               ? static_cast<NodeBase*>(static_cast<LeafNode*>(
                     leaf_pool_.Decode(ref & ~kLeafBit)))
               : static_cast<NodeBase*>(
                     static_cast<InnerNode*>(inner_pool_.Decode(ref)));
  }

  // Bounds-checked decode for optimistic readers: `ref` may be garbage
  // read off a concurrently-mutated node, so out-of-range slots return
  // nullptr (= conflict) instead of faulting. Only valid while the
  // caller holds an epoch pin.
  const NodeBase* DecodeRefOptimistic(NodeRef ref) const {
    if ((ref & kLeafBit) != 0) {
      return static_cast<const LeafNode*>(
          leaf_pool_.DecodeOptimistic(ref & ~kLeafBit));
    }
    return static_cast<const InnerNode*>(inner_pool_.DecodeOptimistic(ref));
  }

  LeafNode* NewLeaf() {
    uint32_t slot = 0;
    void* block = leaf_pool_.Alloc(&slot);
    if (block == nullptr) throw std::bad_alloc();  // ref space exhausted
    char* base = static_cast<char*>(block);
    return new (block)
        LeafNode(*leaf_ctx_, slot | kLeafBit,
                 reinterpret_cast<Key*>(base + leaf_keys_off_),
                 reinterpret_cast<Value*>(base + leaf_values_off_));
  }
  InnerNode* NewInner() {
    uint32_t slot = 0;
    void* block = inner_pool_.Alloc(&slot);
    if (block == nullptr) throw std::bad_alloc();  // ref space exhausted
    char* base = static_cast<char*>(block);
    return new (block)
        InnerNode(*inner_ctx_, slot,
                  reinterpret_cast<Key*>(base + inner_keys_off_),
                  reinterpret_cast<NodeRef*>(base + inner_children_off_));
  }

  void FreeLeaf(LeafNode* leaf) {
    leaf->version.MarkDead();  // permanently odd: late readers conflict
    const NodeRef ref = leaf->self;
    leaf->values.DestroyAll();
    leaf->~LeafNode();
    leaf_pool_.Free(leaf, ref & ~kLeafBit);
  }
  void FreeInner(InnerNode* inner) {
    inner->version.MarkDead();
    const NodeRef ref = inner->self;
    inner->~InnerNode();
    inner_pool_.Free(inner, ref);
  }

  int64_t CapacityOf(const NodeBase* n) const {
    return n->is_leaf ? leaf_ctx_->capacity : inner_ctx_->capacity;
  }
  int64_t CountOf(const NodeBase* n) const {
    return n->is_leaf ? static_cast<const LeafNode*>(n)->keys.count()
                      : static_cast<const InnerNode*>(n)->keys.count();
  }
  bool IsFull(const NodeBase* n) const {
    return CountOf(n) == CapacityOf(n);
  }
  // Minimum keys of a non-root node. (cap-1)/2 rather than cap/2 because
  // splitting a full even-capacity branching node promotes the middle key
  // and leaves ceil/floor halves of cap-1 keys.
  int64_t MinKeys(const NodeBase* n) const { return (CapacityOf(n) - 1) / 2; }

  const LeafNode* LeftmostLeaf() const {
    const NodeBase* n = root_;
    if (n == nullptr) return nullptr;
    while (!n->is_leaf) {
      n = DecodeRef(static_cast<const InnerNode*>(n)->children[0]);
    }
    return static_cast<const LeafNode*>(n);
  }

  // --- insertion ----------------------------------------------------------

  // Splits the full child at `idx` of `parent` (which has spare room).
  // Version-locks the parent, the child, and — for a leaf split — the
  // old chain successor whose prev pointer is rewired; the freshly
  // allocated right node needs no lock (unreachable until the parent
  // publishes it on unlock). The guard is caller-scoped so Insert's
  // root grow can hold the old root locked across the root_ swap too.
  void SplitChild(InnerNode* parent, int64_t idx, NodeGuard& g) {
    NodeBase* child = DecodeRef(parent->children[static_cast<size_t>(idx)]);
    g.Add(parent);
    g.Add(child);
    Key separator;
    NodeBase* right_node = nullptr;
    if (child->is_leaf) {
      LeafNode* left = static_cast<LeafNode*>(child);
      g.Add(left->next);
      LeafNode* right = NewLeaf();
      const int64_t mid = left->keys.count() / 2;
      left->keys.MoveSuffixTo(right->keys, mid);
      right->values.MoveTailFrom(left->values, mid);
      right->next = left->next;
      if (right->next != nullptr) right->next->prev = right;
      right->prev = left;
      left->next = right;
      separator = right->keys.At(0);  // first key of the right subtree
      right_node = right;
    } else {
      InnerNode* left = static_cast<InnerNode*>(child);
      InnerNode* right = NewInner();
      const int64_t mid = left->keys.count() / 2;
      // Promote the middle separator; keys right of it move to the new
      // node together with their child references.
      separator = left->keys.At(mid);
      left->keys.MoveSuffixTo(right->keys, mid + 1);
      right->children.AssignTail(left->children, mid + 1);
      left->children.truncate(mid + 1);
      left->keys.RemoveAt(mid);
      right_node = right;
    }
    parent->keys.InsertAt(idx, separator);
    parent->children.insert(idx + 1, right_node->self);
  }

  void InsertNonFull(NodeBase* node, Key key, Value value) {
    while (!node->is_leaf) {
      InnerNode* inner = static_cast<InnerNode*>(node);
      int64_t idx = inner->keys.UpperBound(key);
      NodeBase* child = DecodeRef(inner->children[static_cast<size_t>(idx)]);
      if (IsFull(child)) {
        {
          NodeGuard g(this);
          SplitChild(inner, idx, g);
        }
        idx = inner->keys.UpperBound(key);
        child = DecodeRef(inner->children[static_cast<size_t>(idx)]);
      }
      node = child;
    }
    LeafNode* leaf = static_cast<LeafNode*>(node);
    const int64_t pos = leaf->keys.UpperBound(key);
    NodeGuard g(this);
    g.Add(leaf);
    leaf->keys.InsertAt(pos, key);
    leaf->values.insert(pos, std::move(value));
  }

  // --- lookup helpers -----------------------------------------------------

  struct LeafPos {
    const LeafNode* leaf = nullptr;
    int64_t index = 0;
  };

  // Locates one occurrence of `key` via upper-bound descent (the paper's
  // navigation): the descent lands in the leaf holding the global upper
  // bound of `key`; the occurrence, if any, is the position before it —
  // possibly the last key of the previous leaf.
  LeafPos FindLeafPos(Key key) const {
    if (root_ == nullptr) return {};
    const NodeBase* node = root_;
    while (!node->is_leaf) {
      const InnerNode* inner = static_cast<const InnerNode*>(node);
      node = DecodeRef(
          inner->children[static_cast<size_t>(inner->keys.UpperBound(key))]);
    }
    const LeafNode* leaf = static_cast<const LeafNode*>(node);
    int64_t pos = leaf->keys.UpperBound(key);
    if (pos == 0) {
      leaf = leaf->prev;
      if (leaf == nullptr) return {};
      pos = leaf->keys.count();
    }
    if (leaf->keys.At(pos - 1) != key) return {};
    return {leaf, pos - 1};
  }

  // --- erase --------------------------------------------------------------

  bool EraseRec(NodeBase* node, Key key) {
    if (node->is_leaf) {
      LeafNode* leaf = static_cast<LeafNode*>(node);
      const int64_t pos = leaf->keys.LowerBound(key);
      if (pos >= leaf->keys.count() || leaf->keys.At(pos) != key) {
        return false;  // failed probe: nothing mutated, no lock needed
      }
      NodeGuard g(this);
      g.Add(leaf);
      leaf->keys.RemoveAt(pos);
      leaf->values.erase(pos);
      return true;
    }
    InnerNode* inner = static_cast<InnerNode*>(node);
    // With duplicate keys, `key` may live in any child between the
    // lower-bound and upper-bound separators (a run of separators equal to
    // `key`); probe them left to right. Failed probes modify nothing.
    const int64_t lo = inner->keys.LowerBound(key);
    const int64_t hi = inner->keys.UpperBound(key);
    for (int64_t idx = lo; idx <= hi; ++idx) {
      NodeBase* child = DecodeRef(inner->children[static_cast<size_t>(idx)]);
      if (EraseRec(child, key)) {
        if (CountOf(child) < MinKeys(child)) RepairChild(inner, idx);
        return true;
      }
    }
    return false;
  }

  // Restores the minimum occupancy of children[idx] by borrowing from a
  // sibling or merging with one. The parent may underflow as a result;
  // its own parent repairs it on the unwind.
  void RepairChild(InnerNode* parent, int64_t idx) {
    NodeBase* child = DecodeRef(parent->children[static_cast<size_t>(idx)]);
    const int64_t n_children = static_cast<int64_t>(parent->children.size());
    NodeBase* left_sib =
        idx > 0 ? DecodeRef(parent->children[static_cast<size_t>(idx - 1)])
                : nullptr;
    NodeBase* right_sib =
        idx + 1 < n_children
            ? DecodeRef(parent->children[static_cast<size_t>(idx + 1)])
            : nullptr;
    NodeGuard g(this);
    g.Add(parent);
    g.Add(child);
    if (left_sib != nullptr && CountOf(left_sib) > MinKeys(left_sib)) {
      g.Add(left_sib);
      BorrowFromLeft(parent, idx, left_sib, child);
    } else if (right_sib != nullptr &&
               CountOf(right_sib) > MinKeys(right_sib)) {
      g.Add(right_sib);
      BorrowFromRight(parent, idx, child, right_sib);
    } else if (left_sib != nullptr) {
      g.Add(left_sib);
      MergeChildren(parent, idx - 1, g);
    } else {
      assert(right_sib != nullptr);
      g.Add(right_sib);
      MergeChildren(parent, idx, g);
    }
  }

  void BorrowFromLeft(InnerNode* parent, int64_t idx, NodeBase* left_base,
                      NodeBase* child_base) {
    if (child_base->is_leaf) {
      LeafNode* left = static_cast<LeafNode*>(left_base);
      LeafNode* child = static_cast<LeafNode*>(child_base);
      const int64_t last = left->keys.count() - 1;
      const Key moved = left->keys.At(last);
      child->keys.InsertAt(0, moved);
      child->values.insert(0, std::move(left->values.back()));
      left->values.pop_back();
      left->keys.RemoveAt(last);
      // Separator between left and child = first key of child's subtree.
      parent->keys.RemoveAt(idx - 1);
      parent->keys.InsertAt(idx - 1, moved);
    } else {
      InnerNode* left = static_cast<InnerNode*>(left_base);
      InnerNode* child = static_cast<InnerNode*>(child_base);
      const int64_t last = left->keys.count() - 1;
      // Rotate through the parent: parent separator drops into child,
      // left's last separator replaces it.
      const Key down = parent->keys.At(idx - 1);
      const Key up = left->keys.At(last);
      child->keys.InsertAt(0, down);
      child->children.insert(0, left->children.back());
      left->children.pop_back();
      left->keys.RemoveAt(last);
      parent->keys.RemoveAt(idx - 1);
      parent->keys.InsertAt(idx - 1, up);
    }
  }

  void BorrowFromRight(InnerNode* parent, int64_t idx, NodeBase* child_base,
                       NodeBase* right_base) {
    if (child_base->is_leaf) {
      LeafNode* child = static_cast<LeafNode*>(child_base);
      LeafNode* right = static_cast<LeafNode*>(right_base);
      const Key moved = right->keys.At(0);
      child->keys.InsertAt(child->keys.count(), moved);
      child->values.push_back(std::move(right->values.front()));
      right->values.erase(0);
      right->keys.RemoveAt(0);
      parent->keys.RemoveAt(idx);
      parent->keys.InsertAt(idx, right->keys.At(0));
    } else {
      InnerNode* child = static_cast<InnerNode*>(child_base);
      InnerNode* right = static_cast<InnerNode*>(right_base);
      const Key down = parent->keys.At(idx);
      const Key up = right->keys.At(0);
      child->keys.InsertAt(child->keys.count(), down);
      child->children.push_back(right->children.front());
      right->children.erase(0);
      right->keys.RemoveAt(0);
      parent->keys.RemoveAt(idx);
      parent->keys.InsertAt(idx, up);
    }
  }

  // Merges children[idx] and children[idx+1]; the right node is freed
  // back to its pool (deferred via epoch quarantine under concurrent
  // reads, straight to the free list otherwise). The caller's guard
  // already holds parent and both merge partners; the right node is
  // Dismissed before the free so MarkDead leaves it permanently odd
  // instead of the guard flipping it back to stable.
  void MergeChildren(InnerNode* parent, int64_t idx, NodeGuard& g) {
    NodeBase* left_base = DecodeRef(parent->children[static_cast<size_t>(idx)]);
    NodeBase* right_base =
        DecodeRef(parent->children[static_cast<size_t>(idx + 1)]);
    g.Add(left_base);
    g.Add(right_base);
    if (left_base->is_leaf) {
      LeafNode* left = static_cast<LeafNode*>(left_base);
      LeafNode* right = static_cast<LeafNode*>(right_base);
      g.Add(right->next);  // its prev pointer is rewired below
      left->keys.AppendFrom(right->keys);
      left->values.MoveTailFrom(right->values, 0);
      left->next = right->next;
      if (left->next != nullptr) left->next->prev = left;
      g.Dismiss(right);
      FreeLeaf(right);
    } else {
      InnerNode* left = static_cast<InnerNode*>(left_base);
      InnerNode* right = static_cast<InnerNode*>(right_base);
      // The parent separator drops down between the merged key runs.
      left->keys.InsertAt(left->keys.count(), parent->keys.At(idx));
      left->keys.AppendFrom(right->keys);
      left->children.AppendAll(right->children);
      g.Dismiss(right);
      FreeInner(right);
    }
    parent->keys.RemoveAt(idx);
    parent->children.erase(idx + 1);
  }

  void ShrinkRoot() {
    while (root_ != nullptr && !root_->is_leaf && CountOf(root_) == 0) {
      InnerNode* old_root = static_cast<InnerNode*>(root_);
      NodeBase* new_root = DecodeRef(old_root->children[0]);
      {
        NodeGuard g(this);
        g.Add(old_root);
        {
          TreeGuard tg(this);
          root_ = new_root;
        }
        g.Dismiss(old_root);
        FreeInner(old_root);
      }
      height_hint_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (root_ != nullptr && root_->is_leaf && CountOf(root_) == 0) {
      LeafNode* leaf = static_cast<LeafNode*>(root_);
      {
        NodeGuard g(this);
        g.Add(leaf);
        {
          TreeGuard tg(this);
          root_ = nullptr;
          first_leaf_ = nullptr;
        }
        g.Dismiss(leaf);
        FreeLeaf(leaf);
      }
      height_hint_.store(0, std::memory_order_relaxed);
    }
  }

  // --- validation ---------------------------------------------------------

  bool ValidateRec(const NodeBase* node, int depth, bool is_root,
                   int* leaf_depth, size_t* counted,
                   const LeafNode** prev_leaf, const Key* lo,
                   const Key* hi) const {
    const int64_t count = CountOf(node);
    if (!is_root && count < MinKeys(node)) return false;
    if (count > CapacityOf(node)) return false;
    if (is_root && !node->is_leaf && count < 1) return false;
    // Keys ascending and within the inherited closed bounds.
    for (int64_t i = 0; i < count; ++i) {
      const Key k = node->is_leaf
                        ? static_cast<const LeafNode*>(node)->keys.At(i)
                        : static_cast<const InnerNode*>(node)->keys.At(i);
      if (i > 0) {
        const Key prev =
            node->is_leaf
                ? static_cast<const LeafNode*>(node)->keys.At(i - 1)
                : static_cast<const InnerNode*>(node)->keys.At(i - 1);
        if (prev > k) return false;
      }
      if (lo != nullptr && k < *lo) return false;
      if (hi != nullptr && k > *hi) return false;
    }
    if (node->is_leaf) {
      const LeafNode* leaf = static_cast<const LeafNode*>(node);
      if (*leaf_depth == -1) *leaf_depth = depth;
      if (*leaf_depth != depth) return false;
      if (leaf->values.size() != static_cast<size_t>(count)) return false;
      if (leaf->prev != *prev_leaf) return false;
      if (*prev_leaf != nullptr && (*prev_leaf)->next != leaf) return false;
      *prev_leaf = leaf;
      *counted += static_cast<size_t>(count);
      return true;
    }
    const InnerNode* inner = static_cast<const InnerNode*>(node);
    if (inner->children.size() != static_cast<size_t>(count) + 1) {
      return false;
    }
    for (int64_t i = 0; i <= count; ++i) {
      Key child_lo{};
      Key child_hi{};
      const Key* lo_ptr = lo;
      const Key* hi_ptr = hi;
      if (i > 0) {
        child_lo = inner->keys.At(i - 1);
        lo_ptr = &child_lo;
      }
      if (i < count) {
        child_hi = inner->keys.At(i);
        hi_ptr = &child_hi;
      }
      if (!ValidateRec(DecodeRef(inner->children[static_cast<size_t>(i)]),
                       depth + 1, false, leaf_depth, counted, prev_leaf,
                       lo_ptr, hi_ptr)) {
        return false;
      }
    }
    return true;
  }

  void DumpRec(const NodeBase* node, int depth, FILE* out) const {
    for (int i = 0; i < depth; ++i) std::fprintf(out, "  ");
    if (node->is_leaf) {
      const LeafNode* leaf = static_cast<const LeafNode*>(node);
      std::fprintf(out, "leaf(%lld):", static_cast<long long>(leaf->keys.count()));
      for (int64_t i = 0; i < leaf->keys.count(); ++i) {
        std::fprintf(out, " %lld", static_cast<long long>(leaf->keys.At(i)));
      }
      std::fprintf(out, "\n");
      return;
    }
    const InnerNode* inner = static_cast<const InnerNode*>(node);
    std::fprintf(out, "inner(%lld):", static_cast<long long>(inner->keys.count()));
    for (int64_t i = 0; i < inner->keys.count(); ++i) {
      std::fprintf(out, " %lld", static_cast<long long>(inner->keys.At(i)));
    }
    std::fprintf(out, "\n");
    for (size_t i = 0; i < inner->children.size(); ++i) {
      DumpRec(DecodeRef(inner->children[i]), depth + 1, out);
    }
  }

  template <typename Fn>
  void ForEachNode(Fn fn) const {
    if (root_ == nullptr) return;
    std::vector<const NodeBase*> stack = {root_};
    while (!stack.empty()) {
      const NodeBase* node = stack.back();
      stack.pop_back();
      fn(node);
      if (!node->is_leaf) {
        const InnerNode* inner = static_cast<const InnerNode*>(node);
        for (size_t i = 0; i < inner->children.size(); ++i) {
          stack.push_back(DecodeRef(inner->children[i]));
        }
      }
    }
  }

  // --- bulk load ----------------------------------------------------------

  // Size of the next chunk when packing `rest` items into nodes that
  // prefer `pref` items and must hold between `min_items` and `max_items`
  // (root-level exceptions handled by the callers). Guarantees the
  // remainder never ends up below `min_items`.
  static int64_t NextChunk(int64_t rest, int64_t pref, int64_t min_items,
                           int64_t max_items) {
    int64_t take = std::min(pref, rest);
    const int64_t remaining = rest - take;
    if (remaining > 0 && remaining < min_items) {
      // Borrow from this chunk; if everything still fits in one node,
      // take it all (slightly overfull vs. `pref`, never vs. capacity).
      take = rest <= max_items ? rest : rest - min_items;
    }
    return take;
  }

  void BulkLoadInto(const Key* keys, const Value* values, size_t n,
                    double fill) {
    assert(root_ == nullptr);
    if (n == 0) return;

    const int64_t leaf_cap = leaf_ctx_->capacity;
    const int64_t min_leaf = (leaf_cap - 1) / 2;
    int64_t per_leaf =
        static_cast<int64_t>(static_cast<double>(leaf_cap) * fill + 0.5);
    per_leaf = std::clamp<int64_t>(per_leaf, std::max<int64_t>(min_leaf, 1),
                                   leaf_cap);

    // Build the leaf level.
    struct Entry {
      NodeBase* node;
      Key min_key;  // smallest key in the subtree (future separator)
    };
    std::vector<Entry> level;
    LeafNode* prev = nullptr;
    size_t i = 0;
    while (i < n) {
      const int64_t take = NextChunk(static_cast<int64_t>(n - i), per_leaf,
                                     min_leaf, leaf_cap);
      LeafNode* leaf = NewLeaf();
      leaf->keys.AssignSorted(keys + i, take);
      leaf->values.AssignCopy(values + i, take);
      leaf->prev = prev;
      if (prev != nullptr) prev->next = leaf;
      if (first_leaf_ == nullptr) first_leaf_ = leaf;
      level.push_back({leaf, keys[i]});
      prev = leaf;
      i += static_cast<size_t>(take);
    }
    size_ = n;

    // Build inner levels bottom-up until a single root remains. Counts
    // below are child-pointer counts (keys + 1).
    const int64_t max_children = inner_ctx_->capacity + 1;
    const int64_t min_children = (inner_ctx_->capacity - 1) / 2 + 1;
    int64_t per_inner = static_cast<int64_t>(
        static_cast<double>(max_children) * fill + 0.5);
    per_inner = std::clamp<int64_t>(per_inner, min_children, max_children);
    int levels = 1;
    while (level.size() > 1) {
      std::vector<Entry> next_level;
      size_t j = 0;
      while (j < level.size()) {
        int64_t take = NextChunk(static_cast<int64_t>(level.size() - j),
                                 per_inner, min_children, max_children);
        if (take < 2 && level.size() - j > 1) take = 2;
        InnerNode* node = NewInner();
        for (int64_t c = 0; c < take; ++c) {
          const Entry& e = level[j + static_cast<size_t>(c)];
          node->children.push_back(e.node->self);
          if (c > 0) node->keys.InsertAt(node->keys.count(), e.min_key);
        }
        next_level.push_back({node, level[j].min_key});
        j += static_cast<size_t>(take);
      }
      level = std::move(next_level);
      ++levels;
    }
    root_ = level[0].node;
    height_hint_.store(levels, std::memory_order_relaxed);
  }

  std::unique_ptr<Context> leaf_ctx_;
  std::unique_ptr<Context> inner_ctx_;
  // Block layout offsets: [node header | pad | keys | pad | payload].
  size_t leaf_keys_off_ = 0;
  size_t leaf_values_off_ = 0;
  size_t inner_keys_off_ = 0;
  size_t inner_children_off_ = 0;
  mem::NodePool leaf_pool_;
  mem::NodePool inner_pool_;
  NodeBase* root_ = nullptr;
  LeafNode* first_leaf_ = nullptr;
  size_t size_ = 0;
  // Optimistic-read state: the tree-level version word guards root_ /
  // first_leaf_ swaps, height_hint_ lets lock-free callers size batch
  // scratch, and concurrent_ (set once by EnableConcurrentReads before
  // any concurrent reader exists) turns the writer-side guards on.
  olc::VersionWord tree_version_;
  std::atomic<int32_t> height_hint_{0};
  bool concurrent_ = false;
};

}  // namespace simdtree::btree

#endif  // SIMDTREE_BTREE_GENERIC_BTREE_H_
