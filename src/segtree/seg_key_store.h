// Seg-Tree in-node key storage (paper Section 3): keys are kept in
// linearized k-ary search tree order and searched with SIMD; the logical
// (sorted) order used by the tree frame is recovered through the layout
// permutation. Child pointers and values are NOT rearranged — the paper's
// property that "only the keys in the k-ary search tree must be
// linearized; pointers are left unchanged".
//
// Mutations:
//   * appending the largest key ("continuous filling with ascending key
//     values", Section 3.2) writes exactly one slot — no reordering;
//   * removing the largest key likewise clears one slot;
//   * any other insert/remove delinearizes into a per-context scratch
//     buffer, edits, and relinearizes (the paper's reordering overhead).
//
// Padding slots hold PadValue<Key>() (see linearize.h), so appends never
// need to refresh existing padding.
//
// Storage: the store is a view over a fixed array of
// Context::key_storage_slots() keys (the layout's full slot count).
// Inside a tree the array is a slice of the node's arena block;
// standalone stores (tests, fixtures) own a buffer themselves. Slots
// beyond stored_slots() are unmaterialized (never read).

#ifndef SIMDTREE_SEGTREE_SEG_KEY_STORE_H_
#define SIMDTREE_SEGTREE_SEG_KEY_STORE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "kary/kary_search.h"
#include "kary/layout.h"
#include "kary/linearize.h"
#include "simd/bitmask_eval.h"
#include "simd/simd128.h"

namespace simdtree::segtree {

template <typename Key, typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
class SegKeyStore {
 public:
  static constexpr int kArity = simd::LaneTraits<Key, kBits>::kArity;

  // Shared per-tree state for one node kind: the layout permutation for
  // the node shape, the storage policy, and a scratch buffer for
  // relinearization. The scratch buffer makes mutations non-reentrant:
  // reads are safe concurrently, writes are single-threaded (matching the
  // paper's single-threaded scope).
  struct Context {
    Context(int64_t capacity_in, kary::Layout layout_in,
            kary::Storage storage_in)
        : capacity(capacity_in),
          layout_kind(layout_in),
          // Depth-first offset arithmetic requires the perfect tree
          // (see kary/layout.h).
          storage(layout_in == kary::Layout::kDepthFirst
                      ? kary::Storage::kPerfect
                      : storage_in),
          layout(kary::KaryShape::For(kArity, capacity_in), layout_in) {
      scratch.reserve(static_cast<size_t>(layout.slots()));
    }

    int64_t capacity;
    kary::Layout layout_kind;
    kary::Storage storage;
    kary::KaryLayout layout;
    mutable std::vector<Key> scratch;

    // Physical Key slots a node block reserves for this store: the full
    // layout, so a node never reallocates as it fills.
    int64_t key_storage_slots() const { return layout.slots(); }
  };

  // Standalone store owning its key storage (tests, fixtures).
  explicit SegKeyStore(const Context& ctx)
      : ctx_(&ctx),
        owned_(static_cast<size_t>(ctx.key_storage_slots())),
        lin_(owned_.data()) {}

  // In-node store over external storage of ctx.key_storage_slots() keys
  // (a slice of the node's arena block, see generic_btree.h).
  SegKeyStore(const Context& ctx, Key* storage) : ctx_(&ctx), lin_(storage) {}

  int64_t count() const { return count_; }
  int64_t capacity() const { return ctx_->capacity; }

  Key At(int64_t pos) const {
    assert(pos >= 0 && pos < count_);
    return lin_[static_cast<size_t>(ctx_->layout.SortedToSlot(pos))];
  }

  // Index of the first key > v, via SIMD k-ary search (Algorithms 4/5).
  int64_t UpperBound(Key v) const {
    if (ctx_->layout_kind == kary::Layout::kBreadthFirst) {
      return kary::UpperBoundBf<Key, Eval, B, kBits>(lin_, stored_, count_, v);
    }
    return kary::UpperBoundDf<Key, Eval, B, kBits>(lin_, stored_, count_, v);
  }

  // Identical result, counting SIMD comparison steps (trace hooks).
  int64_t UpperBoundCounted(Key v, SearchCounters* counters) const {
    if (ctx_->layout_kind == kary::Layout::kBreadthFirst) {
      return kary::UpperBoundBfCounted<Key, Eval, B, kBits>(
          lin_, stored_, count_, v, counters);
    }
    return kary::UpperBoundDfCounted<Key, Eval, B, kBits>(
        lin_, stored_, count_, v, counters);
  }

  // Trace layout id (obs/trace.h kTraceLayoutBreadthFirst/DepthFirst).
  uint8_t TraceLayoutId() const {
    return ctx_->layout_kind == kary::Layout::kBreadthFirst ? 1 : 2;
  }

  // Index of the first key >= v.
  int64_t LowerBound(Key v) const {
    if (v == std::numeric_limits<Key>::min()) return 0;
    return UpperBound(static_cast<Key>(v - 1));
  }

  // Prefetches the key storage ahead of an UpperBound call (batch
  // descent, see btree/batch_descent.h). Both linearizations place the
  // root k-ary node — the first SIMD load of every search — at the front
  // of the array, so one line covers the first comparison step.
  void PrefetchKeys() const {
    __builtin_prefetch(lin_, 0, 3);
  }

  void InsertAt(int64_t pos, Key k) {
    assert(pos >= 0 && pos <= count_);
    assert(count_ < capacity());
    if (pos == count_) {  // append fast path: no reordering (Section 3.2)
      const int64_t new_stored =
          ctx_->layout.StoredSlots(count_ + 1, ctx_->storage);
      GrowTo(new_stored);
      lin_[static_cast<size_t>(ctx_->layout.SortedToSlot(count_))] = k;
      ++count_;
      return;
    }
    std::vector<Key>& scratch = ctx_->scratch;
    scratch.resize(static_cast<size_t>(count_));
    ctx_->layout.Delinearize(lin_, count_, scratch.data());
    scratch.insert(scratch.begin() + static_cast<ptrdiff_t>(pos), k);
    Relinearize(count_ + 1);
  }

  void RemoveAt(int64_t pos) {
    assert(pos >= 0 && pos < count_);
    if (pos == count_ - 1) {  // remove-max fast path
      lin_[static_cast<size_t>(ctx_->layout.SortedToSlot(pos))] =
          kary::PadValue<Key>();
      --count_;
      ShrinkTo(ctx_->layout.StoredSlots(count_, ctx_->storage));
      return;
    }
    std::vector<Key>& scratch = ctx_->scratch;
    scratch.resize(static_cast<size_t>(count_));
    ctx_->layout.Delinearize(lin_, count_, scratch.data());
    scratch.erase(scratch.begin() + static_cast<ptrdiff_t>(pos));
    Relinearize(count_ - 1);
  }

  void AssignSorted(const Key* keys, int64_t n) {
    assert(n <= capacity());
    std::vector<Key>& scratch = ctx_->scratch;
    scratch.assign(keys, keys + n);
    Relinearize(n);
  }

  void Clear() {
    count_ = 0;
    stored_ = 0;
  }

  void MoveSuffixTo(SegKeyStore& dst, int64_t from) {
    assert(dst.count() == 0);
    assert(dst.ctx_ == ctx_ || dst.ctx_->capacity >= count_ - from);
    // Delinearize once; the suffix goes to dst, the prefix stays here.
    std::vector<Key> sorted(static_cast<size_t>(count_));
    ctx_->layout.Delinearize(lin_, count_, sorted.data());
    dst.AssignSorted(sorted.data() + from, count_ - from);
    std::vector<Key>& scratch = ctx_->scratch;
    scratch.assign(sorted.begin(),
                   sorted.begin() + static_cast<ptrdiff_t>(from));
    Relinearize(from);
  }

  void AppendFrom(SegKeyStore& src) {
    assert(count_ + src.count() <= capacity());
    std::vector<Key> merged(static_cast<size_t>(count_ + src.count()));
    ctx_->layout.Delinearize(lin_, count_, merged.data());
    src.ctx_->layout.Delinearize(src.lin_, src.count_,
                                 merged.data() + count_);
    std::vector<Key>& scratch = ctx_->scratch;
    scratch.assign(merged.begin(), merged.end());
    Relinearize(static_cast<int64_t>(merged.size()));
    src.Clear();
  }

  size_t MemoryBytes() const {
    return static_cast<size_t>(stored_) * sizeof(Key);
  }

  // Materialized slot count (the paper's N_S for this node).
  int64_t stored_slots() const { return stored_; }

 private:
  // Rebuilds lin_ from ctx_->scratch (sorted, n keys).
  void Relinearize(int64_t n) {
    const int64_t stored = ctx_->layout.StoredSlots(n, ctx_->storage);
    ctx_->layout.Linearize(ctx_->scratch.data(), n, lin_, stored,
                           kary::PadValue<Key>());
    count_ = n;
    stored_ = stored;
  }

  // Materializes padding in the newly stored slots; existing slots keep
  // their keys/padding (the append fast path's invariant).
  void GrowTo(int64_t stored) {
    assert(stored <= ctx_->key_storage_slots());
    for (int64_t s = stored_; s < stored; ++s) {
      lin_[static_cast<size_t>(s)] = kary::PadValue<Key>();
    }
    if (stored > stored_) stored_ = stored;
  }

  void ShrinkTo(int64_t stored) {
    if (stored < stored_) stored_ = stored;
  }

  const Context* ctx_;
  std::vector<Key> owned_;  // standalone mode only; empty when external
  Key* lin_;                // linearized keys + padding
  int64_t stored_ = 0;      // materialized slots
  int64_t count_ = 0;       // real keys
};

}  // namespace simdtree::segtree

#endif  // SIMDTREE_SEGTREE_SEG_KEY_STORE_H_
