// Public Seg-Tree (paper Section 3): a B+-Tree whose in-node search is the
// SIMD k-ary search over linearized keys. Identical structure and API to
// the baseline BPlusTree — only the key store differs.

#ifndef SIMDTREE_SEGTREE_SEGTREE_H_
#define SIMDTREE_SEGTREE_SEGTREE_H_

#include <cstdint>

#include "btree/btree.h"
#include "btree/generic_btree.h"
#include "kary/layout.h"
#include "segtree/seg_key_store.h"

namespace simdtree::segtree {

template <typename Key, typename Value,
          kary::Layout kLayout = kary::Layout::kBreadthFirst,
          typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
class SegTree
    : public btree::GenericBPlusTree<Key, Value,
                                     SegKeyStore<Key, Eval, B, kBits>> {
 public:
  using Store = SegKeyStore<Key, Eval, B, kBits>;
  using Base = btree::GenericBPlusTree<Key, Value, Store>;
  using Config = typename Base::Config;

  static Config MakeConfig(int64_t capacity,
                           kary::Storage storage = kary::Storage::kTruncated) {
    return Config{typename Store::Context(capacity, kLayout, storage),
                  typename Store::Context(capacity, kLayout, storage)};
  }

  // Paper Table 3 capacity for this key width (same as the baseline, so
  // both trees have the same fanout and height).
  static Config DefaultConfig() {
    return MakeConfig(btree::PaperNodeCapacity(sizeof(Key)));
  }

  SegTree() : Base(DefaultConfig()) {}
  explicit SegTree(int64_t capacity,
                   kary::Storage storage = kary::Storage::kTruncated)
      : Base(MakeConfig(capacity, storage)) {}
  explicit SegTree(Config config) : Base(std::move(config)) {}

  // Bulk load with completely filled nodes (paper Section 5.1).
  static SegTree BulkLoad(const Key* keys, const Value* values, size_t n,
                          double fill = 1.0,
                          int64_t capacity =
                              btree::PaperNodeCapacity(sizeof(Key)),
                          kary::Storage storage = kary::Storage::kTruncated) {
    SegTree tree(capacity, storage);
    Base loaded =
        Base::BulkLoad(MakeConfig(capacity, storage), keys, values, n, fill);
    static_cast<Base&>(tree) = std::move(loaded);
    return tree;
  }
};

}  // namespace simdtree::segtree

#endif  // SIMDTREE_SEGTREE_SEGTREE_H_
