#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "obs/trace.h"
#include "util/cycle_timer.h"

namespace simdtree::net {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t ElapsedNs(uint64_t start_cycles) {
  return static_cast<uint64_t>(
      CycleTimer::ToNanoseconds(CycleTimer::Now() - start_cycles));
}

// One decoded frame of a connection's pipeline, ready to execute.
struct PendingRequest {
  Request req;
  DecodeResult rc = DecodeResult::kOk;
};

}  // namespace

NetMetrics NetMetrics::Register() {
  auto& reg = obs::MetricsRegistry::Global();
  NetMetrics m;
  m.accepted = reg.GetCounter("net.accepted");
  m.closed = reg.GetCounter("net.closed");
  m.requests = reg.GetCounter("net.requests");
  m.malformed = reg.GetCounter("net.malformed");
  m.timeouts = reg.GetCounter("net.timeouts");
  m.backpressure_pauses = reg.GetCounter("net.backpressure_pauses");
  m.connections = reg.GetGauge("net.connections");
  m.in_flight = reg.GetGauge("net.in_flight");
  m.coalesced_batch = reg.GetHistogram("net.coalesced_batch");
  m.op_get_ns = reg.GetHistogram("net.op_get_ns");
  m.op_mget_ns = reg.GetHistogram("net.op_mget_ns");
  m.op_lower_bound_ns = reg.GetHistogram("net.op_lower_bound_ns");
  m.op_put_ns = reg.GetHistogram("net.op_put_ns");
  m.op_del_ns = reg.GetHistogram("net.op_del_ns");
  m.op_stats_ns = reg.GetHistogram("net.op_stats_ns");
  return m;
}

// Per-worker state. Each worker owns its connections exclusively: a fd
// accepted on this worker's SO_REUSEPORT listener is registered in this
// worker's epoll and never leaves, so none of this needs a lock.
struct KvServer::Worker {
  struct Conn {
    int fd = -1;
    uint32_t id = 0;
    std::vector<uint8_t> rbuf;
    std::vector<uint8_t> wbuf;
    size_t woff = 0;                 // flushed prefix of wbuf
    int64_t last_rx_ms = 0;          // last byte received
    int64_t partial_since_ms = -1;   // incomplete frame pending since
    bool paused = false;             // EPOLLIN off (write backpressure)
    bool close_after_flush = false;

    size_t pending_write() const { return wbuf.size() - woff; }
  };

  KvServer* server = nullptr;
  int epoll_fd = -1;
  int listen_fd = -1;
  int wake_fd = -1;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  std::atomic<size_t> open_conns{0};  // read by other threads via gauge

  // Shared scratch for read-run coalescing (reused across pipelines).
  std::vector<uint64_t> batch_keys;
  std::vector<std::optional<uint64_t>> batch_out;

  ~Worker() {
    for (auto& [fd, conn] : conns) ::close(fd);
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_fd >= 0) ::close(wake_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
  }

  // Binds an SO_REUSEPORT listener on addr:port and sets up the epoll
  // set. Returns false with *err filled on failure.
  bool Init(const std::string& addr, uint16_t port, std::string* err) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (listen_fd < 0) {
      *err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) != 0) {
      *err = std::string("SO_REUSEPORT: ") + std::strerror(errno);
      return false;
    }
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
      *err = "invalid bind address: " + addr;
      return false;
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
        ::listen(listen_fd, 128) != 0) {
      *err = std::string("bind/listen: ") + std::strerror(errno);
      return false;
    }
    wake_fd = ::eventfd(0, EFD_NONBLOCK);
    epoll_fd = ::epoll_create1(0);
    if (wake_fd < 0 || epoll_fd < 0) {
      *err = std::string("eventfd/epoll_create1: ") + std::strerror(errno);
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev);
    ev.data.fd = wake_fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev);
    return true;
  }

  uint16_t BoundPort() const {
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(
                                     const_cast<sockaddr_in*>(&sa)),
                      &len) != 0) {
      return 0;
    }
    return ntohs(sa.sin_port);
  }

  void Wake() const {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
  }

  void UpdateEvents(Conn* c, bool draining) {
    epoll_event ev{};
    ev.data.fd = c->fd;
    if (!c->paused && !c->close_after_flush && !draining) {
      ev.events |= EPOLLIN;
    }
    if (c->pending_write() > 0) ev.events |= EPOLLOUT;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
  }

  void CloseConn(Conn* c) {
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
    ::close(c->fd);
    server->metrics_.closed->Add();
    conns.erase(c->fd);  // destroys *c
    open_conns.fetch_sub(1, std::memory_order_relaxed);
    PublishConnGauge();
  }

  void PublishConnGauge() {
    size_t total = 0;
    for (const auto& w : server->workers_) {
      total += w->open_conns.load(std::memory_order_relaxed);
    }
    server->metrics_.connections->Set(static_cast<double>(total));
  }

  void Accept() {
    while (true) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) return;  // EAGAIN or transient error: back to epoll
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->id = server->next_conn_id_.fetch_add(
          1, std::memory_order_relaxed);
      conn->last_rx_ms = NowMs();
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
      conns.emplace(fd, std::move(conn));
      open_conns.fetch_add(1, std::memory_order_relaxed);
      server->metrics_.accepted->Add();
      PublishConnGauge();
    }
  }

  // Drains readable bytes (one gulp, until EAGAIN or the read cap),
  // then executes every complete frame. Returns false when the
  // connection was closed.
  bool HandleReadable(Conn* c, bool draining) {
    char buf[16 * 1024];
    bool peer_closed = false;
    while (c->rbuf.size() < server->options_.read_buffer_limit) {
      const ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        c->rbuf.insert(c->rbuf.end(), buf, buf + n);
        c->last_rx_ms = NowMs();
        continue;
      }
      if (n == 0) {
        peer_closed = true;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // drained
      } else if (errno == EINTR) {
        continue;
      } else {
        peer_closed = true;  // hard socket error
      }
      break;
    }
    if (!ProcessPipeline(c, draining)) return false;  // conn closed
    if (peer_closed) {
      CloseConn(c);
      return false;
    }
    return true;
  }

  // Extracts and executes every complete frame in c->rbuf, appends the
  // replies to c->wbuf in request order, flushes. Returns false when
  // the connection was closed (framing violation or flush failure).
  bool ProcessPipeline(Conn* c, bool draining) {
    std::vector<PendingRequest> pipeline;
    size_t off = 0;
    bool framing_violation = false;
    while (true) {
      const uint8_t* payload;
      size_t payload_len, consumed;
      const int rc = ExtractFrame(c->rbuf.data(), c->rbuf.size(), off,
                                  &payload, &payload_len, &consumed);
      if (rc == 0) break;
      if (rc < 0) {
        framing_violation = true;
        break;
      }
      PendingRequest p;
      p.rc = DecodeRequest(payload, payload_len, &p.req);
      pipeline.push_back(std::move(p));
      off += consumed;
    }
    c->rbuf.erase(c->rbuf.begin(),
                  c->rbuf.begin() + static_cast<ptrdiff_t>(off));
    c->partial_since_ms = c->rbuf.empty() ? -1 : NowMs();

    if (!pipeline.empty()) Execute(c, pipeline);

    if (framing_violation) {
      server->metrics_.malformed->Add();
      AppendErrorResponse(&c->wbuf, kOpNone, kStatusTooLarge, 0);
      c->close_after_flush = true;
      c->rbuf.clear();
      c->partial_since_ms = -1;
    }
    return FlushAndManage(c, draining);
  }

  // Executes one pipeline: maximal runs of consecutive well-formed
  // GET/MGET requests coalesce into one backend FindBatch; everything
  // else (writes, lower bounds, stats, errors) executes at its pipeline
  // position, preserving the wire's sequential semantics.
  void Execute(Conn* c, std::vector<PendingRequest>& pipeline) {
    NetMetrics& m = server->metrics_;
    m.requests->Add(pipeline.size());
    server->in_flight_.fetch_add(static_cast<int64_t>(pipeline.size()),
                                 std::memory_order_relaxed);
    m.in_flight->Set(static_cast<double>(
        server->in_flight_.load(std::memory_order_relaxed)));

    size_t i = 0;
    while (i < pipeline.size()) {
      const PendingRequest& p = pipeline[i];
      const bool is_read =
          p.rc == DecodeResult::kOk &&
          (p.req.opcode == kOpGet || p.req.opcode == kOpMget);
      if (is_read) {
        // Grow the run through every consecutive read request.
        size_t end = i;
        batch_keys.clear();
        while (end < pipeline.size()) {
          const PendingRequest& q = pipeline[end];
          if (q.rc != DecodeResult::kOk ||
              (q.req.opcode != kOpGet && q.req.opcode != kOpMget)) {
            break;
          }
          if (q.req.opcode == kOpGet) {
            batch_keys.push_back(q.req.key);
          } else {
            batch_keys.insert(batch_keys.end(), q.req.keys.begin(),
                              q.req.keys.end());
          }
          ++end;
        }
        batch_out.assign(batch_keys.size(), std::nullopt);
        obs::SetTraceRequestContext(c->id, pipeline[i].req.request_id);
        const uint64_t start = CycleTimer::Now();
        if (!batch_keys.empty()) {
          server->backend_->FindBatch(batch_keys.data(), batch_keys.size(),
                                      batch_out.data());
        }
        const uint64_t ns = ElapsedNs(start);
        m.coalesced_batch->Record(batch_keys.size());
        // Scatter results back into one reply per request, in order.
        size_t k = 0;
        for (size_t j = i; j < end; ++j) {
          const Request& r = pipeline[j].req;
          if (r.opcode == kOpGet) {
            const auto& v = batch_out[k++];
            AppendResponseFrame(
                &c->wbuf, kOpGet, kStatusOk, r.request_id,
                v.has_value() ? 9 : 1, [&v](std::vector<uint8_t>* o) {
                  PutU8(o, v.has_value() ? 1 : 0);
                  if (v.has_value()) PutU64(o, *v);
                });
            m.op_get_ns->Record(ns);
          } else {
            const uint32_t n = static_cast<uint32_t>(r.keys.size());
            AppendResponseFrame(
                &c->wbuf, kOpMget, kStatusOk, r.request_id,
                4 + static_cast<size_t>(n) * 9,
                [&](std::vector<uint8_t>* o) {
                  PutU32(o, n);
                  for (uint32_t e = 0; e < n; ++e) {
                    const auto& v = batch_out[k + e];
                    PutU8(o, v.has_value() ? 1 : 0);
                    PutU64(o, v.has_value() ? *v : 0);
                  }
                });
            k += n;
            m.op_mget_ns->Record(ns);
          }
        }
        i = end;
        continue;
      }
      ExecuteSingle(c, p);
      ++i;
    }
    obs::ClearTraceRequestContext();

    server->in_flight_.fetch_sub(static_cast<int64_t>(pipeline.size()),
                                 std::memory_order_relaxed);
    m.in_flight->Set(static_cast<double>(
        server->in_flight_.load(std::memory_order_relaxed)));
  }

  void ExecuteSingle(Conn* c, const PendingRequest& p) {
    NetMetrics& m = server->metrics_;
    const Request& r = p.req;
    if (p.rc != DecodeResult::kOk) {
      m.malformed->Add();
      AppendErrorResponse(&c->wbuf, r.opcode,
                          p.rc == DecodeResult::kUnknownOp
                              ? kStatusUnknownOp
                              : kStatusMalformed,
                          r.request_id);
      return;
    }
    obs::SetTraceRequestContext(c->id, r.request_id);
    const uint64_t start = CycleTimer::Now();
    switch (r.opcode) {
      case kOpLowerBound: {
        uint64_t out_key = 0, out_value = 0;
        const bool found =
            server->backend_->LowerBound(r.key, &out_key, &out_value);
        AppendResponseFrame(
            &c->wbuf, kOpLowerBound, kStatusOk, r.request_id,
            found ? 17 : 1, [&](std::vector<uint8_t>* o) {
              PutU8(o, found ? 1 : 0);
              if (found) {
                PutU64(o, out_key);
                PutU64(o, out_value);
              }
            });
        m.op_lower_bound_ns->Record(ElapsedNs(start));
        return;
      }
      case kOpPut:
        server->backend_->Put(r.key, r.value);
        AppendResponseFrame(&c->wbuf, kOpPut, kStatusOk, r.request_id, 0,
                            [](std::vector<uint8_t>*) {});
        m.op_put_ns->Record(ElapsedNs(start));
        return;
      case kOpDel: {
        const bool erased = server->backend_->Del(r.key);
        AppendResponseFrame(&c->wbuf, kOpDel, kStatusOk, r.request_id, 1,
                            [erased](std::vector<uint8_t>* o) {
                              PutU8(o, erased ? 1 : 0);
                            });
        m.op_del_ns->Record(ElapsedNs(start));
        return;
      }
      case kOpStats: {
        std::string json = server->backend_->StatsJson();
        if (json.size() > kMaxFrameBytes - 6) {
          json.resize(kMaxFrameBytes - 6);  // cap, never break framing
        }
        AppendResponseFrame(&c->wbuf, kOpStats, kStatusOk, r.request_id,
                            json.size(), [&json](std::vector<uint8_t>* o) {
                              o->insert(o->end(), json.begin(), json.end());
                            });
        m.op_stats_ns->Record(ElapsedNs(start));
        return;
      }
      default:
        // DecodeRequest only returns kOk for opcodes it knows; GET/MGET
        // never reach here (coalesced path).
        m.malformed->Add();
        AppendErrorResponse(&c->wbuf, r.opcode, kStatusUnknownOp,
                            r.request_id);
        return;
    }
  }

  // Flushes as much of wbuf as the socket accepts, applies the
  // backpressure policy, and closes when requested and fully flushed.
  // Returns false when the connection was closed.
  bool FlushAndManage(Conn* c, bool draining) {
    while (c->pending_write() > 0) {
      const ssize_t n = ::send(c->fd, c->wbuf.data() + c->woff,
                               c->pending_write(), MSG_NOSIGNAL);
      if (n > 0) {
        c->woff += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      CloseConn(c);  // peer gone
      return false;
    }
    if (c->woff == c->wbuf.size()) {
      c->wbuf.clear();
      c->woff = 0;
      if (c->close_after_flush) {
        CloseConn(c);
        return false;
      }
    } else if (c->woff > (1u << 16)) {
      c->wbuf.erase(c->wbuf.begin(),
                    c->wbuf.begin() + static_cast<ptrdiff_t>(c->woff));
      c->woff = 0;
    }
    // Backpressure: a peer that pipelines requests but does not drain
    // replies stops being read until its write buffer shrinks.
    const size_t pending = c->pending_write();
    if (!c->paused && pending > server->options_.write_buffer_limit) {
      c->paused = true;
      server->metrics_.backpressure_pauses->Add();
    } else if (c->paused &&
               pending < server->options_.write_buffer_limit / 2) {
      c->paused = false;
    }
    UpdateEvents(c, draining);
    return true;
  }

  // Closes idle connections and connections whose partial frame has
  // been incomplete for too long.
  void ScanTimeouts(int64_t now_ms) {
    std::vector<Conn*> doomed;
    for (auto& [fd, conn] : conns) {
      Conn* c = conn.get();
      if (c->partial_since_ms >= 0 &&
          now_ms - c->partial_since_ms >
              server->options_.request_timeout_ms) {
        doomed.push_back(c);
        continue;
      }
      if (c->pending_write() == 0 && c->partial_since_ms < 0 &&
          now_ms - c->last_rx_ms > server->options_.idle_timeout_ms) {
        doomed.push_back(c);
      }
    }
    for (Conn* c : doomed) {
      server->metrics_.timeouts->Add();
      CloseConn(c);
    }
  }

  void Run() {
    bool draining = false;
    int64_t drain_deadline = 0;
    epoll_event events[64];
    while (true) {
      if (!draining &&
          !server->running_.load(std::memory_order_acquire)) {
        draining = true;
        drain_deadline = NowMs() + server->options_.drain_timeout_ms;
        // Connections the kernel already established sit in the accept
        // queue until we accept4() them; closing the listener would RST
        // them mid-handshake. Adopt them first, then stop listening.
        Accept();
        ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
        ::close(listen_fd);
        listen_fd = -1;
        // One final gulp per connection: execute pipelines the kernel
        // already holds, then stop reading and flush.
        std::vector<int> fds;
        fds.reserve(conns.size());
        for (auto& [fd, conn] : conns) fds.push_back(fd);
        for (int fd : fds) {
          auto it = conns.find(fd);
          if (it == conns.end()) continue;
          Conn* c = it->second.get();
          if (!HandleReadable(c, /*draining=*/true)) continue;
          it = conns.find(fd);
          if (it == conns.end()) continue;
          c = it->second.get();
          c->close_after_flush = true;
          if (!FlushAndManage(c, /*draining=*/true)) continue;
        }
      }
      if (draining && (conns.empty() || NowMs() >= drain_deadline)) break;

      const int n = ::epoll_wait(epoll_fd, events, 64, /*timeout_ms=*/100);
      for (int e = 0; e < n; ++e) {
        const int fd = events[e].data.fd;
        if (fd == wake_fd) {
          uint64_t tmp;
          [[maybe_unused]] ssize_t r = ::read(wake_fd, &tmp, sizeof(tmp));
          continue;
        }
        if (fd == listen_fd) {
          if (!draining) Accept();
          continue;
        }
        auto it = conns.find(fd);
        if (it == conns.end()) continue;
        Conn* c = it->second.get();
        if (events[e].events & (EPOLLERR | EPOLLHUP)) {
          CloseConn(c);
          continue;
        }
        if ((events[e].events & EPOLLIN) && !draining) {
          if (!HandleReadable(c, draining)) continue;
        }
        if (events[e].events & EPOLLOUT) {
          if (!FlushAndManage(c, draining)) continue;
        }
      }
      if (!draining) ScanTimeouts(NowMs());
    }
    // Drain deadline passed (or everything flushed): force-close.
    std::vector<int> leftover;
    for (auto& [fd, conn] : conns) leftover.push_back(fd);
    for (int fd : leftover) {
      auto it = conns.find(fd);
      if (it != conns.end()) CloseConn(it->second.get());
    }
  }
};

bool KvServer::Start(const KvServerOptions& options) {
  if (running_.load(std::memory_order_acquire)) return true;
  error_.clear();
  options_ = options;
  if (options_.num_workers < 1) options_.num_workers = 1;
  metrics_ = NetMetrics::Register();

  workers_.clear();
  uint16_t bound_port = options_.port;
  for (int w = 0; w < options_.num_workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->server = this;
    // Worker 0 resolves an ephemeral port; the rest join it via
    // SO_REUSEPORT so the kernel spreads accepts across all workers.
    if (!worker->Init(options_.bind_addr, bound_port, &error_)) {
      workers_.clear();
      return false;
    }
    if (w == 0) bound_port = worker->BoundPort();
    workers_.push_back(std::move(worker));
  }
  port_ = bound_port;
  in_flight_.store(0, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  threads_.clear();
  threads_.reserve(workers_.size());
  for (auto& worker : workers_) {
    threads_.emplace_back([w = worker.get()] { w->Run(); });
  }
  return true;
}

KvServer::KvServer(KvBackend* backend) : backend_(backend) {}

KvServer::~KvServer() { Stop(); }

void KvServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
    workers_.clear();
    return;
  }
  for (auto& worker : workers_) worker->Wake();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  workers_.clear();
  port_ = 0;
}

}  // namespace simdtree::net
