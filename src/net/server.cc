#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "obs/profiler.h"
#include "obs/request_trace.h"
#include "obs/stats_server.h"
#include "obs/trace.h"
#include "util/cycle_timer.h"

namespace simdtree::net {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t ElapsedNs(uint64_t start_cycles) {
  return static_cast<uint64_t>(
      CycleTimer::ToNanoseconds(CycleTimer::Now() - start_cycles));
}

uint64_t CyclesToNs(uint64_t cycles) {
  return static_cast<uint64_t>(CycleTimer::ToNanoseconds(cycles));
}

// One decoded frame of a connection's pipeline, ready to execute.
struct PendingRequest {
  Request req;
  DecodeResult rc = DecodeResult::kOk;
};

obs::ExemplarStore* ExemplarForOp(const NetMetrics& m, uint8_t opcode) {
  switch (opcode) {
    case kOpGet: return m.ex_get;
    case kOpMget: return m.ex_mget;
    case kOpLowerBound: return m.ex_lower_bound;
    case kOpPut: return m.ex_put;
    case kOpDel: return m.ex_del;
    default: return nullptr;  // stats/error replies carry no exemplar
  }
}

// Copies the index-internal sub-phases (shard_fanout, descent) the
// concurrency wrappers marked into the collector onto one request's
// trace.
void AppendCollectedSpans(obs::RequestTrace* t,
                          const obs::SpanCollector& collector) {
  for (int s = 0; s < collector.count; ++s) {
    const obs::RequestSpan& cs = collector.spans[s];
    obs::AppendRequestSpan(t, static_cast<obs::RequestSpanKind>(cs.kind),
                           cs.start_ns, cs.duration_ns);
  }
}

}  // namespace

NetMetrics NetMetrics::Register() {
  auto& reg = obs::MetricsRegistry::Global();
  NetMetrics m;
  m.accepted = reg.GetCounter("net.accepted");
  m.closed = reg.GetCounter("net.closed");
  m.requests = reg.GetCounter("net.requests");
  m.malformed = reg.GetCounter("net.malformed");
  m.timeouts = reg.GetCounter("net.timeouts");
  m.backpressure_pauses = reg.GetCounter("net.backpressure_pauses");
  m.connections = reg.GetGauge("net.connections");
  m.in_flight = reg.GetGauge("net.in_flight");
  m.coalesced_batch = reg.GetHistogram("net.coalesced_batch");
  m.op_get_ns = reg.GetHistogram("net.op_get_ns");
  m.op_mget_ns = reg.GetHistogram("net.op_mget_ns");
  m.op_lower_bound_ns = reg.GetHistogram("net.op_lower_bound_ns");
  m.op_put_ns = reg.GetHistogram("net.op_put_ns");
  m.op_del_ns = reg.GetHistogram("net.op_del_ns");
  m.op_stats_ns = reg.GetHistogram("net.op_stats_ns");
  m.ex_get = reg.GetExemplars("net.op_get_ns");
  m.ex_mget = reg.GetExemplars("net.op_mget_ns");
  m.ex_lower_bound = reg.GetExemplars("net.op_lower_bound_ns");
  m.ex_put = reg.GetExemplars("net.op_put_ns");
  m.ex_del = reg.GetExemplars("net.op_del_ns");
  return m;
}

// Per-worker state. Each worker owns its connections exclusively: a fd
// accepted on this worker's SO_REUSEPORT listener is registered in this
// worker's epoll and never leaves, so none of this needs a lock.
struct KvServer::Worker {
  struct Conn {
    int fd = -1;
    uint32_t id = 0;
    std::vector<uint8_t> rbuf;
    std::vector<uint8_t> wbuf;
    size_t woff = 0;                 // flushed prefix of wbuf
    int64_t last_rx_ms = 0;          // last byte received
    int64_t partial_since_ms = -1;   // incomplete frame pending since
    bool paused = false;             // EPOLLIN off (write backpressure)
    bool close_after_flush = false;

    size_t pending_write() const { return wbuf.size() - woff; }
  };

  KvServer* server = nullptr;
  int epoll_fd = -1;
  int listen_fd = -1;
  int wake_fd = -1;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  std::atomic<size_t> open_conns{0};  // read by other threads via gauge

  // Shared scratch for read-run coalescing (reused across pipelines).
  std::vector<uint64_t> batch_keys;
  std::vector<std::optional<uint64_t>> batch_out;

  // Request-span scratch, one slot per pipeline entry; only populated
  // while the request tracer is armed (empty otherwise).
  std::vector<obs::RequestTrace> trace_scratch;

  ~Worker() {
    for (auto& [fd, conn] : conns) ::close(fd);
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_fd >= 0) ::close(wake_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
  }

  // Binds an SO_REUSEPORT listener on addr:port and sets up the epoll
  // set. Returns false with *err filled on failure.
  bool Init(const std::string& addr, uint16_t port, std::string* err) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (listen_fd < 0) {
      *err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) != 0) {
      *err = std::string("SO_REUSEPORT: ") + std::strerror(errno);
      return false;
    }
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
      *err = "invalid bind address: " + addr;
      return false;
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
        ::listen(listen_fd, 128) != 0) {
      *err = std::string("bind/listen: ") + std::strerror(errno);
      return false;
    }
    wake_fd = ::eventfd(0, EFD_NONBLOCK);
    epoll_fd = ::epoll_create1(0);
    if (wake_fd < 0 || epoll_fd < 0) {
      *err = std::string("eventfd/epoll_create1: ") + std::strerror(errno);
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev);
    ev.data.fd = wake_fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev);
    return true;
  }

  uint16_t BoundPort() const {
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(
                                     const_cast<sockaddr_in*>(&sa)),
                      &len) != 0) {
      return 0;
    }
    return ntohs(sa.sin_port);
  }

  void Wake() const {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
  }

  void UpdateEvents(Conn* c, bool draining) {
    epoll_event ev{};
    ev.data.fd = c->fd;
    if (!c->paused && !c->close_after_flush && !draining) {
      ev.events |= EPOLLIN;
    }
    if (c->pending_write() > 0) ev.events |= EPOLLOUT;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
  }

  void CloseConn(Conn* c) {
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
    ::close(c->fd);
    server->metrics_.closed->Add();
    conns.erase(c->fd);  // destroys *c
    open_conns.fetch_sub(1, std::memory_order_relaxed);
    PublishConnGauge();
  }

  void PublishConnGauge() {
    size_t total = 0;
    for (const auto& w : server->workers_) {
      total += w->open_conns.load(std::memory_order_relaxed);
    }
    server->metrics_.connections->Set(static_cast<double>(total));
  }

  void Accept() {
    while (true) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) return;  // EAGAIN or transient error: back to epoll
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->id = server->next_conn_id_.fetch_add(
          1, std::memory_order_relaxed);
      conn->last_rx_ms = NowMs();
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
      conns.emplace(fd, std::move(conn));
      open_conns.fetch_add(1, std::memory_order_relaxed);
      server->metrics_.accepted->Add();
      PublishConnGauge();
    }
  }

  // Drains readable bytes (one gulp, until EAGAIN or the read cap),
  // then executes every complete frame. Returns false when the
  // connection was closed.
  bool HandleReadable(Conn* c, bool draining) {
    // Disarmed, span recording costs this one relaxed load per drain.
    const bool tracing = obs::RequestTracer::Global().enabled();
    const uint64_t gulp_start = tracing ? CycleTimer::Now() : 0;
    char buf[16 * 1024];
    bool peer_closed = false;
    while (c->rbuf.size() < server->options_.read_buffer_limit) {
      const ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        c->rbuf.insert(c->rbuf.end(), buf, buf + n);
        c->last_rx_ms = NowMs();
        continue;
      }
      if (n == 0) {
        peer_closed = true;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // drained
      } else if (errno == EINTR) {
        continue;
      } else {
        peer_closed = true;  // hard socket error
      }
      break;
    }
    const uint64_t read_ns = tracing ? ElapsedNs(gulp_start) : 0;
    if (!ProcessPipeline(c, draining, tracing, gulp_start, read_ns)) {
      return false;  // conn closed
    }
    if (peer_closed) {
      CloseConn(c);
      return false;
    }
    return true;
  }

  // Extracts and executes every complete frame in c->rbuf, appends the
  // replies to c->wbuf in request order, flushes. Returns false when
  // the connection was closed (framing violation or flush failure).
  bool ProcessPipeline(Conn* c, bool draining, bool tracing,
                      uint64_t gulp_start_cycles, uint64_t read_ns) {
    std::vector<PendingRequest> pipeline;
    size_t off = 0;
    bool framing_violation = false;
    while (true) {
      const uint8_t* payload;
      size_t payload_len, consumed;
      const int rc = ExtractFrame(c->rbuf.data(), c->rbuf.size(), off,
                                  &payload, &payload_len, &consumed);
      if (rc == 0) break;
      if (rc < 0) {
        framing_violation = true;
        break;
      }
      PendingRequest p;
      p.rc = DecodeRequest(payload, payload_len, &p.req);
      pipeline.push_back(std::move(p));
      off += consumed;
    }
    c->rbuf.erase(c->rbuf.begin(),
                  c->rbuf.begin() + static_cast<ptrdiff_t>(off));
    c->partial_since_ms = c->rbuf.empty() ? -1 : NowMs();

    // Each decoded frame gets its trace id HERE — before execution —
    // so a request that stalls mid-pipeline is already identifiable.
    trace_scratch.clear();
    if (tracing && !pipeline.empty()) {
      auto& tracer = obs::RequestTracer::Global();
      const uint64_t gulp_start_ns = CyclesToNs(gulp_start_cycles);
      trace_scratch.reserve(pipeline.size());
      for (const PendingRequest& p : pipeline) {
        obs::RequestTrace t;
        t.trace_id = tracer.NextTraceId();
        t.start_ns = gulp_start_ns;
        t.conn_id = c->id;
        t.request_id = p.req.request_id;
        t.opcode = p.req.opcode;
        // The gulp that delivered this frame also delivered its pipeline
        // siblings; they honestly share one socket_read span.
        obs::AppendRequestSpan(&t, obs::RequestSpanKind::kSocketRead,
                               gulp_start_ns, read_ns);
        trace_scratch.push_back(t);
      }
    }

    if (!pipeline.empty()) {
      Execute(c, pipeline,
              trace_scratch.empty() ? nullptr : trace_scratch.data());
    }

    if (framing_violation) {
      server->metrics_.malformed->Add();
      AppendErrorResponse(&c->wbuf, kOpNone, kStatusTooLarge, 0);
      c->close_after_flush = true;
      c->rbuf.clear();
      c->partial_since_ms = -1;
    }

    if (trace_scratch.empty()) return FlushAndManage(c, draining);

    // Tail decision happens after the flush, when end-to-end latency is
    // known. FlushAndManage may close the connection; the traces are
    // values, so finishing them stays safe either way.
    const uint64_t flush_start = CycleTimer::Now();
    const bool alive = FlushAndManage(c, draining);
    const uint64_t flush_ns = ElapsedNs(flush_start);
    const uint64_t flush_start_ns = CyclesToNs(flush_start);
    const uint64_t latency_ns = ElapsedNs(gulp_start_cycles);
    auto& tracer = obs::RequestTracer::Global();
    for (obs::RequestTrace& t : trace_scratch) {
      obs::AppendRequestSpan(&t, obs::RequestSpanKind::kWriteFlush,
                             flush_start_ns, flush_ns);
      t.latency_ns = latency_ns;
      if (tracer.Finish(&t) && t.status == kStatusOk) {
        // Retained traces are inspectable in /requestz, so their ids
        // may honestly serve as exemplars on the per-op histogram the
        // same service_ns was recorded into.
        obs::ExemplarStore* store = ExemplarForOp(server->metrics_, t.opcode);
        if (store != nullptr) store->Offer(t.service_ns, t.trace_id);
      }
    }
    trace_scratch.clear();
    return alive;
  }

  // Executes one pipeline: maximal runs of consecutive well-formed
  // GET/MGET requests coalesce into one backend FindBatch; everything
  // else (writes, lower bounds, stats, errors) executes at its pipeline
  // position, preserving the wire's sequential semantics.
  // Test hook: stalls the calling worker when the key set touches
  // options_.test_slow_key, manufacturing one deterministic
  // slow-threshold breach inside the timed execute region.
  void MaybeTestStall(const uint64_t* keys, size_t n) {
    const uint64_t stall_ns = server->options_.test_slow_ns;
    if (stall_ns == 0) return;
    for (size_t i = 0; i < n; ++i) {
      if (keys[i] == server->options_.test_slow_key) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(stall_ns));
        return;
      }
    }
  }

  void Execute(Conn* c, std::vector<PendingRequest>& pipeline,
               obs::RequestTrace* traces) {
    NetMetrics& m = server->metrics_;
    m.requests->Add(pipeline.size());
    server->in_flight_.fetch_add(static_cast<int64_t>(pipeline.size()),
                                 std::memory_order_relaxed);
    m.in_flight->Set(static_cast<double>(
        server->in_flight_.load(std::memory_order_relaxed)));

    // Execute-entry timestamp anchors every request's coalesce_wait
    // span: how long its run sat behind earlier pipeline ops (writes
    // are barriers, so a read can queue behind a PUT).
    const uint64_t exec_start = traces != nullptr ? CycleTimer::Now() : 0;
    const uint64_t exec_start_ns =
        traces != nullptr ? CyclesToNs(exec_start) : 0;

    size_t i = 0;
    while (i < pipeline.size()) {
      const PendingRequest& p = pipeline[i];
      const bool is_read =
          p.rc == DecodeResult::kOk &&
          (p.req.opcode == kOpGet || p.req.opcode == kOpMget);
      if (is_read) {
        // Grow the run through every consecutive read request.
        size_t end = i;
        batch_keys.clear();
        while (end < pipeline.size()) {
          const PendingRequest& q = pipeline[end];
          if (q.rc != DecodeResult::kOk ||
              (q.req.opcode != kOpGet && q.req.opcode != kOpMget)) {
            break;
          }
          if (q.req.opcode == kOpGet) {
            batch_keys.push_back(q.req.key);
          } else {
            batch_keys.insert(batch_keys.end(), q.req.keys.begin(),
                              q.req.keys.end());
          }
          ++end;
        }
        batch_out.assign(batch_keys.size(), std::nullopt);
        obs::SetTraceRequestContext(c->id, pipeline[i].req.request_id);
        // Arm the thread-local collector so the index wrappers mark
        // their fan-out/descent sub-phases into it.
        obs::SpanCollector collector;
        uint64_t wait_ns = 0;
        if (traces != nullptr) {
          wait_ns = ElapsedNs(exec_start);
          obs::SetActiveSpanCollector(&collector);
        }
        const uint64_t start = CycleTimer::Now();
        MaybeTestStall(batch_keys.data(), batch_keys.size());
        if (!batch_keys.empty()) {
          server->backend_->FindBatch(batch_keys.data(), batch_keys.size(),
                                      batch_out.data());
        }
        const uint64_t ns = ElapsedNs(start);
        if (traces != nullptr) obs::SetActiveSpanCollector(nullptr);
        m.coalesced_batch->Record(batch_keys.size());
        // Scatter results back into one reply per request, in order.
        size_t k = 0;
        for (size_t j = i; j < end; ++j) {
          const Request& r = pipeline[j].req;
          if (r.opcode == kOpGet) {
            const auto& v = batch_out[k++];
            AppendResponseFrame(
                &c->wbuf, kOpGet, kStatusOk, r.request_id,
                v.has_value() ? 9 : 1, [&v](std::vector<uint8_t>* o) {
                  PutU8(o, v.has_value() ? 1 : 0);
                  if (v.has_value()) PutU64(o, *v);
                });
            m.op_get_ns->Record(ns);
          } else {
            const uint32_t n = static_cast<uint32_t>(r.keys.size());
            AppendResponseFrame(
                &c->wbuf, kOpMget, kStatusOk, r.request_id,
                4 + static_cast<size_t>(n) * 9,
                [&](std::vector<uint8_t>* o) {
                  PutU32(o, n);
                  for (uint32_t e = 0; e < n; ++e) {
                    const auto& v = batch_out[k + e];
                    PutU8(o, v.has_value() ? 1 : 0);
                    PutU64(o, v.has_value() ? *v : 0);
                  }
                });
            k += n;
            m.op_mget_ns->Record(ns);
          }
          if (traces != nullptr) {
            // One coalesced FindBatch served every request of the run;
            // each carries a copy of the shared fan-out/descent spans
            // plus the batch size — those cycles were genuinely shared.
            obs::RequestTrace& t = traces[j];
            obs::AppendRequestSpan(&t, obs::RequestSpanKind::kCoalesceWait,
                                   exec_start_ns, wait_ns);
            AppendCollectedSpans(&t, collector);
            t.batch_keys = static_cast<uint32_t>(batch_keys.size());
            t.service_ns = ns;
            t.status = kStatusOk;
          }
        }
        i = end;
        continue;
      }
      ExecuteSingle(c, p, traces != nullptr ? &traces[i] : nullptr,
                    exec_start, exec_start_ns);
      ++i;
    }
    obs::ClearTraceRequestContext();

    server->in_flight_.fetch_sub(static_cast<int64_t>(pipeline.size()),
                                 std::memory_order_relaxed);
    m.in_flight->Set(static_cast<double>(
        server->in_flight_.load(std::memory_order_relaxed)));
  }

  void ExecuteSingle(Conn* c, const PendingRequest& p,
                     obs::RequestTrace* trace, uint64_t exec_start,
                     uint64_t exec_start_ns) {
    NetMetrics& m = server->metrics_;
    const Request& r = p.req;
    if (p.rc != DecodeResult::kOk) {
      const uint8_t status = p.rc == DecodeResult::kUnknownOp
                                 ? kStatusUnknownOp
                                 : kStatusMalformed;
      m.malformed->Add();
      AppendErrorResponse(&c->wbuf, r.opcode, status, r.request_id);
      if (trace != nullptr) trace->status = status;
      return;
    }
    obs::SetTraceRequestContext(c->id, r.request_id);
    obs::SpanCollector collector;
    uint64_t wait_ns = 0;
    if (trace != nullptr) {
      wait_ns = ElapsedNs(exec_start);
      obs::SetActiveSpanCollector(&collector);
    }
    const uint64_t start = CycleTimer::Now();
    MaybeTestStall(&r.key, 1);
    obs::LogHistogram* hist = nullptr;
    switch (r.opcode) {
      case kOpLowerBound: {
        uint64_t out_key = 0, out_value = 0;
        const bool found =
            server->backend_->LowerBound(r.key, &out_key, &out_value);
        AppendResponseFrame(
            &c->wbuf, kOpLowerBound, kStatusOk, r.request_id,
            found ? 17 : 1, [&](std::vector<uint8_t>* o) {
              PutU8(o, found ? 1 : 0);
              if (found) {
                PutU64(o, out_key);
                PutU64(o, out_value);
              }
            });
        hist = m.op_lower_bound_ns;
        break;
      }
      case kOpPut:
        server->backend_->Put(r.key, r.value);
        AppendResponseFrame(&c->wbuf, kOpPut, kStatusOk, r.request_id, 0,
                            [](std::vector<uint8_t>*) {});
        hist = m.op_put_ns;
        break;
      case kOpDel: {
        const bool erased = server->backend_->Del(r.key);
        AppendResponseFrame(&c->wbuf, kOpDel, kStatusOk, r.request_id, 1,
                            [erased](std::vector<uint8_t>* o) {
                              PutU8(o, erased ? 1 : 0);
                            });
        hist = m.op_del_ns;
        break;
      }
      case kOpStats: {
        std::string json = server->backend_->StatsJson();
        if (json.size() > kMaxFrameBytes - 6) {
          json.resize(kMaxFrameBytes - 6);  // cap, never break framing
        }
        AppendResponseFrame(&c->wbuf, kOpStats, kStatusOk, r.request_id,
                            json.size(), [&json](std::vector<uint8_t>* o) {
                              o->insert(o->end(), json.begin(), json.end());
                            });
        hist = m.op_stats_ns;
        break;
      }
      default:
        // DecodeRequest only returns kOk for opcodes it knows; GET/MGET
        // never reach here (coalesced path).
        m.malformed->Add();
        AppendErrorResponse(&c->wbuf, r.opcode, kStatusUnknownOp,
                            r.request_id);
        if (trace != nullptr) {
          obs::SetActiveSpanCollector(nullptr);
          trace->status = kStatusUnknownOp;
        }
        return;
    }
    const uint64_t ns = ElapsedNs(start);
    hist->Record(ns);
    if (trace != nullptr) {
      obs::SetActiveSpanCollector(nullptr);
      obs::AppendRequestSpan(trace, obs::RequestSpanKind::kCoalesceWait,
                             exec_start_ns, wait_ns);
      if (collector.count > 0) {
        AppendCollectedSpans(trace, collector);
      } else {
        // Ops without wrapper hooks (single-key writes, stats): the
        // whole backend call is honestly one descent span.
        obs::AppendRequestSpan(trace, obs::RequestSpanKind::kDescent,
                               CyclesToNs(start), ns);
      }
      trace->service_ns = ns;
      trace->status = kStatusOk;
    }
  }

  // Flushes as much of wbuf as the socket accepts, applies the
  // backpressure policy, and closes when requested and fully flushed.
  // Returns false when the connection was closed.
  bool FlushAndManage(Conn* c, bool draining) {
    while (c->pending_write() > 0) {
      const ssize_t n = ::send(c->fd, c->wbuf.data() + c->woff,
                               c->pending_write(), MSG_NOSIGNAL);
      if (n > 0) {
        c->woff += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      CloseConn(c);  // peer gone
      return false;
    }
    if (c->woff == c->wbuf.size()) {
      c->wbuf.clear();
      c->woff = 0;
      if (c->close_after_flush) {
        CloseConn(c);
        return false;
      }
    } else if (c->woff > (1u << 16)) {
      c->wbuf.erase(c->wbuf.begin(),
                    c->wbuf.begin() + static_cast<ptrdiff_t>(c->woff));
      c->woff = 0;
    }
    // Backpressure: a peer that pipelines requests but does not drain
    // replies stops being read until its write buffer shrinks.
    const size_t pending = c->pending_write();
    if (!c->paused && pending > server->options_.write_buffer_limit) {
      c->paused = true;
      server->metrics_.backpressure_pauses->Add();
    } else if (c->paused &&
               pending < server->options_.write_buffer_limit / 2) {
      c->paused = false;
    }
    UpdateEvents(c, draining);
    return true;
  }

  // Closes idle connections and connections whose partial frame has
  // been incomplete for too long.
  void ScanTimeouts(int64_t now_ms) {
    std::vector<Conn*> doomed;
    for (auto& [fd, conn] : conns) {
      Conn* c = conn.get();
      if (c->partial_since_ms >= 0 &&
          now_ms - c->partial_since_ms >
              server->options_.request_timeout_ms) {
        doomed.push_back(c);
        continue;
      }
      if (c->pending_write() == 0 && c->partial_since_ms < 0 &&
          now_ms - c->last_rx_ms > server->options_.idle_timeout_ms) {
        doomed.push_back(c);
      }
    }
    for (Conn* c : doomed) {
      server->metrics_.timeouts->Add();
      CloseConn(c);
    }
  }

  void Run() {
    bool draining = false;
    int64_t drain_deadline = 0;
    epoll_event events[64];
    while (true) {
      // Continuous-profiler hookup: no-op (one acquire load) unless the
      // profiler is running; retried per wake so a profiler started
      // after the server still catches the worker threads.
      obs::ContinuousProfiler::Global().RegisterCurrentThread();
      if (!draining &&
          !server->running_.load(std::memory_order_acquire)) {
        draining = true;
        drain_deadline = NowMs() + server->options_.drain_timeout_ms;
        // Connections the kernel already established sit in the accept
        // queue until we accept4() them; closing the listener would RST
        // them mid-handshake. Adopt them first, then stop listening.
        Accept();
        ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
        ::close(listen_fd);
        listen_fd = -1;
        // One final gulp per connection: execute pipelines the kernel
        // already holds, then stop reading and flush.
        std::vector<int> fds;
        fds.reserve(conns.size());
        for (auto& [fd, conn] : conns) fds.push_back(fd);
        for (int fd : fds) {
          auto it = conns.find(fd);
          if (it == conns.end()) continue;
          Conn* c = it->second.get();
          if (!HandleReadable(c, /*draining=*/true)) continue;
          it = conns.find(fd);
          if (it == conns.end()) continue;
          c = it->second.get();
          c->close_after_flush = true;
          if (!FlushAndManage(c, /*draining=*/true)) continue;
        }
      }
      if (draining && (conns.empty() || NowMs() >= drain_deadline)) break;

      const int n = ::epoll_wait(epoll_fd, events, 64, /*timeout_ms=*/100);
      for (int e = 0; e < n; ++e) {
        const int fd = events[e].data.fd;
        if (fd == wake_fd) {
          uint64_t tmp;
          [[maybe_unused]] ssize_t r = ::read(wake_fd, &tmp, sizeof(tmp));
          continue;
        }
        if (fd == listen_fd) {
          if (!draining) Accept();
          continue;
        }
        auto it = conns.find(fd);
        if (it == conns.end()) continue;
        Conn* c = it->second.get();
        if (events[e].events & (EPOLLERR | EPOLLHUP)) {
          CloseConn(c);
          continue;
        }
        if ((events[e].events & EPOLLIN) && !draining) {
          if (!HandleReadable(c, draining)) continue;
        }
        if (events[e].events & EPOLLOUT) {
          if (!FlushAndManage(c, draining)) continue;
        }
      }
      if (!draining) ScanTimeouts(NowMs());
    }
    // Drain deadline passed (or everything flushed): force-close.
    std::vector<int> leftover;
    for (auto& [fd, conn] : conns) leftover.push_back(fd);
    for (int fd : leftover) {
      auto it = conns.find(fd);
      if (it != conns.end()) CloseConn(it->second.get());
    }
  }
};

bool KvServer::Start(const KvServerOptions& options) {
  if (running_.load(std::memory_order_acquire)) return true;
  error_.clear();
  options_ = options;
  if (options_.num_workers < 1) options_.num_workers = 1;
  metrics_ = NetMetrics::Register();
  if (options_.request_sample != 0 || options_.request_slow_ns != 0) {
    obs::RequestTracer::Global().Configure(options_.request_sample,
                                           options_.request_slow_ns);
  }

  workers_.clear();
  uint16_t bound_port = options_.port;
  for (int w = 0; w < options_.num_workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->server = this;
    // Worker 0 resolves an ephemeral port; the rest join it via
    // SO_REUSEPORT so the kernel spreads accepts across all workers.
    if (!worker->Init(options_.bind_addr, bound_port, &error_)) {
      workers_.clear();
      return false;
    }
    if (w == 0) bound_port = worker->BoundPort();
    workers_.push_back(std::move(worker));
  }
  port_ = bound_port;
  in_flight_.store(0, std::memory_order_relaxed);
  // A successful (re)start is serving again: /healthz recovers from any
  // earlier drain.
  obs::SetHealthDraining(false);
  running_.store(true, std::memory_order_release);
  threads_.clear();
  threads_.reserve(workers_.size());
  for (auto& worker : workers_) {
    threads_.emplace_back([w = worker.get()] { w->Run(); });
  }
  return true;
}

KvServer::KvServer(KvBackend* backend) : backend_(backend) {}

KvServer::~KvServer() { Stop(); }

void KvServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
    workers_.clear();
    return;
  }
  // Flip /healthz to 503 "draining" BEFORE waking the workers: load
  // balancers must stop routing new traffic while in-flight pipelines
  // are still being flushed.
  obs::SetHealthDraining(true);
  for (auto& worker : workers_) worker->Wake();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  workers_.clear();
  port_ = 0;
}

}  // namespace simdtree::net
