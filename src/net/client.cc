#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace simdtree::net {

bool KvClient::Connect(const std::string& host, uint16_t port) {
  Close();
  error_.clear();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    error_ = "invalid address: " + host;
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    error_ = std::string("connect: ") + std::strerror(errno);
    Close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void KvClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  next_id_ = 1;
  pending_ = 0;
  sendbuf_.clear();
  recvbuf_.clear();
  recv_off_ = 0;
}

uint32_t KvClient::EnqueueGet(uint64_t key) {
  const uint32_t id = next_id_++;
  AppendGet(&sendbuf_, id, key);
  ++pending_;
  return id;
}

uint32_t KvClient::EnqueueMget(const uint64_t* keys, uint32_t n) {
  const uint32_t id = next_id_++;
  AppendMget(&sendbuf_, id, keys, n);
  ++pending_;
  return id;
}

uint32_t KvClient::EnqueueLowerBound(uint64_t key) {
  const uint32_t id = next_id_++;
  AppendLowerBound(&sendbuf_, id, key);
  ++pending_;
  return id;
}

uint32_t KvClient::EnqueuePut(uint64_t key, uint64_t value) {
  const uint32_t id = next_id_++;
  AppendPut(&sendbuf_, id, key, value);
  ++pending_;
  return id;
}

uint32_t KvClient::EnqueueDel(uint64_t key) {
  const uint32_t id = next_id_++;
  AppendDel(&sendbuf_, id, key);
  ++pending_;
  return id;
}

uint32_t KvClient::EnqueueStats() {
  const uint32_t id = next_id_++;
  AppendStats(&sendbuf_, id);
  ++pending_;
  return id;
}

bool KvClient::Flush() {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  size_t off = 0;
  while (off < sendbuf_.size()) {
    const ssize_t n = ::send(fd_, sendbuf_.data() + off,
                             sendbuf_.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    error_ = std::string("send: ") + std::strerror(errno);
    Close();
    return false;
  }
  sendbuf_.clear();
  return true;
}

bool KvClient::SendRaw(const void* data, size_t n) {
  sendbuf_.insert(sendbuf_.end(), static_cast<const uint8_t*>(data),
                  static_cast<const uint8_t*>(data) + n);
  return Flush();
}

bool KvClient::ReadReply(Response* out, int timeout_ms) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  while (true) {
    const uint8_t* payload;
    size_t payload_len, consumed;
    const int rc = ExtractFrame(recvbuf_.data(), recvbuf_.size(),
                                recv_off_, &payload, &payload_len,
                                &consumed);
    if (rc < 0) {
      error_ = "oversized response frame";
      Close();
      return false;
    }
    if (rc == 1) {
      const bool ok = DecodeResponse(payload, payload_len, out);
      recv_off_ += consumed;
      if (recv_off_ == recvbuf_.size()) {
        recvbuf_.clear();
        recv_off_ = 0;
      }
      if (!ok) {
        error_ = "undecodable response";
        Close();
        return false;
      }
      if (pending_ > 0) --pending_;
      return true;
    }
    // Need more bytes.
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr == 0) {
      error_ = "reply timeout";
      return false;
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("poll: ") + std::strerror(errno);
      Close();
      return false;
    }
    char buf[16 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      recvbuf_.insert(recvbuf_.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    error_ = n == 0 ? "connection closed by server"
                    : std::string("recv: ") + std::strerror(errno);
    Close();
    return false;
  }
}

bool KvClient::RoundTrip(Response* out) {
  if (!Flush()) return false;
  return ReadReply(out);
}

std::optional<uint64_t> KvClient::Get(uint64_t key) {
  EnqueueGet(key);
  Response r;
  if (!RoundTrip(&r) || r.status != kStatusOk || !r.found) {
    return std::nullopt;
  }
  return r.value;
}

bool KvClient::Put(uint64_t key, uint64_t value) {
  EnqueuePut(key, value);
  Response r;
  return RoundTrip(&r) && r.status == kStatusOk;
}

bool KvClient::Del(uint64_t key, bool* erased) {
  EnqueueDel(key);
  Response r;
  if (!RoundTrip(&r) || r.status != kStatusOk) return false;
  if (erased != nullptr) *erased = r.found;
  return true;
}

bool KvClient::LowerBound(uint64_t key, uint64_t* out_key,
                          uint64_t* out_value, bool* found) {
  EnqueueLowerBound(key);
  Response r;
  if (!RoundTrip(&r) || r.status != kStatusOk) return false;
  *found = r.found;
  if (r.found) {
    *out_key = r.key;
    *out_value = r.value;
  }
  return true;
}

bool KvClient::Mget(const std::vector<uint64_t>& keys,
                    std::vector<MgetEntry>* out) {
  EnqueueMget(keys.data(), static_cast<uint32_t>(keys.size()));
  Response r;
  if (!RoundTrip(&r) || r.status != kStatusOk) return false;
  *out = std::move(r.entries);
  return true;
}

bool KvClient::Stats(std::string* json) {
  EnqueueStats();
  Response r;
  if (!RoundTrip(&r) || r.status != kStatusOk) return false;
  *json = std::move(r.text);
  return true;
}

}  // namespace simdtree::net
