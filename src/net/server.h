// Pipelined binary-protocol KV server over a KvBackend.
//
// Architecture: N worker threads, each owning a private epoll instance
// and a private SO_REUSEPORT listening socket on the same address, so
// the kernel load-balances accepted connections across workers and no
// connection ever migrates between threads — per-connection state needs
// no locking. All sockets are non-blocking; the event loop is
// level-triggered.
//
// Serving model (the reason this server exists — see DESIGN.md
// "Serving path"): a connection's readable bytes are drained in one
// gulp, every complete frame is decoded, and maximal runs of
// consecutive read requests (GET / MGET) are coalesced into ONE
// KvBackend::FindBatch call — which ShardedIndex partitions by shard,
// locks once per shard, and descends with the grouped level-wise batch
// traversal once the run clears the UseGroupedDescent heuristic. Write
// ops (PUT / DEL) act as barriers: they execute at their pipeline
// position, so a client that pipelines PUT(k) followed by GET(k)
// observes its own write. Replies are encoded in request order, exactly
// one response frame per request frame.
//
// Robustness:
//   * malformed frames get a typed error reply (kStatusMalformed /
//     kStatusUnknownOp); framing-level violations (length prefix over
//     kMaxFrameBytes) get kStatusTooLarge and the connection is closed
//     (the stream cannot be resynced);
//   * per-connection read and write buffers are capped — a connection
//     whose write buffer exceeds write_buffer_limit stops being read
//     (backpressure) until the peer drains it;
//   * idle connections (no bytes for idle_timeout_ms) and stalled
//     partial frames (incomplete for request_timeout_ms) are closed;
//   * Stop() drains gracefully: accepting stops, already-received
//     pipelines are executed and their replies flushed (bounded by
//     drain_timeout_ms), then connections close.
//
// Observability: counters/gauges/histograms under "net.*" in the global
// MetricsRegistry (connections, in-flight requests, coalesced batch
// sizes, per-op service-time histograms, malformed/timeout counts), all
// exported by the existing /metrics surface. Sampled descents triggered
// by a connection's requests carry the connection and wire request id
// (obs::SetTraceRequestContext) into /tracez. When the request tracer
// (obs/request_trace.h) is armed, every wire request additionally
// accumulates end-to-end spans — socket_read, coalesce_wait,
// shard_fanout, descent, write_flush — with tail-based retention into
// /requestz, and retained trace ids surface as OpenMetrics exemplars on
// the per-op latency histograms. Stop() flips the process-wide drain
// flag (obs::SetHealthDraining) before closing listeners, so /healthz
// turns 503 "draining" while in-flight pipelines finish.

#ifndef SIMDTREE_NET_SERVER_H_
#define SIMDTREE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/backend.h"
#include "obs/metrics.h"

namespace simdtree::net {

struct KvServerOptions {
  uint16_t port = 0;                  // 0 = ephemeral (read back via port())
  std::string bind_addr = "127.0.0.1";
  int num_workers = 2;                // epoll worker threads
  size_t write_buffer_limit = 4u << 20;   // backpressure threshold (bytes)
  size_t read_buffer_limit = 4u << 20;    // pipeline bytes read per conn
  int idle_timeout_ms = 60000;        // close after this much silence
  int request_timeout_ms = 5000;      // max age of an incomplete frame
  int drain_timeout_ms = 2000;        // graceful-stop flush bound

  // Request-span tail sampling (obs/request_trace.h): a nonzero value
  // in either field (re)configures the global RequestTracer on Start —
  // head-sample 1 in request_sample completed requests, always retain
  // requests slower than request_slow_ns end-to-end. Both zero leaves
  // the tracer's existing (env-derived) configuration untouched.
  uint32_t request_sample = 0;
  uint64_t request_slow_ns = 0;

  // Test hook: when test_slow_ns is nonzero, any request touching
  // test_slow_key stalls that long inside its timed execute region.
  // Differential tests use it to manufacture one deterministic
  // slow-threshold breach; production configs leave it zero.
  uint64_t test_slow_key = 0;
  uint64_t test_slow_ns = 0;
};

// Pre-resolved "net.*" metric pointers (one relaxed atomic op each on
// the hot path). Shared by all workers of one server.
struct NetMetrics {
  obs::Counter* accepted = nullptr;
  obs::Counter* closed = nullptr;
  obs::Counter* requests = nullptr;
  obs::Counter* malformed = nullptr;
  obs::Counter* timeouts = nullptr;
  obs::Counter* backpressure_pauses = nullptr;
  obs::Gauge* connections = nullptr;
  obs::Gauge* in_flight = nullptr;
  obs::LogHistogram* coalesced_batch = nullptr;  // keys per FindBatch call
  obs::LogHistogram* op_get_ns = nullptr;
  obs::LogHistogram* op_mget_ns = nullptr;
  obs::LogHistogram* op_lower_bound_ns = nullptr;
  obs::LogHistogram* op_put_ns = nullptr;
  obs::LogHistogram* op_del_ns = nullptr;
  obs::LogHistogram* op_stats_ns = nullptr;

  // Exemplar stores paired with the per-op histograms: trace ids of
  // tail-retained requests are offered here and surface on /metrics
  // bucket lines, linking a scrape's p999 bucket to /requestz.
  obs::ExemplarStore* ex_get = nullptr;
  obs::ExemplarStore* ex_mget = nullptr;
  obs::ExemplarStore* ex_lower_bound = nullptr;
  obs::ExemplarStore* ex_put = nullptr;
  obs::ExemplarStore* ex_del = nullptr;

  static NetMetrics Register();
};

class KvServer {
 public:
  // The backend is borrowed; it must outlive the server.
  // Out-of-line because Worker is incomplete here (unique_ptr member).
  explicit KvServer(KvBackend* backend);
  ~KvServer();  // Stops the server if running

  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  // Binds the listening sockets and starts the worker threads. Returns
  // false with the OS error in error(). Start on a running server is a
  // no-op returning true.
  bool Start(const KvServerOptions& options);

  // Graceful drain: stops accepting, executes already-received
  // pipelines, flushes replies (bounded by drain_timeout_ms), closes
  // every connection, joins the workers. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // The bound port (resolves an ephemeral bind); 0 before Start.
  uint16_t port() const { return port_; }

  const std::string& error() const { return error_; }

 private:
  struct Worker;  // defined in server.cc (epoll state, connection table)

  KvBackend* backend_;
  KvServerOptions options_;
  NetMetrics metrics_;
  uint16_t port_ = 0;
  std::string error_;
  std::atomic<bool> running_{false};
  std::atomic<uint32_t> next_conn_id_{1};
  std::atomic<int64_t> in_flight_{0};  // requests parsed, reply not sent
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  friend struct Worker;
};

}  // namespace simdtree::net

#endif  // SIMDTREE_NET_SERVER_H_
