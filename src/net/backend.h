// Storage interface the KV server speaks to, plus the ShardedIndex
// adapter that implements it.
//
// net/server.cc is a plain (non-template) translation unit; KvBackend is
// the seam that keeps it that way. The serving hot path is FindBatch:
// the server hands over every read key of a connection's coalesced
// pipeline in one call, and the adapter forwards to
// ShardedIndex::FindBatch — shard-partitioned, one lock acquisition per
// shard, grouped level-wise descent when the batch clears the
// UseGroupedDescent heuristic. Single-key writes and lower-bound probes
// map one to one.
//
// Thread safety: the server calls a backend from several worker threads
// concurrently; ShardedKvBackend inherits ShardedIndex's per-shard
// locking, so no extra synchronization is needed.

#ifndef SIMDTREE_NET_BACKEND_H_
#define SIMDTREE_NET_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "core/sharded.h"
#include "obs/metrics.h"

namespace simdtree::net {

class KvBackend {
 public:
  virtual ~KvBackend() = default;

  // out[i] = value of keys[i] or nullopt; the coalesced read hot path.
  virtual void FindBatch(const uint64_t* keys, size_t n,
                         std::optional<uint64_t>* out) = 0;

  // Smallest stored key >= key. Returns false when no such key exists.
  virtual bool LowerBound(uint64_t key, uint64_t* out_key,
                          uint64_t* out_value) = 0;

  virtual void Put(uint64_t key, uint64_t value) = 0;
  virtual bool Del(uint64_t key) = 0;

  // One JSON document for the STATS op (the metrics registry dump).
  virtual std::string StatsJson() = 0;
};

// Adapter over a ShardedIndex whose Index stores uint64 keys/values
// (the serve-kv instantiation: ShardedIndex<SegTree<u64, u64>>). The
// sharded index is borrowed, not owned — the caller keeps it alive for
// the server's lifetime.
template <typename Index>
class ShardedKvBackend final : public KvBackend {
  static_assert(sizeof(typename Index::KeyType) == 8 &&
                    sizeof(typename Index::ValueType) == 8,
                "the wire protocol carries 64-bit keys and values");

 public:
  explicit ShardedKvBackend(ShardedIndex<Index>* index) : index_(index) {}

  void FindBatch(const uint64_t* keys, size_t n,
                 std::optional<uint64_t>* out) override {
    index_->FindBatch(keys, n, out);
  }

  bool LowerBound(uint64_t key, uint64_t* out_key,
                  uint64_t* out_value) override {
    // The owning shard holds every stored key >= `key` up to its right
    // splitter; if it has none, the answer is the first key of the next
    // non-empty shard (shards partition the domain in key order).
    for (size_t s = index_->ShardOf(key); s < index_->num_shards(); ++s) {
      const bool found = index_->WithShardRead(s, [&](const Index& idx) {
        auto it = idx.LowerBoundIter(key);
        if (!it.valid()) return false;
        *out_key = it.key();
        *out_value = it.value();
        return true;
      });
      if (found) return true;
    }
    return false;
  }

  void Put(uint64_t key, uint64_t value) override {
    index_->Insert(key, value);
  }

  bool Del(uint64_t key) override { return index_->Erase(key); }

  std::string StatsJson() override {
    return obs::MetricsRegistry::Global().ToJson();
  }

 private:
  ShardedIndex<Index>* index_;
};

}  // namespace simdtree::net

#endif  // SIMDTREE_NET_BACKEND_H_
