// Wire protocol for the key-value serving path: length-prefixed binary
// frames over a byte stream (TCP), designed for pipelining.
//
// A client may write any number of request frames back to back without
// waiting; the server replies with exactly one response frame per
// request, in request order. That pipelining contract is what lets the
// server coalesce a connection's in-flight reads into one grouped
// FindBatch descent (net/server.cc) — the wire-level twin of the
// level-wise batch traversal (DESIGN.md "Batched traversal").
//
// Frame layout (all integers little-endian, no alignment):
//
//   [u32 length] [payload: length bytes]
//
// `length` counts the payload only, and is capped at kMaxFrameBytes —
// a frame claiming more is unrecoverable (the stream cannot be resynced)
// and the server replies kStatusTooLarge and closes.
//
// Request payload:   [u8 opcode] [u32 request_id] [body]
// Response payload:  [u8 opcode] [u8 status] [u32 request_id] [body]
//
// The request_id is an opaque client token echoed verbatim; clients use
// it to match pipelined replies (and the trace flight recorder records
// it, so a slow wire request can be joined against its descent trace).
//
// Bodies per opcode (request -> OK response):
//   GET          u64 key               -> u8 found [, u64 value]
//   MGET         u32 n, n x u64 keys   -> u32 n, n x (u8 found, u64 value)
//   LOWER_BOUND  u64 key               -> u8 found [, u64 key, u64 value]
//   PUT          u64 key, u64 value    -> (empty)
//   DEL          u64 key               -> u8 erased
//   STATS        (empty)               -> JSON text (rest of payload)
//
// Error responses (status != kStatusOk) carry an empty body; the opcode
// echoes the request's opcode when it was parseable, kOpNone otherwise.
// MGET responses encode absent keys as found=0, value=0 — fixed 9-byte
// elements keep the decoder branch-free.

#ifndef SIMDTREE_NET_PROTOCOL_H_
#define SIMDTREE_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace simdtree::net {

// Hard cap on one frame's payload. Large enough for an MGET of
// kMaxMgetKeys and a STATS JSON dump; small enough that a hostile
// length prefix cannot balloon a connection's read buffer.
inline constexpr size_t kMaxFrameBytes = 1u << 20;  // 1 MiB

// Elements per MGET. Bounded separately from the byte cap so the
// server's coalescing scratch arrays stay modest.
inline constexpr uint32_t kMaxMgetKeys = 65536;

inline constexpr uint8_t kOpNone = 0;  // error replies to unparseable frames
inline constexpr uint8_t kOpGet = 1;
inline constexpr uint8_t kOpMget = 2;
inline constexpr uint8_t kOpLowerBound = 3;
inline constexpr uint8_t kOpPut = 4;
inline constexpr uint8_t kOpDel = 5;
inline constexpr uint8_t kOpStats = 6;

inline constexpr uint8_t kStatusOk = 0;
inline constexpr uint8_t kStatusMalformed = 1;    // body/opcode violations
inline constexpr uint8_t kStatusUnknownOp = 2;    // opcode outside the table
inline constexpr uint8_t kStatusTooLarge = 3;     // frame over kMaxFrameBytes
inline constexpr uint8_t kStatusShuttingDown = 4; // server draining

inline const char* OpName(uint8_t op) {
  switch (op) {
    case kOpGet: return "get";
    case kOpMget: return "mget";
    case kOpLowerBound: return "lower_bound";
    case kOpPut: return "put";
    case kOpDel: return "del";
    case kOpStats: return "stats";
    default: return "none";
  }
}

inline const char* StatusName(uint8_t status) {
  switch (status) {
    case kStatusOk: return "ok";
    case kStatusMalformed: return "malformed";
    case kStatusUnknownOp: return "unknown_op";
    case kStatusTooLarge: return "too_large";
    case kStatusShuttingDown: return "shutting_down";
    default: return "unknown";
  }
}

// --- little-endian scalar append/read (unaligned-safe) ---------------------

inline void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

inline void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  uint8_t b[4];
  std::memcpy(b, &v, 4);  // x86 is little-endian; memcpy keeps it UB-free
  out->insert(out->end(), b, b + 4);
}

inline void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  uint8_t b[8];
  std::memcpy(b, &v, 8);
  out->insert(out->end(), b, b + 8);
}

inline uint32_t ReadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t ReadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// --- parsed request --------------------------------------------------------

// One decoded request frame. For MGET the keys live in `keys`; every
// single-key op uses `key` (PUT also `value`).
struct Request {
  uint8_t opcode = kOpNone;
  uint32_t request_id = 0;
  uint64_t key = 0;
  uint64_t value = 0;
  std::vector<uint64_t> keys;  // MGET only
};

// Outcome of decoding one complete frame payload.
enum class DecodeResult {
  kOk,
  kMalformed,   // body length inconsistent with the opcode
  kUnknownOp,   // opcode not in the table
};

// Decodes a complete request payload (the bytes after the u32 length
// prefix). On kMalformed/kUnknownOp, req->request_id is still filled
// when the header was readable, so the error reply can echo it.
inline DecodeResult DecodeRequest(const uint8_t* p, size_t n, Request* req) {
  *req = Request{};
  if (n < 5) return DecodeResult::kMalformed;  // opcode + request_id
  req->opcode = p[0];
  req->request_id = ReadU32(p + 1);
  const uint8_t* body = p + 5;
  const size_t body_len = n - 5;
  switch (req->opcode) {
    case kOpGet:
    case kOpLowerBound:
    case kOpDel:
      if (body_len != 8) return DecodeResult::kMalformed;
      req->key = ReadU64(body);
      return DecodeResult::kOk;
    case kOpPut:
      if (body_len != 16) return DecodeResult::kMalformed;
      req->key = ReadU64(body);
      req->value = ReadU64(body + 8);
      return DecodeResult::kOk;
    case kOpMget: {
      if (body_len < 4) return DecodeResult::kMalformed;
      const uint32_t count = ReadU32(body);
      if (count > kMaxMgetKeys) return DecodeResult::kMalformed;
      if (body_len != 4 + static_cast<size_t>(count) * 8) {
        return DecodeResult::kMalformed;
      }
      req->keys.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        req->keys[i] = ReadU64(body + 4 + static_cast<size_t>(i) * 8);
      }
      return DecodeResult::kOk;
    }
    case kOpStats:
      if (body_len != 0) return DecodeResult::kMalformed;
      return DecodeResult::kOk;
    default:
      return DecodeResult::kUnknownOp;
  }
}

// --- request encoding (client side) ----------------------------------------

// Appends [length][opcode][request_id][body] to `out`. The body writer
// is a callback so each op encodes in place without a temp copy.
template <typename BodyFn>
inline void AppendRequestFrame(std::vector<uint8_t>* out, uint8_t opcode,
                               uint32_t request_id, size_t body_len,
                               BodyFn&& body) {
  PutU32(out, static_cast<uint32_t>(5 + body_len));
  PutU8(out, opcode);
  PutU32(out, request_id);
  const size_t before = out->size();
  body(out);
  (void)before;
  // The caller-declared body_len keeps the length prefix honest.
}

inline void AppendGet(std::vector<uint8_t>* out, uint32_t id, uint64_t key) {
  AppendRequestFrame(out, kOpGet, id, 8,
                     [key](std::vector<uint8_t>* o) { PutU64(o, key); });
}

inline void AppendLowerBound(std::vector<uint8_t>* out, uint32_t id,
                             uint64_t key) {
  AppendRequestFrame(out, kOpLowerBound, id, 8,
                     [key](std::vector<uint8_t>* o) { PutU64(o, key); });
}

inline void AppendDel(std::vector<uint8_t>* out, uint32_t id, uint64_t key) {
  AppendRequestFrame(out, kOpDel, id, 8,
                     [key](std::vector<uint8_t>* o) { PutU64(o, key); });
}

inline void AppendPut(std::vector<uint8_t>* out, uint32_t id, uint64_t key,
                      uint64_t value) {
  AppendRequestFrame(out, kOpPut, id, 16,
                     [key, value](std::vector<uint8_t>* o) {
                       PutU64(o, key);
                       PutU64(o, value);
                     });
}

inline void AppendMget(std::vector<uint8_t>* out, uint32_t id,
                       const uint64_t* keys, uint32_t n) {
  AppendRequestFrame(out, kOpMget, id, 4 + static_cast<size_t>(n) * 8,
                     [keys, n](std::vector<uint8_t>* o) {
                       PutU32(o, n);
                       for (uint32_t i = 0; i < n; ++i) PutU64(o, keys[i]);
                     });
}

inline void AppendStats(std::vector<uint8_t>* out, uint32_t id) {
  AppendRequestFrame(out, kOpStats, id, 0, [](std::vector<uint8_t>*) {});
}

// --- response encoding (server side) ---------------------------------------

// Appends [length][opcode][status][request_id][body].
template <typename BodyFn>
inline void AppendResponseFrame(std::vector<uint8_t>* out, uint8_t opcode,
                                uint8_t status, uint32_t request_id,
                                size_t body_len, BodyFn&& body) {
  PutU32(out, static_cast<uint32_t>(6 + body_len));
  PutU8(out, opcode);
  PutU8(out, status);
  PutU32(out, request_id);
  body(out);
}

inline void AppendErrorResponse(std::vector<uint8_t>* out, uint8_t opcode,
                                uint8_t status, uint32_t request_id) {
  AppendResponseFrame(out, opcode, status, request_id, 0,
                      [](std::vector<uint8_t>*) {});
}

// --- parsed response (client side) -----------------------------------------

struct MgetEntry {
  bool found = false;
  uint64_t value = 0;
};

struct Response {
  uint8_t opcode = kOpNone;
  uint8_t status = kStatusOk;
  uint32_t request_id = 0;
  bool found = false;        // GET / LOWER_BOUND / DEL (erased)
  uint64_t key = 0;          // LOWER_BOUND result key
  uint64_t value = 0;        // GET / LOWER_BOUND value
  std::vector<MgetEntry> entries;  // MGET
  std::string text;          // STATS JSON
};

// Decodes a complete response payload (bytes after the length prefix).
// Returns false when the payload does not match its opcode's shape.
inline bool DecodeResponse(const uint8_t* p, size_t n, Response* resp) {
  *resp = Response{};
  if (n < 6) return false;
  resp->opcode = p[0];
  resp->status = p[1];
  resp->request_id = ReadU32(p + 2);
  const uint8_t* body = p + 6;
  const size_t body_len = n - 6;
  if (resp->status != kStatusOk) return body_len == 0;
  switch (resp->opcode) {
    case kOpGet:
      if (body_len < 1) return false;
      resp->found = body[0] != 0;
      if (resp->found) {
        if (body_len != 9) return false;
        resp->value = ReadU64(body + 1);
      } else if (body_len != 1) {
        return false;
      }
      return true;
    case kOpLowerBound:
      if (body_len < 1) return false;
      resp->found = body[0] != 0;
      if (resp->found) {
        if (body_len != 17) return false;
        resp->key = ReadU64(body + 1);
        resp->value = ReadU64(body + 9);
      } else if (body_len != 1) {
        return false;
      }
      return true;
    case kOpDel:
      if (body_len != 1) return false;
      resp->found = body[0] != 0;
      return true;
    case kOpPut:
      return body_len == 0;
    case kOpMget: {
      if (body_len < 4) return false;
      const uint32_t count = ReadU32(body);
      if (count > kMaxMgetKeys ||
          body_len != 4 + static_cast<size_t>(count) * 9) {
        return false;
      }
      resp->entries.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        const uint8_t* e = body + 4 + static_cast<size_t>(i) * 9;
        resp->entries[i].found = e[0] != 0;
        resp->entries[i].value = ReadU64(e + 1);
      }
      return true;
    }
    case kOpStats:
      resp->text.assign(reinterpret_cast<const char*>(body), body_len);
      return true;
    default:
      return false;
  }
}

// --- incremental frame extraction ------------------------------------------

// Pulls the next complete frame out of buf[off..size). Returns:
//   1  frame complete: *payload/*payload_len point into buf, *consumed
//      is the total frame size (prefix + payload)
//   0  need more bytes
//  -1  unrecoverable framing violation (length over kMaxFrameBytes)
inline int ExtractFrame(const uint8_t* buf, size_t size, size_t off,
                        const uint8_t** payload, size_t* payload_len,
                        size_t* consumed) {
  if (size - off < 4) return 0;
  const uint32_t len = ReadU32(buf + off);
  if (len > kMaxFrameBytes) return -1;
  if (size - off < 4 + static_cast<size_t>(len)) return 0;
  *payload = buf + off + 4;
  *payload_len = len;
  *consumed = 4 + static_cast<size_t>(len);
  return 1;
}

}  // namespace simdtree::net

#endif  // SIMDTREE_NET_PROTOCOL_H_
