// Blocking pipelined client for the KV serving protocol (net/protocol.h).
//
// The client separates *enqueue* from *completion* so callers control
// the pipeline depth — the lever that drives the server's coalescing:
//
//   KvClient c;
//   c.Connect("127.0.0.1", port);
//   for (int i = 0; i < depth; ++i) c.EnqueueGet(keys[i]);
//   c.Flush();                        // one write() for the whole burst
//   Response r;
//   while (c.PendingReplies() > 0) c.ReadReply(&r);
//
// Replies arrive in request order (the server's contract); ReadReply
// blocks until the next complete response frame (or the timeout).
// Convenience synchronous wrappers (Get/Put/...) enqueue, flush, and
// read one reply — pipeline depth 1.
//
// Not thread-safe: one KvClient per thread (the load generator opens
// one per connection).

#ifndef SIMDTREE_NET_CLIENT_H_
#define SIMDTREE_NET_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace simdtree::net {

class KvClient {
 public:
  KvClient() = default;
  ~KvClient() { Close(); }

  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;

  // Connects (blocking) to host:port. Returns false with the OS error
  // in error().
  bool Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }

  // --- pipelined API ------------------------------------------------------

  // Each Enqueue* appends one request frame to the send buffer and
  // returns its request id (a per-connection sequence number).
  uint32_t EnqueueGet(uint64_t key);
  uint32_t EnqueueMget(const uint64_t* keys, uint32_t n);
  uint32_t EnqueueLowerBound(uint64_t key);
  uint32_t EnqueuePut(uint64_t key, uint64_t value);
  uint32_t EnqueueDel(uint64_t key);
  uint32_t EnqueueStats();

  // Sends the whole buffered burst. Returns false on a socket error.
  bool Flush();

  // Requests enqueued (and flushed) whose replies have not been read.
  size_t PendingReplies() const { return pending_; }

  // Blocks until the next complete response frame, decodes it into
  // *out. Returns false on timeout, socket error, or an undecodable
  // response (error() says which; the connection is closed on the
  // latter two).
  bool ReadReply(Response* out, int timeout_ms = 5000);

  // Sends raw bytes as-is — test hook for malformed-frame injection.
  bool SendRaw(const void* data, size_t n);

  // --- synchronous convenience (depth-1 pipelines) ------------------------

  std::optional<uint64_t> Get(uint64_t key);
  bool Put(uint64_t key, uint64_t value);
  bool Del(uint64_t key, bool* erased = nullptr);
  bool LowerBound(uint64_t key, uint64_t* out_key, uint64_t* out_value,
                  bool* found);
  bool Mget(const std::vector<uint64_t>& keys,
            std::vector<MgetEntry>* out);
  bool Stats(std::string* json);

 private:
  bool RoundTrip(Response* out);

  int fd_ = -1;
  uint32_t next_id_ = 1;
  size_t pending_ = 0;
  std::vector<uint8_t> sendbuf_;
  std::vector<uint8_t> recvbuf_;
  size_t recv_off_ = 0;
  std::string error_;
};

}  // namespace simdtree::net

#endif  // SIMDTREE_NET_CLIENT_H_
