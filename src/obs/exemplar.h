// OpenMetrics exemplars for LogHistogram: one (value, trace id) pair
// retained per raw histogram bucket, last-writer-wins.
//
// An exemplar links a histogram bucket in the /metrics exposition to a
// concrete inspectable request in /requestz — the operator sees the
// p999 bucket climb and follows the attached trace id instead of
// guessing which request class is responsible. The store is sized to
// the histogram's bucket geometry (obs/histogram.h), so an exemplar
// offered with the same value that was Record()ed lands in exactly the
// bucket whose rendered `le` range contains it — the OpenMetrics
// "exemplar value must be within the bucket's range" rule holds by
// construction, and the bucket is never empty (the Record that
// motivated the Offer occupies it).
//
// Concurrency: per-slot seqlock with CAS-acquired write brackets.
// Writers that lose the CAS drop their exemplar (retention is
// best-effort by design; the histogram itself is the source of truth).
// Readers reject in-flight or replaced slots by rechecking the seq, so
// a rendered exemplar is never a torn mix of two requests — which
// matters, because a torn (value, id) pair could place a trace id in a
// bucket whose range excludes the value.

#ifndef SIMDTREE_OBS_EXEMPLAR_H_
#define SIMDTREE_OBS_EXEMPLAR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "obs/histogram.h"

namespace simdtree::obs {

class ExemplarStore {
 public:
  struct Exemplar {
    uint64_t value = 0;
    uint64_t trace_id = 0;
  };

  ExemplarStore() = default;
  ExemplarStore(const ExemplarStore&) = delete;
  ExemplarStore& operator=(const ExemplarStore&) = delete;

  // Attaches `trace_id` to the bucket that `value` Records into.
  // Wait-free: one CAS attempt; contention drops the offer.
  void Offer(uint64_t value, uint64_t trace_id) {
    Slot& s = slots_[LogHistogram::BucketIndex(value)];
    uint32_t seq = s.seq.load(std::memory_order_relaxed);
    if ((seq & 1) != 0) return;  // another writer mid-flight
    if (!s.seq.compare_exchange_weak(seq, seq + 1,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      return;
    }
    s.value.store(value, std::memory_order_relaxed);
    s.trace_id.store(trace_id, std::memory_order_relaxed);
    s.seq.store(seq + 2, std::memory_order_release);
  }

  // Reads bucket b's exemplar. False for never-written slots and when
  // a concurrent Offer made the snapshot torn.
  bool Read(size_t bucket, Exemplar* out) const {
    const Slot& s = slots_[bucket];
    const uint32_t before = s.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) return false;
    out->value = s.value.load(std::memory_order_relaxed);
    out->trace_id = s.trace_id.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    return s.seq.load(std::memory_order_relaxed) == before;
  }

  // Test isolation only.
  void Reset() {
    for (Slot& s : slots_) {
      s.seq.store(0, std::memory_order_relaxed);
      s.value.store(0, std::memory_order_relaxed);
      s.trace_id.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Slot {
    std::atomic<uint32_t> seq{0};
    std::atomic<uint64_t> value{0};
    std::atomic<uint64_t> trace_id{0};
  };
  Slot slots_[LogHistogram::kBuckets];
};

}  // namespace simdtree::obs

#endif  // SIMDTREE_OBS_EXEMPLAR_H_
