#include "obs/perf_counters.h"

#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace simdtree::obs {

namespace {

bool DisabledByEnv() {
  const char* env = std::getenv("SIMDTREE_DISABLE_PERF");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

#if defined(__linux__)

// The fixed event set, leader first. Order must match the fds_ array and
// the read layout below.
struct EventSpec {
  uint32_t type;
  uint64_t config;
};

constexpr EventSpec kEventSpecs[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_DTLB | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
};

int OpenEvent(const EventSpec& spec, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // leader starts disabled
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid = 0, cpu = -1: this thread, on whatever CPU it runs.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

bool ProbeOnce() {
  // Opening just the leader is enough to learn whether the syscall is
  // permitted; a denied PMU fails here with EACCES/EPERM/ENOSYS.
  const int fd = OpenEvent(kEventSpecs[0], -1);
  if (fd < 0) return false;
  close(fd);
  return true;
}

#endif  // __linux__

}  // namespace

bool PerfCounterGroup::Available() {
  if (DisabledByEnv()) return false;
#if defined(__linux__)
  static const bool probed = ProbeOnce();
  return probed;
#else
  return false;
#endif
}

PerfCounterGroup::PerfCounterGroup() {
#if defined(__linux__)
  if (!Available()) return;
  for (int i = 0; i < kEvents; ++i) {
    fds_[i] = OpenEvent(kEventSpecs[i], i == 0 ? -1 : fds_[0]);
    if (fds_[i] < 0) {
      // Partial group (e.g. LLC event unsupported on this PMU): tear
      // down and degrade rather than report a lopsided sample.
      for (int j = 0; j < i; ++j) {
        close(fds_[j]);
        fds_[j] = -1;
      }
      return;
    }
  }
  leader_fd_ = fds_[0];
#endif
}

PerfCounterGroup::~PerfCounterGroup() {
#if defined(__linux__)
  for (int i = 0; i < kEvents; ++i) {
    if (fds_[i] >= 0) close(fds_[i]);
  }
#endif
}

void PerfCounterGroup::Start() {
#if defined(__linux__)
  if (!ok()) return;
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
#endif
}

HwCounts PerfCounterGroup::Stop() {
  HwCounts out;
#if defined(__linux__)
  if (!ok()) return out;
  ioctl(leader_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  struct {
    uint64_t nr;
    uint64_t time_enabled;
    uint64_t time_running;
    uint64_t values[kEvents];
  } reading;
  const ssize_t got = read(leader_fd_, &reading, sizeof(reading));
  if (got != static_cast<ssize_t>(sizeof(reading)) ||
      reading.nr != kEvents) {
    return out;
  }
  // Multiplex extrapolation: the group ran time_running of the
  // time_enabled window; counts scale by the inverse ratio.
  double scale = 1.0;
  if (reading.time_running > 0 &&
      reading.time_running < reading.time_enabled) {
    scale = static_cast<double>(reading.time_enabled) /
            static_cast<double>(reading.time_running);
  } else if (reading.time_running == 0) {
    return out;  // never scheduled: no data to extrapolate from
  }
  out.valid = true;
  out.scale = scale;
  out.cycles = static_cast<double>(reading.values[0]) * scale;
  out.instructions = static_cast<double>(reading.values[1]) * scale;
  out.llc_misses = static_cast<double>(reading.values[2]) * scale;
  out.branch_misses = static_cast<double>(reading.values[3]) * scale;
  out.dtlb_misses = static_cast<double>(reading.values[4]) * scale;
#endif
  return out;
}

}  // namespace simdtree::obs
