#include "obs/metrics.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "core/olc.h"
#include "simd/dispatch.h"

namespace simdtree::obs {

namespace {

// Captured at static initialization so process_uptime_seconds measures
// from load, not from the first scrape.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

// Minimal escaping for metric names (quotes and backslashes only; names
// are ASCII identifiers by convention).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FmtU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LogHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LogHistogram>();
  return slot.get();
}

ExemplarStore* MetricsRegistry::GetExemplars(
    const std::string& histogram_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = exemplars_[histogram_name];
  if (slot == nullptr) slot = std::make_unique<ExemplarStore>();
  return slot.get();
}

void MetricsRegistry::SetInfo(const std::string& name, LabelSet labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  infos_[name] = std::move(labels);
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + FmtU64(counter->Get());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + FmtDouble(gauge->Get());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{";
    out += "\"count\":" + FmtU64(hist->Count());
    out += ",\"mean\":" + FmtDouble(hist->Mean());
    out += ",\"p50\":" + FmtU64(hist->Percentile(0.50));
    out += ",\"p95\":" + FmtU64(hist->Percentile(0.95));
    out += ",\"p99\":" + FmtU64(hist->Percentile(0.99));
    out += ",\"p999\":" + FmtU64(hist->Percentile(0.999));
    out += ",\"max\":" + FmtU64(hist->Max());
    out += "}";
  }
  out += "}";
  // Info metrics render as label-set objects. Emitted only when
  // present, so documents from registries that never call SetInfo keep
  // their historical shape.
  if (!infos_.empty()) {
    out += ",\"infos\":{";
    first = true;
    for (const auto& [name, labels] : infos_) {
      if (!first) out += ",";
      first = false;
      out += "\"" + JsonEscape(name) + "\":{";
      bool first_label = true;
      for (const auto& [k, v] : labels) {
        if (!first_label) out += ",";
        first_label = false;
        out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "}";
  return out;
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Get());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Get());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace_back(name, hist.get());
  }
  snap.exemplars.reserve(exemplars_.size());
  for (const auto& [name, store] : exemplars_) {
    snap.exemplars.emplace_back(name, store.get());
  }
  snap.infos.reserve(infos_.size());
  for (const auto& [name, labels] : infos_) {
    snap.infos.emplace_back(name, labels);
  }
  return snap;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  exemplars_.clear();
  infos_.clear();
}

IndexMetrics IndexMetrics::Register(const std::string& prefix) {
  // Warm the TSC calibration here, on the cold path: ScopedDurationNs
  // converts cycles to ns inside instrumented operations, and the first
  // CyclesPerSecond() call spins ~20ms — uncached, that spin would land
  // inside the caller's first timed operation as a 20ms latency outlier.
  CycleTimer::CyclesPerSecond();
  MetricsRegistry& reg = MetricsRegistry::Global();
  IndexMetrics m;
  m.reads = reg.GetCounter(prefix + ".reads");
  m.writes = reg.GetCounter(prefix + ".writes");
  m.batches = reg.GetCounter(prefix + ".batches");
  m.batch_keys = reg.GetCounter(prefix + ".batch_keys");
  m.batch_size = reg.GetHistogram(prefix + ".batch_size");
  m.read_lock_ns = reg.GetHistogram(prefix + ".read_lock_ns");
  m.write_lock_ns = reg.GetHistogram(prefix + ".write_lock_ns");
  m.shard_imbalance = reg.GetGauge(prefix + ".shard_imbalance");
  m.arena_bytes = reg.GetGauge(prefix + ".arena_bytes");
  m.arena_utilization = reg.GetGauge(prefix + ".arena_utilization");
  m.arena_slabs = reg.GetGauge(prefix + ".arena_slabs");
  return m;
}

OlcMetrics OlcMetrics::Register() {
  MetricsRegistry& reg = MetricsRegistry::Global();
  OlcMetrics m;
  m.read_retries = reg.GetCounter("olc.read_retries");
  m.fallback_acquisitions = reg.GetCounter("olc.fallback_acquisitions");
  m.epoch_current = reg.GetGauge("epoch.current");
  m.epoch_deferred_slabs = reg.GetGauge("epoch.deferred_slabs");
  m.epoch_deferred_blocks = reg.GetGauge("epoch.deferred_blocks");
  return m;
}

void PublishBuildInfo() {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const simd::DispatchDecision& d = simd::ActiveDispatch();
  char bits[16];
  std::snprintf(bits, sizeof(bits), "%d", d.register_bits);
#if defined(SIMDTREE_GIT_SHA)
  const char* sha = SIMDTREE_GIT_SHA;
#else
  const char* sha = "unknown";
#endif
  reg.SetInfo("simdtree_build_info",
              {{"git_sha", sha},
               {"backend", simd::DispatchLevelName(d.level)},
               {"simd_register_bits", bits},
               {"hugepages", mem::HugepagesEnabled() ? "1" : "0"}});
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    g_process_start)
          .count();
  reg.GetGauge("process_uptime_seconds")->Set(uptime);
}

void PublishEpochStats() {
  const olc::EpochManager& em = olc::EpochManager::Global();
  const OlcMetrics m = OlcMetrics::Register();
  m.epoch_current->Set(static_cast<double>(em.current()));
  m.epoch_deferred_slabs->Set(static_cast<double>(em.deferred_slabs()));
  m.epoch_deferred_blocks->Set(static_cast<double>(em.deferred_blocks()));
}

}  // namespace simdtree::obs
