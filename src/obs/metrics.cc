#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

#include "core/olc.h"

namespace simdtree::obs {

namespace {

// Minimal escaping for metric names (quotes and backslashes only; names
// are ASCII identifiers by convention).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FmtU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LogHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LogHistogram>();
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + FmtU64(counter->Get());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + FmtDouble(gauge->Get());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{";
    out += "\"count\":" + FmtU64(hist->Count());
    out += ",\"mean\":" + FmtDouble(hist->Mean());
    out += ",\"p50\":" + FmtU64(hist->Percentile(0.50));
    out += ",\"p95\":" + FmtU64(hist->Percentile(0.95));
    out += ",\"p99\":" + FmtU64(hist->Percentile(0.99));
    out += ",\"p999\":" + FmtU64(hist->Percentile(0.999));
    out += ",\"max\":" + FmtU64(hist->Max());
    out += "}";
  }
  out += "}}";
  return out;
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Get());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Get());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace_back(name, hist.get());
  }
  return snap;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

IndexMetrics IndexMetrics::Register(const std::string& prefix) {
  // Warm the TSC calibration here, on the cold path: ScopedDurationNs
  // converts cycles to ns inside instrumented operations, and the first
  // CyclesPerSecond() call spins ~20ms — uncached, that spin would land
  // inside the caller's first timed operation as a 20ms latency outlier.
  CycleTimer::CyclesPerSecond();
  MetricsRegistry& reg = MetricsRegistry::Global();
  IndexMetrics m;
  m.reads = reg.GetCounter(prefix + ".reads");
  m.writes = reg.GetCounter(prefix + ".writes");
  m.batches = reg.GetCounter(prefix + ".batches");
  m.batch_keys = reg.GetCounter(prefix + ".batch_keys");
  m.batch_size = reg.GetHistogram(prefix + ".batch_size");
  m.read_lock_ns = reg.GetHistogram(prefix + ".read_lock_ns");
  m.write_lock_ns = reg.GetHistogram(prefix + ".write_lock_ns");
  m.shard_imbalance = reg.GetGauge(prefix + ".shard_imbalance");
  m.arena_bytes = reg.GetGauge(prefix + ".arena_bytes");
  m.arena_utilization = reg.GetGauge(prefix + ".arena_utilization");
  m.arena_slabs = reg.GetGauge(prefix + ".arena_slabs");
  return m;
}

OlcMetrics OlcMetrics::Register() {
  MetricsRegistry& reg = MetricsRegistry::Global();
  OlcMetrics m;
  m.read_retries = reg.GetCounter("olc.read_retries");
  m.fallback_acquisitions = reg.GetCounter("olc.fallback_acquisitions");
  m.epoch_current = reg.GetGauge("epoch.current");
  m.epoch_deferred_slabs = reg.GetGauge("epoch.deferred_slabs");
  m.epoch_deferred_blocks = reg.GetGauge("epoch.deferred_blocks");
  return m;
}

void PublishEpochStats() {
  const olc::EpochManager& em = olc::EpochManager::Global();
  const OlcMetrics m = OlcMetrics::Register();
  m.epoch_current->Set(static_cast<double>(em.current()));
  m.epoch_deferred_slabs->Set(static_cast<double>(em.deferred_slabs()));
  m.epoch_deferred_blocks->Set(static_cast<double>(em.deferred_blocks()));
}

}  // namespace simdtree::obs
