// Metric and trace exposition: OpenMetrics/Prometheus text format over
// the MetricsRegistry, a JSON variant, and the /tracez trace dump.
//
// OpenMetrics names admit only [a-zA-Z_:][a-zA-Z0-9_:]* while the
// registry's convention is dotted paths ("sharded.read_lock_ns"), so
// every exported name passes through SanitizeMetricName first; two
// registry names that collide after sanitization are disambiguated
// deterministically so the exposition never declares a family twice.
//
// LogHistogram is exported the Prometheus way: cumulative `_bucket`
// samples with `le` upper bounds taken from the histogram's own log
// bucket edges (only non-empty buckets are emitted — 1920 mostly-empty
// buckets per histogram would bloat every scrape), plus `_count` and
// `_sum`, closing with the mandatory le="+Inf" bucket.

#ifndef SIMDTREE_OBS_EXPORT_H_
#define SIMDTREE_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"

namespace simdtree::obs {

// Maps an arbitrary registry name onto the OpenMetrics name grammar:
// invalid characters (dots, dashes, ...) become '_', a leading digit is
// prefixed with '_', an empty name becomes "_". Deterministic and
// stateless; collisions are handled by the renderer.
std::string SanitizeMetricName(const std::string& name);

bool IsValidMetricName(const std::string& name);

// Escapes a label value per the OpenMetrics ABNF: backslash, double
// quote, and newline get backslash-escaped.
std::string EscapeLabelValue(const std::string& value);

// One cumulative histogram bucket: count of samples <= le.
struct CumulativeBucket {
  double le = 0.0;        // upper bound; +Inf for the closing bucket
  uint64_t count = 0;     // cumulative count of samples <= le
  size_t raw_bucket = 0;  // LogHistogram bucket index this edge closes —
                          // the exemplar-store slot to join against
                          // (the +Inf bucket keeps the last raw index)
};

// Converts a LogHistogram's raw log buckets into cumulative OpenMetrics
// buckets: one entry per non-empty raw bucket (le = the bucket's
// exclusive upper edge) plus the mandatory +Inf bucket carrying the
// total count. An empty histogram yields just the +Inf bucket with
// count 0.
std::vector<CumulativeBucket> CumulativeBuckets(const LogHistogram& hist);

// Renders a registry snapshot as OpenMetrics text exposition
// (counters with the `_total` suffix, gauges, info metrics as labeled
// constant-1 gauges, histograms as cumulative buckets), terminated by
// the mandatory "# EOF" line. Histograms with an exemplar store of the
// same name get `# {trace_id="..."} value` exemplars appended to the
// bucket lines whose raw bucket holds a retained trace id; an exemplar
// is only rendered when its value verifiably belongs to that bucket,
// so the OpenMetrics in-range rule survives races with concurrent
// Offers.
std::string RenderOpenMetrics(const MetricsRegistry::Snapshot& snap);

// Same data as one JSON document (the registry's ToJson shape plus the
// tracer's recorded/slow counts).
std::string RenderMetricsJson(const MetricsRegistry& registry,
                              const Tracer& tracer);

// /tracez payload: {"sample_rate":..,"recorded":..,"slow_threshold_ns":..,
// "recent":[trace...],"slow":[trace...]} with per-level spans expanded.
// `max_recent` caps the recent-trace array (0 = TraceRing capacity per
// thread, i.e. everything retained).
std::string RenderTracezJson(const Tracer& tracer, size_t max_recent = 0);

// /requestz payload: the request-span recorder's state and both
// retention tiers, spans expanded with kind names —
// {"head_rate":..,"slow_threshold_ns":..,"completed":..,"retained":..,
//  "slow_retained":..,"recent":[request...],"slow":[request...]}.
// Trace ids render as the same 16-hex-digit strings used by the
// OpenMetrics exemplars, so the two surfaces join textually.
std::string RenderRequestzJson(const RequestTracer& tracer,
                               size_t max_recent = 0);

}  // namespace simdtree::obs

#endif  // SIMDTREE_OBS_EXPORT_H_
