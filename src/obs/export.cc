#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <string>

namespace simdtree::obs {

namespace {

bool ValidStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool ValidNameChar(char c) {
  return ValidStartChar(c) || (c >= '0' && c <= '9');
}

std::string FmtU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string FmtDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Deduplicates sanitized names across one exposition: the first use of
// a sanitized name wins it; later registry names mapping to the same
// string get a numbered "_2", "_3", ... suffix. Deterministic because
// Snapshot enumerates in registry (map) order.
class NameDeduper {
 public:
  std::string Unique(const std::string& raw) {
    std::string san = SanitizeMetricName(raw);
    auto [it, inserted] = uses_.emplace(san, 1);
    if (inserted) return san;
    ++it->second;
    return san + "_" + FmtU64(it->second);
  }

 private:
  std::map<std::string, uint64_t> uses_;
};

void AppendTraceJson(std::string* out, const DescentTrace& t) {
  *out += "{\"key\":" + FmtU64(t.key);
  *out += ",\"start_ns\":" + FmtU64(t.start_ns);
  *out += ",\"latency_ns\":" + FmtU64(t.latency_ns);
  *out += ",\"lock_wait_ns\":" + FmtU64(t.lock_wait_ns);
  *out += ",\"thread\":" + FmtU64(t.thread_id);
  *out += ",\"conn\":";
  *out += t.conn_id == kTraceNoConn ? std::string("null")
                                    : FmtU64(t.conn_id);
  *out += ",\"request\":";
  *out += t.conn_id == kTraceNoConn ? std::string("null")
                                    : FmtU64(t.request_id);
  *out += ",\"shard\":";
  *out += t.shard == kTraceNoShard ? std::string("null")
                                   : FmtU64(t.shard);
  *out += ",\"backend\":\"";
  *out += TraceBackendName(t.backend);
  *out += "\",\"found\":";
  *out += t.found ? "true" : "false";
  *out += ",\"slow\":";
  *out += t.slow ? "true" : "false";
  *out += ",\"batched\":";
  *out += t.batched ? "true" : "false";
  *out += ",\"levels\":[";
  for (int i = 0; i < t.levels && i < kMaxTraceLevels; ++i) {
    const LevelSpan& s = t.level[i];
    if (i > 0) *out += ",";
    *out += "{\"node_ref\":";
    *out += s.node_ref == kTraceNoNodeRef ? std::string("null")
                                          : FmtU64(s.node_ref);
    *out += ",\"layout\":\"";
    *out += TraceLayoutName(s.layout);
    *out += "\",\"arena_slab\":";
    *out += s.arena_slab == kTraceSlabUnknown ? std::string("null")
                                              : FmtU64(s.arena_slab);
    *out += ",\"simd_cmps\":" + FmtU64(s.simd_cmps);
    *out += ",\"scalar_cmps\":" + FmtU64(s.scalar_cmps);
    *out += ",\"cycles\":" + FmtU64(s.cycles);
    *out += "}";
  }
  *out += "]}";
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  if (!ValidStartChar(name[0])) out.push_back('_');
  for (char c : name) {
    out.push_back(ValidNameChar(c) ? c : '_');
  }
  return out;
}

bool IsValidMetricName(const std::string& name) {
  if (name.empty() || !ValidStartChar(name[0])) return false;
  for (char c : name) {
    if (!ValidNameChar(c)) return false;
  }
  return true;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::vector<CumulativeBucket> CumulativeBuckets(const LogHistogram& hist) {
  std::vector<CumulativeBucket> out;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < LogHistogram::kBuckets; ++b) {
    const uint64_t n = hist.BucketCount(b);
    if (n == 0) continue;
    cumulative += n;
    // The exclusive upper edge of bucket b is the lower edge of b+1;
    // the final bucket's edge would overflow BucketLow's shift, so it
    // folds into +Inf below.
    if (b + 1 >= LogHistogram::kBuckets) break;
    out.push_back({static_cast<double>(LogHistogram::BucketLow(b + 1)),
                   cumulative, b});
  }
  // Mandatory closing bucket: everything, including samples in the last
  // raw bucket. Count() and the bucket sums are separately-updated
  // atomics, so mid-record one can lag the other; clamp so the +Inf
  // bucket never undercuts an earlier one (scrapes must stay monotone).
  // raw_bucket = kBuckets marks "no exemplar slot" — finite-le buckets
  // carry the exemplars.
  out.push_back({std::numeric_limits<double>::infinity(),
                 std::max(cumulative, hist.Count()),
                 LogHistogram::kBuckets});
  return out;
}

std::string RenderOpenMetrics(const MetricsRegistry::Snapshot& snap) {
  std::string out;
  NameDeduper dedup;
  for (const auto& [name, value] : snap.counters) {
    const std::string san = dedup.Unique(name);
    out += "# TYPE " + san + " counter\n";
    out += san + "_total " + FmtU64(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string san = dedup.Unique(name);
    out += "# TYPE " + san + " gauge\n";
    out += san + " " + FmtDouble(value) + "\n";
  }
  for (const auto& [name, labels] : snap.infos) {
    const std::string san = dedup.Unique(name);
    out += "# TYPE " + san + " gauge\n";
    out += san + "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out += ",";
      first = false;
      out += SanitizeMetricName(k) + "=\"" + EscapeLabelValue(v) + "\"";
    }
    out += "} 1\n";
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::string san = dedup.Unique(name);
    // Exemplar stores pair with histograms by registry name; both
    // vectors come sorted from the same map walk.
    const ExemplarStore* store = nullptr;
    for (const auto& [ex_name, ex_store] : snap.exemplars) {
      if (ex_name == name) {
        store = ex_store;
        break;
      }
    }
    out += "# TYPE " + san + " histogram\n";
    const std::vector<CumulativeBucket> buckets = CumulativeBuckets(*hist);
    for (const CumulativeBucket& b : buckets) {
      out += san + "_bucket{le=\"" + FmtDouble(b.le) + "\"} " +
             FmtU64(b.count);
      ExemplarStore::Exemplar ex;
      if (store != nullptr && b.raw_bucket < LogHistogram::kBuckets &&
          store->Read(b.raw_bucket, &ex) &&
          LogHistogram::BucketIndex(ex.value) == b.raw_bucket) {
        // OpenMetrics exemplar: " # {labels} value". The in-range rule
        // (value <= le) holds because the store slot IS this raw
        // bucket and the id+value pair is seqlock-consistent.
        char id[24];
        std::snprintf(id, sizeof(id), "%016" PRIx64, ex.trace_id);
        out += " # {trace_id=\"";
        out += id;
        out += "\"} " + FmtDouble(static_cast<double>(ex.value));
      }
      out += "\n";
    }
    // _count must equal the +Inf bucket exactly (the spec ties them).
    out += san + "_count " + FmtU64(buckets.back().count) + "\n";
    out += san + "_sum " + FmtU64(hist->Sum()) + "\n";
  }
  out += "# EOF\n";
  return out;
}

std::string RenderMetricsJson(const MetricsRegistry& registry,
                              const Tracer& tracer) {
  std::string out = "{\"registry\":" + registry.ToJson();
  out += ",\"trace\":{\"sample_rate\":" + FmtU64(TraceSampleRate());
  out += ",\"recorded\":" + FmtU64(tracer.recorded());
  out += ",\"slow_recorded\":" + FmtU64(tracer.slow_recorded());
  out += ",\"slow_threshold_ns\":" + FmtU64(tracer.slow_threshold_ns());
  out += "}}";
  return out;
}

std::string RenderTracezJson(const Tracer& tracer, size_t max_recent) {
  std::string out = "{\"sample_rate\":" + FmtU64(TraceSampleRate());
  out += ",\"recorded\":" + FmtU64(tracer.recorded());
  out += ",\"slow_threshold_ns\":" + FmtU64(tracer.slow_threshold_ns());
  out += ",\"recent\":[";
  bool first = true;
  for (const DescentTrace& t : tracer.Snapshot(max_recent)) {
    if (!first) out += ",";
    first = false;
    AppendTraceJson(&out, t);
  }
  out += "],\"slow\":[";
  first = true;
  for (const DescentTrace& t : tracer.SlowSnapshot()) {
    if (!first) out += ",";
    first = false;
    AppendTraceJson(&out, t);
  }
  out += "]}";
  return out;
}

namespace {

void AppendRequestTraceJson(std::string* out, const RequestTrace& t) {
  char id[24];
  std::snprintf(id, sizeof(id), "%016" PRIx64, t.trace_id);
  *out += "{\"trace_id\":\"";
  *out += id;
  *out += "\",\"conn\":" + FmtU64(t.conn_id);
  *out += ",\"request\":" + FmtU64(t.request_id);
  *out += ",\"op\":" + FmtU64(t.opcode);
  *out += ",\"status\":" + FmtU64(t.status);
  *out += ",\"start_ns\":" + FmtU64(t.start_ns);
  *out += ",\"latency_ns\":" + FmtU64(t.latency_ns);
  *out += ",\"service_ns\":" + FmtU64(t.service_ns);
  *out += ",\"batch_keys\":" + FmtU64(t.batch_keys);
  *out += ",\"thread\":" + FmtU64(t.thread_id);
  *out += ",\"slow\":";
  *out += t.slow ? "true" : "false";
  *out += ",\"spans\":[";
  for (int i = 0; i < t.num_spans && i < kMaxRequestSpans; ++i) {
    const RequestSpan& s = t.spans[i];
    if (i > 0) *out += ",";
    *out += "{\"kind\":\"";
    *out += RequestSpanKindName(s.kind);
    *out += "\",\"start_ns\":" + FmtU64(s.start_ns);
    *out += ",\"duration_ns\":" + FmtU64(s.duration_ns);
    *out += "}";
  }
  *out += "]}";
}

}  // namespace

std::string RenderRequestzJson(const RequestTracer& tracer,
                               size_t max_recent) {
  std::string out = "{\"head_rate\":" + FmtU64(tracer.head_rate());
  out += ",\"slow_threshold_ns\":" + FmtU64(tracer.slow_threshold_ns());
  out += ",\"completed\":" + FmtU64(tracer.completed());
  out += ",\"retained\":" + FmtU64(tracer.retained());
  out += ",\"slow_retained\":" + FmtU64(tracer.slow_retained());
  out += ",\"recent\":[";
  bool first = true;
  for (const RequestTrace& t : tracer.Snapshot(max_recent)) {
    if (!first) out += ",";
    first = false;
    AppendRequestTraceJson(&out, t);
  }
  out += "],\"slow\":[";
  first = true;
  for (const RequestTrace& t : tracer.SlowSnapshot()) {
    if (!first) out += ",";
    first = false;
    AppendRequestTraceJson(&out, t);
  }
  out += "]}";
  return out;
}

}  // namespace simdtree::obs
