// Minimal background-thread HTTP server for metric and trace scraping.
//
// Serves the observability GET routes:
//   /metrics       OpenMetrics text exposition (Prometheus-scrapable,
//                  with exemplars on the serving-latency buckets)
//   /metrics.json  the same registry as one JSON document
//   /tracez        recent + slow descent traces as JSON
//   /requestz      recent + slow end-to-end request spans as JSON
//   /profilez      continuous on-CPU profile, folded-stack text
//   /slo           SLO config + windowed burn-rate report as JSON
//                  (each scrape also ticks the monitor's window)
//   /healthz       readiness probe: "ok", or 503 "draining" once a
//                  graceful drain has begun (SetHealthDraining)
//
// Deliberately not a web framework: one acceptor thread, serial
// request handling, HTTP/1.1 with Connection: close, bound to
// 127.0.0.1 by default (pass an explicit bind address — e.g. "0.0.0.0"
// for a containerized Prometheus scraping over a bridge network — to
// widen it). A scrape every few seconds from one Prometheus instance is
// the design load; anything beyond that belongs behind a real ingress.
// Port 0 binds an ephemeral port (tests), readable via port() after
// Start().

#ifndef SIMDTREE_OBS_STATS_SERVER_H_
#define SIMDTREE_OBS_STATS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace simdtree::obs {

// Process-wide drain flag feeding /healthz: once a serving component
// begins graceful drain (KvServer::Stop), load balancers must see 503
// "draining" and stop routing new traffic BEFORE the listener closes.
// Set by net/server.cc; cleared on the next Start so in-process
// restarts (tests, rolling config reloads) recover.
void SetHealthDraining(bool draining);
bool HealthDraining();

class StatsServer {
 public:
  StatsServer() = default;
  ~StatsServer() { Stop(); }

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  // Binds `addr`:`port` (port 0 = ephemeral; addr defaults to loopback)
  // and starts the acceptor thread. Returns false with the OS error in
  // error() if the bind fails; calling Start on a running server is a
  // no-op returning true.
  bool Start(uint16_t port, const std::string& addr = "127.0.0.1");

  // Stops the acceptor and joins the thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // The bound port (resolves ephemeral binds); 0 before Start.
  uint16_t port() const { return port_; }

  const std::string& error() const { return error_; }

  // Route dispatch, exposed for tests: returns the full HTTP response
  // (status line + headers + body) for a request path.
  static std::string HandleRequest(const std::string& path);

 private:
  void AcceptLoop();

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::string error_;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace simdtree::obs

#endif  // SIMDTREE_OBS_STATS_SERVER_H_
