#include "obs/request_trace.h"

#include <algorithm>
#include <cstdlib>

namespace simdtree::obs {

const char* RequestSpanKindName(uint8_t kind) {
  switch (static_cast<RequestSpanKind>(kind)) {
    case RequestSpanKind::kSocketRead: return "socket_read";
    case RequestSpanKind::kCoalesceWait: return "coalesce_wait";
    case RequestSpanKind::kShardFanout: return "shard_fanout";
    case RequestSpanKind::kDescent: return "descent";
    case RequestSpanKind::kWriteFlush: return "write_flush";
  }
  return "unknown";
}

namespace request_internal {

thread_local SpanCollector* g_collector = nullptr;

namespace {

uint32_t EnvHeadRate() {
  const char* env = std::getenv("SIMDTREE_REQUEST_SAMPLE");
  if (env == nullptr || *env == '\0') return 0;
  const long v = std::strtol(env, nullptr, 10);
  return v <= 0 ? 0 : static_cast<uint32_t>(v);
}

uint64_t EnvSlowThresholdNs() {
  const char* env = std::getenv("SIMDTREE_REQUEST_SLOW_NS");
  if (env == nullptr || *env == '\0') return 0;
  const long long v = std::strtoll(env, nullptr, 10);
  return v <= 0 ? 0 : static_cast<uint64_t>(v);
}

}  // namespace
}  // namespace request_internal

RequestTracer::RequestTracer()
    : instance_id_([] {
        static std::atomic<uint64_t> counter{0};
        return counter.fetch_add(1, std::memory_order_relaxed) + 1;
      }()) {}

RequestTracer& RequestTracer::Global() {
  // Leaked like Tracer::Global(): worker threads finishing requests at
  // process teardown must never observe a destroyed recorder.
  static RequestTracer* instance = [] {
    auto* t = new RequestTracer();
    const uint32_t rate = request_internal::EnvHeadRate();
    const uint64_t slow = request_internal::EnvSlowThresholdNs();
    if (rate != 0 || slow != 0) t->Configure(rate, slow);
    return t;
  }();
  return *instance;
}

void RequestTracer::Configure(uint32_t head_rate,
                              uint64_t slow_threshold_ns) {
  head_rate_.store(head_rate, std::memory_order_relaxed);
  slow_threshold_ns_.store(slow_threshold_ns, std::memory_order_relaxed);
  armed_.store(head_rate != 0 || slow_threshold_ns != 0,
               std::memory_order_relaxed);
}

RequestTracer::ThreadSlot RequestTracer::SlotForThisThread() {
  thread_local struct {
    uint64_t owner_id = 0;  // 0 = empty; instance ids start at 1
    ThreadSlot slot{};
  } cached;
  if (cached.owner_id == instance_id_) return cached.slot;
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.push_back(std::make_unique<Ring>());
  cached.owner_id = instance_id_;
  cached.slot = {rings_.back().get(),
                 static_cast<uint32_t>(rings_.size() - 1)};
  return cached.slot;
}

bool RequestTracer::Finish(RequestTrace* t) {
  // The sequence number doubles as the head-sampling clock: with rate
  // N, exactly every N-th completed request process-wide is retained —
  // deterministic, so tests can assert exact counts.
  const uint64_t seq = completed_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t threshold =
      slow_threshold_ns_.load(std::memory_order_relaxed);
  const bool slow = threshold != 0 && t->latency_ns >= threshold;
  const uint32_t rate = head_rate_.load(std::memory_order_relaxed);
  const bool head = rate != 0 && seq % rate == 0;
  if (!slow && !head) return false;

  const ThreadSlot slot = SlotForThisThread();
  t->thread_id = slot.id;
  t->slow = slow ? 1 : 0;
  slot.ring->Write(*t);
  retained_.fetch_add(1, std::memory_order_relaxed);
  if (slow) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (slow_.size() < kSlowCapacity) {
      slow_.push_back(*t);
    } else {
      slow_[slow_next_ % kSlowCapacity] = *t;  // drop-oldest retention
    }
    ++slow_next_;
    slow_retained_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

std::vector<RequestTrace> RequestTracer::Snapshot(size_t max_traces) const {
  std::vector<const Ring*> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  std::vector<RequestTrace> out;
  for (const Ring* ring : rings) {
    const uint64_t head = ring->head();
    const uint64_t n = std::min<uint64_t>(head, Ring::kCapacity);
    for (uint64_t i = head - n; i < head; ++i) {
      RequestTrace t;
      if (ring->TryRead(static_cast<size_t>(i % Ring::kCapacity), &t)) {
        out.push_back(t);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RequestTrace& a, const RequestTrace& b) {
              return a.start_ns < b.start_ns;
            });
  if (max_traces != 0 && out.size() > max_traces) {
    out.erase(out.begin(),
              out.end() - static_cast<ptrdiff_t>(max_traces));
  }
  return out;
}

std::vector<RequestTrace> RequestTracer::SlowSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RequestTrace> out;
  out.reserve(slow_.size());
  const size_t n = slow_.size();
  const size_t start = n < kSlowCapacity ? 0 : slow_next_ % kSlowCapacity;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(slow_[(start + i) % n]);
  }
  return out;
}

void RequestTracer::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& r : rings_) r->ResetForTest();
  slow_.clear();
  slow_next_ = 0;
  completed_.store(0, std::memory_order_relaxed);
  retained_.store(0, std::memory_order_relaxed);
  slow_retained_.store(0, std::memory_order_relaxed);
}

}  // namespace simdtree::obs
