// Fixed-size log-bucketed latency histogram (HDR-style).
//
// Collecting raw per-operation samples in a multi-threaded bench means a
// vector push per op — allocation, cache traffic, and a merge step that
// dwarfs the measured work. LogHistogram is the standard alternative: a
// fixed array of atomic buckets whose widths grow geometrically, so
// recording is one relaxed fetch_add and the whole histogram is a few KB
// regardless of sample count.
//
// Bucketing (the HDR scheme): values below 2^(P+1) get one bucket each
// (exact). Above that, each power-of-two range [2^m, 2^(m+1)) is split
// into 2^P equal sub-buckets, so the bucket width at value v is at most
// v * 2^-P — a guaranteed relative error bound of 2^-P per recorded
// value (P = kPrecisionBits = 5 gives ~3.1%). Percentile() reports the
// midpoint of the selected bucket, halving the worst-case error again.
//
// Concurrency: Record is wait-free (relaxed atomic increments; counts
// are independent, no cross-bucket invariant). Readers (Percentile,
// Count, Merge) take a racy snapshot — exact once recording threads are
// quiescent, and off by at most the in-flight ops otherwise, which is
// the usual contract for monitoring reads.

#ifndef SIMDTREE_OBS_HISTOGRAM_H_
#define SIMDTREE_OBS_HISTOGRAM_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace simdtree::obs {

class LogHistogram {
 public:
  // Sub-bucket precision: relative quantization error <= 2^-kPrecisionBits.
  static constexpr int kPrecisionBits = 5;
  static constexpr uint64_t kSubBuckets = uint64_t{1} << kPrecisionBits;
  // Exact region [0, 2^(P+1)) + one 2^P-wide block per remaining
  // power-of-two range of the 64-bit domain.
  static constexpr size_t kBuckets =
      static_cast<size_t>((64 - kPrecisionBits + 1) * kSubBuckets);

  LogHistogram() = default;
  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  // Wait-free; safe from any number of threads concurrently.
  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  // Raw occupancy of bucket b — the exporter (obs/export.h) walks these
  // to build cumulative OpenMetrics buckets. Racy-snapshot semantics.
  uint64_t BucketCount(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  double Mean() const {
    const uint64_t n = Count();
    if (n == 0) return 0.0;
    return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
           static_cast<double>(n);
  }

  // Smallest recorded bucket's representative value (0 when empty).
  uint64_t Min() const {
    for (size_t b = 0; b < kBuckets; ++b) {
      if (buckets_[b].load(std::memory_order_relaxed) > 0) {
        return BucketMid(b);
      }
    }
    return 0;
  }

  uint64_t Max() const {
    for (size_t b = kBuckets; b-- > 0;) {
      if (buckets_[b].load(std::memory_order_relaxed) > 0) {
        return BucketMid(b);
      }
    }
    return 0;
  }

  // Value at quantile q in [0, 1]: the midpoint of the bucket holding
  // the rank-floor(q * (count - 1)) sample. Returns 0 on an empty
  // histogram. Accuracy: within one log bucket of the exact sample
  // percentile, i.e. relative error <= 2^-kPrecisionBits.
  uint64_t Percentile(double q) const {
    const uint64_t total = Count();
    if (total == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const uint64_t rank =
        static_cast<uint64_t>(q * static_cast<double>(total - 1));
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += buckets_[b].load(std::memory_order_relaxed);
      if (seen > rank) return BucketMid(b);
    }
    return BucketMid(kBuckets - 1);
  }

  // Samples recorded with value <= threshold — the numerator of a
  // latency objective ("fraction of requests under X ms", obs/slo.h).
  // Conservative at the boundary bucket: a bucket is counted only when
  // its whole range [BucketLow(b), BucketLow(b+1)) lies at or below the
  // threshold, so the result never overstates objective compliance by
  // more than one log bucket (relative error <= 2^-kPrecisionBits).
  uint64_t CountBelow(uint64_t threshold) const {
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      const uint64_t upper =
          b + 1 < kBuckets ? BucketLow(b + 1) - 1 : ~uint64_t{0};
      if (upper > threshold) break;
      seen += buckets_[b].load(std::memory_order_relaxed);
    }
    return seen;
  }

  // Adds other's counts into this histogram (bucket layouts are
  // identical by construction). Racy-snapshot semantics as for readers.
  void Merge(const LogHistogram& other) {
    for (size_t b = 0; b < kBuckets; ++b) {
      const uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
      if (n > 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }

  void Reset() {
    for (size_t b = 0; b < kBuckets; ++b) {
      buckets_[b].store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

  // --- bucket geometry (exposed for tests) -------------------------------

  static size_t BucketIndex(uint64_t v) {
    if (v < 2 * kSubBuckets) return static_cast<size_t>(v);  // exact region
    const int msb = 63 - std::countl_zero(v);  // >= kPrecisionBits + 1
    const int shift = msb - kPrecisionBits;    // >= 1
    const uint64_t mantissa = (v >> shift) - kSubBuckets;  // [0, 2^P)
    return static_cast<size_t>(
        (static_cast<uint64_t>(shift) + 1) * kSubBuckets + mantissa);
  }

  // Inclusive lower edge of bucket b.
  static uint64_t BucketLow(size_t b) {
    if (b < 2 * kSubBuckets) return b;
    const uint64_t shift = b / kSubBuckets - 1;
    const uint64_t mantissa = b % kSubBuckets;
    return (kSubBuckets + mantissa) << shift;
  }

  // Midpoint representative of bucket b.
  static uint64_t BucketMid(size_t b) {
    if (b < 2 * kSubBuckets) return b;  // width-1 buckets are exact
    const uint64_t shift = b / kSubBuckets - 1;
    return BucketLow(b) + ((uint64_t{1} << shift) >> 1);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace simdtree::obs

#endif  // SIMDTREE_OBS_HISTOGRAM_H_
