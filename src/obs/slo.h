// SLO burn-rate monitoring over the serving metrics.
//
// An SLO here is two objectives over a rolling window:
//
//   availability: at least `availability_target` of requests complete
//                 without a server-side error;
//   latency:      at least `latency_target` of requests complete within
//                 `latency_threshold_ns`.
//
// The operative quantity is the BURN RATE — the rate at which the
// error budget is being consumed, normalized so 1.0 means "spending the
// budget exactly as fast as the objective allows". With a 99.9%
// availability target the budget is 0.1%; observing a 0.5% error rate
// burns at 5x. Burn > 1 sustained over the window means the objective
// is being violated *now*; alerting on burn rather than raw error rate
// is what makes tight targets actionable (a 0.02% error rate is
// invisible on a graph but burns a 99.99% budget at 2x).
//
// Two layers:
//   EvaluateSlo   pure arithmetic over a window delta — unit-testable,
//                 reused by bb_serve's client-side --slo-target gate.
//   SloMonitor    server-side: snapshots the cumulative net.* metrics
//                 (request/error counters, merged per-op latency
//                 histograms via LogHistogram::CountBelow) into a
//                 timestamped ring, reports deltas over the configured
//                 window, and publishes slo.* gauges. Ticks are driven
//                 by an optional 1s background thread or by scrapes of
//                 the /slo endpoint (obs/stats_server.cc) — either way
//                 the ring only ever grows by whole snapshots, so a
//                 report is always a consistent delta.

#ifndef SIMDTREE_OBS_SLO_H_
#define SIMDTREE_OBS_SLO_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

namespace simdtree::obs {

struct SloConfig {
  double availability_target = 0.999;  // min fraction of non-error requests
  uint64_t latency_threshold_ns = 5'000'000;  // objective latency bound
  double latency_target = 0.99;  // min fraction under the bound
  double window_s = 60.0;        // rolling evaluation window
};

// What happened during one window: cumulative-counter deltas.
struct SloWindowDelta {
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t under_threshold = 0;  // latency samples <= threshold
  uint64_t latency_samples = 0;  // total latency samples in the window
  double seconds = 0.0;
};

struct SloReport {
  bool valid = false;  // false until the window holds >= 1 request
  double availability = 1.0;         // observed non-error fraction
  double availability_burn = 0.0;    // error rate / error budget
  double latency_ok_fraction = 1.0;  // observed under-threshold fraction
  double latency_burn = 0.0;         // miss rate / miss budget
  uint64_t requests = 0;
  double seconds = 0.0;

  // Worst of the two objectives — the headline number and the gate.
  double max_burn() const {
    return availability_burn > latency_burn ? availability_burn
                                            : latency_burn;
  }
};

// Pure burn-rate arithmetic. A target of 1.0 (zero budget) reports
// burn 0 while the objective holds and +inf on the first miss.
SloReport EvaluateSlo(const SloConfig& config, const SloWindowDelta& d);

// Server-side monitor over the global MetricsRegistry's net.* metrics.
class SloMonitor {
 public:
  static SloMonitor& Global();

  SloMonitor() = default;
  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  void Configure(const SloConfig& config);
  SloConfig config() const;

  // Starts the 1s background ticker (idempotent). Without it, Tick()
  // calls from /slo scrapes drive the window.
  void Start();
  void Stop();

  // Takes one snapshot of the cumulative serving metrics, trims the
  // ring to the window, and refreshes the slo.* gauges.
  void Tick();

  // Burn rates over the retained window (newest vs. oldest snapshot).
  SloReport Report() const;

  // The /slo payload: config + current report as one JSON object.
  std::string ToJson() const;

  // Test isolation only.
  void Reset();

 private:
  struct Sample {
    double t = 0.0;  // seconds, monotonic
    uint64_t requests = 0;
    uint64_t errors = 0;
    uint64_t under_threshold = 0;
    uint64_t latency_samples = 0;
  };
  Sample Collect() const;
  SloReport ReportLocked() const;

  mutable std::mutex mutex_;
  SloConfig config_;
  std::deque<Sample> ring_;
  std::thread ticker_;
  std::atomic<bool> running_{false};
};

}  // namespace simdtree::obs

#endif  // SIMDTREE_OBS_SLO_H_
