// Process-wide metrics registry: named counters, gauges, and histograms
// with JSON export.
//
// The registry is the glue between the instrumented layers (the
// concurrent index wrappers, the CLI profile command, the benches) and
// whatever consumes the numbers: metrics are registered once by name,
// recorded with lock-free atomics on the hot path, and exported as one
// JSON document on demand.
//
// Registration (GetCounter/GetGauge/GetHistogram) takes a mutex and
// returns a stable pointer — objects live for the process lifetime, so
// callers cache the pointer once and record without any lock. The same
// name always maps to the same object (get-or-create), which lets
// independent components share a metric deliberately.
//
// Naming convention: dotted paths, "component.metric[.unit]" — e.g.
// "sharded.reads", "sync.write_lock_ns".

#ifndef SIMDTREE_OBS_METRICS_H_
#define SIMDTREE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mem/arena.h"
#include "obs/exemplar.h"
#include "obs/histogram.h"
#include "util/cycle_timer.h"

namespace simdtree::obs {

// Monotonic event count. Wait-free increments.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written point-in-time value (e.g. an imbalance ratio).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class MetricsRegistry {
 public:
  // The process-wide instance. Construction is thread-safe; the object
  // is never destroyed (no static-destruction-order hazards for metrics
  // recorded from detached threads at exit).
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name. Pointers stay valid for the registry's
  // lifetime; cache them outside hot loops.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LogHistogram* GetHistogram(const std::string& name);

  // Exemplar store attached to the histogram of the same name (the
  // exporter joins them when rendering buckets). Get-or-create like the
  // metrics; a store without a matching histogram is simply never
  // rendered.
  ExemplarStore* GetExemplars(const std::string& histogram_name);

  // Info metric: a constant gauge of value 1 whose payload is its label
  // set (e.g. simdtree_build_info{git_sha="...",backend="avx2"} 1).
  // Replaces any previous label set under the name.
  using LabelSet = std::vector<std::pair<std::string, std::string>>;
  void SetInfo(const std::string& name, LabelSet labels);

  // One JSON document over everything registered:
  //   {"counters":{...},"gauges":{...},
  //    "histograms":{"name":{"count":..,"mean":..,"p50":..,"p95":..,
  //                          "p99":..,"p999":..,"max":..}}}
  // Histogram percentiles carry the bucket quantization of
  // LogHistogram::Percentile. Keys are sorted (std::map), so the export
  // is deterministic for tests.
  std::string ToJson() const;

  // Point-in-time enumeration for exporters (obs/export.h): sorted by
  // name (map order), counter/gauge values copied, histograms as the
  // registry's stable pointers (valid until Clear()). Values may keep
  // moving while the snapshot is rendered — that is inherent to
  // scrape-style export and fine.
  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, const LogHistogram*>> histograms;
    std::vector<std::pair<std::string, const ExemplarStore*>> exemplars;
    std::vector<std::pair<std::string, LabelSet>> infos;
  };
  Snapshot Snap() const;

  // Drops every registered metric (invalidates previously returned
  // pointers) — test isolation only, never during recording.
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<ExemplarStore>> exemplars_;
  std::map<std::string, LabelSet> infos_;
};

// The metric set an instrumented index wrapper records into —
// pre-resolved pointers so the per-operation cost is a handful of
// relaxed atomic adds. Registered under "<prefix>.<metric>" in the
// global registry; two wrappers given the same prefix share the
// metrics (deliberately, same as any shared name).
struct IndexMetrics {
  Counter* reads = nullptr;        // single-key read ops (Find/Contains)
  Counter* writes = nullptr;       // write ops (Insert/Erase/Clear)
  Counter* batches = nullptr;      // FindBatch calls
  Counter* batch_keys = nullptr;   // keys resolved through FindBatch
  LogHistogram* batch_size = nullptr;     // FindBatch n per call
  LogHistogram* read_lock_ns = nullptr;   // shared-lock hold times
  LogHistogram* write_lock_ns = nullptr;  // exclusive-lock hold times
  Gauge* shard_imbalance = nullptr;  // sharded only: max/mean batch share
  Gauge* arena_bytes = nullptr;        // reserved arena slab bytes
  Gauge* arena_utilization = nullptr;  // live block bytes / reserved bytes
  Gauge* arena_slabs = nullptr;        // slab count across pools

  // Resolves the full set under `prefix` in the global registry.
  static IndexMetrics Register(const std::string& prefix);

  // Publishes an arena snapshot (mem/arena.h) into the gauges. The
  // wrappers call this from MemStats(), so the gauges track whenever the
  // caller polls occupancy.
  void PublishArena(const mem::ArenaStats& s) const {
    arena_bytes->Set(static_cast<double>(s.reserved_bytes));
    arena_utilization->Set(s.utilization());
    arena_slabs->Set(static_cast<double>(s.slab_count));
  }
};

// Records the enclosing scope's duration in nanoseconds into `hist` on
// destruction; a null histogram makes the whole object a no-op. Declare
// it *after* a lock guard so it destructs first and the lock release
// falls outside the measured hold.
class ScopedDurationNs {
 public:
  explicit ScopedDurationNs(LogHistogram* hist)
      : hist_(hist), start_(hist != nullptr ? CycleTimer::Now() : 0) {}
  ~ScopedDurationNs() {
    if (hist_ != nullptr) {
      hist_->Record(static_cast<uint64_t>(
          CycleTimer::ToNanoseconds(CycleTimer::Now() - start_)));
    }
  }

  ScopedDurationNs(const ScopedDurationNs&) = delete;
  ScopedDurationNs& operator=(const ScopedDurationNs&) = delete;

 private:
  LogHistogram* hist_;
  uint64_t start_;
};

// The optimistic-lock-coupling / epoch-reclamation metric set
// (core/olc.h). Unlike IndexMetrics these are process-global, not
// per-prefix: the epoch manager is a singleton and every wrapper's
// optimistic read path feeds the same counters.
//
//   olc.read_retries           optimistic attempts invalidated by a
//                              concurrent writer (each restart counts)
//   olc.fallback_acquisitions  reads that exhausted kMaxReadRetries and
//                              took the shard's shared lock
//   epoch.current              global epoch (gauge)
//   epoch.deferred_slabs       quarantined slabs awaiting reader advance
//   epoch.deferred_blocks      quarantined node blocks awaiting reuse
struct OlcMetrics {
  Counter* read_retries = nullptr;
  Counter* fallback_acquisitions = nullptr;
  Gauge* epoch_current = nullptr;
  Gauge* epoch_deferred_slabs = nullptr;
  Gauge* epoch_deferred_blocks = nullptr;

  // Resolves the set in the global registry. Cheap enough to call per
  // wrapper construction; the names always map to the same objects.
  static OlcMetrics Register();
};

// Refreshes the epoch.* gauges from the global olc::EpochManager. The
// stats server calls this before rendering /metrics so scrapes see
// current reclamation state without a hot-path publisher.
void PublishEpochStats();

// Publishes the self-describing process metrics into the global
// registry: the simdtree_build_info info metric (git sha, runtime
// dispatch backend, SIMD register width, hugepage availability) and the
// process_uptime_seconds gauge. The stats server calls this per scrape
// (uptime moves); benches may call it once before emitting JSON.
void PublishBuildInfo();

}  // namespace simdtree::obs

#endif  // SIMDTREE_OBS_METRICS_H_
