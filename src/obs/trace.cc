#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>

namespace simdtree::obs {

const char* TraceBackendName(uint8_t backend) {
  switch (static_cast<TraceBackend>(backend)) {
    case TraceBackend::kBPlusTree: return "bplustree";
    case TraceBackend::kSegTree: return "segtree";
    case TraceBackend::kSegTrie: return "segtrie";
    case TraceBackend::kOptimizedSegTrie: return "optimized_segtrie";
    case TraceBackend::kCompressedSegTrie: return "compressed_segtrie";
    case TraceBackend::kKaryArray: return "kary_array";
    case TraceBackend::kUnknown: break;
  }
  return "unknown";
}

const char* TraceLayoutName(uint8_t layout) {
  switch (layout) {
    case kTraceLayoutPlain: return "plain";
    case kTraceLayoutBreadthFirst: return "breadth_first";
    case kTraceLayoutDepthFirst: return "depth_first";
    case kTraceLayoutTrieNode: return "trie_node";
  }
  return "unknown";
}

namespace trace_internal {

namespace {

uint32_t EnvSampleRate() {
  const char* env = std::getenv("SIMDTREE_TRACE_SAMPLE");
  if (env == nullptr || *env == '\0') return 0;
  const long v = std::strtol(env, nullptr, 10);
  if (v <= 0) return 0;
  return static_cast<uint32_t>(v);
}

uint64_t EnvSlowThresholdNs() {
  const char* env = std::getenv("SIMDTREE_TRACE_SLOW_NS");
  if (env == nullptr || *env == '\0') return 0;
  const long long v = std::strtoll(env, nullptr, 10);
  if (v <= 0) return 0;
  return static_cast<uint64_t>(v);
}

// Per-thread countdown to the next sampled query. Deterministic: with
// rate N, exactly every N-th query on each thread is traced.
thread_local uint32_t t_sample_countdown = 0;

}  // namespace

std::atomic<uint32_t> g_sample_rate{EnvSampleRate()};

thread_local uint32_t g_conn_id = 0;
thread_local uint32_t g_request_id = 0;

bool SampleSlowPath(uint32_t rate) {
  if (++t_sample_countdown >= rate) {
    t_sample_countdown = 0;
    return true;
  }
  return false;
}

void ResetThreadSampleCountdown() { t_sample_countdown = 0; }

}  // namespace trace_internal

void EnableTracing(uint32_t rate) {
  trace_internal::g_sample_rate.store(rate, std::memory_order_relaxed);
}

uint32_t TraceSampleRate() {
  return trace_internal::g_sample_rate.load(std::memory_order_relaxed);
}

Tracer::Tracer()
    : instance_id_([] {
        static std::atomic<uint64_t> counter{0};
        return counter.fetch_add(1, std::memory_order_relaxed) + 1;
      }()) {}

Tracer& Tracer::Global() {
  // Leaked like MetricsRegistry::Global(): threads recording during
  // process teardown must never observe a destroyed tracer.
  static Tracer* instance = [] {
    auto* t = new Tracer();
    t->SetSlowThresholdNs(trace_internal::EnvSlowThresholdNs());
    return t;
  }();
  return *instance;
}

Tracer::ThreadSlot Tracer::SlotForThisThread() {
  // Cache keyed by the tracer's process-unique instance id (never by
  // address — a stack tracer at a reused address must not inherit a
  // destroyed instance's ring). Tests constructing their own Tracer
  // thus get rings distinct from the global one. The small thread id is
  // the ring's index in the registry.
  thread_local struct {
    uint64_t owner_id = 0;  // 0 = empty; instance ids start at 1
    ThreadSlot slot{};
  } cached;
  if (cached.owner_id == instance_id_) return cached.slot;
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.push_back(std::make_unique<TraceRing>());
  cached.owner_id = instance_id_;
  cached.slot = {rings_.back().get(),
                 static_cast<uint32_t>(rings_.size() - 1)};
  return cached.slot;
}

void Tracer::Record(DescentTrace t) {
  const ThreadSlot slot = SlotForThisThread();
  t.thread_id = slot.id;
  const uint64_t threshold =
      slow_threshold_ns_.load(std::memory_order_relaxed);
  if (threshold != 0 && t.latency_ns >= threshold) {
    t.slow = 1;  // set before the ring write so the ring copy agrees
  }
  slot.ring->Write(t);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (t.slow) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (slow_.size() < kSlowCapacity) {
      slow_.push_back(t);
    } else {
      slow_[slow_next_ % kSlowCapacity] = t;  // drop-oldest retention
    }
    ++slow_next_;
    slow_recorded_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<DescentTrace> Tracer::Snapshot(size_t max_traces) const {
  std::vector<const TraceRing*> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  std::vector<DescentTrace> out;
  for (const TraceRing* ring : rings) {
    const uint64_t head = ring->head();
    const uint64_t n = std::min<uint64_t>(head, TraceRing::kCapacity);
    for (uint64_t i = head - n; i < head; ++i) {
      DescentTrace t;
      if (ring->TryRead(static_cast<size_t>(i % TraceRing::kCapacity), &t)) {
        out.push_back(t);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DescentTrace& a, const DescentTrace& b) {
              return a.start_ns < b.start_ns;
            });
  if (max_traces != 0 && out.size() > max_traces) {
    out.erase(out.begin(),
              out.end() - static_cast<ptrdiff_t>(max_traces));
  }
  return out;
}

std::vector<DescentTrace> Tracer::SlowSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DescentTrace> out;
  out.reserve(slow_.size());
  // Oldest first: slow_ is a ring once full, rotating at slow_next_.
  const size_t n = slow_.size();
  const size_t start = n < kSlowCapacity ? 0 : slow_next_ % kSlowCapacity;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(slow_[(start + i) % n]);
  }
  return out;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Rings are reset in place, never freed: quiescent threads still hold
  // cached pointers to them.
  for (auto& r : rings_) r->ResetForTest();
  slow_.clear();
  slow_next_ = 0;
  recorded_.store(0, std::memory_order_relaxed);
  slow_recorded_.store(0, std::memory_order_relaxed);
  trace_internal::ResetThreadSampleCountdown();
}

}  // namespace simdtree::obs
