#include "obs/slo.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/histogram.h"
#include "obs/metrics.h"

namespace simdtree::obs {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Burn for one objective: observed miss rate / budgeted miss rate.
double Burn(uint64_t misses, uint64_t total, double target) {
  if (total == 0) return 0.0;
  const double miss_rate =
      static_cast<double>(misses) / static_cast<double>(total);
  const double budget = 1.0 - target;
  if (budget <= 0.0) {
    // Zero budget: any miss is an infinite burn.
    return misses == 0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return miss_rate / budget;
}

std::string FmtDouble(double v) {
  char buf[64];
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";  // JSON-parsable inf
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

SloReport EvaluateSlo(const SloConfig& config, const SloWindowDelta& d) {
  SloReport r;
  r.requests = d.requests;
  r.seconds = d.seconds;
  if (d.requests == 0 && d.latency_samples == 0) return r;
  r.valid = true;
  if (d.requests > 0) {
    const uint64_t errors = d.errors > d.requests ? d.requests : d.errors;
    r.availability = 1.0 - static_cast<double>(errors) /
                               static_cast<double>(d.requests);
    r.availability_burn =
        Burn(errors, d.requests, config.availability_target);
  }
  if (d.latency_samples > 0) {
    // Racy cumulative snapshots can transiently report under > total;
    // clamp so the miss count never underflows.
    const uint64_t under = d.under_threshold > d.latency_samples
                               ? d.latency_samples
                               : d.under_threshold;
    r.latency_ok_fraction = static_cast<double>(under) /
                            static_cast<double>(d.latency_samples);
    r.latency_burn = Burn(d.latency_samples - under, d.latency_samples,
                          config.latency_target);
  }
  return r;
}

SloMonitor& SloMonitor::Global() {
  // Leaked like the registry: the ticker may race process teardown.
  static SloMonitor* instance = new SloMonitor();
  return *instance;
}

void SloMonitor::Configure(const SloConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  ring_.clear();  // thresholds changed; old under_threshold counts lie
}

SloConfig SloMonitor::config() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_;
}

void SloMonitor::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  ticker_ = std::thread([this] {
    while (running_.load(std::memory_order_acquire)) {
      Tick();
      for (int i = 0; i < 10 && running_.load(std::memory_order_acquire);
           ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  });
}

void SloMonitor::Stop() {
  if (!running_.exchange(false)) return;
  if (ticker_.joinable()) ticker_.join();
}

SloMonitor::Sample SloMonitor::Collect() const {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Sample s;
  s.t = MonotonicSeconds();
  s.requests = reg.GetCounter("net.requests")->Get();
  s.errors = reg.GetCounter("net.malformed")->Get() +
             reg.GetCounter("net.timeouts")->Get();
  const uint64_t threshold = [this] {
    std::lock_guard<std::mutex> lock(mutex_);
    return config_.latency_threshold_ns;
  }();
  static const char* kOpHists[] = {
      "net.op_get_ns", "net.op_mget_ns", "net.op_lower_bound_ns",
      "net.op_put_ns", "net.op_del_ns"};
  for (const char* name : kOpHists) {
    const LogHistogram* h = reg.GetHistogram(name);
    s.under_threshold += h->CountBelow(threshold);
    s.latency_samples += h->Count();
  }
  return s;
}

void SloMonitor::Tick() {
  const Sample s = Collect();
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(s);
  // Keep one sample older than the window so the delta spans >= the
  // window once enough history exists.
  while (ring_.size() > 2 &&
         s.t - ring_[1].t >= config_.window_s) {
    ring_.pop_front();
  }
  const SloReport r = ReportLocked();
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetGauge("slo.availability")->Set(r.availability);
  reg.GetGauge("slo.availability_burn_rate")->Set(r.availability_burn);
  reg.GetGauge("slo.latency_ok_fraction")->Set(r.latency_ok_fraction);
  reg.GetGauge("slo.latency_burn_rate")->Set(r.latency_burn);
  reg.GetGauge("slo.window_requests")
      ->Set(static_cast<double>(r.requests));
  reg.GetGauge("slo.window_seconds")->Set(r.seconds);
}

SloReport SloMonitor::ReportLocked() const {
  if (ring_.size() < 2) return SloReport{};
  const Sample& oldest = ring_.front();
  const Sample& newest = ring_.back();
  SloWindowDelta d;
  d.requests = newest.requests - oldest.requests;
  d.errors = newest.errors - oldest.errors;
  d.under_threshold = newest.under_threshold - oldest.under_threshold;
  d.latency_samples = newest.latency_samples - oldest.latency_samples;
  d.seconds = newest.t - oldest.t;
  return EvaluateSlo(config_, d);
}

SloReport SloMonitor::Report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ReportLocked();
}

std::string SloMonitor::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const SloReport r = ReportLocked();
  std::string out = "{\"config\":{";
  out += "\"availability_target\":" + FmtDouble(config_.availability_target);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(config_.latency_threshold_ns));
  out += ",\"latency_threshold_ns\":";
  out += buf;
  out += ",\"latency_target\":" + FmtDouble(config_.latency_target);
  out += ",\"window_s\":" + FmtDouble(config_.window_s);
  out += "},\"report\":{";
  out += std::string("\"valid\":") + (r.valid ? "true" : "false");
  out += ",\"availability\":" + FmtDouble(r.availability);
  out += ",\"availability_burn_rate\":" + FmtDouble(r.availability_burn);
  out += ",\"latency_ok_fraction\":" + FmtDouble(r.latency_ok_fraction);
  out += ",\"latency_burn_rate\":" + FmtDouble(r.latency_burn);
  out += ",\"max_burn\":" + FmtDouble(r.max_burn());
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(r.requests));
  out += ",\"window_requests\":";
  out += buf;
  out += ",\"window_seconds\":" + FmtDouble(r.seconds);
  out += "}}";
  return out;
}

void SloMonitor::Reset() {
  Stop();
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
}

}  // namespace simdtree::obs
