// End-to-end KV request spans with tail-based sampling.
//
// The descent-trace flight recorder (obs/trace.h) answers "where inside
// one tree descent did the cycles go". This layer answers the question
// one level up: for a slow p999 wire request, was the time spent in
// socket backpressure, waiting behind earlier frames in the pipeline,
// shard fan-out, the SIMD descent itself, or flushing the reply? Each
// request gets a trace id at frame parse (net/server.cc) and accumulates
// up to kMaxRequestSpans spans as it moves through the serving path:
//
//   socket_read    recv() drain that delivered the request's frame
//   coalesce_wait  queueing behind earlier frames of the same pipeline
//                  (writes are barriers, so reads can wait on a PUT)
//   shard_fanout   counting-sort partition/scatter across shards
//                  (ShardedIndex::FindBatch passes 1-2)
//   descent        the in-shard batched tree descent (pass 3), or the
//                  whole index call for single-key ops
//   write_flush    send() loop that pushed the reply toward the socket
//
// Sampling is TAIL-BASED: spans are recorded for every request while
// the recorder is armed (a handful of timestamp reads — the cheap
// part), and the retention decision happens at request completion, when
// the end-to-end latency is known. Requests breaching the slow
// threshold are ALWAYS retained (promoted to the bounded slow log, like
// the descent tracer's slow-query log); the rest are head-sampled
// deterministically 1-in-N into per-thread rings. Disarmed, the serving
// path pays one relaxed atomic load per pipeline drain.
//
// Index-internal spans (shard_fanout, descent) are recorded through a
// thread-local SpanCollector the server arms around FindBatch: the
// wrappers (core/sharded.h, core/synchronized.h) mark their sub-phases
// into it without knowing anything about the serving path. One
// coalesced batch serves many wire requests; each retained request
// carries a copy of the batch's fan-out/descent spans plus its
// batch_keys size, which is the honest attribution — those cycles were
// genuinely shared.
//
// /requestz (obs/stats_server.cc) renders both rings as JSON; retained
// trace ids also surface as OpenMetrics exemplars on the per-op latency
// histograms (obs/metrics.h ExemplarStore), so a scrape's p999 bucket
// links straight to an inspectable trace.

#ifndef SIMDTREE_OBS_REQUEST_TRACE_H_
#define SIMDTREE_OBS_REQUEST_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "obs/seqlock_ring.h"
#include "util/cycle_timer.h"

namespace simdtree::obs {

// Span kinds, in pipeline order. One byte in the trace schema.
enum class RequestSpanKind : uint8_t {
  kSocketRead = 0,
  kCoalesceWait = 1,
  kShardFanout = 2,
  kDescent = 3,
  kWriteFlush = 4,
};
inline constexpr int kNumRequestSpanKinds = 5;

const char* RequestSpanKindName(uint8_t kind);

// Enough for one of each kind plus headroom (a request whose pipeline
// drain splits across two recv gulps records two socket_read spans).
inline constexpr int kMaxRequestSpans = 8;

struct RequestSpan {
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint8_t kind = 0;  // RequestSpanKind image
  uint8_t reserved[7] = {};
};
static_assert(sizeof(RequestSpan) == 24);

// One wire request's life. Trivially copyable and fixed-size: the rings
// store it word-wise through atomics, and the record path allocates
// nothing.
struct RequestTrace {
  uint64_t trace_id = 0;    // process-unique, assigned at frame parse
  uint64_t start_ns = 0;    // recv-gulp start (end-to-end clock zero)
  uint64_t latency_ns = 0;  // gulp start -> reply flushed
  uint64_t service_ns = 0;  // execute-only latency — the value recorded
                            // into the per-op histogram, so an exemplar
                            // built from it lands in the right bucket
  uint32_t conn_id = 0;
  uint32_t request_id = 0;  // wire request id (per-connection sequence)
  uint32_t batch_keys = 0;  // keys in the coalesced FindBatch (reads)
  uint32_t thread_id = 0;   // recorder-assigned small id (ring index)
  uint8_t opcode = 0;       // net::Opcode image
  uint8_t status = 0;       // net::Status image
  uint8_t slow = 0;         // 1 if retained via the slow threshold
  uint8_t num_spans = 0;    // valid entries in spans[]
  uint8_t reserved[4] = {};
  RequestSpan spans[kMaxRequestSpans];
};
static_assert(std::is_trivially_copyable_v<RequestTrace>);
static_assert(sizeof(RequestTrace) % sizeof(uint64_t) == 0);

// Appends one span; silently drops past kMaxRequestSpans (the first
// spans of a pathological pipeline are the interesting ones).
inline void AppendRequestSpan(RequestTrace* t, RequestSpanKind kind,
                              uint64_t start_ns, uint64_t duration_ns) {
  if (t->num_spans >= kMaxRequestSpans) return;
  RequestSpan& s = t->spans[t->num_spans++];
  s.start_ns = start_ns;
  s.duration_ns = duration_ns;
  s.kind = static_cast<uint8_t>(kind);
}

// --- index-internal span collection ------------------------------------

// Scratch the server arms (thread-locally) around a backend call; the
// concurrency wrappers mark their sub-phases into it. Fixed-size: a
// FindBatch records at most fan-out + descent.
struct SpanCollector {
  RequestSpan spans[4];
  int count = 0;

  void Add(RequestSpanKind kind, uint64_t start_ns, uint64_t duration_ns) {
    if (count >= 4) return;
    spans[count].start_ns = start_ns;
    spans[count].duration_ns = duration_ns;
    spans[count].kind = static_cast<uint8_t>(kind);
    ++count;
  }
};

namespace request_internal {
// Only the owning thread reads or writes the collector pointer.
extern thread_local SpanCollector* g_collector;
}  // namespace request_internal

inline SpanCollector* ActiveSpanCollector() {
  return request_internal::g_collector;
}
inline void SetActiveSpanCollector(SpanCollector* c) {
  request_internal::g_collector = c;
}

// RAII sub-phase marker for the wrappers. When no collector is armed
// (every non-serving caller) the constructor is one thread-local load
// and a predictable branch; no timestamps are read.
class CollectedSpanScope {
 public:
  explicit CollectedSpanScope(RequestSpanKind kind)
      : collector_(ActiveSpanCollector()), kind_(kind) {
    if (collector_ != nullptr) [[unlikely]] {
      start_cycles_ = CycleTimer::Now();
    }
  }

  CollectedSpanScope(const CollectedSpanScope&) = delete;
  CollectedSpanScope& operator=(const CollectedSpanScope&) = delete;

  ~CollectedSpanScope() { Finish(); }

  void Finish() {
    if (collector_ == nullptr) return;
    const uint64_t start_ns = static_cast<uint64_t>(
        CycleTimer::ToNanoseconds(start_cycles_));
    const uint64_t dur_ns = static_cast<uint64_t>(
        CycleTimer::ToNanoseconds(CycleTimer::Now() - start_cycles_));
    collector_->Add(kind_, start_ns, dur_ns);
    collector_ = nullptr;
  }

 private:
  SpanCollector* collector_;
  RequestSpanKind kind_;
  uint64_t start_cycles_ = 0;
};

// --- the recorder ------------------------------------------------------

// Process-wide request-trace sink: per-thread rings for head-sampled
// requests plus a bounded slow log for tail-retained ones. Mirrors
// Tracer (obs/trace.h); the global instance is leaked for the same
// teardown-safety reason.
class RequestTracer {
 public:
  static constexpr size_t kRingCapacity = 256;  // per recording thread
  static constexpr size_t kSlowCapacity = 128;

  using Ring = SeqlockRing<RequestTrace, kRingCapacity>;

  static RequestTracer& Global();

  RequestTracer();
  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  // Arms the recorder. head_rate: keep 1 in N completed requests
  // (0 = none); slow_threshold_ns: always keep requests at or above
  // this end-to-end latency (0 = none). Both zero disarms. Defaults
  // come from SIMDTREE_REQUEST_SAMPLE / SIMDTREE_REQUEST_SLOW_NS.
  void Configure(uint32_t head_rate, uint64_t slow_threshold_ns);

  // The serving path's arm check: one relaxed load per pipeline drain.
  bool enabled() const {
    return armed_.load(std::memory_order_relaxed);
  }
  uint32_t head_rate() const {
    return head_rate_.load(std::memory_order_relaxed);
  }
  uint64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }

  // Hands over one completed request: stamps the slow bit and thread
  // id, decides retention (always-keep on slow-threshold breach, else
  // deterministic 1-in-head_rate), and writes the rings. Returns true
  // iff the trace was retained — the caller uses that to publish the
  // trace id as a histogram exemplar, so every rendered exemplar is
  // inspectable in /requestz.
  bool Finish(RequestTrace* t);

  // Process-unique nonzero trace ids.
  uint64_t NextTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // Racy merged snapshot of the head-sampled rings, oldest first.
  std::vector<RequestTrace> Snapshot(size_t max_traces = 0) const;
  // The tail-retained slow log, oldest first.
  std::vector<RequestTrace> SlowSnapshot() const;

  uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  uint64_t retained() const {
    return retained_.load(std::memory_order_relaxed);
  }
  uint64_t slow_retained() const {
    return slow_retained_.load(std::memory_order_relaxed);
  }

  // Test isolation only: clears rings and counters; requires recording
  // threads to be quiescent.
  void Reset();

 private:
  struct ThreadSlot {
    Ring* ring = nullptr;
    uint32_t id = 0;
  };
  ThreadSlot SlotForThisThread();

  // Same aliasing defence as Tracer: the per-thread ring cache is keyed
  // by a process-unique instance id, never by address.
  const uint64_t instance_id_;

  std::atomic<bool> armed_{false};
  std::atomic<uint32_t> head_rate_{0};
  std::atomic<uint64_t> slow_threshold_ns_{0};
  std::atomic<uint64_t> next_trace_id_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> retained_{0};
  std::atomic<uint64_t> slow_retained_{0};

  mutable std::mutex mutex_;  // guards rings_ growth + slow log
  std::vector<std::unique_ptr<Ring>> rings_;  // never shrunk
  std::vector<RequestTrace> slow_;
  size_t slow_next_ = 0;
};

}  // namespace simdtree::obs

#endif  // SIMDTREE_OBS_REQUEST_TRACE_H_
