// Query-trace flight recorder: sampled per-descent traces in lock-free
// per-thread ring buffers, plus a bounded slow-query log.
//
// The metrics registry (obs/metrics.h) answers "how fast are we on
// average"; this file answers "which queries are slow and where inside
// the descent they spend their time". A sampled lookup records one
// DescentTrace: the backend, the shard, and one LevelSpan per tree level
// touched — the node's compressed reference, the key-store layout it was
// searched with, the SIMD/scalar comparison counts of that level's
// in-node search, the arena slab the node block lives in, and the cycles
// the level took. The paper's tuning story (layout x bitmask-eval x
// node size, Sections 3-5) is machine- and workload-dependent; the
// flight recorder is how a production deployment sees those per-level
// costs on live traffic instead of in offline benches.
//
// Sampling: 1-in-N, enabled by EnableTracing(rate) or the
// SIMDTREE_TRACE_SAMPLE environment variable (read once at startup).
// The hot-path check, TraceShouldSample(), compiles to one relaxed
// atomic load and one predictable branch when tracing is off; the
// per-thread countdown runs only once sampling is enabled. Sampling is
// deterministic per thread (every rate-th query), so tests can assert
// exact trace counts.
//
// Recording: each thread writes to its own TraceRing — a fixed ring of
// seqlock-protected slots whose payload is stored word-wise through
// relaxed atomics. Writers are wait-free and never share a ring;
// readers (Tracer::Snapshot, the /tracez endpoint) take a racy snapshot
// and simply skip slots that are mid-write. All cross-thread accesses
// go through atomics, so the scheme is clean under ThreadSanitizer.
//
// Slow-query log: a traced descent whose total latency crosses
// SetSlowThresholdNs (or SIMDTREE_TRACE_SLOW_NS) is additionally
// promoted — full path included — into a bounded retention buffer that
// survives ring wraparound, so rare outliers stay inspectable long
// after the flight recorder has cycled past them.

#ifndef SIMDTREE_OBS_TRACE_H_
#define SIMDTREE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "obs/seqlock_ring.h"
#include "util/counters.h"
#include "util/cycle_timer.h"

namespace simdtree::obs {

// Index structure a trace descended. One byte in the trace schema.
enum class TraceBackend : uint8_t {
  kUnknown = 0,
  kBPlusTree = 1,         // GenericBPlusTree + PlainKeyStore
  kSegTree = 2,           // GenericBPlusTree + SegKeyStore
  kSegTrie = 3,
  kOptimizedSegTrie = 4,  // lazy-expansion trie
  kCompressedSegTrie = 5,
  kKaryArray = 6,
};

const char* TraceBackendName(uint8_t backend);

// Key-store layout searched at one level.
inline constexpr uint8_t kTraceLayoutPlain = 0;         // sorted array
inline constexpr uint8_t kTraceLayoutBreadthFirst = 1;  // linearized k-ary BF
inline constexpr uint8_t kTraceLayoutDepthFirst = 2;    // linearized k-ary DF
inline constexpr uint8_t kTraceLayoutTrieNode = 3;      // compact trie node

const char* TraceLayoutName(uint8_t layout);

inline constexpr uint8_t kTraceSlabUnknown = 0xff;
inline constexpr uint16_t kTraceNoShard = 0xffff;
inline constexpr uint32_t kTraceNoNodeRef = 0xffffffffu;

// One level of a descent. 16 bytes; a full trace stays cache-friendly.
struct LevelSpan {
  uint32_t node_ref = kTraceNoNodeRef;  // compressed node ref (arena slot);
                                        // grouped descents: nodes visited
                                        // at this level (saturated)
  uint32_t cycles = 0;                  // TSC cycles spent at this level
  uint16_t simd_cmps = 0;               // SIMD compare steps in the node
  uint16_t scalar_cmps = 0;             // scalar compare steps in the node
  uint8_t layout = kTraceLayoutPlain;   // kTraceLayout* of the key store
  uint8_t arena_slab = kTraceSlabUnknown;  // slab index of the node block
  uint16_t group_size = 0;  // queries sharing this level (grouped descent;
                            // 0 for single-query and pipelined spans)
};
static_assert(sizeof(LevelSpan) == 16);

// Deep enough for every backend: a 16M-key B+-Tree is 4-5 levels, a
// 64-bit 8-bit-segment trie is 8, a 4-bit-segment trie is 16.
inline constexpr int kMaxTraceLevels = 20;

// Connection/request attribution absent (no serving context).
inline constexpr uint32_t kTraceNoConn = 0;

// One sampled descent. Trivially copyable (the ring stores it word-wise
// through atomics) and fixed-size (no allocation on the record path).
struct DescentTrace {
  uint64_t key = 0;           // probed key, cast to its unsigned image
  uint64_t start_ns = 0;      // TSC-derived monotonic start timestamp
  uint64_t latency_ns = 0;    // full operation latency
  uint64_t lock_wait_ns = 0;  // wrapper lock acquisition wait (0 if none)
  uint32_t thread_id = 0;     // tracer-assigned small id (ring index)
  uint32_t conn_id = kTraceNoConn;  // serving connection (net/server.cc)
  uint32_t request_id = 0;    // wire request id of the attributed op
  uint16_t shard = kTraceNoShard;  // owning shard (sharded wrapper only)
  uint8_t backend = static_cast<uint8_t>(TraceBackend::kUnknown);
  uint8_t levels = 0;         // valid entries in level[]
  uint8_t found = 0;          // 1 if the key was present
  uint8_t slow = 0;           // 1 if promoted to the slow-query log
  uint8_t batched = 0;        // 1 if recorded inside a batch descent
  uint8_t reserved[5] = {};
  LevelSpan level[kMaxTraceLevels];
};
static_assert(std::is_trivially_copyable_v<DescentTrace>);
static_assert(sizeof(DescentTrace) % sizeof(uint64_t) == 0);

// Appends one level span; silently drops levels beyond kMaxTraceLevels
// (deeper structures keep the first kMaxTraceLevels levels).
inline void AppendTraceLevel(DescentTrace* t, uint32_t node_ref,
                             uint8_t layout, uint8_t arena_slab,
                             const SearchCounters& cmps, uint64_t cycles,
                             uint16_t group_size = 0) {
  if (t->levels >= kMaxTraceLevels) return;
  LevelSpan& s = t->level[t->levels++];
  s.node_ref = node_ref;
  s.cycles = cycles > 0xffffffffu ? 0xffffffffu
                                  : static_cast<uint32_t>(cycles);
  s.simd_cmps = static_cast<uint16_t>(
      cmps.simd_comparisons > 0xffff ? 0xffff : cmps.simd_comparisons);
  s.scalar_cmps = static_cast<uint16_t>(
      cmps.scalar_comparisons > 0xffff ? 0xffff : cmps.scalar_comparisons);
  s.layout = layout;
  s.arena_slab = arena_slab;
  s.group_size = group_size;
}

namespace trace_internal {

// Global sample rate: 0 = tracing off. Initialized from
// SIMDTREE_TRACE_SAMPLE at load time; EnableTracing overwrites it.
extern std::atomic<uint32_t> g_sample_rate;

// Out-of-line per-thread countdown; called only when tracing is on.
bool SampleSlowPath(uint32_t rate);

// Resets the calling thread's sampling countdown (test determinism).
void ResetThreadSampleCountdown();

// Per-thread serving attribution (see SetTraceRequestContext). Plain
// thread-locals: only the owning thread reads or writes them.
extern thread_local uint32_t g_conn_id;
extern thread_local uint32_t g_request_id;

}  // namespace trace_internal

// Serving-path attribution: the KV server stamps the connection and
// wire request id it is about to execute, and every TraceScope opened
// on this thread until the next call (including the scopes ShardedIndex
// opens inside FindBatch) carries them — so a slow wire request can be
// joined against its descent trace in /tracez. Zero-cost for
// non-serving callers: the thread-locals default to kTraceNoConn/0.
inline void SetTraceRequestContext(uint32_t conn_id, uint32_t request_id) {
  trace_internal::g_conn_id = conn_id;
  trace_internal::g_request_id = request_id;
}

inline void ClearTraceRequestContext() { SetTraceRequestContext(0, 0); }

// The hot-path sampling decision. With tracing off this is one relaxed
// load of a process-wide atomic plus one predictable (never-taken)
// branch — cheap enough to sit on every lookup.
inline bool TraceShouldSample() {
  const uint32_t rate =
      trace_internal::g_sample_rate.load(std::memory_order_relaxed);
  if (rate == 0) [[likely]] {
    return false;
  }
  return trace_internal::SampleSlowPath(rate);
}

// Enables 1-in-`rate` sampling (rate 1 traces everything; 0 disables).
void EnableTracing(uint32_t rate);
uint32_t TraceSampleRate();

// Per-thread descent-trace ring: 256 seqlock slots (obs/seqlock_ring.h
// holds the memory protocol; the request-span recorder shares it).
using TraceRing = SeqlockRing<DescentTrace, 256>;

// Process-wide trace sink: owns the per-thread rings and the slow-query
// retention buffer. Like MetricsRegistry, the global instance is never
// destroyed, so threads recording at exit cannot touch a dead object.
class Tracer {
 public:
  static constexpr size_t kSlowCapacity = 128;  // slow-query retention

  static Tracer& Global();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Descents at or above this total latency are promoted to the slow
  // log (0 disables promotion). Initialized from SIMDTREE_TRACE_SLOW_NS.
  void SetSlowThresholdNs(uint64_t ns) {
    slow_threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }

  // Records one finished trace: stamps the thread id, writes the
  // calling thread's ring (wait-free), and promotes to the slow log
  // when the latency crosses the threshold (that path takes a mutex —
  // slow queries are rare by definition).
  void Record(DescentTrace t);

  // Racy merged snapshot of every thread's ring, oldest first. Slots
  // being written concurrently are skipped. `max_traces` 0 = no cap;
  // otherwise the newest `max_traces` are returned.
  std::vector<DescentTrace> Snapshot(size_t max_traces = 0) const;

  // The slow-query retention buffer, oldest first.
  std::vector<DescentTrace> SlowSnapshot() const;

  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t slow_recorded() const {
    return slow_recorded_.load(std::memory_order_relaxed);
  }

  // Test isolation only: clears rings, the slow log, and the calling
  // thread's sampling countdown. Never call with recording threads live.
  void Reset();

 private:
  struct ThreadSlot {
    TraceRing* ring = nullptr;
    uint32_t id = 0;
  };
  ThreadSlot SlotForThisThread();

  // Process-unique id keying the per-thread ring cache: a `Tracer*`
  // alone could alias a destroyed instance at a reused address (stack
  // tracers in consecutive tests), handing back a freed ring.
  const uint64_t instance_id_;

  mutable std::mutex mutex_;  // guards rings_ growth + slow log
  std::vector<std::unique_ptr<TraceRing>> rings_;  // never shrunk
  std::vector<DescentTrace> slow_;  // bounded ring over kSlowCapacity
  size_t slow_next_ = 0;
  std::atomic<uint64_t> slow_threshold_ns_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> slow_recorded_{0};
};

// Scope helper for the wrapper hook: captures start time, fills latency
// on Finish. Kept header-only so the traced path inlines away from the
// untraced one.
class TraceScope {
 public:
  TraceScope() : start_cycles_(CycleTimer::Now()) {
    trace_.start_ns = static_cast<uint64_t>(
        CycleTimer::ToNanoseconds(start_cycles_));
    trace_.conn_id = trace_internal::g_conn_id;
    trace_.request_id = trace_internal::g_request_id;
  }

  DescentTrace* trace() { return &trace_; }

  // Stamps latency and hands the trace to the global tracer.
  void Finish() {
    trace_.latency_ns = static_cast<uint64_t>(
        CycleTimer::ToNanoseconds(CycleTimer::Now() - start_cycles_));
    Tracer::Global().Record(trace_);
  }

 private:
  DescentTrace trace_;
  uint64_t start_cycles_;
};

}  // namespace simdtree::obs

#endif  // SIMDTREE_OBS_TRACE_H_
