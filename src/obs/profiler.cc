#include "obs/profiler.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace simdtree::obs {

namespace {

bool DisabledByEnv() {
  const char* env = std::getenv("SIMDTREE_DISABLE_PERF");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

#if defined(__linux__)

// 2^3 data pages per thread ring: 32 KiB holds hundreds of callchain
// samples between collections at the default 99 Hz.
constexpr size_t kRingDataPages = 8;
constexpr uint64_t kMaxCallchainDepth = 64;

void FillSamplingAttr(perf_event_attr* attr, int freq_hz) {
  std::memset(attr, 0, sizeof(*attr));
  attr->size = sizeof(*attr);
  attr->type = PERF_TYPE_SOFTWARE;
  attr->config = PERF_COUNT_SW_CPU_CLOCK;
  attr->freq = 1;
  attr->sample_freq = static_cast<uint64_t>(freq_hz);
  attr->sample_type = PERF_SAMPLE_IP | PERF_SAMPLE_CALLCHAIN;
  attr->exclude_kernel = 1;
  attr->exclude_hv = 1;
  attr->exclude_callchain_kernel = 1;
  attr->sample_max_stack = static_cast<uint16_t>(kMaxCallchainDepth);
}

int OpenSamplingEvent(int freq_hz) {
  perf_event_attr attr;
  FillSamplingAttr(&attr, freq_hz);
  // pid = 0, cpu = -1: the calling thread, on whatever CPU it runs.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

bool ProbeSamplingOnce() {
  // Counting mode being permitted does not imply sampling mode is
  // (perf_event_paranoid and seccomp policies distinguish them), so the
  // probe opens a real sampling event.
  const int fd = OpenSamplingEvent(99);
  if (fd < 0) return false;
  close(fd);
  return true;
}

#endif  // __linux__

}  // namespace

#if defined(__linux__)

struct ContinuousProfiler::ThreadRing {
  int fd = -1;
  uint8_t* base = nullptr;  // mmap: 1 metadata page + kRingDataPages
  size_t mmap_len = 0;
  size_t data_size = 0;

  ~ThreadRing() {
    if (base != nullptr) munmap(base, mmap_len);
    if (fd >= 0) close(fd);
  }
};

#else

struct ContinuousProfiler::ThreadRing {};

#endif  // __linux__

ContinuousProfiler& ContinuousProfiler::Global() {
  // Leaked: worker threads may be sampled until process exit.
  static ContinuousProfiler* instance = new ContinuousProfiler();
  return *instance;
}

ContinuousProfiler::~ContinuousProfiler() { Stop(); }

bool ContinuousProfiler::Available() {
  if (DisabledByEnv()) return false;
#if defined(__linux__)
  static const bool probed = ProbeSamplingOnce();
  return probed;
#else
  return false;
#endif
}

bool ContinuousProfiler::Start(int freq_hz) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_.load(std::memory_order_acquire)) return true;
  if (freq_hz <= 0) freq_hz = 99;
  if (!Available()) {
    error_ = DisabledByEnv()
                 ? "disabled by SIMDTREE_DISABLE_PERF"
                 : "perf_event_open sampling denied (perf_event_paranoid?)";
    return false;
  }
  error_.clear();
  freq_hz_ = freq_hz;
  generation_.fetch_add(1, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  return true;
}

void ContinuousProfiler::Stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!running_.exchange(false)) return;
  DrainLocked();  // keep the final window's samples
  for (ThreadRing* r : rings_) delete r;
  rings_.clear();
}

bool ContinuousProfiler::RegisterCurrentThread() {
#if defined(__linux__)
  if (!running_.load(std::memory_order_acquire)) return false;
  // Idempotent per Start() generation: re-registering after a
  // Stop/Start cycle opens a fresh ring, within one it is a no-op.
  thread_local uint64_t registered_gen = 0;
  const uint64_t gen = generation_.load(std::memory_order_acquire);
  if (registered_gen == gen) return true;

  const int fd = OpenSamplingEvent(freq_hz_);
  if (fd < 0) return false;
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  const size_t len = page * (1 + kRingDataPages);
  void* base = mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    close(fd);
    return false;
  }
  auto* ring = new ThreadRing();
  ring->fd = fd;
  ring->base = static_cast<uint8_t*>(base);
  ring->mmap_len = len;
  ring->data_size = page * kRingDataPages;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      delete ring;
      return false;
    }
    rings_.push_back(ring);
  }
  registered_gen = gen;
  return true;
#else
  return false;
#endif
}

void ContinuousProfiler::DrainLocked() {
#if defined(__linux__)
  for (ThreadRing* r : rings_) {
    auto* meta = reinterpret_cast<perf_event_mmap_page*>(r->base);
    const uint8_t* data = r->base + r->mmap_len - r->data_size;
    const uint64_t head = __atomic_load_n(&meta->data_head, __ATOMIC_ACQUIRE);
    uint64_t tail = meta->data_tail;
    while (tail < head) {
      // Records can wrap the ring edge; copy the header, then the
      // payload, each with modular addressing.
      perf_event_header hdr;
      for (size_t i = 0; i < sizeof(hdr); ++i) {
        reinterpret_cast<uint8_t*>(&hdr)[i] =
            data[(tail + i) % r->data_size];
      }
      if (hdr.size == 0) break;  // corrupt ring; stop rather than spin
      std::vector<uint8_t> payload(hdr.size);
      for (size_t i = 0; i < hdr.size; ++i) {
        payload[i] = data[(tail + i) % r->data_size];
      }
      tail += hdr.size;
      const uint8_t* p = payload.data() + sizeof(hdr);
      const uint8_t* end = payload.data() + payload.size();
      if (hdr.type == PERF_RECORD_LOST) {
        if (p + 16 <= end) {
          uint64_t lost;
          std::memcpy(&lost, p + 8, 8);
          lost_ += lost;
        }
        continue;
      }
      if (hdr.type != PERF_RECORD_SAMPLE) continue;
      // Layout per sample_type order: ip, then nr + ips[nr].
      if (p + 16 > end) continue;
      uint64_t ip, nr;
      std::memcpy(&ip, p, 8);
      std::memcpy(&nr, p + 8, 8);
      p += 16;
      if (nr > kMaxCallchainDepth ||
          p + nr * 8 > end) {
        continue;
      }
      // Callchain arrives leaf-first with PERF_CONTEXT_* markers
      // interleaved; folded format wants root-first, markers dropped.
      std::vector<uint64_t> frames;
      frames.reserve(nr);
      for (uint64_t i = 0; i < nr; ++i) {
        uint64_t addr;
        std::memcpy(&addr, p + i * 8, 8);
        if (addr >= PERF_CONTEXT_MAX) continue;  // context marker
        frames.push_back(addr);
      }
      if (frames.empty()) frames.push_back(ip);
      std::string folded;
      for (size_t i = frames.size(); i-- > 0;) {
        auto it = symbols_.find(frames[i]);
        if (it == symbols_.end()) {
          char buf[128];
          Dl_info info;
          if (dladdr(reinterpret_cast<void*>(frames[i]), &info) != 0 &&
              info.dli_sname != nullptr) {
            int status = 0;
            char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr,
                                                  nullptr, &status);
            std::string name =
                status == 0 && demangled != nullptr ? demangled
                                                    : info.dli_sname;
            std::free(demangled);
            // Folded-format separators are ; and space; scrub them.
            for (char& c : name) {
              if (c == ';' || c == ' ' || c == '\n') c = '_';
            }
            it = symbols_.emplace(frames[i], std::move(name)).first;
          } else if (dladdr(reinterpret_cast<void*>(frames[i]), &info) !=
                         0 &&
                     info.dli_fname != nullptr) {
            const char* slash = std::strrchr(info.dli_fname, '/');
            std::snprintf(
                buf, sizeof(buf), "%s+0x%llx",
                slash != nullptr ? slash + 1 : info.dli_fname,
                static_cast<unsigned long long>(
                    frames[i] -
                    reinterpret_cast<uint64_t>(info.dli_fbase)));
            it = symbols_.emplace(frames[i], buf).first;
          } else {
            std::snprintf(buf, sizeof(buf), "0x%llx",
                          static_cast<unsigned long long>(frames[i]));
            it = symbols_.emplace(frames[i], buf).first;
          }
        }
        if (!folded.empty()) folded.push_back(';');
        folded += it->second;
      }
      ++profile_[folded];
      ++samples_;
    }
    __atomic_store_n(&meta->data_tail, tail, __ATOMIC_RELEASE);
  }
#endif
}

std::string ContinuousProfiler::Collect() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  if (!running_.load(std::memory_order_acquire) && profile_.empty()) {
    out = "# profiler not running";
    if (!error_.empty()) {
      out += ": ";
      out += error_;
    } else if (!Available()) {
      out += ": perf sampling unavailable on this host";
    }
    out += "\n";
    return out;
  }
  DrainLocked();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "# on-CPU profile: %llu samples, %llu lost, %zu threads, "
                "%d Hz\n",
                static_cast<unsigned long long>(samples_),
                static_cast<unsigned long long>(lost_), rings_.size(),
                freq_hz_);
  out += buf;
  for (const auto& [stack, count] : profile_) {
    out += stack;
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(count));
    out += buf;
  }
  return out;
}

ContinuousProfiler::Stats ContinuousProfiler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{samples_, lost_, rings_.size()};
}

void ContinuousProfiler::Reset() {
  Stop();
  std::lock_guard<std::mutex> lock(mutex_);
  profile_.clear();
  symbols_.clear();
  samples_ = 0;
  lost_ = 0;
  error_.clear();
}

}  // namespace simdtree::obs
