#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/request_trace.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "simd/dispatch.h"

namespace simdtree::obs {

namespace {

std::atomic<bool> g_health_draining{false};

}  // namespace

void SetHealthDraining(bool draining) {
  g_health_draining.store(draining, std::memory_order_release);
}

bool HealthDraining() {
  return g_health_draining.load(std::memory_order_acquire);
}

namespace {

// Publishes the runtime SIMD dispatch decision (simd/dispatch.h) as
// gauges, so /metrics scrapes carry the same provenance as the bench
// JSON headers: which backend serves searches in this process, its
// register width, whether SIMDTREE_FORCE_BACKEND pinned it, and which
// widths have native kernels compiled in. The values are fixed for the
// process lifetime; publishing is idempotent.
void PublishDispatchMetrics() {
  auto& reg = MetricsRegistry::Global();
  const simd::DispatchDecision& d = simd::ActiveDispatch();
  reg.GetGauge("simdtree_dispatch_level")
      ->Set(static_cast<double>(static_cast<int>(d.level)));
  reg.GetGauge("simdtree_dispatch_register_bits")
      ->Set(static_cast<double>(d.register_bits));
  reg.GetGauge("simdtree_dispatch_forced")->Set(d.forced ? 1.0 : 0.0);
  reg.GetGauge("simdtree_dispatch_native_128")
      ->Set(simd::NativeKernelsCompiled(128) ? 1.0 : 0.0);
  reg.GetGauge("simdtree_dispatch_native_256")
      ->Set(simd::NativeKernelsCompiled(256) ? 1.0 : 0.0);
  reg.GetGauge("simdtree_dispatch_native_512")
      ->Set(simd::NativeKernelsCompiled(512) ? 1.0 : 0.0);
}

std::string HttpResponse(int status, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

// Reads until the end of the request headers (blank line) or the
// buffer cap; returns the first request-line path, or "" on a
// malformed request. The server ignores request bodies — every route
// is a GET.
std::string ReadRequestPath(int fd) {
  std::string req;
  char buf[1024];
  while (req.size() < 16 * 1024 &&
         req.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<size_t>(n));
  }
  // "GET /path HTTP/1.1" — take the second token.
  const size_t sp1 = req.find(' ');
  if (sp1 == std::string::npos) return "";
  const size_t sp2 = req.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return "";
  if (req.compare(0, sp1, "GET") != 0) return "";
  return req.substr(sp1 + 1, sp2 - sp1 - 1);
}

void SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

}  // namespace

std::string StatsServer::HandleRequest(const std::string& path) {
  // Strip a query string: Prometheus may append one.
  const std::string route = path.substr(0, path.find('?'));
  PublishDispatchMetrics();
  PublishEpochStats();
  PublishBuildInfo();
  if (route == "/metrics") {
    return HttpResponse(
        200, "OK",
        "application/openmetrics-text; version=1.0.0; charset=utf-8",
        RenderOpenMetrics(MetricsRegistry::Global().Snap()));
  }
  if (route == "/metrics.json") {
    return HttpResponse(200, "OK", "application/json",
                        RenderMetricsJson(MetricsRegistry::Global(),
                                          Tracer::Global()));
  }
  if (route == "/tracez") {
    return HttpResponse(200, "OK", "application/json",
                        RenderTracezJson(Tracer::Global()));
  }
  if (route == "/requestz") {
    return HttpResponse(200, "OK", "application/json",
                        RenderRequestzJson(RequestTracer::Global()));
  }
  if (route == "/profilez") {
    // Always 200: on denied-PMU hosts the body is a comment line
    // explaining why, and scrape pipelines stay green.
    return HttpResponse(200, "OK", "text/plain",
                        ContinuousProfiler::Global().Collect());
  }
  if (route == "/slo") {
    // Scrape-driven ticking: every /slo poll extends the window, so
    // the monitor works without its background thread.
    SloMonitor::Global().Tick();
    return HttpResponse(200, "OK", "application/json",
                        SloMonitor::Global().ToJson());
  }
  if (route == "/healthz") {
    if (HealthDraining()) {
      return HttpResponse(503, "Service Unavailable", "text/plain",
                          "draining\n");
    }
    return HttpResponse(200, "OK", "text/plain", "ok\n");
  }
  return HttpResponse(404, "Not Found", "text/plain", "not found\n");
}

bool StatsServer::Start(uint16_t port, const std::string& bind_addr) {
  if (running_.load(std::memory_order_acquire)) return true;
  error_.clear();
  PublishDispatchMetrics();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    error_ = "invalid bind address: " + bind_addr;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    error_ = std::string("bind/listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);  // resolves an ephemeral bind
  } else {
    port_ = port;
  }

  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&StatsServer::AcceptLoop, this);
  return true;
}

void StatsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // The acceptor polls with a timeout and rechecks running_, so it
  // notices the flag within one poll interval.
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
}

void StatsServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc <= 0) continue;  // timeout or EINTR: recheck running_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // A stalled client must not wedge the single acceptor (or Stop()).
    timeval rcv_timeout{/*tv_sec=*/2, /*tv_usec=*/0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv_timeout,
                 sizeof(rcv_timeout));
    const std::string path = ReadRequestPath(fd);
    if (!path.empty()) {
      SendAll(fd, HandleRequest(path));
    } else {
      SendAll(fd, HttpResponse(400, "Bad Request", "text/plain",
                               "bad request\n"));
    }
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace simdtree::obs
