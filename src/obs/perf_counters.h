// Hardware performance counters via perf_event_open.
//
// The paper's evaluation argues in hardware terms — instructions
// retired, last-level-cache misses, and branch mispredictions per search
// (Figures 9-11) — not just wall-clock time. PerfCounterGroup samples
// exactly those events around a measured region so the bench harness can
// reproduce the paper's per-operation hardware profiles directly.
//
// Design:
//   * One perf event *group* (cycles leader + instructions +
//     LLC-load-misses + branch-misses + dTLB-load-misses) so all five
//     events are scheduled onto the PMU together and read atomically
//     with one read(2). Five events can exceed the programmable counters
//     of some PMUs; the kernel then refuses to co-schedule the group and
//     the time_running checks below degrade the sample to invalid rather
//     than report skewed counts.
//   * Multiplexing-aware: the kernel time-shares the PMU when more
//     groups are open than there are hardware counters; the read format
//     includes time_enabled/time_running and every count is scaled by
//     their ratio (the standard perf extrapolation). HwCounts::scale
//     reports the ratio so callers can see how much was extrapolated
//     (1.0 = the group was on the PMU the whole time).
//   * Graceful degradation: perf_event_open is often denied in
//     containers and CI (perf_event_paranoid, seccomp). Available()
//     probes once and callers get HwCounts{valid = false} instead of an
//     error, so benches and the CLI run everywhere and report "hw":
//     null where the hardware view is missing. The environment override
//     SIMDTREE_DISABLE_PERF=1 forces the fallback path (tested in CI,
//     where the syscall may or may not be available).
//
// Usage:
//   obs::PerfCounterGroup group;            // opens the events (or not)
//   group.Start();
//   ... measured region ...
//   const obs::HwCounts hw = group.Stop();
//   if (hw.valid) report(hw.instructions / ops);
//
// Counts are per *calling thread* (pid = 0, cpu = -1): the group follows
// the thread across CPUs and excludes other threads, which is the right
// scope for per-operation profiles of a single-threaded measured loop.

#ifndef SIMDTREE_OBS_PERF_COUNTERS_H_
#define SIMDTREE_OBS_PERF_COUNTERS_H_

#include <cstdint>

namespace simdtree::obs {

// One sample of the fixed event set over a measured region. Counts are
// already multiplex-scaled; `scale` records the applied
// time_enabled/time_running ratio (>= 1.0, exactly 1.0 when the group
// was never multiplexed off the PMU).
struct HwCounts {
  bool valid = false;  // false: counters unavailable, all counts zero
  double cycles = 0.0;
  double instructions = 0.0;
  double llc_misses = 0.0;     // LLC-load-misses (demand loads)
  double branch_misses = 0.0;  // mispredicted retired branches
  double dtlb_misses = 0.0;    // dTLB-load-misses (page-walk triggers)
  double scale = 1.0;

  double ipc() const { return cycles > 0.0 ? instructions / cycles : 0.0; }
};

// RAII group of the four paper events plus dTLB-load-misses (the
// hugepage-arena diagnostic, see mem/arena.h) around a measured region.
// Not thread-safe; create one per measuring thread.
class PerfCounterGroup {
 public:
  // Opens the event group for the calling thread. Failure is not an
  // error: ok() turns false and Start/Stop degrade to no-ops that
  // return HwCounts{valid = false}.
  PerfCounterGroup();
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  // Whether this process can open the event group at all. Probes the
  // syscall once and caches the verdict; SIMDTREE_DISABLE_PERF=1 forces
  // false (checked on every call, so tests can flip it).
  static bool Available();

  bool ok() const { return leader_fd_ >= 0; }

  // Resets and enables the group. No-op when !ok().
  void Start();

  // Disables the group and reads the scaled counts. HwCounts::valid is
  // false when the group is unavailable or the read failed.
  HwCounts Stop();

  // Convenience: Start(), run fn(), Stop().
  template <typename Fn>
  HwCounts Measure(Fn&& fn) {
    Start();
    fn();
    return Stop();
  }

 private:
  static constexpr int kEvents = 5;
  int leader_fd_ = -1;
  int fds_[kEvents] = {-1, -1, -1, -1, -1};
};

}  // namespace simdtree::obs

#endif  // SIMDTREE_OBS_PERF_COUNTERS_H_
