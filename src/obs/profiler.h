// Continuous on-CPU profiler: perf_event_open sampling mode.
//
// PerfCounterGroup (obs/perf_counters.h) answers "how many cycles and
// misses did this bounded region cost" — counting mode, start/stop
// around a bench loop. This profiler answers the production question
// "where is the CPU time going RIGHT NOW" with no bounded region:
// each registered thread opens a software CPU-clock event in frequency
// sampling mode with PERF_SAMPLE_CALLCHAIN and an mmap ring; the kernel
// appends a user-space callchain every ~1/freq seconds of on-CPU time,
// costing the profiled thread nothing but the PMU interrupt. Collect()
// drains every ring, folds the callchains into "sym;sym;sym count"
// lines (the flamegraph folded-stack format), and resolves symbols
// best-effort through dladdr — static functions fall back to
// "module+0xoffset", which flamegraph tooling renders fine.
//
// Graceful degradation, same contract as PerfCounterGroup: when
// perf_event_open is denied (seccomp'd CI runner, hardened
// perf_event_paranoid) or SIMDTREE_DISABLE_PERF is set, Start()
// returns false with the reason in error(), RegisterCurrentThread() is
// a no-op, and Collect() reports unavailability instead of failing the
// serving path. The /profilez endpoint (obs/stats_server.cc) and
// `simdtree_cli profile --continuous` both render whatever Collect()
// returns.
//
// Threading: registration and collection take a mutex; the sampled
// threads themselves never touch it after registering (the kernel
// writes their rings). One collector at a time drains the rings
// (data_tail is advanced under the mutex).

#ifndef SIMDTREE_OBS_PROFILER_H_
#define SIMDTREE_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace simdtree::obs {

class ContinuousProfiler {
 public:
  static ContinuousProfiler& Global();

  ContinuousProfiler() = default;
  ~ContinuousProfiler();
  ContinuousProfiler(const ContinuousProfiler&) = delete;
  ContinuousProfiler& operator=(const ContinuousProfiler&) = delete;

  // True when the kernel permits a sampling CPU-clock event (probed
  // once) and SIMDTREE_DISABLE_PERF is unset.
  static bool Available();

  // Arms the profiler at `freq_hz` samples/second of on-CPU time per
  // thread. Threads registered afterwards (and the calling thread, if
  // it registers) start sampling immediately. Returns false with the
  // reason in error() when sampling is unavailable. Idempotent while
  // running (freq changes require Stop() first).
  bool Start(int freq_hz);

  // Detaches and closes every per-thread event. Safe while profiled
  // threads are still alive — they simply stop being sampled.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  int freq_hz() const { return freq_hz_; }
  const std::string& error() const { return error_; }

  // Opens this thread's sampling event + ring. No-op (returns false)
  // when the profiler is not running or sampling is unavailable;
  // idempotent per thread per Start() generation.
  bool RegisterCurrentThread();

  // Drains every ring and appends the folded callchains into the
  // cumulative profile, then renders it: one "sym;sym;sym count" line
  // per distinct stack, leaf last, preceded by "# " comment lines with
  // sample/loss counts. When unavailable, the output is a single
  // comment line saying why — never an error, so scrape pipelines stay
  // green on denied-PMU hosts.
  std::string Collect();

  struct Stats {
    uint64_t samples = 0;  // callchain samples folded so far
    uint64_t lost = 0;     // kernel-reported dropped records
    uint64_t threads = 0;  // rings currently open
  };
  Stats stats() const;

  // Test isolation: Stop() + clears the cumulative profile.
  void Reset();

 private:
  struct ThreadRing;  // defined in profiler.cc (linux-only innards)

  void DrainLocked();

  mutable std::mutex mutex_;
  std::vector<ThreadRing*> rings_;
  // Folded stack -> sample count, accumulated across Collect() calls.
  std::map<std::string, uint64_t> profile_;
  // ip -> rendered frame, so repeated Collects symbolize each address
  // once.
  std::map<uint64_t, std::string> symbols_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> generation_{0};  // bumps per Start()
  int freq_hz_ = 0;
  uint64_t samples_ = 0;
  uint64_t lost_ = 0;
  std::string error_;
};

}  // namespace simdtree::obs

#endif  // SIMDTREE_OBS_PROFILER_H_
