// Lock-free single-writer ring of seqlock slots, generic over any
// trivially-copyable payload whose size is a multiple of 8 bytes.
//
// Extracted from the descent-trace flight recorder (obs/trace.h) so the
// request-span recorder (obs/request_trace.h) can reuse the exact same
// memory protocol: the owning thread writes payloads word-wise through
// relaxed atomics inside an odd/even seq bracket; any thread may take a
// racy snapshot and rejects torn slots by rechecking the seq. All
// cross-thread accesses go through atomics, so the scheme is race-free
// by construction (and clean under ThreadSanitizer).

#ifndef SIMDTREE_OBS_SEQLOCK_RING_H_
#define SIMDTREE_OBS_SEQLOCK_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace simdtree::obs {

template <typename T, size_t kCap>
class SeqlockRing {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(sizeof(T) % sizeof(uint64_t) == 0);

 public:
  static constexpr size_t kCapacity = kCap;
  static constexpr size_t kWords = sizeof(T) / sizeof(uint64_t);

  SeqlockRing() = default;
  SeqlockRing(const SeqlockRing&) = delete;
  SeqlockRing& operator=(const SeqlockRing&) = delete;

  // Owner thread only. Wait-free: one odd/even seq bracket around
  // word-wise relaxed stores of the payload.
  void Write(const T& t) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h % kCapacity];
    s.seq.fetch_add(1, std::memory_order_acq_rel);  // odd: write in flight
    uint64_t words[kWords];
    std::memcpy(words, &t, sizeof(t));
    for (size_t w = 0; w < kWords; ++w) {
      s.words[w].store(words[w], std::memory_order_relaxed);
    }
    s.seq.fetch_add(1, std::memory_order_release);  // even: committed
    head_.store(h + 1, std::memory_order_release);
  }

  // Any thread. Returns false for never-written or mid-write slots, or
  // when the writer lapped the read (torn snapshot rejected by the seq
  // recheck).
  bool TryRead(size_t slot, T* out) const {
    const Slot& s = slots_[slot % kCapacity];
    const uint32_t before = s.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) return false;
    uint64_t words[kWords];
    for (size_t w = 0; w < kWords; ++w) {
      words[w] = s.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != before) return false;
    std::memcpy(out, words, sizeof(*out));
    return true;
  }

  // Total payloads ever written to this ring (>= kCapacity once wrapped).
  uint64_t head() const { return head_.load(std::memory_order_acquire); }

  // Test isolation only: requires the owning thread to be quiescent.
  void ResetForTest() {
    for (Slot& s : slots_) s.seq.store(0, std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<uint32_t> seq{0};
    std::atomic<uint64_t> words[kWords];
  };
  Slot slots_[kCapacity];
  std::atomic<uint64_t> head_{0};
};

}  // namespace simdtree::obs

#endif  // SIMDTREE_OBS_SEQLOCK_RING_H_
