// Order-preserving key encodings for the Seg-Trie.
//
// A trie orders keys by their digital (bitwise) representation, which
// matches the numeric order only for unsigned integers. These codecs map
// other fixed-size key types onto unsigned integers so that
// encode(a) < encode(b) iff a < b, enabling "indexing of arbitrary data
// types" (paper Section 1, citing Boehm et al.):
//
//   * signed integers  — flip the sign bit (two's complement order fix);
//   * float / double   — the IEEE-754 total-order transform: positive
//     values get the sign bit set, negative values are bitwise inverted.
//     The resulting order matches numeric < on all finite values and
//     +/-inf; NaNs sort above +inf (positive NaN) or below -inf
//     (negative NaN), and -0.0 orders just below +0.0 — i.e. IEEE
//     totalOrder semantics.
//
// AdaptedSegTrie wraps a SegTrie with a codec, translating keys at the
// API boundary (including range scans and traversal callbacks).

#ifndef SIMDTREE_SEGTRIE_KEY_CODEC_H_
#define SIMDTREE_SEGTRIE_KEY_CODEC_H_

#include <bit>
#include <cstdint>
#include <optional>
#include <type_traits>

#include "segtrie/segtrie.h"

namespace simdtree::segtrie {

// --- codecs ------------------------------------------------------------------

template <typename S>
struct SignedCodec {
  static_assert(std::is_integral_v<S> && std::is_signed_v<S>);
  using Encoded = std::make_unsigned_t<S>;
  static constexpr Encoded kBias = Encoded{1}
                                   << (sizeof(S) * 8 - 1);

  static constexpr Encoded Encode(S v) {
    return static_cast<Encoded>(v) ^ kBias;
  }
  static constexpr S Decode(Encoded e) {
    return static_cast<S>(e ^ kBias);
  }
};

struct FloatCodec {
  using Encoded = uint32_t;
  static constexpr Encoded Encode(float v) {
    const uint32_t bits = std::bit_cast<uint32_t>(v);
    // Negative: invert everything (reverses order of negatives).
    // Positive: set the sign bit (shifts above all negatives).
    return (bits & 0x80000000u) != 0 ? ~bits : bits | 0x80000000u;
  }
  static constexpr float Decode(Encoded e) {
    const uint32_t bits =
        (e & 0x80000000u) != 0 ? e & ~0x80000000u : ~e;
    return std::bit_cast<float>(bits);
  }
};

struct DoubleCodec {
  using Encoded = uint64_t;
  static constexpr Encoded Encode(double v) {
    const uint64_t bits = std::bit_cast<uint64_t>(v);
    return (bits & 0x8000000000000000ull) != 0
               ? ~bits
               : bits | 0x8000000000000000ull;
  }
  static constexpr double Decode(Encoded e) {
    const uint64_t bits = (e & 0x8000000000000000ull) != 0
                              ? e & ~0x8000000000000000ull
                              : ~e;
    return std::bit_cast<double>(bits);
  }
};

// Picks the natural codec for a key type.
template <typename K>
struct DefaultCodec;
template <>
struct DefaultCodec<float> : FloatCodec {};
template <>
struct DefaultCodec<double> : DoubleCodec {};
template <>
struct DefaultCodec<int8_t> : SignedCodec<int8_t> {};
template <>
struct DefaultCodec<int16_t> : SignedCodec<int16_t> {};
template <>
struct DefaultCodec<int32_t> : SignedCodec<int32_t> {};
template <>
struct DefaultCodec<int64_t> : SignedCodec<int64_t> {};

// --- adapted trie -------------------------------------------------------------

// Seg-Trie over any key type with an order-preserving codec. Same API
// surface as SegTrie; keys are decoded before reaching user callbacks.
template <typename K, typename V, typename Codec = DefaultCodec<K>,
          int kSegmentBits = 8>
class AdaptedSegTrie {
 public:
  using Encoded = typename Codec::Encoded;
  using Base = SegTrie<Encoded, V, kSegmentBits>;
  using Options = typename Base::Options;

  explicit AdaptedSegTrie(Options options = {}) : trie_(options) {}

  bool Insert(K key, V value) {
    return trie_.Insert(Codec::Encode(key), std::move(value));
  }
  bool Erase(K key) { return trie_.Erase(Codec::Encode(key)); }
  std::optional<V> Find(K key) const {
    return trie_.Find(Codec::Encode(key));
  }
  bool Contains(K key) const { return trie_.Contains(Codec::Encode(key)); }

  template <typename Fn>
  void ForEach(Fn fn) const {
    trie_.ForEach([&fn](Encoded e, const V& v) { fn(Codec::Decode(e), v); });
  }

  // Range scan over the *decoded* order: lo <= key < hi (or <= hi).
  template <typename Fn>
  void ScanRange(K lo, K hi, Fn fn, bool hi_inclusive = false) const {
    trie_.ScanRange(
        Codec::Encode(lo), Codec::Encode(hi),
        [&fn](Encoded e, const V& v) { fn(Codec::Decode(e), v); },
        hi_inclusive);
  }

  size_t size() const { return trie_.size(); }
  bool empty() const { return trie_.empty(); }
  size_t MemoryBytes() const { return trie_.MemoryBytes(); }
  mem::ArenaStats MemStats() const { return trie_.MemStats(); }
  bool Validate() const { return trie_.Validate(); }
  int active_levels() const { return trie_.active_levels(); }

  // The underlying encoded trie (e.g. for serialization).
  const Base& base() const { return trie_; }

 private:
  Base trie_;
};

}  // namespace simdtree::segtrie

#endif  // SIMDTREE_SEGTRIE_KEY_CODEC_H_
