// Segment-Trie (paper Section 4): a prefix B-Tree over fixed-size key
// segments, searched with k-ary SIMD search inside every node.
//
// An m-bit key is split into r = m/L segments of L bits (L = 8 by
// default); segment 0 is the most significant. Level E_i of the trie
// indexes segment i: each node stores up to 2^L distinct partial keys in
// linearized k-ary order plus one child pointer (branching levels) or one
// value (leaf level E_{r-1}) per partial key. For L = 8 a node search
// costs exactly two SIMD comparisons (ceil(log17 256) = 2), so a full
// 64-bit traversal costs at most 16 — versus 64 scalar comparisons for
// binary search (paper Section 4).
//
// Nodes are compact single-allocation blocks (compact_node.h), so a
// lookup touches one contiguous block per level — the property that makes
// the trie's fixed upper bound on memory accesses (paper Section 4,
// advantage 2) real on cached hardware.
//
// In-node fast paths (paper Section 4): an empty node terminates the
// search, a single-key node is compared directly, and a completely full
// node is indexed directly like a hash table.
//
// The *optimized* Seg-Trie (lazy expansion, after Boehm et al. and Leis et
// al.) omits the leading levels while they carry a single shared prefix:
// the trie starts as one leaf node and grows upward only when a new key's
// prefix diverges. The omitted prefix is remembered in the trie
// (`prefix_bits_`). Levels are never re-omitted on deletion (the paper
// does not shrink either).
//
// Semantics: a map (one value per distinct key); Insert overwrites.
// Duplicate handling therefore differs from the multimap Seg-Tree — the
// trie deduplicates by construction (DESIGN.md). Values must be
// trivially copyable (compact blocks grow with memcpy).

#ifndef SIMDTREE_SEGTRIE_SEGTRIE_H_
#define SIMDTREE_SEGTRIE_SEGTRIE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <type_traits>
#include <vector>

#include "core/batch.h"
#include "core/batch_sort.h"
#include "obs/trace.h"
#include "segtrie/compact_node.h"
#include "simd/bitmask_eval.h"
#include "simd/simd128.h"
#include "util/cycle_timer.h"

namespace simdtree::segtrie {

// Key types the trie accepts directly: unsigned integers, including
// unsigned __int128 where available (16 levels of 8-bit segments). Signed
// and floating-point keys go through key_codec.h.
template <typename T>
inline constexpr bool kIsTrieKey =
#if defined(__SIZEOF_INT128__)
    std::is_unsigned_v<T> || std::is_same_v<T, unsigned __int128>;
#else
    std::is_unsigned_v<T>;
#endif

// Statistics for the memory/size experiments.
struct TrieStats {
  int levels = 0;      // materialized levels (== active depth)
  int max_levels = 0;  // r = key bits / segment bits
  size_t nodes = 0;
  size_t keys = 0;
  size_t memory_bytes = 0;
};

template <typename Key, typename Value, int kSegmentBits = 8,
          typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
class SegTrie {
  static_assert(kIsTrieKey<Key>,
                "the Seg-Trie orders keys by their digital representation; "
                "use unsigned keys (see key_codec.h for signed/float keys)");
  static_assert(kSegmentBits == 4 || kSegmentBits == 8 || kSegmentBits == 16,
                "segment width must be 4, 8, or 16 bits");
  static_assert(static_cast<int>(sizeof(Key)) * 8 % kSegmentBits == 0,
                "key width must be a multiple of the segment width");

 public:
  using KeyType = Key;
  using ValueType = Value;
  using Partial = std::conditional_t<kSegmentBits <= 8, uint8_t, uint16_t>;
  static constexpr int kLevels =
      static_cast<int>(sizeof(Key)) * 8 / kSegmentBits;  // r
  static constexpr int64_t kDomain = int64_t{1} << kSegmentBits;  // 2^L

  struct Options {
    // Lazy expansion: start at leaf level and grow upward on prefix
    // divergence (the paper's "optimized Seg-Trie").
    bool lazy_expansion = false;
  };

  explicit SegTrie(Options options = {})
      : options_(options),
        ctx_(kDomain, simd::LaneTraits<Partial, kBits>::kArity) {
    ResetEmpty();
  }

  ~SegTrie() { FreeAll(); }

  // Movable (nodes never hold pointers into the trie object; the context
  // is passed per call), not copyable.
  SegTrie(SegTrie&& other) noexcept
      : options_(other.options_),
        ctx_(std::move(other.ctx_)),
        root_(other.root_),
        size_(other.size_),
        prefix_bits_(other.prefix_bits_),
        active_levels_(other.active_levels_) {
    other.root_ = nullptr;
    other.size_ = 0;
  }
  SegTrie& operator=(SegTrie&& other) noexcept {
    if (this != &other) {
      FreeAll();
      options_ = other.options_;
      ctx_ = std::move(other.ctx_);
      root_ = other.root_;
      size_ = other.size_;
      prefix_bits_ = other.prefix_bits_;
      active_levels_ = other.active_levels_;
      other.root_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  SegTrie(const SegTrie&) = delete;
  SegTrie& operator=(const SegTrie&) = delete;

  // Builds a trie from ascending *distinct* keys in O(n) without per-key
  // descents: each level is constructed from the contiguous key runs that
  // share the upper segments.
  static SegTrie BulkLoad(const Key* keys, const Value* values, size_t n,
                          Options options = {}) {
    SegTrie trie(options);
    if (n == 0) return trie;
    assert(std::is_sorted(keys, keys + n));
    trie.FreeAll();
    int top_level = 0;
    if (options.lazy_expansion) {
      // First level where the keys diverge (or the leaf level).
      top_level = kLevels - 1;
      for (int level = 0; level < kLevels - 1; ++level) {
        if (Segment(keys[0], level) != Segment(keys[n - 1], level)) {
          top_level = level;
          break;
        }
      }
    }
    trie.active_levels_ = kLevels - top_level;
    trie.prefix_bits_ = UpperBits(keys[0], trie.active_levels_);
    trie.root_ = BulkBuild(trie.ctx_, keys, values, 0, n, top_level);
    trie.size_ = n;
    return trie;
  }

  // --- modification ---------------------------------------------------------

  // Inserts or overwrites; returns true when the key was new.
  bool Insert(Key key, Value value) {
    if (options_.lazy_expansion) {
      if (size_ == 0) {
        prefix_bits_ = UpperBits(key, 1);
        active_levels_ = 1;
      } else {
        GrowForPrefix(key);
      }
    }
    assert(UpperBits(key, active_levels_) == prefix_bits_);

    Inner* parent = nullptr;  // parent of `node`, for relocation fix-up
    int64_t parent_idx = 0;
    void* node = root_;
    for (int level = ActiveTopLevel();; ++level) {
      const Partial partial = Segment(key, level);
      if (level == kLevels - 1) {  // leaf level
        Leaf* leaf = static_cast<Leaf*>(node);
        const int64_t pos = leaf->UpperBound(ctx_, partial);
        if (pos > 0 && leaf->PartialAt(ctx_, pos - 1) == partial) {
          leaf->EntryAt(pos - 1) = value;
          return false;
        }
        Leaf* updated = Leaf::Insert(leaf, ctx_, pos, partial, value);
        FixParent(parent, parent_idx, leaf, updated);
        ++size_;
        return true;
      }
      Inner* inner = static_cast<Inner*>(node);
      const int64_t pos = inner->UpperBound(ctx_, partial);
      if (pos > 0 && inner->PartialAt(ctx_, pos - 1) == partial) {
        parent = inner;
        parent_idx = pos - 1;
        node = inner->EntryAt(pos - 1);
        continue;
      }
      // Missing segment: build the single-entry chain below and link it.
      void* child = BuildChain(key, level + 1, value);
      Inner* updated = Inner::Insert(inner, ctx_, pos, partial, child);
      FixParent(parent, parent_idx, inner, updated);
      ++size_;
      return true;
    }
  }

  // Removes `key`; empty nodes are deleted bottom-up (paper Section 4).
  bool Erase(Key key) {
    if (size_ == 0 || UpperBits(key, active_levels_) != prefix_bits_) {
      return false;
    }
    if (!EraseRec(root_, ActiveTopLevel(), key)) return false;
    --size_;
    if (size_ == 0) {
      FreeAll();
      ResetEmpty();
    }
    return true;
  }

  void Clear() {
    FreeAll();
    ResetEmpty();
  }

  // --- lookup ----------------------------------------------------------------

  std::optional<Value> Find(Key key) const {
    if (size_ == 0 || UpperBits(key, active_levels_) != prefix_bits_) {
      return std::nullopt;
    }
    const void* node = root_;
    for (int level = ActiveTopLevel(); level < kLevels - 1; ++level) {
      const Inner* inner = static_cast<const Inner*>(node);
      const int64_t idx = inner->FindPartial(ctx_, Segment(key, level));
      if (idx < 0) return std::nullopt;  // terminate above leaf level
      node = inner->EntryAt(idx);
    }
    const Leaf* leaf = static_cast<const Leaf*>(node);
    const int64_t idx = leaf->FindPartial(ctx_, Segment(key, kLevels - 1));
    if (idx < 0) return std::nullopt;
    return leaf->EntryAt(idx);
  }

  bool Contains(Key key) const { return Find(key).has_value(); }

  // Batched point lookup: out[i] = pointer to the stored value of
  // keys[i], or nullptr when absent. A group of `group` queries descends
  // the trie in lockstep one level at a time; each query's child node —
  // one compact single-allocation block — is prefetched as soon as it is
  // known, so the per-level misses of the group overlap instead of
  // serializing (see btree/batch_descent.h for the pipeline rationale).
  // The in-node fast paths (empty/single/full node, FindPartial) are
  // reused unchanged. Queries that terminate early on a missing segment
  // simply drop out of the group. Pointers stay valid until the next
  // mutation. A non-null `counters` accumulates the batch's logical cost
  // (nodes visited, SIMD/scalar comparisons) identically to summing
  // FindCounted over the batch — early-terminated queries stop counting
  // where the single-query descent would.
  void FindBatch(const Key* keys, size_t n, const Value** out,
                 int group = kDefaultBatchGroup,
                 SearchCounters* counters = nullptr) const {
    group = ClampBatchGroup(group);
    for (size_t off = 0; off < n; off += static_cast<size_t>(group)) {
      const int g = static_cast<int>(
          std::min<size_t>(static_cast<size_t>(group), n - off));
      FindGroup(keys + off, g, out + off, counters);
    }
  }

  // Grouped (level-wise) batched lookup: sorts the batch once
  // (core/batch_sort.h) and descends with a frontier of (node,
  // contiguous query run) pairs, grouping the sorted run by its
  // key-prefix at every trie level — queries sharing the segment path
  // resolve each (node, partial) pair once instead of once per query.
  // Answers match FindBatch exactly. A non-null `counters` accumulates
  // the same logical cost as summing FindCounted over the batch (the
  // per-(node, partial) search cost is deterministic, so one counted
  // probe is replicated per query sharing it); nodes_loaded additionally
  // counts each frontier node once per batch. Wins once the batch is
  // large relative to active_levels() — see UseGroupedDescent
  // (core/batch.h).
  void FindBatchGrouped(const Key* keys, size_t n, const Value** out,
                        SearchCounters* counters = nullptr) const {
    if (n == 0) return;
    if (size_ == 0) {
      for (size_t i = 0; i < n; ++i) out[i] = nullptr;
      return;
    }
    SortedBatch<Key> sorted;
    SortBatchWithPermutation(keys, n, &sorted);
    const Key* skeys = sorted.keys.data();
    const uint32_t* perm = sorted.perm.data();
    // The prefix gate: only keys sharing the omitted upper bits enter
    // the trie, and they form one contiguous range of the sorted batch.
    const Key lo_key = ShiftUp(prefix_bits_, active_levels_);
    const Key hi_key = lo_key | LowMask(active_levels_ * kSegmentBits);
    const uint32_t begin = static_cast<uint32_t>(
        std::lower_bound(skeys, skeys + n, lo_key) - skeys);
    const uint32_t end = static_cast<uint32_t>(
        std::upper_bound(skeys + begin, skeys + n, hi_key) - skeys);
    for (uint32_t j = 0; j < begin; ++j) out[perm[j]] = nullptr;
    for (uint32_t j = end; j < n; ++j) out[perm[j]] = nullptr;
    if (begin == end) return;

    std::vector<TrieRun> frontier, next;
    frontier.push_back(TrieRun{root_, begin, end});
    for (int level = ActiveTopLevel();
         level < kLevels - 1 && !frontier.empty(); ++level) {
      next.clear();
      // Queries with equal segments at and above `level` agree on all
      // bits down to `shift`, so a partial's sub-run ends at the first
      // query beyond cur | low-bits-set.
      const int shift = (kLevels - 1 - level) * kSegmentBits;
      for (size_t r = 0; r < frontier.size(); ++r) {
        if (r + kGroupedRunLookahead < frontier.size()) {
          PrefetchRead(frontier[r + kGroupedRunLookahead].node);
        }
        const TrieRun& run = frontier[r];
        const Inner* inner = static_cast<const Inner*>(run.node);
        if (counters != nullptr) {
          counters->nodes_visited += run.end - run.begin;
          ++counters->nodes_loaded;
        }
        uint32_t cur = run.begin;
        while (cur < run.end) {
          const Key sub_hi = skeys[cur] | LowMask(shift);
          const uint32_t sub_end = static_cast<uint32_t>(
              std::upper_bound(skeys + cur + 1, skeys + run.end, sub_hi) -
              skeys);
          const int64_t idx =
              ResolveShared(inner, Segment(skeys[cur], level),
                            sub_end - cur, counters);
          if (idx < 0) {  // missing segment terminates the sub-run early
            for (uint32_t j = cur; j < sub_end; ++j) out[perm[j]] = nullptr;
          } else {
            const void* child = inner->EntryAt(idx);
            PrefetchRead(child);
            PrefetchRead(static_cast<const char*>(child) + 64);
            next.push_back(TrieRun{child, cur, sub_end});
          }
          cur = sub_end;
        }
      }
      frontier.swap(next);
    }
    for (size_t r = 0; r < frontier.size(); ++r) {
      if (r + kGroupedRunLookahead < frontier.size()) {
        PrefetchRead(frontier[r + kGroupedRunLookahead].node);
      }
      const TrieRun& run = frontier[r];
      const Leaf* leaf = static_cast<const Leaf*>(run.node);
      if (counters != nullptr) {
        counters->nodes_visited += run.end - run.begin;
        ++counters->nodes_loaded;
      }
      uint32_t cur = run.begin;
      while (cur < run.end) {
        // At leaf level the sub-run is the run of exactly-equal keys.
        const Key q = skeys[cur];
        uint32_t sub_end = cur + 1;
        while (sub_end < run.end && skeys[sub_end] == q) ++sub_end;
        const int64_t idx = ResolveShared(leaf, Segment(q, kLevels - 1),
                                          sub_end - cur, counters);
        const Value* v = idx < 0 ? nullptr : &leaf->EntryAt(idx);
        for (uint32_t j = cur; j < sub_end; ++j) out[perm[j]] = v;
        cur = sub_end;
      }
    }
  }

  // Instrumented lookup: counts nodes visited and SIMD comparison steps.
  // Verifies the paper's Section 4 claims: at most active_levels() node
  // accesses, at most ceil(log_k(2^L)) SIMD comparisons per node, zero
  // SIMD comparisons for single-key and full nodes (fast paths), and
  // early termination above leaf level on a missing segment.
  std::optional<Value> FindCounted(Key key, SearchCounters* counters) const {
    if (size_ == 0 || UpperBits(key, active_levels_) != prefix_bits_) {
      return std::nullopt;
    }
    const void* node = root_;
    for (int level = ActiveTopLevel(); level < kLevels - 1; ++level) {
      ++counters->nodes_visited;
      const Inner* inner = static_cast<const Inner*>(node);
      const int64_t idx =
          FindPartialCounted(inner, Segment(key, level), counters);
      if (idx < 0) return std::nullopt;
      node = inner->EntryAt(idx);
    }
    ++counters->nodes_visited;
    const Leaf* leaf = static_cast<const Leaf*>(node);
    const int64_t idx =
        FindPartialCounted(leaf, Segment(key, kLevels - 1), counters);
    if (idx < 0) return std::nullopt;
    return leaf->EntryAt(idx);
  }

  // Traced lookup (obs/trace.h): same result as Find, one level span
  // per trie node searched. Trie nodes are compact heap blocks, not
  // arena slots, so node_ref carries the block address's low 32 bits
  // and arena_slab stays unknown; the layout id is the trie-node kind.
  std::optional<Value> FindTraced(Key key, obs::DescentTrace* t) const {
    t->key = static_cast<uint64_t>(key);
    t->backend = static_cast<uint8_t>(
        options_.lazy_expansion ? obs::TraceBackend::kOptimizedSegTrie
                                : obs::TraceBackend::kSegTrie);
    std::optional<Value> result;
    if (size_ != 0 && UpperBits(key, active_levels_) == prefix_bits_) {
      const void* node = root_;
      bool terminated = false;
      for (int level = ActiveTopLevel(); level < kLevels - 1; ++level) {
        const uint64_t start = CycleTimer::Now();
        const Inner* inner = static_cast<const Inner*>(node);
        SearchCounters cmps;
        const int64_t idx =
            FindPartialCounted(inner, Segment(key, level), &cmps);
        obs::AppendTraceLevel(t, TraceNodeRef(inner),
                              obs::kTraceLayoutTrieNode,
                              obs::kTraceSlabUnknown, cmps,
                              CycleTimer::Now() - start);
        if (idx < 0) {  // missing segment: terminate above leaf level
          terminated = true;
          break;
        }
        node = inner->EntryAt(idx);
      }
      if (!terminated) {
        const uint64_t start = CycleTimer::Now();
        const Leaf* leaf = static_cast<const Leaf*>(node);
        SearchCounters cmps;
        const int64_t idx =
            FindPartialCounted(leaf, Segment(key, kLevels - 1), &cmps);
        obs::AppendTraceLevel(t, TraceNodeRef(leaf),
                              obs::kTraceLayoutTrieNode,
                              obs::kTraceSlabUnknown, cmps,
                              CycleTimer::Now() - start);
        if (idx >= 0) result = leaf->EntryAt(idx);
      }
    }
    t->found = result.has_value() ? 1 : 0;
    return result;
  }

  // In-order traversal: fn(key, value) in ascending key order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    if (size_ == 0) return;
    ForEachRec(root_, ActiveTopLevel(),
               ShiftUp(prefix_bits_, active_levels_), fn);
  }

  // Ordered range scan: fn(key, value) for lo <= key < hi (or <= hi when
  // hi_inclusive), pruning whole subtrees by their key range. Tries are
  // ordered structures, so ranged access costs O(log + output).
  template <typename Fn>
  void ScanRange(Key lo, Key hi, Fn fn, bool hi_inclusive = false) const {
    if (size_ == 0) return;
    if (!hi_inclusive) {
      if (hi == 0) return;
      hi = static_cast<Key>(hi - 1);  // internal bounds are inclusive
    }
    if (lo > hi) return;
    ScanRec(root_, ActiveTopLevel(), ShiftUp(prefix_bits_, active_levels_),
            lo, hi, fn);
  }

  // Number of keys in [lo, hi) (or [lo, hi] when hi_inclusive).
  size_t CountRange(Key lo, Key hi, bool hi_inclusive = false) const {
    size_t n = 0;
    ScanRange(lo, hi, [&n](Key, const Value&) { ++n; }, hi_inclusive);
    return n;
  }

  // --- introspection ----------------------------------------------------------

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int active_levels() const { return active_levels_; }
  static constexpr int max_levels() { return kLevels; }

  TrieStats Stats() const {
    TrieStats s;
    s.levels = active_levels_;
    s.max_levels = kLevels;
    s.keys = size_;
    s.memory_bytes =
        sizeof(*this) +
        static_cast<size_t>(ctx_.layout.slots()) * 2 * sizeof(uint32_t);
    if (size_ > 0) CollectStats(root_, ActiveTopLevel(), &s);
    return s;
  }

  size_t MemoryBytes() const { return Stats().memory_bytes; }

  // Occupancy of the node arena (reserved slab bytes vs. live block
  // bytes); all-zero counters in heap mode except allocs/frees.
  mem::ArenaStats MemStats() const { return ctx_.arena.Stats(); }

  bool Validate() const {
    if (size_ == 0) {
      if (root_ == nullptr) return false;
      return EmptyRootIsLeaf()
                 ? static_cast<const Leaf*>(root_)->count() == 0
                 : static_cast<const Inner*>(root_)->count() == 0;
    }
    size_t counted = 0;
    if (!ValidateRec(root_, ActiveTopLevel(), &counted)) return false;
    return counted == size_;
  }

 private:
  using Leaf = CompactTrieNode<Partial, Value, Eval, B, kBits>;
  using Inner = CompactTrieNode<Partial, void*, Eval, B, kBits>;

  // First materialized level index (0 for the plain trie).
  int ActiveTopLevel() const { return kLevels - active_levels_; }

  // Trace node reference for a heap-allocated compact node: the block
  // address's low 32 bits (enough to correlate spans within one trace).
  static uint32_t TraceNodeRef(const void* node) {
    return static_cast<uint32_t>(reinterpret_cast<uintptr_t>(node));
  }

  static Partial Segment(Key key, int level) {
    const int shift = (kLevels - 1 - level) * kSegmentBits;
    return static_cast<Partial>((key >> shift) &
                                static_cast<Key>(kDomain - 1));
  }

  // key >> (levels_from_bottom * L), shift-safe at the full width.
  static Key UpperBits(Key key, int levels_from_bottom) {
    const int shift = levels_from_bottom * kSegmentBits;
    if (shift >= static_cast<int>(sizeof(Key)) * 8) return 0;
    return key >> shift;
  }

  static Key ShiftUp(Key bits, int levels_from_bottom) {
    const int shift = levels_from_bottom * kSegmentBits;
    if (shift >= static_cast<int>(sizeof(Key)) * 8) return 0;
    return bits << shift;
  }

  // Whether the empty sentinel root sits at leaf level (lazy expansion
  // starts at the bottom; the plain trie's root is branching for r > 1).
  bool EmptyRootIsLeaf() const {
    return options_.lazy_expansion || kLevels == 1;
  }

  void ResetEmpty() {
    constexpr int64_t kLanes = simd::LaneTraits<Partial, kBits>::kLanes;
    root_ = EmptyRootIsLeaf()
                ? static_cast<void*>(Leaf::Allocate(ctx_, kLanes, 4))
                : static_cast<void*>(Inner::Allocate(ctx_, kLanes, 4));
    size_ = 0;
    prefix_bits_ = 0;
    active_levels_ = options_.lazy_expansion ? 1 : kLevels;
  }

  void FixParent(Inner* parent, int64_t idx, void* old_node,
                 void* new_node) {
    if (old_node == new_node) return;
    if (parent == nullptr) {
      root_ = new_node;
    } else {
      parent->EntryAt(idx) = new_node;
    }
  }

  // Builds the single-entry chain for segments [level..kLevels-1] of key.
  void* BuildChain(Key key, int level, Value value) {
    void* below = Leaf::MakeSingle(ctx_, Segment(key, kLevels - 1), value);
    for (int l = kLevels - 2; l >= level; --l) {
      below = Inner::MakeSingle(ctx_, Segment(key, l), below);
    }
    return below;
  }

  // Lazy expansion: add levels above the root until the stored prefix
  // covers `key` (paper: "incrementally builds up the Seg-Trie starting
  // from leaf level").
  void GrowForPrefix(Key key) {
    while (UpperBits(key, active_levels_) != prefix_bits_ &&
           active_levels_ < kLevels) {
      root_ = Inner::MakeSingle(
          ctx_,
          static_cast<Partial>(prefix_bits_ & static_cast<Key>(kDomain - 1)),
          root_);
      prefix_bits_ = UpperBits(prefix_bits_, 1);
      ++active_levels_;
    }
  }

  bool EraseRec(void* node, int level, Key key) {
    const Partial partial = Segment(key, level);
    if (level == kLevels - 1) {
      Leaf* leaf = static_cast<Leaf*>(node);
      const int64_t idx = leaf->FindPartial(ctx_, partial);
      if (idx < 0) return false;
      Leaf::Remove(leaf, ctx_, idx);
      return true;
    }
    Inner* inner = static_cast<Inner*>(node);
    const int64_t idx = inner->FindPartial(ctx_, partial);
    if (idx < 0) return false;
    void* child = inner->EntryAt(idx);
    if (!EraseRec(child, level + 1, key)) return false;
    const int64_t child_count =
        level + 1 == kLevels - 1 ? static_cast<Leaf*>(child)->count()
                                 : static_cast<Inner*>(child)->count();
    if (child_count == 0) {
      if (level + 1 == kLevels - 1) {
        Leaf::Free(ctx_, static_cast<Leaf*>(child));
      } else {
        Inner::Free(ctx_, static_cast<Inner*>(child));
      }
      Inner::Remove(inner, ctx_, idx);
    }
    return true;
  }

  void FreeSubtree(void* node, int level) {
    if (level == kLevels - 1) {
      Leaf::Free(ctx_, static_cast<Leaf*>(node));
      return;
    }
    Inner* inner = static_cast<Inner*>(node);
    for (int64_t i = 0; i < inner->count(); ++i) {
      FreeSubtree(inner->EntryAt(i), level + 1);
    }
    Inner::Free(ctx_, inner);
  }

  // Every node of the trie lives in ctx_.arena, so teardown is an
  // O(slabs) arena reset; the recursive walk is only the heap-mode
  // (SIMDTREE_DISABLE_ARENA) fallback, where blocks must be returned to
  // the allocator one by one.
  void FreeAll() {
    if (root_ == nullptr) return;
    if (ctx_.arena.arena_mode()) {
      ctx_.arena.Reset();
    } else if (size_ == 0) {
      if (EmptyRootIsLeaf()) {
        Leaf::Free(ctx_, static_cast<Leaf*>(root_));
      } else {
        Inner::Free(ctx_, static_cast<Inner*>(root_));
      }
    } else {
      FreeSubtree(root_, ActiveTopLevel());
    }
    root_ = nullptr;
  }

  template <typename Fn>
  void ForEachRec(const void* node, int level, Key prefix, Fn& fn) const {
    const int shift = (kLevels - 1 - level) * kSegmentBits;
    if (level == kLevels - 1) {
      const Leaf* leaf = static_cast<const Leaf*>(node);
      for (int64_t i = 0; i < leaf->count(); ++i) {
        fn(prefix | (static_cast<Key>(leaf->PartialAt(ctx_, i)) << shift),
           leaf->EntryAt(i));
      }
      return;
    }
    const Inner* inner = static_cast<const Inner*>(node);
    for (int64_t i = 0; i < inner->count(); ++i) {
      ForEachRec(inner->EntryAt(i), level + 1,
                 prefix |
                     (static_cast<Key>(inner->PartialAt(ctx_, i)) << shift),
                 fn);
    }
  }

  // One lockstep group of the batched lookup. A compact node is a single
  // allocation, so two line prefetches (header + linearized root k-ary
  // node, then the entry area) cover the next level's touch pattern.
  void FindGroup(const Key* keys, int g, const Value** out,
                 SearchCounters* counters = nullptr) const {
    const void* node[kMaxBatchGroup];
    bool done[kMaxBatchGroup];
    for (int i = 0; i < g; ++i) {
      done[i] = size_ == 0 ||
                UpperBits(keys[i], active_levels_) != prefix_bits_;
      if (done[i]) out[i] = nullptr;
      node[i] = root_;
    }
    for (int level = ActiveTopLevel(); level < kLevels - 1; ++level) {
      for (int i = 0; i < g; ++i) {
        if (done[i]) continue;
        const Inner* inner = static_cast<const Inner*>(node[i]);
        int64_t idx;
        if (counters != nullptr) {
          ++counters->nodes_visited;
          idx = FindPartialCounted(inner, Segment(keys[i], level), counters);
        } else {
          idx = inner->FindPartial(ctx_, Segment(keys[i], level));
        }
        if (idx < 0) {  // missing segment terminates this query early
          out[i] = nullptr;
          done[i] = true;
          continue;
        }
        const void* child = inner->EntryAt(idx);
        node[i] = child;
        PrefetchRead(child);
        PrefetchRead(static_cast<const char*>(child) + 64);
      }
    }
    for (int i = 0; i < g; ++i) {
      if (done[i]) continue;
      const Leaf* leaf = static_cast<const Leaf*>(node[i]);
      int64_t idx;
      if (counters != nullptr) {
        ++counters->nodes_visited;
        idx = FindPartialCounted(leaf, Segment(keys[i], kLevels - 1),
                                 counters);
      } else {
        idx = leaf->FindPartial(ctx_, Segment(keys[i], kLevels - 1));
      }
      out[i] = idx < 0 ? nullptr : &leaf->EntryAt(idx);
    }
  }

  // Contiguous run of sorted batch queries routed to one trie node.
  struct TrieRun {
    const void* node;
    uint32_t begin;
    uint32_t end;
  };

  // All key bits below `shift` set, shift-safe at the full key width.
  static Key LowMask(int shift) {
    if (shift >= static_cast<int>(sizeof(Key)) * 8) return ~Key{0};
    return (Key{1} << shift) - Key{1};
  }

  // Resolves one (node, partial) pair shared by `len` sorted queries.
  // The probe cost depends only on the pair, so counted mode replays a
  // single counted probe and replicates its comparison cost per query,
  // keeping parity with summed single-query FindCounted calls.
  template <typename NodeT>
  int64_t ResolveShared(const NodeT* node, Partial partial, uint32_t len,
                        SearchCounters* counters) const {
    if (counters == nullptr) return node->FindPartial(ctx_, partial);
    SearchCounters one;
    const int64_t idx = FindPartialCounted(node, partial, &one);
    counters->simd_comparisons += one.simd_comparisons * len;
    counters->scalar_comparisons += one.scalar_comparisons * len;
    return idx;
  }

  // FindPartial with SIMD-comparison accounting (fast paths cost none).
  template <typename NodeT>
  int64_t FindPartialCounted(const NodeT* node, Partial partial,
                             SearchCounters* counters) const {
    const int64_t n = node->count();
    if (n == 0) return -1;
    if (n == 1) {
      ++counters->scalar_comparisons;
      return node->PartialAt(ctx_, 0) == partial ? 0 : -1;
    }
    if (n == kDomain) return static_cast<int64_t>(partial);
    const int64_t pos = node->UpperBoundCounted(ctx_, partial, counters);
    if (pos == 0 || node->PartialAt(ctx_, pos - 1) != partial) return -1;
    return pos - 1;
  }

  // Recursive bulk builder: keys[begin, end) share all segments above
  // `level`; returns the subtree for these keys rooted at `level`.
  static void* BulkBuild(const typename Inner::Context& ctx,
                         const Key* keys, const Value* values, size_t begin,
                         size_t end, int level) {
    const size_t n = end - begin;
    if (level == kLevels - 1) {
      // Distinct sorted keys sharing the prefix => distinct sorted
      // partials; build the leaf in one shot.
      std::vector<Partial>& partials = ctx.scratch;
      partials.resize(n);
      for (size_t i = 0; i < n; ++i) {
        partials[i] = Segment(keys[begin + i], level);
      }
      return Leaf::BuildFromSorted(ctx, partials.data(), values + begin,
                                   static_cast<int64_t>(n));
    }
    std::vector<Partial> partials;
    std::vector<void*> children;
    size_t run_start = begin;
    while (run_start < end) {
      const Partial seg = Segment(keys[run_start], level);
      size_t run_end = run_start + 1;
      while (run_end < end && Segment(keys[run_end], level) == seg) {
        ++run_end;
      }
      partials.push_back(seg);
      children.push_back(
          BulkBuild(ctx, keys, values, run_start, run_end, level + 1));
      run_start = run_end;
    }
    return Inner::BuildFromSorted(ctx, partials.data(), children.data(),
                                  static_cast<int64_t>(partials.size()));
  }

  template <typename Fn>
  void ScanRec(const void* node, int level, Key prefix, Key lo, Key hi,
               Fn& fn) const {
    const int shift = (kLevels - 1 - level) * kSegmentBits;
    // Keys below entry i span [base, base | low_mask].
    const Key low_mask =
        shift == 0 ? Key{0} : static_cast<Key>((Key{1} << shift) - 1);
    const int64_t n = level == kLevels - 1
                          ? static_cast<const Leaf*>(node)->count()
                          : static_cast<const Inner*>(node)->count();
    // First entry whose subtree can reach lo.
    int64_t i = 0;
    if (lo > prefix) {
      const Partial lo_seg = Segment(lo, level);
      if (lo_seg > 0) {
        i = level == kLevels - 1
                ? static_cast<const Leaf*>(node)->UpperBound(
                      ctx_, static_cast<Partial>(lo_seg - 1))
                : static_cast<const Inner*>(node)->UpperBound(
                      ctx_, static_cast<Partial>(lo_seg - 1));
      }
    }
    for (; i < n; ++i) {
      Partial partial;
      if (level == kLevels - 1) {
        const Leaf* leaf = static_cast<const Leaf*>(node);
        partial = leaf->PartialAt(ctx_, i);
        const Key key = prefix | (static_cast<Key>(partial) << shift);
        if (key > hi) break;
        if (key >= lo) fn(key, leaf->EntryAt(i));
      } else {
        const Inner* inner = static_cast<const Inner*>(node);
        partial = inner->PartialAt(ctx_, i);
        const Key base = prefix | (static_cast<Key>(partial) << shift);
        if (base > hi) break;
        if ((base | low_mask) < lo) continue;
        ScanRec(inner->EntryAt(i), level + 1, base, lo, hi, fn);
      }
    }
  }

  bool ValidateRec(const void* node, int level, size_t* counted) const {
    const int64_t n = level == kLevels - 1
                          ? static_cast<const Leaf*>(node)->count()
                          : static_cast<const Inner*>(node)->count();
    if (n <= 0 || n > kDomain) return false;
    if (level == kLevels - 1) {
      const Leaf* leaf = static_cast<const Leaf*>(node);
      for (int64_t i = 1; i < n; ++i) {
        if (leaf->PartialAt(ctx_, i - 1) >= leaf->PartialAt(ctx_, i)) {
          return false;
        }
      }
      *counted += static_cast<size_t>(n);
      return true;
    }
    const Inner* inner = static_cast<const Inner*>(node);
    for (int64_t i = 1; i < n; ++i) {
      if (inner->PartialAt(ctx_, i - 1) >= inner->PartialAt(ctx_, i)) {
        return false;
      }
    }
    for (int64_t i = 0; i < n; ++i) {
      if (!ValidateRec(inner->EntryAt(i), level + 1, counted)) return false;
    }
    return true;
  }

  void CollectStats(const void* node, int level, TrieStats* s) const {
    ++s->nodes;
    if (level == kLevels - 1) {
      s->memory_bytes += static_cast<const Leaf*>(node)->MemoryBytes();
      return;
    }
    const Inner* inner = static_cast<const Inner*>(node);
    s->memory_bytes += inner->MemoryBytes();
    for (int64_t i = 0; i < inner->count(); ++i) {
      CollectStats(inner->EntryAt(i), level + 1, s);
    }
  }

  Options options_;
  typename Inner::Context ctx_;  // shared by Leaf too (same Partial type)
  void* root_ = nullptr;
  size_t size_ = 0;
  Key prefix_bits_ = 0;    // shared upper bits of all keys (lazy expansion)
  int active_levels_ = 0;  // materialized levels, counted from the bottom
};

// The paper's "optimized Seg-Trie": lazy expansion enabled.
template <typename Key, typename Value, int kSegmentBits = 8,
          typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
class OptimizedSegTrie
    : public SegTrie<Key, Value, kSegmentBits, Eval, B, kBits> {
 public:
  using Base = SegTrie<Key, Value, kSegmentBits, Eval, B, kBits>;
  OptimizedSegTrie() : Base(typename Base::Options{.lazy_expansion = true}) {}
};

}  // namespace simdtree::segtrie

#endif  // SIMDTREE_SEGTRIE_SEGTRIE_H_
