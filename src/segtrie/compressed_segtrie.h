// Path-compressed Seg-Trie.
//
// The paper names path compression (Leis et al., ART) as "applicable for
// our Seg-Trie but currently not implemented" (Section 4). This class
// implements it: any run of single-key levels — above the first
// divergence (the optimized Seg-Trie's lazy expansion) *and anywhere
// below* — collapses into the node beneath it. Each node stores the
// segments it skips inline (pessimistic path compression): `tag` holds
// the skip length, `aux` the skipped segment values. A lookup therefore
// touches exactly one node per *branching* level, which removes the
// single-key chain walks that dominate sparse deep tries (see
// bench/ablation_path_compression).
//
// Node semantics: a node N at segment level L(N) with skip s(N) encodes
// the fixed segments [L(N)-s(N), L(N)) in aux (most recently skipped
// segment in the lowest bits... specifically segment L(N)-1 in bits
// [0, kSegmentBits), segment L(N)-2 in the next group, and so on); its
// partial keys discriminate segment L(N). The root hangs from a virtual
// parent above level 0, so the shared key prefix of the whole trie is
// just the root's skip — lazy expansion falls out for free.
//
// Deletions remove empty nodes but do not re-compress paths (like ART's
// deletion without eager merging, and matching the optimized Seg-Trie's
// behaviour of never re-omitting levels).
//
// The inline skip storage bounds one node's skip to 64 bits
// (kMaxSkip = 64/kSegmentBits segments); longer runs simply chain two
// compressed nodes, preserving correctness for 128-bit keys.

#ifndef SIMDTREE_SEGTRIE_COMPRESSED_SEGTRIE_H_
#define SIMDTREE_SEGTRIE_COMPRESSED_SEGTRIE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "segtrie/compact_node.h"
#include "segtrie/segtrie.h"
#include "simd/bitmask_eval.h"
#include "simd/simd128.h"

namespace simdtree::segtrie {

template <typename Key, typename Value, int kSegmentBits = 8,
          typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
class CompressedSegTrie {
  static_assert(kIsTrieKey<Key>, "unsigned keys only (see key_codec.h)");
  static_assert(kSegmentBits == 4 || kSegmentBits == 8 || kSegmentBits == 16);
  static_assert(static_cast<int>(sizeof(Key)) * 8 % kSegmentBits == 0);

 public:
  using KeyType = Key;
  using ValueType = Value;
  using Partial = std::conditional_t<kSegmentBits <= 8, uint8_t, uint16_t>;
  static constexpr int kLevels =
      static_cast<int>(sizeof(Key)) * 8 / kSegmentBits;
  static constexpr int64_t kDomain = int64_t{1} << kSegmentBits;
  static constexpr int kMaxSkip = 64 / kSegmentBits;

  CompressedSegTrie()
      : ctx_(kDomain, simd::LaneTraits<Partial, kBits>::kArity) {}

  ~CompressedSegTrie() { Clear(); }

  CompressedSegTrie(CompressedSegTrie&& other) noexcept
      : ctx_(std::move(other.ctx_)), root_(other.root_), size_(other.size_) {
    other.root_ = nullptr;
    other.size_ = 0;
  }
  CompressedSegTrie& operator=(CompressedSegTrie&& other) noexcept {
    if (this != &other) {
      Clear();
      ctx_ = std::move(other.ctx_);
      root_ = other.root_;
      size_ = other.size_;
      other.root_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  CompressedSegTrie(const CompressedSegTrie&) = delete;
  CompressedSegTrie& operator=(const CompressedSegTrie&) = delete;

  // --- modification -------------------------------------------------------

  // Inserts or overwrites; returns true when the key was new.
  bool Insert(Key key, Value value) {
    if (root_ == nullptr) {
      root_ = MakeLeafFor(key, /*from_level=*/0, std::move(value));
      size_ = 1;
      return true;
    }
    Inner* parent = nullptr;
    int64_t parent_idx = 0;
    void* node = root_;
    int level = 0;  // segment index the descent is about to consume
    while (true) {
      const int node_level = NodeLevel(node, level);
      const bool is_leaf = node_level == kLevels - 1;
      // Check the skipped segments; a mismatch splits the edge.
      const int skip = node_level - level;
      const int diverge = FirstSkipMismatch(node, is_leaf, key, level, skip);
      if (diverge >= 0) {
        SplitEdge(parent, parent_idx, node, is_leaf, key, level, diverge,
                  std::move(value));
        ++size_;
        return true;
      }
      level = node_level;
      const Partial partial = Segment(key, level);
      if (is_leaf) {
        Leaf* leaf = static_cast<Leaf*>(node);
        const int64_t pos = leaf->UpperBound(ctx_, partial);
        if (pos > 0 && leaf->PartialAt(ctx_, pos - 1) == partial) {
          leaf->EntryAt(pos - 1) = std::move(value);
          return false;
        }
        Leaf* updated =
            Leaf::Insert(leaf, ctx_, pos, partial, std::move(value));
        FixParent(parent, parent_idx, leaf, updated);
        ++size_;
        return true;
      }
      Inner* inner = static_cast<Inner*>(node);
      const int64_t pos = inner->UpperBound(ctx_, partial);
      if (pos > 0 && inner->PartialAt(ctx_, pos - 1) == partial) {
        parent = inner;
        parent_idx = pos - 1;
        node = inner->EntryAt(pos - 1);
        ++level;
        continue;
      }
      void* child = MakeLeafFor(key, level + 1, std::move(value));
      Inner* updated = Inner::Insert(inner, ctx_, pos, partial, child);
      FixParent(parent, parent_idx, inner, updated);
      ++size_;
      return true;
    }
  }

  bool Erase(Key key) {
    if (root_ == nullptr) return false;
    if (!EraseRec(root_, 0, key)) return false;
    --size_;
    if (NodeCount(root_, 0) == 0) {
      FreeNode(root_, 0);
      root_ = nullptr;
      size_ = 0;
    }
    return true;
  }

  // O(slabs) when arena-backed: every node lives in ctx_.arena, so Clear
  // is one arena reset; the per-node walk is the heap-mode fallback.
  void Clear() {
    if (root_ != nullptr) {
      if (ctx_.arena.arena_mode()) {
        ctx_.arena.Reset();
      } else {
        FreeNode(root_, 0);
      }
    }
    root_ = nullptr;
    size_ = 0;
  }

  // --- lookup ---------------------------------------------------------------

  std::optional<Value> Find(Key key) const {
    const void* node = root_;
    int level = 0;
    while (node != nullptr) {
      const int node_level = NodeLevel(node, level);
      const bool is_leaf = node_level == kLevels - 1;
      if (FirstSkipMismatch(node, is_leaf, key, level, node_level - level) >=
          0) {
        return std::nullopt;
      }
      level = node_level;
      const Partial partial = Segment(key, level);
      if (is_leaf) {
        const Leaf* leaf = static_cast<const Leaf*>(node);
        const int64_t idx = leaf->FindPartial(ctx_, partial);
        if (idx < 0) return std::nullopt;
        return leaf->EntryAt(idx);
      }
      const Inner* inner = static_cast<const Inner*>(node);
      const int64_t idx = inner->FindPartial(ctx_, partial);
      if (idx < 0) return std::nullopt;
      node = inner->EntryAt(idx);
      ++level;
    }
    return std::nullopt;
  }

  bool Contains(Key key) const { return Find(key).has_value(); }

  // Instrumented lookup (complexity tests): one node per branching level.
  std::optional<Value> FindCounted(Key key, SearchCounters* counters) const {
    const void* node = root_;
    int level = 0;
    while (node != nullptr) {
      ++counters->nodes_visited;
      const int node_level = NodeLevel(node, level);
      const bool is_leaf = node_level == kLevels - 1;
      if (FirstSkipMismatch(node, is_leaf, key, level, node_level - level) >=
          0) {
        return std::nullopt;
      }
      level = node_level;
      const Partial partial = Segment(key, level);
      if (is_leaf) {
        const Leaf* leaf = static_cast<const Leaf*>(node);
        const int64_t idx = leaf->FindPartial(ctx_, partial);
        if (idx < 0) return std::nullopt;
        return leaf->EntryAt(idx);
      }
      const Inner* inner = static_cast<const Inner*>(node);
      const int64_t idx = inner->FindPartial(ctx_, partial);
      if (idx < 0) return std::nullopt;
      node = inner->EntryAt(idx);
      ++level;
    }
    return std::nullopt;
  }

  // Traced lookup (obs/trace.h): same result as Find, one level span
  // per compact node searched (node_ref = the block address's low 32
  // bits; path-compressed skips make "level" here mean nodes touched,
  // not raw trie depth). Stamps backend and found.
  std::optional<Value> FindTraced(Key key, obs::DescentTrace* t) const {
    t->key = static_cast<uint64_t>(key);
    t->backend = static_cast<uint8_t>(obs::TraceBackend::kCompressedSegTrie);
    std::optional<Value> result;
    const void* node = root_;
    int level = 0;
    while (node != nullptr) {
      const uint64_t start = CycleTimer::Now();
      SearchCounters cmps;
      const int node_level = NodeLevel(node, level);
      const bool is_leaf = node_level == kLevels - 1;
      if (FirstSkipMismatch(node, is_leaf, key, level,
                            node_level - level) >= 0) {
        obs::AppendTraceLevel(t, TraceNodeRef(node),
                              obs::kTraceLayoutTrieNode,
                              obs::kTraceSlabUnknown, cmps,
                              CycleTimer::Now() - start);
        break;
      }
      level = node_level;
      const Partial partial = Segment(key, level);
      if (is_leaf) {
        const Leaf* leaf = static_cast<const Leaf*>(node);
        const int64_t idx = FindPartialCounted(leaf, partial, &cmps);
        obs::AppendTraceLevel(t, TraceNodeRef(leaf),
                              obs::kTraceLayoutTrieNode,
                              obs::kTraceSlabUnknown, cmps,
                              CycleTimer::Now() - start);
        if (idx >= 0) result = leaf->EntryAt(idx);
        break;
      }
      const Inner* inner = static_cast<const Inner*>(node);
      const int64_t idx = FindPartialCounted(inner, partial, &cmps);
      obs::AppendTraceLevel(t, TraceNodeRef(inner),
                            obs::kTraceLayoutTrieNode,
                            obs::kTraceSlabUnknown, cmps,
                            CycleTimer::Now() - start);
      if (idx < 0) break;
      node = inner->EntryAt(idx);
      ++level;
    }
    t->found = result.has_value() ? 1 : 0;
    return result;
  }

  // In-order traversal, ascending keys.
  template <typename Fn>
  void ForEach(Fn fn) const {
    if (root_ != nullptr) ForEachRec(root_, 0, Key{0}, fn);
  }

  // --- introspection ----------------------------------------------------------

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  TrieStats Stats() const {
    TrieStats s;
    s.max_levels = kLevels;
    s.keys = size_;
    s.memory_bytes =
        sizeof(*this) +
        static_cast<size_t>(ctx_.layout.slots()) * 2 * sizeof(uint32_t);
    int max_depth = 0;
    if (root_ != nullptr) CollectStats(root_, 0, 1, &s, &max_depth);
    s.levels = max_depth;  // branching levels on the deepest path
    return s;
  }

  size_t MemoryBytes() const { return Stats().memory_bytes; }

  // Occupancy of the node arena (reserved slab bytes vs. live block
  // bytes); all-zero counters in heap mode except allocs/frees.
  mem::ArenaStats MemStats() const { return ctx_.arena.Stats(); }

  bool Validate() const {
    if (root_ == nullptr) return size_ == 0;
    size_t counted = 0;
    if (!ValidateRec(root_, 0, &counted)) return false;
    return counted == size_;
  }

 private:
  using Leaf = CompactTrieNode<Partial, Value, Eval, B, kBits>;
  using Inner = CompactTrieNode<Partial, void*, Eval, B, kBits>;

  static uint32_t TraceNodeRef(const void* node) {
    return static_cast<uint32_t>(reinterpret_cast<uintptr_t>(node));
  }

  // FindPartial with comparison counting (trace hook) — mirrors
  // CompactTrieNode::FindPartial's fast paths exactly.
  template <typename NodeT>
  int64_t FindPartialCounted(const NodeT* node, Partial partial,
                             SearchCounters* counters) const {
    const int64_t n = node->count();
    if (n == 0) return -1;
    if (n == 1) {
      ++counters->scalar_comparisons;
      return node->PartialAt(ctx_, 0) == partial ? 0 : -1;
    }
    if (n == kDomain) return static_cast<int64_t>(partial);
    const int64_t pos = node->UpperBoundCounted(ctx_, partial, counters);
    if (pos == 0 || node->PartialAt(ctx_, pos - 1) != partial) return -1;
    return pos - 1;
  }

  static Partial Segment(Key key, int level) {
    const int shift = (kLevels - 1 - level) * kSegmentBits;
    return static_cast<Partial>((key >> shift) &
                                static_cast<Key>(kDomain - 1));
  }

  // skip metadata accessors (shared layout between Leaf and Inner: tag and
  // aux sit in the common header).
  static int SkipOf(const void* node, bool is_leaf) {
    return is_leaf ? static_cast<int>(static_cast<const Leaf*>(node)->tag())
                   : static_cast<int>(static_cast<const Inner*>(node)->tag());
  }
  static uint64_t AuxOf(const void* node, bool is_leaf) {
    return is_leaf ? static_cast<const Leaf*>(node)->aux()
                   : static_cast<const Inner*>(node)->aux();
  }

  // The segment level a node discriminates, given the level the descent
  // reached it at. A node is a leaf iff level + skip == kLevels - 1,
  // which is how the descent distinguishes the two block types — so the
  // skip must be read before the type is known. Leaf and Inner share the
  // same standard-layout header; the tag is read bytewise to stay clear
  // of aliasing rules.
  int NodeLevel(const void* node, int arrival_level) const {
    uint32_t tag;
    std::memcpy(&tag,
                static_cast<const char*>(node) +
                    offsetof(typename Inner::Header, tag),
                sizeof(tag));
    return arrival_level + static_cast<int>(tag);
  }

  int64_t NodeCount(const void* node, int arrival_level) const {
    const int node_level = NodeLevel(node, arrival_level);
    return node_level == kLevels - 1
               ? static_cast<const Leaf*>(node)->count()
               : static_cast<const Inner*>(node)->count();
  }

  // Index (0-based, within the skipped run) of the first skipped segment
  // that differs from the key's, or -1 if all match.
  int FirstSkipMismatch(const void* node, bool is_leaf, Key key, int level,
                        int skip) const {
    if (skip == 0) return -1;
    const uint64_t aux = AuxOf(node, is_leaf);
    for (int i = 0; i < skip; ++i) {
      const Partial expected = static_cast<Partial>(
          (aux >> ((skip - 1 - i) * kSegmentBits)) & (kDomain - 1));
      if (Segment(key, level + i) != expected) return i;
    }
    return -1;
  }

  // Packs the key's segments [from, to) into an aux word (earlier segment
  // in higher bits).
  static uint64_t PackSkip(Key key, int from, int to) {
    uint64_t aux = 0;
    for (int l = from; l < to; ++l) {
      aux = (aux << kSegmentBits) |
            static_cast<uint64_t>(Segment(key, l));
    }
    return aux;
  }

  void FixParent(Inner* parent, int64_t idx, void* old_node,
                 void* new_node) {
    if (old_node == new_node) return;
    if (parent == nullptr) {
      root_ = new_node;
    } else {
      parent->EntryAt(idx) = new_node;
    }
  }

  // A compressed leaf (or chain of compressed nodes when the run exceeds
  // kMaxSkip) holding `key` below segment level `from_level`.
  void* MakeLeafFor(Key key, int from_level, Value value) {
    // Leaf discriminates the final segment; skip the run above it.
    int leaf_skip = (kLevels - 1) - from_level;
    int chain_top_level = from_level;
    std::vector<std::pair<int, int>> inner_hops;  // (level, skip) top-down
    while (leaf_skip > kMaxSkip) {
      // Insert an intermediate single-entry inner node absorbing
      // kMaxSkip - ... segments: it discriminates one segment and skips
      // up to kMaxSkip above it.
      const int skip = std::min(kMaxSkip, leaf_skip - 1);
      inner_hops.emplace_back(chain_top_level + skip, skip);
      chain_top_level += skip + 1;
      leaf_skip = (kLevels - 1) - chain_top_level;
    }
    Leaf* leaf = Leaf::MakeSingle(
        ctx_, Segment(key, kLevels - 1),
        std::move(value));
    leaf->set_tag(static_cast<uint32_t>(leaf_skip));
    leaf->set_aux(PackSkip(key, chain_top_level, kLevels - 1));
    void* below = leaf;
    for (auto it = inner_hops.rbegin(); it != inner_hops.rend(); ++it) {
      const int level = it->first;
      const int skip = it->second;
      Inner* inner = Inner::MakeSingle(
          ctx_, Segment(key, level), below);
      inner->set_tag(static_cast<uint32_t>(skip));
      inner->set_aux(PackSkip(key, level - skip, level));
      below = inner;
    }
    return below;
  }

  // Splits the edge into `node` at skip offset `diverge`: a new branch
  // node takes over the shared prefix and points to both the shortened
  // `node` and a fresh leaf for `key`.
  void SplitEdge(Inner* parent, int64_t parent_idx, void* node, bool is_leaf,
                 Key key, int level, int diverge, Value value) {
    const int skip = SkipOf(node, is_leaf);
    const uint64_t aux = AuxOf(node, is_leaf);
    assert(diverge < skip);
    const int branch_level = level + diverge;

    // Shorten the existing node: it keeps the segments below the branch.
    const int new_skip = skip - diverge - 1;
    const uint64_t new_aux =
        new_skip == 0 ? 0 : aux & ((uint64_t{1} << (new_skip * kSegmentBits)) - 1);
    const Partial node_partial = static_cast<Partial>(
        (aux >> (new_skip * kSegmentBits)) & (kDomain - 1));
    if (is_leaf) {
      static_cast<Leaf*>(node)->set_tag(static_cast<uint32_t>(new_skip));
      static_cast<Leaf*>(node)->set_aux(new_aux);
    } else {
      static_cast<Inner*>(node)->set_tag(static_cast<uint32_t>(new_skip));
      static_cast<Inner*>(node)->set_aux(new_aux);
    }

    void* fresh = MakeLeafFor(key, branch_level + 1, std::move(value));
    const Partial key_partial = Segment(key, branch_level);
    assert(key_partial != node_partial);

    Inner* branch;
    if (key_partial < node_partial) {
      branch = Inner::MakeSingle(ctx_, key_partial, fresh);
      branch = Inner::Insert(branch, ctx_, 1, node_partial, node);
    } else {
      branch = Inner::MakeSingle(ctx_, node_partial, node);
      branch = Inner::Insert(branch, ctx_, 1, key_partial, fresh);
    }
    branch->set_tag(static_cast<uint32_t>(diverge));
    branch->set_aux(diverge == 0
                        ? 0
                        : aux >> ((skip - diverge) * kSegmentBits));
    FixParent(parent, parent_idx, node, branch);
  }

  bool EraseRec(void* node, int level, Key key) {
    const int node_level = NodeLevel(node, level);
    const bool is_leaf = node_level == kLevels - 1;
    if (FirstSkipMismatch(node, is_leaf, key, level, node_level - level) >=
        0) {
      return false;
    }
    const Partial partial = Segment(key, node_level);
    if (is_leaf) {
      Leaf* leaf = static_cast<Leaf*>(node);
      const int64_t idx = leaf->FindPartial(ctx_, partial);
      if (idx < 0) return false;
      Leaf::Remove(leaf, ctx_, idx);
      return true;
    }
    Inner* inner = static_cast<Inner*>(node);
    const int64_t idx = inner->FindPartial(ctx_, partial);
    if (idx < 0) return false;
    void* child = inner->EntryAt(idx);
    if (!EraseRec(child, node_level + 1, key)) return false;
    if (NodeCount(child, node_level + 1) == 0) {
      FreeNode(child, node_level + 1);
      Inner::Remove(inner, ctx_, idx);
    }
    return true;
  }

  void FreeNode(void* node, int arrival_level) {
    const int node_level = NodeLevel(node, arrival_level);
    if (node_level == kLevels - 1) {
      Leaf::Free(ctx_, static_cast<Leaf*>(node));
      return;
    }
    Inner* inner = static_cast<Inner*>(node);
    for (int64_t i = 0; i < inner->count(); ++i) {
      FreeNode(inner->EntryAt(i), node_level + 1);
    }
    Inner::Free(ctx_, inner);
  }

  template <typename Fn>
  void ForEachRec(const void* node, int level, Key prefix, Fn& fn) const {
    const int node_level = NodeLevel(node, level);
    const bool is_leaf = node_level == kLevels - 1;
    const int skip = node_level - level;
    Key bits = prefix;
    if (skip > 0) {
      const uint64_t aux = AuxOf(node, is_leaf);
      const int shift = (kLevels - node_level) * kSegmentBits;
      bits |= static_cast<Key>(aux) << shift;
    }
    const int seg_shift = (kLevels - 1 - node_level) * kSegmentBits;
    if (is_leaf) {
      const Leaf* leaf = static_cast<const Leaf*>(node);
      for (int64_t i = 0; i < leaf->count(); ++i) {
        fn(bits | (static_cast<Key>(leaf->PartialAt(ctx_, i)) << seg_shift),
           leaf->EntryAt(i));
      }
      return;
    }
    const Inner* inner = static_cast<const Inner*>(node);
    for (int64_t i = 0; i < inner->count(); ++i) {
      ForEachRec(
          inner->EntryAt(i), node_level + 1,
          bits | (static_cast<Key>(inner->PartialAt(ctx_, i)) << seg_shift),
          fn);
    }
  }

  bool ValidateRec(const void* node, int level, size_t* counted) const {
    const int node_level = NodeLevel(node, level);
    if (node_level >= kLevels) return false;
    const bool is_leaf = node_level == kLevels - 1;
    const int64_t n = NodeCount(node, level);
    if (n <= 0 || n > kDomain) return false;
    if (is_leaf) {
      const Leaf* leaf = static_cast<const Leaf*>(node);
      for (int64_t i = 1; i < n; ++i) {
        if (leaf->PartialAt(ctx_, i - 1) >= leaf->PartialAt(ctx_, i)) {
          return false;
        }
      }
      *counted += static_cast<size_t>(n);
      return true;
    }
    const Inner* inner = static_cast<const Inner*>(node);
    for (int64_t i = 1; i < n; ++i) {
      if (inner->PartialAt(ctx_, i - 1) >= inner->PartialAt(ctx_, i)) {
        return false;
      }
    }
    for (int64_t i = 0; i < n; ++i) {
      if (!ValidateRec(inner->EntryAt(i), node_level + 1, counted)) {
        return false;
      }
    }
    return true;
  }

  void CollectStats(const void* node, int level, int depth, TrieStats* s,
                    int* max_depth) const {
    const int node_level = NodeLevel(node, level);
    const bool is_leaf = node_level == kLevels - 1;
    ++s->nodes;
    if (depth > *max_depth) *max_depth = depth;
    if (is_leaf) {
      s->memory_bytes += static_cast<const Leaf*>(node)->MemoryBytes();
      return;
    }
    const Inner* inner = static_cast<const Inner*>(node);
    s->memory_bytes += inner->MemoryBytes();
    for (int64_t i = 0; i < inner->count(); ++i) {
      CollectStats(inner->EntryAt(i), node_level + 1, depth + 1, s,
                   max_depth);
    }
  }

  typename Inner::Context ctx_;
  void* root_ = nullptr;
  size_t size_ = 0;
};

}  // namespace simdtree::segtrie

#endif  // SIMDTREE_SEGTRIE_COMPRESSED_SEGTRIE_H_
