// Compact single-allocation trie nodes.
//
// A Seg-Trie lookup touches one node per level; if a node scatters its
// header, linearized key array, and child/value array over separate heap
// blocks, every level costs several dependent cache misses and the trie's
// constant-depth advantage (paper Section 4) drowns in memory latency.
// The paper's own implementation stores per-node arrays inline ("our
// implementation will store the same pointer array and an additional
// array for all possible key representation", Section 6).
//
// CompactTrieNode therefore packs everything into one block:
//
//   [ header | linearized partial keys (padded) | entries ]
//
// where entries are child pointers (branching levels) or values (leaf
// level), kept in logical (sorted) order. Blocks grow geometrically in
// node-granular steps; a descent reads one contiguous block per level.
//
// Entries must be trivially copyable (blocks are grown with memcpy); for
// an index structure mapping integer keys to tuple ids / pointers this is
// the natural contract.

#ifndef SIMDTREE_SEGTRIE_COMPACT_NODE_H_
#define SIMDTREE_SEGTRIE_COMPACT_NODE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "kary/kary_search.h"
#include "kary/linearize.h"
#include "mem/arena.h"
#include "simd/bitmask_eval.h"
#include "simd/simd128.h"

namespace simdtree::segtrie {

// Shared per-trie state: the k-ary layout for the partial-key domain, a
// scratch buffer for relinearization (single mutator, like SegKeyStore),
// and the byte arena every node block of the trie is carved from —
// compact blocks grow by doubling, so freed blocks requeue exactly on
// the arena's power-of-two free lists, and trie teardown is an O(slabs)
// arena reset. `arity` must match the register width the nodes search
// with (LaneTraits<Partial, kBits>::kArity).
template <typename Partial>
struct CompactNodeContext {
  explicit CompactNodeContext(
      int64_t domain, int arity = simd::LaneTraits<Partial>::kArity)
      : domain_size(domain),
        layout(kary::KaryShape::For(arity, domain),
               kary::Layout::kBreadthFirst) {
    scratch.reserve(static_cast<size_t>(layout.slots()));
  }
  int64_t domain_size;
  kary::KaryLayout layout;
  mutable std::vector<Partial> scratch;
  mutable mem::ByteArena arena;
};

// One trie node. EntryT is Node* on branching levels and the value type
// on the leaf level; the block layout adapts to its size/alignment.
template <typename Partial, typename EntryT,
          typename Eval = simd::PopcountEval,
          simd::Backend B = simd::kDefaultBackend, int kBits = 128>
class CompactTrieNode {
  static_assert(std::is_trivially_copyable_v<EntryT>,
                "compact trie entries are grown with memcpy");

 public:
  using Context = CompactNodeContext<Partial>;

  struct Header {
    uint32_t count;      // real partial keys
    uint32_t slot_cap;   // materialized linearized slots (multiple of k-1)
    uint32_t entry_cap;  // entry slots
    uint32_t tag;        // owner-defined (path compression: skip length)
    uint64_t aux;        // owner-defined (path compression: skip segments)
  };

  // --- allocation ----------------------------------------------------------

  static CompactTrieNode* Allocate(const Context& ctx, int64_t slot_cap,
                                   int64_t entry_cap) {
    const size_t bytes = BlockBytes(slot_cap, entry_cap);
    void* mem = ctx.arena.Alloc(bytes, kAlign);
    auto* node = static_cast<CompactTrieNode*>(mem);
    node->header_.count = 0;
    node->header_.slot_cap = static_cast<uint32_t>(slot_cap);
    node->header_.entry_cap = static_cast<uint32_t>(entry_cap);
    node->header_.tag = 0;
    node->header_.aux = 0;
    return node;
  }

  // A fresh node holding exactly one (partial, entry) pair. Note the
  // first key's slot is not slot 0: under the breadth-first permutation
  // sorted position 0 lives on the deepest level, so even a single key
  // materializes StoredSlots(1) slots (one node per k-ary level).
  static CompactTrieNode* MakeSingle(const Context& ctx, Partial partial,
                                     EntryT entry) {
    const int64_t stored =
        ctx.layout.StoredSlots(1, kary::Storage::kTruncated);
    CompactTrieNode* node = Allocate(ctx, stored, kInitialEntries);
    Partial* lin = node->Lin();
    for (int64_t s = 0; s < stored; ++s) lin[s] = kary::PadValue<Partial>();
    lin[ctx.layout.SortedToSlot(0)] = partial;
    node->Entries()[0] = entry;
    node->header_.count = 1;
    return node;
  }

  // Builds a node directly from n sorted distinct partial keys and their
  // entries (bulk loading); allocated exactly, no growth slack.
  static CompactTrieNode* BuildFromSorted(const Context& ctx,
                                          const Partial* partials,
                                          const EntryT* entries, int64_t n) {
    assert(n >= 1 && n <= ctx.domain_size);
    const int64_t stored =
        ctx.layout.StoredSlots(n, kary::Storage::kTruncated);
    CompactTrieNode* node = Allocate(ctx, stored, n);
    ctx.layout.Linearize(partials, n, node->Lin(), stored,
                         kary::PadValue<Partial>());
    std::memcpy(node->Entries(), entries,
                static_cast<size_t>(n) * sizeof(EntryT));
    node->header_.count = static_cast<uint32_t>(n);
    return node;
  }

  // Returns the block to the arena; the size comes from the header (the
  // arena's free lists are keyed by the Alloc-time byte count).
  static void Free(const Context& ctx, CompactTrieNode* node) {
    ctx.arena.Free(node,
                   BlockBytes(node->header_.slot_cap, node->header_.entry_cap),
                   kAlign);
  }

  // --- accessors ------------------------------------------------------------

  int64_t count() const { return header_.count; }

  Partial PartialAt(const Context& ctx, int64_t pos) const {
    assert(pos >= 0 && pos < count());
    return Lin()[ctx.layout.SortedToSlot(pos)];
  }

  EntryT& EntryAt(int64_t pos) {
    assert(pos >= 0 && pos < count());
    return Entries()[pos];
  }
  const EntryT& EntryAt(int64_t pos) const {
    assert(pos >= 0 && pos < count());
    return Entries()[pos];
  }

  // All entries in logical order (for traversal/teardown).
  const EntryT* entries() const { return Entries(); }

  // Owner-defined metadata, preserved across growth relocations. The
  // path-compressed trie stores the skip length in `tag` and the skipped
  // segments in `aux`.
  uint32_t tag() const { return header_.tag; }
  void set_tag(uint32_t t) { header_.tag = t; }
  uint64_t aux() const { return header_.aux; }
  void set_aux(uint64_t a) { header_.aux = a; }

  size_t MemoryBytes() const {
    return BlockBytes(header_.slot_cap, header_.entry_cap);
  }

  // --- search ---------------------------------------------------------------

  // Index of the first partial key > p (SIMD k-ary search, Algorithm 5).
  int64_t UpperBound(const Context& ctx, Partial p) const {
    const int64_t stored =
        ctx.layout.StoredSlots(count(), kary::Storage::kTruncated);
    return kary::UpperBoundBf<Partial, Eval, B, kBits>(Lin(), stored,
                                                       count(), p);
  }

  // Instrumented UpperBound: counts the SIMD comparison steps.
  int64_t UpperBoundCounted(const Context& ctx, Partial p,
                            SearchCounters* counters) const {
    const int64_t stored =
        ctx.layout.StoredSlots(count(), kary::Storage::kTruncated);
    return kary::UpperBoundBfCounted<Partial, Eval, B, kBits>(
        Lin(), stored, count(), p, counters);
  }

  // Exact-match index of p, or -1, with the paper's node fast paths.
  int64_t FindPartial(const Context& ctx, Partial p) const {
    const int64_t n = count();
    if (n == 0) return -1;
    if (n == 1) {
      return Lin()[ctx.layout.SortedToSlot(0)] == p ? 0 : -1;
    }
    if (n == ctx.domain_size) return static_cast<int64_t>(p);  // full node
    const int64_t pos = UpperBound(ctx, p);
    if (pos == 0 || PartialAt(ctx, pos - 1) != p) return -1;
    return pos - 1;
  }

  // --- mutation (may relocate the node; callers must store the result) ----

  // Inserts (partial, entry) at logical position pos.
  static CompactTrieNode* Insert(CompactTrieNode* node, const Context& ctx,
                                 int64_t pos, Partial partial, EntryT entry) {
    const int64_t n = node->count();
    assert(pos >= 0 && pos <= n);
    const int64_t new_stored =
        ctx.layout.StoredSlots(n + 1, kary::Storage::kTruncated);
    if (new_stored > node->header_.slot_cap ||
        n + 1 > node->header_.entry_cap) {
      node = GrowFor(node, ctx, n + 1, new_stored);
    }
    // Entries: shift the logical suffix.
    EntryT* entries = node->Entries();
    std::memmove(entries + pos + 1, entries + pos,
                 static_cast<size_t>(n - pos) * sizeof(EntryT));
    entries[pos] = entry;
    // Keys: append fast path writes one slot, otherwise relinearize.
    Partial* lin = node->Lin();
    if (pos == n) {
      const int64_t old_stored =
          ctx.layout.StoredSlots(n, kary::Storage::kTruncated);
      for (int64_t s = old_stored; s < new_stored; ++s) {
        lin[s] = kary::PadValue<Partial>();
      }
      lin[ctx.layout.SortedToSlot(n)] = partial;
    } else {
      std::vector<Partial>& scratch = ctx.scratch;
      scratch.resize(static_cast<size_t>(n));
      ctx.layout.Delinearize(lin, n, scratch.data());
      scratch.insert(scratch.begin() + static_cast<ptrdiff_t>(pos), partial);
      ctx.layout.Linearize(scratch.data(), n + 1, lin, new_stored,
                           kary::PadValue<Partial>());
    }
    node->header_.count = static_cast<uint32_t>(n + 1);
    return node;
  }

  // Removes the logical position pos (no shrinking; blocks are reused).
  static void Remove(CompactTrieNode* node, const Context& ctx, int64_t pos) {
    const int64_t n = node->count();
    assert(pos >= 0 && pos < n);
    EntryT* entries = node->Entries();
    std::memmove(entries + pos, entries + pos + 1,
                 static_cast<size_t>(n - 1 - pos) * sizeof(EntryT));
    Partial* lin = node->Lin();
    if (pos == n - 1) {  // remove-max fast path
      lin[ctx.layout.SortedToSlot(pos)] = kary::PadValue<Partial>();
    } else {
      std::vector<Partial>& scratch = ctx.scratch;
      scratch.resize(static_cast<size_t>(n));
      ctx.layout.Delinearize(lin, n, scratch.data());
      scratch.erase(scratch.begin() + static_cast<ptrdiff_t>(pos));
      const int64_t stored =
          ctx.layout.StoredSlots(n - 1, kary::Storage::kTruncated);
      ctx.layout.Linearize(scratch.data(), n - 1, lin, stored,
                           kary::PadValue<Partial>());
    }
    node->header_.count = static_cast<uint32_t>(n - 1);
  }

 private:
  static constexpr int64_t kLanes = simd::LaneTraits<Partial, kBits>::kLanes;
  static constexpr int64_t kInitialEntries = 4;
  static constexpr size_t kAlign =
      alignof(EntryT) > 16 ? alignof(EntryT) : 16;
  static_assert(kAlign <= mem::kCacheLine,
                "ByteArena slab placement guarantees at most cache-line "
                "alignment");

  static size_t EntriesOffset(int64_t slot_cap) {
    const size_t raw = sizeof(Header) +
                       static_cast<size_t>(slot_cap) * sizeof(Partial);
    return (raw + alignof(EntryT) - 1) / alignof(EntryT) * alignof(EntryT);
  }

  static size_t BlockBytes(int64_t slot_cap, int64_t entry_cap) {
    return EntriesOffset(slot_cap) +
           static_cast<size_t>(entry_cap) * sizeof(EntryT);
  }

  Partial* Lin() {
    return reinterpret_cast<Partial*>(reinterpret_cast<char*>(this) +
                                      sizeof(Header));
  }
  const Partial* Lin() const {
    return reinterpret_cast<const Partial*>(
        reinterpret_cast<const char*>(this) + sizeof(Header));
  }
  EntryT* Entries() {
    return reinterpret_cast<EntryT*>(reinterpret_cast<char*>(this) +
                                     EntriesOffset(header_.slot_cap));
  }
  const EntryT* Entries() const {
    return reinterpret_cast<const EntryT*>(
        reinterpret_cast<const char*>(this) +
        EntriesOffset(header_.slot_cap));
  }

  // Relocates `node` into a block that fits new_count entries and
  // new_stored key slots, growing geometrically to amortize.
  static CompactTrieNode* GrowFor(CompactTrieNode* node, const Context& ctx,
                                  int64_t new_count, int64_t new_stored) {
    int64_t slot_cap = node->header_.slot_cap;
    while (slot_cap < new_stored) slot_cap *= 2;
    slot_cap = std::min(slot_cap, ctx.layout.slots());
    slot_cap = std::max(slot_cap, new_stored);
    int64_t entry_cap = node->header_.entry_cap;
    while (entry_cap < new_count) entry_cap *= 2;
    entry_cap = std::min(entry_cap, ctx.domain_size);
    entry_cap = std::max(entry_cap, new_count);

    CompactTrieNode* grown = Allocate(ctx, slot_cap, entry_cap);
    const int64_t n = node->count();
    grown->header_.count = static_cast<uint32_t>(n);
    grown->header_.tag = node->header_.tag;
    grown->header_.aux = node->header_.aux;
    const int64_t old_stored =
        ctx.layout.StoredSlots(n, kary::Storage::kTruncated);
    std::memcpy(grown->Lin(), node->Lin(),
                static_cast<size_t>(old_stored) * sizeof(Partial));
    // Pre-pad the newly materialized slot range so the append fast path
    // in Insert only needs to fill from old_stored onward.
    std::memcpy(grown->Entries(), node->Entries(),
                static_cast<size_t>(n) * sizeof(EntryT));
    Free(ctx, node);
    return grown;
  }

  Header header_;
  // Block payload follows the header.
};

}  // namespace simdtree::segtrie

#endif  // SIMDTREE_SEGTRIE_COMPACT_NODE_H_
