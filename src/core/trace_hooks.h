// Shared trace-dispatch helpers for the concurrency wrappers.
//
// SynchronizedIndex and ShardedIndex wrap *any* simdtree index, but only
// the trees and tries implement the traced descent entry points
// (FindTraced / FindBatchTraced). These helpers do the duck-typed
// dispatch once: route to the traced variant when the backend has one,
// otherwise fall back to the plain operation and stamp what the wrapper
// still knows (found flag, batched flag). Both helpers live on the
// sampled cold path only — the wrappers gate them behind
// obs::TraceShouldSample().

#ifndef SIMDTREE_CORE_TRACE_HOOKS_H_
#define SIMDTREE_CORE_TRACE_HOOKS_H_

#include <cstddef>

#include "core/batch.h"
#include "obs/trace.h"

namespace simdtree::core {

// Single-key traced read. Returns what Index::Find would.
template <typename Index, typename Key>
auto TracedFindOne(const Index& index, Key key, obs::DescentTrace* t) {
  if constexpr (requires { index.FindTraced(key, t); }) {
    return index.FindTraced(key, t);
  } else {
    auto result = index.Find(key);
    t->found = result.has_value() ? 1 : 0;
    return result;
  }
}

// Traced batch chunk, attributed to the chunk's first key: the traced
// batch descent when the index has one; else the plain batch plus a
// traced re-descent of the first key; else just the plain batch.
template <typename Index, typename Key, typename Value>
void TracedFindChunk(const Index& index, const Key* keys, size_t m,
                     const Value** ptrs, obs::DescentTrace* t) {
  if constexpr (requires {
                  index.FindBatchTraced(keys, m, ptrs, kDefaultBatchGroup,
                                        nullptr, t);
                }) {
    index.FindBatchTraced(keys, m, ptrs, kDefaultBatchGroup, nullptr, t);
  } else if constexpr (requires { index.FindTraced(keys[0], t); }) {
    index.FindBatch(keys, m, ptrs);
    t->batched = 1;
    index.FindTraced(keys[0], t);
  } else {
    index.FindBatch(keys, m, ptrs);
    t->batched = 1;
  }
}

// Traced grouped batch, attributed to the batch's first key: the
// grouped traced descent when the index has one (the trees record one
// span per level with the per-level node-visit count and group size);
// else the plain grouped batch with what the wrapper still knows.
template <typename Index, typename Key, typename Value>
void TracedGroupedFindBatch(const Index& index, const Key* keys, size_t m,
                            const Value** ptrs, obs::DescentTrace* t) {
  if constexpr (requires {
                  index.FindBatchGroupedTraced(keys, m, ptrs, nullptr, t);
                }) {
    index.FindBatchGroupedTraced(keys, m, ptrs, nullptr, t);
  } else {
    index.FindBatchGrouped(keys, m, ptrs);
    t->batched = 1;
    if (m > 0) t->found = ptrs[0] != nullptr ? 1 : 0;
  }
}

}  // namespace simdtree::core

#endif  // SIMDTREE_CORE_TRACE_HOOKS_H_
