// Thread-safe wrapper for any simdtree index.
//
// The paper's evaluation is single-threaded and names concurrency as
// future work ("the impact of SIMD instructions on concurrently used
// index structures is an ongoing research task", Section 7).
// SynchronizedIndex provides the reader/writer exclusion that makes the
// structures safely shareable — with one important refinement: when the
// wrapped index supports optimistic lock coupling (the arena-backed
// B+-trees, see generic_btree.h "optimistic reads" and DESIGN.md
// "Concurrency"), reads run LOCK-FREE by default. The constructor arms
// epoch-based reclamation and readers descend without writing any shared
// state, validating per-node version words and restarting on conflict.
//
// The fallback ladder for a read is:
//   1. optimistic attempt(s), up to olc::kMaxReadRetries
//   2. one shared_mutex shared-lock acquisition for the remainder
// Bounding the retries is also the writer-starvation fix: glibc's
// pthread rwlock is reader-preferring, so under a read-heavy open loop a
// writer could wait unboundedly for the shared lock to drain. With OLC,
// readers in the common case never touch the rwlock at all — the only
// shared-lock readers are the (rare, bounded) conflict losers — so the
// writer acquires promptly. See DESIGN.md "Concurrency" for the
// protocol.
//
// Indexes without the optimistic hooks (tries, SegKeyStore-backed
// structures, heap-mode trees) keep the coarse rwlock for every read —
// still the simplest correct design for them. Set
// SIMDTREE_FORCE_SHARD_LOCKS=1 to force the locked path everywhere.

#ifndef SIMDTREE_CORE_SYNCHRONIZED_H_
#define SIMDTREE_CORE_SYNCHRONIZED_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/batch.h"
#include "core/olc.h"
#include "core/trace_hooks.h"
#include "mem/arena.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "util/cycle_timer.h"

namespace simdtree {

template <typename Index>
class SynchronizedIndex {
 public:
  using KeyType = typename Index::KeyType;
  using ValueType = typename Index::ValueType;

  SynchronizedIndex() : olc_metrics_(obs::OlcMetrics::Register()) {
    ArmOptimisticReads();
  }
  explicit SynchronizedIndex(Index index)
      : index_(std::move(index)),
        olc_metrics_(obs::OlcMetrics::Register()) {
    ArmOptimisticReads();
  }

  SynchronizedIndex(const SynchronizedIndex&) = delete;
  SynchronizedIndex& operator=(const SynchronizedIndex&) = delete;

  // Starts recording per-operation metrics under "<prefix>.*" in the
  // global registry (obs/metrics.h): read/write op counters, batch-size
  // histogram, and lock-hold-time histograms. Recording costs a few
  // relaxed atomic adds per op; disabled (the default) it costs one
  // predictable branch. Call before sharing the index across threads —
  // enabling is not synchronized against in-flight operations.
  void EnableMetrics(const std::string& prefix) {
    metrics_ = obs::IndexMetrics::Register(prefix);
  }

  // --- writers ----------------------------------------------------------

  auto Insert(KeyType key, ValueType value) {
    if (metrics_) metrics_->writes->Add();
    std::unique_lock lock(mutex_);
    obs::ScopedDurationNs hold(metrics_ ? metrics_->write_lock_ns : nullptr);
    return index_.Insert(key, std::move(value));
  }

  bool Erase(KeyType key) {
    if (metrics_) metrics_->writes->Add();
    std::unique_lock lock(mutex_);
    obs::ScopedDurationNs hold(metrics_ ? metrics_->write_lock_ns : nullptr);
    return index_.Erase(key);
  }

  void Clear() {
    if (metrics_) metrics_->writes->Add();
    std::unique_lock lock(mutex_);
    obs::ScopedDurationNs hold(metrics_ ? metrics_->write_lock_ns : nullptr);
    index_.Clear();
  }

  // --- readers ----------------------------------------------------------

  std::optional<ValueType> Find(KeyType key) const {
    if (metrics_) metrics_->reads->Add();
    if (obs::TraceShouldSample()) [[unlikely]] {
      return TracedFind(key);
    }
    if constexpr (HasOptimisticReads<Index, KeyType, ValueType>) {
      if (olc_enabled_) {
        std::optional<ValueType> out;
        if (FindOptimisticWithRetries(key, &out)) return out;
      }
    }
    std::shared_lock lock(mutex_);
    obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns : nullptr);
    return index_.Find(key);
  }

  bool Contains(KeyType key) const {
    if (metrics_) metrics_->reads->Add();
    if (obs::TraceShouldSample()) [[unlikely]] {
      return TracedFind(key).has_value();
    }
    if constexpr (HasOptimisticReads<Index, KeyType, ValueType>) {
      if (olc_enabled_) {
        std::optional<ValueType> out;
        if (FindOptimisticWithRetries(key, &out)) return out.has_value();
      }
    }
    std::shared_lock lock(mutex_);
    obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns : nullptr);
    return index_.Contains(key);
  }

  // Batched point lookup: out[i] = value of keys[i] or nullopt. One
  // shared-lock acquisition covers the whole batch (vs one per key for a
  // Find loop). Under the lock the index runs either its grouped
  // (level-wise, sort-once) descent — when it has one and the batch
  // clears the UseGroupedDescent heuristic — or the group-pipelined
  // FindBatch in chunks. Values are copied out while the lock is held,
  // so the results stay valid after concurrent writers proceed.
  void FindBatch(const KeyType* keys, size_t n,
                 std::optional<ValueType>* out) const {
    if (metrics_) {
      metrics_->batches->Add();
      metrics_->batch_keys->Add(n);
      metrics_->batch_size->Record(n);
    }
    // One trace per sampled batch, attributed to the batch's first key.
    std::optional<obs::TraceScope> scope;
    if (obs::TraceShouldSample()) [[unlikely]] {
      scope.emplace();
    }
    // Request-span hook (obs/request_trace.h): no shards here, so the
    // whole batch — lock wait included — is one descent span.
    obs::CollectedSpanScope descent_span(obs::RequestSpanKind::kDescent);
    if constexpr (HasOptimisticReads<Index, KeyType, ValueType>) {
      // Sampled batches fall through to the locked path so the trace
      // captures lock_wait_ns and the per-level descent hooks.
      if (olc_enabled_ && !scope) {
        RunBatchOptimistic(keys, n, out);
        return;
      }
    }
    {
      const uint64_t lock_start = scope ? CycleTimer::Now() : 0;
      std::shared_lock lock(mutex_);
      if (scope) {
        scope->trace()->lock_wait_ns = static_cast<uint64_t>(
            CycleTimer::ToNanoseconds(CycleTimer::Now() - lock_start));
      }
      obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns
                                          : nullptr);
      bool handled = false;
      if constexpr (HasGroupedFindBatch<Index, KeyType, ValueType>) {
        if (UseGroupedDescent(n, BatchLevels(index_))) {
          std::vector<const ValueType*> ptrs(n);
          if (scope) {
            core::TracedGroupedFindBatch(index_, keys, n, ptrs.data(),
                                         scope->trace());
          } else {
            index_.FindBatchGrouped(keys, n, ptrs.data());
          }
          for (size_t j = 0; j < n; ++j) {
            if (ptrs[j] != nullptr) {
              out[j] = *ptrs[j];
            } else {
              out[j] = std::nullopt;
            }
          }
          handled = true;
        }
      }
      if (!handled) {
        constexpr size_t kChunk = 256;
        const ValueType* ptrs[kChunk];
        for (size_t off = 0; off < n; off += kChunk) {
          const size_t m = n - off < kChunk ? n - off : kChunk;
          if (scope && off == 0) {
            core::TracedFindChunk(index_, keys, m, ptrs, scope->trace());
          } else {
            index_.FindBatch(keys + off, m, ptrs);
          }
          for (size_t j = 0; j < m; ++j) {
            if (ptrs[j] != nullptr) {
              out[off + j] = *ptrs[j];
            } else {
              out[off + j] = std::nullopt;
            }
          }
        }
      }
    }
    if (scope) scope->Finish();
  }

  size_t size() const {
    std::shared_lock lock(mutex_);
    return index_.size();
  }

  // Arena occupancy of the wrapped index (all-zero when the index is not
  // arena-backed), taken under the shared lock. With metrics enabled,
  // also refreshes the <prefix>.arena_* gauges.
  mem::ArenaStats MemStats() const {
    std::shared_lock lock(mutex_);
    const mem::ArenaStats s = mem::IndexMemStats(index_);
    if (metrics_) metrics_->PublishArena(s);
    return s;
  }

  // Runs fn(key, value) over [lo, hi) under the shared lock; fn must not
  // call back into this index (lock is held).
  template <typename Fn>
  void ScanRange(KeyType lo, KeyType hi, Fn fn,
                 bool hi_inclusive = false) const {
    if constexpr (HasOptimisticReads<Index, KeyType, ValueType>) {
      if (olc_enabled_) {
        if (ScanOptimistic(lo, hi, fn, hi_inclusive)) return;
      }
    }
    std::shared_lock lock(mutex_);
    index_.ScanRange(lo, hi, std::move(fn), hi_inclusive);
  }

  // Arbitrary read-only access under the shared lock.
  template <typename Fn>
  auto WithRead(Fn fn) const {
    std::shared_lock lock(mutex_);
    return fn(static_cast<const Index&>(index_));
  }

  // Arbitrary mutating access under the exclusive lock.
  template <typename Fn>
  auto WithWrite(Fn fn) {
    std::unique_lock lock(mutex_);
    return fn(index_);
  }

 private:
  // Arms lock-free reads when the wrapped index supports them: defers
  // node reclamation to the global epoch manager and flips the
  // optimistic fast paths on. No-op (coarse rwlock for everything) for
  // non-capable indexes, heap-mode trees, and under
  // SIMDTREE_FORCE_SHARD_LOCKS=1.
  void ArmOptimisticReads() {
    if constexpr (HasOptimisticReads<Index, KeyType, ValueType>) {
      if (!olc::ForceShardLocks()) {
        olc_enabled_ = index_.EnableConcurrentReads();
      }
    }
  }

  // One epoch-pinned, bounded-retry optimistic lookup; false directs the
  // caller to the shared-lock rung of the fallback ladder (see the class
  // comment — the bound is what keeps writers from starving).
  bool FindOptimisticWithRetries(KeyType key,
                                 std::optional<ValueType>* out) const {
    olc::EpochGuard epoch;
    if (!epoch.pinned()) return false;
    for (int attempt = 0; attempt < olc::kMaxReadRetries; ++attempt) {
      if (index_.FindOptimistic(key, out) == olc::ReadResult::kOk) {
        return true;
      }
      olc_metrics_.read_retries->Add();
    }
    olc_metrics_.fallback_acquisitions->Add();
    return false;
  }

  // Lock-free FindBatch: one epoch pin covers the batch through the
  // optimistic grouped/pipelined engine; writer-invalidated keys retry
  // individually and only persistent losers take one shared-lock
  // acquisition.
  void RunBatchOptimistic(const KeyType* keys, size_t n,
                          std::optional<ValueType>* out) const {
    olc::EpochGuard epoch;
    if (!epoch.pinned()) {
      // Epoch registry exhausted (256+ reader threads): locked reads.
      std::shared_lock lock(mutex_);
      obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns
                                          : nullptr);
      for (size_t j = 0; j < n; ++j) out[j] = index_.Find(keys[j]);
      return;
    }
    std::vector<uint32_t> failed;
    if (UseGroupedDescent(n, OptimisticLevels(index_))) {
      index_.FindBatchGroupedOptimistic(keys, n, out, &failed);
    } else {
      index_.FindBatchOptimistic(keys, n, out, &failed);
    }
    if (failed.empty()) return;
    olc_metrics_.read_retries->Add(failed.size());
    std::vector<uint32_t> leftovers;
    for (const uint32_t idx : failed) {
      bool ok = false;
      for (int attempt = 1; attempt < olc::kMaxReadRetries; ++attempt) {
        if (index_.FindOptimistic(keys[idx], &out[idx]) ==
            olc::ReadResult::kOk) {
          ok = true;
          break;
        }
        olc_metrics_.read_retries->Add();
      }
      if (!ok) leftovers.push_back(idx);
    }
    if (leftovers.empty()) return;
    olc_metrics_.fallback_acquisitions->Add();
    std::shared_lock lock(mutex_);
    obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns
                                        : nullptr);
    for (const uint32_t idx : leftovers) {
      out[idx] = index_.Find(keys[idx]);
    }
  }

  // Optimistic range scan with delivery-floor resume (no pair delivered
  // twice across restarts); after kMaxReadRetries the remainder runs
  // once under the shared lock. False (nothing delivered) only when no
  // epoch slot was available.
  template <typename Fn>
  bool ScanOptimistic(KeyType lo, KeyType hi, Fn& fn,
                      bool hi_inclusive) const {
    olc::EpochGuard epoch;
    if (!epoch.pinned()) return false;
    KeyType resume = lo;
    uint32_t skip = 0;
    for (int attempt = 0; attempt < olc::kMaxReadRetries; ++attempt) {
      if (index_.ScanRangeOptimistic(
              hi, hi_inclusive, &resume, &skip,
              [&fn](KeyType k, const ValueType& v) { fn(k, v); }) ==
          olc::ReadResult::kOk) {
        return true;
      }
      olc_metrics_.read_retries->Add();
    }
    olc_metrics_.fallback_acquisitions->Add();
    std::shared_lock lock(mutex_);
    uint32_t seen = 0;
    index_.ScanRange(
        resume, hi,
        [&](KeyType k, const ValueType& v) {
          if (k == resume && seen++ < skip) return;
          fn(k, v);
        },
        hi_inclusive);
    return true;
  }

  // Cold path for a sampled single-key read: measures the shared-lock
  // wait separately from the descent, routes through the index's
  // FindTraced when it has one (the trees and tries), and records the
  // finished trace. Kept out of line of Find so the common path stays
  // one sampling branch.
  std::optional<ValueType> TracedFind(KeyType key) const {
    obs::TraceScope scope;
    std::optional<ValueType> result;
    {
      const uint64_t lock_start = CycleTimer::Now();
      std::shared_lock lock(mutex_);
      scope.trace()->lock_wait_ns = static_cast<uint64_t>(
          CycleTimer::ToNanoseconds(CycleTimer::Now() - lock_start));
      obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns
                                          : nullptr);
      result = core::TracedFindOne(index_, key, scope.trace());
    }
    scope.Finish();
    return result;
  }

  mutable std::shared_mutex mutex_;
  Index index_;
  std::optional<obs::IndexMetrics> metrics_;
  // Lock-free read state (see class comment). olc.* counters are
  // process-global, pre-resolved at construction.
  bool olc_enabled_ = false;
  obs::OlcMetrics olc_metrics_;
};

}  // namespace simdtree

#endif  // SIMDTREE_CORE_SYNCHRONIZED_H_
