// Thread-safe wrapper for any simdtree index.
//
// The paper's evaluation is single-threaded and names concurrency as
// future work ("the impact of SIMD instructions on concurrently used
// index structures is an ongoing research task", Section 7). The
// underlying structures are thread-compatible (concurrent reads are safe
// for the trees; SegKeyStore mutation uses a shared scratch buffer, so
// any write requires exclusion). SynchronizedIndex provides the coarse
// reader/writer exclusion that makes them safely shareable: many
// concurrent readers, single writer.
//
// This is deliberately the simplest correct design — finer-grained
// schemes (lock coupling, optimistic lock versions as in ART/OLC) change
// the structures themselves and are out of scope for this reproduction.

#ifndef SIMDTREE_CORE_SYNCHRONIZED_H_
#define SIMDTREE_CORE_SYNCHRONIZED_H_

#include <cstddef>
#include <optional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/batch.h"
#include "core/trace_hooks.h"
#include "mem/arena.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cycle_timer.h"

namespace simdtree {

template <typename Index>
class SynchronizedIndex {
 public:
  using KeyType = typename Index::KeyType;
  using ValueType = typename Index::ValueType;

  SynchronizedIndex() = default;
  explicit SynchronizedIndex(Index index) : index_(std::move(index)) {}

  SynchronizedIndex(const SynchronizedIndex&) = delete;
  SynchronizedIndex& operator=(const SynchronizedIndex&) = delete;

  // Starts recording per-operation metrics under "<prefix>.*" in the
  // global registry (obs/metrics.h): read/write op counters, batch-size
  // histogram, and lock-hold-time histograms. Recording costs a few
  // relaxed atomic adds per op; disabled (the default) it costs one
  // predictable branch. Call before sharing the index across threads —
  // enabling is not synchronized against in-flight operations.
  void EnableMetrics(const std::string& prefix) {
    metrics_ = obs::IndexMetrics::Register(prefix);
  }

  // --- writers ----------------------------------------------------------

  auto Insert(KeyType key, ValueType value) {
    if (metrics_) metrics_->writes->Add();
    std::unique_lock lock(mutex_);
    obs::ScopedDurationNs hold(metrics_ ? metrics_->write_lock_ns : nullptr);
    return index_.Insert(key, std::move(value));
  }

  bool Erase(KeyType key) {
    if (metrics_) metrics_->writes->Add();
    std::unique_lock lock(mutex_);
    obs::ScopedDurationNs hold(metrics_ ? metrics_->write_lock_ns : nullptr);
    return index_.Erase(key);
  }

  void Clear() {
    if (metrics_) metrics_->writes->Add();
    std::unique_lock lock(mutex_);
    obs::ScopedDurationNs hold(metrics_ ? metrics_->write_lock_ns : nullptr);
    index_.Clear();
  }

  // --- readers ----------------------------------------------------------

  std::optional<ValueType> Find(KeyType key) const {
    if (metrics_) metrics_->reads->Add();
    if (obs::TraceShouldSample()) [[unlikely]] {
      return TracedFind(key);
    }
    std::shared_lock lock(mutex_);
    obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns : nullptr);
    return index_.Find(key);
  }

  bool Contains(KeyType key) const {
    if (metrics_) metrics_->reads->Add();
    if (obs::TraceShouldSample()) [[unlikely]] {
      return TracedFind(key).has_value();
    }
    std::shared_lock lock(mutex_);
    obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns : nullptr);
    return index_.Contains(key);
  }

  // Batched point lookup: out[i] = value of keys[i] or nullopt. One
  // shared-lock acquisition covers the whole batch (vs one per key for a
  // Find loop). Under the lock the index runs either its grouped
  // (level-wise, sort-once) descent — when it has one and the batch
  // clears the UseGroupedDescent heuristic — or the group-pipelined
  // FindBatch in chunks. Values are copied out while the lock is held,
  // so the results stay valid after concurrent writers proceed.
  void FindBatch(const KeyType* keys, size_t n,
                 std::optional<ValueType>* out) const {
    if (metrics_) {
      metrics_->batches->Add();
      metrics_->batch_keys->Add(n);
      metrics_->batch_size->Record(n);
    }
    // One trace per sampled batch, attributed to the batch's first key.
    std::optional<obs::TraceScope> scope;
    if (obs::TraceShouldSample()) [[unlikely]] {
      scope.emplace();
    }
    {
      const uint64_t lock_start = scope ? CycleTimer::Now() : 0;
      std::shared_lock lock(mutex_);
      if (scope) {
        scope->trace()->lock_wait_ns = static_cast<uint64_t>(
            CycleTimer::ToNanoseconds(CycleTimer::Now() - lock_start));
      }
      obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns
                                          : nullptr);
      bool handled = false;
      if constexpr (HasGroupedFindBatch<Index, KeyType, ValueType>) {
        if (UseGroupedDescent(n, BatchLevels(index_))) {
          std::vector<const ValueType*> ptrs(n);
          if (scope) {
            core::TracedGroupedFindBatch(index_, keys, n, ptrs.data(),
                                         scope->trace());
          } else {
            index_.FindBatchGrouped(keys, n, ptrs.data());
          }
          for (size_t j = 0; j < n; ++j) {
            if (ptrs[j] != nullptr) {
              out[j] = *ptrs[j];
            } else {
              out[j] = std::nullopt;
            }
          }
          handled = true;
        }
      }
      if (!handled) {
        constexpr size_t kChunk = 256;
        const ValueType* ptrs[kChunk];
        for (size_t off = 0; off < n; off += kChunk) {
          const size_t m = n - off < kChunk ? n - off : kChunk;
          if (scope && off == 0) {
            core::TracedFindChunk(index_, keys, m, ptrs, scope->trace());
          } else {
            index_.FindBatch(keys + off, m, ptrs);
          }
          for (size_t j = 0; j < m; ++j) {
            if (ptrs[j] != nullptr) {
              out[off + j] = *ptrs[j];
            } else {
              out[off + j] = std::nullopt;
            }
          }
        }
      }
    }
    if (scope) scope->Finish();
  }

  size_t size() const {
    std::shared_lock lock(mutex_);
    return index_.size();
  }

  // Arena occupancy of the wrapped index (all-zero when the index is not
  // arena-backed), taken under the shared lock. With metrics enabled,
  // also refreshes the <prefix>.arena_* gauges.
  mem::ArenaStats MemStats() const {
    std::shared_lock lock(mutex_);
    const mem::ArenaStats s = mem::IndexMemStats(index_);
    if (metrics_) metrics_->PublishArena(s);
    return s;
  }

  // Runs fn(key, value) over [lo, hi) under the shared lock; fn must not
  // call back into this index (lock is held).
  template <typename Fn>
  void ScanRange(KeyType lo, KeyType hi, Fn fn,
                 bool hi_inclusive = false) const {
    std::shared_lock lock(mutex_);
    index_.ScanRange(lo, hi, std::move(fn), hi_inclusive);
  }

  // Arbitrary read-only access under the shared lock.
  template <typename Fn>
  auto WithRead(Fn fn) const {
    std::shared_lock lock(mutex_);
    return fn(static_cast<const Index&>(index_));
  }

  // Arbitrary mutating access under the exclusive lock.
  template <typename Fn>
  auto WithWrite(Fn fn) {
    std::unique_lock lock(mutex_);
    return fn(index_);
  }

 private:
  // Cold path for a sampled single-key read: measures the shared-lock
  // wait separately from the descent, routes through the index's
  // FindTraced when it has one (the trees and tries), and records the
  // finished trace. Kept out of line of Find so the common path stays
  // one sampling branch.
  std::optional<ValueType> TracedFind(KeyType key) const {
    obs::TraceScope scope;
    std::optional<ValueType> result;
    {
      const uint64_t lock_start = CycleTimer::Now();
      std::shared_lock lock(mutex_);
      scope.trace()->lock_wait_ns = static_cast<uint64_t>(
          CycleTimer::ToNanoseconds(CycleTimer::Now() - lock_start));
      obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns
                                          : nullptr);
      result = core::TracedFindOne(index_, key, scope.trace());
    }
    scope.Finish();
    return result;
  }

  mutable std::shared_mutex mutex_;
  Index index_;
  std::optional<obs::IndexMetrics> metrics_;
};

}  // namespace simdtree

#endif  // SIMDTREE_CORE_SYNCHRONIZED_H_
