// Optimistic lock coupling primitives: per-node version words and the
// global epoch registry backing deferred (epoch-based) reclamation.
//
// This header is deliberately dependency-free (atomics only) so it can
// be included from mem/arena.h without creating a cycle through the
// observability layer (obs/metrics.h includes mem/arena.h).
//
// Version-word layout (64 bits):
//
//   bit 0     lock/dead bit — odd value means a writer is mutating the
//             node (or the node has been freed and will never become
//             stable again)
//   bits 1-63 modification counter, bumped by 1 on every lock AND every
//             unlock, so each write cycle advances the word by 2 and a
//             reader comparing begin/end values catches both "writer in
//             progress" and "writer completed in between"
//
// Reader protocol (seqlock-style):
//   v = ReadBegin()           acquire-load; odd => conflict, restart
//   ... read node fields ...  plain loads, possibly torn
//   Validate(v)               acquire fence + reload; != v => conflict
//
// Writer protocol (writers are already serialized per shard by the
// wrapper's exclusive mutex, so the lock bit is never contended — it
// exists purely to fence readers out):
//   Lock()    bump to odd (acq_rel RMW so node stores cannot hoist
//             above it), Unlock() bump to even with release ordering.
//   MarkDead() on free: the word goes odd and stays odd forever, so
//   any reader still holding a pointer restarts instead of trusting
//   recycled memory. Epoch reclamation (below) guarantees the memory
//   itself stays mapped and un-reused while such readers exist.

#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>

namespace simdtree::olc {

// ---------------------------------------------------------------------------
// ThreadSanitizer integration. The optimistic read window performs
// deliberately-racy plain loads whose results are discarded on version
// mismatch; TSan cannot see the seqlock happens-before argument, so the
// window is wrapped in ignore-reads annotations (intercepted by the TSan
// runtime). The version-word atomics keep their real orderings.
#if defined(__SANITIZE_THREAD__)
#define SIMDTREE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SIMDTREE_TSAN 1
#endif
#endif

#if defined(SIMDTREE_TSAN)
extern "C" {
void AnnotateIgnoreReadsBegin(const char* file, int line);
void AnnotateIgnoreReadsEnd(const char* file, int line);
}
#endif

// RAII scope around one optimistic read attempt.
class TsanIgnoreReadsScope {
 public:
  TsanIgnoreReadsScope() {
#if defined(SIMDTREE_TSAN)
    AnnotateIgnoreReadsBegin(__FILE__, __LINE__);
#endif
  }
  ~TsanIgnoreReadsScope() {
#if defined(SIMDTREE_TSAN)
    AnnotateIgnoreReadsEnd(__FILE__, __LINE__);
#endif
  }
  TsanIgnoreReadsScope(const TsanIgnoreReadsScope&) = delete;
  TsanIgnoreReadsScope& operator=(const TsanIgnoreReadsScope&) = delete;
};

// ---------------------------------------------------------------------------

enum class ReadResult : uint8_t { kOk, kConflict };

// Bounded optimistic retries before an operation falls back to the
// shard's shared lock. Keeping this small is the writer-starvation fix:
// readers that keep losing races stop spinning on tree state and take
// the rwlock once, instead of camping on it for every operation (glibc's
// default rwlock is reader-preferring, so lock-per-read starves writers).
inline constexpr int kMaxReadRetries = 8;

class VersionWord {
 public:
  constexpr VersionWord() = default;

  // Reader side -------------------------------------------------------
  // Returns the current word; odd means unstable (locked or dead).
  uint64_t ReadBegin() const { return word_.load(std::memory_order_acquire); }

  static bool IsStable(uint64_t v) { return (v & 1) == 0; }

  // True when the node content read since ReadBegin() is a consistent
  // snapshot. The acquire fence orders the preceding plain loads before
  // the reload.
  bool Validate(uint64_t begin) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return word_.load(std::memory_order_relaxed) == begin;
  }

  // Writer side (single writer per node, serialized by the shard lock) -
  void Lock() {
    // acq_rel RMW: subsequent node stores cannot be hoisted above the
    // bump, so readers that still see the even value also see pre-lock
    // node content.
    word_.fetch_add(1, std::memory_order_acq_rel);
  }
  void Unlock() { word_.fetch_add(1, std::memory_order_release); }

  // Permanently odd: the node was freed. Callers either hold the lock
  // already (word odd — leave it) or mark an unlocked node dead.
  void MarkDead() {
    uint64_t v = word_.load(std::memory_order_relaxed);
    if ((v & 1) == 0) word_.fetch_add(1, std::memory_order_release);
  }

  bool IsLockedOrDead() const {
    return (word_.load(std::memory_order_relaxed) & 1) != 0;
  }

 private:
  std::atomic<uint64_t> word_{0};
};

// ---------------------------------------------------------------------------
// Epoch-based reclamation.
//
// A global epoch counter plus a fixed registry of per-thread slots.
// Readers pin the current epoch for the duration of one optimistic
// operation; memory freed under epoch E is quarantined and only reused
// once every active slot has advanced past E (MinActive() > E). A
// reader that obtained a pointer into soon-to-be-freed memory must have
// pinned at an epoch <= the free's epoch, which blocks the purge.

class EpochManager {
 public:
  static constexpr uint64_t kIdle = ~uint64_t{0};
  static constexpr int kMaxSlots = 256;

  // Leaky singleton: outlives thread_local slot handles destroyed at
  // thread exit (same pattern as obs::MetricsRegistry::Global()).
  static EpochManager& Global() {
    static EpochManager* mgr = new EpochManager();
    return *mgr;
  }

  uint64_t current() const { return epoch_.load(std::memory_order_seq_cst); }

  // Pins the calling thread's slot to the current epoch. The store/
  // reload loop closes the race where the epoch advances between
  // reading it and publishing the pin (a stale pin would let a purge
  // believe this reader started later than it did). Returns false when
  // the slot registry is exhausted — callers must use the locked path.
  bool Pin() {
    SlotHandle* h = ThreadHandle();
    if (h->slot == nullptr) return false;
    if (h->depth++ > 0) return true;  // already pinned (nested guard)
    uint64_t e = epoch_.load(std::memory_order_seq_cst);
    for (;;) {
      h->slot->pinned.store(e, std::memory_order_seq_cst);
      const uint64_t g = epoch_.load(std::memory_order_seq_cst);
      if (g == e) return true;
      e = g;
    }
  }

  void Unpin() {
    SlotHandle* h = ThreadHandle();
    if (h->slot == nullptr) return;
    if (--h->depth == 0) {
      h->slot->pinned.store(kIdle, std::memory_order_release);
    }
  }

  // Smallest epoch any in-flight reader is pinned at, or kIdle when no
  // reader is active. A quarantine bucket tagged with epoch E is
  // reclaimable when MinActive() > E.
  uint64_t MinActive() const {
    uint64_t min = kIdle;
    const int n = high_water_.load(std::memory_order_acquire);
    for (int i = 0; i < n; ++i) {
      const uint64_t e = slots_[i].pinned.load(std::memory_order_seq_cst);
      if (e < min) min = e;
    }
    return min;
  }

  // Advances the global epoch if every active reader has caught up to
  // it (otherwise a lagging reader could pin "in the past" forever and
  // the advance would not help reclamation anyway).
  bool TryAdvance() {
    uint64_t g = epoch_.load(std::memory_order_seq_cst);
    const int n = high_water_.load(std::memory_order_acquire);
    for (int i = 0; i < n; ++i) {
      const uint64_t e = slots_[i].pinned.load(std::memory_order_seq_cst);
      if (e != kIdle && e != g) return false;
    }
    if (epoch_.compare_exchange_strong(g, g + 1, std::memory_order_seq_cst)) {
      advances_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  uint64_t advances() const { return advances_.load(std::memory_order_relaxed); }

  // Aggregate deferred-reclamation gauges, maintained by the NodePools
  // that quarantine into this manager and read by the obs layer.
  void NoteDeferredBlocks(int64_t delta) {
    deferred_blocks_.fetch_add(delta, std::memory_order_relaxed);
  }
  void NoteDeferredSlabs(int64_t delta) {
    deferred_slabs_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t deferred_blocks() const {
    return deferred_blocks_.load(std::memory_order_relaxed);
  }
  int64_t deferred_slabs() const {
    return deferred_slabs_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> pinned{kIdle};
    std::atomic<bool> claimed{false};
  };

  EpochManager() = default;

  Slot* AcquireSlot() {
    for (int i = 0; i < kMaxSlots; ++i) {
      bool expected = false;
      if (!slots_[i].claimed.load(std::memory_order_relaxed) &&
          slots_[i].claimed.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        // Grow the scan window MinActive()/TryAdvance() walk.
        int hw = high_water_.load(std::memory_order_relaxed);
        while (hw < i + 1 &&
               !high_water_.compare_exchange_weak(hw, i + 1,
                                                  std::memory_order_acq_rel)) {
        }
        return &slots_[i];
      }
    }
    return nullptr;
  }

  void ReleaseSlot(Slot* s) {
    s->pinned.store(kIdle, std::memory_order_release);
    s->claimed.store(false, std::memory_order_release);
  }

  // Per-thread slot, claimed lazily on first pin and returned at thread
  // exit. `depth` lives next to it so nested guards (e.g. a Find inside
  // a scan callback) do not double-publish the pin.
  struct SlotHandle {
    Slot* slot = nullptr;
    bool tried = false;
    int depth = 0;
    ~SlotHandle() {
      if (slot != nullptr) EpochManager::Global().ReleaseSlot(slot);
    }
  };

  SlotHandle* ThreadHandle() {
    thread_local SlotHandle handle;
    if (handle.slot == nullptr && !handle.tried) {
      handle.tried = true;
      handle.slot = AcquireSlot();
    }
    return &handle;
  }

  alignas(64) std::atomic<uint64_t> epoch_{1};
  std::atomic<int> high_water_{0};
  std::atomic<uint64_t> advances_{0};
  std::atomic<int64_t> deferred_blocks_{0};
  std::atomic<int64_t> deferred_slabs_{0};
  Slot slots_[kMaxSlots];
};

// RAII epoch pin around one optimistic operation. `pinned()` is false
// when the slot registry is exhausted; callers then take the locked
// path (correct, just slower).
class EpochGuard {
 public:
  EpochGuard() : pinned_(EpochManager::Global().Pin()) {}
  ~EpochGuard() {
    if (pinned_) EpochManager::Global().Unpin();
  }
  bool pinned() const { return pinned_; }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  bool pinned_;
};

// ---------------------------------------------------------------------------

// SIMDTREE_FORCE_SHARD_LOCKS=1 disables the optimistic read path
// process-wide: every read takes the per-shard shared lock exactly as
// before this feature existed. Sampled once (wrappers consult it at
// construction, matching the SIMDTREE_DISABLE_ARENA idiom).
inline bool ForceShardLocks() {
  static const bool forced = [] {
    const char* env = std::getenv("SIMDTREE_FORCE_SHARD_LOCKS");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return forced;
}

}  // namespace simdtree::olc
