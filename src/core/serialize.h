// Serialization of index structures to a portable binary blob.
//
// Format (version 1, little-endian, fixed-width fields):
//
//   offset  size  field
//   0       4     magic "STIX"
//   4       4     format version (1)
//   8       4     key size in bytes
//   12      4     value size in bytes
//   16      8     pair count
//   24      8     node capacity (trees; 0 for tries)
//   32      8     reserved (0)
//   40      ...   keys[count], ascending
//   ...     ...   values[count], parallel to keys
//
// The blob stores the *logical content* (the sorted key/value sequence
// plus the structural configuration), not the physical node layout;
// loading rebuilds the structure with its bulk loader. This keeps the
// format independent of node layout changes, pointer widths, and padding
// policy — the property a production index wants from its export format.
// In particular the arena allocator (mem/arena.h) is invisible here:
// compressed 32-bit node references and slab placement never reach the
// blob, and LoadTree/LoadTrie bulk-load into the new instance's own
// fresh arena, so blobs move freely between arena and heap
// (SIMDTREE_DISABLE_ARENA=1) builds.
//
// Keys and values must be trivially copyable. The encoding is
// little-endian; on a big-endian host loading rejects the blob rather
// than mis-reading it.

#ifndef SIMDTREE_CORE_SERIALIZE_H_
#define SIMDTREE_CORE_SERIALIZE_H_

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "btree/btree.h"

namespace simdtree::io {

inline constexpr uint32_t kMagic = 0x58495453;  // "STIX"
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kHeaderBytes = 40;

struct BlobHeader {
  uint32_t magic = kMagic;
  uint32_t version = kFormatVersion;
  uint32_t key_bytes = 0;
  uint32_t value_bytes = 0;
  uint64_t count = 0;
  uint64_t capacity = 0;
  uint64_t reserved = 0;
};
static_assert(sizeof(BlobHeader) == kHeaderBytes);

inline constexpr bool kHostIsLittleEndian =
    std::endian::native == std::endian::little;

namespace internal {

template <typename T>
void AppendRaw(std::vector<uint8_t>* out, const T* data, size_t n) {
  const size_t old = out->size();
  out->resize(old + n * sizeof(T));
  std::memcpy(out->data() + old, data, n * sizeof(T));
}

// Extracts the sorted pair sequence from any index: tries expose ForEach,
// trees expose chained-leaf iterators.
template <typename Index, typename Key, typename Value>
void ExtractPairs(const Index& index, std::vector<Key>* keys,
                  std::vector<Value>* values) {
  keys->reserve(index.size());
  values->reserve(index.size());
  if constexpr (requires {
                  index.ForEach([](Key, const Value&) {});
                }) {
    index.ForEach([&](Key k, const Value& v) {
      keys->push_back(k);
      values->push_back(v);
    });
  } else {
    for (auto it = index.begin(); it.valid(); ++it) {
      keys->push_back(it.key());
      values->push_back(it.value());
    }
  }
}

}  // namespace internal

// Serializes any simdtree index (B+-Tree, Seg-Tree, Seg-Trie) into a
// blob. `capacity` is recorded for tree rebuilds; pass 0 for tries.
template <typename Key, typename Value, typename Index>
std::vector<uint8_t> Serialize(const Index& index, uint64_t capacity = 0) {
  static_assert(std::is_trivially_copyable_v<Key> &&
                std::is_trivially_copyable_v<Value>);
  static_assert(kHostIsLittleEndian,
                "serialization is defined for little-endian hosts");
  std::vector<Key> keys;
  std::vector<Value> values;
  internal::ExtractPairs<Index, Key, Value>(index, &keys, &values);

  BlobHeader header;
  header.key_bytes = sizeof(Key);
  header.value_bytes = sizeof(Value);
  header.count = keys.size();
  header.capacity = capacity;

  std::vector<uint8_t> blob;
  blob.reserve(kHeaderBytes + keys.size() * (sizeof(Key) + sizeof(Value)));
  internal::AppendRaw(&blob, &header, 1);
  internal::AppendRaw(&blob, keys.data(), keys.size());
  internal::AppendRaw(&blob, values.data(), values.size());
  return blob;
}

// Parses and validates a blob header; returns nullopt on any mismatch.
template <typename Key, typename Value>
std::optional<BlobHeader> ParseHeader(const uint8_t* data, size_t size) {
  if (!kHostIsLittleEndian) return std::nullopt;
  if (data == nullptr || size < kHeaderBytes) return std::nullopt;
  BlobHeader header;
  std::memcpy(&header, data, kHeaderBytes);
  if (header.magic != kMagic || header.version != kFormatVersion) {
    return std::nullopt;
  }
  if (header.key_bytes != sizeof(Key) ||
      header.value_bytes != sizeof(Value)) {
    return std::nullopt;
  }
  // Overflow-safe payload check (a hostile count must not wrap).
  const uint64_t pair_bytes = sizeof(Key) + sizeof(Value);
  if (header.count > (size - kHeaderBytes) / pair_bytes) return std::nullopt;
  if (size != kHeaderBytes + header.count * pair_bytes) return std::nullopt;
  return header;
}

// Reconstructs the sorted pair arrays from a blob. Returns false on a
// malformed blob (bad header, truncated payload, or unsorted keys).
template <typename Key, typename Value>
bool DeserializePairs(const uint8_t* data, size_t size,
                      std::vector<Key>* keys, std::vector<Value>* values,
                      BlobHeader* header_out = nullptr) {
  const auto header = ParseHeader<Key, Value>(data, size);
  if (!header.has_value()) return false;
  const size_t n = static_cast<size_t>(header->count);
  keys->resize(n);
  values->resize(n);
  const uint8_t* p = data + kHeaderBytes;
  std::memcpy(keys->data(), p, n * sizeof(Key));
  std::memcpy(values->data(), p + n * sizeof(Key), n * sizeof(Value));
  for (size_t i = 1; i < n; ++i) {
    if ((*keys)[i - 1] > (*keys)[i]) return false;
  }
  if (header_out != nullptr) *header_out = *header;
  return true;
}

// Rebuilds a tree type (BPlusTree / SegTree) from a blob. The stored
// capacity is used when nonzero, the type's default otherwise.
template <typename TreeT>
std::optional<TreeT> LoadTree(const uint8_t* data, size_t size) {
  using Key = typename TreeT::KeyType;
  using Value = typename TreeT::ValueType;
  std::vector<Key> keys;
  std::vector<Value> values;
  BlobHeader header;
  if (!DeserializePairs<Key, Value>(data, size, &keys, &values, &header)) {
    return std::nullopt;
  }
  const int64_t capacity =
      header.capacity != 0
          ? static_cast<int64_t>(header.capacity)
          : btree::PaperNodeCapacity(sizeof(Key));
  return TreeT::BulkLoad(keys.data(), values.data(), keys.size(), 1.0,
                         capacity);
}

// Rebuilds a Seg-Trie from a blob (pass lazy_expansion in `options` for
// the optimized variant). Rejects blobs with duplicate keys, which a trie
// cannot represent.
template <typename TrieT>
std::optional<TrieT> LoadTrie(const uint8_t* data, size_t size,
                              typename TrieT::Options options = {}) {
  using Key = typename TrieT::KeyType;
  using Value = typename TrieT::ValueType;
  std::vector<Key> keys;
  std::vector<Value> values;
  if (!DeserializePairs<Key, Value>(data, size, &keys, &values)) {
    return std::nullopt;
  }
  for (size_t i = 1; i < keys.size(); ++i) {
    if (keys[i - 1] == keys[i]) return std::nullopt;
  }
  return TrieT::BulkLoad(keys.data(), values.data(), keys.size(), options);
}

// --- file helpers -----------------------------------------------------------

inline bool WriteBlobToFile(const std::vector<uint8_t>& blob,
                            const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
  const bool ok = std::fclose(f) == 0 && written == blob.size();
  return ok;
}

inline std::optional<std::vector<uint8_t>> ReadBlobFromFile(
    const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    return std::nullopt;
  }
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> blob(static_cast<size_t>(end));
  const size_t read = std::fread(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  if (read != blob.size()) return std::nullopt;
  return blob;
}

}  // namespace simdtree::io

#endif  // SIMDTREE_CORE_SERIALIZE_H_
