// Range-partitioned sharded wrapper for any simdtree index.
//
// SynchronizedIndex (synchronized.h) makes the structures shareable with
// one global reader/writer lock, which serializes every writer — the
// scaling wall the paper's Section 7 future-work note ("the impact of
// SIMD instructions on concurrently used index structures") leaves open.
// ShardedIndex takes the simplest scalable step past it: N
// range-partitioned shards, each an independent Index instance behind
// its own shared_mutex, so writers to different key ranges proceed in
// parallel and lock contention drops by ~1/N even when they don't.
//
// Partitioning is static and rebalance-free: N-1 sorted splitter keys
// divide the key domain; shard i owns [splitter[i-1], splitter[i]) (a
// key equal to a splitter belongs to the shard on its right). The shard
// count is rounded up to a power of two. Splitters come from either a
// uniform division of the integral key domain (default constructor) or
// sample quantiles (SplittersFromSample), matching a bulk-load
// distribution.
//
// Consistency model: each operation is atomic within one shard.
// Multi-shard operations (size, ScanRange, FindBatch, Clear) lock one
// shard at a time in ascending shard order, so they see a per-shard
// snapshot, not a global one — a concurrent writer may land between two
// shard visits. This is the usual contract of partitioned stores;
// callers needing a global quiescent view must stop writers first.
// Deadlock-free by construction: no operation ever holds two shard
// locks at once.
//
// ScanRange stitches results across shard boundaries: shards are
// visited in key order and each shard only stores keys of its own
// range, so the callback still observes keys in globally ascending
// order. FindBatch is shard-aware: the query batch is partitioned by
// shard, each shard's keys run through the underlying group-pipelined
// FindBatch (btree/batch_descent.h, kary/batch_search.h, the trie's
// FindBatch) under ONE lock acquisition per shard, and results scatter
// back to the caller's order.
//
// Lock-free reads (optimistic lock coupling): when the wrapped index
// exposes the optimistic read paths (the B+-trees with trivially
// copyable payloads in arena mode, see generic_btree.h), the
// constructor arms them and Find / Contains / FindBatch / ScanRange
// descend WITHOUT touching the shard lock: readers pin a reclamation
// epoch (core/olc.h), validate per-node versions, and restart on
// writer conflict — at most olc::kMaxReadRetries times, then fall back
// to one shared-lock acquisition. Writers still take the shard's
// exclusive lock (serializing writers per shard) but no longer stall
// readers, and readers no longer starve writers through glibc's
// reader-preferring rwlock. SIMDTREE_FORCE_SHARD_LOCKS=1 restores the
// pure locked behavior process-wide. Conflict/fallback volume is
// observable via the olc.* counters (obs/metrics.h).

#ifndef SIMDTREE_CORE_SHARDED_H_
#define SIMDTREE_CORE_SHARDED_H_

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/batch.h"
#include "core/olc.h"
#include "core/trace_hooks.h"
#include "mem/arena.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "util/cycle_timer.h"

namespace simdtree {

template <typename Index>
class ShardedIndex {
 public:
  using KeyType = typename Index::KeyType;
  using ValueType = typename Index::ValueType;

  // num_shards is rounded up to a power of two. Splitters divide the
  // full integral key domain uniformly — the right default for the
  // uniform-random and full-domain workloads of the paper's evaluation.
  explicit ShardedIndex(size_t num_shards = kDefaultShards)
      : ShardedIndex(RoundUpShards(num_shards),
                     UniformSplitters(RoundUpShards(num_shards))) {}

  // Explicit splitters: must be sorted, size == num_shards - 1. Equal
  // adjacent splitters are allowed and simply leave a shard empty.
  ShardedIndex(size_t num_shards, std::vector<KeyType> splitters)
      : splitters_(std::move(splitters)),
        olc_metrics_(obs::OlcMetrics::Register()) {
    num_shards = RoundUpShards(num_shards);
    assert(splitters_.size() == num_shards - 1);
    assert(std::is_sorted(splitters_.begin(), splitters_.end()));
    shards_.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      shards_.push_back(std::make_unique<Shard>());
    }
    // Arm lock-free reads when the index supports them and the env
    // override doesn't force the pure locked path. All shards must arm
    // (heap mode refuses) or none do — mixed modes would complicate the
    // read paths for no benefit.
    if constexpr (HasOptimisticReads<Index, KeyType, ValueType>) {
      if (!olc::ForceShardLocks()) {
        bool all = true;
        for (auto& shard : shards_) {
          if (!shard->index.EnableConcurrentReads()) all = false;
        }
        olc_enabled_ = all;
      }
    }
  }

  ShardedIndex(const ShardedIndex&) = delete;
  ShardedIndex& operator=(const ShardedIndex&) = delete;

  // Splitter keys at the sample's quantiles, for key distributions that
  // a uniform domain division would skew (e.g. clustered bulk loads).
  // The sample is copied and sorted; n may be zero (falls back to the
  // uniform division).
  static std::vector<KeyType> SplittersFromSample(const KeyType* sample,
                                                  size_t n,
                                                  size_t num_shards) {
    num_shards = RoundUpShards(num_shards);
    if (n == 0) return UniformSplitters(num_shards);
    std::vector<KeyType> sorted(sample, sample + n);
    std::sort(sorted.begin(), sorted.end());
    std::vector<KeyType> splitters;
    splitters.reserve(num_shards - 1);
    for (size_t s = 1; s < num_shards; ++s) {
      splitters.push_back(sorted[s * n / num_shards]);
    }
    return splitters;
  }

  size_t num_shards() const { return shards_.size(); }
  const std::vector<KeyType>& splitters() const { return splitters_; }

  // Starts recording per-operation metrics under "<prefix>.*" in the
  // global registry (obs/metrics.h): read/write op counters, batch-size
  // histogram, lock-hold-time histograms, and a per-shard imbalance
  // gauge updated on every FindBatch (max shard share / perfectly even
  // share; 1.0 = balanced). Call before sharing across threads —
  // enabling is not synchronized against in-flight operations.
  void EnableMetrics(const std::string& prefix) {
    metrics_ = obs::IndexMetrics::Register(prefix);
  }

  // Shard owning `key` (upper bound over the splitters: a key equal to
  // a splitter goes right).
  size_t ShardOf(KeyType key) const {
    return static_cast<size_t>(
        std::upper_bound(splitters_.begin(), splitters_.end(), key) -
        splitters_.begin());
  }

  // --- writers ----------------------------------------------------------

  auto Insert(KeyType key, ValueType value) {
    if (metrics_) metrics_->writes->Add();
    Shard& shard = *shards_[ShardOf(key)];
    std::unique_lock lock(shard.mutex);
    obs::ScopedDurationNs hold(metrics_ ? metrics_->write_lock_ns : nullptr);
    return shard.index.Insert(key, std::move(value));
  }

  bool Erase(KeyType key) {
    if (metrics_) metrics_->writes->Add();
    Shard& shard = *shards_[ShardOf(key)];
    std::unique_lock lock(shard.mutex);
    obs::ScopedDurationNs hold(metrics_ ? metrics_->write_lock_ns : nullptr);
    return shard.index.Erase(key);
  }

  void Clear() {
    if (metrics_) metrics_->writes->Add();
    for (auto& shard : shards_) {
      std::unique_lock lock(shard->mutex);
      obs::ScopedDurationNs hold(metrics_ ? metrics_->write_lock_ns
                                          : nullptr);
      shard->index.Clear();
    }
  }

  // --- readers ----------------------------------------------------------

  std::optional<ValueType> Find(KeyType key) const {
    if (metrics_) metrics_->reads->Add();
    if (obs::TraceShouldSample()) [[unlikely]] {
      return TracedFind(key);
    }
    const Shard& shard = *shards_[ShardOf(key)];
    if constexpr (HasOptimisticReads<Index, KeyType, ValueType>) {
      if (olc_enabled_) {
        std::optional<ValueType> out;
        if (FindOptimisticWithRetries(shard, key, &out)) return out;
      }
    }
    std::shared_lock lock(shard.mutex);
    obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns : nullptr);
    return shard.index.Find(key);
  }

  bool Contains(KeyType key) const {
    if (metrics_) metrics_->reads->Add();
    if (obs::TraceShouldSample()) [[unlikely]] {
      return TracedFind(key).has_value();
    }
    const Shard& shard = *shards_[ShardOf(key)];
    if constexpr (HasOptimisticReads<Index, KeyType, ValueType>) {
      if (olc_enabled_) {
        std::optional<ValueType> out;
        if (FindOptimisticWithRetries(shard, key, &out)) {
          return out.has_value();
        }
      }
    }
    std::shared_lock lock(shard.mutex);
    obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns : nullptr);
    return shard.index.Contains(key);
  }

  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::shared_lock lock(shard->mutex);
      total += shard->index.size();
    }
    return total;
  }

  // Batched point lookup, shard-aware: out[i] = value of keys[i] or
  // nullopt. The batch is partitioned by shard (counting sort on shard
  // id, preserving caller order within each shard), each shard's
  // sub-batch runs the underlying group-pipelined FindBatch under one
  // shared-lock acquisition, and the values are copied back to the
  // caller's positions while that shard's lock is held — so the results
  // stay valid after concurrent writers proceed.
  void FindBatch(const KeyType* keys, size_t n,
                 std::optional<ValueType>* out) const {
    if (n == 0) return;
    const size_t num = shards_.size();
    // Single shard: every key belongs to shard 0, so the partition and
    // scatter passes are pure overhead — run the whole batch directly.
    if (num == 1) {
      if (metrics_) {
        metrics_->batches->Add();
        metrics_->batch_keys->Add(n);
        metrics_->batch_size->Record(n);
        metrics_->shard_imbalance->Set(1.0);
      }
      std::optional<obs::TraceScope> scope;
      if (obs::TraceShouldSample()) [[unlikely]] {
        scope.emplace();
        scope->trace()->shard = 0;
      }
      // Request-span hook (obs/request_trace.h): the whole single-shard
      // batch is one descent span; there is no fan-out to attribute.
      obs::CollectedSpanScope descent_span(
          obs::RequestSpanKind::kDescent);
      if constexpr (HasOptimisticReads<Index, KeyType, ValueType>) {
        if (olc_enabled_ && !scope) {
          RunSubBatchOptimistic(
              *shards_[0], keys, n,
              [out](size_t j, std::optional<ValueType>&& v) {
                out[j] = std::move(v);
              });
          return;
        }
      }
      RunSubBatch(*shards_[0], keys, n, scope ? scope->trace() : nullptr,
                  [out](size_t j, const ValueType* p) {
                    if (p != nullptr) {
                      out[j] = *p;
                    } else {
                      out[j] = std::nullopt;
                    }
                  });
      if (scope) scope->Finish();
      return;
    }
    // Request-span hook: passes 1-2 (partition + scatter) are the
    // shard_fanout span, pass 3 (per-shard descents) the descent span.
    obs::CollectedSpanScope fanout_span(
        obs::RequestSpanKind::kShardFanout);
    // Pass 1: shard id per key + per-shard counts.
    std::vector<uint32_t> shard_of(n);
    std::vector<size_t> start(num + 1, 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t s = ShardOf(keys[i]);
      shard_of[i] = static_cast<uint32_t>(s);
      ++start[s + 1];
    }
    for (size_t s = 0; s < num; ++s) start[s + 1] += start[s];
    if (metrics_) {
      metrics_->batches->Add();
      metrics_->batch_keys->Add(n);
      metrics_->batch_size->Record(n);
      // Imbalance of this batch across shards: the largest shard's key
      // count relative to a perfectly even split (1.0 = balanced,
      // num_shards = everything on one shard).
      size_t max_count = 0;
      for (size_t s = 0; s < num; ++s) {
        max_count = std::max(max_count, start[s + 1] - start[s]);
      }
      metrics_->shard_imbalance->Set(static_cast<double>(max_count * num) /
                                     static_cast<double>(n));
    }
    // Pass 2: scatter keys and original positions into shard order.
    std::vector<KeyType> skeys(n);
    std::vector<size_t> spos(n);
    {
      std::vector<size_t> fill(start.begin(), start.end() - 1);
      for (size_t i = 0; i < n; ++i) {
        const size_t at = fill[shard_of[i]]++;
        skeys[at] = keys[i];
        spos[at] = i;
      }
    }
    // One trace per sampled batch, attributed to the batch's first key.
    // The counting sort preserves caller order within a shard, so
    // keys[0] is the first key of its shard's sub-batch; its chunk is
    // traced and the trace carries that shard's id and lock wait.
    std::optional<obs::TraceScope> scope;
    if (obs::TraceShouldSample()) [[unlikely]] {
      scope.emplace();
      scope->trace()->shard = static_cast<uint16_t>(shard_of[0]);
    }
    fanout_span.Finish();
    obs::CollectedSpanScope descent_span(obs::RequestSpanKind::kDescent);
    // Pass 3: per shard, one lock, the whole sub-batch through the
    // grouped descent (when it clears the heuristic) or the chunked
    // pipelined FindBatch, scattering back to caller order.
    for (size_t s = 0; s < num; ++s) {
      const size_t lo = start[s], hi = start[s + 1];
      if (lo == hi) continue;
      const bool traced = scope && s == shard_of[0];
      const size_t* pos = spos.data() + lo;
      if constexpr (HasOptimisticReads<Index, KeyType, ValueType>) {
        if (olc_enabled_ && !traced) {
          RunSubBatchOptimistic(
              *shards_[s], skeys.data() + lo, hi - lo,
              [out, pos](size_t j, std::optional<ValueType>&& v) {
                out[pos[j]] = std::move(v);
              });
          continue;
        }
      }
      RunSubBatch(*shards_[s], skeys.data() + lo, hi - lo,
                  traced ? scope->trace() : nullptr,
                  [out, pos](size_t j, const ValueType* p) {
                    if (p != nullptr) {
                      out[pos[j]] = *p;
                    } else {
                      out[pos[j]] = std::nullopt;
                    }
                  });
    }
    if (scope) scope->Finish();
  }

  // Merged arena occupancy across all shards (all-zero when the index
  // type is not arena-backed), one shared lock at a time — the same
  // per-shard snapshot semantics as size().
  mem::ArenaStats MemStats() const {
    mem::ArenaStats total;
    ForEachShardRead([&total](size_t, const Index& index) {
      total.Merge(mem::IndexMemStats(index));
    });
    if (metrics_) metrics_->PublishArena(total);
    return total;
  }

  // Runs fn(key, value) over [lo, hi) (or [lo, hi] when hi_inclusive)
  // in globally ascending key order, stitching across shard boundaries:
  // shards intersecting the range are visited in key order, each under
  // its shared lock. fn must not call back into this index. The scan is
  // atomic per shard, not across shards (see the consistency note
  // above).
  template <typename Fn>
  void ScanRange(KeyType lo, KeyType hi, Fn fn,
                 bool hi_inclusive = false) const {
    if (!hi_inclusive && lo >= hi) return;
    const size_t first = ShardOf(lo);
    const size_t last = ShardOf(hi);
    for (size_t s = first; s <= last; ++s) {
      if constexpr (HasOptimisticReads<Index, KeyType, ValueType>) {
        if (olc_enabled_) {
          if (ScanShardOptimistic(*shards_[s], lo, hi, fn, hi_inclusive)) {
            continue;
          }
        }
      }
      std::shared_lock lock(shards_[s]->mutex);
      shards_[s]->index.ScanRange(
          lo, hi, [&fn](KeyType k, const ValueType& v) { fn(k, v); },
          hi_inclusive);
    }
  }

  // Read-only access to one shard's index under its shared lock.
  template <typename Fn>
  auto WithShardRead(size_t shard, Fn fn) const {
    std::shared_lock lock(shards_[shard]->mutex);
    return fn(static_cast<const Index&>(shards_[shard]->index));
  }

  // Mutating access to one shard's index under its exclusive lock.
  template <typename Fn>
  auto WithShardWrite(size_t shard, Fn fn) {
    std::unique_lock lock(shards_[shard]->mutex);
    return fn(shards_[shard]->index);
  }

  // fn(shard_id, const Index&) for every shard, one shared lock at a
  // time in ascending order (per-shard snapshot semantics).
  template <typename Fn>
  void ForEachShardRead(Fn fn) const {
    for (size_t s = 0; s < shards_.size(); ++s) {
      std::shared_lock lock(shards_[s]->mutex);
      fn(s, static_cast<const Index&>(shards_[s]->index));
    }
  }

  // Every shard's structural invariants plus the partition invariant:
  // all keys of shard i lie in [splitter[i-1], splitter[i]).
  bool Validate() const {
    bool ok = true;
    ForEachShardRead([&](size_t s, const Index& index) {
      if (!index.Validate()) ok = false;
      const KeyType lo = s == 0 ? std::numeric_limits<KeyType>::min()
                                : splitters_[s - 1];
      const KeyType hi = s + 1 == shards_.size()
                             ? std::numeric_limits<KeyType>::max()
                             : splitters_[s];
      index.ScanRange(
          std::numeric_limits<KeyType>::min(),
          std::numeric_limits<KeyType>::max(),
          [&](KeyType k, const ValueType&) {
            if (k < lo || (s + 1 < shards_.size() && k >= hi)) ok = false;
          },
          /*hi_inclusive=*/true);
    });
    return ok;
  }

 private:
  struct Shard;

  // One shard's sub-batch under its shared lock: the grouped
  // (level-wise, sort-once) descent when the index has one and the
  // sub-batch clears the UseGroupedDescent heuristic, otherwise the
  // chunked group-pipelined FindBatch. emit(j, ptr) receives each
  // result in sub-batch order while the lock is held. A non-null `t`
  // traces this sub-batch (whole batch when grouped, first chunk when
  // pipelined) and receives the lock wait.
  template <typename Emit>
  void RunSubBatch(const Shard& shard, const KeyType* keys, size_t m,
                   obs::DescentTrace* t, Emit emit) const {
    const uint64_t lock_start = t != nullptr ? CycleTimer::Now() : 0;
    std::shared_lock lock(shard.mutex);
    if (t != nullptr) {
      t->lock_wait_ns = static_cast<uint64_t>(
          CycleTimer::ToNanoseconds(CycleTimer::Now() - lock_start));
    }
    obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns : nullptr);
    if constexpr (HasGroupedFindBatch<Index, KeyType, ValueType>) {
      if (UseGroupedDescent(m, BatchLevels(shard.index))) {
        std::vector<const ValueType*> ptrs(m);
        if (t != nullptr) {
          core::TracedGroupedFindBatch(shard.index, keys, m, ptrs.data(), t);
        } else {
          shard.index.FindBatchGrouped(keys, m, ptrs.data());
        }
        for (size_t j = 0; j < m; ++j) emit(j, ptrs[j]);
        return;
      }
    }
    constexpr size_t kChunk = 256;
    const ValueType* ptrs[kChunk];
    for (size_t off = 0; off < m; off += kChunk) {
      const size_t g = m - off < kChunk ? m - off : kChunk;
      if (t != nullptr && off == 0) {
        core::TracedFindChunk(shard.index, keys, g, ptrs, t);
      } else {
        shard.index.FindBatch(keys + off, g, ptrs);
      }
      for (size_t j = 0; j < g; ++j) emit(off + j, ptrs[j]);
    }
  }

  // --- optimistic read plumbing -----------------------------------------

  // One epoch-pinned, bounded-retry optimistic lookup. True: *out holds
  // the answer. False: the epoch registry was exhausted or
  // olc::kMaxReadRetries attempts conflicted — the caller takes the
  // shard's shared lock (the writer-preferring fallback rung: a reader
  // losing races repeatedly queues once instead of spinning on tree
  // state forever).
  bool FindOptimisticWithRetries(const Shard& shard, KeyType key,
                                 std::optional<ValueType>* out) const {
    olc::EpochGuard epoch;
    if (!epoch.pinned()) return false;
    for (int attempt = 0; attempt < olc::kMaxReadRetries; ++attempt) {
      if (shard.index.FindOptimistic(key, out) == olc::ReadResult::kOk) {
        return true;
      }
      olc_metrics_.read_retries->Add();
    }
    olc_metrics_.fallback_acquisitions->Add();
    return false;
  }

  // Lock-free counterpart of RunSubBatch: one epoch pin covers the whole
  // sub-batch through the optimistic grouped/pipelined engines, queries
  // a writer invalidated retry per-key, and only still-conflicted
  // leftovers take ONE shared-lock acquisition. emit(j, optional&&)
  // receives every result (values are copies, valid indefinitely).
  template <typename Emit>
  void RunSubBatchOptimistic(const Shard& shard, const KeyType* keys,
                             size_t m, Emit emit) const {
    olc::EpochGuard epoch;
    if (!epoch.pinned()) {
      // Registry exhausted (256+ reader threads): locked path, copying
      // out of the ptr-based emit protocol.
      std::shared_lock lock(shard.mutex);
      obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns
                                          : nullptr);
      std::vector<std::optional<ValueType>> vals(m);
      LockedFindInto(shard.index, keys, m, vals.data());
      for (size_t j = 0; j < m; ++j) emit(j, std::move(vals[j]));
      return;
    }
    std::vector<std::optional<ValueType>> vals(m);
    std::vector<uint32_t> failed;
    if (UseGroupedDescent(m, OptimisticLevels(shard.index))) {
      shard.index.FindBatchGroupedOptimistic(keys, m, vals.data(), &failed);
    } else {
      shard.index.FindBatchOptimistic(keys, m, vals.data(), &failed);
    }
    if (!failed.empty()) {
      olc_metrics_.read_retries->Add(failed.size());
      std::vector<uint32_t> leftovers;
      for (const uint32_t idx : failed) {
        bool ok = false;
        for (int attempt = 1; attempt < olc::kMaxReadRetries; ++attempt) {
          if (shard.index.FindOptimistic(keys[idx], &vals[idx]) ==
              olc::ReadResult::kOk) {
            ok = true;
            break;
          }
          olc_metrics_.read_retries->Add();
        }
        if (!ok) leftovers.push_back(idx);
      }
      if (!leftovers.empty()) {
        olc_metrics_.fallback_acquisitions->Add();
        std::shared_lock lock(shard.mutex);
        obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns
                                            : nullptr);
        for (const uint32_t idx : leftovers) {
          vals[idx] = shard.index.Find(keys[idx]);
        }
      }
    }
    for (size_t j = 0; j < m; ++j) emit(j, std::move(vals[j]));
  }

  // Locked per-key lookups into an optional array (epoch-registry
  // overflow path only — not performance-relevant).
  static void LockedFindInto(const Index& index, const KeyType* keys,
                             size_t m, std::optional<ValueType>* vals) {
    for (size_t j = 0; j < m; ++j) vals[j] = index.Find(keys[j]);
  }

  // Optimistic scan of one shard with delivery-floor resume: conflicted
  // attempts restart where the last validated leaf left off, so the
  // callback never sees a pair twice, and after kMaxReadRetries the
  // remainder of the range runs once under the shard's shared lock.
  // Returns false (nothing delivered) only when no epoch slot was
  // available.
  template <typename Fn>
  bool ScanShardOptimistic(const Shard& shard, KeyType lo, KeyType hi,
                           Fn& fn, bool hi_inclusive) const {
    olc::EpochGuard epoch;
    if (!epoch.pinned()) return false;
    KeyType resume = lo;
    uint32_t skip = 0;
    for (int attempt = 0; attempt < olc::kMaxReadRetries; ++attempt) {
      if (shard.index.ScanRangeOptimistic(
              hi, hi_inclusive, &resume, &skip,
              [&fn](KeyType k, const ValueType& v) { fn(k, v); }) ==
          olc::ReadResult::kOk) {
        return true;
      }
      olc_metrics_.read_retries->Add();
    }
    olc_metrics_.fallback_acquisitions->Add();
    std::shared_lock lock(shard.mutex);
    uint32_t seen = 0;
    shard.index.ScanRange(
        resume, hi,
        [&](KeyType k, const ValueType& v) {
          // Skip the occurrences of the resume key already delivered.
          if (k == resume && seen++ < skip) return;
          fn(k, v);
        },
        hi_inclusive);
    return true;
  }

  // Cold path for a sampled single-key read: stamps the owning shard id,
  // measures that shard's lock wait separately from the descent, and
  // routes through the index's FindTraced when it has one. Kept out of
  // line of Find so the common path stays one sampling branch.
  std::optional<ValueType> TracedFind(KeyType key) const {
    obs::TraceScope scope;
    const size_t s = ShardOf(key);
    scope.trace()->shard = static_cast<uint16_t>(s);
    const Shard& shard = *shards_[s];
    std::optional<ValueType> result;
    {
      const uint64_t lock_start = CycleTimer::Now();
      std::shared_lock lock(shard.mutex);
      scope.trace()->lock_wait_ns = static_cast<uint64_t>(
          CycleTimer::ToNanoseconds(CycleTimer::Now() - lock_start));
      obs::ScopedDurationNs hold(metrics_ ? metrics_->read_lock_ns
                                          : nullptr);
      result = core::TracedFindOne(shard.index, key, scope.trace());
    }
    scope.Finish();
    return result;
  }

  static constexpr size_t kDefaultShards = 8;
  static constexpr size_t kMaxShards = 1u << 16;

  struct Shard {
    mutable std::shared_mutex mutex;
    Index index;
  };

  static size_t RoundUpShards(size_t n) {
    if (n < 1) n = 1;
    if (n > kMaxShards) n = kMaxShards;
    return std::bit_ceil(n);
  }

  // Splitters dividing the full integral domain into num_shards equal
  // ranges. Signed keys are handled by stepping through the unsigned
  // image of the domain (same trick as the SIMD layer's sign-bit flip).
  static std::vector<KeyType> UniformSplitters(size_t num_shards) {
    static_assert(std::is_integral_v<KeyType>,
                  "default splitters need an integral key; pass explicit "
                  "splitters (e.g. SplittersFromSample) otherwise");
    using U = std::make_unsigned_t<KeyType>;
    assert(std::countr_zero(num_shards) < std::numeric_limits<U>::digits &&
           "more shards than distinct keys in the domain");
    std::vector<KeyType> splitters;
    splitters.reserve(num_shards - 1);
    const int shift =
        std::numeric_limits<U>::digits - std::countr_zero(num_shards);
    const U base = static_cast<U>(std::numeric_limits<KeyType>::min());
    for (size_t s = 1; s < num_shards; ++s) {
      splitters.push_back(
          static_cast<KeyType>(base + (static_cast<U>(s) << shift)));
    }
    return splitters;
  }

  std::vector<KeyType> splitters_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::optional<obs::IndexMetrics> metrics_;
  // Lock-free read state: armed by the constructor when every shard's
  // index accepted EnableConcurrentReads (see class comment). The olc.*
  // counters are process-global and pre-resolved so the conflict paths
  // pay one relaxed add each.
  bool olc_enabled_ = false;
  obs::OlcMetrics olc_metrics_;
};

}  // namespace simdtree

#endif  // SIMDTREE_CORE_SHARDED_H_
