// Batch key sort with original-index permutation — the front half of the
// grouped (level-wise) batch descent.
//
// ShardedIndex::FindBatch already counting-sorts a batch by shard id so
// each shard is visited once per batch. The grouped descent extends the
// same idea *inside* a structure: sort the whole sub-batch by key, so
// queries routed to the same node at every level form one contiguous run
// and the node is loaded and searched once per batch instead of once per
// query. This header is that sort: an LSD radix sort (one counting-sort
// pass per key byte, skipping bytes on which all keys agree) that
// produces the ascending keys plus the permutation mapping each sorted
// slot back to its caller position, so results scatter back in O(n).
//
// Contract (the "sort-permute-scatter" contract, DESIGN.md): after
// SortBatchWithPermutation(keys, n, &s), s.keys[j] is ascending,
// s.keys[j] == keys[s.perm[j]], and the sort is stable — equal keys keep
// their caller order, which keeps grouped results bit-identical to the
// pipelined path for duplicate probes.

#ifndef SIMDTREE_CORE_BATCH_SORT_H_
#define SIMDTREE_CORE_BATCH_SORT_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace simdtree {

// Reusable output + scratch of one batch sort; callers that run many
// batches (benches, wrappers) keep one instance alive to avoid
// reallocating per batch.
template <typename T>
struct SortedBatch {
  std::vector<T> keys;        // the batch, ascending
  std::vector<uint32_t> perm; // keys[j] == original[perm[j]]
  std::vector<T> tmp_keys;    // radix ping-pong scratch
  std::vector<uint32_t> tmp_perm;
};

namespace batch_sort_internal {

// Unsigned image preserving order: flip the sign bit of signed types.
template <typename T>
inline std::make_unsigned_t<T> OrderedImage(T v) {
  using U = std::make_unsigned_t<T>;
  U u = static_cast<U>(v);
  if constexpr (std::is_signed_v<T>) {
    u ^= static_cast<U>(U{1} << (sizeof(T) * 8 - 1));
  }
  return u;
}

}  // namespace batch_sort_internal

// Stable ascending sort of keys[0..n) into out->keys with the
// original-index permutation in out->perm. O(n) per key byte; passes on
// which every key agrees are skipped (common for the high bytes of
// small-domain batches), so nearly-clustered batches sort in one or two
// passes.
template <typename T>
void SortBatchWithPermutation(const T* keys, size_t n, SortedBatch<T>* out) {
  static_assert(std::is_integral_v<T>, "radix batch sort needs integer keys");
  using batch_sort_internal::OrderedImage;
  out->keys.resize(n);
  out->perm.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out->keys[i] = keys[i];
    out->perm[i] = static_cast<uint32_t>(i);
  }
  if (n < 2) return;
  out->tmp_keys.resize(n);
  out->tmp_perm.resize(n);

  constexpr int kBytes = static_cast<int>(sizeof(T));
  // One shared histogram pass over all byte positions.
  size_t hist[kBytes][256] = {};
  for (size_t i = 0; i < n; ++i) {
    const auto u = OrderedImage(keys[i]);
    for (int b = 0; b < kBytes; ++b) {
      ++hist[b][static_cast<uint8_t>(u >> (b * 8))];
    }
  }

  T* src_keys = out->keys.data();
  uint32_t* src_perm = out->perm.data();
  T* dst_keys = out->tmp_keys.data();
  uint32_t* dst_perm = out->tmp_perm.data();
  for (int b = 0; b < kBytes; ++b) {
    // Skip the pass when one bucket holds everything.
    bool trivial = false;
    for (int v = 0; v < 256; ++v) {
      if (hist[b][v] == n) {
        trivial = true;
        break;
      }
      if (hist[b][v] != 0) break;  // first non-empty bucket is partial
    }
    if (trivial) continue;
    size_t offset[256];
    size_t sum = 0;
    for (int v = 0; v < 256; ++v) {
      offset[v] = sum;
      sum += hist[b][v];
    }
    for (size_t i = 0; i < n; ++i) {
      const uint8_t byte =
          static_cast<uint8_t>(OrderedImage(src_keys[i]) >> (b * 8));
      const size_t at = offset[byte]++;
      dst_keys[at] = src_keys[i];
      dst_perm[at] = src_perm[i];
    }
    std::swap(src_keys, dst_keys);
    std::swap(src_perm, dst_perm);
  }
  if (src_keys != out->keys.data()) {
    out->keys.swap(out->tmp_keys);
    out->perm.swap(out->tmp_perm);
  }
}

}  // namespace simdtree

#endif  // SIMDTREE_CORE_BATCH_SORT_H_
