// Shared knobs for the batched-lookup subsystem.
//
// Every batched search in the library (kary/batch_search.h,
// btree/batch_descent.h, the Seg-Trie's FindBatch) uses the same group
// software-pipelining scheme: G independent queries advance in lockstep
// one level at a time, and each query's next memory target is prefetched
// before any of them is touched, so the G per-level misses overlap in
// the memory system.
//
// G trades memory-level parallelism against register pressure and
// line-fill-buffer occupancy: one x86 core sustains roughly 10-16
// outstanding L1 misses, so groups in the 8-16 range capture most of the
// available overlap, and larger groups only add state. The default of 12
// leaves headroom for the demand loads of the searches themselves;
// bench/bb_batch_lookup sweeps the choice.

#ifndef SIMDTREE_CORE_BATCH_H_
#define SIMDTREE_CORE_BATCH_H_

namespace simdtree {

// Upper bound of the lockstep group size (fixed state-array dimension in
// the pipelined search loops).
inline constexpr int kMaxBatchGroup = 16;

// Default in-flight group size.
inline constexpr int kDefaultBatchGroup = 12;

inline constexpr int ClampBatchGroup(int group) {
  return group < 1 ? 1 : (group > kMaxBatchGroup ? kMaxBatchGroup : group);
}

// Read prefetch into all cache levels. Prefetches never fault, so the
// out-of-range addresses a pruned or finished query can compute are safe
// to issue.
inline void PrefetchRead(const void* p) { __builtin_prefetch(p, 0, 3); }

}  // namespace simdtree

#endif  // SIMDTREE_CORE_BATCH_H_
