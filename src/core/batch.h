// Shared knobs for the batched-lookup subsystem.
//
// Every batched search in the library (kary/batch_search.h,
// btree/batch_descent.h, the Seg-Trie's FindBatch) uses the same group
// software-pipelining scheme: G independent queries advance in lockstep
// one level at a time, and each query's next memory target is prefetched
// before any of them is touched, so the G per-level misses overlap in
// the memory system.
//
// G trades memory-level parallelism against register pressure and
// line-fill-buffer occupancy: one x86 core sustains roughly 10-16
// outstanding L1 misses, so groups in the 8-16 range capture most of the
// available overlap, and larger groups only add state. The default of 12
// leaves headroom for the demand loads of the searches themselves;
// bench/bb_batch_lookup sweeps the choice.

#ifndef SIMDTREE_CORE_BATCH_H_
#define SIMDTREE_CORE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

namespace simdtree {

// Upper bound of the lockstep group size (fixed state-array dimension in
// the pipelined search loops).
inline constexpr int kMaxBatchGroup = 16;

// Default in-flight group size.
inline constexpr int kDefaultBatchGroup = 12;

inline constexpr int ClampBatchGroup(int group) {
  return group < 1 ? 1 : (group > kMaxBatchGroup ? kMaxBatchGroup : group);
}

// Read prefetch into all cache levels. Prefetches never fault, so the
// out-of-range addresses a pruned or finished query can compute are safe
// to issue.
inline void PrefetchRead(const void* p) { __builtin_prefetch(p, 0, 3); }

// In-level lookahead distance for the grouped descent's run loops: while
// run i's node is being searched, run i + kGroupedRunLookahead's node is
// prefetched. The push-time child prefetch covers small frontiers, but
// once a level holds more runs than the core's line fill buffers those
// early prefetches are dropped or evicted before use and the level's
// loads serialize; the lookahead re-issues each prefetch a fixed (LFB-
// sized) distance ahead of its consumer, restoring the overlap.
inline constexpr size_t kGroupedRunLookahead = 8;

// --- pipelined vs grouped descent crossover --------------------------------
//
// The grouped (level-wise) descent sorts the batch once and visits each
// frontier node once, amortizing node loads across the queries routed to
// it. The amortization only pays when the batch is large relative to the
// structure's depth: the sort is O(n) extra work and the upper levels
// only share once n exceeds their node count. Empirically (see
// bench/bb_batch_lookup and DESIGN.md "Batched traversal") the grouped
// path wins once the batch carries roughly this many queries per level;
// below it, the pipelined path's simplicity wins.
inline constexpr int kGroupedMinBatchPerLevel = 96;

// Heuristic switch shared by the wrappers and the CLI: grouped descent
// when the batch is deep enough to amortize, pipelined otherwise.
inline constexpr bool UseGroupedDescent(size_t n, int levels) {
  return levels > 0 &&
         n >= static_cast<size_t>(levels) *
                  static_cast<size_t>(kGroupedMinBatchPerLevel);
}

// Structure depth for the heuristic, duck-typed over the index families:
// trees report height(), tries report active_levels(), everything else
// defaults to 1 level.
template <typename Index>
constexpr int BatchLevels(const Index& index) {
  if constexpr (requires { index.height(); }) {
    return static_cast<int>(index.height());
  } else if constexpr (requires { index.active_levels(); }) {
    return index.active_levels();
  } else {
    return 1;
  }
}

// Whether the index exposes the grouped batched lookup (the trees and
// tries do; arbitrary wrapped indexes need not).
template <typename Index, typename K, typename V>
concept HasGroupedFindBatch =
    requires(const Index& index, const K* keys, size_t n, const V** out) {
      index.FindBatchGrouped(keys, n, out);
    };

// Whether the index exposes the optimistic-lock-coupling read paths
// (generic_btree.h "optimistic reads"): the arming call plus the
// version-validated single / batched / range reads the concurrency
// wrappers route lock-free reads through.
template <typename Index, typename K, typename V>
concept HasOptimisticReads =
    requires(Index& index, const Index& cindex, K key, size_t n,
             std::optional<V>* out, std::vector<uint32_t>* failed) {
      { index.EnableConcurrentReads() } -> std::convertible_to<bool>;
      cindex.FindOptimistic(key, out);
      cindex.FindBatchOptimistic(&key, n, out, failed);
      cindex.FindBatchGroupedOptimistic(&key, n, out, failed);
      { cindex.height_hint() } -> std::convertible_to<int>;
    };

// Structure depth for the optimistic batch heuristic: the lock-free
// paths must not walk the structure (height() chases child pointers
// without validation), so they use the writer-maintained atomic hint.
template <typename Index>
int OptimisticLevels(const Index& index) {
  if constexpr (requires { index.height_hint(); }) {
    return index.height_hint();
  } else {
    return 1;
  }
}

}  // namespace simdtree

#endif  // SIMDTREE_CORE_BATCH_H_
