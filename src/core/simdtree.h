// simdtree — SIMD-accelerated tree index structures.
//
// Umbrella header for the public API, reproducing "Adapting Tree
// Structures for Processing with SIMD Instructions" (Zeuch, Huber,
// Freytag; EDBT 2014):
//
//   btree::BPlusTree        — baseline B+-Tree, scalar in-node search
//   segtree::SegTree        — B+-Tree with SIMD k-ary in-node search
//   segtrie::SegTrie        — segment trie with SIMD in-node search
//   segtrie::OptimizedSegTrie — lazy-expansion variant
//   segtrie::AdaptedSegTrie — trie over signed/float keys via codecs
//   kary::KaryArray         — standalone linearized SIMD dictionary
//   SynchronizedIndex       — coarse reader/writer thread-safe wrapper
//   ShardedIndex            — range-partitioned shards, per-shard locks
//   io::Serialize/Load*     — portable binary persistence
//   obs::PerfCounterGroup   — hardware counters via perf_event_open
//   obs::LogHistogram       — lock-free log-bucketed latency histogram
//   obs::MetricsRegistry    — named counters/gauges/histograms + JSON
//
// Quickstart:
//
//   #include "core/simdtree.h"
//   simdtree::segtree::SegTree<uint32_t, uint64_t> index;
//   index.Insert(42, 4200);
//   if (auto v = index.Find(42)) use(*v);
//
// See README.md for the architecture overview and bench/ for the
// paper-reproduction harness.

#ifndef SIMDTREE_CORE_SIMDTREE_H_
#define SIMDTREE_CORE_SIMDTREE_H_

#include "btree/batch_descent.h"         // IWYU pragma: export
#include "btree/btree.h"                 // IWYU pragma: export
#include "core/batch.h"                  // IWYU pragma: export
#include "core/serialize.h"              // IWYU pragma: export
#include "core/sharded.h"                // IWYU pragma: export
#include "core/synchronized.h"           // IWYU pragma: export
#include "core/version.h"                // IWYU pragma: export
#include "kary/batch_search.h"           // IWYU pragma: export
#include "obs/histogram.h"               // IWYU pragma: export
#include "obs/metrics.h"                 // IWYU pragma: export
#include "obs/perf_counters.h"           // IWYU pragma: export
#include "kary/kary_array.h"             // IWYU pragma: export
#include "kary/kary_search.h"            // IWYU pragma: export
#include "kary/linearize.h"              // IWYU pragma: export
#include "segtree/segtree.h"             // IWYU pragma: export
#include "segtrie/compressed_segtrie.h"  // IWYU pragma: export
#include "segtrie/key_codec.h"           // IWYU pragma: export
#include "segtrie/segtrie.h"             // IWYU pragma: export
#include "simd/bitmask_eval.h"           // IWYU pragma: export
#include "simd/cpu_features.h"           // IWYU pragma: export
#include "simd/simd128.h"                // IWYU pragma: export
#include "simd/simd256.h"                // IWYU pragma: export
#include "util/counters.h"               // IWYU pragma: export

#endif  // SIMDTREE_CORE_SIMDTREE_H_
