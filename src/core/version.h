#ifndef SIMDTREE_CORE_VERSION_H_
#define SIMDTREE_CORE_VERSION_H_

namespace simdtree {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace simdtree

#endif  // SIMDTREE_CORE_VERSION_H_
