// Arena/pool memory subsystem for the tree backends.
//
// The paper optimizes *intra*-node search — few cache lines per node via
// SIMD k-ary layouts — but says nothing about where the nodes live. With
// one `new` per node, a root-to-leaf descent chases pointers across a
// fragmented heap: every level is an LLC miss AND a dTLB miss against an
// unrelated 4 KiB page. Related systems put their headline numbers on
// contiguous node storage (the BS-tree's flat per-level arrays, and
// Upscaledb's compressed in-node data keeping more of the index
// TLB-resident — see PAPERS.md). This file is that layer for simdtree:
//
//   * NodePool  — segregated pool of fixed-size node blocks, carved from
//     large slabs (2 MiB by default) that are madvise(MADV_HUGEPAGE)d so
//     the kernel can back a whole pool level with a single TLB entry.
//     Blocks are cache-line aligned and addressed by **32-bit slots**
//     (slab index + block index packed into one uint32), which is what
//     lets GenericBPlusTree store compressed child references instead of
//     64-bit pointers: half the pointer width, so more separators and
//     children per cache line.
//   * ByteArena — variable-size bump arena with size-class free lists,
//     for the Seg-Trie's compact nodes (which grow geometrically and are
//     freed individually on erase).
//
// Both have a **heap mode** (SIMDTREE_DISABLE_ARENA=1, sampled at
// construction) in which every block is an individual aligned
// allocation; slot decoding degenerates to a table lookup. Same code
// path, same node layout — only the placement differs — so the benches
// can A/B the arena's locality win honestly (bb_hw_profile).
//
// Slabs never move once allocated: node pointers and slot decodings stay
// stable for the pool's lifetime, and Reset() releases every slab in
// O(slabs) without touching individual blocks (O(1) per node-count),
// which is what makes tree Clear()/teardown constant-time per node.
//
// Thread compatibility matches the trees: a pool belongs to one tree
// (one shard), concurrent reads are safe, mutation needs external
// exclusion.

#ifndef SIMDTREE_MEM_ARENA_H_
#define SIMDTREE_MEM_ARENA_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/olc.h"

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace simdtree::mem {

inline constexpr size_t kCacheLine = 64;
inline constexpr size_t kDefaultSlabBytes = size_t{2} << 20;  // 2 MiB
inline constexpr size_t kHugePageBytes = size_t{2} << 20;

// SIMDTREE_DISABLE_ARENA=1 routes every allocation through the system
// heap (one aligned new per block) — the fragmentation baseline the
// arena is measured against. Sampled when a pool is constructed, so
// tests can flip it per structure.
inline bool ArenaEnabled() {
  const char* env = std::getenv("SIMDTREE_DISABLE_ARENA");
  return !(env != nullptr && env[0] != '\0' && env[0] != '0');
}

// SIMDTREE_DISABLE_HUGEPAGES=1 skips the madvise(MADV_HUGEPAGE) hint
// (e.g. to isolate the contiguity win from the TLB win, or on kernels
// where THP compaction stalls matter). Sampled per slab allocation.
inline bool HugepagesEnabled() {
  const char* env = std::getenv("SIMDTREE_DISABLE_HUGEPAGES");
  return !(env != nullptr && env[0] != '\0' && env[0] != '0');
}

namespace internal {

// One aligned slab. Alignment is the hugepage size for hugepage-sized
// slabs (transparent hugepages only collapse 2 MiB-aligned extents) and
// a cache line otherwise. The MADV_HUGEPAGE hint is best-effort: where
// madvise is unavailable or denied (THP disabled, non-Linux), the slab
// silently stays on base pages — correctness never depends on it.
inline void* AllocateSlab(size_t bytes) {
  const size_t align = bytes >= kHugePageBytes ? kHugePageBytes : kCacheLine;
  void* p = ::operator new(bytes, std::align_val_t{align});
#if defined(__linux__)
  if (bytes >= kHugePageBytes && HugepagesEnabled()) {
    (void)madvise(p, bytes, MADV_HUGEPAGE);
  }
#endif
  return p;
}

inline void ReleaseSlab(void* p, size_t bytes) {
  const size_t align = bytes >= kHugePageBytes ? kHugePageBytes : kCacheLine;
  ::operator delete(p, std::align_val_t{align});
}

inline size_t AlignUp(size_t v, size_t align) {
  return (v + align - 1) / align * align;
}

}  // namespace internal

// Counters and occupancy of one pool/arena, cheap to read (all O(1)).
struct ArenaStats {
  bool arena_mode = false;     // false: heap (per-block) fallback
  size_t slab_count = 0;       // slabs currently reserved
  size_t reserved_bytes = 0;   // total slab bytes
  size_t used_bytes = 0;       // bytes of live blocks
  size_t live_blocks = 0;      // allocated minus freed minus reset
  size_t free_list_blocks = 0; // blocks parked on free lists
  uint64_t allocs = 0;         // lifetime block allocations
  uint64_t frees = 0;          // lifetime per-block frees (erase churn)
  uint64_t resets = 0;         // lifetime O(1) slab releases
  size_t deferred_blocks = 0;  // blocks quarantined awaiting epoch advance
  size_t deferred_slabs = 0;   // slabs quarantined awaiting epoch advance

  double utilization() const {
    return reserved_bytes > 0
               ? static_cast<double>(used_bytes) /
                     static_cast<double>(reserved_bytes)
               : 0.0;
  }

  ArenaStats& Merge(const ArenaStats& o) {
    arena_mode = arena_mode || o.arena_mode;
    slab_count += o.slab_count;
    reserved_bytes += o.reserved_bytes;
    used_bytes += o.used_bytes;
    live_blocks += o.live_blocks;
    free_list_blocks += o.free_list_blocks;
    allocs += o.allocs;
    frees += o.frees;
    resets += o.resets;
    deferred_blocks += o.deferred_blocks;
    deferred_slabs += o.deferred_slabs;
    return *this;
  }
};

// Per-tree arena knobs, carried in each tree's Config. The defaults are
// what production wants; tests shrink slab_bytes to exercise multi-slab
// growth cheaply and max_slot_bits to hit the ref-exhaustion path
// without allocating 2^31 nodes.
struct ArenaOptions {
  size_t slab_bytes = kDefaultSlabBytes;
  uint32_t max_slot_bits = 31;  // top bit is the tree's leaf/inner tag
};

// Returns the index's arena stats when it exposes MemStats() (all arena-
// backed trees do), and an all-zero ArenaStats otherwise. Lets the
// concurrency wrappers stay generic over non-arena indexes.
template <typename Index>
ArenaStats IndexMemStats(const Index& index) {
  if constexpr (requires { index.MemStats(); }) {
    return index.MemStats();
  } else {
    return ArenaStats{};
  }
}

// --- NodePool ---------------------------------------------------------------

// Pool of fixed-size, cache-line-aligned blocks addressed by 32-bit
// slots. A slot packs (slab index << slot_bits) | block index; decoding
// is one load from the (small, hot) slab table plus arithmetic —
// cheaper than the dependent pointer load it replaces, and computable
// for prefetching before the child is touched.
//
// Slab growth is geometric: the first slab holds a handful of blocks
// (small trees in tests/fixtures stay cheap), doubling up to
// `slab_bytes`, after which every slab is full-size and hugepage-backed.
// `max_slot_bits` caps the encodable slot space; Alloc returns nullptr
// on exhaustion so the owner can surface a typed error (tree insert
// throws std::bad_alloc). Callers that tag slots (e.g. the tree's
// leaf/inner bit) pass max_slot_bits = 31.
class NodePool {
 public:
  static constexpr uint32_t kMaxSlotBits = 32;
  static constexpr size_t kMinBlocksFirstSlab = 8;

  explicit NodePool(size_t block_bytes,
                    size_t slab_bytes = kDefaultSlabBytes,
                    uint32_t max_slot_bits = kMaxSlotBits)
      : arena_mode_(ArenaEnabled()),
        block_bytes_(internal::AlignUp(block_bytes, kCacheLine)),
        slab_bytes_(slab_bytes),
        max_slot_bits_(max_slot_bits) {
    assert(max_slot_bits_ >= 1 && max_slot_bits_ <= 32);
    if (arena_mode_) {
      blocks_per_slab_ =
          std::max<size_t>(1, slab_bytes_ / block_bytes_);
      slot_bits_ = static_cast<uint32_t>(
          std::bit_width(blocks_per_slab_ - 1));
      if (slot_bits_ == 0) slot_bits_ = 1;  // degenerate 1-block slabs
      slot_mask_ = (uint32_t{1} << slot_bits_) - 1;
      next_slab_blocks_ =
          std::min(blocks_per_slab_,
                   std::max<size_t>(kMinBlocksFirstSlab,
                                    size_t{4096} / block_bytes_));
    } else {
      blocks_per_slab_ = 1;
      slot_bits_ = 0;
      slot_mask_ = 0;
    }
  }

  ~NodePool() { Teardown(); }

  NodePool(NodePool&& other) noexcept { *this = std::move(other); }
  NodePool& operator=(NodePool&& other) noexcept {
    if (this != &other) {
      Teardown();
      arena_mode_ = other.arena_mode_;
      block_bytes_ = other.block_bytes_;
      slab_bytes_ = other.slab_bytes_;
      max_slot_bits_ = other.max_slot_bits_;
      blocks_per_slab_ = other.blocks_per_slab_;
      slot_bits_ = other.slot_bits_;
      slot_mask_ = other.slot_mask_;
      next_slab_blocks_ = other.next_slab_blocks_;
      slabs_ = std::move(other.slabs_);
      slab_blocks_ = std::move(other.slab_blocks_);
      bump_ = other.bump_;
      free_list_ = std::move(other.free_list_);
      stats_ = other.stats_;
      epoch_mgr_ = other.epoch_mgr_;
      opt_table_ = other.opt_table_;
      opt_table_size_ = other.opt_table_size_;
      quarantine_ = std::move(other.quarantine_);
      quarantined_slabs_ = std::move(other.quarantined_slabs_);
      deferred_block_count_ = other.deferred_block_count_;
      purge_tick_ = other.purge_tick_;
      slab_index_base_ = other.slab_index_base_;
      other.slabs_.clear();
      other.slab_blocks_.clear();
      other.bump_ = 0;
      other.free_list_.clear();
      other.stats_ = {};
      other.epoch_mgr_ = nullptr;
      other.opt_table_ = nullptr;
      other.opt_table_size_ = 0;
      other.quarantine_.clear();
      other.quarantined_slabs_.clear();
      other.deferred_block_count_ = 0;
      other.purge_tick_ = 0;
      other.slab_index_base_ = 0;
    }
    return *this;
  }
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  bool arena_mode() const { return arena_mode_; }
  size_t block_bytes() const { return block_bytes_; }
  bool deferred_enabled() const { return epoch_mgr_ != nullptr; }

  // Switches the pool to epoch-deferred reclamation for optimistic
  // (lock-free) readers:
  //   * Free() quarantines slots instead of recycling them, and Reset()
  //     quarantines whole slabs instead of releasing them; both drain
  //     only once every in-flight reader has advanced past the epoch of
  //     the free (MinActive() > bucket epoch). This is what makes a
  //     validated-but-stale node pointer safe to dereference: the
  //     memory cannot be recycled or unmapped while the reader's pin is
  //     older than the free.
  //   * A stable, atomically-published slab table is built so readers
  //     can decode slot refs without touching the (reallocating)
  //     slabs_ vector; DecodeOptimistic() bounds-checks against it and
  //     returns nullptr for refs torn mid-read.
  // Arena mode only — the heap fallback has one table entry per block
  // (2^31 for trees), so it keeps the locked read path. Returns whether
  // deferral is active. Idempotent.
  bool EnableDeferredReclamation(olc::EpochManager* em) {
    if (!arena_mode_ || em == nullptr) return false;
    if (epoch_mgr_ != nullptr) return true;
    const uint32_t shift =
        max_slot_bits_ > slot_bits_ ? max_slot_bits_ - slot_bits_ : 0;
    const size_t table = size_t{1} << shift;
    // calloc: the table can be large in slot-space terms (tens of MiB
    // virtual) but is only ever touched one entry per live slab, so the
    // lazily-zeroed pages cost nothing until used.
    auto* t = static_cast<SlabTableEntry*>(
        std::calloc(table, sizeof(SlabTableEntry)));
    if (t == nullptr) return false;
    opt_table_ = t;
    opt_table_size_ = table;
    for (size_t i = 0; i < slabs_.size(); ++i) {
      const size_t idx = slab_index_base_ + i;
      if (idx >= opt_table_size_) break;
      opt_table_[idx].blocks.store(slab_blocks_[i],
                                   std::memory_order_relaxed);
      opt_table_[idx].base.store(slabs_[i], std::memory_order_release);
    }
    epoch_mgr_ = em;
    return true;
  }

  // Slot decode for optimistic readers: every input is treated as
  // potentially torn garbage, so the lookup is bounds-guarded against
  // the atomic slab table and returns nullptr instead of faulting; the
  // caller maps nullptr to a version conflict and restarts.
  const void* DecodeOptimistic(uint32_t slot) const {
    const size_t idx = slot >> slot_bits_;
    if (opt_table_ == nullptr || idx >= opt_table_size_) return nullptr;
    const char* base = opt_table_[idx].base.load(std::memory_order_acquire);
    if (base == nullptr) return nullptr;
    const uint64_t blk = slot & slot_mask_;
    if (blk >= opt_table_[idx].blocks.load(std::memory_order_relaxed)) {
      return nullptr;
    }
    return base + static_cast<size_t>(blk) * block_bytes_;
  }

  // Allocates one block; *slot receives its 32-bit reference. Returns
  // nullptr when the slot space (max_slot_bits) is exhausted — the only
  // failure mode besides the allocator itself throwing.
  void* Alloc(uint32_t* slot) {
    if (free_list_.empty() && epoch_mgr_ != nullptr) {
      // Writer-side housekeeping: drain any quarantine the readers have
      // advanced past before growing a new slab.
      epoch_mgr_->TryAdvance();
      Purge();
    }
    if (!free_list_.empty()) {
      const uint32_t s = free_list_.back();
      free_list_.pop_back();
      ++stats_.allocs;
      ++stats_.live_blocks;
      *slot = s;
      return Decode(s);
    }
    return arena_mode_ ? AllocBump(slot) : AllocHeap(slot);
  }

  // Returns a block to the pool's free list (arena mode) or the heap.
  // With deferred reclamation the slot is quarantined under the current
  // epoch first and only re-enters the free list after every in-flight
  // reader has advanced past it.
  void Free(void* block, uint32_t slot) {
    ++stats_.frees;
    --stats_.live_blocks;
    if (arena_mode_) {
      if (epoch_mgr_ != nullptr) {
        const uint64_t e = epoch_mgr_->current();
        if (quarantine_.empty() || quarantine_.back().epoch != e ||
            quarantine_.back().discard) {
          quarantine_.push_back(QuarantineBucket{e, false, {}});
        }
        quarantine_.back().slots.push_back(slot);
        ++deferred_block_count_;
        epoch_mgr_->NoteDeferredBlocks(1);
        if ((++purge_tick_ & 63u) == 0) {
          epoch_mgr_->TryAdvance();
          Purge();
        }
      } else {
        free_list_.push_back(slot);
      }
    } else {
      internal::ReleaseSlab(block, block_bytes_);
      slabs_[slot] = nullptr;
      free_heap_slots_.push_back(slot);
    }
  }

  // Decodes a slot to its block address. Hot path of every descent.
  // Slab indices are logical: under deferred reclamation they grow
  // monotonically across Reset() cycles (slab_index_base_), so a stale
  // pre-Reset ref can never alias a post-Reset slab.
  void* Decode(uint32_t slot) const {
    return slabs_[(slot >> slot_bits_) - slab_index_base_] +
           static_cast<size_t>(slot & slot_mask_) * block_bytes_;
  }
  const void* DecodeConst(uint32_t slot) const { return Decode(slot); }

  // Slab index a slot's block lives in (trace attribution, obs/trace.h).
  // In heap mode every block is its own single-block "slab".
  size_t SlabOfSlot(uint32_t slot) const { return slot >> slot_bits_; }

  // Releases every slab at once — O(slabs), not O(blocks). All
  // outstanding blocks and slots are invalidated; no per-block work is
  // done in arena mode (the counter contract the teardown tests assert).
  // Under deferred reclamation the slabs are quarantined rather than
  // released: a reader mid-descent either validates against a node it
  // already reached (the pre-Reset snapshot stays mapped) or fails the
  // zeroed slab-table lookup and restarts against the new structure.
  void Reset() {
    ++stats_.resets;
    if (arena_mode_ && epoch_mgr_ != nullptr) {
      // Park every slab in the quarantine with its logical table index.
      // The table entries stay populated until purge: a reader that
      // pinned before this Reset keeps decoding a fully intact
      // pre-Reset snapshot (its result linearizes before the Clear).
      // New slabs take fresh logical indices (slab_index_base_ bump
      // below), so no post-Reset ref ever collides with a parked entry.
      const uint64_t e = epoch_mgr_->current();
      for (size_t i = 0; i < slabs_.size(); ++i) {
        quarantined_slabs_.push_back(
            QuarantinedSlab{e, slabs_[i], slab_blocks_[i] * block_bytes_,
                            slab_index_base_ + i});
      }
      epoch_mgr_->NoteDeferredSlabs(static_cast<int64_t>(slabs_.size()));
      slab_index_base_ += slabs_.size();
      // Slots already quarantined point into the slabs parked above;
      // they must never re-enter the free list.
      for (auto& bucket : quarantine_) bucket.discard = true;
    } else {
      ReleaseAll();
    }
    slabs_.clear();
    slab_blocks_.clear();
    free_list_.clear();
    free_heap_slots_.clear();
    bump_ = 0;
    stats_.live_blocks = 0;
    if (arena_mode_) {
      next_slab_blocks_ =
          std::min(blocks_per_slab_,
                   std::max<size_t>(kMinBlocksFirstSlab,
                                    size_t{4096} / block_bytes_));
    }
    if (epoch_mgr_ != nullptr) {
      epoch_mgr_->TryAdvance();
      Purge();
    }
  }

  ArenaStats Stats() const {
    ArenaStats s = stats_;
    s.arena_mode = arena_mode_;
    s.slab_count = slabs_.size();
    if (arena_mode_) {
      s.reserved_bytes = 0;
      for (const size_t blocks : slab_blocks_) {
        s.reserved_bytes += blocks * block_bytes_;
      }
      s.free_list_blocks = free_list_.size();
    } else {
      size_t live = 0;
      for (const char* p : slabs_) live += p != nullptr ? 1 : 0;
      s.reserved_bytes = live * block_bytes_;
      s.slab_count = live;
      s.free_list_blocks = 0;
    }
    s.used_bytes = s.live_blocks * block_bytes_;
    s.deferred_blocks = deferred_block_count_;
    s.deferred_slabs = quarantined_slabs_.size();
    return s;
  }

  // Drains every quarantine bucket all in-flight readers have advanced
  // past. Called from the writer side (Alloc/Free/Reset), which already
  // holds the shard's exclusive lock.
  void Purge() {
    if (epoch_mgr_ == nullptr ||
        (quarantine_.empty() && quarantined_slabs_.empty())) {
      return;
    }
    const uint64_t min_active = epoch_mgr_->MinActive();
    while (!quarantine_.empty() && quarantine_.front().epoch < min_active) {
      QuarantineBucket& bucket = quarantine_.front();
      deferred_block_count_ -= bucket.slots.size();
      epoch_mgr_->NoteDeferredBlocks(
          -static_cast<int64_t>(bucket.slots.size()));
      if (!bucket.discard) {
        free_list_.insert(free_list_.end(), bucket.slots.begin(),
                          bucket.slots.end());
      }
      quarantine_.pop_front();
    }
    while (!quarantined_slabs_.empty() &&
           quarantined_slabs_.front().epoch < min_active) {
      const QuarantinedSlab& slab = quarantined_slabs_.front();
      // Unpublish before releasing: any reader that could still decode
      // into this slab pinned at or before the quarantine epoch, and
      // min_active says no such reader remains.
      if (slab.table_index < opt_table_size_) {
        opt_table_[slab.table_index].base.store(nullptr,
                                                std::memory_order_release);
        opt_table_[slab.table_index].blocks.store(
            0, std::memory_order_relaxed);
      }
      internal::ReleaseSlab(slab.base, slab.bytes);
      epoch_mgr_->NoteDeferredSlabs(-1);
      quarantined_slabs_.pop_front();
    }
  }

 private:
  struct SlabTableEntry {
    std::atomic<char*> base;
    std::atomic<uint64_t> blocks;
  };
  static_assert(std::atomic<char*>::is_always_lock_free);
  static_assert(sizeof(SlabTableEntry) == 16);

  struct QuarantineBucket {
    uint64_t epoch = 0;
    bool discard = false;  // slots predate a Reset; slab memory is
                           // tracked in quarantined_slabs_ instead
    std::vector<uint32_t> slots;
  };

  struct QuarantinedSlab {
    uint64_t epoch = 0;
    char* base = nullptr;
    size_t bytes = 0;
    size_t table_index = 0;  // logical slab index (opt_table_ entry)
  };

  void* AllocBump(uint32_t* slot) {
    if (slabs_.empty() || bump_ == slab_blocks_.back()) {
      // Next slab: geometric growth up to the full slab size, and a
      // slot-space check before committing.
      const size_t slab_index = slab_index_base_ + slabs_.size();
      const uint64_t base_slot = static_cast<uint64_t>(slab_index)
                                 << slot_bits_;
      const uint64_t slot_cap = uint64_t{1} << max_slot_bits_;
      if (base_slot >= slot_cap) {
        return nullptr;  // 32-bit (or capped) ref space exhausted
      }
      // A slab never spans more slots than the cap leaves: shrink the
      // last encodable slab instead of failing with space still free.
      const size_t blocks = static_cast<size_t>(
          std::min<uint64_t>(next_slab_blocks_, slot_cap - base_slot));
      slabs_.push_back(static_cast<char*>(
          internal::AllocateSlab(blocks * block_bytes_)));
      slab_blocks_.push_back(blocks);
      if (opt_table_ != nullptr && slab_index < opt_table_size_) {
        // Publish the slab for optimistic decoders: block count first
        // (relaxed), then the base with release so a reader that sees
        // the base also sees a usable count.
        opt_table_[slab_index].blocks.store(blocks,
                                            std::memory_order_relaxed);
        opt_table_[slab_index].base.store(slabs_.back(),
                                          std::memory_order_release);
      }
      bump_ = 0;
      next_slab_blocks_ = std::min(blocks_per_slab_, blocks * 4);
    }
    const uint32_t s = static_cast<uint32_t>(
        ((slab_index_base_ + slabs_.size() - 1) << slot_bits_) | bump_);
    ++bump_;
    ++stats_.allocs;
    ++stats_.live_blocks;
    *slot = s;
    return Decode(s);
  }

  void* AllocHeap(uint32_t* slot) {
    uint32_t s;
    if (!free_heap_slots_.empty()) {
      s = free_heap_slots_.back();
      free_heap_slots_.pop_back();
    } else {
      if (slabs_.size() >= (uint64_t{1} << max_slot_bits_)) {
        return nullptr;
      }
      s = static_cast<uint32_t>(slabs_.size());
      slabs_.push_back(nullptr);
    }
    slabs_[s] = static_cast<char*>(internal::AllocateSlab(block_bytes_));
    ++stats_.allocs;
    ++stats_.live_blocks;
    *slot = s;
    return slabs_[s];
  }

  void ReleaseAll() {
    if (arena_mode_) {
      for (size_t i = 0; i < slabs_.size(); ++i) {
        internal::ReleaseSlab(slabs_[i], slab_blocks_[i] * block_bytes_);
      }
    } else {
      for (char* p : slabs_) {
        if (p != nullptr) internal::ReleaseSlab(p, block_bytes_);
      }
    }
  }

  // Full teardown (destructor / move-assign target). Destroying a pool
  // with readers still in flight is a caller contract violation — same
  // as destroying the tree itself — so the quarantine is drained
  // unconditionally here.
  void Teardown() {
    ReleaseAll();
    for (const QuarantinedSlab& slab : quarantined_slabs_) {
      internal::ReleaseSlab(slab.base, slab.bytes);
    }
    if (epoch_mgr_ != nullptr) {
      epoch_mgr_->NoteDeferredSlabs(
          -static_cast<int64_t>(quarantined_slabs_.size()));
      epoch_mgr_->NoteDeferredBlocks(
          -static_cast<int64_t>(deferred_block_count_));
    }
    quarantined_slabs_.clear();
    quarantine_.clear();
    deferred_block_count_ = 0;
    if (opt_table_ != nullptr) {
      std::free(opt_table_);
      opt_table_ = nullptr;
      opt_table_size_ = 0;
    }
    epoch_mgr_ = nullptr;
  }

  bool arena_mode_ = true;
  size_t block_bytes_ = 0;
  size_t slab_bytes_ = kDefaultSlabBytes;
  uint32_t max_slot_bits_ = kMaxSlotBits;
  size_t blocks_per_slab_ = 1;   // full-size slab capacity (arena mode)
  uint32_t slot_bits_ = 0;
  uint32_t slot_mask_ = 0;
  size_t next_slab_blocks_ = 0;  // geometric growth schedule
  std::vector<char*> slabs_;     // heap mode: one entry per block
  std::vector<size_t> slab_blocks_;
  size_t bump_ = 0;              // next block index in the last slab
  std::vector<uint32_t> free_list_;
  std::vector<uint32_t> free_heap_slots_;
  ArenaStats stats_;

  // Epoch-deferred reclamation state (all writer-side except the
  // reader-facing opt_table_). Null/empty until
  // EnableDeferredReclamation().
  olc::EpochManager* epoch_mgr_ = nullptr;
  SlabTableEntry* opt_table_ = nullptr;
  size_t opt_table_size_ = 0;
  std::deque<QuarantineBucket> quarantine_;
  std::deque<QuarantinedSlab> quarantined_slabs_;
  size_t deferred_block_count_ = 0;
  uint32_t purge_tick_ = 0;
  size_t slab_index_base_ = 0;  // logical index of slabs_[0]
};

// --- ByteArena --------------------------------------------------------------

// Variable-size arena for the trie's compact nodes: bump allocation from
// geometrically growing slabs with power-of-two size-class free lists
// (compact blocks grow by doubling, so freed blocks requeue exactly).
// Reset() releases all slabs in O(slabs) — the trie's Clear()/teardown.
//
// Heap mode (SIMDTREE_DISABLE_ARENA=1) forwards to aligned new/delete
// and only keeps the counters.
class ByteArena {
 public:
  static constexpr size_t kMinClassBytes = 16;  // free-list link lives here
  static constexpr size_t kNumClasses = 48;

  explicit ByteArena(size_t slab_bytes = kDefaultSlabBytes)
      : arena_mode_(ArenaEnabled()),
        slab_bytes_(std::max(slab_bytes, size_t{4096})),
        next_slab_bytes_(std::min(slab_bytes_, size_t{16} << 10)) {}

  ~ByteArena() { ReleaseAll(); }

  ByteArena(ByteArena&& other) noexcept { *this = std::move(other); }
  ByteArena& operator=(ByteArena&& other) noexcept {
    if (this != &other) {
      ReleaseAll();
      arena_mode_ = other.arena_mode_;
      slab_bytes_ = other.slab_bytes_;
      next_slab_bytes_ = other.next_slab_bytes_;
      slabs_ = std::move(other.slabs_);
      slab_sizes_ = std::move(other.slab_sizes_);
      bump_ = other.bump_;
      bump_end_ = other.bump_end_;
      for (size_t i = 0; i < kNumClasses; ++i) {
        free_lists_[i] = other.free_lists_[i];
        other.free_lists_[i] = nullptr;
      }
      stats_ = other.stats_;
      other.slabs_.clear();
      other.slab_sizes_.clear();
      other.bump_ = other.bump_end_ = nullptr;
      other.stats_ = {};
    }
    return *this;
  }
  ByteArena(const ByteArena&) = delete;
  ByteArena& operator=(const ByteArena&) = delete;

  bool arena_mode() const { return arena_mode_; }

  // Allocates `bytes` with at least `align` alignment (power of two,
  // <= kCacheLine honored by slab placement; larger alignments fall
  // back to a dedicated slab).
  void* Alloc(size_t bytes, size_t align) {
    // The slab path guarantees min(size-class, cache line) alignment;
    // larger requirements would need dedicated placement we don't have a
    // client for.
    assert(align <= kCacheLine && align <= SizeClassBytes(bytes));
    ++stats_.allocs;
    if (!arena_mode_) {
      stats_.used_bytes += SizeClassBytes(bytes);
      ++stats_.live_blocks;
      return ::operator new(bytes, std::align_val_t{align});
    }
    const size_t cls = SizeClass(bytes);
    const size_t cls_bytes = size_t{1} << cls;
    stats_.used_bytes += cls_bytes;
    ++stats_.live_blocks;
    if (free_lists_[cls] != nullptr) {
      void* p = free_lists_[cls];
      free_lists_[cls] = *static_cast<void**>(p);
      --stats_.free_list_blocks;
      return p;
    }
    if (align > kCacheLine || cls_bytes > slab_bytes_) {
      // Oversized/over-aligned: dedicated slab, still arena-owned so
      // Reset() reclaims it.
      char* p = static_cast<char*>(internal::AllocateSlab(cls_bytes));
      slabs_.push_back(p);
      slab_sizes_.push_back(cls_bytes);
      return p;
    }
    char* at = AlignedBump(cls_bytes);
    if (at == nullptr) {
      NewSlab(cls_bytes);
      at = AlignedBump(cls_bytes);
    }
    return at;
  }

  // Returns a block for reuse. `bytes` must be the size passed to the
  // matching Alloc (compact nodes recompute it from their header).
  void Free(void* p, size_t bytes, size_t align) {
    ++stats_.frees;
    if (!arena_mode_) {
      stats_.used_bytes -= SizeClassBytes(bytes);
      --stats_.live_blocks;
      ::operator delete(p, std::align_val_t{align});
      return;
    }
    const size_t cls = SizeClass(bytes);
    stats_.used_bytes -= size_t{1} << cls;
    --stats_.live_blocks;
    *static_cast<void**>(p) = free_lists_[cls];
    free_lists_[cls] = p;
    ++stats_.free_list_blocks;
  }

  // Releases every slab in O(slabs); all blocks are invalidated. In heap
  // mode there is nothing to release wholesale (the owner must have
  // freed its blocks individually) — only the counters reset.
  void Reset() {
    ++stats_.resets;
    if (arena_mode_) {
      ReleaseAll();
      slabs_.clear();
      slab_sizes_.clear();
      bump_ = bump_end_ = nullptr;
      for (auto& head : free_lists_) head = nullptr;
      next_slab_bytes_ = std::min(slab_bytes_, size_t{16} << 10);
      stats_.live_blocks = 0;
      stats_.used_bytes = 0;
      stats_.free_list_blocks = 0;
    }
  }

  ArenaStats Stats() const {
    ArenaStats s = stats_;
    s.arena_mode = arena_mode_;
    s.slab_count = slabs_.size();
    size_t reserved = 0;
    for (const size_t b : slab_sizes_) reserved += b;
    s.reserved_bytes = arena_mode_ ? reserved : stats_.used_bytes;
    return s;
  }

 private:
  static size_t SizeClass(size_t bytes) {
    const size_t b = bytes < kMinClassBytes ? kMinClassBytes : bytes;
    return static_cast<size_t>(std::bit_width(b - 1));
  }
  static size_t SizeClassBytes(size_t bytes) {
    return size_t{1} << SizeClass(bytes);
  }

  char* AlignedBump(size_t cls_bytes) {
    if (bump_ == nullptr) return nullptr;
    // Size classes are powers of two >= 16; bumping in class-size units
    // from a cache-line-aligned base keeps every block aligned to
    // min(cls_bytes, kCacheLine).
    char* at = bump_;
    if (at + cls_bytes > bump_end_) return nullptr;
    bump_ = at + cls_bytes;
    return at;
  }

  void NewSlab(size_t min_bytes) {
    size_t bytes = next_slab_bytes_;
    while (bytes < min_bytes) bytes *= 2;
    bytes = std::min(std::max(bytes, min_bytes), std::max(slab_bytes_, min_bytes));
    char* p = static_cast<char*>(internal::AllocateSlab(bytes));
    slabs_.push_back(p);
    slab_sizes_.push_back(bytes);
    bump_ = p;
    bump_end_ = p + bytes;
    next_slab_bytes_ = std::min(slab_bytes_, bytes * 4);
  }

  void ReleaseAll() {
    if (!arena_mode_) return;
    for (size_t i = 0; i < slabs_.size(); ++i) {
      internal::ReleaseSlab(slabs_[i], slab_sizes_[i]);
    }
  }

  bool arena_mode_ = true;
  size_t slab_bytes_;
  size_t next_slab_bytes_;
  std::vector<char*> slabs_;
  std::vector<size_t> slab_sizes_;
  char* bump_ = nullptr;
  char* bump_end_ = nullptr;
  void* free_lists_[kNumClasses] = {};
  ArenaStats stats_;
};

}  // namespace simdtree::mem

#endif  // SIMDTREE_MEM_ARENA_H_
