file(REMOVE_RECURSE
  "CMakeFiles/tuple_id_index.dir/tuple_id_index.cpp.o"
  "CMakeFiles/tuple_id_index.dir/tuple_id_index.cpp.o.d"
  "tuple_id_index"
  "tuple_id_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_id_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
