# Empty compiler generated dependencies file for tuple_id_index.
# This may be replaced when dependencies are built.
