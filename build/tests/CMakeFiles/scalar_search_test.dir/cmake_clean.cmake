file(REMOVE_RECURSE
  "CMakeFiles/scalar_search_test.dir/scalar_search_test.cc.o"
  "CMakeFiles/scalar_search_test.dir/scalar_search_test.cc.o.d"
  "scalar_search_test"
  "scalar_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
