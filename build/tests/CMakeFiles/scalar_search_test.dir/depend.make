# Empty dependencies file for scalar_search_test.
# This may be replaced when dependencies are built.
