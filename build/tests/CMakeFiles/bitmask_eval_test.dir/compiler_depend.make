# Empty compiler generated dependencies file for bitmask_eval_test.
# This may be replaced when dependencies are built.
