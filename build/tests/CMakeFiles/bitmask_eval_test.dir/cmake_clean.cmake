file(REMOVE_RECURSE
  "CMakeFiles/bitmask_eval_test.dir/bitmask_eval_test.cc.o"
  "CMakeFiles/bitmask_eval_test.dir/bitmask_eval_test.cc.o.d"
  "bitmask_eval_test"
  "bitmask_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitmask_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
