file(REMOVE_RECURSE
  "CMakeFiles/simd128_test.dir/simd128_test.cc.o"
  "CMakeFiles/simd128_test.dir/simd128_test.cc.o.d"
  "simd128_test"
  "simd128_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd128_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
