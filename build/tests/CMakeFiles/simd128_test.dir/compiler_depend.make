# Empty compiler generated dependencies file for simd128_test.
# This may be replaced when dependencies are built.
