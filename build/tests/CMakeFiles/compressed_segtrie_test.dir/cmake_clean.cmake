file(REMOVE_RECURSE
  "CMakeFiles/compressed_segtrie_test.dir/compressed_segtrie_test.cc.o"
  "CMakeFiles/compressed_segtrie_test.dir/compressed_segtrie_test.cc.o.d"
  "compressed_segtrie_test"
  "compressed_segtrie_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_segtrie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
