# Empty dependencies file for compressed_segtrie_test.
# This may be replaced when dependencies are built.
