file(REMOVE_RECURSE
  "CMakeFiles/key_codec_test.dir/key_codec_test.cc.o"
  "CMakeFiles/key_codec_test.dir/key_codec_test.cc.o.d"
  "key_codec_test"
  "key_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
