# Empty compiler generated dependencies file for key_codec_test.
# This may be replaced when dependencies are built.
