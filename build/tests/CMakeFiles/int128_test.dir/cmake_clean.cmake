file(REMOVE_RECURSE
  "CMakeFiles/int128_test.dir/int128_test.cc.o"
  "CMakeFiles/int128_test.dir/int128_test.cc.o.d"
  "int128_test"
  "int128_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/int128_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
