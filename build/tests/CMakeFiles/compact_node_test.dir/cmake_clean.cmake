file(REMOVE_RECURSE
  "CMakeFiles/compact_node_test.dir/compact_node_test.cc.o"
  "CMakeFiles/compact_node_test.dir/compact_node_test.cc.o.d"
  "compact_node_test"
  "compact_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compact_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
