# Empty dependencies file for simd256_test.
# This may be replaced when dependencies are built.
