file(REMOVE_RECURSE
  "CMakeFiles/simd256_test.dir/simd256_test.cc.o"
  "CMakeFiles/simd256_test.dir/simd256_test.cc.o.d"
  "simd256_test"
  "simd256_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd256_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
