file(REMOVE_RECURSE
  "CMakeFiles/kary_search_test.dir/kary_search_test.cc.o"
  "CMakeFiles/kary_search_test.dir/kary_search_test.cc.o.d"
  "kary_search_test"
  "kary_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kary_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
