# Empty compiler generated dependencies file for segtrie_range_test.
# This may be replaced when dependencies are built.
