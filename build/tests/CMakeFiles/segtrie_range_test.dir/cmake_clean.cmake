file(REMOVE_RECURSE
  "CMakeFiles/segtrie_range_test.dir/segtrie_range_test.cc.o"
  "CMakeFiles/segtrie_range_test.dir/segtrie_range_test.cc.o.d"
  "segtrie_range_test"
  "segtrie_range_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segtrie_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
