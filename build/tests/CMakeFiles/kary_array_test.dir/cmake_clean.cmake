file(REMOVE_RECURSE
  "CMakeFiles/kary_array_test.dir/kary_array_test.cc.o"
  "CMakeFiles/kary_array_test.dir/kary_array_test.cc.o.d"
  "kary_array_test"
  "kary_array_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kary_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
