# Empty compiler generated dependencies file for kary_array_test.
# This may be replaced when dependencies are built.
