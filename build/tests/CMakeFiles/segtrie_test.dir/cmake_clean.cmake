file(REMOVE_RECURSE
  "CMakeFiles/segtrie_test.dir/segtrie_test.cc.o"
  "CMakeFiles/segtrie_test.dir/segtrie_test.cc.o.d"
  "segtrie_test"
  "segtrie_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segtrie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
