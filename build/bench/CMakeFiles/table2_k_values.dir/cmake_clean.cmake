file(REMOVE_RECURSE
  "CMakeFiles/table2_k_values.dir/table2_k_values.cc.o"
  "CMakeFiles/table2_k_values.dir/table2_k_values.cc.o.d"
  "table2_k_values"
  "table2_k_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_k_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
