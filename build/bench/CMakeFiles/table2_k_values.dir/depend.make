# Empty dependencies file for table2_k_values.
# This may be replaced when dependencies are built.
