# Empty dependencies file for mem_footprint.
# This may be replaced when dependencies are built.
