file(REMOVE_RECURSE
  "CMakeFiles/mem_footprint.dir/mem_footprint.cc.o"
  "CMakeFiles/mem_footprint.dir/mem_footprint.cc.o.d"
  "mem_footprint"
  "mem_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
