file(REMOVE_RECURSE
  "CMakeFiles/ablation_insert_reorder.dir/ablation_insert_reorder.cc.o"
  "CMakeFiles/ablation_insert_reorder.dir/ablation_insert_reorder.cc.o.d"
  "ablation_insert_reorder"
  "ablation_insert_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_insert_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
