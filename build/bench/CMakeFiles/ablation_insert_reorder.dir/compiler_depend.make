# Empty compiler generated dependencies file for ablation_insert_reorder.
# This may be replaced when dependencies are built.
