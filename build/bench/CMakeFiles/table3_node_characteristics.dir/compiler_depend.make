# Empty compiler generated dependencies file for table3_node_characteristics.
# This may be replaced when dependencies are built.
