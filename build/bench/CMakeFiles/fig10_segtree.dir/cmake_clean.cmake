file(REMOVE_RECURSE
  "CMakeFiles/fig10_segtree.dir/fig10_segtree.cc.o"
  "CMakeFiles/fig10_segtree.dir/fig10_segtree.cc.o.d"
  "fig10_segtree"
  "fig10_segtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_segtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
