# Empty dependencies file for fig10_segtree.
# This may be replaced when dependencies are built.
