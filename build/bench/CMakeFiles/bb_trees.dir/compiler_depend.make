# Empty compiler generated dependencies file for bb_trees.
# This may be replaced when dependencies are built.
