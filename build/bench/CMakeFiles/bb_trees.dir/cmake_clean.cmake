file(REMOVE_RECURSE
  "CMakeFiles/bb_trees.dir/bb_trees.cc.o"
  "CMakeFiles/bb_trees.dir/bb_trees.cc.o.d"
  "bb_trees"
  "bb_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
