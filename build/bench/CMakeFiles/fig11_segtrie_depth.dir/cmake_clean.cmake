file(REMOVE_RECURSE
  "CMakeFiles/fig11_segtrie_depth.dir/fig11_segtrie_depth.cc.o"
  "CMakeFiles/fig11_segtrie_depth.dir/fig11_segtrie_depth.cc.o.d"
  "fig11_segtrie_depth"
  "fig11_segtrie_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_segtrie_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
