# Empty compiler generated dependencies file for fig11_segtrie_depth.
# This may be replaced when dependencies are built.
