# Empty dependencies file for bb_kary_search.
# This may be replaced when dependencies are built.
