file(REMOVE_RECURSE
  "CMakeFiles/bb_kary_search.dir/bb_kary_search.cc.o"
  "CMakeFiles/bb_kary_search.dir/bb_kary_search.cc.o.d"
  "bb_kary_search"
  "bb_kary_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_kary_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
