# Empty dependencies file for ablation_equality.
# This may be replaced when dependencies are built.
