file(REMOVE_RECURSE
  "CMakeFiles/ablation_equality.dir/ablation_equality.cc.o"
  "CMakeFiles/ablation_equality.dir/ablation_equality.cc.o.d"
  "ablation_equality"
  "ablation_equality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_equality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
