file(REMOVE_RECURSE
  "CMakeFiles/fig09_bitmask_eval.dir/fig09_bitmask_eval.cc.o"
  "CMakeFiles/fig09_bitmask_eval.dir/fig09_bitmask_eval.cc.o.d"
  "fig09_bitmask_eval"
  "fig09_bitmask_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_bitmask_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
