# Empty compiler generated dependencies file for fig09_bitmask_eval.
# This may be replaced when dependencies are built.
