file(REMOVE_RECURSE
  "CMakeFiles/ablation_path_compression.dir/ablation_path_compression.cc.o"
  "CMakeFiles/ablation_path_compression.dir/ablation_path_compression.cc.o.d"
  "ablation_path_compression"
  "ablation_path_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_path_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
