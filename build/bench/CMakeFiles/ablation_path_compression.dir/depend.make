# Empty dependencies file for ablation_path_compression.
# This may be replaced when dependencies are built.
