file(REMOVE_RECURSE
  "CMakeFiles/ablation_simd_width.dir/ablation_simd_width.cc.o"
  "CMakeFiles/ablation_simd_width.dir/ablation_simd_width.cc.o.d"
  "ablation_simd_width"
  "ablation_simd_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_simd_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
