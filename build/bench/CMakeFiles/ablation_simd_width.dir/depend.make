# Empty dependencies file for ablation_simd_width.
# This may be replaced when dependencies are built.
