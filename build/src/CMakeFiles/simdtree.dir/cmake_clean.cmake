file(REMOVE_RECURSE
  "CMakeFiles/simdtree.dir/kary/linearize.cc.o"
  "CMakeFiles/simdtree.dir/kary/linearize.cc.o.d"
  "CMakeFiles/simdtree.dir/simd/cpu_features.cc.o"
  "CMakeFiles/simdtree.dir/simd/cpu_features.cc.o.d"
  "CMakeFiles/simdtree.dir/util/cycle_timer.cc.o"
  "CMakeFiles/simdtree.dir/util/cycle_timer.cc.o.d"
  "CMakeFiles/simdtree.dir/util/stats.cc.o"
  "CMakeFiles/simdtree.dir/util/stats.cc.o.d"
  "CMakeFiles/simdtree.dir/util/table_printer.cc.o"
  "CMakeFiles/simdtree.dir/util/table_printer.cc.o.d"
  "CMakeFiles/simdtree.dir/util/workload.cc.o"
  "CMakeFiles/simdtree.dir/util/workload.cc.o.d"
  "libsimdtree.a"
  "libsimdtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
