file(REMOVE_RECURSE
  "libsimdtree.a"
)
