# Empty compiler generated dependencies file for simdtree.
# This may be replaced when dependencies are built.
