
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kary/linearize.cc" "src/CMakeFiles/simdtree.dir/kary/linearize.cc.o" "gcc" "src/CMakeFiles/simdtree.dir/kary/linearize.cc.o.d"
  "/root/repo/src/simd/cpu_features.cc" "src/CMakeFiles/simdtree.dir/simd/cpu_features.cc.o" "gcc" "src/CMakeFiles/simdtree.dir/simd/cpu_features.cc.o.d"
  "/root/repo/src/util/cycle_timer.cc" "src/CMakeFiles/simdtree.dir/util/cycle_timer.cc.o" "gcc" "src/CMakeFiles/simdtree.dir/util/cycle_timer.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/simdtree.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/simdtree.dir/util/stats.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/simdtree.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/simdtree.dir/util/table_printer.cc.o.d"
  "/root/repo/src/util/workload.cc" "src/CMakeFiles/simdtree.dir/util/workload.cc.o" "gcc" "src/CMakeFiles/simdtree.dir/util/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
