file(REMOVE_RECURSE
  "CMakeFiles/simdtree_cli.dir/simdtree_cli.cc.o"
  "CMakeFiles/simdtree_cli.dir/simdtree_cli.cc.o.d"
  "simdtree_cli"
  "simdtree_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdtree_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
