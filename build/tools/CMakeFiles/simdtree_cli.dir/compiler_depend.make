# Empty compiler generated dependencies file for simdtree_cli.
# This may be replaced when dependencies are built.
