// Ablation (paper Section 3.1): extending the k-ary search with an
// equality comparison per level so a hit can terminate above the lowest
// level. The paper argues the extra comparison and branch should not pay
// off on flat k-ary search trees; this bench verifies that expectation.

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "kary/kary_search.h"
#include "kary/linearize.h"
#include "util/table_printer.h"
#include "util/workload.h"

namespace simdtree {
namespace {

using Key = int32_t;
using bench::kProbeCount;

void Run() {
  bench::PrintBenchHeader(
      "Ablation: equality-termination extension of k-ary search (32-bit "
      "keys, breadth-first)");
  TablePrinter table({"keys", "levels", "standard cyc", "with-equality cyc",
                      "ratio"});
  Rng rng(5);
  for (int64_t n : {int64_t{16}, int64_t{256}, int64_t{4096}, int64_t{65536},
                    int64_t{1} << 20}) {
    std::vector<Key> sorted = UniformDistinctKeys<Key>(
        static_cast<size_t>(n), rng);
    const kary::KaryShape shape =
        kary::KaryShape::For(simd::LaneTraits<Key>::kArity, n);
    const kary::KaryLayout layout(shape, kary::Layout::kBreadthFirst);
    const int64_t stored = layout.StoredSlots(n, kary::Storage::kTruncated);
    std::vector<Key> lin(static_cast<size_t>(stored));
    layout.Linearize(sorted.data(), n, lin.data(), stored,
                     kary::PadValue<Key>());
    const std::vector<Key> probes =
        SamplePresentProbes(sorted, kProbeCount, rng);

    const double standard = bench::CyclesPerOp(probes, [&](Key v) {
      return kary::UpperBoundBf<Key>(lin.data(), stored, n, v);
    });
    const double with_eq = bench::CyclesPerOp(probes, [&](Key v) {
      return kary::UpperBoundBfWithEquality<Key>(lin.data(), shape, stored,
                                                 n, v);
    });
    table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(n)),
                  TablePrinter::Fmt(int64_t{shape.r}),
                  TablePrinter::Fmt(standard, 1),
                  TablePrinter::Fmt(with_eq, 1),
                  TablePrinter::Fmt(with_eq / standard, 2)});
    const std::string cfg = "n" + std::to_string(n);
    bench::EmitJson("ablation_equality", cfg + "/standard",
                    "cycles_per_search", standard);
    bench::EmitJson("ablation_equality", cfg + "/with_equality",
                    "cycles_per_search", with_eq);
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\npaper expectation (Section 3.1): no improvement for flat k-ary "
      "search trees —\nthe extra comparison and conditional branch per "
      "level costs more than the\noccasional early exit saves.\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  simdtree::Run();
  return 0;
}
