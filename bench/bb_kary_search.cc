// google-benchmark microbench: the in-node search kernels head-to-head on
// flat sorted arrays — SIMD k-ary search (BF and DF layouts) vs scalar
// binary and sequential search — across array sizes and key widths.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench/gbench_json.h"
#include "kary/kary_array.h"
#include "kary/scalar_search.h"
#include "util/rng.h"
#include "util/workload.h"

namespace simdtree {
namespace {

constexpr size_t kProbes = 4096;

template <typename T>
struct FlatData {
  std::vector<T> sorted;
  std::vector<T> probes;

  explicit FlatData(int64_t n) {
    Rng rng(77);
    sorted = UniformDistinctKeys<T>(static_cast<size_t>(n), rng);
    probes = SamplePresentProbes(sorted, kProbes, rng);
  }
};

template <typename T, kary::Layout L>
void BM_KarySearch(benchmark::State& state) {
  const FlatData<T> data(state.range(0));
  kary::KaryArray<T> arr(data.sorted, L);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arr.UpperBound(data.probes[i]));
    i = (i + 1) % data.probes.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

template <typename T>
void BM_BinarySearch(benchmark::State& state) {
  const FlatData<T> data(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kary::BinaryUpperBound(
        data.sorted.data(), static_cast<int64_t>(data.sorted.size()),
        data.probes[i]));
    i = (i + 1) % data.probes.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

template <typename T>
void BM_SequentialSearch(benchmark::State& state) {
  const FlatData<T> data(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kary::SequentialUpperBound(
        data.sorted.data(), static_cast<int64_t>(data.sorted.size()),
        data.probes[i]));
    i = (i + 1) % data.probes.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

#define SIZE_ARGS RangeMultiplier(4)->Range(16, 1 << 18)

BENCHMARK(BM_KarySearch<int8_t, kary::Layout::kBreadthFirst>)
    ->RangeMultiplier(4)
    ->Range(16, 200);  // 8-bit domain caps distinct keys
BENCHMARK(BM_KarySearch<int16_t, kary::Layout::kBreadthFirst>)->SIZE_ARGS;
BENCHMARK(BM_KarySearch<int32_t, kary::Layout::kBreadthFirst>)->SIZE_ARGS;
BENCHMARK(BM_KarySearch<int32_t, kary::Layout::kDepthFirst>)->SIZE_ARGS;
BENCHMARK(BM_KarySearch<int64_t, kary::Layout::kBreadthFirst>)->SIZE_ARGS;
BENCHMARK(BM_BinarySearch<int8_t>)->RangeMultiplier(4)->Range(16, 200);
BENCHMARK(BM_BinarySearch<int16_t>)->SIZE_ARGS;
BENCHMARK(BM_BinarySearch<int32_t>)->SIZE_ARGS;
BENCHMARK(BM_BinarySearch<int64_t>)->SIZE_ARGS;
BENCHMARK(BM_SequentialSearch<int32_t>)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  return simdtree::bench::GBenchMain(argc, argv, "bb_kary_search");
}
