// google-benchmark microbench: the in-node search kernels head-to-head on
// flat sorted arrays — SIMD k-ary search (BF and DF layouts) vs scalar
// binary and sequential search — across array sizes and key widths.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench/gbench_json.h"
#include "bench/hw_section.h"
#include "kary/kary_array.h"
#include "kary/scalar_search.h"
#include "util/rng.h"
#include "util/workload.h"

namespace simdtree {
namespace {

constexpr size_t kProbes = 4096;

template <typename T>
struct FlatData {
  std::vector<T> sorted;
  std::vector<T> probes;

  explicit FlatData(int64_t n) {
    Rng rng(77);
    sorted = UniformDistinctKeys<T>(static_cast<size_t>(n), rng);
    probes = SamplePresentProbes(sorted, kProbes, rng);
  }
};

template <typename T, kary::Layout L>
void BM_KarySearch(benchmark::State& state) {
  const FlatData<T> data(state.range(0));
  kary::KaryArray<T> arr(data.sorted, L);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arr.UpperBound(data.probes[i]));
    i = (i + 1) % data.probes.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

template <typename T>
void BM_BinarySearch(benchmark::State& state) {
  const FlatData<T> data(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kary::BinaryUpperBound(
        data.sorted.data(), static_cast<int64_t>(data.sorted.size()),
        data.probes[i]));
    i = (i + 1) % data.probes.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

template <typename T>
void BM_SequentialSearch(benchmark::State& state) {
  const FlatData<T> data(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kary::SequentialUpperBound(
        data.sorted.data(), static_cast<int64_t>(data.sorted.size()),
        data.probes[i]));
    i = (i + 1) % data.probes.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

#define SIZE_ARGS RangeMultiplier(4)->Range(16, 1 << 18)

BENCHMARK(BM_KarySearch<int8_t, kary::Layout::kBreadthFirst>)
    ->RangeMultiplier(4)
    ->Range(16, 200);  // 8-bit domain caps distinct keys
BENCHMARK(BM_KarySearch<int16_t, kary::Layout::kBreadthFirst>)->SIZE_ARGS;
BENCHMARK(BM_KarySearch<int32_t, kary::Layout::kBreadthFirst>)->SIZE_ARGS;
BENCHMARK(BM_KarySearch<int32_t, kary::Layout::kDepthFirst>)->SIZE_ARGS;
BENCHMARK(BM_KarySearch<int64_t, kary::Layout::kBreadthFirst>)->SIZE_ARGS;
BENCHMARK(BM_BinarySearch<int8_t>)->RangeMultiplier(4)->Range(16, 200);
BENCHMARK(BM_BinarySearch<int16_t>)->SIZE_ARGS;
BENCHMARK(BM_BinarySearch<int32_t>)->SIZE_ARGS;
BENCHMARK(BM_BinarySearch<int64_t>)->SIZE_ARGS;
BENCHMARK(BM_SequentialSearch<int32_t>)->RangeMultiplier(4)->Range(16, 1024);

// Hardware view of the headline comparison (paper Figures 9 and 11):
// k-ary SIMD search should retire fewer instructions and far fewer
// branch mispredictions per search than scalar binary search on the
// same array. Runs before the timed benchmarks; emits "hw":null lines
// when perf_event_open is unavailable.
void HwPhase() {
  constexpr int kPasses = 16;
  constexpr int64_t kN = 1 << 16;
  const FlatData<int32_t> data(kN);
  const double ops =
      static_cast<double>(data.probes.size()) * static_cast<double>(kPasses);

  kary::KaryArray<int32_t> arr(data.sorted, kary::Layout::kBreadthFirst);
  uint64_t sink = 0;
  bench::HwSection("bb_kary_search", "hw/kary_bf/int32/64K", ops, [&] {
    for (int pass = 0; pass < kPasses; ++pass) {
      for (int32_t p : data.probes) {
        sink += static_cast<uint64_t>(arr.UpperBound(p));
      }
    }
  });
  bench::HwSection("bb_kary_search", "hw/binary/int32/64K", ops, [&] {
    for (int pass = 0; pass < kPasses; ++pass) {
      for (int32_t p : data.probes) {
        sink += static_cast<uint64_t>(kary::BinaryUpperBound(
            data.sorted.data(), static_cast<int64_t>(data.sorted.size()), p));
      }
    }
  });
  if (sink == 0xDEADBEEFDEADBEEFULL) std::fprintf(stderr, "\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  simdtree::HwPhase();
  return simdtree::bench::GBenchMain(argc, argv, "bb_kary_search");
}
