// Shared support for the paper-reproduction bench binaries.
//
// Measurement follows paper Section 5.1: build the structure with
// completely filled nodes, then search x = 10,000 keys drawn in random
// order from the data set and report the average cycles per search
// (RDTSC). A warm-up pass touches the probed paths before timing.

#ifndef SIMDTREE_BENCH_BENCH_UTIL_H_
#define SIMDTREE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "mem/arena.h"
#include "simd/cpu_features.h"
#include "simd/dispatch.h"
#include "util/cycle_timer.h"
#include "util/rng.h"

namespace simdtree::bench {

// --- machine-readable output ---------------------------------------------
//
// Every bench binary accepts --json: in addition to the human-readable
// table, each measured point is emitted as one JSON line
//
//   {"bench":"fig10_segtree","config":"bf/popcount/5MB","metric":"cycles_per_lookup","value":123.4}
//
// so sweeps can be collected with `./bench --json | grep '^{'` without
// scraping the tables.

inline bool& JsonEnabled() {
  static bool enabled = false;
  return enabled;
}

// Call at the top of main. Recognizes --json (enables the JSON lines) and
// leaves every other argument alone; returns true if --json was seen.
inline bool ParseBenchArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) JsonEnabled() = true;
  }
  return JsonEnabled();
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// One-time machine-readable header, emitted before the first JSON data
// line of a --json run: the running CPU's full feature string
// (simd/cpu_features.h, including the AVX-512 subsets), whether the
// binary was built with the SIMDTREE_AVX2 backend, and the *runtime*
// dispatch decision (simd/dispatch.h) — backend name, its register
// width, whether SIMDTREE_FORCE_BACKEND pinned it, and which widths
// this binary carries native kernels for. Build flag and dispatch
// decision are deliberately separate fields: one binary produces
// different dispatch headers on different hosts (or under a force), and
// a collected sweep must say which kernels actually ran.
inline void EmitJsonHeader() {
  if (!JsonEnabled()) return;
  static bool emitted = false;
  if (emitted) return;
  emitted = true;
#if defined(SIMDTREE_AVX2)
  constexpr int kAvx2Build = 1;
#else
  constexpr int kAvx2Build = 0;
#endif
  const simd::DispatchDecision& d = simd::ActiveDispatch();
  std::printf(
      "{\"bench_header\":{\"cpu_features\":\"%s\",\"avx2_build\":%d,"
      "\"dispatch\":{\"backend\":\"%s\",\"register_bits\":%d,\"forced\":%d,"
      "\"native_128\":%d,\"native_256\":%d,\"native_512\":%d},"
      "\"tsc_ghz\":%.17g}}\n",
      JsonEscape(simd::CpuFeatureString()).c_str(), kAvx2Build,
      simd::DispatchLevelName(d.level), d.register_bits, d.forced ? 1 : 0,
      simd::NativeKernelsCompiled(128) ? 1 : 0,
      simd::NativeKernelsCompiled(256) ? 1 : 0,
      simd::NativeKernelsCompiled(512) ? 1 : 0,
      CycleTimer::CyclesPerSecond() / 1e9);
}

// One measurement point. No-op unless --json was passed.
inline void EmitJson(const std::string& bench, const std::string& config,
                     const std::string& metric, double value) {
  if (!JsonEnabled()) return;
  EmitJsonHeader();
  std::printf("{\"bench\":\"%s\",\"config\":\"%s\",\"metric\":\"%s\",\"value\":%.17g}\n",
              JsonEscape(bench).c_str(), JsonEscape(config).c_str(),
              JsonEscape(metric).c_str(), value);
}

// One arena-occupancy point (mem/arena.h) as a single JSON line with a
// `mem` object — the shape scripts/check_bench_json.py validates:
//
//   {"bench":"mem_footprint","config":"segtree/100MB",
//    "mem":{"arena_bytes":104857600,"utilization":0.93,"slab_count":50,
//           "arena_mode":1,"live_blocks":12345,"free_list_blocks":0}}
//
// No-op unless --json. Heap-mode stats (SIMDTREE_DISABLE_ARENA=1) emit
// arena_mode 0 with reserved == live bytes and one "slab" per block.
inline void EmitMemJson(const std::string& bench, const std::string& config,
                        const mem::ArenaStats& s) {
  if (!JsonEnabled()) return;
  EmitJsonHeader();
  std::printf(
      "{\"bench\":\"%s\",\"config\":\"%s\",\"mem\":{"
      "\"arena_bytes\":%zu,\"utilization\":%.17g,\"slab_count\":%zu,"
      "\"arena_mode\":%d,\"live_blocks\":%zu,\"free_list_blocks\":%zu}}\n",
      JsonEscape(bench).c_str(), JsonEscape(config).c_str(),
      s.reserved_bytes, s.utilization(), s.slab_count,
      s.arena_mode ? 1 : 0, s.live_blocks, s.free_list_blocks);
}

inline constexpr size_t kProbeCount = 10000;  // the paper's x

// The paper's data-set size categories (Section 5.2): one node, ~5 MB,
// ~100 MB. Sizes here are byte budgets for the whole tree.
struct SizeCategory {
  const char* name;
  size_t bytes;  // 0 = single node
};

inline constexpr SizeCategory kSingle{"Single", 0};
inline constexpr SizeCategory k5MB{"5MB", 5u * 1000 * 1000};
inline constexpr SizeCategory k100MB{"100MB", 100u * 1000 * 1000};

// Average cycles for one call of `fn(probe)` over all probes, after one
// untimed warm-up pass. The accumulated return values are folded into a
// sink to keep the optimizer honest; the sink is returned via *checksum.
template <typename T, typename Fn>
double CyclesPerOp(const std::vector<T>& probes, Fn&& fn,
                   uint64_t* checksum = nullptr) {
  uint64_t sink = 0;
  for (const T& p : probes) sink += static_cast<uint64_t>(fn(p));
  const uint64_t start = CycleTimer::Now();
  for (const T& p : probes) sink += static_cast<uint64_t>(fn(p));
  const uint64_t cycles = CycleTimer::Now() - start;
  if (checksum != nullptr) *checksum = sink;
  // Defeat dead-code elimination without perturbing the timing.
  if (sink == 0xDEADBEEFDEADBEEFULL) std::fprintf(stderr, "\n");
  return static_cast<double>(cycles) / static_cast<double>(probes.size());
}

inline void PrintBenchHeader(const char* title) {
  std::printf("== %s ==\n", title);
  std::printf("cpu features: %s | tsc: %.2f GHz | probes per point: %zu\n\n",
              simd::CpuFeatureString().c_str(),
              CycleTimer::CyclesPerSecond() / 1e9, kProbeCount);
}

}  // namespace simdtree::bench

#endif  // SIMDTREE_BENCH_BENCH_UTIL_H_
