// Regenerates paper Table 3: node characteristics of the Seg-Tree
// configurations for 8/16/32/64-bit keys.
//
// Columns: k, N_L (keys per node), N_S (materialized linearized slots),
// r (k-ary levels per node), N = k^r, node size in bytes, cache lines.
//
// Deviation (DESIGN.md): the paper's N_S column rounds N_L up to a
// multiple of k-1, which is not a searchable breadth-first prefix under
// the perfect-tree permutation; our truncated storage keeps the prefix up
// to the last node holding a real key. Both values are printed.

#include <cstdint>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "kary/linearize.h"
#include "simd/simd128.h"
#include "util/table_printer.h"

namespace simdtree {
namespace {

struct PaperRow {
  const char* name;
  int64_t n_l;
  int64_t paper_n_s;
  int64_t paper_node_size;
  int paper_cache_lines;
};

template <typename T>
void AddRow(TablePrinter* table, const PaperRow& row) {
  using Traits = simd::LaneTraits<T>;
  const kary::KaryShape shape = kary::KaryShape::For(Traits::kArity, row.n_l);
  const kary::KaryLayout layout(shape, kary::Layout::kBreadthFirst);
  const int64_t n_s = layout.StoredSlots(row.n_l, kary::Storage::kTruncated);
  // Node size = pointers + linearized keys (paper Section 5.1):
  // (N_L + 1) * sizeof(void*) + N_S * sizeof(key).
  const int64_t node_size =
      (row.n_l + 1) * 8 + n_s * static_cast<int64_t>(sizeof(T));
  // Cache lines to touch every key of one node. The paper's machine had
  // 128-byte lines; we also print 64-byte lines for today's common case.
  const int64_t lines128 =
      (n_s * static_cast<int64_t>(sizeof(T)) + 127) / 128;
  const int64_t lines64 = (n_s * static_cast<int64_t>(sizeof(T)) + 63) / 64;
  table->AddRow({row.name, TablePrinter::Fmt(int64_t{Traits::kArity}),
                 TablePrinter::Fmt(row.n_l), TablePrinter::Fmt(n_s),
                 TablePrinter::Fmt(row.paper_n_s),
                 TablePrinter::Fmt(int64_t{shape.r}),
                 TablePrinter::Fmt(shape.slots + 1),
                 TablePrinter::Fmt(node_size),
                 TablePrinter::Fmt(row.paper_node_size),
                 TablePrinter::Fmt(lines128), TablePrinter::Fmt(lines64)});
  const std::string cfg(row.name);
  bench::EmitJson("table3_node_characteristics", cfg + "/n_s", "slots",
                  static_cast<double>(n_s));
  bench::EmitJson("table3_node_characteristics", cfg + "/node_size",
                  "bytes", static_cast<double>(node_size));
}

// Node shape at a wider register width (the Section 7 extension): same
// N_L, but k = lanes + 1 of the given width, so fewer k-ary levels fit
// per node and the materialized prefix changes.
template <typename T, int kBits>
void AddWidthRow(TablePrinter* table, const char* name, int64_t n_l) {
  using Traits = simd::LaneTraits<T, kBits>;
  const kary::KaryShape shape = kary::KaryShape::For(Traits::kArity, n_l);
  const kary::KaryLayout layout(shape, kary::Layout::kBreadthFirst);
  const int64_t n_s = layout.StoredSlots(n_l, kary::Storage::kTruncated);
  const int64_t node_size =
      (n_l + 1) * 8 + n_s * static_cast<int64_t>(sizeof(T));
  table->AddRow({name, TablePrinter::Fmt(int64_t{kBits}),
                 TablePrinter::Fmt(int64_t{Traits::kArity}),
                 TablePrinter::Fmt(n_l), TablePrinter::Fmt(n_s),
                 TablePrinter::Fmt(int64_t{shape.r}),
                 TablePrinter::Fmt(shape.slots + 1),
                 TablePrinter::Fmt(node_size)});
  const std::string cfg =
      std::string(name) + "/" + std::to_string(kBits);
  bench::EmitJson("table3_node_characteristics", cfg + "/k", "k",
                  static_cast<double>(Traits::kArity));
  bench::EmitJson("table3_node_characteristics", cfg + "/r", "levels",
                  static_cast<double>(shape.r));
  bench::EmitJson("table3_node_characteristics", cfg + "/n_s", "slots",
                  static_cast<double>(n_s));
}

template <typename T>
void AddWidthRows(TablePrinter* table, const char* name, int64_t n_l) {
  AddWidthRow<T, 128>(table, name, n_l);
  AddWidthRow<T, 256>(table, name, n_l);
  AddWidthRow<T, 512>(table, name, n_l);
}

void Run() {
  bench::PrintBenchHeader("Table 3: node characteristics");
  TablePrinter table({"Data type", "k", "N_L", "N_S", "N_S(paper)", "r", "N",
                      "node B", "node B(paper)", "lines@128B",
                      "lines@64B"});
  AddRow<int8_t>(&table, {"8-bit", 254, 256, 2296, 2});
  AddRow<int16_t>(&table, {"16-bit", 404, 408, 4056, 7});
  AddRow<int32_t>(&table, {"32-bit", 338, 344, 4096, 11});
  AddRow<int64_t>(&table, {"64-bit", 242, 242, 3880, 16});
  table.Print();

  std::printf("\nnode shape vs register width (same N_L; k = lanes + 1):\n");
  TablePrinter width_table(
      {"Data type", "bits", "k", "N_L", "N_S", "r", "N", "node B"});
  AddWidthRows<int8_t>(&width_table, "8-bit", 254);
  AddWidthRows<int16_t>(&width_table, "16-bit", 404);
  AddWidthRows<int32_t>(&width_table, "32-bit", 338);
  AddWidthRows<int64_t>(&width_table, "64-bit", 242);
  width_table.Print();
  std::printf(
      "\npaper Table 3: N_S = 256/408/344/242; node size = "
      "2296/4056/4096/3880 B; cache lines = 2/7/11/16 (128 B lines).\n"
      "8- and 64-bit rows match exactly; 16-/32-bit N_S differs because\n"
      "the paper rounds N_L up to a multiple of k-1 (not a searchable\n"
      "breadth-first prefix; its 32-bit row is also internally\n"
      "inconsistent: 339*8 + 344*4 = 4088 != 4096). See DESIGN.md.\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  simdtree::Run();
  return 0;
}
