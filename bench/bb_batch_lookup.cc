// Batched vs single-query point lookups across the index structures —
// the throughput case for the group software-pipelined FindBatch /
// UpperBoundBatch subsystem (src/btree/batch_descent.h,
// src/kary/batch_search.h, SegTrie::FindBatch).
//
// A single root-to-leaf descent serializes one cache miss per level; with
// the index out of LLC, the lookup is almost entirely memory stalls
// (paper Section 5.4). Batching G independent queries per level overlaps
// those misses in the line fill buffers, so throughput should rise with G
// until the fill buffers (10-16 on current x86) saturate. The sweep
// crosses structure x index size x pipeline group width and reports
// cycles per lookup and lookups per second against the single-query
// baseline of the same structure.
//
// The effect to look for: ~1x at cache-resident sizes (nothing to
// overlap), growing to well over 1.5x once the index leaves the LLC.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/hw_section.h"
#include "btree/btree.h"
#include "kary/kary_array.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "util/cycle_timer.h"
#include "util/table_printer.h"
#include "util/workload.h"

namespace simdtree {
namespace {

using Key = uint32_t;
using Value = uint64_t;

constexpr size_t kProbes = 40000;  // 4x the paper's x, smoother at high G
constexpr int kGroups[] = {2, 4, 8, 12, 16};

// Total cycles of run() per probe, after one untimed warm-up pass.
template <typename Fn>
double CyclesPerLookup(size_t probes, Fn&& run) {
  uint64_t sink = run();
  const uint64_t start = CycleTimer::Now();
  sink += run();
  const uint64_t cycles = CycleTimer::Now() - start;
  if (sink == 0xDEADBEEFDEADBEEFULL) std::fprintf(stderr, "\n");
  return static_cast<double>(cycles) / static_cast<double>(probes);
}

double LookupsPerSec(double cycles_per_lookup) {
  return CycleTimer::CyclesPerSecond() / cycles_per_lookup;
}

struct Sweep {
  const char* structure;
  double base_cycles = 0.0;          // single-query
  double batch_cycles[5] = {0.0};    // per kGroups entry
};

void Report(TablePrinter* table, const std::string& size_name, size_t n,
            const Sweep& s) {
  std::vector<std::string> row = {s.structure, size_name,
                                  TablePrinter::Fmt(n),
                                  TablePrinter::Fmt(s.base_cycles, 0)};
  const std::string cfg_base =
      std::string(s.structure) + "/" + size_name;
  bench::EmitJson("bb_batch_lookup", cfg_base + "/single",
                  "cycles_per_lookup", s.base_cycles);
  bench::EmitJson("bb_batch_lookup", cfg_base + "/single",
                  "lookups_per_sec", LookupsPerSec(s.base_cycles));
  double best = 0.0;
  for (size_t gi = 0; gi < std::size(kGroups); ++gi) {
    const double c = s.batch_cycles[gi];
    row.push_back(TablePrinter::Fmt(c, 0));
    best = best == 0.0 || c < best ? c : best;
    const std::string cfg =
        cfg_base + "/g" + std::to_string(kGroups[gi]);
    bench::EmitJson("bb_batch_lookup", cfg, "cycles_per_lookup", c);
    bench::EmitJson("bb_batch_lookup", cfg, "lookups_per_sec",
                    LookupsPerSec(c));
  }
  row.push_back(TablePrinter::Fmt(s.base_cycles / best, 2));
  bench::EmitJson("bb_batch_lookup", cfg_base, "best_speedup",
                  s.base_cycles / best);
  table->AddRow(row);
  std::fflush(stdout);
}

Sweep MeasureKaryArray(const std::vector<Key>& keys,
                       const std::vector<Key>& probes) {
  kary::KaryArray<Key> arr(keys, kary::Layout::kBreadthFirst);
  Sweep s{"KaryArray-BF"};
  s.base_cycles = CyclesPerLookup(probes.size(), [&] {
    uint64_t sink = 0;
    for (Key p : probes) sink += static_cast<uint64_t>(arr.UpperBound(p));
    return sink;
  });
  std::vector<int64_t> out(probes.size());
  for (size_t gi = 0; gi < std::size(kGroups); ++gi) {
    const int group = kGroups[gi];
    s.batch_cycles[gi] = CyclesPerLookup(probes.size(), [&] {
      arr.UpperBoundBatch(probes.data(), probes.size(), out.data(), group);
      return static_cast<uint64_t>(out.back());
    });
  }
  return s;
}

template <typename TreeT>
Sweep MeasureTree(const char* name, const std::vector<Key>& keys,
                  const std::vector<Value>& values,
                  const std::vector<Key>& probes) {
  TreeT tree = TreeT::BulkLoad(keys.data(), values.data(), keys.size());
  Sweep s{name};
  s.base_cycles = CyclesPerLookup(probes.size(), [&] {
    uint64_t sink = 0;
    for (Key p : probes) {
      const auto v = tree.Find(p);
      sink += v ? *v : 0;
    }
    return sink;
  });
  std::vector<const Value*> out(probes.size());
  for (size_t gi = 0; gi < std::size(kGroups); ++gi) {
    const int group = kGroups[gi];
    s.batch_cycles[gi] = CyclesPerLookup(probes.size(), [&] {
      tree.FindBatch(probes.data(), probes.size(), out.data(), group);
      uint64_t sink = 0;
      for (const Value* p : out) sink += p != nullptr ? *p : 0;
      return sink;
    });
  }
  return s;
}

Sweep MeasureTrie(const std::vector<Key>& keys,
                  const std::vector<Key>& probes) {
  segtrie::OptimizedSegTrie<Key, Value> trie;
  for (size_t i = 0; i < keys.size(); ++i) {
    trie.Insert(keys[i], static_cast<Value>(i));
  }
  Sweep s{"OptSegTrie"};
  s.base_cycles = CyclesPerLookup(probes.size(), [&] {
    uint64_t sink = 0;
    for (Key p : probes) {
      const auto v = trie.Find(p);
      sink += v ? *v : 0;
    }
    return sink;
  });
  std::vector<const Value*> out(probes.size());
  for (size_t gi = 0; gi < std::size(kGroups); ++gi) {
    const int group = kGroups[gi];
    s.batch_cycles[gi] = CyclesPerLookup(probes.size(), [&] {
      trie.FindBatch(probes.data(), probes.size(), out.data(), group);
      uint64_t sink = 0;
      for (const Value* p : out) sink += p != nullptr ? *p : 0;
      return sink;
    });
  }
  return s;
}

// Hardware view of the batching effect: the pipelined descent executes
// (slightly) more instructions per lookup but overlaps its LLC misses,
// so misses per lookup stay flat while cycles drop — visible directly
// in the counter profile of the same probe stream, single vs g=12.
void HwPhase() {
  constexpr size_t kN = size_t{1} << 21;
  std::printf("hw profile (BPlusTree, 2M keys, single vs g=12):\n");
  Rng rng(2014);
  const std::vector<Key> keys = UniformDistinctKeys<Key>(kN, rng);
  const std::vector<Value> values(keys.size(), 1);
  const std::vector<Key> probes = SamplePresentProbes(keys, kProbes, rng);
  btree::BPlusTree<Key, Value> tree = btree::BPlusTree<Key, Value>::BulkLoad(
      keys.data(), values.data(), keys.size());

  const double ops = static_cast<double>(probes.size());
  uint64_t sink = 0;
  bench::HwSection("bb_batch_lookup", "hw/BPlusTree/2M/single", ops, [&] {
    for (Key p : probes) {
      const auto v = tree.Find(p);
      sink += v ? *v : 0;
    }
  });
  std::vector<const Value*> out(probes.size());
  bench::HwSection("bb_batch_lookup", "hw/BPlusTree/2M/g12", ops, [&] {
    tree.FindBatch(probes.data(), probes.size(), out.data(), 12);
    for (const Value* p : out) sink += p != nullptr ? *p : 0;
  });
  if (sink == 0xDEADBEEFDEADBEEFULL) std::fprintf(stderr, "\n");
  std::printf("\n");
}

void Run() {
  bench::PrintBenchHeader(
      "Batched lookups: group software pipelining vs single-query descent, "
      "32-bit keys, avg cycles per lookup");

  // In-LLC / borderline / decisively out-of-LLC. The largest sweep is the
  // acceptance config (>= 16M keys); override with SIMDTREE_BATCH_MAX for
  // low-memory machines.
  struct SizePoint {
    const char* name;
    size_t n;
  };
  std::vector<SizePoint> sizes = {
      {"128K", size_t{1} << 17},
      {"2M", size_t{1} << 21},
      {"16M", size_t{1} << 24},
  };
  if (const char* env = std::getenv("SIMDTREE_BATCH_MAX")) {
    sizes.back().n = std::strtoull(env, nullptr, 10);
  }

  std::vector<std::string> header = {"structure", "data", "keys", "single"};
  for (int g : kGroups) header.push_back("g=" + std::to_string(g));
  header.push_back("best speedup");
  TablePrinter table(header);

  for (const SizePoint& size : sizes) {
    Rng rng(2014);
    const std::vector<Key> keys = UniformDistinctKeys<Key>(size.n, rng);
    const std::vector<Value> values(keys.size(), 1);
    const std::vector<Key> probes = SamplePresentProbes(keys, kProbes, rng);

    Report(&table, size.name, size.n, MeasureKaryArray(keys, probes));
    Report(&table, size.name, size.n,
           MeasureTree<btree::BPlusTree<Key, Value>>("BPlusTree", keys,
                                                     values, probes));
    Report(&table, size.name, size.n,
           MeasureTree<segtree::SegTree<Key, Value>>("SegTree-BF", keys,
                                                     values, probes));
    Report(&table, size.name, size.n, MeasureTrie(keys, probes));
  }
  table.Print();
  std::printf(
      "\nexpected shape: ~1x at cache-resident sizes, rising once the index "
      "leaves the\nLLC; the sweet spot sits near the line-fill-buffer count "
      "(g ~ 8-16), where the\nper-level misses of a group overlap instead "
      "of serializing.\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  simdtree::HwPhase();
  simdtree::Run();
  return 0;
}
