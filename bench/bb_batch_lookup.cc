// Batched vs single-query point lookups across the index structures —
// the throughput case for the group software-pipelined FindBatch /
// UpperBoundBatch subsystem (src/btree/batch_descent.h,
// src/kary/batch_search.h, SegTrie::FindBatch).
//
// A single root-to-leaf descent serializes one cache miss per level; with
// the index out of LLC, the lookup is almost entirely memory stalls
// (paper Section 5.4). Batching G independent queries per level overlaps
// those misses in the line fill buffers, so throughput should rise with G
// until the fill buffers (10-16 on current x86) saturate. The sweep
// crosses structure x index size x pipeline group width and reports
// cycles per lookup and lookups per second against the single-query
// baseline of the same structure.
//
// The effect to look for: ~1x at cache-resident sizes (nothing to
// overlap), growing to well over 1.5x once the index leaves the LLC.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/batch.h"
#include "bench/hw_section.h"
#include "btree/btree.h"
#include "kary/kary_array.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "util/counters.h"
#include "util/cycle_timer.h"
#include "util/table_printer.h"
#include "util/workload.h"

namespace simdtree {
namespace {

using Key = uint32_t;
using Value = uint64_t;

constexpr size_t kProbes = 40000;  // 4x the paper's x, smoother at high G
constexpr int kGroups[] = {2, 4, 8, 12, 16};

// Total cycles of run() per probe, after one untimed warm-up pass.
template <typename Fn>
double CyclesPerLookup(size_t probes, Fn&& run) {
  uint64_t sink = run();
  const uint64_t start = CycleTimer::Now();
  sink += run();
  const uint64_t cycles = CycleTimer::Now() - start;
  if (sink == 0xDEADBEEFDEADBEEFULL) std::fprintf(stderr, "\n");
  return static_cast<double>(cycles) / static_cast<double>(probes);
}

double LookupsPerSec(double cycles_per_lookup) {
  return CycleTimer::CyclesPerSecond() / cycles_per_lookup;
}

struct Sweep {
  const char* structure;
  double base_cycles = 0.0;          // single-query
  double batch_cycles[5] = {0.0};    // per kGroups entry
};

void Report(TablePrinter* table, const std::string& size_name, size_t n,
            const Sweep& s) {
  std::vector<std::string> row = {s.structure, size_name,
                                  TablePrinter::Fmt(n),
                                  TablePrinter::Fmt(s.base_cycles, 0)};
  const std::string cfg_base =
      std::string(s.structure) + "/" + size_name;
  bench::EmitJson("bb_batch_lookup", cfg_base + "/single",
                  "cycles_per_lookup", s.base_cycles);
  bench::EmitJson("bb_batch_lookup", cfg_base + "/single",
                  "lookups_per_sec", LookupsPerSec(s.base_cycles));
  double best = 0.0;
  for (size_t gi = 0; gi < std::size(kGroups); ++gi) {
    const double c = s.batch_cycles[gi];
    row.push_back(TablePrinter::Fmt(c, 0));
    best = best == 0.0 || c < best ? c : best;
    const std::string cfg =
        cfg_base + "/g" + std::to_string(kGroups[gi]);
    bench::EmitJson("bb_batch_lookup", cfg, "cycles_per_lookup", c);
    bench::EmitJson("bb_batch_lookup", cfg, "lookups_per_sec",
                    LookupsPerSec(c));
  }
  row.push_back(TablePrinter::Fmt(s.base_cycles / best, 2));
  bench::EmitJson("bb_batch_lookup", cfg_base, "best_speedup",
                  s.base_cycles / best);
  table->AddRow(row);
  std::fflush(stdout);
}

Sweep MeasureKaryArray(const std::vector<Key>& keys,
                       const std::vector<Key>& probes) {
  kary::KaryArray<Key> arr(keys, kary::Layout::kBreadthFirst);
  Sweep s{"KaryArray-BF"};
  s.base_cycles = CyclesPerLookup(probes.size(), [&] {
    uint64_t sink = 0;
    for (Key p : probes) sink += static_cast<uint64_t>(arr.UpperBound(p));
    return sink;
  });
  std::vector<int64_t> out(probes.size());
  for (size_t gi = 0; gi < std::size(kGroups); ++gi) {
    const int group = kGroups[gi];
    s.batch_cycles[gi] = CyclesPerLookup(probes.size(), [&] {
      arr.UpperBoundBatch(probes.data(), probes.size(), out.data(), group);
      return static_cast<uint64_t>(out.back());
    });
  }
  return s;
}

template <typename TreeT>
Sweep MeasureTree(const char* name, const std::vector<Key>& keys,
                  const std::vector<Value>& values,
                  const std::vector<Key>& probes) {
  TreeT tree = TreeT::BulkLoad(keys.data(), values.data(), keys.size());
  Sweep s{name};
  s.base_cycles = CyclesPerLookup(probes.size(), [&] {
    uint64_t sink = 0;
    for (Key p : probes) {
      const auto v = tree.Find(p);
      sink += v ? *v : 0;
    }
    return sink;
  });
  std::vector<const Value*> out(probes.size());
  for (size_t gi = 0; gi < std::size(kGroups); ++gi) {
    const int group = kGroups[gi];
    s.batch_cycles[gi] = CyclesPerLookup(probes.size(), [&] {
      tree.FindBatch(probes.data(), probes.size(), out.data(), group);
      uint64_t sink = 0;
      for (const Value* p : out) sink += p != nullptr ? *p : 0;
      return sink;
    });
  }
  return s;
}

Sweep MeasureTrie(const std::vector<Key>& keys,
                  const std::vector<Key>& probes) {
  segtrie::OptimizedSegTrie<Key, Value> trie;
  for (size_t i = 0; i < keys.size(); ++i) {
    trie.Insert(keys[i], static_cast<Value>(i));
  }
  Sweep s{"OptSegTrie"};
  s.base_cycles = CyclesPerLookup(probes.size(), [&] {
    uint64_t sink = 0;
    for (Key p : probes) {
      const auto v = trie.Find(p);
      sink += v ? *v : 0;
    }
    return sink;
  });
  std::vector<const Value*> out(probes.size());
  for (size_t gi = 0; gi < std::size(kGroups); ++gi) {
    const int group = kGroups[gi];
    s.batch_cycles[gi] = CyclesPerLookup(probes.size(), [&] {
      trie.FindBatch(probes.data(), probes.size(), out.data(), group);
      uint64_t sink = 0;
      for (const Value* p : out) sink += p != nullptr ? *p : 0;
      return sink;
    });
  }
  return s;
}

// Hardware view of the batching effect: the pipelined descent executes
// (slightly) more instructions per lookup but overlaps its LLC misses,
// so misses per lookup stay flat while cycles drop — visible directly
// in the counter profile of the same probe stream, single vs g=12.
void HwPhase() {
  constexpr size_t kN = size_t{1} << 21;
  std::printf("hw profile (BPlusTree, 2M keys, single vs g=12):\n");
  Rng rng(2014);
  const std::vector<Key> keys = UniformDistinctKeys<Key>(kN, rng);
  const std::vector<Value> values(keys.size(), 1);
  const std::vector<Key> probes = SamplePresentProbes(keys, kProbes, rng);
  btree::BPlusTree<Key, Value> tree = btree::BPlusTree<Key, Value>::BulkLoad(
      keys.data(), values.data(), keys.size());

  const double ops = static_cast<double>(probes.size());
  uint64_t sink = 0;
  bench::HwSection("bb_batch_lookup", "hw/BPlusTree/2M/single", ops, [&] {
    for (Key p : probes) {
      const auto v = tree.Find(p);
      sink += v ? *v : 0;
    }
  });
  std::vector<const Value*> out(probes.size());
  bench::HwSection("bb_batch_lookup", "hw/BPlusTree/2M/g12", ops, [&] {
    tree.FindBatch(probes.data(), probes.size(), out.data(), 12);
    for (const Value* p : out) sink += p != nullptr ? *p : 0;
  });
  if (sink == 0xDEADBEEFDEADBEEFULL) std::fprintf(stderr, "\n");
  std::printf("\n");
}

// --- grouped (level-wise) descent vs pipelined A/B ------------------------
//
// The grouped engine (btree/batch_descent.h FindBatchGrouped) sorts the
// batch once and loads every visited node once, so its physical node
// loads per query drop as the batch grows while the pipelined path's
// stay equal to the tree height. Two probe distributions bound the
// effect: uniform-random probes only share the upper levels (the leaf
// frontier is as wide as the batch), while clustered probes — contiguous
// runs of adjacent stored keys, the probe side of a merge join or
// IN-list — share all the way down. The `auto` row is the
// UseGroupedDescent heuristic the concurrency wrappers apply per batch.

// `count` probes in contiguous runs of `run_len` adjacent stored keys,
// starting at random positions of the sorted key array.
std::vector<Key> ClusteredProbes(const std::vector<Key>& sorted_keys,
                                 size_t count, size_t run_len, Rng& rng) {
  std::vector<Key> probes;
  probes.reserve(count);
  while (probes.size() < count) {
    const size_t start = rng.NextBounded(sorted_keys.size());
    for (size_t j = 0; j < run_len && probes.size() < count; ++j) {
      probes.push_back(sorted_keys[(start + j) % sorted_keys.size()]);
    }
  }
  return probes;
}

template <typename TreeT>
void MeasureGrouped(TablePrinter* table, const char* name,
                    const TreeT& tree, const std::string& size_name,
                    const char* probe_kind, const std::vector<Key>& probes,
                    size_t batch) {
  const size_t np = probes.size();
  const std::string cfg = std::string("grouped/") + name + "/" + size_name +
                          "/" + probe_kind + "/b" + std::to_string(batch);
  std::vector<const Value*> out(np);
  auto fold = [&out] {
    uint64_t sink = 0;
    for (const Value* p : out) sink += p != nullptr ? *p : 0;
    return sink;
  };
  auto run_pipe = [&] {
    for (size_t off = 0; off < np; off += batch) {
      const size_t m = std::min(batch, np - off);
      tree.FindBatch(probes.data() + off, m, out.data() + off);
    }
    return fold();
  };
  auto run_grouped = [&] {
    for (size_t off = 0; off < np; off += batch) {
      const size_t m = std::min(batch, np - off);
      tree.FindBatchGrouped(probes.data() + off, m, out.data() + off);
    }
    return fold();
  };
  auto run_auto = [&] {
    for (size_t off = 0; off < np; off += batch) {
      const size_t m = std::min(batch, np - off);
      if (UseGroupedDescent(m, tree.height())) {
        tree.FindBatchGrouped(probes.data() + off, m, out.data() + off);
      } else {
        tree.FindBatch(probes.data() + off, m, out.data() + off);
      }
    }
    return fold();
  };
  // Interleaved min-of-rounds (as in bb_trace_overhead): one point's
  // three engines alternate within each round, so frequency drift and
  // container noise hit all of them instead of whichever ran last.
  constexpr int kRounds = 5;
  double pipe_cycles = 0.0, grouped_cycles = 0.0, auto_cycles = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    const double p = CyclesPerLookup(np, run_pipe);
    const double g = CyclesPerLookup(np, run_grouped);
    const double a = CyclesPerLookup(np, run_auto);
    pipe_cycles = round == 0 ? p : std::min(pipe_cycles, p);
    grouped_cycles = round == 0 ? g : std::min(grouped_cycles, g);
    auto_cycles = round == 0 ? a : std::min(auto_cycles, a);
  }
  // Logical visits vs physical loads, untimed: the pipelined path loads
  // one node per query per level (visits == loads); the grouped path's
  // loads are the per-batch distinct-node counts.
  SearchCounters pipe_c, grouped_c;
  for (size_t off = 0; off < np; off += batch) {
    const size_t m = std::min(batch, np - off);
    tree.FindBatch(probes.data() + off, m, out.data() + off,
                   kDefaultBatchGroup, &pipe_c);
    tree.FindBatchGrouped(probes.data() + off, m, out.data() + off,
                          &grouped_c);
  }
  const double pipe_visits =
      static_cast<double>(pipe_c.nodes_visited) / static_cast<double>(np);
  const double grouped_loads =
      static_cast<double>(grouped_c.nodes_loaded) / static_cast<double>(np);
  const double reduction =
      grouped_loads > 0.0 ? pipe_visits / grouped_loads : 0.0;

  bench::EmitJson("bb_batch_lookup", cfg + "/pipelined", "lookups_per_sec",
                  LookupsPerSec(pipe_cycles));
  bench::EmitJson("bb_batch_lookup", cfg + "/pipelined",
                  "node_visits_per_query", pipe_visits);
  bench::EmitJson("bb_batch_lookup", cfg + "/grouped", "lookups_per_sec",
                  LookupsPerSec(grouped_cycles));
  bench::EmitJson("bb_batch_lookup", cfg + "/grouped",
                  "node_visits_per_query", grouped_loads);
  bench::EmitJson("bb_batch_lookup", cfg + "/auto", "lookups_per_sec",
                  LookupsPerSec(auto_cycles));
  bench::EmitJson("bb_batch_lookup", cfg, "visit_reduction", reduction);

  table->AddRow({name, size_name, probe_kind, TablePrinter::Fmt(batch),
                 TablePrinter::Fmt(pipe_cycles, 0),
                 TablePrinter::Fmt(grouped_cycles, 0),
                 TablePrinter::Fmt(auto_cycles, 0),
                 TablePrinter::Fmt(pipe_cycles / grouped_cycles, 2),
                 TablePrinter::Fmt(pipe_visits, 2),
                 TablePrinter::Fmt(grouped_loads, 2),
                 TablePrinter::Fmt(reduction, 2)});
  std::fflush(stdout);
}

void GroupedPhase(bool smoke) {
  std::printf(
      "grouped (level-wise) descent vs pipelined, SegTree, avg cycles per "
      "lookup:\n");
  size_t n = smoke ? size_t{1} << 17 : size_t{1} << 24;
  if (const char* env = std::getenv("SIMDTREE_BATCH_MAX")) {
    n = std::strtoull(env, nullptr, 10);
  }
  const std::string size_name =
      n >= (size_t{1} << 20) ? std::to_string(n >> 20) + "M"
                             : std::to_string(n >> 10) + "K";
  std::vector<size_t> batches = smoke ? std::vector<size_t>{256, 1024}
                                      : std::vector<size_t>{64, 256, 1024,
                                                            4096};
  Rng rng(2014);
  const std::vector<Key> keys = UniformDistinctKeys<Key>(n, rng);
  const std::vector<Value> values(keys.size(), 1);
  const std::vector<Key> uniform = SamplePresentProbes(keys, kProbes, rng);
  const std::vector<Key> clustered = ClusteredProbes(keys, kProbes, 16, rng);

  TablePrinter table({"structure", "data", "probes", "batch", "pipelined",
                      "grouped", "auto", "speedup", "visits/q", "loads/q",
                      "reduction"});
  {
    // Paper node capacity: a shallow tree (height 3 at 16M keys).
    const auto tree = segtree::SegTree<Key, Value>::BulkLoad(
        keys.data(), values.data(), keys.size());
    for (size_t b : batches) {
      MeasureGrouped(&table, "SegTree-BF", tree, size_name, "uniform",
                     uniform, b);
      MeasureGrouped(&table, "SegTree-BF", tree, size_name, "clustered",
                     clustered, b);
    }
  }
  if (!smoke) {
    // Small fanout: a deep tree, where per-level sharing compounds.
    const auto deep = segtree::SegTree<Key, Value>::BulkLoad(
        keys.data(), values.data(), keys.size(), 1.0, 32);
    for (size_t b : batches) {
      MeasureGrouped(&table, "SegTree-BF-deep", deep, size_name, "uniform",
                     uniform, b);
      MeasureGrouped(&table, "SegTree-BF-deep", deep, size_name, "clustered",
                     clustered, b);
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: loads/q falls as the batch grows (each node "
      "loaded once per\nbatch) while the pipelined visits/q stays at the "
      "tree height; clustered probes\nshare every level, uniform probes "
      "only the upper ones. `auto` tracks the better\ncolumn via "
      "UseGroupedDescent.\n\n");
}

void Run(bool smoke) {
  bench::PrintBenchHeader(
      "Batched lookups: group software pipelining vs single-query descent, "
      "32-bit keys, avg cycles per lookup");

  GroupedPhase(smoke);

  // In-LLC / borderline / decisively out-of-LLC. The largest sweep is the
  // acceptance config (>= 16M keys); override with SIMDTREE_BATCH_MAX for
  // low-memory machines. --smoke drops to one small size so CI can
  // execute the JSON contract quickly.
  struct SizePoint {
    const char* name;
    size_t n;
  };
  std::vector<SizePoint> sizes = {
      {"128K", size_t{1} << 17},
      {"2M", size_t{1} << 21},
      {"16M", size_t{1} << 24},
  };
  if (smoke) {
    sizes = {{"128K", size_t{1} << 17}};
  } else if (const char* env = std::getenv("SIMDTREE_BATCH_MAX")) {
    sizes.back().n = std::strtoull(env, nullptr, 10);
  }

  std::vector<std::string> header = {"structure", "data", "keys", "single"};
  for (int g : kGroups) header.push_back("g=" + std::to_string(g));
  header.push_back("best speedup");
  TablePrinter table(header);

  for (const SizePoint& size : sizes) {
    Rng rng(2014);
    const std::vector<Key> keys = UniformDistinctKeys<Key>(size.n, rng);
    const std::vector<Value> values(keys.size(), 1);
    const std::vector<Key> probes = SamplePresentProbes(keys, kProbes, rng);

    Report(&table, size.name, size.n, MeasureKaryArray(keys, probes));
    Report(&table, size.name, size.n,
           MeasureTree<btree::BPlusTree<Key, Value>>("BPlusTree", keys,
                                                     values, probes));
    Report(&table, size.name, size.n,
           MeasureTree<segtree::SegTree<Key, Value>>("SegTree-BF", keys,
                                                     values, probes));
    Report(&table, size.name, size.n, MeasureTrie(keys, probes));
  }
  table.Print();
  std::printf(
      "\nexpected shape: ~1x at cache-resident sizes, rising once the index "
      "leaves the\nLLC; the sweet spot sits near the line-fill-buffer count "
      "(g ~ 8-16), where the\nper-level misses of a group overlap instead "
      "of serializing.\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (!smoke) simdtree::HwPhase();
  simdtree::Run(smoke);
  return 0;
}
