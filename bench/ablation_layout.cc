// Ablation (paper Section 3.3): perfect vs truncated materialization of
// the linearized k-ary search tree, across node fill levels.
//
// The replenishment strategy trades memory (padding slots) for the
// ability to run SIMD search on arbitrary key counts. Truncated storage
// keeps only the breadth-first node prefix (the paper's N_S); perfect
// storage materializes all k^r - 1 slots. This bench quantifies the
// memory overhead of each policy and shows search speed is unaffected.

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "kary/kary_array.h"
#include "util/table_printer.h"
#include "util/workload.h"

namespace simdtree {
namespace {

using Key = int32_t;
using bench::kProbeCount;

void Run() {
  bench::PrintBenchHeader(
      "Ablation: perfect vs truncated linearized storage (32-bit keys)");
  TablePrinter table({"keys", "trunc slots", "perfect slots", "trunc pad%",
                      "perfect pad%", "trunc cyc", "perfect cyc"});
  Rng rng(9);
  // Sweep fill levels around power-of-k boundaries, where the policies
  // differ most (just past a boundary the perfect tree nearly k-folds).
  for (int64_t n : {int64_t{100}, int64_t{624}, int64_t{625}, int64_t{1000},
                    int64_t{3124}, int64_t{3125}, int64_t{20000},
                    int64_t{78125}, int64_t{100000}}) {
    std::vector<Key> sorted =
        UniformDistinctKeys<Key>(static_cast<size_t>(n), rng);
    kary::KaryArray<Key> truncated(sorted, kary::Layout::kBreadthFirst,
                                   kary::Storage::kTruncated);
    kary::KaryArray<Key> perfect(sorted, kary::Layout::kBreadthFirst,
                                 kary::Storage::kPerfect);
    const std::vector<Key> probes =
        SamplePresentProbes(sorted, kProbeCount, rng);
    const double t_cyc = bench::CyclesPerOp(
        probes, [&](Key v) { return truncated.UpperBound(v); });
    const double p_cyc = bench::CyclesPerOp(
        probes, [&](Key v) { return perfect.UpperBound(v); });
    auto pad_pct = [n](int64_t slots) {
      return 100.0 * static_cast<double>(slots - n) /
             static_cast<double>(slots);
    };
    table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(n)),
                  TablePrinter::Fmt(truncated.stored_slots()),
                  TablePrinter::Fmt(perfect.stored_slots()),
                  TablePrinter::Fmt(pad_pct(truncated.stored_slots()), 1),
                  TablePrinter::Fmt(pad_pct(perfect.stored_slots()), 1),
                  TablePrinter::Fmt(t_cyc, 1), TablePrinter::Fmt(p_cyc, 1)});
    const std::string cfg = "n" + std::to_string(n);
    bench::EmitJson("ablation_layout", cfg + "/truncated",
                    "cycles_per_search", t_cyc);
    bench::EmitJson("ablation_layout", cfg + "/perfect", "cycles_per_search",
                    p_cyc);
    bench::EmitJson("ablation_layout", cfg + "/truncated",
                    "stored_slots",
                    static_cast<double>(truncated.stored_slots()));
    bench::EmitJson("ablation_layout", cfg + "/perfect", "stored_slots",
                    static_cast<double>(perfect.stored_slots()));
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nexpected: truncated storage bounds padding to under one node per "
      "level, while the\nperfect tree can approach k-fold overhead just "
      "past a k^r boundary (e.g. 3125 keys);\nsearch cycles are unaffected "
      "by the policy.\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  simdtree::Run();
  return 0;
}
