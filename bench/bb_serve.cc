// Open-loop load generator for the KV serving path (src/net/): drives a
// live server through KvClient connections on a target-QPS arrival
// schedule and reports SLO latencies.
//
// Open loop means arrivals are scheduled by the clock, not by reply
// receipt: each connection draws exponential inter-arrival gaps (a
// Poisson process at its share of --qps) and a request's latency is
// measured from its SCHEDULED arrival to its reply — so queueing delay
// that a closed-loop generator would hide (coordinated omission) is
// charged to the server. The only concession is the pipeline cap: at
// most --pipeline requests per connection are in flight, and arrivals
// due while the pipeline is full are sent late (their latency still
// counts from the schedule). The pipeline depth is also the lever that
// drives the server's read-run coalescing into FindBatch.
//
// Workload: reads are GETs (a --mget-frac slice becomes 8-key MGETs, a
// --lb-frac slice becomes LOWER_BOUNDs); a --write-frac slice of
// requests are writes, alternating PUT / DEL. Keys are skewed: with
// probability --hot-frac a key is drawn from the hottest 1% of the
// keyspace, else uniformly.
//
// Against an external server: bb_serve --port=N [--host=A]. With no
// --port, the bench self-hosts: it builds a SegTree-backed ShardedIndex
// of --keys pairs in-process, starts a KvServer on an ephemeral
// loopback port, and tears it down afterwards.
//
// --json emits the standard bench lines plus one SLO object line:
//   {"bench":"bb_serve","config":...,"slo":{"target_qps":..,
//    "achieved_qps":..,"requests":..,"replies":..,"errors":..,
//    "p50_ns":..,"p99_ns":..,"p999_ns":..,"max_ns":..},"ops":{
//    "get":{"replies":..,"p50_ns":..,"p99_ns":..,"p999_ns":..},...}}
// which scripts/check_bench_json.py --require-slo gates in CI. The
// "ops" object breaks the latency percentiles down per opcode.
// --smoke shrinks everything for CI (2 s, small index, low QPS).
//
// --slo-target=F additionally evaluates the run against the SLO math
// the serving monitor uses (obs/slo.h EvaluateSlo): availability
// target F, latency objective --slo-latency-ms at --slo-latency-target,
// window = the whole run. Any burn rate above 1.0 (the error budget
// consumed faster than it accrues) exits non-zero — the CI hook for
// "this build cannot hold its SLO".
//
// --ab-spans switches to the span-overhead A/B: a closed-loop burst of
// pipelined GETs against the self-hosted server, measured with the
// request tracer disarmed vs armed (head sampling + a slow threshold no
// request breaches — the tail-sampling steady state). Modes interleave
// round-robin for --reps rounds and each mode's fastest round counts
// (min-of-rounds, like bb_trace_overhead), emitting span_overhead_pct —
// the number EXPERIMENTS.md records against the <= 2% bar.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/sharded.h"
#include "net/backend.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/histogram.h"
#include "obs/request_trace.h"
#include "obs/slo.h"
#include "segtree/segtree.h"
#include "util/rng.h"

namespace simdtree {
namespace {

using Tree = segtree::SegTree<uint64_t, uint64_t>;
using Clock = std::chrono::steady_clock;

// Per-opcode latency attribution: indices into ConnStats::op.
enum OpKind : uint8_t {
  kKindGet = 0,
  kKindMget,
  kKindLowerBound,
  kKindPut,
  kKindDel,
  kNumOpKinds,
};
constexpr const char* kOpKindNames[kNumOpKinds] = {"get", "mget",
                                                   "lower_bound", "put",
                                                   "del"};

struct Config {
  std::string host = "127.0.0.1";
  int port = 0;          // 0 = self-host an in-process server
  double qps = 20000.0;  // aggregate target across all connections
  int conns = 4;
  int pipeline = 16;
  double write_frac = 0.10;
  double mget_frac = 0.05;  // fraction of reads sent as 8-key MGETs
  double lb_frac = 0.05;    // fraction of reads sent as LOWER_BOUNDs
  double hot_frac = 0.50;   // fraction of keys drawn from the hot 1%
  size_t keys = size_t{1} << 20;  // self-hosted index size
  int server_threads = 2;         // self-hosted worker count
  int shards = 8;
  int duration_s = 10;
  bool smoke = false;

  // --slo-target: evaluate the run through obs::EvaluateSlo and exit
  // non-zero on a burn rate above 1. Negative = disabled.
  double slo_target = -1.0;
  double slo_latency_ms = 5.0;
  double slo_latency_target = 0.99;

  // --ab-spans: request-span overhead A/B instead of the open loop.
  bool ab_spans = false;
  int reps = 7;
  uint64_t ab_requests = 200000;  // closed-loop GETs per round
};

struct ConnStats {
  uint64_t requests = 0;
  uint64_t replies = 0;
  uint64_t errors = 0;  // non-OK statuses or transport failures
  obs::LogHistogram latency_ns;
  obs::LogHistogram op_latency_ns[kNumOpKinds];
};

uint64_t NowNs(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           t0)
          .count());
}

// One connection's open-loop driver. Runs until `deadline_ns` on the
// shared epoch clock, then drains its pipeline.
void RunConn(const Config& cfg, int conn_index, Clock::time_point epoch,
             uint64_t deadline_ns, ConnStats* stats) {
  net::KvClient client;
  if (!client.Connect(cfg.host, static_cast<uint16_t>(cfg.port))) {
    std::fprintf(stderr, "conn %d: %s\n", conn_index,
                 client.error().c_str());
    ++stats->errors;
    return;
  }

  Rng rng(0xB0B5E12FULL + static_cast<uint64_t>(conn_index) * 7919);
  const double conn_qps = cfg.qps / cfg.conns;
  const double mean_gap_ns = 1e9 / conn_qps;
  const uint64_t hot_span =
      cfg.keys / 100 > 0 ? cfg.keys / 100 : uint64_t{1};

  // Scheduled-arrival timestamps and opcodes of in-flight requests, in
  // request order (the server's reply order).
  std::deque<uint64_t> sched;
  std::deque<uint8_t> sched_op;
  uint64_t next_arrival_ns = 0;
  uint64_t write_toggle = 0;
  uint64_t mget_keys[8];

  auto draw_key = [&]() -> uint64_t {
    if (rng.NextDouble() < cfg.hot_frac) return 1 + rng.NextBounded(hot_span);
    return 1 + rng.NextBounded(cfg.keys);
  };

  auto enqueue_one = [&]() {
    uint8_t kind;
    if (rng.NextDouble() < cfg.write_frac) {
      if (write_toggle++ & 1) {
        client.EnqueueDel(draw_key());
        kind = kKindDel;
      } else {
        client.EnqueuePut(draw_key(), rng.Next());
        kind = kKindPut;
      }
    } else if (rng.NextDouble() < cfg.mget_frac) {
      for (auto& k : mget_keys) k = draw_key();
      client.EnqueueMget(mget_keys, 8);
      kind = kKindMget;
    } else if (rng.NextDouble() < cfg.lb_frac) {
      client.EnqueueLowerBound(draw_key());
      kind = kKindLowerBound;
    } else {
      client.EnqueueGet(draw_key());
      kind = kKindGet;
    }
    sched_op.push_back(kind);
    ++stats->requests;
  };

  auto record_reply = [&](uint64_t done_ns) {
    const uint64_t lat = done_ns - sched.front();
    stats->latency_ns.Record(lat);
    stats->op_latency_ns[sched_op.front()].Record(lat);
    sched.pop_front();
    sched_op.pop_front();
    ++stats->replies;
  };

  net::Response resp;
  while (true) {
    const uint64_t now_ns = NowNs(epoch);
    if (now_ns >= deadline_ns) break;

    // Send every arrival that is due, up to the pipeline cap. A full
    // pipeline leaves the overdue arrival pending; it is sent as soon
    // as a slot frees, with its latency still measured from schedule.
    bool sent = false;
    while (next_arrival_ns <= now_ns &&
           sched.size() < static_cast<size_t>(cfg.pipeline)) {
      enqueue_one();
      sched.push_back(next_arrival_ns);
      next_arrival_ns += static_cast<uint64_t>(
          -mean_gap_ns * std::log(1.0 - rng.NextDouble()));
      sent = true;
    }
    if (sent && !client.Flush()) {
      stats->errors += sched.size();
      return;
    }

    if (sched.empty()) {
      // Idle: sleep to the next arrival (capped so the deadline is
      // honored promptly).
      const uint64_t target =
          next_arrival_ns < deadline_ns ? next_arrival_ns : deadline_ns;
      const uint64_t now2 = NowNs(epoch);
      if (target > now2) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(target - now2));
      }
      continue;
    }

    // Wait for a reply, but never past the next arrival (ms floor of 1
    // keeps poll() from busy-spinning at high QPS).
    int timeout_ms = 1;
    if (sched.size() >= static_cast<size_t>(cfg.pipeline)) {
      timeout_ms = 100;  // pipeline full: nothing to send anyway
    }
    if (client.ReadReply(&resp, timeout_ms)) {
      record_reply(NowNs(epoch));
      if (resp.status != net::kStatusOk) ++stats->errors;
      // Drain whatever else is already buffered without blocking.
      while (!sched.empty() && client.ReadReply(&resp, 0)) {
        record_reply(NowNs(epoch));
        if (resp.status != net::kStatusOk) ++stats->errors;
      }
      if (!client.connected()) {
        stats->errors += sched.size();
        return;
      }
    } else if (!client.connected()) {
      stats->errors += sched.size();
      return;
    }
  }

  // Drain the tail of the pipeline.
  while (!sched.empty() && client.ReadReply(&resp, 2000)) {
    record_reply(NowNs(epoch));
    if (resp.status != net::kStatusOk) ++stats->errors;
  }
  stats->errors += sched.size();
}

// Builds the self-hosted index + server shared by the open loop and
// the --ab-spans A/B. Start() fills cfg->port with the bound port.
struct SelfHost {
  std::unique_ptr<ShardedIndex<Tree>> index;
  std::unique_ptr<net::ShardedKvBackend<Tree>> backend;
  std::unique_ptr<net::KvServer> server;

  bool Start(Config* cfg) {
    std::vector<uint64_t> all_keys(cfg->keys);
    for (size_t i = 0; i < cfg->keys; ++i) all_keys[i] = i + 1;
    index = std::make_unique<ShardedIndex<Tree>>(
        static_cast<size_t>(cfg->shards),
        ShardedIndex<Tree>::SplittersFromSample(
            all_keys.data(), all_keys.size(),
            static_cast<size_t>(cfg->shards)));
    for (uint64_t k : all_keys) index->Insert(k, k * 10);
    backend = std::make_unique<net::ShardedKvBackend<Tree>>(index.get());
    server = std::make_unique<net::KvServer>(backend.get());
    net::KvServerOptions opts;
    opts.num_workers = cfg->server_threads;
    if (!server->Start(opts)) {
      std::fprintf(stderr, "cannot start server: %s\n",
                   server->error().c_str());
      return false;
    }
    cfg->port = server->port();
    return true;
  }
};

// One closed-loop round of the span-overhead A/B: `total` pipelined
// GETs over one connection, returning the elapsed nanoseconds (or 0 on
// transport failure).
uint64_t AbSpansRound(const Config& cfg, uint64_t total) {
  net::KvClient client;
  if (!client.Connect(cfg.host, static_cast<uint16_t>(cfg.port))) {
    std::fprintf(stderr, "ab-spans: %s\n", client.error().c_str());
    return 0;
  }
  Rng rng(0xAB5A25ULL);
  const size_t depth = static_cast<size_t>(cfg.pipeline);
  uint64_t sent = 0, got = 0;
  net::Response resp;
  const Clock::time_point t0 = Clock::now();
  while (sent < total && sent < depth) {
    client.EnqueueGet(1 + rng.NextBounded(cfg.keys));
    ++sent;
  }
  if (!client.Flush()) return 0;
  while (got < total) {
    if (!client.ReadReply(&resp, 2000)) return 0;
    ++got;
    if (sent < total) {
      client.EnqueueGet(1 + rng.NextBounded(cfg.keys));
      ++sent;
      if (!client.Flush()) return 0;
    }
  }
  return NowNs(t0);
}

// Interleaved min-of-rounds A/B: request tracer disarmed vs armed with
// head sampling plus a slow threshold nothing breaches — the steady
// state of tail sampling, where every request pays the span bookkeeping
// but (almost) none is retained.
int RunAbSpans(Config cfg) {
  if (cfg.port != 0) {
    std::fprintf(stderr, "--ab-spans self-hosts; drop --port\n");
    return 2;
  }
  SelfHost host;
  if (!host.Start(&cfg)) return 1;
  std::printf("span-overhead A/B: %llu GETs/round, pipeline %d, "
              "%d rounds, port %d\n",
              static_cast<unsigned long long>(cfg.ab_requests),
              cfg.pipeline, cfg.reps, cfg.port);
  std::fflush(stdout);

  struct Mode {
    const char* name;
    uint32_t head_rate;
    uint64_t slow_ns;
  };
  // 1-in-128 head sampling; slow threshold 100 s => never breached.
  const Mode modes[] = {
      {"spans_off", 0, 0},
      {"spans_armed", 128, 100ULL * 1000 * 1000 * 1000},
  };
  constexpr size_t kModes = sizeof(modes) / sizeof(modes[0]);
  uint64_t best_ns[kModes] = {};
  auto& tracer = obs::RequestTracer::Global();
  for (int r = 0; r < cfg.reps; ++r) {
    for (size_t m = 0; m < kModes; ++m) {
      tracer.Configure(modes[m].head_rate, modes[m].slow_ns);
      const uint64_t ns = AbSpansRound(cfg, cfg.ab_requests);
      tracer.Configure(0, 0);
      if (ns == 0) {
        std::fprintf(stderr, "ab-spans round failed\n");
        host.server->Stop();
        return 1;
      }
      if (r == 0 || ns < best_ns[m]) best_ns[m] = ns;
    }
  }
  host.server->Stop();

  std::printf("%-12s %14s %12s\n", "mode", "qps", "vs off");
  for (size_t m = 0; m < kModes; ++m) {
    const double qps = 1e9 * static_cast<double>(cfg.ab_requests) /
                       static_cast<double>(best_ns[m]);
    const double overhead =
        (static_cast<double>(best_ns[m]) /
             static_cast<double>(best_ns[0]) -
         1.0) *
        100.0;
    std::printf("%-12s %14.0f %+11.2f%%\n", modes[m].name, qps, overhead);
    bench::EmitJson("bb_serve", modes[m].name, "qps", qps);
    if (m > 0) {
      bench::EmitJson("bb_serve", modes[m].name, "span_overhead_pct",
                      overhead);
    }
  }
  std::printf("\nspans: %llu completed, %llu retained (%llu slow)\n",
              static_cast<unsigned long long>(tracer.completed()),
              static_cast<unsigned long long>(tracer.retained()),
              static_cast<unsigned long long>(tracer.slow_retained()));
  return 0;
}

int Run(const Config& cfg_in) {
  Config cfg = cfg_in;

  // Self-host when no external server was named: an in-process
  // ShardedIndex + KvServer on an ephemeral loopback port.
  SelfHost host;
  if (cfg.port == 0) {
    if (!host.Start(&cfg)) return 1;
    std::printf("self-hosted server: %zu keys, %d shards, %d workers, "
                "port %d\n",
                cfg.keys, cfg.shards, cfg.server_threads, cfg.port);
  }

  std::printf("open-loop: target %.0f qps over %d conns, pipeline %d, "
              "write %.2f, mget %.2f, hot %.2f, %d s\n",
              cfg.qps, cfg.conns, cfg.pipeline, cfg.write_frac,
              cfg.mget_frac, cfg.hot_frac, cfg.duration_s);
  std::fflush(stdout);

  std::vector<ConnStats> stats(static_cast<size_t>(cfg.conns));
  const Clock::time_point epoch = Clock::now();
  const uint64_t deadline_ns =
      static_cast<uint64_t>(cfg.duration_s) * 1000000000ULL;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(cfg.conns));
  for (int i = 0; i < cfg.conns; ++i) {
    threads.emplace_back(RunConn, std::cref(cfg), i, epoch, deadline_ns,
                         &stats[static_cast<size_t>(i)]);
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      static_cast<double>(NowNs(epoch)) / 1e9;

  ConnStats total;
  for (const ConnStats& s : stats) {
    total.requests += s.requests;
    total.replies += s.replies;
    total.errors += s.errors;
    total.latency_ns.Merge(s.latency_ns);
    for (int k = 0; k < kNumOpKinds; ++k) {
      total.op_latency_ns[k].Merge(s.op_latency_ns[k]);
    }
  }
  if (host.server != nullptr) host.server->Stop();

  const double achieved_qps =
      elapsed_s > 0 ? static_cast<double>(total.replies) / elapsed_s : 0;
  const uint64_t p50 = total.latency_ns.Percentile(0.50);
  const uint64_t p99 = total.latency_ns.Percentile(0.99);
  const uint64_t p999 = total.latency_ns.Percentile(0.999);
  const uint64_t max_ns = total.latency_ns.Max();

  std::printf("\n%-14s %12s %12s %10s\n", "", "requests", "replies",
              "errors");
  std::printf("%-14s %12llu %12llu %10llu\n", "totals",
              static_cast<unsigned long long>(total.requests),
              static_cast<unsigned long long>(total.replies),
              static_cast<unsigned long long>(total.errors));
  std::printf("\nachieved %.0f qps (target %.0f) over %.2f s\n",
              achieved_qps, cfg.qps, elapsed_s);
  std::printf("latency from scheduled arrival: p50 %.1f us, p99 %.1f us, "
              "p99.9 %.1f us, max %.1f us\n",
              static_cast<double>(p50) / 1e3,
              static_cast<double>(p99) / 1e3,
              static_cast<double>(p999) / 1e3,
              static_cast<double>(max_ns) / 1e3);

  // Per-opcode breakdown: a p999 regression confined to PUTs (write
  // barriers breaking coalesced runs) looks totally different from one
  // confined to MGETs (batch sizing), and the blended histogram hides
  // which it is.
  std::printf("\n%-12s %10s %10s %10s %10s\n", "op", "replies",
              "p50_us", "p99_us", "p999_us");
  for (int k = 0; k < kNumOpKinds; ++k) {
    const obs::LogHistogram& h = total.op_latency_ns[k];
    if (h.Count() == 0) continue;
    std::printf("%-12s %10llu %10.1f %10.1f %10.1f\n", kOpKindNames[k],
                static_cast<unsigned long long>(h.Count()),
                static_cast<double>(h.Percentile(0.50)) / 1e3,
                static_cast<double>(h.Percentile(0.99)) / 1e3,
                static_cast<double>(h.Percentile(0.999)) / 1e3);
  }

  char config[160];
  std::snprintf(config, sizeof(config),
                "qps%.0f/conns%d/depth%d/wf%.2f/hot%.2f", cfg.qps,
                cfg.conns, cfg.pipeline, cfg.write_frac, cfg.hot_frac);
  bench::EmitJson("bb_serve", config, "achieved_qps", achieved_qps);
  bench::EmitJson("bb_serve", config, "p50_ns",
                  static_cast<double>(p50));
  bench::EmitJson("bb_serve", config, "p99_ns",
                  static_cast<double>(p99));
  bench::EmitJson("bb_serve", config, "p999_ns",
                  static_cast<double>(p999));
  if (bench::JsonEnabled()) {
    std::string ops_json = "{";
    bool first = true;
    for (int k = 0; k < kNumOpKinds; ++k) {
      const obs::LogHistogram& h = total.op_latency_ns[k];
      if (h.Count() == 0) continue;
      char buf[256];
      std::snprintf(
          buf, sizeof(buf),
          "%s\"%s\":{\"replies\":%llu,\"p50_ns\":%llu,\"p99_ns\":%llu,"
          "\"p999_ns\":%llu}",
          first ? "" : ",", kOpKindNames[k],
          static_cast<unsigned long long>(h.Count()),
          static_cast<unsigned long long>(h.Percentile(0.50)),
          static_cast<unsigned long long>(h.Percentile(0.99)),
          static_cast<unsigned long long>(h.Percentile(0.999)));
      first = false;
      ops_json += buf;
    }
    ops_json += "}";
    std::printf(
        "{\"bench\":\"bb_serve\",\"config\":\"%s\",\"slo\":{"
        "\"target_qps\":%.17g,\"achieved_qps\":%.17g,\"requests\":%llu,"
        "\"replies\":%llu,\"errors\":%llu,\"p50_ns\":%llu,"
        "\"p99_ns\":%llu,\"p999_ns\":%llu,\"max_ns\":%llu},"
        "\"ops\":%s}\n",
        bench::JsonEscape(config).c_str(), cfg.qps, achieved_qps,
        static_cast<unsigned long long>(total.requests),
        static_cast<unsigned long long>(total.replies),
        static_cast<unsigned long long>(total.errors),
        static_cast<unsigned long long>(p50),
        static_cast<unsigned long long>(p99),
        static_cast<unsigned long long>(p999),
        static_cast<unsigned long long>(max_ns), ops_json.c_str());
  }

  // --slo-target: run the monitor's burn-rate math over the whole run.
  // Burn > 1 means the error budget was consumed faster than it
  // accrues, i.e. this build cannot hold the stated SLO at this load.
  if (cfg.slo_target > 0) {
    obs::SloConfig sc;
    sc.availability_target = cfg.slo_target;
    sc.latency_threshold_ns =
        static_cast<uint64_t>(cfg.slo_latency_ms * 1e6);
    sc.latency_target = cfg.slo_latency_target;
    sc.window_s = elapsed_s;
    obs::SloWindowDelta delta;
    delta.requests = total.requests;
    delta.errors =
        total.errors + (total.requests - total.replies);  // lost = error
    delta.latency_samples = total.latency_ns.Count();
    delta.under_threshold =
        total.latency_ns.CountBelow(sc.latency_threshold_ns);
    delta.seconds = elapsed_s;
    const obs::SloReport rep = obs::EvaluateSlo(sc, delta);
    std::printf("\nSLO check: availability %.5f (target %.5f, burn "
                "%.2f), latency-ok %.5f (target %.5f at %.1f ms, burn "
                "%.2f)\n",
                rep.availability, sc.availability_target,
                rep.availability_burn, rep.latency_ok_fraction,
                sc.latency_target, cfg.slo_latency_ms, rep.latency_burn);
    bench::EmitJson("bb_serve", config, "availability_burn_rate",
                    rep.availability_burn);
    bench::EmitJson("bb_serve", config, "latency_burn_rate",
                    rep.latency_burn);
    if (rep.max_burn() > 1.0) {
      std::fprintf(stderr,
                   "SLO burn breach: max burn %.2f > 1.0 — failing\n",
                   rep.max_burn());
      return 1;
    }
  }

  // A run that produced no replies (server down, total stall) is a
  // failure even if nothing errored outright.
  return total.replies > 0 ? 0 : 1;
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  simdtree::Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (std::strncmp(argv[i], "--host=", 7) == 0) {
      cfg.host = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--port=", 7) == 0) {
      cfg.port = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--qps=", 6) == 0) {
      cfg.qps = std::atof(argv[i] + 6);
    } else if (std::strncmp(argv[i], "--conns=", 8) == 0) {
      cfg.conns = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--pipeline=", 11) == 0) {
      cfg.pipeline = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--write-frac=", 13) == 0) {
      cfg.write_frac = std::atof(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--mget-frac=", 12) == 0) {
      cfg.mget_frac = std::atof(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--lb-frac=", 10) == 0) {
      cfg.lb_frac = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--slo-target=", 13) == 0) {
      cfg.slo_target = std::atof(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--slo-latency-ms=", 17) == 0) {
      cfg.slo_latency_ms = std::atof(argv[i] + 17);
    } else if (std::strncmp(argv[i], "--slo-latency-target=", 21) == 0) {
      cfg.slo_latency_target = std::atof(argv[i] + 21);
    } else if (std::strcmp(argv[i], "--ab-spans") == 0) {
      cfg.ab_spans = true;
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      cfg.reps = std::atoi(argv[i] + 7);
      if (cfg.reps < 1) cfg.reps = 1;
    } else if (std::strncmp(argv[i], "--ab-requests=", 14) == 0) {
      cfg.ab_requests = static_cast<uint64_t>(std::atoll(argv[i] + 14));
    } else if (std::strncmp(argv[i], "--hot-frac=", 11) == 0) {
      cfg.hot_frac = std::atof(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--keys=", 7) == 0) {
      cfg.keys = static_cast<size_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      cfg.server_threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      cfg.shards = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--duration-s=", 13) == 0) {
      cfg.duration_s = std::atoi(argv[i] + 13);
    } else {
      std::fprintf(
          stderr,
          "usage: bb_serve [--json] [--smoke] [--port=N] [--host=A]\n"
          "  [--qps=N] [--conns=N] [--pipeline=N] [--write-frac=F]\n"
          "  [--mget-frac=F] [--lb-frac=F] [--hot-frac=F] [--keys=N]\n"
          "  [--threads=N] [--shards=N] [--duration-s=N]\n"
          "  [--slo-target=F] [--slo-latency-ms=F]\n"
          "  [--slo-latency-target=F]\n"
          "  [--ab-spans] [--reps=N] [--ab-requests=N]\n");
      return 2;
    }
  }
  if (cfg.smoke) {
    // CI-sized: a couple of seconds at modest load on a small index.
    cfg.qps = 2000;
    cfg.conns = 2;
    cfg.keys = size_t{1} << 14;
    cfg.duration_s = 2;
    cfg.ab_requests = 20000;
    if (cfg.ab_spans) cfg.reps = 3;
  }
  if (cfg.conns < 1 || cfg.pipeline < 1 || cfg.qps <= 0 ||
      cfg.duration_s < 1 || cfg.keys < 1 || cfg.ab_requests < 1) {
    std::fprintf(stderr, "invalid configuration\n");
    return 2;
  }
  simdtree::bench::EmitJsonHeader();
  if (cfg.ab_spans) return simdtree::RunAbSpans(cfg);
  return simdtree::Run(cfg);
}
