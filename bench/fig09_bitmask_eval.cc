// Regenerates paper Figure 9: the three bitmask-evaluation algorithms
// (bit shifting, switch case, popcount) searching an 8-bit Seg-Tree for
// Single / 5 MB / 100 MB data sets.
//
// Expected shape (paper Section 5.2): popcount wins overall and is
// independent of data-set size (no conditional branches, no pipeline
// flushes); switch case sits between; bit shifting is slowest.

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "segtree/segtree.h"
#include "simd/bitmask_eval.h"
#include "util/table_printer.h"
#include "util/workload.h"

namespace simdtree {
namespace {

using Key = int8_t;
using bench::kProbeCount;

template <typename Eval>
double MeasureEval(const std::vector<Key>& keys,
                   const std::vector<uint64_t>& values,
                   const std::vector<Key>& probes) {
  using Tree = segtree::SegTree<Key, uint64_t, kary::Layout::kBreadthFirst,
                                Eval>;
  Tree tree = Tree::BulkLoad(keys.data(), values.data(), keys.size());
  return bench::CyclesPerOp(
      probes, [&tree](Key probe) { return tree.Contains(probe) ? 1u : 0u; });
}

std::vector<Key> DatasetKeys(const bench::SizeCategory& size) {
  const size_t n_l = 254;          // Table 3, 8-bit row
  const size_t node_bytes = 2296;  // measured node size (matches paper)
  const size_t n =
      size.bytes == 0 ? n_l : size.bytes / node_bytes * n_l;
  return CycledDomainKeys<Key>(n);
}

void Run() {
  bench::PrintBenchHeader(
      "Figure 9: bitmask evaluation algorithms, 8-bit Seg-Tree, avg cycles "
      "per search");
  TablePrinter table({"data", "keys", "bit_shift", "switch_case", "popcount",
                      "best"});
  for (const bench::SizeCategory& size :
       {bench::kSingle, bench::k5MB, bench::k100MB}) {
    const std::vector<Key> keys = DatasetKeys(size);
    const std::vector<uint64_t> values(keys.size(), 1);
    Rng rng(7);
    const std::vector<Key> probes =
        SamplePresentProbes(keys, kProbeCount, rng);
    const double shift = MeasureEval<simd::BitShiftEval>(keys, values, probes);
    const double sw = MeasureEval<simd::SwitchCaseEval>(keys, values, probes);
    const double pop = MeasureEval<simd::PopcountEval>(keys, values, probes);
    const char* best = pop <= sw && pop <= shift
                           ? "popcount"
                           : (sw <= shift ? "switch_case" : "bit_shift");
    table.AddRow({size.name, TablePrinter::Fmt(keys.size()),
                  TablePrinter::Fmt(shift, 0), TablePrinter::Fmt(sw, 0),
                  TablePrinter::Fmt(pop, 0), best});
    const std::string cfg(size.name);
    bench::EmitJson("fig09_bitmask_eval", cfg + "/bit_shift",
                    "cycles_per_search", shift);
    bench::EmitJson("fig09_bitmask_eval", cfg + "/switch_case",
                    "cycles_per_search", sw);
    bench::EmitJson("fig09_bitmask_eval", cfg + "/popcount",
                    "cycles_per_search", pop);
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\npaper Figure 9 shape: popcount is best overall and independent of "
      "data set size.\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  simdtree::Run();
  return 0;
}
