// Regenerates paper Table 2: k values for a 128-bit SIMD register.
//
//   Data type | k value | Parallel comparisons
//   8-bit     | 17      | 16
//   16-bit    | 9       | 8
//   32-bit    | 5       | 4
//   64-bit    | 3       | 2

#include <cstdint>
#include <cstdio>

#include "bench/bench_util.h"
#include "simd/simd128.h"
#include "util/table_printer.h"

namespace simdtree {
namespace {

template <typename T>
void AddRow(TablePrinter* table, const char* name) {
  using Traits = simd::LaneTraits<T>;
  table->AddRow({name, TablePrinter::Fmt(int64_t{Traits::kArity}),
                 TablePrinter::Fmt(int64_t{Traits::kLanes})});
  bench::EmitJson("table2_k_values", std::string(name) + "/k", "k_value",
                  static_cast<double>(Traits::kArity));
  bench::EmitJson("table2_k_values", std::string(name) + "/lanes",
                  "parallel_comparisons", static_cast<double>(Traits::kLanes));
}

void Run() {
  bench::PrintBenchHeader("Table 2: k values for a 128-bit SIMD register");
  TablePrinter table({"Data type", "k value", "Parallel comparisons"});
  AddRow<int8_t>(&table, "8-bit");
  AddRow<int16_t>(&table, "16-bit");
  AddRow<int32_t>(&table, "32-bit");
  AddRow<int64_t>(&table, "64-bit");
  table.Print();
  std::printf("\npaper Table 2: k = 17 / 9 / 5 / 3 with 16 / 8 / 4 / 2 "
              "parallel comparisons.\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  simdtree::Run();
  return 0;
}
