// Overhead of the query-trace flight recorder (obs/trace.h) on Seg-Tree
// point lookups.
//
// The acceptance bar for the tracing subsystem is that compiling the
// hooks in but leaving sampling disabled costs <= 2% throughput versus a
// descent with no tracing code at all. Four modes over the same 16M-key
// Seg-Tree and probe set:
//
//   absent  plain SegTree::Find — no sampling branch anywhere
//   off     sampling branch compiled in, rate 0 (the shipped default)
//   s1024   1-in-1024 sampled traced descents
//   s16     1-in-16 sampled traced descents
//
// Modes are measured round-robin for `--reps` rounds (default 7) and
// each mode's fastest round is reported — interleaving cancels slow
// frequency/thermal drift and min-of-rounds guards against
// timer/scheduler noise. --keys=N shrinks the tree for quick runs.
//
// JSON lines (--json): cycles_per_lookup and mlookups_per_s per mode,
// plus overhead_pct for each mode relative to `absent` — the
// off-vs-absent line is the one EXPERIMENTS.md records.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/simdtree.h"
#include "obs/trace.h"

namespace {

using simdtree::CycleTimer;
using simdtree::bench::CyclesPerOp;
using simdtree::bench::EmitJson;
using Tree = simdtree::segtree::SegTree<uint64_t, uint64_t>;

// One traced-or-not lookup, replicating the wrapper hook
// (core/synchronized.h) without its shared_mutex so the measurement
// isolates the tracing machinery itself.
inline bool LookupWithHook(const Tree& tree, uint64_t key) {
  if (simdtree::obs::TraceShouldSample()) [[unlikely]] {
    simdtree::obs::TraceScope scope;
    const auto v = tree.FindTraced(key, scope.trace());
    scope.Finish();
    return v.has_value();
  }
  return tree.Find(key).has_value();
}

double OneRound(const Tree& tree, const std::vector<uint64_t>& probes,
                bool hook) {
  if (hook) {
    return CyclesPerOp(probes, [&tree](uint64_t k) {
      return LookupWithHook(tree, k) ? 1 : 0;
    });
  }
  return CyclesPerOp(
      probes, [&tree](uint64_t k) { return tree.Find(k).has_value() ? 1 : 0; });
}

}  // namespace

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  size_t num_keys = 16u * 1000 * 1000;
  int reps = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--keys=", 7) == 0) {
      num_keys = static_cast<size_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
      if (reps < 1) reps = 1;
    }
  }

  simdtree::bench::PrintBenchHeader("trace overhead (flight recorder)");
  std::printf("building Seg-Tree with %zu keys...\n", num_keys);
  Tree tree;
  {
    // Sorted bulk insert of even keys; odd probes miss, even probes hit.
    for (size_t i = 0; i < num_keys; ++i) {
      tree.Insert(static_cast<uint64_t>(i) * 2, static_cast<uint64_t>(i));
    }
  }
  simdtree::Rng rng(42);
  std::vector<uint64_t> probes(simdtree::bench::kProbeCount);
  for (auto& p : probes) p = rng.NextBounded(2 * num_keys);

  struct Mode {
    const char* name;
    uint32_t rate;
    bool hook;
  };
  const Mode modes[] = {
      {"absent", 0, false},
      {"off", 0, true},
      {"s1024", 1024, true},
      {"s16", 16, true},
  };

  constexpr size_t kModes = sizeof(modes) / sizeof(modes[0]);
  double best[kModes] = {};
  for (int r = 0; r < reps; ++r) {
    for (size_t m = 0; m < kModes; ++m) {
      simdtree::obs::EnableTracing(modes[m].rate);
      const double c = OneRound(tree, probes, modes[m].hook);
      simdtree::obs::EnableTracing(0);
      if (r == 0 || c < best[m]) best[m] = c;
    }
  }

  const double ghz = CycleTimer::CyclesPerSecond() / 1e9;
  const double absent_cycles = best[0];
  std::printf("%-8s %16s %14s %12s\n", "mode", "cycles/lookup",
              "Mlookups/s", "vs absent");
  for (size_t m = 0; m < kModes; ++m) {
    const double cycles = best[m];
    const double mlps = ghz * 1e3 / cycles;
    const double overhead = (cycles / absent_cycles - 1.0) * 100.0;
    std::printf("%-8s %16.1f %14.2f %+11.2f%%\n", modes[m].name, cycles,
                mlps, overhead);
    EmitJson("bb_trace_overhead", modes[m].name, "cycles_per_lookup",
             cycles);
    EmitJson("bb_trace_overhead", modes[m].name, "mlookups_per_s", mlps);
    EmitJson("bb_trace_overhead", modes[m].name, "overhead_pct", overhead);
  }
  std::printf("\ntraces recorded: %llu (slow: %llu)\n",
              static_cast<unsigned long long>(
                  simdtree::obs::Tracer::Global().recorded()),
              static_cast<unsigned long long>(
                  simdtree::obs::Tracer::Global().slow_recorded()));
  return 0;
}
