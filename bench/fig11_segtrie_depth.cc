// Regenerates paper Figure 11: Seg-Trie, optimized Seg-Trie, and Seg-Tree
// (BF/DF) speedups over the B+-Tree with binary search, for 64-bit keys,
// as a function of tree depth.
//
// Workload concretization (DESIGN.md / EXPERIMENTS.md): all variants use
// the paper's 64-bit Table 3 node configuration (242 keys per node) and
// consecutive keys starting at zero. Because the B+-Tree fanout (243) and
// the 8-bit trie fanout (256) nearly coincide, choosing the key count per
// depth gives *all* structures the same level count — the paper's "all
// tree variants contain the same number of levels and keys":
//
//   depth 1:       242 keys   (one node / one trie byte)
//   depth 2:    58,806 keys   (242*243; two trie bytes)
//   depth 3: 1,638,400 keys   (the paper's "nearly 1.6M keys" example)
//   depth 4: 16,900,000 keys  (> 242*243^2 and > 256^3)
//
// Depths 5-8 would require at least 256^4 = 4.3 billion keys (~68 GB of
// key/value data), which neither this machine nor the paper's 8 GB
// machine can hold; the trend over depths 1-4 is the measurable part of
// the paper's figure (EXPERIMENTS.md discusses this).
//
// Expected shape (paper Section 5.4): the plain Seg-Trie always pays all
// 8 levels, so its speedup grows with depth (it loses at depth 1-2 and
// catches up as the baseline deepens); the optimized Seg-Trie only
// traverses the filled levels and holds the largest, roughly constant
// speedup (paper: ~14x); the Seg-Tree's speedup is small and roughly
// constant for 64-bit keys.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "btree/btree.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "util/table_printer.h"
#include "util/workload.h"

namespace simdtree {
namespace {

using bench::kProbeCount;

template <typename TrieT>
double MeasureTrie(const std::vector<uint64_t>& keys,
                   const std::vector<uint64_t>& probes, int* levels) {
  auto trie = std::make_unique<TrieT>();
  for (size_t i = 0; i < keys.size(); ++i) {
    trie->Insert(keys[i], static_cast<uint64_t>(i));
  }
  *levels = trie->active_levels();
  return bench::CyclesPerOp(probes, [&trie](uint64_t probe) {
    return trie->Contains(probe) ? 1u : 0u;
  });
}

template <typename TreeT>
double MeasureTree(const std::vector<uint64_t>& keys,
                   const std::vector<uint64_t>& values,
                   const std::vector<uint64_t>& probes, int* height) {
  TreeT tree = TreeT::BulkLoad(keys.data(), values.data(), keys.size());
  *height = tree.height();
  return bench::CyclesPerOp(probes, [&tree](uint64_t probe) {
    return tree.Contains(probe) ? 1u : 0u;
  });
}

void Run() {
  bench::PrintBenchHeader(
      "Figure 11: Seg-Trie vs Seg-Tree vs B+-Tree, 64-bit keys, Table 3 "
      "node config, speedup over binary search by tree depth");

  // Key counts per depth; override the largest with SIMDTREE_FIG11_MAX
  // (e.g. for low-memory machines).
  std::vector<size_t> counts = {242, 58806, 1638400, 16900000};
  if (const char* env = std::getenv("SIMDTREE_FIG11_MAX")) {
    counts.back() = std::strtoull(env, nullptr, 10);
  }

  TablePrinter table({"depth", "keys", "B+Tree cyc", "B+T lvls",
                      "SegTree-BF x", "SegTree-DF x", "SegTrie x",
                      "OptSegTrie x", "trie lvls", "opt lvls"});
  for (size_t d = 0; d < counts.size(); ++d) {
    const size_t n = counts[d];
    const std::vector<uint64_t> keys = AscendingKeys<uint64_t>(n, 0);
    const std::vector<uint64_t> values(n, 1);
    Rng rng(11);
    const std::vector<uint64_t> probes =
        SamplePresentProbes(keys, kProbeCount, rng);

    int bt_height = 0;
    int seg_height = 0;
    const double base = MeasureTree<btree::BPlusTree<uint64_t, uint64_t>>(
        keys, values, probes, &bt_height);
    const double seg_bf = MeasureTree<
        segtree::SegTree<uint64_t, uint64_t, kary::Layout::kBreadthFirst>>(
        keys, values, probes, &seg_height);
    const double seg_df = MeasureTree<
        segtree::SegTree<uint64_t, uint64_t, kary::Layout::kDepthFirst>>(
        keys, values, probes, &seg_height);
    int plain_levels = 0;
    int opt_levels = 0;
    const double trie = MeasureTrie<segtrie::SegTrie<uint64_t, uint64_t>>(
        keys, probes, &plain_levels);
    const double opt =
        MeasureTrie<segtrie::OptimizedSegTrie<uint64_t, uint64_t>>(
            keys, probes, &opt_levels);

    table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(d + 1)),
                  TablePrinter::Fmt(n), TablePrinter::Fmt(base, 0),
                  TablePrinter::Fmt(int64_t{bt_height}),
                  TablePrinter::Fmt(base / seg_bf, 2),
                  TablePrinter::Fmt(base / seg_df, 2),
                  TablePrinter::Fmt(base / trie, 2),
                  TablePrinter::Fmt(base / opt, 2),
                  TablePrinter::Fmt(int64_t{plain_levels}),
                  TablePrinter::Fmt(int64_t{opt_levels})});
    const std::string cfg = "depth" + std::to_string(d + 1);
    bench::EmitJson("fig11_segtrie_depth", cfg + "/btree_binary",
                    "cycles_per_search", base);
    bench::EmitJson("fig11_segtrie_depth", cfg + "/segtree_bf",
                    "cycles_per_search", seg_bf);
    bench::EmitJson("fig11_segtrie_depth", cfg + "/segtree_df",
                    "cycles_per_search", seg_df);
    bench::EmitJson("fig11_segtrie_depth", cfg + "/segtrie",
                    "cycles_per_search", trie);
    bench::EmitJson("fig11_segtrie_depth", cfg + "/opt_segtrie",
                    "cycles_per_search", opt);
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\npaper Figure 11 shape over the realizable depths: optimized "
      "Seg-Trie holds the\nlargest, roughly constant speedup (paper: "
      "~14x); the plain Seg-Trie (always 8\nlevels) starts behind and "
      "catches up as the baseline deepens; Seg-Tree speedups\nare small "
      "and roughly constant. Depths 5-8 need >= 256^4 keys (~68 GB) and "
      "are\nunrealizable on this machine and on the paper's 8 GB machine "
      "alike.\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  simdtree::Run();
  return 0;
}
