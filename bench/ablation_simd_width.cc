// Extension bench (paper Section 7, future work): "As the SIMD bandwidth
// will increase in the future, index structures using SIMD instructions
// will further benefit by increased performance."
//
// Compares the 128-bit SSE backend (the paper's setup, k = 17/9/5/3)
// against the 256-bit AVX2 backend (k = 33/17/9/5) on the k-ary search
// kernel and on full Seg-Tree lookups. Wider registers halve the number
// of k-ary levels roughly every squaring of k, so compute-bound (cache-
// resident) searches should gain; memory-bound ones should not.

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "kary/kary_array.h"
#include "segtree/segtree.h"
#include "simd/simd256.h"
#include "util/table_printer.h"
#include "util/workload.h"

namespace simdtree {
namespace {

using bench::kProbeCount;

#if defined(__AVX2__)

template <typename T, int kBits>
double MeasureKernel(const std::vector<T>& keys,
                     const std::vector<T>& probes) {
  kary::KaryArray<T, kBits> arr(keys, kary::Layout::kBreadthFirst);
  return bench::CyclesPerOp(probes,
                            [&](T v) { return arr.UpperBound(v); });
}

template <typename T, int kBits>
double MeasureSegTree(const std::vector<T>& keys,
                      const std::vector<uint64_t>& values,
                      const std::vector<T>& probes) {
  using Tree = segtree::SegTree<T, uint64_t, kary::Layout::kBreadthFirst,
                                simd::PopcountEval, simd::kDefaultBackend,
                                kBits>;
  Tree tree = Tree::BulkLoad(keys.data(), values.data(), keys.size());
  return bench::CyclesPerOp(
      probes, [&tree](T v) { return tree.Contains(v) ? 1u : 0u; });
}

template <typename T>
void RunType(const char* name, TablePrinter* kernel_table,
             TablePrinter* tree_table) {
  Rng rng(3);
  // Kernel: cache-resident flat array (the compute-bound regime).
  {
    const size_t n = sizeof(T) <= 2 ? 4096 : 16384;
    std::vector<T> keys = UniformDistinctKeys<T>(n, rng);
    const std::vector<T> probes = SamplePresentProbes(keys, kProbeCount, rng);
    const double c128 = MeasureKernel<T, 128>(keys, probes);
    const double c256 = MeasureKernel<T, 256>(keys, probes);
    kernel_table->AddRow({name, TablePrinter::Fmt(n),
                          TablePrinter::Fmt(c128, 1),
                          TablePrinter::Fmt(c256, 1),
                          TablePrinter::Fmt(c128 / c256, 2)});
    bench::EmitJson("ablation_simd_width",
                    std::string(name) + "/kernel/128", "cycles_per_search",
                    c128);
    bench::EmitJson("ablation_simd_width",
                    std::string(name) + "/kernel/256", "cycles_per_search",
                    c256);
  }
  // Full tree at ~5 MB (mixed compute/cache regime).
  {
    std::vector<T> keys;
    if constexpr (sizeof(T) <= 2) {
      keys = CycledDomainKeys<T>(400000);
    } else {
      keys = AscendingKeys<T>(400000, T{0});
    }
    const std::vector<uint64_t> values(keys.size(), 1);
    const std::vector<T> probes = SamplePresentProbes(keys, kProbeCount, rng);
    const double c128 = MeasureSegTree<T, 128>(keys, values, probes);
    const double c256 = MeasureSegTree<T, 256>(keys, values, probes);
    tree_table->AddRow({name, TablePrinter::Fmt(keys.size()),
                        TablePrinter::Fmt(c128, 1),
                        TablePrinter::Fmt(c256, 1),
                        TablePrinter::Fmt(c128 / c256, 2)});
    bench::EmitJson("ablation_simd_width", std::string(name) + "/tree/128",
                    "cycles_per_search", c128);
    bench::EmitJson("ablation_simd_width", std::string(name) + "/tree/256",
                    "cycles_per_search", c256);
  }
}

void Run() {
  bench::PrintBenchHeader(
      "Extension: 128-bit SSE vs 256-bit AVX2 register width");
  TablePrinter kernel_table(
      {"type", "keys", "128-bit cyc", "256-bit cyc", "speedup"});
  TablePrinter tree_table(
      {"type", "keys", "128-bit cyc", "256-bit cyc", "speedup"});
  RunType<int8_t>("8-bit", &kernel_table, &tree_table);
  RunType<int16_t>("16-bit", &kernel_table, &tree_table);
  RunType<int32_t>("32-bit", &kernel_table, &tree_table);
  RunType<int64_t>("64-bit", &kernel_table, &tree_table);
  std::printf("k-ary search kernel (cache-resident array):\n");
  kernel_table.Print();
  std::printf("\nSeg-Tree point lookups (~400k keys):\n");
  tree_table.Print();
  std::printf(
      "\npaper prediction: wider SIMD helps; the gain is bounded by "
      "log_k(n) shrinking\nonly logarithmically in k and vanishes once "
      "cache misses dominate.\n");
}

#else
void Run() {
  std::printf("AVX2 not available in this build; skipping.\n");
}
#endif

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  simdtree::Run();
  return 0;
}
