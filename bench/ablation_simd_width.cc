// Extension bench (paper Section 7, future work): "As the SIMD bandwidth
// will increase in the future, index structures using SIMD instructions
// will further benefit by increased performance."
//
// Sweeps the register width across 128 (SSE, the paper's setup,
// k = 17/9/5/3), 256 (AVX2, k = 33/17/9/5), and 512 bits (AVX-512,
// k = 65/33/17/9) on the k-ary search kernel and on full Seg-Tree
// lookups. All structures search through the default runtime-dispatch
// backend, so each width runs on the widest implementation this host
// supports — its effective backend (simd::EffectiveBackendName) is
// printed per column and emitted per config, because a 512-bit layout
// searched by the scalar image answers a different question than one
// searched by native EVEX kernels. Wider registers halve the number of
// k-ary levels roughly every squaring of k, so compute-bound
// (cache-resident) searches should gain; memory-bound ones should not.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "kary/kary_array.h"
#include "segtree/segtree.h"
#include "simd/dispatch.h"
#include "simd/simd256.h"
#include "simd/simd512.h"
#include "util/table_printer.h"
#include "util/workload.h"

namespace simdtree {
namespace {

using bench::kProbeCount;

template <typename T, int kBits>
double MeasureKernel(const std::vector<T>& keys,
                     const std::vector<T>& probes) {
  kary::KaryArray<T, kBits> arr(keys, kary::Layout::kBreadthFirst);
  return bench::CyclesPerOp(probes,
                            [&](T v) { return arr.UpperBound(v); });
}

template <typename T, int kBits>
double MeasureSegTree(const std::vector<T>& keys,
                      const std::vector<uint64_t>& values,
                      const std::vector<T>& probes) {
  using Tree = segtree::SegTree<T, uint64_t, kary::Layout::kBreadthFirst,
                                simd::PopcountEval, simd::kDefaultBackend,
                                kBits>;
  Tree tree = Tree::BulkLoad(keys.data(), values.data(), keys.size());
  return bench::CyclesPerOp(
      probes, [&tree](T v) { return tree.Contains(v) ? 1u : 0u; });
}

// Emits the per-width JSON lines for one measured point: the cycle
// count, the width's k (arity — the paper's node fanout), and which
// implementation actually served the searches on this host.
template <typename T, int kBits>
void EmitWidthJson(const std::string& config, double cycles) {
  bench::EmitJson("ablation_simd_width", config, "cycles_per_search", cycles);
  bench::EmitJson("ablation_simd_width", config, "k",
                  simd::LaneTraits<T, kBits>::kArity);
  bench::EmitJson("ablation_simd_width", config,
                  std::string("backend_is_") +
                      simd::EffectiveBackendName(kBits),
                  1.0);
}

template <typename T>
void RunType(const char* name, TablePrinter* kernel_table,
             TablePrinter* tree_table) {
  Rng rng(3);
  // Kernel: cache-resident flat array (the compute-bound regime).
  {
    // 8-bit keys only have 256 distinct values; stay inside the domain.
    const size_t n = sizeof(T) == 1 ? 200 : sizeof(T) == 2 ? 4096 : 16384;
    std::vector<T> keys = UniformDistinctKeys<T>(n, rng);
    const std::vector<T> probes = SamplePresentProbes(keys, kProbeCount, rng);
    const double c128 = MeasureKernel<T, 128>(keys, probes);
    const double c256 = MeasureKernel<T, 256>(keys, probes);
    const double c512 = MeasureKernel<T, 512>(keys, probes);
    kernel_table->AddRow({name, TablePrinter::Fmt(n),
                          TablePrinter::Fmt(c128, 1),
                          TablePrinter::Fmt(c256, 1),
                          TablePrinter::Fmt(c512, 1),
                          TablePrinter::Fmt(c128 / c256, 2),
                          TablePrinter::Fmt(c128 / c512, 2)});
    EmitWidthJson<T, 128>(std::string(name) + "/kernel/128", c128);
    EmitWidthJson<T, 256>(std::string(name) + "/kernel/256", c256);
    EmitWidthJson<T, 512>(std::string(name) + "/kernel/512", c512);
  }
  // Full tree at ~5 MB (mixed compute/cache regime).
  {
    std::vector<T> keys;
    if constexpr (sizeof(T) <= 2) {
      keys = CycledDomainKeys<T>(400000);
    } else {
      keys = AscendingKeys<T>(400000, T{0});
    }
    const std::vector<uint64_t> values(keys.size(), 1);
    const std::vector<T> probes = SamplePresentProbes(keys, kProbeCount, rng);
    const double c128 = MeasureSegTree<T, 128>(keys, values, probes);
    const double c256 = MeasureSegTree<T, 256>(keys, values, probes);
    const double c512 = MeasureSegTree<T, 512>(keys, values, probes);
    tree_table->AddRow({name, TablePrinter::Fmt(keys.size()),
                        TablePrinter::Fmt(c128, 1),
                        TablePrinter::Fmt(c256, 1),
                        TablePrinter::Fmt(c512, 1),
                        TablePrinter::Fmt(c128 / c256, 2),
                        TablePrinter::Fmt(c128 / c512, 2)});
    EmitWidthJson<T, 128>(std::string(name) + "/tree/128", c128);
    EmitWidthJson<T, 256>(std::string(name) + "/tree/256", c256);
    EmitWidthJson<T, 512>(std::string(name) + "/tree/512", c512);
  }
}

void Run() {
  bench::PrintBenchHeader(
      "Extension: 128/256/512-bit register-width sweep");
  std::printf(
      "effective backends: 128-bit=%s 256-bit=%s 512-bit=%s (dispatch=%s%s)\n\n",
      simd::EffectiveBackendName(128), simd::EffectiveBackendName(256),
      simd::EffectiveBackendName(512), simd::ActiveDispatchName(),
      simd::ActiveDispatch().forced ? ", forced" : "");
  TablePrinter kernel_table({"type", "keys", "128b cyc", "256b cyc",
                             "512b cyc", "spdup256", "spdup512"});
  TablePrinter tree_table({"type", "keys", "128b cyc", "256b cyc",
                           "512b cyc", "spdup256", "spdup512"});
  RunType<int8_t>("8-bit", &kernel_table, &tree_table);
  RunType<int16_t>("16-bit", &kernel_table, &tree_table);
  RunType<int32_t>("32-bit", &kernel_table, &tree_table);
  RunType<int64_t>("64-bit", &kernel_table, &tree_table);
  std::printf("k-ary search kernel (cache-resident array):\n");
  kernel_table.Print();
  std::printf("\nSeg-Tree point lookups (~400k keys):\n");
  tree_table.Print();
  std::printf(
      "\npaper prediction: wider SIMD helps; the gain is bounded by "
      "log_k(n) shrinking\nonly logarithmically in k and vanishes once "
      "cache misses dominate. A width whose\neffective backend is "
      "'scalar' measures the layout, not the instruction set.\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  simdtree::Run();
  return 0;
}
