// Hardware-counter sections for the bench binaries.
//
// Wraps obs::PerfCounterGroup (perf_event_open) in the bench JSON-line
// protocol: a measured phase emits one line per hardware metric when the
// counters are available, and a single `"hw":null` line when they are
// not (perf_event_open denied — unprivileged containers, CI runners, or
// SIMDTREE_DISABLE_PERF=1). Collectors can therefore always distinguish
// "counters absent" from "bench did not run".
//
//   {"bench":"bb_hw_profile","config":"btree/5MB","metric":"instructions_per_op","value":312.5}
//   ...
//   {"bench":"bb_hw_profile","config":"btree/5MB","hw":null}

#ifndef SIMDTREE_BENCH_HW_SECTION_H_
#define SIMDTREE_BENCH_HW_SECTION_H_

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "obs/perf_counters.h"

namespace simdtree::bench {

// Emits the unavailability marker line (no-op unless --json).
inline void EmitHwNull(const std::string& bench, const std::string& config) {
  if (!JsonEnabled()) return;
  std::printf("{\"bench\":\"%s\",\"config\":\"%s\",\"hw\":null}\n",
              JsonEscape(bench).c_str(), JsonEscape(config).c_str());
}

// Emits the per-operation hardware metrics of a measured phase as JSON
// lines, or the `"hw":null` marker when `counts` is invalid. Also prints
// a compact human-readable line to the table output.
inline void ReportHwSection(const std::string& bench,
                            const std::string& config,
                            const obs::HwCounts& counts, double ops) {
  if (!counts.valid || ops <= 0) {
    std::printf("  hw[%s]: n/a (perf_event_open unavailable)\n",
                config.c_str());
    EmitHwNull(bench, config);
    return;
  }
  std::printf(
      "  hw[%s]: %.1f instr/op  %.1f cycles/op  IPC %.2f  "
      "%.3f LLC-miss/op  %.3f br-miss/op  %.3f dTLB-miss/op  "
      "(scale %.2f)\n",
      config.c_str(), counts.instructions / ops, counts.cycles / ops,
      counts.ipc(), counts.llc_misses / ops, counts.branch_misses / ops,
      counts.dtlb_misses / ops, counts.scale);
  EmitJson(bench, config, "hw_instructions_per_op", counts.instructions / ops);
  EmitJson(bench, config, "hw_cycles_per_op", counts.cycles / ops);
  EmitJson(bench, config, "hw_ipc", counts.ipc());
  EmitJson(bench, config, "hw_llc_misses_per_op", counts.llc_misses / ops);
  EmitJson(bench, config, "hw_branch_misses_per_op",
           counts.branch_misses / ops);
  EmitJson(bench, config, "hw_dtlb_misses_per_op", counts.dtlb_misses / ops);
  EmitJson(bench, config, "hw_multiplex_scale", counts.scale);
}

// Measures `fn()` (which should perform `ops` operations) under the
// hardware counter group and reports the per-op metrics. When the
// counters are unavailable, `fn` still runs once so the section's side
// effects (checksums) stay identical, and the null marker is emitted.
template <typename Fn>
void HwSection(const std::string& bench, const std::string& config,
               double ops, Fn&& fn) {
  if (!obs::PerfCounterGroup::Available()) {
    fn();
    ReportHwSection(bench, config, obs::HwCounts{}, ops);
    return;
  }
  obs::PerfCounterGroup group;
  const obs::HwCounts counts = group.Measure(fn);
  ReportHwSection(bench, config, counts, ops);
}

}  // namespace simdtree::bench

#endif  // SIMDTREE_BENCH_HW_SECTION_H_
