// Ablation (paper Section 3.2): the cost of keeping keys linearized under
// inserts.
//
// "Inserting a new key into a linearized node that falls in between two
// existing keys requires a reordering of all existing keys. [...] we can
// leverage a particular property in case of continuous filling with
// ascending key values. [...] Therefore, the Seg-Tree is advantageous for
// workloads with few inserts."
//
// This bench quantifies exactly that: insert throughput of the baseline
// B+-Tree vs the Seg-Tree under (a) ascending inserts (the no-reordering
// append fast path) and (b) uniformly random inserts (every insert
// relinearizes one node), plus the read payoff afterwards.

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "btree/btree.h"
#include "segtree/segtree.h"
#include "util/cycle_timer.h"
#include "util/table_printer.h"
#include "util/workload.h"

namespace simdtree {
namespace {

constexpr size_t kInserts = 400000;

template <typename TreeT>
double InsertCycles(const std::vector<uint32_t>& keys) {
  TreeT tree;
  const uint64_t t0 = CycleTimer::Now();
  for (size_t i = 0; i < keys.size(); ++i) {
    tree.Insert(keys[i], static_cast<uint64_t>(i));
  }
  const uint64_t cycles = CycleTimer::Now() - t0;
  if (tree.size() != keys.size()) std::abort();
  return static_cast<double>(cycles) / static_cast<double>(keys.size());
}

template <typename TreeT>
double FindCyclesAfterInserts(const std::vector<uint32_t>& keys) {
  TreeT tree;
  for (size_t i = 0; i < keys.size(); ++i) {
    tree.Insert(keys[i], static_cast<uint64_t>(i));
  }
  Rng rng(3);
  const auto probes = SamplePresentProbes(keys, bench::kProbeCount, rng);
  return bench::CyclesPerOp(
      probes, [&tree](uint32_t v) { return tree.Contains(v) ? 1u : 0u; });
}

void Run() {
  bench::PrintBenchHeader(
      "Ablation: insert reordering overhead (32-bit keys, 400k inserts)");

  const std::vector<uint32_t> ascending =
      AscendingKeys<uint32_t>(kInserts, 0);
  Rng rng(1);
  std::vector<uint32_t> random(kInserts);
  for (auto& k : random) k = rng.Next() & 0xFFFFFFFFu;

  using BT = btree::BPlusTree<uint32_t, uint64_t>;
  using ST = segtree::SegTree<uint32_t, uint64_t>;

  TablePrinter table({"workload", "B+Tree ins cyc", "Seg-Tree ins cyc",
                      "insert overhead", "B+Tree find cyc",
                      "Seg-Tree find cyc", "find speedup"});
  {
    const double bt_ins = InsertCycles<BT>(ascending);
    const double st_ins = InsertCycles<ST>(ascending);
    const double bt_find = FindCyclesAfterInserts<BT>(ascending);
    const double st_find = FindCyclesAfterInserts<ST>(ascending);
    table.AddRow({"ascending (append path)", TablePrinter::Fmt(bt_ins, 0),
                  TablePrinter::Fmt(st_ins, 0),
                  TablePrinter::Fmt(st_ins / bt_ins, 2),
                  TablePrinter::Fmt(bt_find, 0),
                  TablePrinter::Fmt(st_find, 0),
                  TablePrinter::Fmt(bt_find / st_find, 2)});
    bench::EmitJson("ablation_insert_reorder", "ascending/btree",
                    "insert_cycles", bt_ins);
    bench::EmitJson("ablation_insert_reorder", "ascending/segtree",
                    "insert_cycles", st_ins);
    bench::EmitJson("ablation_insert_reorder", "ascending/btree",
                    "find_cycles", bt_find);
    bench::EmitJson("ablation_insert_reorder", "ascending/segtree",
                    "find_cycles", st_find);
  }
  {
    const double bt_ins = InsertCycles<BT>(random);
    const double st_ins = InsertCycles<ST>(random);
    const double bt_find = FindCyclesAfterInserts<BT>(random);
    const double st_find = FindCyclesAfterInserts<ST>(random);
    table.AddRow({"uniform random (reorder)", TablePrinter::Fmt(bt_ins, 0),
                  TablePrinter::Fmt(st_ins, 0),
                  TablePrinter::Fmt(st_ins / bt_ins, 2),
                  TablePrinter::Fmt(bt_find, 0),
                  TablePrinter::Fmt(st_find, 0),
                  TablePrinter::Fmt(bt_find / st_find, 2)});
    bench::EmitJson("ablation_insert_reorder", "random/btree",
                    "insert_cycles", bt_ins);
    bench::EmitJson("ablation_insert_reorder", "random/segtree",
                    "insert_cycles", st_ins);
    bench::EmitJson("ablation_insert_reorder", "random/btree", "find_cycles",
                    bt_find);
    bench::EmitJson("ablation_insert_reorder", "random/segtree",
                    "find_cycles", st_find);
  }
  table.Print();
  std::printf(
      "\npaper expectation (Section 3.2): ascending inserts avoid "
      "reordering entirely\n(small overhead vs the baseline), random "
      "inserts pay an O(node) relinearization\nper insert — 'for "
      "workloads with high insert rates the reordering overhead\nprobably "
      "eliminates the speedup of an accelerated search'.\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  simdtree::Run();
  return 0;
}
