// --json support for the google-benchmark binaries, matching the JSON-line
// schema of bench_util.h (google-benchmark's own --benchmark_format=json
// emits a single document in a different shape; the shared line format
// lets one collector scrape every binary the same way).

#ifndef SIMDTREE_BENCH_GBENCH_JSON_H_
#define SIMDTREE_BENCH_GBENCH_JSON_H_

#include <cstring>
#include <ostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "benchmark/benchmark.h"

namespace simdtree::bench {

// Console reporter that additionally emits one JSON line per finished run
// (cpu time plus every user counter) when --json was passed.
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  // Color escapes would glue themselves onto the JSON lines (the reset
  // code is written after the row's newline), so the table is plain.
  explicit JsonLineReporter(std::string bench_name)
      : benchmark::ConsoleReporter(OO_Tabular), bench_(std::move(bench_name)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    if (!JsonEnabled()) return;
    // The console table goes through an ostream, the JSON lines through
    // stdio; flush both so the lines never interleave mid-row.
    GetOutputStream().flush();
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      EmitJson(bench_, run.benchmark_name(), "cpu_time_ns",
               run.GetAdjustedCPUTime());
      for (const auto& [name, counter] : run.counters) {
        EmitJson(bench_, run.benchmark_name(), name, counter.value);
      }
    }
    std::fflush(stdout);
  }

 private:
  std::string bench_;
};

// Drop-in replacement for BENCHMARK_MAIN()'s body: strips --json from the
// arguments (google-benchmark rejects flags it does not know), then runs
// everything through the JSON-line reporter.
inline int GBenchMain(int argc, char** argv, const char* bench_name) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--json") == 0) {
      JsonEnabled() = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  JsonLineReporter reporter(bench_name);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}

}  // namespace simdtree::bench

#endif  // SIMDTREE_BENCH_GBENCH_JSON_H_
