// google-benchmark microbench: end-to-end point lookups across all four
// index structures on one million distinct 64-bit keys, plus insert and
// range-scan throughput for the tree structures.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "bench/gbench_json.h"
#include "bench/hw_section.h"
#include "btree/btree.h"
#include "segtree/segtree.h"
#include "segtrie/compressed_segtrie.h"
#include "segtrie/segtrie.h"
#include "util/rng.h"
#include "util/workload.h"

namespace simdtree {
namespace {

constexpr size_t kKeys = 1u << 20;
constexpr size_t kProbes = 4096;

struct Data {
  std::vector<uint64_t> keys;
  std::vector<uint64_t> values;
  std::vector<uint64_t> probes;

  Data() {
    Rng rng(99);
    keys = UniformDistinctKeys<uint64_t>(kKeys, rng);
    values.assign(keys.begin(), keys.end());
    probes = SamplePresentProbes(keys, kProbes, rng);
  }
};

const Data& SharedData() {
  static const Data* data = new Data();
  return *data;
}

template <typename TreeT>
void BM_TreeFind(benchmark::State& state) {
  const Data& d = SharedData();
  TreeT tree = TreeT::BulkLoad(d.keys.data(), d.values.data(), d.keys.size());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Contains(d.probes[i]));
    i = (i + 1) % d.probes.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

template <typename TrieT>
void BM_TrieFind(benchmark::State& state) {
  const Data& d = SharedData();
  auto trie = std::make_unique<TrieT>();
  for (size_t i = 0; i < d.keys.size(); ++i) {
    trie->Insert(d.keys[i], d.values[i]);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie->Contains(d.probes[i]));
    i = (i + 1) % d.probes.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

template <typename TreeT>
void BM_TreeInsertAscending(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    TreeT tree;
    for (int64_t i = 0; i < n; ++i) {
      tree.Insert(static_cast<uint64_t>(i), static_cast<uint64_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

template <typename TreeT>
void BM_TreeRangeScan1000(benchmark::State& state) {
  const Data& d = SharedData();
  TreeT tree = TreeT::BulkLoad(d.keys.data(), d.values.data(), d.keys.size());
  Rng rng(5);
  for (auto _ : state) {
    const size_t start = rng.NextBounded(d.keys.size() - 1001);
    const uint64_t lo = d.keys[start];
    const uint64_t hi = d.keys[start + 1000];
    uint64_t sum = 0;
    tree.ScanRange(lo, hi, [&](uint64_t k, uint64_t) { sum += k; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}

using BTree = btree::BPlusTree<uint64_t, uint64_t>;
using BTreeSeq =
    btree::BPlusTree<uint64_t, uint64_t, btree::SequentialSearchTag>;
using SegBF = segtree::SegTree<uint64_t, uint64_t,
                               kary::Layout::kBreadthFirst>;
using SegDF = segtree::SegTree<uint64_t, uint64_t,
                               kary::Layout::kDepthFirst>;

BENCHMARK(BM_TreeFind<BTree>)->Name("Find/BPlusTree_binary");
BENCHMARK(BM_TreeFind<BTreeSeq>)->Name("Find/BPlusTree_sequential");
BENCHMARK(BM_TreeFind<SegBF>)->Name("Find/SegTree_bf");
BENCHMARK(BM_TreeFind<SegDF>)->Name("Find/SegTree_df");
BENCHMARK(BM_TrieFind<segtrie::SegTrie<uint64_t, uint64_t>>)
    ->Name("Find/SegTrie");
BENCHMARK(BM_TrieFind<segtrie::OptimizedSegTrie<uint64_t, uint64_t>>)
    ->Name("Find/OptimizedSegTrie");
BENCHMARK(BM_TrieFind<segtrie::CompressedSegTrie<uint64_t, uint64_t>>)
    ->Name("Find/CompressedSegTrie");
BENCHMARK(BM_TreeInsertAscending<BTree>)
    ->Name("InsertAscending/BPlusTree")
    ->Arg(100000);
BENCHMARK(BM_TreeInsertAscending<SegBF>)
    ->Name("InsertAscending/SegTree_bf")
    ->Arg(100000);
BENCHMARK(BM_TreeRangeScan1000<BTree>)->Name("RangeScan1000/BPlusTree");
BENCHMARK(BM_TreeRangeScan1000<SegBF>)->Name("RangeScan1000/SegTree_bf");

// Hardware view of the end-to-end lookup phase: instructions, LLC
// misses, and branch mispredictions per Find for the binary-search
// B+-Tree against the SIMD Seg-Tree on the shared 1M-key data set —
// the per-structure half of the paper's Figures 9-11 story.
void HwPhase() {
  constexpr int kPasses = 8;
  const Data& d = SharedData();
  const double ops =
      static_cast<double>(d.probes.size()) * static_cast<double>(kPasses);

  uint64_t sink = 0;
  {
    BTree tree =
        BTree::BulkLoad(d.keys.data(), d.values.data(), d.keys.size());
    bench::HwSection("bb_trees", "hw/Find/BPlusTree_binary", ops, [&] {
      for (int pass = 0; pass < kPasses; ++pass) {
        for (uint64_t p : d.probes) {
          sink += static_cast<uint64_t>(tree.Contains(p));
        }
      }
    });
  }
  {
    SegBF tree =
        SegBF::BulkLoad(d.keys.data(), d.values.data(), d.keys.size());
    bench::HwSection("bb_trees", "hw/Find/SegTree_bf", ops, [&] {
      for (int pass = 0; pass < kPasses; ++pass) {
        for (uint64_t p : d.probes) {
          sink += static_cast<uint64_t>(tree.Contains(p));
        }
      }
    });
  }
  if (sink == 0xDEADBEEFDEADBEEFULL) std::fprintf(stderr, "\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  simdtree::HwPhase();
  return simdtree::bench::GBenchMain(argc, argv, "bb_trees");
}
