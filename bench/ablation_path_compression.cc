// Extension bench: path compression for the Seg-Trie (named applicable
// but unimplemented in paper Section 4).
//
// Workloads where keys share long single-key runs — sparse identifiers,
// composite keys with constant middle bytes — force the plain and
// optimized Seg-Tries to walk one node per level regardless of how few of
// those levels branch. Path compression collapses the runs, so lookups
// touch only branching nodes. This bench measures all three tries (plus
// the baseline B+-Tree) on progressively deeper sparse key sets — the
// regime in which Figure 11's deep-depth points live.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "btree/btree.h"
#include "segtrie/compressed_segtrie.h"
#include "segtrie/segtrie.h"
#include "util/table_printer.h"
#include "util/workload.h"

namespace simdtree {
namespace {

using bench::kProbeCount;

template <typename TrieT>
double MeasureTrie(const std::vector<uint64_t>& keys,
                   const std::vector<uint64_t>& probes, size_t* nodes,
                   size_t* mem) {
  auto trie = std::make_unique<TrieT>();
  for (size_t i = 0; i < keys.size(); ++i) {
    trie->Insert(keys[i], static_cast<uint64_t>(i));
  }
  const auto stats = trie->Stats();
  *nodes = stats.nodes;
  *mem = stats.memory_bytes;
  return bench::CyclesPerOp(probes, [&trie](uint64_t probe) {
    return trie->Contains(probe) ? 1u : 0u;
  });
}

void Run() {
  bench::PrintBenchHeader(
      "Extension: path-compressed Seg-Trie on sparse deep key sets");
  TablePrinter table({"depth", "keys", "B+Tree cyc", "SegTrie cyc",
                      "OptTrie cyc", "Compressed cyc", "SegTrie nodes",
                      "Compressed nodes", "mem ratio"});
  for (int depth : {2, 4, 6, 8}) {
    // Mixed-radix keys: `depth` low bytes with 8 values each -> 8^depth
    // sparse keys whose trie nodes hold only 8 entries per level.
    const std::vector<uint64_t> keys = MixedRadixKeys(depth, 8);
    const std::vector<uint64_t> values(keys.size(), 1);
    Rng rng(7);
    const std::vector<uint64_t> probes =
        SamplePresentProbes(keys, kProbeCount, rng);

    btree::BPlusTree<uint64_t, uint64_t> bt = btree::BPlusTree<
        uint64_t, uint64_t>::BulkLoad(keys.data(), values.data(),
                                      keys.size());
    const double bt_cyc = bench::CyclesPerOp(probes, [&bt](uint64_t p) {
      return bt.Contains(p) ? 1u : 0u;
    });

    size_t plain_nodes = 0, plain_mem = 0;
    size_t opt_nodes = 0, opt_mem = 0;
    size_t comp_nodes = 0, comp_mem = 0;
    const double plain_cyc = MeasureTrie<segtrie::SegTrie<uint64_t, uint64_t>>(
        keys, probes, &plain_nodes, &plain_mem);
    const double opt_cyc =
        MeasureTrie<segtrie::OptimizedSegTrie<uint64_t, uint64_t>>(
            keys, probes, &opt_nodes, &opt_mem);
    const double comp_cyc =
        MeasureTrie<segtrie::CompressedSegTrie<uint64_t, uint64_t>>(
            keys, probes, &comp_nodes, &comp_mem);

    table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(depth)),
                  TablePrinter::Fmt(keys.size()),
                  TablePrinter::Fmt(bt_cyc, 0),
                  TablePrinter::Fmt(plain_cyc, 0),
                  TablePrinter::Fmt(opt_cyc, 0),
                  TablePrinter::Fmt(comp_cyc, 0),
                  TablePrinter::Fmt(plain_nodes),
                  TablePrinter::Fmt(comp_nodes),
                  TablePrinter::Fmt(static_cast<double>(plain_mem) /
                                        static_cast<double>(comp_mem),
                                    2)});
    const std::string cfg = "depth" + std::to_string(depth);
    bench::EmitJson("ablation_path_compression", cfg + "/btree",
                    "cycles_per_search", bt_cyc);
    bench::EmitJson("ablation_path_compression", cfg + "/segtrie",
                    "cycles_per_search", plain_cyc);
    bench::EmitJson("ablation_path_compression", cfg + "/opt_segtrie",
                    "cycles_per_search", opt_cyc);
    bench::EmitJson("ablation_path_compression", cfg + "/compressed",
                    "cycles_per_search", comp_cyc);
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nexpected: on sparse keys the compressed trie touches only "
      "branching nodes, so its\nlookup cost and node count stay well below "
      "the plain/optimized tries (which pay\nall 8 levels) — the missing "
      "piece the paper pointed to for its deep-trie regime.\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  simdtree::Run();
  return 0;
}
