// Hardware profile sweep (paper Figures 9-11): per-search instructions,
// LLC misses, branch mispredictions, and dTLB misses for every index
// structure, via perf_event_open (obs/perf_counters.h).
//
// The paper explains its cycle counts through exactly these hardware
// axes: SIMD reduces instructions per search (Figure 9), the linearized
// layouts trade LLC misses (Figure 10), and k-ary search eliminates the
// hard-to-predict branches of binary search (Figure 11). This bench
// reproduces those per-operation profiles on the live machine: each
// structure x size point runs the probe loop under the counter group
// and reports every event divided by the number of searches. The dTLB
// axis and the per-point `mem` JSON lines exist for the arena allocator
// (mem/arena.h): hugepage-backed slabs should show fewer dTLB and LLC
// misses per search than the heap baseline (SIMDTREE_DISABLE_ARENA=1)
// on the out-of-cache sizes.
//
// Usage:
//   bb_hw_profile [--json] [--smoke]
//
// --smoke shrinks the sweep to one small size so CI can execute the
// binary in milliseconds; --json additionally emits the JSON lines of
// bench_util.h. On hosts where perf_event_open is denied (containers,
// perf_event_paranoid) every point still reports wall-clock cycles and
// emits {"..","hw":null} instead of the hardware metrics — the bench
// never fails for lack of PMU access.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/hw_section.h"
#include "btree/btree.h"
#include "mem/arena.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "util/rng.h"
#include "util/workload.h"

namespace simdtree {
namespace {

constexpr const char* kBench = "bb_hw_profile";

// Passes over the probe set inside the measured region: enough retired
// instructions to dominate the counter read overhead.
constexpr int kPasses = 8;

template <typename Key>
struct Workload {
  std::vector<Key> keys;
  std::vector<Key> values;
  std::vector<Key> probes;

  explicit Workload(size_t n) {
    Rng rng(2014);
    keys = UniformDistinctKeys<Key>(n, rng);
    values.assign(keys.begin(), keys.end());
    probes = SamplePresentProbes(keys, bench::kProbeCount, rng);
  }
};

// Measures `lookup(probe)` over kPasses x probes: wall-clock cycles per
// search plus the hardware profile, all emitted under `config`.
template <typename Key, typename Fn>
void ProfilePoint(const std::string& config, const Workload<Key>& w,
                  Fn&& lookup) {
  uint64_t checksum = 0;
  const double cycles = bench::CyclesPerOp(w.probes, lookup, &checksum);
  std::printf("%-24s %10.1f cycles/search  (checksum %016llx)\n",
              config.c_str(), cycles,
              static_cast<unsigned long long>(checksum));
  bench::EmitJson(kBench, config, "cycles_per_lookup", cycles);

  const double ops =
      static_cast<double>(w.probes.size()) * static_cast<double>(kPasses);
  uint64_t sink = 0;
  bench::HwSection(kBench, config, ops, [&] {
    for (int pass = 0; pass < kPasses; ++pass) {
      for (const Key p : w.probes) {
        sink += static_cast<uint64_t>(lookup(p));
      }
    }
  });
  if (sink == 0xDEADBEEFDEADBEEFULL) std::fprintf(stderr, "\n");
}

template <typename Key>
void RunSweep(size_t n, const char* size_name, const char* suffix) {
  const Workload<Key> w(n);
  std::printf("-- %s keys: %zu (%zu-byte) --\n", size_name, n, sizeof(Key));

  {
    auto tree = btree::BPlusTree<Key, Key>::BulkLoad(
        w.keys.data(), w.values.data(), w.keys.size());
    const std::string config =
        std::string("btree_binary") + suffix + "/" + size_name;
    ProfilePoint(config, w, [&](Key p) { return tree.Contains(p); });
    bench::EmitMemJson(kBench, config, mem::IndexMemStats(tree));
  }
  {
    auto tree = segtree::SegTree<Key, Key, kary::Layout::kBreadthFirst>::
        BulkLoad(w.keys.data(), w.values.data(), w.keys.size());
    const std::string config =
        std::string("segtree_bf") + suffix + "/" + size_name;
    ProfilePoint(config, w, [&](Key p) { return tree.Contains(p); });
    bench::EmitMemJson(kBench, config, mem::IndexMemStats(tree));
  }
  {
    auto tree = segtree::SegTree<Key, Key, kary::Layout::kDepthFirst>::
        BulkLoad(w.keys.data(), w.values.data(), w.keys.size());
    const std::string config =
        std::string("segtree_df") + suffix + "/" + size_name;
    ProfilePoint(config, w, [&](Key p) { return tree.Contains(p); });
    bench::EmitMemJson(kBench, config, mem::IndexMemStats(tree));
  }
  {
    using Trie = segtrie::OptimizedSegTrie<Key, Key>;
    auto trie = std::make_unique<Trie>();
    for (size_t i = 0; i < w.keys.size(); ++i) {
      trie->Insert(w.keys[i], w.values[i]);
    }
    const std::string config =
        std::string("segtrie_opt") + suffix + "/" + size_name;
    ProfilePoint(config, w, [&](Key p) { return trie->Contains(p); });
    bench::EmitMemJson(kBench, config, mem::IndexMemStats(*trie));
  }
  std::printf("\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  simdtree::bench::PrintBenchHeader("bb_hw_profile: hardware counters per search");
  std::printf("node arenas: %s | hugepages: %s\n",
              simdtree::mem::ArenaEnabled()
                  ? "on"
                  : "off (SIMDTREE_DISABLE_ARENA)",
              simdtree::mem::HugepagesEnabled()
                  ? "madvise"
                  : "off (SIMDTREE_DISABLE_HUGEPAGES)");
  if (simdtree::obs::PerfCounterGroup::Available()) {
    std::printf("perf_event_open: available\n\n");
  } else {
    std::printf(
        "perf_event_open: unavailable (container/CI or "
        "SIMDTREE_DISABLE_PERF) — reporting hw:null\n\n");
  }

  if (smoke) {
    simdtree::RunSweep<uint64_t>(1u << 14, "16K", "");
  } else {
    // The paper's in-cache and out-of-cache regimes (Section 5.2): a
    // structure around the L2/L3 boundary and one far beyond the LLC.
    simdtree::RunSweep<uint64_t>(1u << 18, "256K", "");
    simdtree::RunSweep<uint64_t>(1u << 22, "4M", "");
    // 16M 4-byte keys: the arena-vs-heap LLC/dTLB comparison point (a
    // ~700 MB working set for the trees — far out of cache, where
    // hugepage-backed slabs pay off).
    simdtree::RunSweep<uint32_t>(1u << 24, "16M", "_u32");
  }
  return 0;
}
