// Hardware profile sweep (paper Figures 9-11): per-search instructions,
// LLC misses, and branch mispredictions for every index structure, via
// perf_event_open (obs/perf_counters.h).
//
// The paper explains its cycle counts through exactly these three
// hardware axes: SIMD reduces instructions per search (Figure 9), the
// linearized layouts trade LLC misses (Figure 10), and k-ary search
// eliminates the hard-to-predict branches of binary search (Figure 11).
// This bench reproduces those per-operation profiles on the live
// machine: each structure x size point runs the probe loop under a
// cycles/instructions/LLC-load-miss/branch-miss counter group and
// reports every event divided by the number of searches.
//
// Usage:
//   bb_hw_profile [--json] [--smoke]
//
// --smoke shrinks the sweep to one small size so CI can execute the
// binary in milliseconds; --json additionally emits the JSON lines of
// bench_util.h. On hosts where perf_event_open is denied (containers,
// perf_event_paranoid) every point still reports wall-clock cycles and
// emits {"..","hw":null} instead of the hardware metrics — the bench
// never fails for lack of PMU access.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/hw_section.h"
#include "btree/btree.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "util/rng.h"
#include "util/workload.h"

namespace simdtree {
namespace {

constexpr const char* kBench = "bb_hw_profile";

// Passes over the probe set inside the measured region: enough retired
// instructions to dominate the counter read overhead.
constexpr int kPasses = 8;

struct Workload {
  std::vector<uint64_t> keys;
  std::vector<uint64_t> values;
  std::vector<uint64_t> probes;

  explicit Workload(size_t n) {
    Rng rng(2014);
    keys = UniformDistinctKeys<uint64_t>(n, rng);
    values.assign(keys.begin(), keys.end());
    probes = SamplePresentProbes(keys, bench::kProbeCount, rng);
  }
};

// Measures `lookup(probe)` over kPasses x probes: wall-clock cycles per
// search plus the hardware profile, all emitted under `config`.
template <typename Fn>
void ProfilePoint(const std::string& config, const Workload& w, Fn&& lookup) {
  uint64_t checksum = 0;
  const double cycles = bench::CyclesPerOp(w.probes, lookup, &checksum);
  std::printf("%-24s %10.1f cycles/search  (checksum %016llx)\n",
              config.c_str(), cycles,
              static_cast<unsigned long long>(checksum));
  bench::EmitJson(kBench, config, "cycles_per_lookup", cycles);

  const double ops =
      static_cast<double>(w.probes.size()) * static_cast<double>(kPasses);
  uint64_t sink = 0;
  bench::HwSection(kBench, config, ops, [&] {
    for (int pass = 0; pass < kPasses; ++pass) {
      for (const uint64_t p : w.probes) {
        sink += static_cast<uint64_t>(lookup(p));
      }
    }
  });
  if (sink == 0xDEADBEEFDEADBEEFULL) std::fprintf(stderr, "\n");
}

void RunSweep(size_t n, const char* size_name) {
  const Workload w(n);
  std::printf("-- %s keys: %zu --\n", size_name, n);

  {
    btree::BPlusTree<uint64_t, uint64_t> tree =
        btree::BPlusTree<uint64_t, uint64_t>::BulkLoad(
            w.keys.data(), w.values.data(), w.keys.size());
    ProfilePoint(std::string("btree_binary/") + size_name, w,
                 [&](uint64_t p) { return tree.Contains(p); });
  }
  {
    segtree::SegTree<uint64_t, uint64_t, kary::Layout::kBreadthFirst> tree =
        segtree::SegTree<uint64_t, uint64_t, kary::Layout::kBreadthFirst>::
            BulkLoad(w.keys.data(), w.values.data(), w.keys.size());
    ProfilePoint(std::string("segtree_bf/") + size_name, w,
                 [&](uint64_t p) { return tree.Contains(p); });
  }
  {
    segtree::SegTree<uint64_t, uint64_t, kary::Layout::kDepthFirst> tree =
        segtree::SegTree<uint64_t, uint64_t, kary::Layout::kDepthFirst>::
            BulkLoad(w.keys.data(), w.values.data(), w.keys.size());
    ProfilePoint(std::string("segtree_df/") + size_name, w,
                 [&](uint64_t p) { return tree.Contains(p); });
  }
  {
    using Trie = segtrie::OptimizedSegTrie<uint64_t, uint64_t>;
    auto trie = std::make_unique<Trie>();
    for (size_t i = 0; i < w.keys.size(); ++i) {
      trie->Insert(w.keys[i], w.values[i]);
    }
    ProfilePoint(std::string("segtrie_opt/") + size_name, w,
                 [&](uint64_t p) { return trie->Contains(p); });
  }
  std::printf("\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  simdtree::bench::PrintBenchHeader("bb_hw_profile: hardware counters per search");
  if (simdtree::obs::PerfCounterGroup::Available()) {
    std::printf("perf_event_open: available\n\n");
  } else {
    std::printf(
        "perf_event_open: unavailable (container/CI or "
        "SIMDTREE_DISABLE_PERF) — reporting hw:null\n\n");
  }

  if (smoke) {
    simdtree::RunSweep(1u << 14, "16K");
  } else {
    // The paper's in-cache and out-of-cache regimes (Section 5.2): a
    // structure around the L2/L3 boundary and one far beyond the LLC.
    simdtree::RunSweep(1u << 18, "256K");
    simdtree::RunSweep(1u << 22, "4M");
  }
  return 0;
}
