// Concurrent mixed read/write throughput: ShardedIndex (range-
// partitioned, per-shard reader/writer locks) versus SynchronizedIndex
// (one global reader/writer lock) across BPlusTree / SegTree / SegTrie
// backends — the scaling curve the sharding layer exists for, measured
// rather than asserted.
//
// Sweep: threads x shard count x read fraction, over a ~1M-key index.
// Each measurement point runs for a fixed wall-clock window with the
// read fraction expressed as thread roles: at T threads and read
// fraction r, round(T*(1-r)) threads (at least one) are dedicated
// writers alternating Insert/Erase over the preloaded population, and
// the rest are dedicated readers (Find with a periodic shard-aware
// FindBatch). T==1 degenerates to a single thread mixing both per-op.
// Reads and writes are counted separately and reported as class
// throughputs alongside the aggregate.
//
// What to expect: with one global lock every writer serializes behind
// every reader. On many-core hosts the aggregate curve shows it
// directly: per-shard locks cut the conflict probability to ~1/shards,
// so the sharded curve holds its throughput as threads rise while the
// single-lock curve flattens. On few-core hosts the aggregate hides the
// damage — one core runs one thread at a time either way — but the
// write-class throughput exposes it: glibc's reader-preferring rwlock
// hands the global lock back to the reader crowd at every release, so
// single-lock writers starve (write rates collapse by orders of
// magnitude) while sharded writers only ever contend with the readers
// of their own shard. That is exactly the pathology range partitioning
// removes, so `writes/s` and its `write_speedup_vs_sync` ratio are the
// honest headline on small machines.
//
// Read-mostly sweep: the lock-free read path (optimistic lock coupling,
// see core/olc.h and DESIGN.md "Concurrency") is aimed at read-dominated
// mixes, so a second sweep runs the B+-tree at 90/99/100% reads across a
// thread ladder and reports reads/s plus per-thread scaling efficiency
// r(T) / (T * r(1)). Under the rwlock every reader bounces the lock's
// cache line, so efficiency decays as threads rise even with zero
// writers; with OLC readers share the tree read-only and the efficiency
// holds. Run with SIMDTREE_FORCE_SHARD_LOCKS=1 for the rwlock baseline
// A/B (each point also emits olc_enabled so collected sweeps
// self-identify).
//
// Usage: bb_concurrent [--json] [--quick] [--keys=N]
//   --quick trims the sweep (SegTree only, 8 shards, 1/8 threads) for a
//   fast sanity run; --json emits one line per point as in every other
//   bench binary; --keys=N sets the preload population (default 1M).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/hw_section.h"
#include "btree/btree.h"
#include "core/olc.h"
#include "core/sharded.h"
#include "core/synchronized.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "util/cycle_timer.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace simdtree {

// Preload population, overridable with --keys=N (the EXPERIMENTS.md A/B
// runs the read-mostly sweep at 16M keys so the tree outgrows L3).
// Outside the anonymous namespace so main's flag parsing can set it.
size_t& PreloadCount() {
  static size_t count = 1'000'000;
  return count;
}

namespace {

using Key = uint64_t;
using Value = uint64_t;

// Keys live in a 2^30 domain: dense enough that the Seg-Trie shares
// prefixes (realistic memory), sparse enough that uniform sampling
// rarely collides. Splitters always come from the preload sample, as a
// bulk-load distribution would supply them.
constexpr uint64_t kDomain = 1ULL << 30;
constexpr double kWindowSecs = 0.5;  // per measurement point
constexpr size_t kBatch = 32;        // periodic FindBatch width

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr size_t kShardCounts[] = {2, 4, 8};
constexpr int kReadPercents[] = {50, 95};
constexpr int kReadMostlyPercents[] = {90, 99, 100};

std::vector<Key> MakePreloadKeys() {
  Rng rng(2014);
  std::vector<Key> keys(PreloadCount());
  for (auto& k : keys) k = rng.NextBounded(kDomain);
  return keys;
}

struct PointCounts {
  uint64_t reads = 0;
  uint64_t writes = 0;
  double secs = 0.0;
};

// One measurement point: role-split worker threads run against `index`
// for a fixed window from a common start barrier. Readers are joined
// before writers so a writer parked on the (reader-preferring) lock can
// acquire it, finish its in-flight op, observe the stop flag, and exit;
// that admits at most one post-window op per writer, which only ever
// flatters the single-lock configuration.
template <typename IndexLike>
PointCounts RunPoint(IndexLike& index, const std::vector<Key>& population,
                     int threads, int read_pct, uint64_t point_seed) {
  int writers = 0;
  if (threads >= 2 && read_pct < 100) {
    writers = static_cast<int>(
        (static_cast<long>(threads) * (100 - read_pct) + 50) / 100);
    if (writers < 1) writers = 1;
    if (writers >= threads) writers = threads - 1;
  }
  const int readers = threads - writers;

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_reads{0};
  std::atomic<uint64_t> total_writes{0};

  auto wait_for_go = [&] {
    ready.fetch_add(1);
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
  };

  std::vector<std::thread> reader_pool;
  std::vector<std::thread> writer_pool;

  if (threads == 1) {
    // Single thread: per-op mix at the requested read fraction.
    writer_pool.emplace_back([&] {
      Rng rng(point_seed * 1000003 + 1);
      std::vector<Key> batch(kBatch);
      std::vector<std::optional<Value>> out(kBatch);
      uint64_t reads_done = 0, writes_done = 0, sink = 0;
      wait_for_go();
      for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        if (rng.NextBounded(100) < static_cast<uint64_t>(read_pct)) {
          if (i % 41 == 0) {
            for (auto& b : batch) {
              b = population[rng.NextBounded(population.size())];
            }
            index.FindBatch(batch.data(), batch.size(), out.data());
            for (const auto& o : out) sink += o.has_value();
            reads_done += batch.size();
          } else {
            const Key k = rng.NextBounded(10) < 7
                              ? population[rng.NextBounded(population.size())]
                              : rng.NextBounded(kDomain);
            const auto v = index.Find(k);
            sink += v.has_value() ? *v : 0;
            ++reads_done;
          }
        } else {
          const Key k = population[rng.NextBounded(population.size())];
          if (rng.NextBounded(2) == 0) {
            index.Insert(k, k ^ 0xBADC0DEULL);
          } else {
            index.Erase(k);
          }
          ++writes_done;
        }
      }
      total_reads.fetch_add(reads_done + (sink == ~0ULL ? 1 : 0));
      total_writes.fetch_add(writes_done);
    });
  } else {
    for (int t = 0; t < readers; ++t) {
      reader_pool.emplace_back([&, t] {
        Rng rng(point_seed * 1000003 + static_cast<uint64_t>(t) * 7919 + 1);
        std::vector<Key> batch(kBatch);
        std::vector<std::optional<Value>> out(kBatch);
        uint64_t reads_done = 0, sink = 0;
        wait_for_go();
        for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
          if (i % 41 == 0) {
            // Shard-aware batched read: one lock acquisition per shard
            // touched instead of one per key.
            for (auto& b : batch) {
              b = population[rng.NextBounded(population.size())];
            }
            index.FindBatch(batch.data(), batch.size(), out.data());
            for (const auto& o : out) sink += o.has_value();
            reads_done += batch.size();
          } else {
            // 70% present keys, 30% random (mostly missing).
            const Key k = rng.NextBounded(10) < 7
                              ? population[rng.NextBounded(population.size())]
                              : rng.NextBounded(kDomain);
            const auto v = index.Find(k);
            sink += v.has_value() ? *v : 0;
            ++reads_done;
          }
        }
        total_reads.fetch_add(reads_done + (sink == ~0ULL ? 1 : 0));
      });
    }
    for (int t = 0; t < writers; ++t) {
      writer_pool.emplace_back([&, t] {
        Rng rng(point_seed * 2000003 + static_cast<uint64_t>(t) * 104729 + 1);
        uint64_t writes_done = 0;
        wait_for_go();
        while (!stop.load(std::memory_order_relaxed)) {
          const Key k = population[rng.NextBounded(population.size())];
          if (rng.NextBounded(2) == 0) {
            index.Insert(k, k ^ 0xBADC0DEULL);
          } else {
            index.Erase(k);
          }
          ++writes_done;
        }
        total_writes.fetch_add(writes_done);
      });
    }
  }

  while (ready.load() < threads) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(kWindowSecs));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : reader_pool) th.join();
  for (auto& th : writer_pool) th.join();
  // Rates use the nominal window; see the join-order note above.
  PointCounts counts;
  counts.reads = total_reads.load();
  counts.writes = total_writes.load();
  counts.secs = kWindowSecs;
  return counts;
}

template <typename IndexLike>
void Preload(IndexLike& index, const std::vector<Key>& keys) {
  for (Key k : keys) index.Insert(k, k ^ 0xBADC0DEULL);
}

struct PointResult {
  std::string wrapper;  // "sync" or "shardN"
  double ops_per_sec = 0.0;
  double reads_per_sec = 0.0;
  double writes_per_sec = 0.0;
};

template <typename Index>
void RunBackend(const char* backend, const std::vector<Key>& keys,
                bool quick, TablePrinter* table) {
  std::vector<int> threads_sweep(std::begin(kThreadCounts),
                                 std::end(kThreadCounts));
  std::vector<size_t> shards_sweep(std::begin(kShardCounts),
                                   std::end(kShardCounts));
  if (quick) {
    threads_sweep = {1, 8};
    shards_sweep = {8};
  }

  // One index instance per wrapper, reused across measurement points:
  // the write mix draws from the preloaded population, so the size
  // stays near the preload count as points run.
  SynchronizedIndex<Index> sync_index;
  Preload(sync_index, keys);
  std::vector<std::unique_ptr<ShardedIndex<Index>>> sharded;
  for (size_t s : shards_sweep) {
    sharded.push_back(std::make_unique<ShardedIndex<Index>>(
        s, ShardedIndex<Index>::SplittersFromSample(keys.data(), keys.size(),
                                                    s)));
    Preload(*sharded.back(), keys);
  }

  uint64_t point_seed = 1;
  for (int read_pct : kReadPercents) {
    for (int threads : threads_sweep) {
      std::vector<PointResult> results;
      auto run_one = [&](const std::string& wrapper, auto& index) {
        const PointCounts c =
            RunPoint(index, keys, threads, read_pct, point_seed++);
        PointResult r;
        r.wrapper = wrapper;
        r.reads_per_sec = static_cast<double>(c.reads) / c.secs;
        r.writes_per_sec = static_cast<double>(c.writes) / c.secs;
        r.ops_per_sec = r.reads_per_sec + r.writes_per_sec;
        results.push_back(r);
      };
      run_one("sync", sync_index);
      for (size_t si = 0; si < shards_sweep.size(); ++si) {
        run_one("shard" + std::to_string(shards_sweep[si]), *sharded[si]);
      }
      const double sync_ops = results[0].ops_per_sec;
      const double sync_writes = results[0].writes_per_sec;
      for (const PointResult& r : results) {
        const double speedup = r.ops_per_sec / sync_ops;
        const double wspeedup =
            sync_writes > 0.0 ? r.writes_per_sec / sync_writes : 0.0;
        const std::string cfg = std::string(backend) + "/" + r.wrapper +
                                "/t" + std::to_string(threads) + "/rf" +
                                std::to_string(read_pct);
        bench::EmitJson("bb_concurrent", cfg, "ops_per_sec", r.ops_per_sec);
        bench::EmitJson("bb_concurrent", cfg, "reads_per_sec",
                        r.reads_per_sec);
        bench::EmitJson("bb_concurrent", cfg, "writes_per_sec",
                        r.writes_per_sec);
        if (r.wrapper != "sync") {
          bench::EmitJson("bb_concurrent", cfg, "speedup_vs_sync", speedup);
          bench::EmitJson("bb_concurrent", cfg, "write_speedup_vs_sync",
                          wspeedup);
        }
        table->AddRow({backend, r.wrapper, std::to_string(read_pct) + "%",
                       std::to_string(threads),
                       TablePrinter::Fmt(r.ops_per_sec / 1e6, 2),
                       TablePrinter::Fmt(r.writes_per_sec / 1e3, 1),
                       TablePrinter::Fmt(speedup, 2),
                       TablePrinter::Fmt(wspeedup, 1)});
      }
      std::fflush(stdout);
    }
  }
}

// Read-mostly sweep over the OLC-capable B+-tree: 90/99/100% reads
// across a thread ladder (powers of two through the hardware thread
// count, minimum 4 rungs so few-core hosts still produce a curve —
// oversubscribed rungs are reported as measured). Each point emits
// reads/s, writes/s, and for T>1 the per-thread scaling efficiency
// r(T) / (T * r(1)) against the same wrapper's single-thread rate.
// olc_enabled tags whether the lock-free path was armed, so an
// A/B against SIMDTREE_FORCE_SHARD_LOCKS=1 is two runs of the same
// binary.
void ReadMostlySweep(const std::vector<Key>& keys, bool quick) {
  using Index = btree::BPlusTree<Key, Value>;

  std::vector<int> ladder;
  {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw < 8) hw = 8;
    for (unsigned t = 1; t <= hw; t *= 2) {
      ladder.push_back(static_cast<int>(t));
    }
  }
  std::vector<int> percents(std::begin(kReadMostlyPercents),
                            std::end(kReadMostlyPercents));
  if (quick) {
    ladder = {1, 2};
    percents = {99};
  }

  SynchronizedIndex<Index> sync_index;
  Preload(sync_index, keys);
  constexpr size_t kShards = 8;
  ShardedIndex<Index> sharded(
      kShards,
      ShardedIndex<Index>::SplittersFromSample(keys.data(), keys.size(),
                                               kShards));
  Preload(sharded, keys);
  const double olc_enabled = olc::ForceShardLocks() ? 0.0 : 1.0;

  TablePrinter table({"wrapper", "reads", "threads", "Mreads/s",
                      "Kwrites/s", "scaling eff"});
  uint64_t point_seed = 0xA11CE;
  auto sweep_one = [&](const char* wrapper, auto& index) {
    for (int read_pct : percents) {
      double single_thread_reads = 0.0;
      for (int threads : ladder) {
        const PointCounts c =
            RunPoint(index, keys, threads, read_pct, point_seed++);
        const double rps = static_cast<double>(c.reads) / c.secs;
        const double wps = static_cast<double>(c.writes) / c.secs;
        if (threads == 1) single_thread_reads = rps;
        const double efficiency =
            (threads > 1 && single_thread_reads > 0.0)
                ? rps / (static_cast<double>(threads) * single_thread_reads)
                : 1.0;
        const std::string cfg = std::string("btree/") + wrapper + "/rm" +
                                std::to_string(read_pct) + "/t" +
                                std::to_string(threads);
        bench::EmitJson("bb_concurrent", cfg, "reads_per_sec", rps);
        bench::EmitJson("bb_concurrent", cfg, "writes_per_sec", wps);
        bench::EmitJson("bb_concurrent", cfg, "olc_enabled", olc_enabled);
        if (threads > 1) {
          bench::EmitJson("bb_concurrent", cfg, "scaling_efficiency",
                          efficiency);
        }
        table.AddRow({wrapper, std::to_string(read_pct) + "%",
                      std::to_string(threads),
                      TablePrinter::Fmt(rps / 1e6, 2),
                      TablePrinter::Fmt(wps / 1e3, 1),
                      TablePrinter::Fmt(efficiency, 2)});
        std::fflush(stdout);
      }
    }
  };
  sweep_one("sync", sync_index);
  sweep_one("shard8", sharded);

  std::printf("\nread-mostly sweep (btree, %zu keys, %s reads):\n",
              keys.size(),
              olc_enabled != 0.0 ? "lock-free OLC" : "rwlock (forced)");
  table.Print();
  std::printf("\n");
}

// Observability phase: per-read latency distribution under write
// contention, recorded concurrently into one lock-free LogHistogram
// (obs/histogram.h), plus a hardware-counter section for the uncontended
// read path and a dump of the wrapper's own metrics registry entries.
// The tail percentiles (p99/p99.9) are where the single-lock wrapper's
// reader/writer convoys live — means hide them entirely.
void LatencyPhase(const std::vector<Key>& keys, bool quick) {
  using Index = segtree::SegTree<Key, Value>;
  constexpr size_t kShards = 8;
  ShardedIndex<Index> index(
      kShards,
      ShardedIndex<Index>::SplittersFromSample(keys.data(), keys.size(),
                                               kShards));
  index.EnableMetrics("bb_concurrent.shard8");
  Preload(index, keys);

  // Hardware profile of the uncontended sharded read path (counters are
  // per calling thread, so this phase stays single-threaded).
  {
    Rng rng(7);
    std::vector<Key> probes(10000);
    for (auto& p : probes) p = keys[rng.NextBounded(keys.size())];
    uint64_t sink = 0;
    bench::HwSection("bb_concurrent", "hw/segtree_shard8/find",
                     static_cast<double>(probes.size()), [&] {
                       for (Key p : probes) {
                         const auto v = index.Find(p);
                         sink += v.has_value() ? *v : 0;
                       }
                     });
    if (sink == 0xDEADBEEFDEADBEEFULL) std::fprintf(stderr, "\n");
  }

  // Concurrent latency recording: readers time every Find with RDTSC and
  // record nanoseconds into the shared histogram while a writer churns.
  obs::LogHistogram hist;
  const double window = quick ? 0.15 : 0.5;
  std::atomic<bool> stop{false};
  const int reader_count = 3;
  std::vector<std::thread> pool;
  for (int t = 0; t < reader_count; ++t) {
    pool.emplace_back([&, t] {
      Rng rng(4000 + static_cast<uint64_t>(t));
      uint64_t sink = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const Key k = keys[rng.NextBounded(keys.size())];
        const uint64_t start = CycleTimer::Now();
        const auto v = index.Find(k);
        hist.Record(static_cast<uint64_t>(
            CycleTimer::ToNanoseconds(CycleTimer::Now() - start)));
        sink += v.has_value() ? *v : 0;
      }
      if (sink == ~0ULL) std::fprintf(stderr, "\n");
    });
  }
  pool.emplace_back([&] {
    Rng rng(5000);
    while (!stop.load(std::memory_order_relaxed)) {
      const Key k = keys[rng.NextBounded(keys.size())];
      if (rng.NextBounded(2) == 0) {
        index.Insert(k, k ^ 0xBADC0DEULL);
      } else {
        index.Erase(k);
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::duration<double>(window));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : pool) th.join();

  std::printf(
      "read latency under contention (segtree, 8 shards, %d readers + 1 "
      "writer, %zu samples):\n"
      "  p50 %llu ns  p95 %llu ns  p99 %llu ns  p99.9 %llu ns  "
      "mean %.0f ns  max %llu ns\n\n",
      reader_count, static_cast<size_t>(hist.Count()),
      static_cast<unsigned long long>(hist.Percentile(0.50)),
      static_cast<unsigned long long>(hist.Percentile(0.95)),
      static_cast<unsigned long long>(hist.Percentile(0.99)),
      static_cast<unsigned long long>(hist.Percentile(0.999)), hist.Mean(),
      static_cast<unsigned long long>(hist.Max()));
  const std::string cfg = "segtree/shard8/latency";
  bench::EmitJson("bb_concurrent", cfg, "read_latency_ns_p50",
                  hist.Percentile(0.50));
  bench::EmitJson("bb_concurrent", cfg, "read_latency_ns_p95",
                  hist.Percentile(0.95));
  bench::EmitJson("bb_concurrent", cfg, "read_latency_ns_p99",
                  hist.Percentile(0.99));
  bench::EmitJson("bb_concurrent", cfg, "read_latency_ns_p999",
                  hist.Percentile(0.999));
  bench::EmitJson("bb_concurrent", cfg, "read_latency_samples",
                  static_cast<double>(hist.Count()));
  if (bench::JsonEnabled()) {
    std::printf("{\"bench\":\"bb_concurrent\",\"config\":\"registry\","
                "\"metrics\":%s}\n",
                obs::MetricsRegistry::Global().ToJson().c_str());
  }
}

void Run(bool quick) {
  bench::PrintBenchHeader(
      "Concurrent mixed read/write throughput: ShardedIndex vs "
      "SynchronizedIndex, ~1M uint64 keys");
  std::printf("hardware threads: %u | window per point: %.1fs | "
              "write mix: 50%% insert / 50%% erase over the preload set\n\n",
              std::thread::hardware_concurrency(), kWindowSecs);

  const std::vector<Key> keys = MakePreloadKeys();
  ReadMostlySweep(keys, quick);
  LatencyPhase(keys, quick);
  TablePrinter table({"structure", "wrapper", "reads", "threads", "Mops/s",
                      "Kwrites/s", "vs sync", "w vs sync"});
  RunBackend<segtree::SegTree<Key, Value>>("segtree", keys, quick, &table);
  if (!quick) {
    RunBackend<btree::BPlusTree<Key, Value>>("btree", keys, quick, &table);
    RunBackend<segtrie::SegTrie<Key, Value>>("segtrie", keys, quick, &table);
  }
  std::printf("\n");
  table.Print();
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--keys=", 7) == 0) {
      const unsigned long long n = std::strtoull(argv[i] + 7, nullptr, 10);
      if (n > 0) simdtree::PreloadCount() = static_cast<size_t>(n);
    }
  }
  simdtree::Run(quick);
  return 0;
}
