// Regenerates paper Figure 10: average search runtime (cycles) of the
// B+-Tree with binary search vs. the Seg-Tree with SIMD search on
// breadth-first and depth-first linearized keys, for 8/16/32/64-bit keys
// and Single / 5 MB / 100 MB data sets.
//
// Workload (paper Section 5.1): full-domain key sequences for 8-/16-bit
// types (with duplicates for the larger data sets), ascending sequences
// from zero for 32-/64-bit types; completely filled nodes; x = 10,000
// probes drawn in random order from the data set.
//
// Expected shape (paper Section 5.3): the Seg-Tree wins everywhere, the
// advantage grows as the key type shrinks (up to ~8x for 8-bit), the
// depth-first layout is at least as fast as breadth-first (clearly faster
// for small data sets), and cache misses erode all differences as the
// data set outgrows the caches.

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "btree/btree.h"
#include "kary/layout.h"
#include "segtree/segtree.h"
#include "util/table_printer.h"
#include "util/workload.h"

namespace simdtree {
namespace {

using bench::kProbeCount;

template <typename T>
std::vector<T> DatasetKeys(const bench::SizeCategory& size) {
  const int64_t n_l = btree::PaperNodeCapacity(sizeof(T));
  size_t n;
  if (size.bytes == 0) {
    n = static_cast<size_t>(n_l);
  } else {
    // Node size per paper Table 3: pointers + keys.
    using Traits = simd::LaneTraits<T>;
    const kary::KaryShape shape = kary::KaryShape::For(Traits::kArity, n_l);
    const kary::KaryLayout layout(shape, kary::Layout::kBreadthFirst);
    const int64_t n_s = layout.StoredSlots(n_l, kary::Storage::kTruncated);
    const size_t node_bytes = static_cast<size_t>((n_l + 1) * 8) +
                              static_cast<size_t>(n_s) * sizeof(T);
    const size_t nodes = size.bytes / node_bytes;
    n = nodes * static_cast<size_t>(n_l);
  }
  if constexpr (sizeof(T) <= 2) {
    return CycledDomainKeys<T>(n);  // whole domain, duplicated as needed
  } else {
    return AscendingKeys<T>(n, T{0});
  }
}

template <typename TreeT, typename T>
double MeasureTree(const std::vector<T>& keys,
                   const std::vector<uint64_t>& values,
                   const std::vector<T>& probes) {
  TreeT tree = TreeT::BulkLoad(keys.data(), values.data(), keys.size());
  return bench::CyclesPerOp(probes, [&tree](T probe) {
    return tree.Contains(probe) ? 1u : 0u;
  });
}

template <typename T>
void RunType(const char* type_name, TablePrinter* table) {
  for (const bench::SizeCategory& size :
       {bench::kSingle, bench::k5MB, bench::k100MB}) {
    const std::vector<T> keys = DatasetKeys<T>(size);
    const std::vector<uint64_t> values(keys.size(), 1);
    Rng rng(42);
    const std::vector<T> probes =
        SamplePresentProbes(keys, kProbeCount, rng);

    const double binary =
        MeasureTree<btree::BPlusTree<T, uint64_t>>(keys, values, probes);
    const double seg_bf = MeasureTree<
        segtree::SegTree<T, uint64_t, kary::Layout::kBreadthFirst>>(
        keys, values, probes);
    const double seg_df = MeasureTree<
        segtree::SegTree<T, uint64_t, kary::Layout::kDepthFirst>>(
        keys, values, probes);

    table->AddRow({type_name, size.name, TablePrinter::Fmt(keys.size()),
                   TablePrinter::Fmt(binary, 0), TablePrinter::Fmt(seg_bf, 0),
                   TablePrinter::Fmt(seg_df, 0),
                   TablePrinter::Fmt(binary / seg_bf, 2),
                   TablePrinter::Fmt(binary / seg_df, 2)});
    const std::string cfg = std::string(type_name) + "/" + size.name;
    bench::EmitJson("fig10_segtree", cfg + "/binary", "cycles_per_search",
                    binary);
    bench::EmitJson("fig10_segtree", cfg + "/simd_bf", "cycles_per_search",
                    seg_bf);
    bench::EmitJson("fig10_segtree", cfg + "/simd_df", "cycles_per_search",
                    seg_df);
    std::fflush(stdout);
  }
}

void Run() {
  bench::PrintBenchHeader(
      "Figure 10: Seg-Tree vs B+-Tree(binary), avg cycles per search");
  TablePrinter table({"type", "data", "keys", "binary", "SIMD-BF", "SIMD-DF",
                      "speedup BF", "speedup DF"});
  RunType<int8_t>("8-bit", &table);
  RunType<int16_t>("16-bit", &table);
  RunType<int32_t>("32-bit", &table);
  RunType<int64_t>("64-bit", &table);
  table.Print();
  std::printf(
      "\npaper Figure 10 shape: SIMD search beats binary search for every "
      "type and size;\nthe speedup grows toward ~8x for 8-bit keys; "
      "depth-first >= breadth-first (clearest\non Single); all variants "
      "converge as cache misses dominate at 100 MB.\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  simdtree::Run();
  return 0;
}
