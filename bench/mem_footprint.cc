// Regenerates the paper's headline Section 5.4/7 claim: the optimized
// Seg-Trie's speedup and memory reduction against the original B+-Tree
// for consecutive 64-bit keys (tuple ids).
//
// Workload: 1,638,400 consecutive keys starting at zero (the paper's
// "100 MB data set containing nearly 1.6M keys in consecutive order"),
// 8-byte values. We report both an insert-built baseline (nodes at their
// natural post-split fill) and a bulk-loaded one (completely filled),
// since the paper does not state which build produced its memory number.
//
// Expected shape: the optimized Seg-Trie is the fastest and smallest
// structure by a wide margin (paper: 14x speedup, 8x memory reduction;
// our byte-accurate accounting of both structures yields a smaller but
// still large memory factor — see EXPERIMENTS.md).
//
// Every structure additionally reports its node-arena occupancy
// (mem/arena.h): reserved slab bytes, utilization (live block bytes /
// reserved), and slab count — the fragmentation view of the arena
// allocator. --json emits these as `mem` lines (bench_util.h
// EmitMemJson); --smoke shrinks the workload for CI.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "btree/btree.h"
#include "mem/arena.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "util/table_printer.h"
#include "util/workload.h"

namespace simdtree {
namespace {

using bench::kProbeCount;
constexpr size_t kN = 1638400;
constexpr size_t kSmokeN = 65536;

struct Row {
  const char* name;
  double cycles;
  size_t bytes;
  mem::ArenaStats arena;
};

void Run(size_t n) {
  bench::PrintBenchHeader(
      "Headline: optimized Seg-Trie vs B+-Tree, consecutive 64-bit keys");
  std::printf("keys: %zu | arena mode: %s\n\n", n,
              mem::ArenaEnabled() ? "on" : "off (SIMDTREE_DISABLE_ARENA)");
  const std::vector<uint64_t> keys = AscendingKeys<uint64_t>(n, 0);
  const std::vector<uint64_t> values = keys;
  Rng rng(23);
  const std::vector<uint64_t> probes =
      SamplePresentProbes(keys, kProbeCount, rng);

  std::vector<Row> rows;

  {
    btree::BPlusTree<uint64_t, uint64_t> bt;
    for (size_t i = 0; i < n; ++i) bt.Insert(keys[i], values[i]);
    rows.push_back({"B+Tree binary (insert-built)",
                    bench::CyclesPerOp(probes,
                                       [&bt](uint64_t p) {
                                         return bt.Contains(p) ? 1u : 0u;
                                       }),
                    bt.MemoryBytes(), mem::IndexMemStats(bt)});
  }
  {
    auto bt = btree::BPlusTree<uint64_t, uint64_t>::BulkLoad(
        keys.data(), values.data(), n);
    rows.push_back({"B+Tree binary (bulk, 100% fill)",
                    bench::CyclesPerOp(probes,
                                       [&bt](uint64_t p) {
                                         return bt.Contains(p) ? 1u : 0u;
                                       }),
                    bt.MemoryBytes(), mem::IndexMemStats(bt)});
  }
  {
    auto st =
        segtree::SegTree<uint64_t, uint64_t>::BulkLoad(keys.data(),
                                                       values.data(), n);
    rows.push_back({"Seg-Tree BF (bulk)",
                    bench::CyclesPerOp(probes,
                                       [&st](uint64_t p) {
                                         return st.Contains(p) ? 1u : 0u;
                                       }),
                    st.MemoryBytes(), mem::IndexMemStats(st)});
  }
  {
    auto trie = std::make_unique<segtrie::SegTrie<uint64_t, uint64_t>>();
    for (size_t i = 0; i < n; ++i) trie->Insert(keys[i], values[i]);
    rows.push_back({"Seg-Trie (8 levels)",
                    bench::CyclesPerOp(probes,
                                       [&trie](uint64_t p) {
                                         return trie->Contains(p) ? 1u : 0u;
                                       }),
                    trie->MemoryBytes(), mem::IndexMemStats(*trie)});
  }
  {
    auto opt =
        std::make_unique<segtrie::OptimizedSegTrie<uint64_t, uint64_t>>();
    for (size_t i = 0; i < n; ++i) opt->Insert(keys[i], values[i]);
    rows.push_back({"optimized Seg-Trie",
                    bench::CyclesPerOp(probes,
                                       [&opt](uint64_t p) {
                                         return opt->Contains(p) ? 1u : 0u;
                                       }),
                    opt->MemoryBytes(), mem::IndexMemStats(*opt)});
    std::printf("optimized Seg-Trie active levels: %d of %d\n\n",
                opt->active_levels(),
                segtrie::OptimizedSegTrie<uint64_t, uint64_t>::max_levels());
  }

  const double base_cycles = rows[0].cycles;
  const double base_bytes = static_cast<double>(rows[0].bytes);
  TablePrinter table({"structure", "cycles/find", "speedup", "MB",
                      "bytes/key", "mem reduction", "arena MB", "util",
                      "slabs"});
  for (const Row& r : rows) {
    bench::EmitJson("mem_footprint", r.name, "cycles_per_find", r.cycles);
    bench::EmitJson("mem_footprint", r.name, "memory_bytes",
                    static_cast<double>(r.bytes));
    bench::EmitMemJson("mem_footprint", r.name, r.arena);
    table.AddRow({r.name, TablePrinter::Fmt(r.cycles, 0),
                  TablePrinter::Fmt(base_cycles / r.cycles, 2),
                  TablePrinter::Fmt(static_cast<double>(r.bytes) / 1e6, 1),
                  TablePrinter::Fmt(static_cast<double>(r.bytes) /
                                        static_cast<double>(n),
                                    1),
                  TablePrinter::Fmt(base_bytes /
                                        static_cast<double>(r.bytes),
                                    2),
                  TablePrinter::Fmt(
                      static_cast<double>(r.arena.reserved_bytes) / 1e6, 1),
                  TablePrinter::Fmt(r.arena.utilization(), 2),
                  TablePrinter::Fmt(static_cast<double>(r.arena.slab_count),
                                    0)});
  }
  table.Print();
  std::printf(
      "\npaper: optimized Seg-Trie = 14x speedup and 8x memory reduction "
      "vs the original\nB+-Tree. Both key/value arrays are counted for "
      "every structure here; the paper's\nmemory factor likely excludes "
      "value storage (see EXPERIMENTS.md).\n");
}

}  // namespace
}  // namespace simdtree

int main(int argc, char** argv) {
  simdtree::bench::ParseBenchArgs(argc, argv);
  size_t n = simdtree::kN;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) n = simdtree::kSmokeN;
  }
  simdtree::Run(n);
  return 0;
}
