// Scenario: persist an index across process restarts.
//
//   build/examples/persistence [path]
//
// First run: builds a Seg-Tree from synthetic order data, saves it as a
// binary blob. Subsequent runs: load the blob, verify integrity, serve a
// few queries through the thread-safe wrapper, append today's orders, and
// save back — the lifecycle of an embedded index file.

#include <cstdint>
#include <cstdio>
#include <string>

#include "core/simdtree.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace simdtree;
  using Tree = segtree::SegTree<uint64_t, uint64_t>;
  const std::string path = argc > 1 ? argv[1] : "/tmp/orders.stix";

  Tree tree;
  uint64_t next_order_id = 1;

  if (auto blob = io::ReadBlobFromFile(path)) {
    auto loaded = io::LoadTree<Tree>(blob->data(), blob->size());
    if (!loaded.has_value()) {
      std::fprintf(stderr, "%s exists but is not a valid index blob\n",
                   path.c_str());
      return 1;
    }
    tree = std::move(*loaded);
    if (!tree.Validate()) {
      std::fprintf(stderr, "loaded index failed validation\n");
      return 1;
    }
    // Continue numbering after the largest stored order id.
    for (auto it = tree.begin(); it.valid(); ++it) {
      next_order_id = it.key() + 1;
    }
    std::printf("loaded %zu orders from %s (next id %llu)\n", tree.size(),
                path.c_str(),
                static_cast<unsigned long long>(next_order_id));
  } else {
    std::printf("no existing index at %s — starting fresh\n", path.c_str());
  }

  // Serve concurrent-safe reads while appending today's batch.
  SynchronizedIndex<Tree> index(std::move(tree));
  Rng rng(next_order_id);
  constexpr int kBatch = 50000;
  for (int i = 0; i < kBatch; ++i) {
    const uint64_t amount_cents = 100 + rng.NextBounded(100000);
    index.Insert(next_order_id++, amount_cents);
  }
  std::printf("appended %d orders; index now holds %zu\n", kBatch,
              index.size());

  // A few point queries and a revenue aggregate over the newest 1000.
  const uint64_t probe = next_order_id - 500;
  if (auto v = index.Find(probe)) {
    std::printf("order %llu -> %llu cents\n",
                static_cast<unsigned long long>(probe),
                static_cast<unsigned long long>(*v));
  }
  uint64_t revenue = 0;
  index.ScanRange(next_order_id - 1000, next_order_id,
                  [&revenue](uint64_t, const uint64_t& cents) {
                    revenue += cents;
                  });
  std::printf("revenue of newest 1000 orders: %.2f\n",
              static_cast<double>(revenue) / 100.0);

  // Persist for the next run.
  const auto blob = index.WithRead([](const Tree& t) {
    return io::Serialize<uint64_t, uint64_t>(t,
                                             btree::PaperNodeCapacity(8));
  });
  if (!io::WriteBlobToFile(blob, path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("saved %zu orders (%.1f MB) to %s — run again to append\n",
              index.size(), static_cast<double>(blob.size()) / 1e6,
              path.c_str());
  return 0;
}
