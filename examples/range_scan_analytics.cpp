// Scenario: analytical range aggregation over a timestamp-ordered fact
// table — the B+-Tree family's classic strength (linked leaves, paper
// Section 1), here with SIMD-accelerated descent to the range start.
//
//   build/examples/range_scan_analytics [events]
//
// Stores (timestamp -> amount) events in a bulk-loaded Seg-Tree and
// answers sliding-window SUM/COUNT/AVG queries via ScanRange, comparing
// against the baseline B+-Tree for both correctness and speed.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/simdtree.h"
#include "util/cycle_timer.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace simdtree;
  const size_t events = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 4'000'000;

  // Synthetic event stream: millisecond timestamps with jitter, small
  // integer amounts (cents).
  Rng rng(7);
  std::vector<uint64_t> ts(events);
  std::vector<uint64_t> amount(events);
  uint64_t clock = 1'700'000'000'000ULL;  // epoch ms
  for (size_t i = 0; i < events; ++i) {
    clock += rng.NextBounded(20);  // duplicate timestamps happen
    ts[i] = clock;
    amount[i] = 100 + rng.NextBounded(10000);
  }
  std::printf("%zu events spanning %.1f hours\n\n", events,
              static_cast<double>(ts.back() - ts.front()) / 3.6e6);

  auto seg = segtree::SegTree<uint64_t, uint64_t>::BulkLoad(
      ts.data(), amount.data(), events);
  auto base = btree::BPlusTree<uint64_t, uint64_t>::BulkLoad(
      ts.data(), amount.data(), events);
  std::printf("bulk-loaded: Seg-Tree %.1f MB, B+-Tree %.1f MB, height %d\n\n",
              static_cast<double>(seg.MemoryBytes()) / 1e6,
              static_cast<double>(base.MemoryBytes()) / 1e6, seg.height());

  // Sliding one-minute windows.
  constexpr int kQueries = 2000;
  struct Agg {
    uint64_t sum = 0;
    uint64_t count = 0;
  };
  auto run = [&](auto& tree, double* ns_per_query) {
    Agg total;
    Rng qrng(13);
    const uint64_t t0 = CycleTimer::Now();
    for (int q = 0; q < kQueries; ++q) {
      const uint64_t lo =
          ts[qrng.NextBounded(events)] / 60000 * 60000;  // window start
      Agg window;
      tree.ScanRange(lo, lo + 60000, [&](uint64_t, const uint64_t& amt) {
        window.sum += amt;
        ++window.count;
      });
      total.sum += window.sum;
      total.count += window.count;
    }
    *ns_per_query =
        CycleTimer::ToNanoseconds(CycleTimer::Now() - t0) / kQueries;
    return total;
  };

  double seg_ns = 0.0;
  double base_ns = 0.0;
  const Agg seg_total = run(seg, &seg_ns);
  const Agg base_total = run(base, &base_ns);

  if (seg_total.sum != base_total.sum ||
      seg_total.count != base_total.count) {
    std::fprintf(stderr, "aggregation mismatch between structures!\n");
    return 1;
  }
  std::printf("%d one-minute window queries, %.0f rows/window avg\n",
              kQueries,
              static_cast<double>(seg_total.count) / kQueries);
  std::printf("Seg-Tree  %.1f us/query\n", seg_ns / 1e3);
  std::printf("B+-Tree   %.1f us/query\n", base_ns / 1e3);
  std::printf("avg amount over all windows: %.2f\n",
              static_cast<double>(seg_total.sum) /
                  static_cast<double>(seg_total.count));
  return 0;
}
