// Scenario: secondary index from tuple ids to row payload offsets in a
// main-memory table — the workload the paper calls the Seg-Trie's sweet
// spot ("the strength of a Seg-Trie arises from storing consecutive keys
// like tuple ids", Section 7).
//
//   build/examples/tuple_id_index [row_count]
//
// Simulates a table of rows identified by consecutive 64-bit tuple ids,
// compares the optimized Seg-Trie against the baseline B+-Tree on build
// time, lookup latency, and memory, then runs a delete-heavy maintenance
// phase (vacuum) to show both structures stay correct under churn.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/simdtree.h"
#include "util/cycle_timer.h"
#include "util/rng.h"
#include "util/workload.h"

namespace {

struct RowLocation {
  uint32_t page;
  uint32_t slot;
};

uint64_t Pack(RowLocation loc) {
  return (uint64_t{loc.page} << 32) | loc.slot;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simdtree;
  const size_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                               : 2'000'000;
  std::printf("tuple-id index over %zu rows\n\n", rows);

  // The "table": row i lives on page i/256 at slot i%256.
  auto location = [](uint64_t tid) {
    return RowLocation{static_cast<uint32_t>(tid / 256),
                       static_cast<uint32_t>(tid % 256)};
  };

  // Build both indexes from consecutive tuple ids.
  auto trie = std::make_unique<segtrie::OptimizedSegTrie<uint64_t, uint64_t>>();
  uint64_t t0 = CycleTimer::Now();
  for (uint64_t tid = 0; tid < rows; ++tid) {
    trie->Insert(tid, Pack(location(tid)));
  }
  const double trie_build = CycleTimer::ToNanoseconds(CycleTimer::Now() - t0);

  btree::BPlusTree<uint64_t, uint64_t> bt;
  t0 = CycleTimer::Now();
  for (uint64_t tid = 0; tid < rows; ++tid) {
    bt.Insert(tid, Pack(location(tid)));
  }
  const double bt_build = CycleTimer::ToNanoseconds(CycleTimer::Now() - t0);

  std::printf("build:   Seg-Trie %.0f ms   B+-Tree %.0f ms\n",
              trie_build / 1e6, bt_build / 1e6);
  std::printf("memory:  Seg-Trie %.1f MB (%d/%d levels)   B+-Tree %.1f MB\n",
              static_cast<double>(trie->MemoryBytes()) / 1e6,
              trie->active_levels(), trie->max_levels(),
              static_cast<double>(bt.MemoryBytes()) / 1e6);

  // Random point lookups (the OLTP read path).
  Rng rng(1);
  constexpr int kLookups = 200000;
  uint64_t sink = 0;
  t0 = CycleTimer::Now();
  for (int i = 0; i < kLookups; ++i) {
    sink += trie->Find(rng.NextBounded(rows)).value_or(0);
  }
  const double trie_ns =
      CycleTimer::ToNanoseconds(CycleTimer::Now() - t0) / kLookups;
  t0 = CycleTimer::Now();
  for (int i = 0; i < kLookups; ++i) {
    sink += bt.Find(rng.NextBounded(rows)).value_or(0);
  }
  const double bt_ns =
      CycleTimer::ToNanoseconds(CycleTimer::Now() - t0) / kLookups;
  std::printf("lookup:  Seg-Trie %.1f ns   B+-Tree %.1f ns   (%.2fx)\n",
              trie_ns, bt_ns, bt_ns / trie_ns);

  // Vacuum: delete every third row, verify both agree afterwards.
  size_t deleted = 0;
  for (uint64_t tid = 0; tid < rows; tid += 3) {
    const bool a = trie->Erase(tid);
    const bool b = bt.Erase(tid);
    if (a != b) {
      std::fprintf(stderr, "mismatch while deleting tid %llu\n",
                   static_cast<unsigned long long>(tid));
      return 1;
    }
    deleted += a ? 1 : 0;
  }
  std::printf("vacuum:  deleted %zu rows; sizes now %zu / %zu\n", deleted,
              trie->size(), bt.size());
  for (uint64_t tid = 0; tid < rows; ++tid) {
    if (trie->Contains(tid) != bt.Contains(tid)) {
      std::fprintf(stderr, "post-vacuum mismatch at tid %llu\n",
                   static_cast<unsigned long long>(tid));
      return 1;
    }
  }
  std::printf("post-vacuum check passed (checksum %llu)\n",
              static_cast<unsigned long long>(sink & 0xFFFF));
  return 0;
}
