// Scenario: choosing an index structure for a mixed read/write workload.
//
//   build/examples/mixed_workload [ops]
//
// Runs the same operation stream — a configurable mix of lookups,
// inserts, and deletes over a skewed key space — against all four
// structures and prints a throughput/memory scorecard. Demonstrates the
// paper's guidance: the Seg-Tree "is advantageous for workloads with few
// inserts" (Section 3.2) because reordering linearized keys costs on
// every non-append write, while the trie pays no reordering at all.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/simdtree.h"
#include "segtrie/compressed_segtrie.h"
#include "util/cycle_timer.h"
#include "util/rng.h"

namespace {

struct Score {
  const char* name;
  double mops;
  double mb;
  size_t final_size;
};

template <typename IndexT>
Score RunWorkload(const char* name, IndexT& index, size_t ops,
                  int read_pct) {
  simdtree::Rng rng(4242);
  uint64_t sink = 0;
  const uint64_t t0 = simdtree::CycleTimer::Now();
  for (size_t i = 0; i < ops; ++i) {
    // Skewed key space: 75% of operations hit a hot 4K-key region.
    const uint64_t key = rng.NextBounded(100) < 75
                             ? rng.NextBounded(4096)
                             : rng.NextBounded(1u << 22);
    const uint64_t dice = rng.NextBounded(100);
    if (dice < static_cast<uint64_t>(read_pct)) {
      sink += index.Contains(key) ? 1 : 0;
    } else if (dice < static_cast<uint64_t>(read_pct) + 15) {
      index.Erase(key);
    } else {
      index.Insert(key, key);
    }
  }
  const double seconds =
      simdtree::CycleTimer::ToNanoseconds(simdtree::CycleTimer::Now() - t0) /
      1e9;
  if (sink == ~0ULL) std::printf(" ");  // keep the loop observable
  return {name, static_cast<double>(ops) / seconds / 1e6,
          static_cast<double>(index.MemoryBytes()) / 1e6, index.size()};
}

void PrintScore(const Score& s) {
  std::printf("  %-28s %8.2f Mops/s   %8.1f MB   %zu keys\n", s.name, s.mops,
              s.mb, s.final_size);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simdtree;
  const size_t ops =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;

  for (int read_pct : {50, 85}) {
    std::printf("workload: %zu ops, %d%% reads / %d%% inserts / 15%% "
                "deletes, zipf-ish skew\n",
                ops, read_pct, 100 - read_pct - 15);

    {
      btree::BPlusTree<uint64_t, uint64_t> bt;
      PrintScore(RunWorkload("B+Tree (binary search)", bt, ops, read_pct));
    }
    {
      segtree::SegTree<uint64_t, uint64_t> st;
      PrintScore(RunWorkload("Seg-Tree (SIMD, BF)", st, ops, read_pct));
    }
    {
      auto trie = std::make_unique<segtrie::SegTrie<uint64_t, uint64_t>>();
      PrintScore(RunWorkload("Seg-Trie", *trie, ops, read_pct));
    }
    {
      auto opt =
          std::make_unique<segtrie::OptimizedSegTrie<uint64_t, uint64_t>>();
      PrintScore(RunWorkload("optimized Seg-Trie", *opt, ops, read_pct));
    }
    {
      auto comp = std::make_unique<
          segtrie::CompressedSegTrie<uint64_t, uint64_t>>();
      PrintScore(RunWorkload("path-compressed Seg-Trie", *comp, ops,
                             read_pct));
    }
    std::printf("\n");
  }
  std::printf(
      "note: tree structures are multimaps (inserts accumulate duplicates), "
      "tries are\nmaps (inserts overwrite) — final key counts differ by "
      "design; see DESIGN.md.\n");
  return 0;
}
