// Quickstart: the three index structures in ten minutes.
//
//   build/examples/quickstart
//
// Builds a Seg-Tree, a baseline B+-Tree, and an optimized Seg-Trie over
// the same small key set and walks through point lookups, updates,
// deletions, and a range scan.

#include <cstdint>
#include <cstdio>

#include "core/simdtree.h"

int main() {
  using namespace simdtree;

  std::printf("simdtree %s quickstart (cpu: %s)\n\n", kVersionString,
              simd::CpuFeatureString().c_str());

  // --- Seg-Tree: a B+-Tree searched with SIMD k-ary search --------------
  segtree::SegTree<uint32_t, uint64_t> index;
  for (uint32_t k = 0; k < 1000; ++k) {
    index.Insert(k * 3, uint64_t{k} * 100);  // key -> value
  }

  if (auto v = index.Find(297)) {
    std::printf("Find(297)      -> %llu\n",
                static_cast<unsigned long long>(*v));
  }
  std::printf("Contains(298)  -> %s\n", index.Contains(298) ? "yes" : "no");

  std::printf("ScanRange[30, 45): ");
  index.ScanRange(30, 45, [](uint32_t k, const uint64_t&) {
    std::printf("%u ", k);
  });
  std::printf("\n");

  index.Erase(297);
  std::printf("after Erase(297): Contains(297) -> %s\n",
              index.Contains(297) ? "yes" : "no");

  // --- baseline B+-Tree: same API, scalar binary search ------------------
  btree::BPlusTree<uint32_t, uint64_t> baseline;
  baseline.Insert(7, 70);
  std::printf("\nbaseline B+-Tree Find(7) -> %llu\n",
              static_cast<unsigned long long>(*baseline.Find(7)));

  // --- optimized Seg-Trie: constant-depth lookups for integer keys ------
  segtrie::OptimizedSegTrie<uint64_t, uint64_t> trie;
  for (uint64_t tid = 0; tid < 100000; ++tid) {
    trie.Insert(tid, tid ^ 0xFF);  // consecutive tuple ids: its sweet spot
  }
  std::printf("\noptimized Seg-Trie: %zu keys in %d of %d levels, %.1f MB\n",
              trie.size(), trie.active_levels(), trie.max_levels(),
              static_cast<double>(trie.MemoryBytes()) / 1e6);
  std::printf("trie Find(54321) -> %llu\n",
              static_cast<unsigned long long>(*trie.Find(54321)));

  return 0;
}
