// Parameterized stress sweeps: long randomized mutation/query workloads
// across seeds, key distributions, and every index structure, checked
// against oracles after every phase. These are the widest-coverage tests
// in the suite (each instance runs tens of thousands of operations).

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/simdtree.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace simdtree {
namespace {

struct StressParam {
  uint64_t seed;
  uint64_t key_mask;  // shapes the key distribution
  const char* label;
};

class StressTest : public testing::TestWithParam<StressParam> {};

TEST_P(StressTest, TreesTrackMultimapThroughPhases) {
  const StressParam p = GetParam();
  btree::BPlusTree<uint64_t, uint64_t> bt(32);
  segtree::SegTree<uint64_t, uint64_t> st(32);
  std::multimap<uint64_t, uint64_t> model;
  Rng rng(p.seed);

  // Phase 1: insert-heavy. Phase 2: balanced. Phase 3: delete-heavy.
  const int phases[3][2] = {{85, 5}, {50, 25}, {15, 70}};
  for (const auto& mix : phases) {
    for (int op = 0; op < 8000; ++op) {
      const uint64_t k = rng.Next() & p.key_mask;
      const uint64_t dice = rng.NextBounded(100);
      if (dice < static_cast<uint64_t>(mix[0])) {
        bt.Insert(k, dice);
        st.Insert(k, dice);
        model.emplace(k, dice);
      } else if (dice < static_cast<uint64_t>(mix[0] + mix[1])) {
        const bool a = bt.Erase(k);
        const bool b = st.Erase(k);
        auto it = model.find(k);
        const bool m = it != model.end();
        if (m) model.erase(it);
        ASSERT_EQ(a, m);
        ASSERT_EQ(b, m);
      } else {
        ASSERT_EQ(bt.Contains(k), model.count(k) > 0);
        ASSERT_EQ(st.Contains(k), model.count(k) > 0);
      }
    }
    ASSERT_TRUE(bt.Validate()) << p.label;
    ASSERT_TRUE(st.Validate()) << p.label;
    ASSERT_EQ(bt.size(), model.size());
    ASSERT_EQ(st.size(), model.size());
  }

  // Full-order verification via iteration.
  std::vector<uint64_t> tree_keys;
  for (auto it = bt.begin(); it.valid(); ++it) tree_keys.push_back(it.key());
  std::vector<uint64_t> model_keys;
  for (const auto& [k, v] : model) model_keys.push_back(k);
  ASSERT_EQ(tree_keys, model_keys);
}

TEST_P(StressTest, TriesTrackMapThroughPhases) {
  const StressParam p = GetParam();
  segtrie::SegTrie<uint64_t, uint64_t> plain;
  segtrie::OptimizedSegTrie<uint64_t, uint64_t> opt;
  std::map<uint64_t, uint64_t> model;
  Rng rng(p.seed ^ 0xABCD);

  const int phases[3][2] = {{85, 5}, {50, 25}, {15, 70}};
  for (const auto& mix : phases) {
    for (int op = 0; op < 8000; ++op) {
      const uint64_t k = rng.Next() & p.key_mask;
      const uint64_t dice = rng.NextBounded(100);
      if (dice < static_cast<uint64_t>(mix[0])) {
        const bool a = plain.Insert(k, dice);
        const bool b = opt.Insert(k, dice);
        const bool m = model.insert_or_assign(k, dice).second;
        ASSERT_EQ(a, m);
        ASSERT_EQ(b, m);
      } else if (dice < static_cast<uint64_t>(mix[0] + mix[1])) {
        const bool a = plain.Erase(k);
        const bool b = opt.Erase(k);
        const bool m = model.erase(k) > 0;
        ASSERT_EQ(a, m);
        ASSERT_EQ(b, m);
      } else {
        const auto expected = model.find(k);
        const auto got_plain = plain.Find(k);
        const auto got_opt = opt.Find(k);
        if (expected == model.end()) {
          ASSERT_FALSE(got_plain.has_value());
          ASSERT_FALSE(got_opt.has_value());
        } else {
          ASSERT_EQ(got_plain.value(), expected->second);
          ASSERT_EQ(got_opt.value(), expected->second);
        }
      }
    }
    ASSERT_TRUE(plain.Validate()) << p.label;
    ASSERT_TRUE(opt.Validate()) << p.label;
    ASSERT_EQ(plain.size(), model.size());
    ASSERT_EQ(opt.size(), model.size());
  }

  // Drain everything through the tries and confirm they empty cleanly.
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(plain.Erase(k));
    ASSERT_TRUE(opt.Erase(k));
  }
  EXPECT_TRUE(plain.empty());
  EXPECT_TRUE(opt.empty());
  EXPECT_TRUE(plain.Validate());
  EXPECT_TRUE(opt.Validate());
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, StressTest,
    testing::Values(
        StressParam{1, 0xFF, "hot_256_keys"},
        StressParam{2, 0xFFFF, "dense_64k"},
        StressParam{3, 0xFFFFFF, "three_bytes"},
        StressParam{4, ~0ULL, "sparse_full_width"},
        StressParam{5, 0xFF00FF, "split_bytes"},
        StressParam{6, 0xFFFF000000ULL, "middle_bytes"},
        StressParam{7, 0x3FF, "hot_1k_keys"},
        StressParam{8, 0xF0F0F0F0F0F0F0F0ULL, "nibble_mask"}),
    [](const testing::TestParamInfo<StressParam>& info) {
      return std::string(info.param.label) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace simdtree
