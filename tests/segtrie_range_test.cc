// Tests for the Seg-Trie extensions: ordered range scans (subtree
// pruning), O(n) bulk loading, and move semantics.

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "segtrie/segtrie.h"
#include "util/rng.h"
#include "util/workload.h"

namespace simdtree::segtrie {
namespace {

using Trie = SegTrie<uint64_t, uint64_t>;
using OptTrie = OptimizedSegTrie<uint64_t, uint64_t>;

template <typename TrieT>
void ExpectScansMatchModel(const TrieT& trie,
                           const std::map<uint64_t, uint64_t>& model,
                           Rng& rng, int trials) {
  for (int t = 0; t < trials; ++t) {
    uint64_t lo = rng.Next();
    uint64_t hi = rng.Next();
    if (lo > hi) std::swap(lo, hi);
    // Bias some trials into the populated region.
    if (t % 2 == 0 && !model.empty()) {
      lo = model.begin()->first + rng.NextBounded(1000);
      hi = lo + rng.NextBounded(5000);
    }
    std::vector<std::pair<uint64_t, uint64_t>> got;
    trie.ScanRange(lo, hi,
                   [&](uint64_t k, const uint64_t& v) { got.emplace_back(k, v); });
    std::vector<std::pair<uint64_t, uint64_t>> expected;
    for (auto it = model.lower_bound(lo); it != model.end() && it->first < hi;
         ++it) {
      expected.emplace_back(it->first, it->second);
    }
    ASSERT_EQ(got, expected) << "lo=" << lo << " hi=" << hi;
  }
}

TEST(SegTrieRangeTest, ScanMatchesMapOnDenseKeys) {
  Trie trie;
  std::map<uint64_t, uint64_t> model;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k = rng.NextBounded(20000);
    trie.Insert(k, static_cast<uint64_t>(i));
    model[k] = static_cast<uint64_t>(i);
  }
  ExpectScansMatchModel(trie, model, rng, 100);
}

TEST(SegTrieRangeTest, ScanMatchesMapOnSparseKeys) {
  OptTrie trie;
  std::map<uint64_t, uint64_t> model;
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t k = rng.Next();
    trie.Insert(k, static_cast<uint64_t>(i));
    model[k] = static_cast<uint64_t>(i);
  }
  ExpectScansMatchModel(trie, model, rng, 100);
}

TEST(SegTrieRangeTest, BoundaryCases) {
  Trie trie;
  for (uint64_t k : {uint64_t{0}, uint64_t{1}, uint64_t{255}, uint64_t{256},
                     uint64_t{65535}, uint64_t{65536}, ~uint64_t{0}}) {
    trie.Insert(k, k);
  }
  // Empty ranges.
  EXPECT_EQ(trie.CountRange(5, 5), 0u);
  EXPECT_EQ(trie.CountRange(10, 5), 0u);
  EXPECT_EQ(trie.CountRange(2, 0), 0u);
  // Half-open excludes hi.
  EXPECT_EQ(trie.CountRange(0, 256), 3u);   // 0, 1, 255
  EXPECT_EQ(trie.CountRange(0, 257), 4u);   // + 256
  // Inclusive includes hi, up to the type maximum.
  EXPECT_EQ(trie.CountRange(0, ~uint64_t{0}, /*hi_inclusive=*/true), 7u);
  EXPECT_EQ(trie.CountRange(~uint64_t{0}, ~uint64_t{0}, true), 1u);
  // Full-range scan equals ForEach.
  size_t foreach_count = 0;
  trie.ForEach([&](uint64_t, const uint64_t&) { ++foreach_count; });
  EXPECT_EQ(trie.CountRange(0, ~uint64_t{0}, true), foreach_count);
}

TEST(SegTrieRangeTest, EmptyTrieScansNothing) {
  Trie trie;
  size_t n = 0;
  trie.ScanRange(0, ~uint64_t{0}, [&](uint64_t, const uint64_t&) { ++n; },
                 true);
  EXPECT_EQ(n, 0u);
}

TEST(SegTrieBulkLoadTest, MatchesIncrementalInserts) {
  Rng rng(7);
  std::vector<uint64_t> keys = UniformDistinctKeys<uint64_t>(20000, rng);
  std::vector<uint64_t> values(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) values[i] = i;

  Trie bulk = Trie::BulkLoad(keys.data(), values.data(), keys.size());
  Trie incremental;
  for (size_t i = 0; i < keys.size(); ++i) {
    incremental.Insert(keys[i], values[i]);
  }
  ASSERT_TRUE(bulk.Validate());
  ASSERT_EQ(bulk.size(), incremental.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(bulk.Find(keys[i]).value(), values[i]);
  }
  // Bulk-built nodes have no growth slack: memory must not exceed the
  // incrementally built trie's.
  EXPECT_LE(bulk.MemoryBytes(), incremental.MemoryBytes());
}

TEST(SegTrieBulkLoadTest, LazyExpansionDepthMatches) {
  std::vector<uint64_t> keys = AscendingKeys<uint64_t>(100000, 0);
  std::vector<uint64_t> values(keys.size(), 7);
  OptTrie::Options opts{.lazy_expansion = true};
  auto trie = SegTrie<uint64_t, uint64_t>::BulkLoad(keys.data(), values.data(),
                                                    keys.size(), opts);
  EXPECT_EQ(trie.active_levels(), 3);  // 100k keys span three low bytes
  ASSERT_TRUE(trie.Validate());
  EXPECT_TRUE(trie.Contains(99999));
  EXPECT_FALSE(trie.Contains(100000));
  // Mutations after bulk load behave normally, including upward growth.
  trie.Insert(1ULL << 40, 1);
  EXPECT_EQ(trie.active_levels(), 6);
  EXPECT_TRUE(trie.Contains(1ULL << 40));
  EXPECT_TRUE(trie.Contains(12345));
}

TEST(SegTrieBulkLoadTest, SingleKeyAndEmpty) {
  auto empty = Trie::BulkLoad(nullptr, nullptr, 0);
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.Validate());

  const uint64_t k = 0xDEAD;
  const uint64_t v = 1;
  auto one = Trie::BulkLoad(&k, &v, 1);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_TRUE(one.Validate());
  EXPECT_EQ(one.Find(0xDEAD).value(), 1u);
}

TEST(SegTrieMoveTest, MoveTransfersOwnership) {
  Trie a;
  for (uint64_t k = 0; k < 1000; ++k) a.Insert(k, k * 2);
  Trie b = std::move(a);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_TRUE(b.Validate());
  EXPECT_EQ(b.Find(500).value(), 1000u);

  Trie c;
  c.Insert(1, 1);
  c = std::move(b);
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_TRUE(c.Contains(999));
  // Mutation still works after the move (context moved along).
  c.Insert(5000, 1);
  EXPECT_TRUE(c.Contains(5000));
  EXPECT_TRUE(c.Validate());
}

TEST(SegTrieRangeTest, SixteenBitSegmentsScan) {
  SegTrie<uint32_t, uint32_t, 16> trie;
  std::map<uint32_t, uint32_t> model;
  Rng rng(9);
  for (int i = 0; i < 4000; ++i) {
    const uint32_t k = static_cast<uint32_t>(rng.Next());
    trie.Insert(k, static_cast<uint32_t>(i));
    model[k] = static_cast<uint32_t>(i);
  }
  for (int t = 0; t < 60; ++t) {
    uint32_t lo = static_cast<uint32_t>(rng.Next());
    uint32_t hi = static_cast<uint32_t>(rng.Next());
    if (lo > hi) std::swap(lo, hi);
    size_t expected = 0;
    for (auto it = model.lower_bound(lo); it != model.end() && it->first < hi;
         ++it) {
      ++expected;
    }
    ASSERT_EQ(trie.CountRange(lo, hi), expected);
  }
}

}  // namespace
}  // namespace simdtree::segtrie
